file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_zigzag_vs_repartition.dir/bench_fig8_zigzag_vs_repartition.cc.o"
  "CMakeFiles/bench_fig8_zigzag_vs_repartition.dir/bench_fig8_zigzag_vs_repartition.cc.o.d"
  "bench_fig8_zigzag_vs_repartition"
  "bench_fig8_zigzag_vs_repartition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_zigzag_vs_repartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
