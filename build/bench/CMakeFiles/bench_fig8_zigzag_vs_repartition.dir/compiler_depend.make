# Empty compiler generated dependencies file for bench_fig8_zigzag_vs_repartition.
# This may be replaced when dependencies are built.
