# Empty dependencies file for bench_ablation_semijoin.
# This may be replaced when dependencies are built.
