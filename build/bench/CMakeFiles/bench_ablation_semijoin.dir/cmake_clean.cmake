file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_semijoin.dir/bench_ablation_semijoin.cc.o"
  "CMakeFiles/bench_ablation_semijoin.dir/bench_ablation_semijoin.cc.o.d"
  "bench_ablation_semijoin"
  "bench_ablation_semijoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_semijoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
