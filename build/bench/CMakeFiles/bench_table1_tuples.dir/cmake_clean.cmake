file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_tuples.dir/bench_table1_tuples.cc.o"
  "CMakeFiles/bench_table1_tuples.dir/bench_table1_tuples.cc.o.d"
  "bench_table1_tuples"
  "bench_table1_tuples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_tuples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
