# Empty compiler generated dependencies file for bench_fig13_db_vs_hdfs_bf.
# This may be replaced when dependencies are built.
