file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_db_vs_hdfs_bf.dir/bench_fig13_db_vs_hdfs_bf.cc.o"
  "CMakeFiles/bench_fig13_db_vs_hdfs_bf.dir/bench_fig13_db_vs_hdfs_bf.cc.o.d"
  "bench_fig13_db_vs_hdfs_bf"
  "bench_fig13_db_vs_hdfs_bf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_db_vs_hdfs_bf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
