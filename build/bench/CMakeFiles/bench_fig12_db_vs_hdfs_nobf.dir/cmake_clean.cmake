file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_db_vs_hdfs_nobf.dir/bench_fig12_db_vs_hdfs_nobf.cc.o"
  "CMakeFiles/bench_fig12_db_vs_hdfs_nobf.dir/bench_fig12_db_vs_hdfs_nobf.cc.o.d"
  "bench_fig12_db_vs_hdfs_nobf"
  "bench_fig12_db_vs_hdfs_nobf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_db_vs_hdfs_nobf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
