# Empty compiler generated dependencies file for bench_fig12_db_vs_hdfs_nobf.
# This may be replaced when dependencies are built.
