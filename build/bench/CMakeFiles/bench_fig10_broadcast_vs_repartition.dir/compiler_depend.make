# Empty compiler generated dependencies file for bench_fig10_broadcast_vs_repartition.
# This may be replaced when dependencies are built.
