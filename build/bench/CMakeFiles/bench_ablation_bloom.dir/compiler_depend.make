# Empty compiler generated dependencies file for bench_ablation_bloom.
# This may be replaced when dependencies are built.
