# Empty dependencies file for bench_fig15_text_bloom.
# This may be replaced when dependencies are built.
