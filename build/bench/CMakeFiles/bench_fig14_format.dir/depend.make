# Empty dependencies file for bench_fig14_format.
# This may be replaced when dependencies are built.
