file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_format.dir/bench_fig14_format.cc.o"
  "CMakeFiles/bench_fig14_format.dir/bench_fig14_format.cc.o.d"
  "bench_fig14_format"
  "bench_fig14_format.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_format.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
