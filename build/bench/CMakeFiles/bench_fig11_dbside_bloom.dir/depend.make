# Empty dependencies file for bench_fig11_dbside_bloom.
# This may be replaced when dependencies are built.
