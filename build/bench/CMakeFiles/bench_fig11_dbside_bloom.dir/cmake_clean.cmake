file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_dbside_bloom.dir/bench_fig11_dbside_bloom.cc.o"
  "CMakeFiles/bench_fig11_dbside_bloom.dir/bench_fig11_dbside_bloom.cc.o.d"
  "bench_fig11_dbside_bloom"
  "bench_fig11_dbside_bloom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_dbside_bloom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
