# Empty compiler generated dependencies file for bench_fig9_joinkey_selectivity.
# This may be replaced when dependencies are built.
