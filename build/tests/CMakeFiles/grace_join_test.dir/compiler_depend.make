# Empty compiler generated dependencies file for grace_join_test.
# This may be replaced when dependencies are built.
