file(REMOVE_RECURSE
  "CMakeFiles/grace_join_test.dir/grace_join_test.cc.o"
  "CMakeFiles/grace_join_test.dir/grace_join_test.cc.o.d"
  "grace_join_test"
  "grace_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grace_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
