# Empty dependencies file for hybrid_join_test.
# This may be replaced when dependencies are built.
