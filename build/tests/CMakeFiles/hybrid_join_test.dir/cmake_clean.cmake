file(REMOVE_RECURSE
  "CMakeFiles/hybrid_join_test.dir/hybrid_join_test.cc.o"
  "CMakeFiles/hybrid_join_test.dir/hybrid_join_test.cc.o.d"
  "hybrid_join_test"
  "hybrid_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
