file(REMOVE_RECURSE
  "CMakeFiles/jen_test.dir/jen_test.cc.o"
  "CMakeFiles/jen_test.dir/jen_test.cc.o.d"
  "jen_test"
  "jen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
