# Empty compiler generated dependencies file for jen_test.
# This may be replaced when dependencies are built.
