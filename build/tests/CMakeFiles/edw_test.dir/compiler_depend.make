# Empty compiler generated dependencies file for edw_test.
# This may be replaced when dependencies are built.
