file(REMOVE_RECURSE
  "CMakeFiles/edw_test.dir/edw_test.cc.o"
  "CMakeFiles/edw_test.dir/edw_test.cc.o.d"
  "edw_test"
  "edw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
