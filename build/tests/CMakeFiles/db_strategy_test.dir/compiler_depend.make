# Empty compiler generated dependencies file for db_strategy_test.
# This may be replaced when dependencies are built.
