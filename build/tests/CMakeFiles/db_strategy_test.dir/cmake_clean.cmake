file(REMOVE_RECURSE
  "CMakeFiles/db_strategy_test.dir/db_strategy_test.cc.o"
  "CMakeFiles/db_strategy_test.dir/db_strategy_test.cc.o.d"
  "db_strategy_test"
  "db_strategy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_strategy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
