file(REMOVE_RECURSE
  "CMakeFiles/format_comparison.dir/format_comparison.cc.o"
  "CMakeFiles/format_comparison.dir/format_comparison.cc.o.d"
  "format_comparison"
  "format_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/format_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
