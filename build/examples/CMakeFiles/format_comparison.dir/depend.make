# Empty dependencies file for format_comparison.
# This may be replaced when dependencies are built.
