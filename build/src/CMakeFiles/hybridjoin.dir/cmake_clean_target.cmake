file(REMOVE_RECURSE
  "libhybridjoin.a"
)
