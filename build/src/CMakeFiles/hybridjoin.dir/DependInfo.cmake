
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bloom/bloom_filter.cc" "src/CMakeFiles/hybridjoin.dir/bloom/bloom_filter.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/bloom/bloom_filter.cc.o.d"
  "/root/repo/src/common/compress.cc" "src/CMakeFiles/hybridjoin.dir/common/compress.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/common/compress.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/hybridjoin.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/hybridjoin.dir/common/status.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/common/status.cc.o.d"
  "/root/repo/src/edw/db_cluster.cc" "src/CMakeFiles/hybridjoin.dir/edw/db_cluster.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/edw/db_cluster.cc.o.d"
  "/root/repo/src/edw/db_index.cc" "src/CMakeFiles/hybridjoin.dir/edw/db_index.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/edw/db_index.cc.o.d"
  "/root/repo/src/exec/aggregator.cc" "src/CMakeFiles/hybridjoin.dir/exec/aggregator.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/exec/aggregator.cc.o.d"
  "/root/repo/src/exec/grace_join.cc" "src/CMakeFiles/hybridjoin.dir/exec/grace_join.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/exec/grace_join.cc.o.d"
  "/root/repo/src/exec/join_hash_table.cc" "src/CMakeFiles/hybridjoin.dir/exec/join_hash_table.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/exec/join_hash_table.cc.o.d"
  "/root/repo/src/exec/join_prober.cc" "src/CMakeFiles/hybridjoin.dir/exec/join_prober.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/exec/join_prober.cc.o.d"
  "/root/repo/src/expr/predicate.cc" "src/CMakeFiles/hybridjoin.dir/expr/predicate.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/expr/predicate.cc.o.d"
  "/root/repo/src/expr/scalar_functions.cc" "src/CMakeFiles/hybridjoin.dir/expr/scalar_functions.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/expr/scalar_functions.cc.o.d"
  "/root/repo/src/hdfs/datanode.cc" "src/CMakeFiles/hybridjoin.dir/hdfs/datanode.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/hdfs/datanode.cc.o.d"
  "/root/repo/src/hdfs/format.cc" "src/CMakeFiles/hybridjoin.dir/hdfs/format.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/hdfs/format.cc.o.d"
  "/root/repo/src/hdfs/hcatalog.cc" "src/CMakeFiles/hybridjoin.dir/hdfs/hcatalog.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/hdfs/hcatalog.cc.o.d"
  "/root/repo/src/hdfs/namenode.cc" "src/CMakeFiles/hybridjoin.dir/hdfs/namenode.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/hdfs/namenode.cc.o.d"
  "/root/repo/src/hdfs/table_writer.cc" "src/CMakeFiles/hybridjoin.dir/hdfs/table_writer.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/hdfs/table_writer.cc.o.d"
  "/root/repo/src/hybrid/advisor.cc" "src/CMakeFiles/hybridjoin.dir/hybrid/advisor.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/hybrid/advisor.cc.o.d"
  "/root/repo/src/hybrid/config.cc" "src/CMakeFiles/hybridjoin.dir/hybrid/config.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/hybrid/config.cc.o.d"
  "/root/repo/src/hybrid/context.cc" "src/CMakeFiles/hybridjoin.dir/hybrid/context.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/hybrid/context.cc.o.d"
  "/root/repo/src/hybrid/db_side_join.cc" "src/CMakeFiles/hybridjoin.dir/hybrid/db_side_join.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/hybrid/db_side_join.cc.o.d"
  "/root/repo/src/hybrid/driver_common.cc" "src/CMakeFiles/hybridjoin.dir/hybrid/driver_common.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/hybrid/driver_common.cc.o.d"
  "/root/repo/src/hybrid/hdfs_side_join.cc" "src/CMakeFiles/hybridjoin.dir/hybrid/hdfs_side_join.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/hybrid/hdfs_side_join.cc.o.d"
  "/root/repo/src/hybrid/prepare.cc" "src/CMakeFiles/hybridjoin.dir/hybrid/prepare.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/hybrid/prepare.cc.o.d"
  "/root/repo/src/hybrid/query.cc" "src/CMakeFiles/hybridjoin.dir/hybrid/query.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/hybrid/query.cc.o.d"
  "/root/repo/src/hybrid/reference.cc" "src/CMakeFiles/hybridjoin.dir/hybrid/reference.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/hybrid/reference.cc.o.d"
  "/root/repo/src/hybrid/report.cc" "src/CMakeFiles/hybridjoin.dir/hybrid/report.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/hybrid/report.cc.o.d"
  "/root/repo/src/jen/coordinator.cc" "src/CMakeFiles/hybridjoin.dir/jen/coordinator.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/jen/coordinator.cc.o.d"
  "/root/repo/src/jen/exchange.cc" "src/CMakeFiles/hybridjoin.dir/jen/exchange.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/jen/exchange.cc.o.d"
  "/root/repo/src/jen/worker.cc" "src/CMakeFiles/hybridjoin.dir/jen/worker.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/jen/worker.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/hybridjoin.dir/net/network.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/net/network.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/hybridjoin.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/hybridjoin.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/sql/parser.cc.o.d"
  "/root/repo/src/types/data_type.cc" "src/CMakeFiles/hybridjoin.dir/types/data_type.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/types/data_type.cc.o.d"
  "/root/repo/src/types/record_batch.cc" "src/CMakeFiles/hybridjoin.dir/types/record_batch.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/types/record_batch.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/CMakeFiles/hybridjoin.dir/workload/generator.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/workload/generator.cc.o.d"
  "/root/repo/src/workload/loader.cc" "src/CMakeFiles/hybridjoin.dir/workload/loader.cc.o" "gcc" "src/CMakeFiles/hybridjoin.dir/workload/loader.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
