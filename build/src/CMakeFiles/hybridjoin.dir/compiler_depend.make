# Empty compiler generated dependencies file for hybridjoin.
# This may be replaced when dependencies are built.
