// Randomized differential fuzzer for the join algorithms (docs/testing.md).
//
// Runs seeded differential cases — every algorithm variant against the
// single-node reference executor — under one or more fault profiles, and
// reports any seed whose outcome is unacceptable (a mismatch, or a non-OK
// status under a recoverable profile). Every failure reproduces with
//
//   fuzz_joins --seed=N --profiles=<profile>
//
// A watchdog aborts the process (exit 3) with the reproducing seed if a
// single case exceeds --case_timeout_ms, so an engine hang can never hang
// the fuzzer itself.
//
// Flags:
//   --seeds=N            number of seeds to run (default 200)
//   --start_seed=S       first seed (default 1)
//   --seed=N             run exactly one seed (overrides --seeds/--start_seed)
//   --profiles=a,b,c     fault profiles (default none,delays,flaky,lossy)
//   --recv_timeout_ms=T  per-receive timeout inside the engine (default 5000)
//   --exec_threads=N     intra-node morsel threads per simulated worker
//                        (default 1 = the historical single-threaded engine;
//                        > 1 sweeps the morsel-parallel scan/build/probe)
//   --mem_budget_bytes=B per-query memory budget for every variant
//                        (default 0 = unlimited; a small budget, e.g.
//                        65536, forces grace-join spilling on the larger
//                        cases — spilled runs must still match the oracle)
//   --zipf_s=S           Zipf exponent for the join-key draw on both tables
//                        (default 0 = the historical uniform workloads;
//                        e.g. 1.3 concentrates enough mass on the top keys
//                        that the skew-aware hybrid shuffle route engages —
//                        skewed runs must still match the oracle)
//   --adaptive           add an eighth variant that runs through the
//                        adaptive decision point (ExecuteAuto) with the
//                        pivot hysteresis forced to zero, so every
//                        estimate-vs-observation disagreement pivots
//                        mid-query; the oracle and the other variants stay
//                        static, and the adaptive runs must match them
//   --case_timeout_ms=T  watchdog limit per (seed, profile) case (default 60000)
//   --profile_out=PREFIX write the first case's per-variant query-profile
//                        JSONs to PREFIX.<variant>.json (CI artifact)
//   --out=PATH           write failing "seed profile" pairs here (default
//                        fuzz_failures.txt, only written on failure)
//
// Exit codes: 0 = all cases ok, 1 = failures found, 2 = bad usage,
// 3 = watchdog fired (case hang/timeout).

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "testing/differential.h"

namespace {

using hybridjoin::testing_support::DiffCaseReport;
using hybridjoin::testing_support::RunDifferentialCase;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *out = arg + prefix.size();
  return true;
}

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// Shared with the watchdog thread: what is running and until when.
std::atomic<int64_t> g_deadline_ms{INT64_MAX};
std::atomic<uint64_t> g_seed{0};
std::mutex g_profile_mu;
std::string g_profile;  // guarded by g_profile_mu

void Watchdog() {
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    if (NowMs() <= g_deadline_ms.load(std::memory_order_acquire)) continue;
    std::string profile;
    {
      std::lock_guard<std::mutex> lock(g_profile_mu);
      profile = g_profile;
    }
    std::fprintf(stderr,
                 "\nWATCHDOG: case exceeded its time limit (engine hang?)\n"
                 "  reproduce: fuzz_joins --seed=%llu --profiles=%s\n",
                 static_cast<unsigned long long>(g_seed.load()),
                 profile.c_str());
    std::fflush(stderr);
    std::_Exit(3);  // hung engine threads cannot be joined
  }
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t num_seeds = 200;
  uint64_t start_seed = 1;
  bool single_seed = false;
  uint64_t recv_timeout_ms = 5000;
  uint32_t exec_threads = 1;
  uint64_t mem_budget_bytes = 0;
  double zipf_s = 0;
  bool adaptive = false;
  int64_t case_timeout_ms = 60000;
  std::string profiles_csv = "none,delays,flaky,lossy";
  std::string out_path = "fuzz_failures.txt";
  std::string profile_out_prefix;

  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "seeds", &v)) {
      num_seeds = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "start_seed", &v)) {
      start_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "seed", &v)) {
      start_seed = std::strtoull(v.c_str(), nullptr, 10);
      num_seeds = 1;
      single_seed = true;
    } else if (ParseFlag(argv[i], "profiles", &v)) {
      profiles_csv = v;
    } else if (ParseFlag(argv[i], "recv_timeout_ms", &v)) {
      recv_timeout_ms = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "exec_threads", &v)) {
      exec_threads =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
      if (exec_threads == 0) {
        std::fprintf(stderr, "--exec_threads must be >= 1\n");
        return 2;
      }
    } else if (ParseFlag(argv[i], "mem_budget_bytes", &v)) {
      mem_budget_bytes = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "zipf_s", &v)) {
      zipf_s = std::strtod(v.c_str(), nullptr);
      if (zipf_s < 0) {
        std::fprintf(stderr, "--zipf_s must be >= 0\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--adaptive") == 0) {
      adaptive = true;
    } else if (ParseFlag(argv[i], "case_timeout_ms", &v)) {
      case_timeout_ms = std::strtoll(v.c_str(), nullptr, 10);
    } else if (ParseFlag(argv[i], "profile_out", &v)) {
      profile_out_prefix = v;
    } else if (ParseFlag(argv[i], "out", &v)) {
      out_path = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  const std::vector<std::string> profiles = SplitCsv(profiles_csv);
  if (profiles.empty() || num_seeds == 0) {
    std::fprintf(stderr, "nothing to do (empty --profiles or --seeds=0)\n");
    return 2;
  }

  std::thread(Watchdog).detach();

  struct Failure {
    uint64_t seed;
    std::string profile;
    std::string summary;
  };
  std::vector<Failure> failures;
  uint64_t cases_run = 0;
  const int64_t t0 = NowMs();

  for (uint64_t i = 0; i < num_seeds; ++i) {
    const uint64_t seed = start_seed + i;
    for (const std::string& profile : profiles) {
      g_seed.store(seed);
      {
        std::lock_guard<std::mutex> lock(g_profile_mu);
        g_profile = profile;
      }
      g_deadline_ms.store(NowMs() + case_timeout_ms,
                          std::memory_order_release);
      // Query-profile JSONs are only exported for the first case: one
      // representative set per sweep is what CI archives.
      const std::string case_profile_out =
          (i == 0 && profile == profiles.front()) ? profile_out_prefix : "";
      const DiffCaseReport report =
          RunDifferentialCase(seed, profile, recv_timeout_ms, exec_threads,
                              case_profile_out, mem_budget_bytes, zipf_s,
                              adaptive);
      g_deadline_ms.store(INT64_MAX, std::memory_order_release);
      ++cases_run;
      if (!report.ok()) {
        failures.push_back({seed, profile, report.Summary()});
        std::fprintf(stderr, "FAIL %s\n", report.Summary().c_str());
      } else if (single_seed) {
        std::printf("%s\n", report.Summary().c_str());
      }
    }
    if (!single_seed && (i + 1) % 10 == 0) {
      std::printf("[%llu/%llu seeds, %llu cases, %lld failures, %.1fs]\n",
                  static_cast<unsigned long long>(i + 1),
                  static_cast<unsigned long long>(num_seeds),
                  static_cast<unsigned long long>(cases_run),
                  static_cast<long long>(failures.size()),
                  (NowMs() - t0) / 1000.0);
      std::fflush(stdout);
    }
  }

  std::printf("fuzz_joins: %llu cases (%llu seeds x %zu profiles), "
              "%zu failures, %.1fs\n",
              static_cast<unsigned long long>(cases_run),
              static_cast<unsigned long long>(num_seeds), profiles.size(),
              failures.size(), (NowMs() - t0) / 1000.0);

  if (!failures.empty()) {
    std::ofstream out(out_path);
    for (const Failure& f : failures) {
      out << f.seed << " " << f.profile << "\n";
    }
    std::printf("failing seeds written to %s\n", out_path.c_str());
    return 1;
  }
  return 0;
}
