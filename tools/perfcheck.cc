// perfcheck: the perf-regression gate. Compares a current profile/bench
// JSON against a committed baseline and exits non-zero when a gated metric
// family regresses past its threshold.
//
//   perfcheck [flags] baseline.json current.json
//
//   --max_wall_pct=20    max wall-time increase, % of baseline
//   --max_bytes_pct=25   max bytes-moved increase, % of baseline
//   --max_skew=0.5       max absolute increase on skew leaves
//   --max_overhead_pct=2 absolute ceiling on *overhead_pct* leaves
//   --min_wall_s=0.005   ignore wall leaves whose baseline is below this
//
// Exit codes: 0 = within thresholds, 1 = regression(s), 2 = usage or IO
// error. Works on any JSON the repo emits (profile --profile_out output,
// BENCH_*.json) — see src/obs/perfcheck.h for the comparison rules.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/perfcheck.h"

namespace {

using hybridjoin::obs::ComparePerf;
using hybridjoin::obs::JsonValue;
using hybridjoin::obs::PerfcheckFinding;
using hybridjoin::obs::PerfcheckOptions;
using hybridjoin::obs::PerfcheckResult;

constexpr const char kUsage[] =
    "usage: perfcheck [--max_wall_pct=N] [--max_bytes_pct=N] [--max_skew=N]\n"
    "                 [--max_overhead_pct=N] [--min_wall_s=N]\n"
    "                 baseline.json current.json\n";

bool ParseDoubleFlag(const char* arg, const char* name, double* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  char* end = nullptr;
  const double v = std::strtod(arg + n + 1, &end);
  if (end == arg + n + 1 || *end != '\0') {
    std::fprintf(stderr, "perfcheck: bad value for %s\n", name);
    std::exit(2);
  }
  *out = v;
  return true;
}

JsonValue LoadJson(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    std::fprintf(stderr, "perfcheck: cannot open '%s'\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = JsonValue::Parse(buf.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "perfcheck: '%s': %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    std::exit(2);
  }
  return std::move(parsed).value();
}

}  // namespace

int main(int argc, char** argv) {
  PerfcheckOptions options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (ParseDoubleFlag(arg, "--max_wall_pct", &options.max_wall_pct) ||
        ParseDoubleFlag(arg, "--max_bytes_pct", &options.max_bytes_pct) ||
        ParseDoubleFlag(arg, "--max_skew", &options.max_skew_increase) ||
        ParseDoubleFlag(arg, "--max_overhead_pct",
                        &options.max_overhead_pct) ||
        ParseDoubleFlag(arg, "--min_wall_s", &options.min_wall_seconds)) {
      continue;
    }
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      std::fputs(kUsage, stdout);
      return 0;
    }
    if (std::strncmp(arg, "--", 2) == 0) {
      std::fprintf(stderr, "perfcheck: unknown flag '%s'\n%s", arg, kUsage);
      return 2;
    }
    files.push_back(arg);
  }
  if (files.size() != 2) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  const JsonValue baseline = LoadJson(files[0]);
  const JsonValue current = LoadJson(files[1]);
  const PerfcheckResult result = ComparePerf(baseline, current, options);

  std::printf("perfcheck: %s vs %s — %zu gated leaves compared\n",
              files[0].c_str(), files[1].c_str(), result.leaves_compared);
  if (result.regressions.empty()) {
    std::printf("perfcheck: OK (no regression past thresholds: wall +%.0f%%, "
                "bytes +%.0f%%, skew +%.2f, overhead ceiling %.1f%%)\n",
                options.max_wall_pct, options.max_bytes_pct,
                options.max_skew_increase, options.max_overhead_pct);
    return 0;
  }
  for (const PerfcheckFinding& f : result.regressions) {
    std::printf("perfcheck: REGRESSION %s\n", f.message.c_str());
  }
  std::printf("perfcheck: FAIL — %zu regression(s)\n",
              result.regressions.size());
  return 1;
}
