// Quickstart: build a small hybrid warehouse, load the paper's synthetic
// workload, run the zigzag join, and print the result and the execution
// report.
//
//   $ ./examples/quickstart
//   $ ./examples/quickstart --trace_out=query.json   # Chrome/Perfetto trace
//   $ ./examples/quickstart --profile                # EXPLAIN-ANALYZE tree
//   $ ./examples/quickstart --profile_out=p.json     # profile JSON export
//
// Open the trace file in chrome://tracing or https://ui.perfetto.dev to see
// the per-node, per-thread phase breakdown. The profile JSON is the input
// format of tools/perfcheck (the perf-regression gate).

#include <cstdio>
#include <cstring>
#include <string>

#include "hybrid/warehouse.h"
#include "workload/loader.h"

using namespace hybridjoin;

int main(int argc, char** argv) {
  std::string trace_out;
  std::string profile_out;
  bool print_profile = false;
  for (int i = 1; i < argc; ++i) {
    constexpr char kTraceFlag[] = "--trace_out=";
    constexpr char kProfileOutFlag[] = "--profile_out=";
    if (std::strncmp(argv[i], kTraceFlag, sizeof(kTraceFlag) - 1) == 0) {
      trace_out = argv[i] + sizeof(kTraceFlag) - 1;
    } else if (std::strncmp(argv[i], kProfileOutFlag,
                            sizeof(kProfileOutFlag) - 1) == 0) {
      profile_out = argv[i] + sizeof(kProfileOutFlag) - 1;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      print_profile = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace_out=FILE.json] [--profile] "
                   "[--profile_out=FILE.json]\n",
                   argv[0]);
      return 2;
    }
  }
  // 1. Generate a small workload: T (transactions, database side) and
  //    L (logs, HDFS side), with 10% local-predicate selectivity on both
  //    sides and 50% join-key selectivity.
  WorkloadConfig wc;
  wc.num_join_keys = 4096;
  wc.t_rows = 64 * 1024;
  wc.l_rows = 256 * 1024;
  auto workload = Workload::Generate(wc, SelectivitySpec{0.1, 0.1, 0.5, 0.5});
  if (!workload.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  // 2. Assemble the hybrid warehouse: a 4-worker parallel EDW, a 4-node
  //    HDFS cluster with a JEN worker per DataNode, and the interconnect.
  //    (All bandwidth throttles default to off; see SimulationConfig.)
  SimulationConfig config;
  config.db.num_workers = 4;
  config.jen_workers = 4;
  config.bloom.expected_keys = wc.num_join_keys;
  if (!trace_out.empty()) {
    config.trace.enabled = true;
    config.trace.chrome_out = trace_out;
  }
  HybridWarehouse warehouse(config);

  // 3. Load T into the database (hash-partitioned, with covering indexes)
  //    and L onto HDFS in the columnar format.
  if (Status st = LoadWorkload(&warehouse, *workload); !st.ok()) {
    std::fprintf(stderr, "load: %s\n", st.ToString().c_str());
    return 1;
  }

  // 4. The paper's query: local predicates on both tables, equi-join on
  //    joinKey, a post-join date predicate, COUNT(*) grouped by
  //    extract_group(groupByExtractCol).
  const HybridQuery query = workload->MakeQuery();
  std::printf("db   predicate: %s\n", query.db.predicate->ToString().c_str());
  std::printf("hdfs predicate: %s\n",
              query.hdfs.predicate->ToString().c_str());
  std::printf("post-join:      %s\n\n",
              query.post_join_predicate->ToString().c_str());

  // 5. Execute with the zigzag join (the paper's robust default).
  auto result = warehouse.Execute(query, JoinAlgorithm::kZigzag);
  if (!result.ok()) {
    std::fprintf(stderr, "execute: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 6. Print the first rows and the execution report.
  const RecordBatch& rows = result->rows;
  std::printf("%zu groups; first 10:\n  %-8s %s\n", rows.num_rows(), "group",
              "count");
  for (size_t r = 0; r < std::min<size_t>(rows.num_rows(), 10); ++r) {
    std::printf("  %-8lld %lld\n",
                static_cast<long long>(rows.column(0).i64()[r]),
                static_cast<long long>(rows.column(1).i64()[r]));
  }
  std::printf("\n%s\n", result->report.ToString().c_str());
  if (print_profile) {
    std::printf("\n%s", result->report.profile.ToText().c_str());
  }
  if (!profile_out.empty()) {
    if (Status st = result->report.profile.WriteJson(profile_out); !st.ok()) {
      std::fprintf(stderr, "profile_out: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("profile written to %s\n", profile_out.c_str());
  }
  return 0;
}
