// Demonstrates the algorithm advisor (§5.5 of the paper distilled into a
// cost model): three workload regimes, what the advisor recommends for
// each, and how the recommendation compares to actually running every
// algorithm on a bandwidth-throttled warehouse.

#include <cstdio>

#include "hybrid/warehouse.h"
#include "workload/loader.h"

using namespace hybridjoin;

namespace {

struct Scenario {
  const char* name;
  SelectivitySpec spec;
  const char* expectation;
};

SimulationConfig ThrottledConfig(uint64_t keys) {
  auto mb = [](double v) {
    return static_cast<uint64_t>(v * 1024 * 1024);
  };
  SimulationConfig c;
  c.db.num_workers = 3;
  c.jen_workers = 3;
  c.bloom.expected_keys = keys;
  c.datanode.disk_read_bps = mb(13);
  c.datanode.cache_read_bps = mb(60);
  c.net.hdfs_nic_bps = mb(12);
  c.net.db_nic_bps = mb(0.25);
  c.net.cross_switch_bps = mb(16);
  return c;
}

}  // namespace

int main() {
  const Scenario scenarios[] = {
      {"highly selective DB predicate (tiny T')",
       {0.002, 0.2, 1.0, 1.0},
       "broadcast or zigzag — the paper finds broadcast wins only in very "
       "limited cases,\n          and even then 'the advantage is not "
       "dramatic' (5.5)"},
      {"highly selective HDFS predicate (tiny L')",
       {0.2, 0.002, 1.0, 1.0},
       "db(BF): cheaper to pull the few HDFS rows into the EDW"},
      {"no selective predicate, selective join",
       {0.1, 0.3, 0.2, 0.2},
       "zigzag: both Bloom filters pay off"},
  };

  WorkloadConfig wc;
  wc.num_join_keys = 8192;
  wc.t_rows = 256 * 1024;
  wc.l_rows = 512 * 1024;

  for (const Scenario& scenario : scenarios) {
    std::printf("=== %s ===\nexpected: %s\n", scenario.name,
                scenario.expectation);
    auto workload = Workload::Generate(wc, scenario.spec);
    if (!workload.ok()) return 1;
    HybridWarehouse warehouse(ThrottledConfig(wc.num_join_keys));
    if (!LoadWorkload(&warehouse, *workload).ok()) return 1;
    const HybridQuery query = workload->MakeQuery();

    auto estimates = EstimateQuery(&warehouse.context(), query);
    if (!estimates.ok()) return 1;
    const Advice advice = AdviseAlgorithm(warehouse.context(), *estimates);
    std::printf("%s\n", advice.ToString().c_str());

    // Ground truth: run everything (warm run first, then measured).
    std::printf("measured:");
    double best_time = 1e100;
    JoinAlgorithm best = JoinAlgorithm::kZigzag;
    for (JoinAlgorithm algorithm :
         {JoinAlgorithm::kBroadcast, JoinAlgorithm::kDbSideBloom,
          JoinAlgorithm::kRepartitionBloom, JoinAlgorithm::kZigzag}) {
      (void)warehouse.Execute(query, algorithm);  // warm
      auto result = warehouse.Execute(query, algorithm);
      if (!result.ok()) return 1;
      std::printf("  %s %.3fs", JoinAlgorithmName(algorithm),
                  result->report.wall_seconds);
      if (result->report.wall_seconds < best_time) {
        best_time = result->report.wall_seconds;
        best = algorithm;
      }
    }
    std::printf("\nfastest in practice: %s; advisor chose: %s\n\n",
                JoinAlgorithmName(best),
                JoinAlgorithmName(advice.algorithm));
  }
  return 0;
}
