// A tiny SQL shell over a pre-loaded hybrid warehouse: type the paper's
// queries directly. The demo warehouse holds the synthetic T (database
// side) and L (HDFS side) tables.
//
//   $ ./examples/sql_shell                         # interactive
//   $ ./examples/sql_shell "SELECT ... GROUP BY ..."   # one-shot
//
// Example statement:
//   SELECT extract_group(L.groupByExtractCol), COUNT(*)
//   FROM T, L
//   WHERE T.corPred < 200000 AND L.corPred < 400000
//     AND T.joinKey = L.joinKey
//     AND T.predAfterJoin - L.predAfterJoin BETWEEN 0 AND 1
//   GROUP BY extract_group(L.groupByExtractCol)
//
// Prefix a statement with EXPLAIN ANALYZE to print the distributed
// per-node query profile (phase -> metric -> node) after the rows.
//
// Administrative statements (answered from the observability plane):
//   SHOW PROCESSLIST   -- in-flight queries: phase, elapsed, memory, spill
//   SHOW METRICS       -- Prometheus text exposition of the engine metrics
//   KILL <query_id>    -- cooperatively cancel an in-flight query

#include <cctype>
#include <cstdio>
#include <iostream>
#include <string>

#include "hybrid/warehouse.h"
#include "obs/promtext.h"
#include "obs/query_registry.h"
#include "sql/parser.h"
#include "workload/loader.h"

using namespace hybridjoin;

namespace {

bool StripExplainAnalyze(std::string* statement) {
  static constexpr const char kPrefix[] = "EXPLAIN ANALYZE ";
  constexpr size_t n = sizeof(kPrefix) - 1;
  if (statement->size() < n) return false;
  for (size_t i = 0; i < n; ++i) {
    if (std::toupper(static_cast<unsigned char>((*statement)[i])) !=
        kPrefix[i]) {
      return false;
    }
  }
  statement->erase(0, n);
  return true;
}

// Returns the statement's Status so one-shot mode can exit nonzero on a
// failed statement instead of swallowing the error.
Status RunStatement(HybridWarehouse& hw, std::string statement) {
  const bool explain_analyze = StripExplainAnalyze(&statement);
  // Administrative statements answer from the observability plane; the
  // shell has no server sessions, so SHOW SESSIONS explains itself.
  if (auto stmt = sql::ParseStatement(statement);
      stmt.ok() && stmt->kind != sql::StatementKind::kSelect) {
    switch (stmt->kind) {
      case sql::StatementKind::kShowProcesslist:
        std::printf("%s\n", obs::RenderProcessListText(
                                obs::QueryRegistry::Global().Snapshot())
                                .c_str());
        return Status::OK();
      case sql::StatementKind::kShowMetrics:
        std::printf("%s\n",
                    obs::RenderPrometheus(hw.context().metrics()).c_str());
        return Status::OK();
      case sql::StatementKind::kShowSessions:
        std::printf(
            "(the shell talks to the library directly; sessions exist "
            "only under the warehouse server)\n\n");
        return Status::OK();
      case sql::StatementKind::kKill: {
        const Status killed =
            obs::QueryRegistry::Global().Cancel(stmt->kill_query_id);
        if (killed.ok()) {
          std::printf("killing query %llu\n\n",
                      static_cast<unsigned long long>(stmt->kill_query_id));
        } else {
          std::printf("error: %s\n", killed.ToString().c_str());
        }
        return killed;
      }
      case sql::StatementKind::kSelect:
        break;  // unreachable
    }
  }
  Advice advice;
  auto result = hw.ExecuteSqlAuto(statement, &advice);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return result.status();
  }
  std::printf("-- %s\n", advice.ToString().c_str());
  const RecordBatch& rows = result->rows;
  std::printf("%-12s", "group");
  for (size_t c = 1; c < rows.num_columns(); ++c) {
    std::printf(" %-12s", rows.schema()->field(c).name.c_str());
  }
  std::printf("\n");
  const size_t shown = std::min<size_t>(rows.num_rows(), 20);
  for (size_t r = 0; r < shown; ++r) {
    std::printf("%-12lld", static_cast<long long>(rows.column(0).i64()[r]));
    for (size_t c = 1; c < rows.num_columns(); ++c) {
      std::printf(" %-12lld",
                  static_cast<long long>(rows.column(c).i64()[r]));
    }
    std::printf("\n");
  }
  if (rows.num_rows() > shown) {
    std::printf("... (%zu rows total)\n", rows.num_rows());
  }
  std::printf("(%zu rows, %.1f ms, %s)\n\n", rows.num_rows(),
              result->report.wall_seconds * 1e3,
              JoinAlgorithmName(result->report.algorithm));
  if (explain_analyze) {
    std::printf("%s\n", result->report.profile.ToText().c_str());
  }
  return Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("loading demo warehouse (T in the EDW, L on HDFS)...\n");
  WorkloadConfig wc;
  wc.num_join_keys = 4096;
  wc.t_rows = 64 * 1024;
  wc.l_rows = 256 * 1024;
  auto workload = Workload::Generate(wc, {0.1, 0.1, 0.5, 0.5});
  if (!workload.ok()) return 1;
  SimulationConfig config;
  config.db.num_workers = 4;
  config.jen_workers = 4;
  config.bloom.expected_keys = wc.num_join_keys;
  HybridWarehouse hw(config);
  if (!LoadWorkload(&hw, *workload).ok()) return 1;
  std::printf("tables: T%s db-side, L%s hdfs-side\n\n",
              Workload::TSchema()->ToString().c_str(),
              Workload::LSchema()->ToString().c_str());

  if (argc > 1) {
    return RunStatement(hw, argv[1]).ok() ? 0 : 1;
  }

  std::printf("enter a statement on one line (empty line to quit):\n");
  std::string line;
  while (std::printf("sql> "), std::getline(std::cin, line)) {
    if (line.empty()) break;
    (void)RunStatement(hw, line);  // interactive: report and keep going
  }
  return 0;
}
