// The paper's motivating scenario (§2): a retailer keeps sales transactions
// in the parallel database and click logs on HDFS, and asks
//
//   SELECT L.url_prefix, COUNT(*)
//   FROM   T, L
//   WHERE  T.category = 'Canon Camera'
//     AND  region(L.ip) = 'East Coast'
//     AND  T.uid = L.uid
//     AND  T.tdate >= L.ldate AND T.tdate <= L.ldate + 1
//   GROUP BY L.url_prefix
//
// "the number of views of the urls visited by customers with IP addresses
// from the East Coast who bought Canon cameras within one day of their
// online visits". The region and url-prefix functions run at ingestion
// time (a standard ETL choice); the join, date predicate and aggregation
// run in the hybrid warehouse.

#include <cstdio>
#include <map>

#include "expr/scalar_functions.h"
#include "hybrid/warehouse.h"

using namespace hybridjoin;

namespace {

constexpr uint32_t kCustomers = 20000;
constexpr uint32_t kTransactions = 120000;
constexpr uint32_t kClicks = 600000;
constexpr int32_t kBaseDate = 16000;

const char* kCategories[] = {"Canon Camera", "Laptop", "Headphones",
                             "Espresso Machine", "Running Shoes"};
const char* kSites[] = {"shop.example.com/cameras", "shop.example.com/deals",
                        "reviews.example.com/photo", "blog.example.com/gear",
                        "shop.example.com/lenses", "forum.example.com/canon"};

SchemaPtr TransactionSchema() {
  return Schema::Make({{"tid", DataType::kInt64},
                       {"uid", DataType::kInt32},
                       {"category", DataType::kString},
                       {"amount", DataType::kInt32},
                       {"tdate", DataType::kDate}});
}

SchemaPtr ClickSchema() {
  return Schema::Make({{"uid", DataType::kInt32},
                       {"ip", DataType::kString},
                       {"region", DataType::kString},
                       {"url", DataType::kString},
                       {"urlPrefixId", DataType::kInt32},
                       {"ldate", DataType::kDate}});
}

}  // namespace

int main() {
  Rng rng(2026);

  // --- Transactions into the EDW. ---
  RecordBatch transactions(TransactionSchema());
  transactions.Reserve(kTransactions);
  for (uint32_t i = 0; i < kTransactions; ++i) {
    transactions.AppendRow(
        {Value(static_cast<int64_t>(i)),
         Value(static_cast<int32_t>(rng.Uniform(kCustomers))),
         Value(std::string(kCategories[rng.Uniform(5)])),
         Value(static_cast<int32_t>(50 + rng.Uniform(2000))),
         Value(static_cast<int32_t>(kBaseDate + rng.Uniform(30)))});
  }

  // --- Click log onto HDFS. region(ip) and url_prefix(url) are computed
  //     during ingestion with the library's scalar functions. ---
  std::vector<RecordBatch> clicks;
  std::map<int32_t, std::string> prefix_names;
  {
    RecordBatch batch(ClickSchema());
    batch.Reserve(kClicks);
    char ip[32];
    for (uint32_t i = 0; i < kClicks; ++i) {
      std::snprintf(ip, sizeof(ip), "%u.%u.%u.%u",
                    static_cast<unsigned>(rng.Uniform(256)),
                    static_cast<unsigned>(rng.Uniform(256)),
                    static_cast<unsigned>(rng.Uniform(256)),
                    static_cast<unsigned>(1 + rng.Uniform(254)));
      const int32_t site = static_cast<int32_t>(rng.Uniform(6));
      const std::string url = std::string("http://") + kSites[site] +
                              "/item" + std::to_string(rng.Uniform(5000));
      prefix_names.emplace(site, UrlPrefix(url));
      batch.AppendRow({Value(static_cast<int32_t>(rng.Uniform(kCustomers))),
                       Value(std::string(ip)), Value(RegionOfIp(ip)),
                       Value(url), Value(site),
                       Value(static_cast<int32_t>(kBaseDate +
                                                  rng.Uniform(30)))});
    }
    clicks.push_back(std::move(batch));
  }

  SimulationConfig config;
  config.db.num_workers = 4;
  config.jen_workers = 4;
  config.bloom.expected_keys = kCustomers;
  HybridWarehouse warehouse(config);
  HJ_CHECK_OK(warehouse.CreateDbTable({"T", TransactionSchema(), "tid"}));
  HJ_CHECK_OK(warehouse.LoadDbTable("T", transactions));
  HdfsWriteOptions hdfs;
  hdfs.format = HdfsFormat::kColumnar;
  HJ_CHECK_OK(warehouse.WriteHdfsTable("clicks", ClickSchema(), hdfs, clicks));

  // --- The query. ---
  HybridQuery query;
  query.db.table = "T";
  query.db.alias = "T";
  query.db.predicate = Cmp("category", CmpOp::kEq, Value("Canon Camera"));
  query.db.projection = {"uid", "tdate"};
  query.db.join_key = "uid";
  query.hdfs.table = "clicks";
  query.hdfs.alias = "L";
  query.hdfs.predicate = Cmp("region", CmpOp::kEq, Value("East Coast"));
  query.hdfs.projection = {"uid", "ldate", "urlPrefixId"};
  query.hdfs.join_key = "uid";
  query.post_join_predicate = DiffRange("T.tdate", "L.ldate", 0, 1);
  query.agg = AggSpec::CountStar("L.urlPrefixId", /*extract_group=*/false);

  // Let the advisor pick the algorithm, then compare against the zigzag.
  Advice advice;
  auto result = warehouse.ExecuteAuto(query, &advice);
  if (!result.ok()) {
    std::fprintf(stderr, "execute: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n\n", advice.ToString().c_str());

  std::printf("views of url prefixes by East-Coast Canon-camera buyers "
              "(within one day of the visit):\n");
  const RecordBatch& rows = result->rows;
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    const int32_t site = static_cast<int32_t>(rows.column(0).i64()[r]);
    std::printf("  %-28s %6lld\n", prefix_names[site].c_str(),
                static_cast<long long>(rows.column(1).i64()[r]));
  }
  std::printf("\ntuples: HDFS scanned %lld, sent to DB-side join %lld, "
              "shuffled %lld; join output %lld\n",
              static_cast<long long>(
                  result->report.Counter(metric::kHdfsTuplesScanned)),
              static_cast<long long>(
                  result->report.Counter(metric::kHdfsTuplesSentToDb)),
              static_cast<long long>(
                  result->report.Counter(metric::kHdfsTuplesShuffled)),
              static_cast<long long>(
                  result->report.Counter(metric::kJoinOutputTuples)));
  return 0;
}
