// Multi-client warehouse server demo: one HybridWarehouse behind a
// WarehouseServer, N client threads each opening a session and pushing the
// paper's query through admission control concurrently.
//
//   $ ./examples/warehouse_server                  # 8 clients, 2 queries each
//   $ ./examples/warehouse_server --clients=16 --queries=4 --limit=2
//
// With more clients than the admission limit, the ticket lines show queries
// queueing (queued=1 with a wait) and — when the queue itself overflows past
// the deadline — being shed with RESOURCE_EXHAUSTED rather than crashing.
//
// Observability plane (all off by default):
//   --metrics_port=9464      serve GET /metrics on 127.0.0.1:9464
//   --metrics_out=m.prom     periodically rewrite a Prometheus text file
//   --event_log=events.jsonl JSON-lines lifecycle event log
//   --slow_query_dir=DIR --slow_ms=N   persist profiles of queries > N ms
//   --serve_seconds=N        keep the scrape endpoint up N s after the demo
//                            (for curl / CI scrapes)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/warehouse_server.h"
#include "workload/loader.h"

using namespace hybridjoin;

namespace {

const char kQuery[] =
    "SELECT extract_group(L.groupByExtractCol), COUNT(*) "
    "FROM T, L "
    "WHERE T.corPred < 200000 AND L.corPred < 400000 "
    "  AND T.joinKey = L.joinKey "
    "  AND T.predAfterJoin - L.predAfterJoin BETWEEN 0 AND 1 "
    "GROUP BY extract_group(L.groupByExtractCol)";

int FlagOr(int argc, char** argv, const std::string& name, int fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return std::atoi(arg.c_str() + prefix.size());
    }
  }
  return fallback;
}

std::string StrFlagOr(int argc, char** argv, const std::string& name,
                      const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) {
      return arg.substr(prefix.size());
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const int clients = FlagOr(argc, argv, "clients", 8);
  const int queries = FlagOr(argc, argv, "queries", 2);
  const int limit = FlagOr(argc, argv, "limit", 2);

  std::printf("loading demo warehouse (T in the EDW, L on HDFS)...\n");
  WorkloadConfig wc;
  wc.num_join_keys = 4096;
  wc.t_rows = 64 * 1024;
  wc.l_rows = 256 * 1024;
  auto workload = Workload::Generate(wc, {0.1, 0.1, 0.5, 0.5});
  if (!workload.ok()) return 1;
  SimulationConfig config;
  config.db.num_workers = 4;
  config.jen_workers = 4;
  config.bloom.expected_keys = wc.num_join_keys;
  HybridWarehouse hw(config);
  if (!LoadWorkload(&hw, *workload).ok()) return 1;

  server::ServerConfig sc;
  sc.admission.max_concurrent_queries = static_cast<uint32_t>(limit);
  sc.admission.max_queued = 2 * static_cast<size_t>(limit);
  sc.admission.queue_timeout = std::chrono::milliseconds(10000);
  const int metrics_port = FlagOr(argc, argv, "metrics_port", -1);
  if (metrics_port >= 0) {
    sc.observability.metrics_http = true;
    sc.observability.metrics_http_port = static_cast<uint16_t>(metrics_port);
  }
  sc.observability.metrics_out = StrFlagOr(argc, argv, "metrics_out", "");
  sc.observability.event_log_path = StrFlagOr(argc, argv, "event_log", "");
  sc.observability.slow_query_dir =
      StrFlagOr(argc, argv, "slow_query_dir", "");
  sc.observability.slow_query_seconds =
      FlagOr(argc, argv, "slow_ms", 0) / 1e3;
  server::WarehouseServer server(&hw, sc);
  if (server.metrics_port() != 0) {
    std::printf("metrics: http://127.0.0.1:%u/metrics\n",
                static_cast<unsigned>(server.metrics_port()));
  }

  std::printf(
      "serving %d clients x %d queries, %d concurrent, queue %zu deep\n\n",
      clients, queries, limit, sc.admission.max_queued);

  std::mutex print_mu;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const uint64_t session = server.OpenSession();
      for (int q = 0; q < queries; ++q) {
        auto result = server.Execute(session, kQuery);
        std::lock_guard<std::mutex> lock(print_mu);
        if (!result.ok()) {
          std::printf("client %2d: %s\n", c,
                      result.status().ToString().c_str());
          continue;
        }
        const server::QueryTicket& t = result->ticket;
        std::printf(
            "client %2d: ticket %3llu query %3llu  %-12s %5zu rows  "
            "%6.1f ms  queued=%d wait=%.1f ms\n",
            c, static_cast<unsigned long long>(t.ticket_id),
            static_cast<unsigned long long>(t.query_id),
            JoinAlgorithmName(t.algorithm), result->result.rows.num_rows(),
            result->result.report.wall_seconds * 1e3, t.queued ? 1 : 0,
            static_cast<double>(t.queue_wait_us) / 1e3);
      }
      (void)server.CloseSession(session);
    });
  }
  for (auto& t : threads) t.join();

  const server::ServerStats stats = server.stats();
  std::printf(
      "\nserver: %lld executed, %lld admitted (%lld after queueing), "
      "%lld shed, %lld rate-limited\n",
      static_cast<long long>(stats.executed),
      static_cast<long long>(stats.admission.admitted),
      static_cast<long long>(stats.admission.admitted_queued),
      static_cast<long long>(stats.admission.shed),
      static_cast<long long>(stats.rate_limited));

  const int serve_seconds = FlagOr(argc, argv, "serve_seconds", 0);
  if (serve_seconds > 0 && server.metrics_port() != 0) {
    std::printf("serving /metrics for %d more seconds...\n", serve_seconds);
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
  }
  return 0;
}
