// Shows what the HDFS storage format costs (§5.4 of the paper): writes the
// same log table as delimited text and as the columnar format, then
// compares on-disk size, per-column encodings, scan bytes with projection
// pushdown, and end-to-end zigzag join time on both.

#include <cstdio>

#include "hybrid/warehouse.h"
#include "workload/loader.h"

using namespace hybridjoin;

namespace {

SimulationConfig ThrottledConfig(uint64_t keys) {
  auto mb = [](double v) {
    return static_cast<uint64_t>(v * 1024 * 1024);
  };
  SimulationConfig c;
  c.db.num_workers = 3;
  c.jen_workers = 3;
  c.bloom.expected_keys = keys;
  c.datanode.disk_read_bps = mb(13);
  c.datanode.cache_read_bps = mb(60);
  c.net.hdfs_nic_bps = mb(12);
  c.net.db_nic_bps = mb(0.25);
  c.net.cross_switch_bps = mb(16);
  return c;
}

}  // namespace

int main() {
  WorkloadConfig wc;
  wc.num_join_keys = 8192;
  wc.t_rows = 128 * 1024;
  wc.l_rows = 512 * 1024;
  auto workload = Workload::Generate(wc, SelectivitySpec{0.1, 0.2, 0.5, 0.5});
  if (!workload.ok()) return 1;

  for (HdfsFormat format : {HdfsFormat::kText, HdfsFormat::kColumnar}) {
    HybridWarehouse warehouse(ThrottledConfig(wc.num_join_keys));
    LoadOptions load;
    load.hdfs.format = format;
    if (!LoadWorkload(&warehouse, *workload, load).ok()) return 1;

    EngineContext& ctx = warehouse.context();
    const uint64_t file_bytes =
        ctx.namenode().FileSize("/warehouse/L").ValueOr(0);
    // The paper's memory asymmetry (5.4): the text table exceeds cluster
    // memory (disk-bound scans every run), the columnar table fits in the
    // page cache (warm scans). Size each node's cache accordingly.
    {
      const uint64_t per_node = file_bytes *
                                ctx.config().hdfs_replication /
                                ctx.num_jen_workers();
      const uint64_t capacity = format == HdfsFormat::kText
                                    ? static_cast<uint64_t>(per_node * 0.4)
                                    : per_node * 4;
      for (uint32_t i = 0; i < ctx.num_jen_workers(); ++i) {
        ctx.datanode(i)->SetCacheCapacity(capacity);
      }
    }
    std::printf("=== %s format ===\n", HdfsFormatName(format));
    std::printf("table size: %.1f MB (%.1f bytes/row)\n",
                file_bytes / 1048576.0,
                static_cast<double>(file_bytes) / wc.l_rows);

    if (format == HdfsFormat::kColumnar) {
      // Peek at the first block's encodings.
      auto blocks = ctx.namenode().GetBlocks("/warehouse/L");
      if (blocks.ok() && !blocks->empty()) {
        auto stored = ctx.datanode((*blocks)[0].replicas[0].node)
                          ->Fetch((*blocks)[0].block_id);
        if (stored.ok()) {
          const SchemaPtr& schema = Workload::LSchema();
          std::printf("per-column encodings of block 0:\n");
          for (size_t c = 0; c < (*stored)->columnar->chunks.size(); ++c) {
            const ColumnChunk& chunk = (*stored)->columnar->chunks[c];
            std::printf("  %-18s %-6s codec=%-5s %8zu bytes%s\n",
                        schema->field(c).name.c_str(),
                        ColEncodingName(chunk.encoding),
                        CodecName(chunk.codec), chunk.data.size(),
                        chunk.has_stats ? "  [min/max]" : "");
          }
        }
      }
    }

    const HybridQuery query = workload->MakeQuery();
    (void)warehouse.Execute(query, JoinAlgorithm::kZigzag);  // warm
    auto result = warehouse.Execute(query, JoinAlgorithm::kZigzag);
    if (!result.ok()) return 1;
    std::printf("zigzag join: %.3f s, HDFS bytes read %.1f MB "
                "(projection pushdown %s)\n\n",
                result->report.wall_seconds,
                result->report.Counter(metric::kHdfsBytesRead) / 1048576.0,
                format == HdfsFormat::kColumnar ? "on" : "n/a");
  }
  return 0;
}
