#include "edw/db_cluster.h"

#include <mutex>
#include <shared_mutex>
#include <numeric>

#include "common/hash.h"

namespace hybridjoin {

namespace {

std::string IndexKey(const std::vector<std::string>& columns) {
  std::string key;
  for (const auto& c : columns) {
    if (!key.empty()) key += ',';
    key += c;
  }
  return key;
}

}  // namespace

DbCluster::DbCluster(const DbConfig& config) : config_(config) {
  HJ_CHECK_GT(config_.num_workers, 0u);
  workers_.reserve(config_.num_workers);
  for (uint32_t i = 0; i < config_.num_workers; ++i) {
    workers_.push_back(std::make_unique<DbWorker>(this, i));
  }
}

Status DbCluster::CreateTable(DbTableMeta meta) {
  if (meta.schema == nullptr || !meta.schema->HasColumn(
          meta.distribution_column)) {
    return Status::InvalidArgument(
        "distribution column missing from schema");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = tables_.try_emplace(meta.name);
  if (!inserted) {
    return Status::AlreadyExists("db table '" + meta.name +
                                 "' already exists");
  }
  it->second.meta = std::move(meta);
  it->second.partitions.resize(config_.num_workers);
  it->second.indexes.resize(config_.num_workers);
  return Status::OK();
}

Status DbCluster::LoadTable(const std::string& name,
                            const RecordBatch& rows) {
  // Exclusive for the whole load: concurrent readers of this table must
  // never observe a partition vector mid-append.
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("db table '" + name + "' does not exist");
  }
  TableData* table = &it->second;
  if (!(*rows.schema() == *table->meta.schema)) {
    return Status::InvalidArgument("batch schema does not match table");
  }
  HJ_ASSIGN_OR_RETURN(
      size_t dist_col,
      rows.schema()->IndexOf(table->meta.distribution_column));
  const ColumnVector& key = rows.column(dist_col);
  if (key.physical_type() != PhysicalType::kInt32 &&
      key.physical_type() != PhysicalType::kInt64) {
    return Status::InvalidArgument("distribution column must be integer");
  }

  std::vector<RecordBatch> pending;
  pending.reserve(config_.num_workers);
  for (uint32_t w = 0; w < config_.num_workers; ++w) {
    pending.emplace_back(table->meta.schema);
  }
  // Distribution hash is deliberately different from the JEN "agreed hash";
  // the paper stresses that DB2's internal partitioning is opaque to HDFS.
  constexpr uint64_t kDistSeed = 0xd157ULL;
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    const int64_t k = key.physical_type() == PhysicalType::kInt32
                          ? key.i32()[r]
                          : key.i64()[r];
    const uint32_t w = static_cast<uint32_t>(
        HashInt64(static_cast<uint64_t>(k), kDistSeed) % config_.num_workers);
    pending[w].AppendRowFrom(rows, r);
    if (pending[w].num_rows() >= config_.batch_rows) {
      table->partitions[w].push_back(std::move(pending[w]));
      pending[w] = RecordBatch(table->meta.schema);
    }
  }
  for (uint32_t w = 0; w < config_.num_workers; ++w) {
    if (pending[w].num_rows() > 0) {
      table->partitions[w].push_back(std::move(pending[w]));
    }
  }
  return Status::OK();
}

Status DbCluster::CreateIndex(const std::string& table,
                              const std::vector<std::string>& columns) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("db table '" + table + "' does not exist");
  }
  TableData* data = &it->second;
  if (columns.empty()) {
    return Status::InvalidArgument("index needs at least one column");
  }
  // Validate against the schema up front: partitions may be empty at DDL
  // time, so the per-partition Build() cannot be relied on to reject bad
  // column lists.
  for (const std::string& column : columns) {
    HJ_ASSIGN_OR_RETURN(size_t idx, data->meta.schema->IndexOf(column));
    const PhysicalType type =
        PhysicalTypeOf(data->meta.schema->field(idx).type);
    if (type != PhysicalType::kInt32 && type != PhysicalType::kInt64) {
      return Status::InvalidArgument("index column '" + column +
                                     "' is not integer-typed");
    }
  }
  const std::string key = IndexKey(columns);
  for (uint32_t w = 0; w < config_.num_workers; ++w) {
    HJ_ASSIGN_OR_RETURN(DbPartitionIndex index,
                        DbPartitionIndex::Build(data->partitions[w], columns));
    data->indexes[w].emplace(key, std::move(index));
  }
  return Status::OK();
}

Result<DbTableMeta> DbCluster::LookupTable(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("db table '" + name + "' does not exist");
  }
  return it->second.meta;
}

Result<uint64_t> DbCluster::TableRows(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const TableData* table = FindTableLocked(name);
  if (table == nullptr) {
    return Status::NotFound("db table '" + name + "' does not exist");
  }
  uint64_t total = 0;
  for (const auto& part : table->partitions) {
    for (const auto& batch : part) total += batch.num_rows();
  }
  return total;
}

const DbCluster::TableData* DbCluster::FindTableLocked(
    const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

Result<const std::vector<RecordBatch>*> DbWorker::Partition(
    const std::string& table) const {
  std::shared_lock<std::shared_mutex> lock(cluster_->mu_);
  const DbCluster::TableData* data = cluster_->FindTableLocked(table);
  if (data == nullptr) {
    return Status::NotFound("db table '" + table + "' does not exist");
  }
  return &data->partitions[index_];
}

Result<RecordBatch> DbWorker::SampleFirstBatch(
    const std::string& table) const {
  std::shared_lock<std::shared_mutex> lock(cluster_->mu_);
  const DbCluster::TableData* data = cluster_->FindTableLocked(table);
  if (data == nullptr) {
    return Status::NotFound("db table '" + table + "' does not exist");
  }
  const std::vector<RecordBatch>& partition = data->partitions[index_];
  if (partition.empty()) return RecordBatch(data->meta.schema);
  return partition[0];
}

Result<RecordBatch> DbWorker::SampleStoredBatch(const std::string& table,
                                                uint64_t seed) const {
  std::shared_lock<std::shared_mutex> lock(cluster_->mu_);
  const DbCluster::TableData* data = cluster_->FindTableLocked(table);
  if (data == nullptr) {
    return Status::NotFound("db table '" + table + "' does not exist");
  }
  const std::vector<RecordBatch>& partition = data->partitions[index_];
  if (partition.empty()) return RecordBatch(data->meta.schema);
  return partition[seed % partition.size()];
}

Result<std::vector<RecordBatch>> DbWorker::ScanFilterProject(
    const std::string& table, const PredicatePtr& predicate,
    const std::vector<std::string>& projection, Metrics* metrics) const {
  trace::Span span(cluster_->tracer(), trace::span::kDbScan,
                   trace::span::kCatScan, node());
  std::shared_lock<std::shared_mutex> lock(cluster_->mu_);
  const DbCluster::TableData* data = cluster_->FindTableLocked(table);
  if (data == nullptr) {
    return Status::NotFound("db table '" + table + "' does not exist");
  }
  const std::vector<RecordBatch>* partition = &data->partitions[index_];
  std::vector<RecordBatch> out;
  int64_t scanned = 0;
  int64_t kept = 0;
  for (const RecordBatch& batch : *partition) {
    scanned += static_cast<int64_t>(batch.num_rows());
    std::vector<uint32_t> sel(batch.num_rows());
    for (uint32_t i = 0; i < sel.size(); ++i) sel[i] = i;
    if (predicate != nullptr) {
      HJ_RETURN_IF_ERROR(predicate->Filter(batch, &sel));
    }
    kept += static_cast<int64_t>(sel.size());
    if (sel.empty()) continue;
    std::vector<size_t> indices;
    indices.reserve(projection.size());
    for (const std::string& name : projection) {
      HJ_ASSIGN_OR_RETURN(size_t idx, batch.schema()->IndexOf(name));
      indices.push_back(idx);
    }
    out.push_back(batch.Project(indices).Gather(sel));
  }
  if (metrics != nullptr) {
    // Tag the scan-stat mirror for the query profile's phase tree.
    Metrics::PhaseScope phase_scope("scan");
    metrics->Add(metric::kDbTuplesScanned, scanned);
    metrics->Add(metric::kDbTuplesAfterFilter, kept);
  }
  return out;
}

Result<BloomFilter> DbWorker::BuildLocalBloom(const std::string& table,
                                              const PredicatePtr& predicate,
                                              const std::string& key_column,
                                              const BloomParams& params,
                                              bool* used_index,
                                              HeavyHitterSketch* sketch,
                                              uint64_t* qualifying_rows) const {
  trace::Span span(cluster_->tracer(), trace::span::kDbBloomBuild,
                   trace::span::kCatScan, node());
  std::shared_lock<std::shared_mutex> lock(cluster_->mu_);
  const DbCluster::TableData* data = cluster_->FindTableLocked(table);
  if (data == nullptr) {
    return Status::NotFound("db table '" + table + "' does not exist");
  }
  BloomFilter bloom(params);
  if (used_index != nullptr) *used_index = false;
  if (qualifying_rows != nullptr) *qualifying_rows = 0;

  // Index-only plan: any index covering the predicate and the key column.
  if (predicate != nullptr) {
    for (const auto& [name, index] : data->indexes[index_]) {
      if (!index.Covers(*predicate, key_column)) continue;
      std::vector<ConjunctiveIntCmp> cmps;
      predicate->CollectConjunctiveIntCmps(&cmps);
      uint64_t rows = 0;
      HJ_RETURN_IF_ERROR(index.ScanValues(
          cmps, key_column, [&bloom, &rows, sketch](int64_t key) {
            bloom.Add(key);
            ++rows;
            if (sketch != nullptr) sketch->Add(key);
          }));
      if (used_index != nullptr) *used_index = true;
      if (qualifying_rows != nullptr) *qualifying_rows = rows;
      return bloom;
    }
  }

  // Fallback: base-table scan.
  for (const RecordBatch& batch : data->partitions[index_]) {
    std::vector<uint32_t> sel(batch.num_rows());
    for (uint32_t i = 0; i < sel.size(); ++i) sel[i] = i;
    if (predicate != nullptr) {
      HJ_RETURN_IF_ERROR(predicate->Filter(batch, &sel));
    }
    if (qualifying_rows != nullptr) *qualifying_rows += sel.size();
    HJ_ASSIGN_OR_RETURN(size_t key_idx, batch.schema()->IndexOf(key_column));
    const ColumnVector& key = batch.column(key_idx);
    if (key.physical_type() == PhysicalType::kInt32) {
      bloom.AddKeys(std::span<const int32_t>(key.i32()),
                    std::span<const uint32_t>(sel));
      if (sketch != nullptr) {
        for (uint32_t r : sel) sketch->Add(key.i32()[r]);
      }
    } else {
      bloom.AddKeys(std::span<const int64_t>(key.i64()),
                    std::span<const uint32_t>(sel));
      if (sketch != nullptr) {
        for (uint32_t r : sel) sketch->Add(key.i64()[r]);
      }
    }
  }
  return bloom;
}

}  // namespace hybridjoin
