#include "edw/db_index.h"

#include <algorithm>
#include <numeric>

namespace hybridjoin {

namespace {

/// Intersects the bound implied by `op lit` with [lo, hi] over int64.
void TightenBound(CmpOp op, int64_t lit, int64_t* lo, int64_t* hi) {
  switch (op) {
    case CmpOp::kEq:
      *lo = std::max(*lo, lit);
      *hi = std::min(*hi, lit);
      break;
    case CmpOp::kLt:
      *hi = std::min(*hi, lit - 1);
      break;
    case CmpOp::kLe:
      *hi = std::min(*hi, lit);
      break;
    case CmpOp::kGt:
      *lo = std::max(*lo, lit + 1);
      break;
    case CmpOp::kGe:
      *lo = std::max(*lo, lit);
      break;
    case CmpOp::kNe:
      break;  // not a range constraint
  }
}

bool EvalCmp(CmpOp op, int64_t v, int64_t lit) {
  switch (op) {
    case CmpOp::kEq:
      return v == lit;
    case CmpOp::kNe:
      return v != lit;
    case CmpOp::kLt:
      return v < lit;
    case CmpOp::kLe:
      return v <= lit;
    case CmpOp::kGt:
      return v > lit;
    case CmpOp::kGe:
      return v >= lit;
  }
  return false;
}

}  // namespace

Result<DbPartitionIndex> DbPartitionIndex::Build(
    const std::vector<RecordBatch>& partition,
    const std::vector<std::string>& columns) {
  if (columns.empty()) {
    return Status::InvalidArgument("index needs at least one column");
  }
  DbPartitionIndex index;
  index.columns_ = columns;
  index.cols_.resize(columns.size());

  for (const RecordBatch& batch : partition) {
    std::vector<const ColumnVector*> sources;
    sources.reserve(columns.size());
    for (const std::string& name : columns) {
      HJ_ASSIGN_OR_RETURN(size_t idx, batch.schema()->IndexOf(name));
      const ColumnVector& cv = batch.column(idx);
      if (cv.physical_type() != PhysicalType::kInt32 &&
          cv.physical_type() != PhysicalType::kInt64) {
        return Status::InvalidArgument("index column '" + name +
                                       "' is not integer-typed");
      }
      sources.push_back(&cv);
    }
    for (size_t r = 0; r < batch.num_rows(); ++r) {
      for (size_t c = 0; c < sources.size(); ++c) {
        const ColumnVector& cv = *sources[c];
        index.cols_[c].push_back(cv.physical_type() == PhysicalType::kInt32
                                     ? cv.i32()[r]
                                     : cv.i64()[r]);
      }
    }
  }

  // Sort entries lexicographically via a permutation.
  const size_t n = index.cols_[0].size();
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  std::sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t b) {
    for (const auto& col : index.cols_) {
      if (col[a] != col[b]) return col[a] < col[b];
    }
    return false;
  });
  for (auto& col : index.cols_) {
    std::vector<int64_t> sorted(n);
    for (size_t i = 0; i < n; ++i) sorted[i] = col[perm[i]];
    col = std::move(sorted);
  }
  return index;
}

bool DbPartitionIndex::Covers(const Predicate& predicate,
                              const std::string& output_column) const {
  if (!predicate.IsConjunctiveIntCmps()) return false;
  std::vector<std::string> used;
  predicate.CollectColumns(&used);
  used.push_back(output_column);
  for (const std::string& name : used) {
    if (std::find(columns_.begin(), columns_.end(), name) == columns_.end()) {
      return false;
    }
  }
  return true;
}

Status DbPartitionIndex::ScanValues(
    const std::vector<ConjunctiveIntCmp>& cmps,
    const std::string& output_column,
    const std::function<void(int64_t)>& fn) const {
  auto out_it = std::find(columns_.begin(), columns_.end(), output_column);
  if (out_it == columns_.end()) {
    return Status::InvalidArgument("output column not in index");
  }
  const size_t out_col = static_cast<size_t>(out_it - columns_.begin());

  // Resolve each comparison to an indexed column.
  struct Bound {
    size_t col;
    CmpOp op;
    int64_t lit;
  };
  std::vector<Bound> residual;
  int64_t lead_lo = std::numeric_limits<int64_t>::min();
  int64_t lead_hi = std::numeric_limits<int64_t>::max();
  for (const auto& cmp : cmps) {
    auto it = std::find(columns_.begin(), columns_.end(), cmp.column);
    if (it == columns_.end()) {
      return Status::InvalidArgument("predicate column '" + cmp.column +
                                     "' not in index");
    }
    const size_t col = static_cast<size_t>(it - columns_.begin());
    if (col == 0 && cmp.op != CmpOp::kNe) {
      TightenBound(cmp.op, cmp.literal, &lead_lo, &lead_hi);
    } else {
      residual.push_back({col, cmp.op, cmp.literal});
    }
  }
  if (cols_.empty() || cols_[0].empty() || lead_lo > lead_hi) {
    return Status::OK();
  }

  const auto& lead = cols_[0];
  const auto begin =
      std::lower_bound(lead.begin(), lead.end(), lead_lo) - lead.begin();
  const auto end =
      std::upper_bound(lead.begin(), lead.end(), lead_hi) - lead.begin();
  for (auto i = begin; i < end; ++i) {
    bool pass = true;
    for (const Bound& b : residual) {
      if (!EvalCmp(b.op, cols_[b.col][i], b.lit)) {
        pass = false;
        break;
      }
    }
    if (pass) fn(cols_[out_col][i]);
  }
  return Status::OK();
}

}  // namespace hybridjoin
