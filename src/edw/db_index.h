// DbPartitionIndex: a sorted composite index over the integer columns of
// one table partition, supporting index-only evaluation of conjunctive
// integer predicates.
//
// This models the paper's setup (§5): an index on (corPred, indPred,
// joinKey) lets DB2 compute the Bloom filter with an index-only access plan,
// which is why scanning the database table twice in the zigzag join is
// cheap relative to re-scanning HDFS.

#ifndef HYBRIDJOIN_EDW_DB_INDEX_H_
#define HYBRIDJOIN_EDW_DB_INDEX_H_

#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/predicate.h"
#include "types/record_batch.h"

namespace hybridjoin {

/// Immutable sorted index over int-typed columns of one partition.
class DbPartitionIndex {
 public:
  /// Builds from the partition's batches. All `columns` must be
  /// integer-physical. Entries are sorted lexicographically by `columns`.
  static Result<DbPartitionIndex> Build(
      const std::vector<RecordBatch>& partition,
      const std::vector<std::string>& columns);

  const std::vector<std::string>& columns() const { return columns_; }
  size_t num_entries() const {
    return cols_.empty() ? 0 : cols_[0].size();
  }

  /// True if the predicate can be answered from this index alone: it is a
  /// pure conjunction of integer comparisons, and (together with the output
  /// column) touches only indexed columns.
  bool Covers(const Predicate& predicate,
              const std::string& output_column) const;

  /// Index-only scan: streams the `output_column` value of every entry
  /// satisfying `cmps` (a conjunction). Uses a binary-searched range on the
  /// leading column when a comparison constrains it; residual comparisons
  /// are applied to the remaining columns.
  Status ScanValues(const std::vector<ConjunctiveIntCmp>& cmps,
                    const std::string& output_column,
                    const std::function<void(int64_t)>& fn) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<int64_t>> cols_;  // SoA, sorted lexicographically
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_EDW_DB_INDEX_H_
