// DbCluster / DbWorker: the shared-nothing parallel EDW substrate (the
// paper's DB2 DPF). Tables are hash-partitioned across workers on a
// distribution column; each worker owns its partition, its indexes, and a
// network endpoint. The UDF surface the paper adds to DB2 (cal_filter /
// get_filter / combine_filter) maps onto BuildLocalBloom + Bloom union.

#ifndef HYBRIDJOIN_EDW_DB_CLUSTER_H_
#define HYBRIDJOIN_EDW_DB_CLUSTER_H_

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "bloom/bloom_filter.h"
#include "common/metrics.h"
#include "edw/db_index.h"
#include "exec/heavy_hitters.h"
#include "expr/predicate.h"
#include "net/network.h"
#include "trace/tracer.h"
#include "types/record_batch.h"

namespace hybridjoin {

struct DbConfig {
  uint32_t num_workers = 4;
  /// Rows per batch when partitioning loaded data.
  uint32_t batch_rows = 64 * 1024;
};

/// Catalog entry for a database table.
struct DbTableMeta {
  std::string name;
  SchemaPtr schema;
  std::string distribution_column;  ///< hash-partitioning key (int-typed)
};

class DbCluster;

/// One database worker (the paper runs 6 per server, 30 total). All methods
/// are called from the driver thread assigned to this worker.
class DbWorker {
 public:
  DbWorker(DbCluster* cluster, uint32_t index)
      : cluster_(cluster), index_(index) {}

  uint32_t index() const { return index_; }
  NodeId node() const { return NodeId::Db(index_); }

  /// This worker's slice of a table. The pointer stays valid for the
  /// table's lifetime (map nodes are stable), but the batches behind it are
  /// only guaranteed stable while no concurrent LoadTable/CreateIndex runs
  /// on the *same* table — concurrency-safe readers go through
  /// ScanFilterProject/BuildLocalBloom/SampleFirstBatch, which hold the
  /// catalog read lock for their full duration.
  Result<const std::vector<RecordBatch>*> Partition(
      const std::string& table) const;

  /// A copy of this worker's first stored batch (empty batch with the
  /// table schema when the partition holds no rows), taken under the
  /// catalog read lock — the DDL-safe way to sample a table.
  Result<RecordBatch> SampleFirstBatch(const std::string& table) const;

  /// Like SampleFirstBatch, but returns the stored batch at
  /// `seed % partition_size` — a seeded pseudo-random pick, so estimators
  /// are not systematically biased toward whatever the load order put
  /// first (rows clustered by a predicate column made the first batch
  /// arbitrarily unrepresentative).
  Result<RecordBatch> SampleStoredBatch(const std::string& table,
                                        uint64_t seed) const;

  /// Scan + filter + project this worker's partition. Emits one output
  /// batch per stored batch (skipping empty ones).
  Result<std::vector<RecordBatch>> ScanFilterProject(
      const std::string& table, const PredicatePtr& predicate,
      const std::vector<std::string>& projection, Metrics* metrics) const;

  /// The paper's cal_filter/get_filter UDF pair: builds the local Bloom
  /// filter over `key_column` of the rows satisfying `predicate`, using an
  /// index-only plan when a covering index exists (sets *used_index). When
  /// `sketch` is non-null the same pass also feeds the heavy-hitter sketch
  /// one Add per qualifying row — the skew-aware shuffle's piggybacked
  /// hot-key detection (both the index-only and the base-scan plan visit
  /// every qualifying row, so the counts are exact either way). When
  /// `qualifying_rows` is non-null it receives that exact row count — the
  /// observed build-side cardinality the adaptive decision point runs on.
  Result<BloomFilter> BuildLocalBloom(const std::string& table,
                                      const PredicatePtr& predicate,
                                      const std::string& key_column,
                                      const BloomParams& params,
                                      bool* used_index,
                                      HeavyHitterSketch* sketch = nullptr,
                                      uint64_t* qualifying_rows = nullptr) const;

 private:
  DbCluster* cluster_;
  uint32_t index_;
};

/// The whole parallel database.
class DbCluster {
 public:
  explicit DbCluster(const DbConfig& config);

  uint32_t num_workers() const { return config_.num_workers; }
  DbWorker* worker(uint32_t i) { return workers_[i].get(); }

  /// Installs the tracer recording edw.scan / edw.bloom_build spans
  /// (nullptr disables, the default).
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }

  /// Registers a table in the catalog.
  Status CreateTable(DbTableMeta meta);

  /// Loads rows, hash-partitioning them on the distribution column.
  Status LoadTable(const std::string& name, const RecordBatch& rows);

  /// Builds a per-partition sorted composite index over integer columns
  /// (e.g. {"corPred", "indPred", "joinKey"}).
  Status CreateIndex(const std::string& table,
                     const std::vector<std::string>& columns);

  Result<DbTableMeta> LookupTable(const std::string& name) const;

  /// Total rows across all partitions.
  Result<uint64_t> TableRows(const std::string& name) const;

 private:
  friend class DbWorker;

  struct TableData {
    DbTableMeta meta;
    /// partitions[worker] -> batches.
    std::vector<std::vector<RecordBatch>> partitions;
    /// indexes[worker], keyed by first declared column list, joined by ','.
    std::vector<std::map<std::string, DbPartitionIndex>> indexes;
  };

  /// Requires mu_ held (shared or exclusive).
  const TableData* FindTableLocked(const std::string& name) const;

  DbConfig config_;
  trace::Tracer* tracer_ = nullptr;
  std::vector<std::unique_ptr<DbWorker>> workers_;
  /// Catalog reader-writer lock: DDL (CreateTable/LoadTable/CreateIndex)
  /// takes it exclusively for the whole mutation; query-path readers take
  /// it shared for their whole read, so DDL and queries interleave safely.
  mutable std::shared_mutex mu_;
  std::map<std::string, TableData> tables_;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_EDW_DB_CLUSTER_H_
