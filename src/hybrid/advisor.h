// AlgorithmAdvisor: encodes the decision rules of the paper's discussion
// (§5.5) as a coarse communication/scan cost model over the configured
// bandwidths: broadcast only for tiny T', DB-side only for very selective
// HDFS predicates, zigzag otherwise.

#ifndef HYBRIDJOIN_HYBRID_ADVISOR_H_
#define HYBRIDJOIN_HYBRID_ADVISOR_H_

#include "hybrid/context.h"
#include "hybrid/query.h"
#include "hybrid/report.h"

namespace hybridjoin {

/// Size/selectivity estimates driving the choice.
struct QueryEstimates {
  uint64_t db_filtered_bytes = 0;    ///< |T'| across all workers
  uint64_t hdfs_filtered_bytes = 0;  ///< |L'| across all workers
  uint64_t hdfs_scan_bytes = 0;      ///< bytes the HDFS scan must read
  /// Join-key selectivities if known (1.0 = no join pruning expected).
  double db_joinkey_selectivity = 1.0;
  double hdfs_joinkey_selectivity = 1.0;
};

/// Per-algorithm estimated cost (seconds) plus the pick. When the adaptive
/// layer re-runs the model with observed prefix statistics, the observed_*
/// costs and the final (possibly pivoted) pick are filled in too, so
/// EXPLAIN ANALYZE can show estimate vs. observation side by side.
struct Advice {
  JoinAlgorithm algorithm = JoinAlgorithm::kZigzag;  ///< initial pick
  double broadcast_cost = 0;
  double db_side_cost = 0;
  double zigzag_cost = 0;

  /// Decision-point re-run (set by DecidePivot). `final_algorithm` is what
  /// actually executes; it equals `algorithm` unless `pivoted`.
  bool has_observed = false;
  double observed_broadcast_cost = 0;
  double observed_db_side_cost = 0;
  double observed_zigzag_cost = 0;
  JoinAlgorithm final_algorithm = JoinAlgorithm::kZigzag;
  bool pivoted = false;
  std::string pivot_reason;

  std::string ToString() const;
};

/// Chooses among broadcast, db(BF) and zigzag with a coarse cost model
/// using the context's configured bandwidths.
Advice AdviseAlgorithm(const EngineContext& ctx, const QueryEstimates& est);

/// The adaptive stay-or-pivot rule: re-runs the cost model with `observed`
/// and pivots away from `initial.algorithm` only when the observed cost of
/// staying exceeds the observed best by more than `pivot_threshold`
/// (hysteresis — near-ties never pivot). Returns `initial` augmented with
/// the observed costs, final_algorithm, pivoted and pivot_reason.
Advice DecidePivot(const EngineContext& ctx, const Advice& initial,
                   const QueryEstimates& observed, double pivot_threshold);

/// Estimates selectivities/sizes by sampling: one seeded-random stored
/// batch of the DB table on worker 0 and one seeded-random block of the
/// HDFS table (seed: AdaptiveConfig::sample_seed, so runs reproduce).
///
/// Residual bias: a single batch/block is representative only when rows are
/// i.i.d. across storage order. Rows clustered by a predicate column (see
/// WorkloadConfig::cluster_*_by_pred) make ANY single sample arbitrarily
/// wrong no matter how it is picked — the seeded pick only removes the
/// systematic first-position bias. Correcting the residual is exactly what
/// the adaptive decision point (hybrid/adaptive_join.cc) is for: it re-runs
/// this cost model with the prefix's observed values.
Result<QueryEstimates> EstimateQuery(EngineContext* ctx,
                                     const HybridQuery& query);

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_HYBRID_ADVISOR_H_
