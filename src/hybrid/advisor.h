// AlgorithmAdvisor: encodes the decision rules of the paper's discussion
// (§5.5) as a coarse communication/scan cost model over the configured
// bandwidths: broadcast only for tiny T', DB-side only for very selective
// HDFS predicates, zigzag otherwise.

#ifndef HYBRIDJOIN_HYBRID_ADVISOR_H_
#define HYBRIDJOIN_HYBRID_ADVISOR_H_

#include "hybrid/context.h"
#include "hybrid/query.h"
#include "hybrid/report.h"

namespace hybridjoin {

/// Size/selectivity estimates driving the choice.
struct QueryEstimates {
  uint64_t db_filtered_bytes = 0;    ///< |T'| across all workers
  uint64_t hdfs_filtered_bytes = 0;  ///< |L'| across all workers
  uint64_t hdfs_scan_bytes = 0;      ///< bytes the HDFS scan must read
  /// Join-key selectivities if known (1.0 = no join pruning expected).
  double db_joinkey_selectivity = 1.0;
  double hdfs_joinkey_selectivity = 1.0;
};

/// Per-algorithm estimated cost (seconds) plus the pick.
struct Advice {
  JoinAlgorithm algorithm = JoinAlgorithm::kZigzag;
  double broadcast_cost = 0;
  double db_side_cost = 0;
  double zigzag_cost = 0;
  std::string ToString() const;
};

/// Chooses among broadcast, db(BF) and zigzag with a coarse cost model
/// using the context's configured bandwidths.
Advice AdviseAlgorithm(const EngineContext& ctx, const QueryEstimates& est);

/// Estimates selectivities/sizes by sampling: the first stored batch of the
/// DB table on worker 0 and the first block of the HDFS table.
Result<QueryEstimates> EstimateQuery(EngineContext* ctx,
                                     const HybridQuery& query);

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_HYBRID_ADVISOR_H_
