// The join drivers — one entry point per algorithm of §3, plus a prepared
// query shared by all of them. These are the functions HybridWarehouse
// dispatches to.

#ifndef HYBRIDJOIN_HYBRID_ALGORITHMS_H_
#define HYBRIDJOIN_HYBRID_ALGORITHMS_H_

#include "bloom/bloom_filter.h"
#include "hybrid/advisor.h"
#include "hybrid/context.h"
#include "hybrid/query.h"
#include "hybrid/report.h"
#include "jen/coordinator.h"

namespace hybridjoin {

namespace driver {
struct AdaptiveCarry;  // hybrid/driver_common.h
}  // namespace driver

/// A validated query with every name resolved against real schemas, so the
/// multi-threaded drivers cannot hit user errors mid-flight.
struct PreparedQuery {
  HybridQuery query;
  DbTableMeta db_meta;
  ScanPlan scan_plan;        ///< HDFS block assignments for all JEN workers
  SchemaPtr db_proj_schema;  ///< schema of T' (db projection)
  size_t db_key_idx = 0;     ///< join key position in db_proj_schema
  SchemaPtr hdfs_out_schema; ///< schema of L' (hdfs projection)
  size_t hdfs_key_idx = 0;   ///< join key position in hdfs_out_schema
  BloomParams bloom_params;
};

/// Validates and resolves a query against the context's catalogs.
Result<PreparedQuery> PrepareQuery(EngineContext* ctx,
                                   const HybridQuery& query);

/// §3.1 — fetch filtered HDFS data into the database and join there,
/// optionally pruning with a DB Bloom filter first. `memory_budget_bytes`
/// seeds the execution's MemoryGovernor (0 falls back to
/// SimulationConfig::query_memory_budget_bytes; 0 there = unlimited) — the
/// same knob on every driver below. A non-null `carry` resumes from the
/// adaptive layer's shared prefix (see driver::AdaptiveCarry) — same knob
/// on every driver below.
Result<QueryResult> RunDbSideJoin(EngineContext* ctx,
                                  const PreparedQuery& prepared,
                                  bool use_bloom,
                                  uint64_t memory_budget_bytes = 0,
                                  const driver::AdaptiveCarry* carry = nullptr);

/// §3.2 — broadcast T' to every JEN worker, join and aggregate on HDFS.
Result<QueryResult> RunBroadcastJoin(
    EngineContext* ctx, const PreparedQuery& prepared,
    uint64_t memory_budget_bytes = 0,
    const driver::AdaptiveCarry* carry = nullptr);

/// How the zigzag join's *second* (HDFS -> DB) pruning step is realized.
enum class SecondFilterKind {
  /// The paper's choice: a global Bloom filter BF_H (~5% false positives,
  /// fixed size, one broadcast).
  kBloom = 0,
  /// The classic exact semijoin of the related work (§6): every DB worker
  /// ships its T' join keys to the responsible JEN workers, which answer
  /// with exact membership bitmaps. No false positives, but the keys
  /// themselves cross the interconnect (bytes proportional to |T'|).
  kExactSemijoin = 1,
};

/// Driver-level knobs (ablations; the defaults are the paper's choices).
struct JoinDriverOptions {
  /// §4.4: the paper builds the join hash table on the *shuffled HDFS
  /// data*, because it is fully received right after the scan while the
  /// database records cannot arrive before BF_H is complete. Setting this
  /// buffers L' instead and builds on the (usually smaller) database data
  /// — the "obvious" choice the paper argues against.
  bool build_on_db_data = false;
  /// Second-filter realization for the zigzag join. kExactSemijoin
  /// requires the default build side (build_on_db_data == false).
  SecondFilterKind second_filter = SecondFilterKind::kBloom;
};

/// §3.3 / §3.4 — repartition-based HDFS-side joins. `use_db_bloom` sends
/// BF_DB to prune the HDFS scan; `zigzag` additionally sends BF_H back to
/// prune the database data (the full zigzag join).
Result<QueryResult> RunRepartitionFamilyJoin(
    EngineContext* ctx, const PreparedQuery& prepared, bool use_db_bloom,
    bool zigzag, const JoinDriverOptions& options = {},
    uint64_t memory_budget_bytes = 0,
    const driver::AdaptiveCarry* carry = nullptr);

/// Dispatch by algorithm enum (prepares internally).
Result<QueryResult> RunJoin(EngineContext* ctx, const HybridQuery& query,
                            JoinAlgorithm algorithm,
                            uint64_t memory_budget_bytes = 0);

/// The adaptive join-location driver (docs/architecture.md "Adaptive join
/// location"): runs the shared prefix — DB predicate scan + Bloom
/// build/combine, plus a seeded HDFS block re-sample per JEN worker — ships
/// the observed statistics to DB worker 0 on a fault-exempt control tag,
/// re-runs the §5.5 cost model there (DecidePivot against `advice`'s
/// initial pick with AdaptiveConfig::pivot_threshold hysteresis) and
/// broadcasts the stay-or-pivot decision to every node before dispatching
/// the winning driver with the prefix state carried over. On return
/// `*advice` additionally holds the observed costs and the pivot verdict.
Result<QueryResult> RunAdaptiveJoin(EngineContext* ctx,
                                    const HybridQuery& query,
                                    const QueryEstimates& est, Advice* advice,
                                    uint64_t memory_budget_bytes = 0);

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_HYBRID_ALGORITHMS_H_
