#include "hybrid/report.h"

#include <sstream>

namespace hybridjoin {

const char* JoinAlgorithmName(JoinAlgorithm algorithm) {
  switch (algorithm) {
    case JoinAlgorithm::kDbSide:
      return "db";
    case JoinAlgorithm::kDbSideBloom:
      return "db(BF)";
    case JoinAlgorithm::kBroadcast:
      return "broadcast";
    case JoinAlgorithm::kRepartition:
      return "repartition";
    case JoinAlgorithm::kRepartitionBloom:
      return "repartition(BF)";
    case JoinAlgorithm::kZigzag:
      return "zigzag";
  }
  return "unknown";
}

bool IsHdfsSide(JoinAlgorithm algorithm) {
  switch (algorithm) {
    case JoinAlgorithm::kDbSide:
    case JoinAlgorithm::kDbSideBloom:
      return false;
    case JoinAlgorithm::kBroadcast:
    case JoinAlgorithm::kRepartition:
    case JoinAlgorithm::kRepartitionBloom:
    case JoinAlgorithm::kZigzag:
      return true;
  }
  return false;
}

std::string ExecutionReport::ToString() const {
  std::ostringstream os;
  os << JoinAlgorithmName(algorithm) << ": "
     << wall_seconds * 1e3 << " ms\n";
  if (!phases.empty()) {
    os << "  phases:\n";
    for (const auto& [name, secs] : phases) {
      os << "    " << name << ": " << secs * 1e3 << " ms\n";
    }
  }
  if (!counters.empty()) {
    os << "  counters:\n";
    for (const auto& [name, value] : counters) {
      os << "    " << name << " = " << value << "\n";
    }
  }
  if (!network_bytes.empty()) {
    os << "  network bytes:\n";
    for (const auto& [name, value] : network_bytes) {
      os << "    " << name << " = " << value << "\n";
    }
  }
  if (!histograms.empty()) {
    os << "  latencies (count / p50 / p95 / p99 ms):\n";
    for (const auto& [name, h] : histograms) {
      os << "    " << name << ": " << h.count << " / "
         << h.p50_seconds * 1e3 << " / " << h.p95_seconds * 1e3 << " / "
         << h.p99_seconds * 1e3 << "\n";
    }
  }
  if (!trace_file.empty()) {
    os << "  trace: " << trace_file << "\n";
  }
  return os.str();
}

}  // namespace hybridjoin
