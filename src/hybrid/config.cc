#include "hybrid/config.h"

#include <algorithm>
#include <thread>

namespace hybridjoin {

uint32_t ResolveExecThreads(uint32_t configured) {
  if (configured != 0) return configured;
  const uint32_t hc = std::thread::hardware_concurrency();
  if (hc == 0) return 1;
  return std::clamp(hc / 2, 1u, 8u);
}

SimulationConfig SimulationConfig::PaperTestbed(uint32_t db_workers,
                                                uint32_t jen_workers,
                                                double scale) {
  auto bps = [scale](double mb_per_s) {
    return static_cast<uint64_t>(mb_per_s * scale * 1024.0 * 1024.0);
  };
  SimulationConfig c;
  c.db.num_workers = db_workers;
  c.jen_workers = jen_workers;

  // HDFS side: commodity nodes. Two data disks per node (paper: 4), cold
  // sequential reads ~24 MB/s per disk at our scale, warm page-cache reads
  // an order of magnitude faster, and a modest per-node cache so that the
  // columnar table fits but the raw text table does not — reproducing the
  // cold-text vs warm-columnar asymmetry of §5.4.
  c.datanode.num_disks = 2;
  c.datanode.disk_read_bps = bps(24);
  c.datanode.cache_read_bps = bps(400);
  c.datanode.cache_capacity_bytes = bps(32);  // scaled bytes, not a rate
  c.hdfs_replication = 2;

  // Network: HDFS nodes on 1 GbE-class NICs, DB nodes on 10 GbE-class
  // NICs, and a shared inter-cluster switch. Ratios follow the paper
  // (1 : 10 : 20 Gbit), scaled to our data sizes.
  c.net.hdfs_nic_bps = bps(12);
  c.net.db_nic_bps = bps(120);
  c.net.cross_switch_bps = bps(240);

  return c;
}

}  // namespace hybridjoin
