#include "hybrid/reference.h"

#include "exec/join_prober.h"

namespace hybridjoin {

namespace {

Result<std::vector<RecordBatch>> FilterProject(
    const std::vector<RecordBatch>& batches, const PredicatePtr& predicate,
    const std::vector<std::string>& projection) {
  std::vector<RecordBatch> out;
  for (const RecordBatch& batch : batches) {
    std::vector<uint32_t> sel(batch.num_rows());
    for (uint32_t i = 0; i < sel.size(); ++i) sel[i] = i;
    if (predicate != nullptr) {
      HJ_RETURN_IF_ERROR(predicate->Filter(batch, &sel));
    }
    if (sel.empty()) continue;
    std::vector<size_t> indexes;
    for (const std::string& name : projection) {
      HJ_ASSIGN_OR_RETURN(size_t idx, batch.schema()->IndexOf(name));
      indexes.push_back(idx);
    }
    out.push_back(batch.Project(indexes).Gather(sel));
  }
  return out;
}

}  // namespace

Result<RecordBatch> RunReferenceJoin(
    const std::vector<RecordBatch>& db_batches,
    const std::vector<RecordBatch>& hdfs_batches, const HybridQuery& query) {
  HJ_RETURN_IF_ERROR(query.Validate());
  HJ_ASSIGN_OR_RETURN(
      std::vector<RecordBatch> t_prime,
      FilterProject(db_batches, query.db.predicate, query.db.projection));
  HJ_ASSIGN_OR_RETURN(std::vector<RecordBatch> l_prime,
                      FilterProject(hdfs_batches, query.hdfs.predicate,
                                    query.hdfs.projection));

  // Schemas of the filtered sides.
  SchemaPtr db_schema;
  SchemaPtr hdfs_schema;
  {
    // Derive projected schemas even when a side filtered down to nothing.
    if (db_batches.empty() || hdfs_batches.empty()) {
      return Status::InvalidArgument("reference join needs input batches");
    }
    std::vector<size_t> idx;
    for (const auto& name : query.db.projection) {
      HJ_ASSIGN_OR_RETURN(size_t i, db_batches[0].schema()->IndexOf(name));
      idx.push_back(i);
    }
    db_schema = db_batches[0].schema()->Project(idx);
    idx.clear();
    for (const auto& name : query.hdfs.projection) {
      HJ_ASSIGN_OR_RETURN(size_t i, hdfs_batches[0].schema()->IndexOf(name));
      idx.push_back(i);
    }
    hdfs_schema = hdfs_batches[0].schema()->Project(idx);
  }
  HJ_ASSIGN_OR_RETURN(size_t db_key, db_schema->IndexOf(query.db.join_key));
  HJ_ASSIGN_OR_RETURN(size_t hdfs_key,
                      hdfs_schema->IndexOf(query.hdfs.join_key));

  // Build on the HDFS side (as the HDFS-side drivers do), probe with T'.
  JoinHashTable table(hdfs_key);
  for (RecordBatch& batch : l_prime) {
    HJ_RETURN_IF_ERROR(table.AddBatch(std::move(batch)));
  }
  table.Finalize();

  HashAggregator agg(query.agg);
  JoinProber prober(&table, hdfs_schema, query.hdfs.alias, db_schema,
                    query.db.alias, db_key, query.post_join_predicate, &agg,
                    /*metrics=*/nullptr);
  for (const RecordBatch& batch : t_prime) {
    HJ_RETURN_IF_ERROR(prober.ProbeBatch(batch));
  }
  HJ_RETURN_IF_ERROR(prober.Flush());
  return agg.Finish();
}

}  // namespace hybridjoin
