#include "hybrid/driver_common.h"

#include <memory>

#include "exec/spill.h"
#include "jen/worker.h"
#include "obs/event_log.h"
#include "obs/query_registry.h"
#include "trace/chrome_trace.h"

namespace hybridjoin {
namespace driver {

Tags Tags::Allocate(Network* network) {
  const uint64_t base = network->AllocateTagBlock(21);
  Tags t;
  t.bloom_local = base + 0;
  t.bloom_global = base + 1;
  t.bloom_to_jen = base + 2;
  t.shuffle = base + 3;
  t.db_data = base + 4;
  t.bloom_h_local = base + 5;
  t.bloom_h_global = base + 6;
  t.agg = base + 7;
  t.result = base + 8;
  t.l_data = base + 9;
  t.control = base + 10;
  t.counts = base + 11;
  t.strategy = base + 12;
  t.db_shuffle_t = base + 13;
  t.db_shuffle_l = base + 14;
  t.profile = base + 15;
  t.sketch_local = base + 16;
  t.hot_global = base + 17;
  t.hot_to_jen = base + 18;
  t.adapt_stats = base + 19;
  t.adapt_decision = base + 20;
  return t;
}

NodeProfileScope::~NodeProfileScope() {
  const int64_t wall_us = stopwatch_.ElapsedMicros();
  Metrics& m = ctx_->metrics();
  if (node_.cluster == ClusterId::kHdfs) {
    // Feeds the jen.worker_wall_us histogram even with tracing disabled.
    m.Record(metric::kJenWorkerWallUs, wall_us);
  }
  // The query-wide memory high-water mark, recorded into this node's slice
  // (and the global store) before the snapshot below captures it. Max, not
  // Add: every worker reports the same per-query governor. Skipped at zero
  // so governor-less runs don't grow a dead gauge.
  if (MemoryGovernor* governor = MemoryGovernor::Current()) {
    const auto peak = static_cast<int64_t>(governor->peak());
    if (peak > 0) m.Max(metric::kJoinMemPeakBytes, peak);
  }
  const obs::NodeProfileSnapshot snap =
      obs::SnapshotNodeProfile(&m, node_, wall_us);
  ctx_->network().SendControl(node_, NodeId::Db(0), tag_,
                              obs::SerializeNodeProfile(snap));
}

ReportBuilder::ReportBuilder(EngineContext* ctx, JoinAlgorithm algorithm,
                             uint64_t memory_budget_bytes)
    : ctx_(ctx),
      algorithm_(algorithm),
      query_id_(ctx->NextQueryId()),
      scope_(query_id_),
      governor_(std::make_unique<MemoryGovernor>(
          memory_budget_bytes != 0
              ? memory_budget_bytes
              : ctx->config().query_memory_budget_bytes)),
      governor_scope_(governor_.get()),
      exclusive_(ctx->BeginExecution() == 1) {
  if (exclusive_) {
    // Running alone: drop whatever scoped slices and spans a previous
    // execution left behind, exactly as the single-query path always did.
    ctx_->metrics().ClearScoped();
    if (ctx_->tracer().enabled()) ctx_->tracer().Clear();
  }
  counters_before_ = ctx_->metrics().Snapshot();
  for (int i = 0; i < 4; ++i) {
    net_before_[i] =
        ctx_->network().BytesMoved(static_cast<FlowClass>(i));
  }
  // Visible to SHOW PROCESSLIST / KILL from here on. Registration happens
  // before any worker spawns, so a worker's first cancellation check can
  // always resolve the flag.
  obs::QueryRegistry::Global().Register(query_id_, &ctx_->metrics(),
                                        governor_.get(),
                                        JoinAlgorithmName(algorithm_));
  if (obs::EventLog::Global().enabled()) {
    auto fields = obs::JsonValue::Object();
    fields.Set("algorithm",
               obs::JsonValue::Str(JoinAlgorithmName(algorithm_)));
    if (const obs::SubmissionScope::Info* info =
            obs::SubmissionScope::Current()) {
      fields.Set("session_id",
                 obs::JsonValue::Int(static_cast<int64_t>(info->session_id)));
      fields.Set("ticket_id",
                 obs::JsonValue::Int(static_cast<int64_t>(info->ticket_id)));
    }
    obs::EventLog::Global().Emit("start", query_id_, std::move(fields));
  }
}

ReportBuilder::~ReportBuilder() {
  // Leave the process list first; Unregister reports reservations the
  // governor still holds, which must be zero on every exit path (KILL
  // included) — the server test asserts the gauge below stays flat.
  const uint64_t leaked = obs::QueryRegistry::Global().Unregister(query_id_);
  if (leaked > 0) {
    ctx_->metrics().Add(metric::kServerGovernorLeakedBytes,
                        static_cast<int64_t>(leaked));
  }
  // This query's scoped slices were consumed by the NodeProfileScope
  // snapshots; drop them without touching other in-flight queries' slices.
  ctx_->metrics().ClearScoped(query_id_);
  ctx_->EndExecution();
}

void ReportBuilder::Mark(const std::string& name) {
  const double t = stopwatch_.ElapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [existing, unused] : marks_) {
      if (existing == name) return;  // first caller wins
    }
    marks_.emplace_back(name, t);
  }
  // First arrival at a mark is a phase transition: reflect it in the live
  // process list and the event log.
  obs::QueryRegistry::Global().SetPhase(query_id_, name);
  if (obs::EventLog::Global().enabled()) {
    auto fields = obs::JsonValue::Object();
    fields.Set("phase", obs::JsonValue::Str(name));
    fields.Set("t_seconds", obs::JsonValue::Number(t));
    obs::EventLog::Global().Emit("phase", query_id_, std::move(fields));
  }
}

void ReportBuilder::CollectProfiles(const Tags& tags, uint32_t expected) {
  Network& net = ctx_->network();
  for (uint32_t i = 0; i < expected; ++i) {
    Result<Message> msg = net.Recv(NodeId::Db(0), tags.profile);
    if (!msg.ok() || msg.value().payload == nullptr) continue;
    Result<obs::NodeProfileSnapshot> snap =
        obs::DeserializeNodeProfile(*msg.value().payload);
    if (!snap.ok()) continue;
    node_profiles_.push_back(std::move(snap).value());
  }
}

ExecutionReport ReportBuilder::Finish() {
  ExecutionReport report;
  report.algorithm = algorithm_;
  report.wall_seconds = stopwatch_.ElapsedSeconds();
  {
    std::lock_guard<std::mutex> lock(mu_);
    report.phases = marks_;
  }
  for (const auto& [name, value] : ctx_->metrics().Snapshot()) {
    auto it = counters_before_.find(name);
    const int64_t before = it == counters_before_.end() ? 0 : it->second;
    if (value - before != 0) report.counters[name] = value - before;
  }
  for (int i = 0; i < 4; ++i) {
    const auto fc = static_cast<FlowClass>(i);
    const int64_t delta = ctx_->network().BytesMoved(fc) - net_before_[i];
    if (delta != 0) report.network_bytes[FlowClassName(fc)] = delta;
  }
  // Span histograms and trace files aggregate the whole tracer buffer, so
  // they are only attributable when this query ran alone.
  if (exclusive_ && ctx_->tracer().enabled()) {
    const std::vector<trace::TraceEvent> events = ctx_->tracer().Snapshot();
    std::map<std::string, std::unique_ptr<LatencyHistogram>> per_name;
    for (const trace::TraceEvent& e : events) {
      auto& hist = per_name[e.name];
      if (hist == nullptr) hist = std::make_unique<LatencyHistogram>();
      hist->RecordMicros(e.dur_us);
    }
    for (const auto& [name, hist] : per_name) {
      report.histograms[name] = hist->Summarize();
    }
    const std::string& out = ctx_->config().trace.chrome_out;
    if (!out.empty()) {
      const Status written = trace::WriteChromeTrace(events, out);
      if (written.ok()) report.trace_file = out;
    }
  }
  report.profile =
      obs::AssembleProfile(query_id_, JoinAlgorithmName(algorithm_),
                           report.wall_seconds, node_profiles_,
                           report.trace_file);
  report.profile.global_counters = report.counters;
  report.profile.network_bytes = report.network_bytes;
  report.profile.span_histograms = report.histograms;
  return report;
}

Result<BloomFilter> CombineBloomAtDbWorker0(EngineContext* ctx,
                                            uint32_t worker,
                                            const BloomFilter& local,
                                            const Tags& tags) {
  Network& net = ctx->network();
  const NodeId self = NodeId::Db(worker);
  SendBloom(&net, self, NodeId::Db(0), tags.bloom_local, local,
            &ctx->metrics());
  if (worker == 0) {
    BloomFilter global(local.params());
    for (uint32_t i = 0; i < ctx->num_db_workers(); ++i) {
      HJ_ASSIGN_OR_RETURN(BloomFilter received,
                          RecvBloom(&net, self, tags.bloom_local));
      HJ_RETURN_IF_ERROR(global.UnionWith(received));
    }
    for (uint32_t i = 0; i < ctx->num_db_workers(); ++i) {
      SendBloom(&net, self, NodeId::Db(i), tags.bloom_global, global,
                &ctx->metrics());
    }
  }
  return RecvBloom(&net, self, tags.bloom_global);
}

Result<HotKeySet> CombineHotKeysAtDbWorker0(EngineContext* ctx,
                                            uint32_t worker,
                                            const HeavyHitterSketch& local,
                                            uint32_t route_workers,
                                            const Tags& tags) {
  Network& net = ctx->network();
  const NodeId self = NodeId::Db(worker);
  SendSketch(&net, self, NodeId::Db(0), tags.sketch_local, local);
  if (worker == 0) {
    const SkewConfig& skew = ctx->config().skew;
    HeavyHitterSketch merged(local.capacity());
    for (uint32_t i = 0; i < ctx->num_db_workers(); ++i) {
      HJ_ASSIGN_OR_RETURN(HeavyHitterSketch received,
                          RecvSketch(&net, self, tags.sketch_local));
      merged.Merge(received);
    }
    const HotKeySet hot = PickHotKeys(merged, route_workers,
                                      skew.hot_multiplier, skew.max_hot_keys);
    if (!hot.empty()) {
      Metrics::PhaseScope phase_scope("shuffle");
      ctx->metrics().Max(metric::kShuffleHotKeys,
                         static_cast<int64_t>(hot.size()));
      if (obs::EventLog::Global().enabled()) {
        auto fields = obs::JsonValue::Object();
        fields.Set("hot_keys",
                   obs::JsonValue::Int(static_cast<int64_t>(hot.size())));
        fields.Set("route_workers",
                   obs::JsonValue::Int(static_cast<int64_t>(route_workers)));
        obs::EventLog::Global().Emit("hot_keys", QueryScope::Current(),
                                     std::move(fields));
      }
    }
    for (uint32_t i = 0; i < ctx->num_db_workers(); ++i) {
      SendHotKeys(&net, self, NodeId::Db(i), tags.hot_global, hot);
    }
  }
  return RecvHotKeys(&net, self, tags.hot_global);
}

Status JenAggregateAndReturn(EngineContext* ctx, uint32_t jen_worker,
                             HashAggregator* partial, const Tags& tags) {
  Network& net = ctx->network();
  const NodeId self = NodeId::Hdfs(jen_worker);
  const uint32_t designated = ctx->coordinator().designated_worker();
  const SchemaPtr partial_schema = partial->spec().ResultSchema();

  net.SendControl(self, NodeId::Hdfs(designated), tags.agg,
                  partial->Partial().Serialize());
  if (jen_worker != designated) return Status::OK();

  HashAggregator final_agg(partial->spec());
  for (uint32_t i = 0; i < ctx->num_jen_workers(); ++i) {
    HJ_ASSIGN_OR_RETURN(Message msg, net.Recv(self, tags.agg));
    if (msg.eos || msg.payload == nullptr) {
      return Status::Internal("expected partial aggregate, got EOS");
    }
    HJ_ASSIGN_OR_RETURN(
        RecordBatch batch,
        RecordBatch::Deserialize(*msg.payload, partial_schema));
    HJ_RETURN_IF_ERROR(final_agg.Merge(batch));
  }
  net.SendControl(self, NodeId::Db(0), tags.result,
                  final_agg.Finish().Serialize());
  return Status::OK();
}

Result<RecordBatch> DbReceiveResult(EngineContext* ctx, const AggSpec& agg,
                                    const Tags& tags) {
  HJ_ASSIGN_OR_RETURN(Message msg,
                      ctx->network().Recv(NodeId::Db(0), tags.result));
  if (msg.eos || msg.payload == nullptr) {
    return Status::Internal("expected final result, got EOS");
  }
  return RecordBatch::Deserialize(*msg.payload, agg.ResultSchema());
}

std::vector<uint32_t> OwnerOfJenWorkers(EngineContext* ctx) {
  const auto groups =
      ctx->coordinator().GroupWorkersForDb(ctx->num_db_workers());
  std::vector<uint32_t> owner(ctx->num_jen_workers(), 0);
  for (uint32_t g = 0; g < groups.size(); ++g) {
    for (uint32_t w : groups[g]) owner[w] = g;
  }
  return owner;
}

std::vector<NodeId> AllJenNodes(EngineContext* ctx) {
  std::vector<NodeId> nodes;
  nodes.reserve(ctx->num_jen_workers());
  for (uint32_t i = 0; i < ctx->num_jen_workers(); ++i) {
    nodes.push_back(NodeId::Hdfs(i));
  }
  return nodes;
}

std::vector<NodeId> AllDbNodes(EngineContext* ctx) {
  std::vector<NodeId> nodes;
  nodes.reserve(ctx->num_db_workers());
  for (uint32_t i = 0; i < ctx->num_db_workers(); ++i) {
    nodes.push_back(NodeId::Db(i));
  }
  return nodes;
}

std::vector<uint32_t> AllRows(size_t n) {
  std::vector<uint32_t> sel(n);
  for (uint32_t i = 0; i < n; ++i) sel[i] = i;
  return sel;
}

Result<std::vector<RecordBatch>> FilterBatchesByBloom(
    const std::vector<RecordBatch>& batches, const std::string& column,
    const BloomFilter& bloom) {
  std::vector<RecordBatch> out;
  out.reserve(batches.size());
  for (const RecordBatch& batch : batches) {
    std::vector<uint32_t> sel = AllRows(batch.num_rows());
    HJ_RETURN_IF_ERROR(FilterByBloom(batch, column, bloom, &sel));
    if (!sel.empty()) out.push_back(batch.Gather(sel));
  }
  return out;
}

uint32_t HashTableShards(EngineContext* ctx) {
  const uint32_t threads = ctx->exec_threads();
  return threads == 1 ? 1 : 2 * threads;
}

void FinalizeAndRecordHashTable(EngineContext* ctx, NodeId node,
                                JoinHashTable* table, ThreadPool* pool) {
  {
    trace::Span span(&ctx->tracer(), trace::span::kHtFinalize,
                     trace::span::kCatJoin, node);
    span.set_bytes(static_cast<int64_t>(table->num_rows()));
    if (pool != nullptr && table->num_shards() > 1) {
      trace::Tracer* tracer = &ctx->tracer();
      Status st = pool->ParallelFor(
          0, table->num_shards(), 1, [&](size_t s) {
            trace::ThreadScope scope(node, trace::InternedRole("build", s));
            trace::Span shard_span(tracer, trace::span::kHtFinalizeShard,
                                   trace::span::kCatJoin, node);
            const auto shard = static_cast<uint32_t>(s);
            shard_span.set_bytes(
                static_cast<int64_t>(table->shard_rows(shard)));
            table->FinalizeShard(shard);
            return Status::OK();
          });
      (void)st;  // FinalizeShard cannot fail
      table->MarkFinalized();
    } else {
      table->Finalize();
    }
  }
  Metrics& m = ctx->metrics();
  m.Add(metric::kJoinHtRows, static_cast<int64_t>(table->num_rows()));
  m.Max(metric::kJoinHtMaxChain,
        static_cast<int64_t>(table->max_chain_length()));
  m.Max(metric::kJoinHtLoadFactorPct,
        static_cast<int64_t>(table->load_factor() * 100.0));
  if (table->num_shards() > 1) {
    // Shard-skew visibility: histogram values are row counts, not micros.
    // Record() (vs GetHistogram()->RecordMicros()) also lands the values in
    // the calling node's scoped slice for the query profile.
    for (uint32_t s = 0; s < table->num_shards(); ++s) {
      const auto rows = static_cast<int64_t>(table->shard_rows(s));
      m.Record(metric::kJoinBuildShardRows, rows);
      m.Max(metric::kJoinBuildShardRowsMax, rows);
    }
  }
}

ParallelProbe::ParallelProbe(EngineContext* ctx, NodeId node,
                             const JoinHashTable* build,
                             SchemaPtr build_schema, std::string build_alias,
                             SchemaPtr probe_schema, std::string probe_alias,
                             size_t probe_key_column,
                             PredicatePtr post_join_predicate,
                             HashAggregator* agg, const char* probe_span)
    : ctx_(ctx), agg_(agg) {
  const uint32_t threads = ctx->exec_threads();
  probers_.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    // Single-threaded: the one prober aggregates straight into the target.
    HashAggregator* sink = agg;
    if (threads > 1) {
      partials_.push_back(std::make_unique<HashAggregator>(agg->spec()));
      sink = partials_.back().get();
    }
    probers_.push_back(std::make_unique<JoinProber>(
        build, build_schema, build_alias, probe_schema, probe_alias,
        probe_key_column, post_join_predicate, sink, &ctx->metrics()));
  }
  trace::Tracer* tracer = &ctx->tracer();
  pipe_ = std::make_unique<BatchMorselPipe>(
      threads,
      [this, tracer, probe_span, node](uint32_t t, RecordBatch&& batch) {
        if (probe_span == nullptr) return probers_[t]->ProbeBatch(batch);
        trace::Span span(tracer, probe_span, trace::span::kCatJoin, node);
        span.set_bytes(static_cast<int64_t>(batch.num_rows()));
        return probers_[t]->ProbeBatch(batch);
      },
      node, "probe");
}

Status ParallelProbe::Finish() {
  HJ_RETURN_IF_ERROR(pipe_->Finish());
  // Workers are joined: the probers and partials are exclusively ours now.
  for (auto& prober : probers_) {
    HJ_RETURN_IF_ERROR(prober->Flush());
  }
  for (auto& partial : partials_) {
    HJ_RETURN_IF_ERROR(agg_->Merge(*partial));
  }
  return Status::OK();
}

void RecordBloomStats(EngineContext* ctx, const BloomFilter& bloom) {
  Metrics& m = ctx->metrics();
  m.Max(metric::kBloomFillPct,
        static_cast<int64_t>(bloom.FillRatio() * 100.0));
  m.Max(metric::kBloomEstFprPpm,
        static_cast<int64_t>(bloom.EstimatedFpr() * 1e6));
}

}  // namespace driver
}  // namespace hybridjoin
