// DB-side join driver (§3.1, Figure 1): the approach of PolyBase / HAWQ /
// SQL-H / Big Data SQL — JEN workers scan, filter and project L (optionally
// pruned by BF_DB) and ship it into the database; the parallel database then
// joins, using whatever internal strategy its optimizer picks (broadcast
// either side or repartition both), since the arriving HDFS rows are not
// partitioned on the DB's hash.

#include <optional>
#include <thread>

#include "common/hash.h"
#include "exec/grace_join.h"
#include "exec/join_prober.h"
#include "exec/partitioned_appender.h"
#include "hybrid/algorithms.h"
#include "hybrid/driver_common.h"
#include "jen/exchange.h"
#include "jen/worker.h"
#include "trace/tracer.h"

namespace hybridjoin {

using driver::AllDbNodes;
using driver::AllRows;
using driver::ReportBuilder;
using driver::StatusCollector;
using driver::Tags;

namespace {

/// DB-internal join strategies the mini optimizer chooses among.
enum class DbJoinStrategy : uint8_t {
  kBroadcastDb = 0,    ///< broadcast T' to all DB workers
  kBroadcastHdfs = 1,  ///< broadcast the received L'' to all DB workers
  kRepartition = 2,    ///< hash both sides on the join key
};

const char* StrategyName(DbJoinStrategy s) {
  switch (s) {
    case DbJoinStrategy::kBroadcastDb:
      return "broadcast_db";
    case DbJoinStrategy::kBroadcastHdfs:
      return "broadcast_hdfs";
    case DbJoinStrategy::kRepartition:
      return "repartition";
  }
  return "?";
}

/// Classic communication-cost model: broadcasting a side costs its size
/// times (workers - 1); repartitioning costs roughly the sum of both sides
/// (each row moves once, (W-1)/W of the time).
DbJoinStrategy ChooseStrategy(uint64_t db_bytes, uint64_t hdfs_bytes,
                              uint32_t workers) {
  if (workers <= 1) return DbJoinStrategy::kBroadcastDb;
  const double w = static_cast<double>(workers);
  const double broadcast_db = static_cast<double>(db_bytes) * (w - 1);
  const double broadcast_hdfs = static_cast<double>(hdfs_bytes) * (w - 1);
  const double repartition =
      static_cast<double>(db_bytes + hdfs_bytes) * (w - 1) / w;
  if (broadcast_db <= broadcast_hdfs && broadcast_db <= repartition) {
    return DbJoinStrategy::kBroadcastDb;
  }
  if (broadcast_hdfs <= repartition) return DbJoinStrategy::kBroadcastHdfs;
  return DbJoinStrategy::kRepartition;
}

uint64_t TotalBytes(const std::vector<RecordBatch>& batches) {
  uint64_t total = 0;
  for (const auto& b : batches) total += b.ByteSize();
  return total;
}

// DB-internal repartition hash; deliberately unrelated to both the table
// distribution hash and the JEN agreed hash.
constexpr uint64_t kDbRepartitionSeed = 0x0dbdbULL;

uint32_t DbPartition(int64_t key, uint32_t workers) {
  return static_cast<uint32_t>(
      HashInt64(static_cast<uint64_t>(key), kDbRepartitionSeed) % workers);
}

/// Broadcasts `batches` to every DB worker over `tag` and returns all
/// batches received from the `m` workers.
Status BroadcastAmongDb(EngineContext* ctx, uint32_t worker, uint64_t tag,
                        const std::vector<RecordBatch>& batches,
                        const SchemaPtr& schema,
                        std::vector<RecordBatch>* received) {
  Network& net = ctx->network();
  const NodeId self = NodeId::Db(worker);
  const std::vector<NodeId> db_nodes = AllDbNodes(ctx);
  BatchSender sender(&net, self, tag, /*num_threads=*/1, &ctx->metrics(),
                     metric::kDbTuplesShuffledInternal);
  for (const RecordBatch& batch : batches) {
    sender.SendToAll(db_nodes, batch);
  }
  const Status fin = sender.Finish(db_nodes);
  HJ_ASSIGN_OR_RETURN(*received,
                      ReceiveAllBatches(&net, self, tag,
                                        ctx->num_db_workers(), schema));
  return fin;
}

/// How the repartition exchange treats rows whose key is in the hot set
/// (skew-aware shuffle; kNone = pure agreed-hash repartition).
enum class HotRouteMode {
  kNone,       ///< no hot set: every row takes the DbPartition route
  kBroadcast,  ///< hot rows replicate to every DB worker (the T' side)
  kKeepLocal,  ///< hot rows never leave this worker (the L'' side)
};

/// Repartitions `batches` by join key among the DB workers over `tag` and
/// returns this worker's received partition. With a hot set, hot rows
/// either broadcast to every worker or stay local (see HotRouteMode); the
/// combination — hot T' everywhere, each hot L'' row on exactly one
/// worker — produces every hot match exactly once, mirroring the JEN-side
/// hybrid route.
Status RepartitionAmongDb(EngineContext* ctx, uint32_t worker, uint64_t tag,
                          const std::vector<RecordBatch>& batches,
                          const SchemaPtr& schema, size_t key_idx,
                          const HotKeySet* hot, HotRouteMode mode,
                          std::vector<RecordBatch>* received) {
  Network& net = ctx->network();
  const NodeId self = NodeId::Db(worker);
  const std::vector<NodeId> db_nodes = AllDbNodes(ctx);
  const uint32_t m = ctx->num_db_workers();
  BatchSender sender(&net, self, tag, /*num_threads=*/1, &ctx->metrics(),
                     metric::kDbTuplesShuffledInternal);
  std::vector<RecordBatch> kept;  ///< kKeepLocal parking
  SkewRouter router(
      schema, m, key_idx, [m](int64_t key) { return DbPartition(key, m); },
      4096,
      [&](uint32_t p, RecordBatch&& batch) {
        sender.Send(NodeId::Db(p), batch);
        return Status::OK();
      },
      mode == HotRouteMode::kNone ? nullptr : hot,
      [&](RecordBatch&& batch) {
        const int64_t rows = static_cast<int64_t>(batch.num_rows());
        if (mode == HotRouteMode::kBroadcast) {
          const int64_t bytes = static_cast<int64_t>(batch.ByteSize()) *
                                static_cast<int64_t>(db_nodes.size());
          sender.SendToAll(db_nodes, batch);
          ctx->metrics().Add(metric::kShuffleHotRowsBuild, rows);
          ctx->metrics().Add(metric::kShuffleBroadcastBytes, bytes);
        } else {
          kept.push_back(std::move(batch));
          ctx->metrics().Add(metric::kShuffleHotRowsProbe, rows);
        }
        return Status::OK();
      });
  Status st;
  for (const RecordBatch& batch : batches) {
    st = router.Append(batch, AllRows(batch.num_rows()));
    if (!st.ok()) break;
  }
  if (st.ok()) st = router.FlushAll();
  const Status fin = sender.Finish(db_nodes);
  HJ_RETURN_IF_ERROR(st);
  HJ_ASSIGN_OR_RETURN(*received,
                      ReceiveAllBatches(&net, self, tag, m, schema));
  for (RecordBatch& batch : kept) received->push_back(std::move(batch));
  return fin;
}

}  // namespace

Result<QueryResult> RunDbSideJoin(EngineContext* ctx,
                                  const PreparedQuery& prepared,
                                  bool use_bloom,
                                  uint64_t memory_budget_bytes,
                                  const driver::AdaptiveCarry* carry) {
  const HybridQuery& query = prepared.query;
  const uint32_t m = ctx->num_db_workers();
  const uint32_t n = ctx->num_jen_workers();
  Network& net = ctx->network();
  const Tags tags = Tags::Allocate(&net);
  const auto groups = ctx->coordinator().GroupWorkersForDb(m);
  const auto owner = driver::OwnerOfJenWorkers(ctx);
  const JoinAlgorithm algorithm =
      use_bloom ? JoinAlgorithm::kDbSideBloom : JoinAlgorithm::kDbSide;

  // With a carry the adaptive layer owns the execution: reuse its report
  // (same query id, same governor) and start from the prefix's global
  // Bloom filter + heavy-hitter sketches instead of rebuilding them.
  const bool carried =
      carry != nullptr && carry->report != nullptr &&
      carry->global_bloom != nullptr;
  std::optional<ReportBuilder> owned_report;
  if (!carried) owned_report.emplace(ctx, algorithm, memory_budget_bytes);
  ReportBuilder& report = carried ? *carry->report : *owned_report;
  StatusCollector errors;
  RecordBatch result_rows;

  std::vector<std::thread> threads;
  threads.reserve(m + n);

  // --- DB workers. ---
  for (uint32_t i = 0; i < m; ++i) {
    threads.emplace_back([&, i] {
      QueryScope query_scope(report.query_id());
      MemoryGovernor::Scope governor_scope(report.governor());
      const NodeId self = NodeId::Db(i);
      trace::ThreadScope thread_scope(self, "db_worker");
      driver::NodeProfileScope profile_scope(ctx, self, tags);
      trace::Span driver_span(&ctx->tracer(), trace::span::kDriverDbWorker,
                              trace::span::kCatDriver);
      Status st;

      // Skew-aware shuffle engages only when the Bloom pass runs (the
      // heavy-hitter sketch piggybacks on that scan) and the DB-internal
      // exchange actually fans out. All workers compute the gate from the
      // same inputs, so the sketch combine below always pairs up.
      const bool skew_route =
          ctx->config().skew.enabled && use_bloom && m > 1;

      // Bloom filter (steps 1-2 of Figure 1). The heavy-hitter sketch rides
      // the same scan; worker 0 merges the sketches and redistributes the
      // hot set right after the Bloom combine.
      std::optional<BloomFilter> global_bloom;
      HotKeySet hot;
      if (use_bloom && carried) {
        // The adaptive prefix already built and combined BF_DB (and fed the
        // sketches); resume from the carried state. The hot-set combine
        // still runs below — its route width is this driver's m, which the
        // prefix could not know.
        global_bloom = *carry->global_bloom;
        if (i == 0) report.Mark("bf_db_carried");
        HeavyHitterSketch sketch =
            carry->sketches != nullptr && i < carry->sketches->size()
                ? (*carry->sketches)[i]
                : HeavyHitterSketch(ctx->config().skew.sketch_capacity);
        if (skew_route) {
          auto combined =
              driver::CombineHotKeysAtDbWorker0(ctx, i, sketch, m, tags);
          if (combined.ok()) {
            hot = std::move(combined).value();
            if (i == 0 && !hot.empty()) report.Mark("hot_set_sent");
          } else if (st.ok()) {
            st = combined.status();
          }
        }
      } else if (use_bloom) {
        bool used_index = false;
        HeavyHitterSketch sketch(ctx->config().skew.sketch_capacity);
        auto local = ctx->db().worker(i)->BuildLocalBloom(
            query.db.table, query.db.predicate, query.db.join_key,
            prepared.bloom_params, &used_index,
            skew_route ? &sketch : nullptr);
        BloomFilter local_bf = local.ok() ? std::move(local).value()
                                          : BloomFilter(prepared.bloom_params);
        if (!local.ok()) st = local.status();
        auto global = driver::CombineBloomAtDbWorker0(ctx, i, local_bf, tags);
        if (global.ok()) {
          global_bloom = std::move(global).value();
          if (i == 0) driver::RecordBloomStats(ctx, *global_bloom);
        } else if (st.ok()) {
          st = global.status();
        }
        if (i == 0) report.Mark("bf_db_sent");
        if (skew_route) {
          // Protocol obligation even after an earlier error: worker 0 blocks
          // for every sketch and every worker blocks for the hot set.
          auto combined =
              driver::CombineHotKeysAtDbWorker0(ctx, i, sketch, m, tags);
          if (combined.ok()) {
            hot = std::move(combined).value();
            if (i == 0 && !hot.empty()) report.Mark("hot_set_sent");
          } else if (st.ok()) {
            st = combined.status();
          }
        }
      }

      // read_hdfs UDF, part 1: multicast the scan request to this worker's
      // JEN group (Figure 5).
      ScanRequest request;
      request.predicate = query.hdfs.predicate;
      request.projection = query.hdfs.projection;
      if (global_bloom.has_value()) {
        request.bloom = global_bloom;
        request.bloom_column = query.hdfs.join_key;
      }
      auto request_payload = std::make_shared<const std::vector<uint8_t>>(
          request.Serialize());
      for (uint32_t w : groups[i]) {
        net.SendControl(self, NodeId::Hdfs(w), tags.control,
                        request_payload);
      }

      // Apply local predicates & projection on T while HDFS data streams in.
      std::vector<RecordBatch> t_prime;
      {
        auto scanned = ctx->db().worker(i)->ScanFilterProject(
            query.db.table, query.db.predicate, query.db.projection,
            &ctx->metrics());
        if (scanned.ok()) {
          t_prime = std::move(scanned).value();
        } else if (st.ok()) {
          st = scanned.status();
        }
      }

      // read_hdfs UDF, part 2: ingest L'' from the group in parallel.
      std::vector<RecordBatch> l_received;
      {
        trace::Span ingest_span(&ctx->tracer(), trace::span::kDbIngest,
                                trace::span::kCatExchange);
        auto received = ReceiveAllBatches(
            &net, self, tags.l_data,
            static_cast<uint32_t>(groups[i].size()),
            prepared.hdfs_out_schema);
        if (received.ok()) {
          l_received = std::move(received).value();
        } else if (st.ok()) {
          st = received.status();
        }
      }
      if (i == 0) report.Mark("hdfs_ingest_done");

      // The DB optimizer's strategy decision, from global size statistics.
      {
        BinaryWriter w;
        w.PutU64(TotalBytes(t_prime));
        w.PutU64(TotalBytes(l_received));
        net.SendControl(self, NodeId::Db(0), tags.counts, w.Release());
      }
      DbJoinStrategy strategy = DbJoinStrategy::kRepartition;
      bool build_db_side = true;
      if (i == 0) {
        uint64_t db_total = 0;
        uint64_t hdfs_total = 0;
        for (uint32_t j = 0; j < m; ++j) {
          auto msg = net.Recv(self, tags.counts);
          if (!msg.ok()) {
            // Keep going: the strategy decision below must still reach every
            // worker or the whole query deadlocks instead of failing.
            if (st.ok()) st = msg.status();
            break;
          }
          if (msg->eos || msg->payload == nullptr) continue;
          BinaryReader r(*msg->payload);
          auto a = r.GetU64();
          auto b = r.GetU64();
          if (a.ok() && b.ok()) {
            db_total += a.value();
            hdfs_total += b.value();
          }
        }
        const DbJoinStrategy chosen = ChooseStrategy(db_total, hdfs_total, m);
        const uint8_t build_db = db_total <= hdfs_total ? 1 : 0;
        for (uint32_t j = 0; j < m; ++j) {
          BinaryWriter w;
          w.PutU8(static_cast<uint8_t>(chosen));
          w.PutU8(build_db);
          net.SendControl(self, NodeId::Db(j), tags.strategy, w.Release());
        }
        report.Mark(std::string("strategy_") + StrategyName(chosen));
      }
      {
        auto msg = net.Recv(self, tags.strategy);
        if (!msg.ok()) {
          if (st.ok()) st = msg.status();
        } else if (!msg->eos && msg->payload != nullptr) {
          BinaryReader r(*msg->payload);
          auto s = r.GetU8();
          auto b = r.GetU8();
          if (s.ok() && b.ok()) {
            strategy = static_cast<DbJoinStrategy>(s.value());
            build_db_side = b.value() != 0;
          }
        }
      }

      // Execute the DB-internal join. All workers received the same
      // strategy decision, so they agree on which exchange tags are used.
      std::vector<RecordBatch> build_batches;
      std::vector<RecordBatch> probe_batches;
      SchemaPtr build_schema;
      SchemaPtr probe_schema;
      std::string build_alias;
      std::string probe_alias;
      size_t build_key = 0;
      size_t probe_key = 0;
      switch (strategy) {
        case DbJoinStrategy::kBroadcastDb: {
          std::vector<RecordBatch> t_all;
          Status b = BroadcastAmongDb(ctx, i, tags.db_shuffle_t, t_prime,
                                      prepared.db_proj_schema, &t_all);
          if (!b.ok() && st.ok()) st = b;
          build_batches = std::move(t_all);
          probe_batches = std::move(l_received);
          build_schema = prepared.db_proj_schema;
          probe_schema = prepared.hdfs_out_schema;
          build_alias = query.db.alias;
          probe_alias = query.hdfs.alias;
          build_key = prepared.db_key_idx;
          probe_key = prepared.hdfs_key_idx;
          break;
        }
        case DbJoinStrategy::kBroadcastHdfs: {
          std::vector<RecordBatch> l_all;
          Status b = BroadcastAmongDb(ctx, i, tags.db_shuffle_l, l_received,
                                      prepared.hdfs_out_schema, &l_all);
          if (!b.ok() && st.ok()) st = b;
          build_batches = std::move(l_all);
          probe_batches = std::move(t_prime);
          build_schema = prepared.hdfs_out_schema;
          probe_schema = prepared.db_proj_schema;
          build_alias = query.hdfs.alias;
          probe_alias = query.db.alias;
          build_key = prepared.hdfs_key_idx;
          probe_key = prepared.db_key_idx;
          break;
        }
        case DbJoinStrategy::kRepartition: {
          std::vector<RecordBatch> t_part;
          std::vector<RecordBatch> l_part;
          // Hybrid route: hot T' rows go everywhere, hot L'' rows stay put,
          // so each hot match forms on exactly one worker; cold keys keep
          // the plain DbPartition exchange. With an empty hot set both calls
          // degenerate to the historical repartition byte-for-byte.
          Status rt = RepartitionAmongDb(ctx, i, tags.db_shuffle_t, t_prime,
                                         prepared.db_proj_schema,
                                         prepared.db_key_idx, &hot,
                                         HotRouteMode::kBroadcast, &t_part);
          Status rl = RepartitionAmongDb(ctx, i, tags.db_shuffle_l,
                                         l_received,
                                         prepared.hdfs_out_schema,
                                         prepared.hdfs_key_idx, &hot,
                                         HotRouteMode::kKeepLocal, &l_part);
          if (!rt.ok() && st.ok()) st = rt;
          if (!rl.ok() && st.ok()) st = rl;
          if (build_db_side) {
            build_batches = std::move(t_part);
            probe_batches = std::move(l_part);
            build_schema = prepared.db_proj_schema;
            probe_schema = prepared.hdfs_out_schema;
            build_alias = query.db.alias;
            probe_alias = query.hdfs.alias;
            build_key = prepared.db_key_idx;
            probe_key = prepared.hdfs_key_idx;
          } else {
            build_batches = std::move(l_part);
            probe_batches = std::move(t_part);
            build_schema = prepared.hdfs_out_schema;
            probe_schema = prepared.db_proj_schema;
            build_alias = query.hdfs.alias;
            probe_alias = query.db.alias;
            build_key = prepared.hdfs_key_idx;
            probe_key = prepared.db_key_idx;
          }
          break;
        }
      }

      // Local hash join + aggregation, morsel-parallel on both phases: the
      // build side goes through the partitioned parallel build (key-space
      // shards on the shared exec pool), the probe side through per-thread
      // probers with thread-local partial aggregates. Under a memory budget
      // (static knob or the query's governor) the local join runs as a
      // Grace join over a per-worker spill area instead, so a build side
      // that exceeds the budget spills partitions rather than erroring.
      HashAggregator agg(query.agg);
      const JenConfig& jen_config = ctx->config().jen;
      const uint64_t grace_budget =
          jen_config.join_memory_budget_bytes > 0
              ? jen_config.join_memory_budget_bytes
              : report.governor()->budget();
      if (st.ok() && grace_budget > 0) {
        trace::Span join_span(&ctx->tracer(), trace::span::kDbJoin,
                              trace::span::kCatJoin);
        SpillArea spill(jen_config.spill_write_bps,
                        jen_config.spill_read_bps, &ctx->metrics());
        GraceJoinOptions grace_options;
        grace_options.memory_budget_bytes = grace_budget;
        grace_options.num_partitions = jen_config.grace_partitions;
        GraceHashJoin grace(build_schema, build_alias, build_key,
                            probe_schema, probe_alias, probe_key,
                            query.post_join_predicate, &agg, &ctx->metrics(),
                            &spill, grace_options);
        for (RecordBatch& batch : build_batches) {
          st = grace.AddBuild(std::move(batch));
          if (!st.ok()) break;
        }
        if (st.ok()) st = grace.FinishBuild();
        if (st.ok()) {
          for (const RecordBatch& batch : probe_batches) {
            st = grace.AddProbe(batch);
            if (!st.ok()) break;
          }
        }
        if (st.ok()) st = grace.Finish();
      } else if (st.ok()) {
        trace::Span join_span(&ctx->tracer(), trace::span::kDbJoin,
                              trace::span::kCatJoin);
        JoinHashTable table(build_key, driver::HashTableShards(ctx));
        st = table.AddBatchesParallel(std::move(build_batches),
                                      ctx->exec_pool());
        driver::FinalizeAndRecordHashTable(ctx, self, &table,
                                           ctx->exec_pool());
        if (st.ok()) {
          driver::ParallelProbe probe(ctx, self, &table, build_schema,
                                      build_alias, probe_schema, probe_alias,
                                      probe_key, query.post_join_predicate,
                                      &agg);
          for (RecordBatch& batch : probe_batches) {
            Status p = probe.Feed(std::move(batch));
            if (!p.ok()) {
              st = p;
              break;
            }
          }
          const Status fin = probe.Finish();  // joins probe threads
          if (st.ok()) st = fin;
        }
      }
      if (i == 0) report.Mark("db_join_done");
      errors.Record(st);

      // Final aggregation at DB worker 0.
      net.SendControl(self, NodeId::Db(0), tags.agg,
                      agg.Partial().Serialize());
      if (i == 0) {
        HashAggregator final_agg(query.agg);
        const SchemaPtr partial_schema = query.agg.ResultSchema();
        for (uint32_t j = 0; j < m; ++j) {
          auto msg = net.Recv(self, tags.agg);
          if (!msg.ok()) {
            errors.Record(msg.status());
            break;
          }
          if (msg->eos || msg->payload == nullptr) continue;
          auto batch = RecordBatch::Deserialize(*msg->payload, partial_schema);
          if (batch.ok()) {
            errors.Record(final_agg.Merge(batch.value()));
          } else {
            errors.Record(batch.status());
          }
        }
        result_rows = final_agg.Finish();
      }
    });
  }

  // --- JEN workers: answer the scan request (read_hdfs server side). ---
  for (uint32_t w = 0; w < n; ++w) {
    threads.emplace_back([&, w] {
      QueryScope query_scope(report.query_id());
      MemoryGovernor::Scope governor_scope(report.governor());
      const NodeId self = NodeId::Hdfs(w);
      trace::ThreadScope thread_scope(self, "jen_worker");
      driver::NodeProfileScope profile_scope(ctx, self, tags);
      trace::Span driver_span(&ctx->tracer(), trace::span::kDriverJenWorker,
                              trace::span::kCatDriver);
      Status st;
      ScanRequest request;
      {
        auto msg = net.Recv(self, tags.control);
        if (!msg.ok()) {
          st = msg.status();
        } else if (msg->eos || msg->payload == nullptr) {
          st = Status::Internal("expected scan request, got EOS");
        } else {
          auto parsed = ScanRequest::Deserialize(*msg->payload);
          if (parsed.ok()) {
            request = std::move(parsed).value();
          } else {
            st = parsed.status();
          }
        }
      }

      const NodeId db_owner = NodeId::Db(owner[w]);
      BatchSender sender(&net, self, tags.l_data,
                         ctx->config().jen.send_threads, &ctx->metrics(),
                         metric::kHdfsTuplesSentToDb);
      if (st.ok()) {
        ScanTask task;
        task.meta = prepared.scan_plan.meta;
        task.blocks = prepared.scan_plan.per_worker[w];
        task.predicate = request.predicate;
        task.projection = request.projection;
        task.bloom = request.bloom.has_value() ? &*request.bloom : nullptr;
        task.bloom_column = request.bloom_column;
        // BatchSender::Send is thread-safe (serializes on the caller), so
        // every scan process thread shares one consumer.
        st = ctx->jen_worker(w)->ScanBlocksParallel(
            task, [&](uint32_t) -> ScanConsumer {
              return [&](RecordBatch&& batch) {
                sender.Send(db_owner, batch);
                return Status::OK();
              };
            });
      }
      errors.Record(sender.Finish({db_owner}));  // EOS obligation
      errors.Record(st);
    });
  }

  for (auto& t : threads) t.join();
  report.CollectProfiles(tags, m + n);
  HJ_RETURN_IF_ERROR(errors.First());

  QueryResult result;
  result.rows = std::move(result_rows);
  // Under a carry the adaptive layer finishes the shared report (its wall
  // clock spans prefix + driver).
  if (owned_report.has_value()) result.report = report.Finish();
  return result;
}

}  // namespace hybridjoin
