#include "hybrid/context.h"

namespace hybridjoin {

namespace {

std::vector<std::unique_ptr<DataNode>> MakeDataNodes(
    const SimulationConfig& config) {
  std::vector<std::unique_ptr<DataNode>> nodes;
  nodes.reserve(config.jen_workers);
  for (uint32_t i = 0; i < config.jen_workers; ++i) {
    nodes.push_back(std::make_unique<DataNode>(i, config.datanode));
  }
  return nodes;
}

std::vector<DataNode*> Pointers(
    const std::vector<std::unique_ptr<DataNode>>& nodes) {
  std::vector<DataNode*> out;
  out.reserve(nodes.size());
  for (const auto& n : nodes) out.push_back(n.get());
  return out;
}

// Resolves the thread knobs once, before any component snapshots them:
// exec_threads via ResolveExecThreads, and jen.process_threads inheriting
// the resolved value when left at 0.
SimulationConfig ResolveConfig(SimulationConfig config) {
  config.exec_threads = ResolveExecThreads(config.exec_threads);
  if (config.jen.process_threads == 0) {
    config.jen.process_threads = config.exec_threads;
  }
  return config;
}

}  // namespace

EngineContext::EngineContext(const SimulationConfig& config)
    : config_(ResolveConfig(config)),
      tracer_(config.trace.enabled, &metrics_),
      fault_injector_(config.fault.enabled()
                          ? std::make_unique<FaultInjector>(config.fault)
                          : nullptr),
      network_(config.net, config.db.num_workers, config.jen_workers,
               &metrics_),
      datanodes_(MakeDataNodes(config)),
      datanode_ptrs_(Pointers(datanodes_)),
      namenode_(datanode_ptrs_, config.hdfs_replication),
      db_(config.db),
      coordinator_(&hcatalog_, &namenode_, config.jen_workers, config_.jen) {
  network_.set_tracer(&tracer_);
  if (fault_injector_ != nullptr) {
    network_.set_fault_injector(fault_injector_.get());
  }
  db_.set_tracer(&tracer_);
  jen_workers_.reserve(config.jen_workers);
  for (uint32_t i = 0; i < config.jen_workers; ++i) {
    jen_workers_.push_back(std::make_unique<JenWorker>(
        i, datanode_ptrs_, &network_, &metrics_, config_.jen, &tracer_));
  }
  exec_threads_ = config_.exec_threads;
  if (exec_threads_ > 1) {
    exec_pool_ = std::make_unique<ThreadPool>(exec_threads_);
  }
}

void EngineContext::DropHdfsCaches() {
  for (auto& node : datanodes_) node->DropCache();
}

}  // namespace hybridjoin
