// HybridWarehouse: the library's public entry point. Owns a simulated
// hybrid warehouse (parallel EDW + HDFS cluster + JEN + interconnect),
// loads data into both sides, and executes hybrid joins with any of the
// paper's algorithms.
//
// Typical use (see examples/quickstart.cc):
//
//   HybridWarehouse hw(SimulationConfig{});
//   hw.CreateDbTable({"T", t_schema, "uniqKey"});
//   hw.LoadDbTable("T", t_rows);
//   hw.WriteHdfsTable("L", l_schema, {}, l_batches);
//   auto result = hw.Execute(query, JoinAlgorithm::kZigzag);

#ifndef HYBRIDJOIN_HYBRID_WAREHOUSE_H_
#define HYBRIDJOIN_HYBRID_WAREHOUSE_H_

#include <memory>

#include "hdfs/table_writer.h"
#include "hybrid/advisor.h"
#include "hybrid/algorithms.h"
#include "hybrid/context.h"
#include "sql/parser.h"

namespace hybridjoin {

class HybridWarehouse {
 public:
  explicit HybridWarehouse(const SimulationConfig& config)
      : ctx_(std::make_unique<EngineContext>(config)) {}

  EngineContext& context() { return *ctx_; }

  // --- Database-side data definition / loading. ---

  /// Registers a hash-partitioned table in the EDW.
  Status CreateDbTable(DbTableMeta meta) {
    return ctx_->db().CreateTable(std::move(meta));
  }

  /// Loads rows into an EDW table (partitioned on its distribution column).
  Status LoadDbTable(const std::string& name, const RecordBatch& rows) {
    return ctx_->db().LoadTable(name, rows);
  }

  /// Builds a per-partition composite index over integer columns, enabling
  /// index-only Bloom filter computation (paper §5).
  Status CreateDbIndex(const std::string& table,
                       const std::vector<std::string>& columns) {
    return ctx_->db().CreateIndex(table, columns);
  }

  // --- HDFS-side data loading. ---

  /// Writes batches as one HDFS table (text or columnar) and registers it
  /// in HCatalog.
  Status WriteHdfsTable(const std::string& name, const SchemaPtr& schema,
                        const HdfsWriteOptions& options,
                        const std::vector<RecordBatch>& batches) {
    HdfsTableWriter writer(&ctx_->namenode(), &ctx_->hcatalog(), name,
                           schema, options);
    HJ_RETURN_IF_ERROR(writer.Open());
    for (const RecordBatch& batch : batches) {
      HJ_RETURN_IF_ERROR(writer.Append(batch));
    }
    return writer.Close();
  }

  // --- Query execution. ---

  /// Runs the query with a specific join algorithm. `memory_budget_bytes`
  /// seeds the execution's MemoryGovernor (e.g. a server session's quota);
  /// 0 falls back to SimulationConfig::query_memory_budget_bytes.
  Result<QueryResult> Execute(const HybridQuery& query,
                              JoinAlgorithm algorithm,
                              uint64_t memory_budget_bytes = 0) {
    return RunJoin(ctx_.get(), query, algorithm, memory_budget_bytes);
  }

  /// Lets the advisor pick the algorithm (sampling-based estimates), then
  /// runs it. With AdaptiveConfig::enabled (the default) the execution goes
  /// through the adaptive driver: the shared prefix re-measures the
  /// estimates and the query pivots mid-flight when the observed cost model
  /// disagrees with the initial pick by more than the hysteresis threshold.
  /// `advice_out`, if non-null, receives the decision — including the
  /// observed costs and the pivot verdict on the adaptive path.
  Result<QueryResult> ExecuteAuto(const HybridQuery& query,
                                  Advice* advice_out = nullptr,
                                  uint64_t memory_budget_bytes = 0) {
    HJ_ASSIGN_OR_RETURN(QueryEstimates est, EstimateQuery(ctx_.get(), query));
    Advice advice = AdviseAlgorithm(*ctx_, est);
    if (ctx_->config().adaptive.enabled) {
      auto result =
          RunAdaptiveJoin(ctx_.get(), query, est, &advice, memory_budget_bytes);
      if (advice_out != nullptr) *advice_out = advice;
      return result;
    }
    if (advice_out != nullptr) *advice_out = advice;
    return Execute(query, advice.algorithm, memory_budget_bytes);
  }

  // --- SQL front end (the paper drives everything through SQL, §4.1.1). ---

  /// Parses a SELECT statement of the supported dialect (see sql/parser.h)
  /// against this warehouse's catalogs.
  Result<HybridQuery> ParseSql(const std::string& statement) {
    sql::TableResolver resolver;
    resolver.side = [this](const std::string& table)
        -> Result<sql::TableSideKind> {
      const bool in_db = ctx_->db().LookupTable(table).ok();
      const bool in_hdfs = ctx_->hcatalog().Lookup(table).ok();
      if (in_db && in_hdfs) {
        return Status::InvalidArgument("table '" + table +
                                       "' exists on both sides");
      }
      if (in_db) return sql::TableSideKind::kDb;
      if (in_hdfs) return sql::TableSideKind::kHdfs;
      return Status::NotFound("table '" + table + "' not found");
    };
    resolver.schema = [this](const std::string& table) -> Result<SchemaPtr> {
      if (auto meta = ctx_->db().LookupTable(table); meta.ok()) {
        return meta->schema;
      }
      HJ_ASSIGN_OR_RETURN(HdfsTableMeta meta, ctx_->hcatalog().Lookup(table));
      return meta.schema;
    };
    return sql::ParseHybridQuery(statement, resolver);
  }

  /// Parses and runs a statement with the given algorithm.
  Result<QueryResult> ExecuteSql(const std::string& statement,
                                 JoinAlgorithm algorithm,
                                 uint64_t memory_budget_bytes = 0) {
    HJ_ASSIGN_OR_RETURN(HybridQuery query, ParseSql(statement));
    return Execute(query, algorithm, memory_budget_bytes);
  }

  /// Parses and runs a statement, letting the advisor pick the algorithm.
  Result<QueryResult> ExecuteSqlAuto(const std::string& statement,
                                     Advice* advice_out = nullptr,
                                     uint64_t memory_budget_bytes = 0) {
    HJ_ASSIGN_OR_RETURN(HybridQuery query, ParseSql(statement));
    return ExecuteAuto(query, advice_out, memory_budget_bytes);
  }

  /// Drops the HDFS page caches (to measure cold runs).
  void DropHdfsCaches() { ctx_->DropHdfsCaches(); }

 private:
  std::unique_ptr<EngineContext> ctx_;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_HYBRID_WAREHOUSE_H_
