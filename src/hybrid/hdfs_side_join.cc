// HDFS-side join drivers: the broadcast join (§3.2, Figure 2), the
// repartition join with and without Bloom filter (§3.3, Figure 3), and the
// zigzag join (§3.4, Figure 4). Every DB worker and every JEN worker runs
// on its own thread; data moves through the simulated interconnect.

#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "exec/grace_join.h"
#include "exec/join_prober.h"
#include "exec/partitioned_appender.h"
#include "hybrid/algorithms.h"
#include "hybrid/driver_common.h"
#include "jen/exchange.h"
#include "jen/worker.h"
#include "trace/tracer.h"

namespace hybridjoin {

using driver::AllDbNodes;
using driver::AllJenNodes;
using driver::AllRows;
using driver::ReportBuilder;
using driver::StatusCollector;
using driver::Tags;

namespace {

/// Builds the ScanTask for one JEN worker from the prepared query.
ScanTask MakeScanTask(const PreparedQuery& prepared, uint32_t worker,
                      const BloomFilter* bloom) {
  ScanTask task;
  task.meta = prepared.scan_plan.meta;
  task.blocks = prepared.scan_plan.per_worker[worker];
  task.predicate = prepared.query.hdfs.predicate;
  task.projection = prepared.query.hdfs.projection;
  task.bloom = bloom;
  task.bloom_column = prepared.query.hdfs.join_key;
  return task;
}

/// Appends the join-key column values of a batch to a Bloom filter.
void AddKeysToBloom(const RecordBatch& batch, size_t key_idx,
                    BloomFilter* bloom) {
  const ColumnVector& key = batch.column(key_idx);
  if (key.physical_type() == PhysicalType::kInt32) {
    bloom->AddKeys(std::span<const int32_t>(key.i32()));
  } else {
    bloom->AddKeys(std::span<const int64_t>(key.i64()));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Broadcast join (§3.2)
// ---------------------------------------------------------------------------

Result<QueryResult> RunBroadcastJoin(EngineContext* ctx,
                                     const PreparedQuery& prepared,
                                     uint64_t memory_budget_bytes,
                                     const driver::AdaptiveCarry* carry) {
  const HybridQuery& query = prepared.query;
  const uint32_t m = ctx->num_db_workers();
  const uint32_t n = ctx->num_jen_workers();
  Network& net = ctx->network();
  const Tags tags = Tags::Allocate(&net);
  const std::vector<NodeId> jen_nodes = AllJenNodes(ctx);

  // With a carry the adaptive layer owns the execution (report, query id,
  // governor). The broadcast join has no use for the carried Bloom filter:
  // it ships T' whole, exactly like the static form — which is what keeps
  // a pivot into broadcast byte-identical to the static pick.
  std::optional<ReportBuilder> owned_report;
  if (carry == nullptr || carry->report == nullptr) {
    owned_report.emplace(ctx, JoinAlgorithm::kBroadcast, memory_budget_bytes);
  }
  ReportBuilder& report =
      owned_report.has_value() ? *owned_report : *carry->report;
  StatusCollector errors;
  RecordBatch result_rows;

  std::vector<std::thread> threads;
  threads.reserve(m + n);

  // --- DB workers: filter/project T', broadcast it to every JEN node. ---
  for (uint32_t i = 0; i < m; ++i) {
    threads.emplace_back([&, i] {
      QueryScope query_scope(report.query_id());
      MemoryGovernor::Scope governor_scope(report.governor());
      trace::ThreadScope thread_scope(NodeId::Db(i), "db_worker");
      driver::NodeProfileScope profile_scope(ctx, NodeId::Db(i), tags);
      trace::Span driver_span(&ctx->tracer(), trace::span::kDriverDbWorker,
                              trace::span::kCatDriver);
      BatchSender sender(&net, NodeId::Db(i), tags.db_data,
                         ctx->config().jen.send_threads, &ctx->metrics(),
                         metric::kDbTuplesSent);
      auto scanned = ctx->db().worker(i)->ScanFilterProject(
          query.db.table, query.db.predicate, query.db.projection,
          &ctx->metrics());
      if (scanned.ok()) {
        for (const RecordBatch& batch : *scanned) {
          sender.SendToAll(jen_nodes, batch);
        }
      } else {
        errors.Record(scanned.status());
      }
      errors.Record(sender.Finish(jen_nodes));  // EOS obligation even on error
      if (i == 0) {
        report.Mark("db_broadcast_done");
        auto rows = driver::DbReceiveResult(ctx, query.agg, tags);
        if (rows.ok()) {
          result_rows = std::move(rows).value();
        } else {
          errors.Record(rows.status());
        }
      }
    });
  }

  // --- JEN workers: hash T', scan L probing in the pipeline, aggregate. ---
  for (uint32_t w = 0; w < n; ++w) {
    threads.emplace_back([&, w] {
      QueryScope query_scope(report.query_id());
      MemoryGovernor::Scope governor_scope(report.governor());
      trace::ThreadScope thread_scope(NodeId::Hdfs(w), "jen_worker");
      driver::NodeProfileScope profile_scope(ctx, NodeId::Hdfs(w), tags);
      trace::Span driver_span(&ctx->tracer(), trace::span::kDriverJenWorker,
                              trace::span::kCatDriver);
      const JenConfig& jen_config = ctx->config().jen;
      // Memory-governed path: when a budget exists (static knob or the
      // query's governor), T' builds through a Grace join so an oversized
      // broadcast side spills instead of erroring; scan process threads
      // then probe through spill-aware ProbeThreads.
      const uint64_t grace_budget =
          jen_config.join_memory_budget_bytes > 0
              ? jen_config.join_memory_budget_bytes
              : report.governor()->budget();
      const bool use_grace = grace_budget > 0;
      HashAggregator agg(query.agg);
      const uint32_t exec_threads = ctx->exec_threads();
      std::vector<std::unique_ptr<HashAggregator>> partials;
      if (use_grace) {
        SpillArea spill(jen_config.spill_write_bps,
                        jen_config.spill_read_bps, &ctx->metrics());
        GraceJoinOptions grace_options;
        grace_options.memory_budget_bytes = grace_budget;
        grace_options.num_partitions = jen_config.grace_partitions;
        GraceHashJoin grace(prepared.db_proj_schema, query.db.alias,
                            prepared.db_key_idx, prepared.hdfs_out_schema,
                            query.hdfs.alias, prepared.hdfs_key_idx,
                            query.post_join_predicate, &agg, &ctx->metrics(),
                            &spill, grace_options);
        Status st;
        {
          trace::Span build_span(&ctx->tracer(), trace::span::kJenBuild,
                                 trace::span::kCatJoin);
          StreamReceiver db_stream(&net, NodeId::Hdfs(w), tags.db_data, m);
          while (auto msg = db_stream.Next()) {
            auto batch = RecordBatch::Deserialize(*msg->payload,
                                                  prepared.db_proj_schema);
            if (!batch.ok()) {
              if (st.ok()) st = batch.status();
              continue;
            }
            Status a = grace.AddBuild(std::move(batch).value());
            if (!a.ok() && st.ok()) st = a;
          }
          if (st.ok()) st = db_stream.status();
          if (st.ok()) st = grace.FinishBuild();
        }
        if (w == ctx->coordinator().designated_worker()) {
          report.Mark("jen_hash_built");
        }
        std::vector<std::unique_ptr<GraceHashJoin::ProbeThread>> probes;
        if (st.ok()) {
          for (uint32_t t = 0; t < exec_threads; ++t) {
            HashAggregator* sink = &agg;
            if (exec_threads > 1) {
              partials.push_back(std::make_unique<HashAggregator>(query.agg));
              sink = partials.back().get();
            }
            probes.push_back(grace.MakeProbeThread(sink));
          }
          const ScanTask task = MakeScanTask(prepared, w, nullptr);
          st = ctx->jen_worker(w)->ScanBlocksParallel(
              task, [&](uint32_t t) -> ScanConsumer {
                GraceHashJoin::ProbeThread* probe = probes[t].get();
                return [&, probe](RecordBatch&& batch) {
                  trace::Span probe_span(&ctx->tracer(),
                                         trace::span::kJenProbe,
                                         trace::span::kCatJoin);
                  return probe->Probe(batch);
                };
              });
        }
        // Scan threads are joined: flush per-thread spill buffers and
        // probers, merge partials, then join the spilled pairs.
        for (auto& probe : probes) {
          if (st.ok()) st = probe->Flush();
        }
        for (auto& partial : partials) {
          if (st.ok()) st = agg.Merge(*partial);
        }
        if (st.ok()) st = grace.Finish();
        errors.Record(st);
      } else {
        JoinHashTable table(prepared.db_key_idx,
                            driver::HashTableShards(ctx));
        {
          trace::Span build_span(&ctx->tracer(), trace::span::kJenBuild,
                                 trace::span::kCatJoin);
          errors.Record(ReceiveIntoHashTable(&net, NodeId::Hdfs(w),
                                             tags.db_data, m,
                                             prepared.db_proj_schema,
                                             &table));
          driver::FinalizeAndRecordHashTable(ctx, NodeId::Hdfs(w), &table,
                                             ctx->exec_pool());
        }
        if (w == ctx->coordinator().designated_worker()) {
          report.Mark("jen_hash_built");
        }

        // Build side is the (small) database table; probe with L during the
        // scan so network wait, scan and join overlap. Each scan process
        // thread owns a JoinProber and (when parallel) a thread-local
        // partial aggregate, merged after the scan — commutative ops +
        // key-sorted partials keep the result independent of the morsel
        // split.
        std::vector<std::unique_ptr<JoinProber>> probers;
        for (uint32_t t = 0; t < exec_threads; ++t) {
          HashAggregator* sink = &agg;
          if (exec_threads > 1) {
            partials.push_back(std::make_unique<HashAggregator>(query.agg));
            sink = partials.back().get();
          }
          probers.push_back(std::make_unique<JoinProber>(
              &table, prepared.db_proj_schema, query.db.alias,
              prepared.hdfs_out_schema, query.hdfs.alias,
              prepared.hdfs_key_idx, query.post_join_predicate, sink,
              &ctx->metrics()));
        }
        const ScanTask task = MakeScanTask(prepared, w, nullptr);
        Status st = ctx->jen_worker(w)->ScanBlocksParallel(
            task, [&](uint32_t t) -> ScanConsumer {
              JoinProber* prober = probers[t].get();
              return [&, prober](RecordBatch&& batch) {
                trace::Span probe_span(&ctx->tracer(),
                                       trace::span::kJenProbe,
                                       trace::span::kCatJoin);
                return prober->ProbeBatch(batch);
              };
            });
        for (auto& prober : probers) {
          if (st.ok()) st = prober->Flush();
        }
        for (auto& partial : partials) {
          if (st.ok()) st = agg.Merge(*partial);
        }
        errors.Record(st);
      }
      if (w == ctx->coordinator().designated_worker()) {
        report.Mark("jen_scan_probe_done");
      }
      trace::Span agg_span(&ctx->tracer(), trace::span::kJenAggregate,
                           trace::span::kCatJoin);
      errors.Record(driver::JenAggregateAndReturn(ctx, w, &agg, tags));
    });
  }

  for (auto& t : threads) t.join();
  report.CollectProfiles(tags, m + n);
  HJ_RETURN_IF_ERROR(errors.First());

  QueryResult result;
  result.rows = std::move(result_rows);
  // Under a carry the adaptive layer finishes the shared report.
  if (owned_report.has_value()) result.report = report.Finish();
  return result;
}

// ---------------------------------------------------------------------------
// Repartition join (§3.3) and zigzag join (§3.4)
// ---------------------------------------------------------------------------

Result<QueryResult> RunRepartitionFamilyJoin(EngineContext* ctx,
                                             const PreparedQuery& prepared,
                                             bool use_db_bloom, bool zigzag,
                                             const JoinDriverOptions& options,
                                             uint64_t memory_budget_bytes,
                                             const driver::AdaptiveCarry* carry) {
  if (zigzag && !use_db_bloom) {
    return Status::InvalidArgument("zigzag join requires the DB Bloom filter");
  }
  const bool semijoin =
      zigzag && options.second_filter == SecondFilterKind::kExactSemijoin;
  if (semijoin && options.build_on_db_data) {
    return Status::InvalidArgument(
        "exact semijoin needs the hash table on the HDFS side");
  }
  if (semijoin && ctx->config().jen.join_memory_budget_bytes > 0) {
    return Status::InvalidArgument(
        "exact semijoin is not supported with a join-memory budget");
  }
  const HybridQuery& query = prepared.query;
  const uint32_t m = ctx->num_db_workers();
  const uint32_t n = ctx->num_jen_workers();
  Network& net = ctx->network();
  const Tags tags = Tags::Allocate(&net);
  const std::vector<NodeId> jen_nodes = AllJenNodes(ctx);
  const auto groups = ctx->coordinator().GroupWorkersForDb(m);
  const uint32_t designated = ctx->coordinator().designated_worker();
  const JoinAlgorithm algorithm =
      zigzag ? JoinAlgorithm::kZigzag
             : (use_db_bloom ? JoinAlgorithm::kRepartitionBloom
                             : JoinAlgorithm::kRepartition);

  // With a carry the adaptive layer owns the execution: reuse its report
  // and resume from the prefix's global Bloom filter + sketches. The JEN
  // side is untouched — the carried filter is re-sent on the normal
  // bloom_to_jen tag, so the cross-cluster BF transfer keeps its charge.
  const bool carried =
      carry != nullptr && carry->report != nullptr &&
      carry->global_bloom != nullptr;
  std::optional<ReportBuilder> owned_report;
  if (!carried) owned_report.emplace(ctx, algorithm, memory_budget_bytes);
  ReportBuilder& report =
      owned_report.has_value() ? *owned_report : *carry->report;
  StatusCollector errors;
  RecordBatch result_rows;

  auto agreed_hash = [n](int64_t key) { return AgreedPartition(key, n); };

  // Skew-aware shuffle (docs/architecture.md): hot-key detection piggybacks
  // on the DB Bloom-build scan, so the hybrid route exists exactly when
  // that scan runs. The semijoin variant opts out (its key/bitmap protocol
  // assumes agreed-hash placement of every T' key), and a single JEN
  // worker has nothing to balance. Both sides compute this flag from the
  // same inputs, so the DB send and the JEN receive of the hot set always
  // pair up.
  const bool skew_route =
      ctx->config().skew.enabled && use_db_bloom && !semijoin && n > 1;

  std::vector<std::thread> threads;
  threads.reserve(m + n);

  // --- DB workers (Figures 3/4, left column). ---
  for (uint32_t i = 0; i < m; ++i) {
    threads.emplace_back([&, i] {
      QueryScope query_scope(report.query_id());
      MemoryGovernor::Scope governor_scope(report.governor());
      const NodeId self = NodeId::Db(i);
      trace::ThreadScope thread_scope(self, "db_worker");
      driver::NodeProfileScope profile_scope(ctx, self, tags);
      trace::Span driver_span(&ctx->tracer(), trace::span::kDriverDbWorker,
                              trace::span::kCatDriver);
      Status st;

      // Step 1-2: local Bloom filters, combined and multicast to JEN. The
      // same scan feeds this worker's heavy-hitter sketch when the skew
      // route is on, and the hot set rides to the JEN group right behind
      // the Bloom filter.
      HotKeySet hot;
      if (use_db_bloom && carried) {
        // The adaptive prefix already built and combined BF_DB (and fed the
        // sketches). Resume from the carried state: multicast the global
        // filter to this worker's JEN group exactly as the static form
        // does, then run the hot-set combine with the carried sketch (its
        // route width is this exchange's n, which the prefix couldn't
        // know).
        for (uint32_t w : groups[i]) {
          SendBloom(&net, self, NodeId::Hdfs(w), tags.bloom_to_jen,
                    *carry->global_bloom, &ctx->metrics());
        }
        if (i == 0) report.Mark("bf_db_carried");
        if (skew_route) {
          HeavyHitterSketch sketch =
              carry->sketches != nullptr && i < carry->sketches->size()
                  ? (*carry->sketches)[i]
                  : HeavyHitterSketch(ctx->config().skew.sketch_capacity);
          auto global_hot =
              driver::CombineHotKeysAtDbWorker0(ctx, i, sketch, n, tags);
          if (global_hot.ok()) {
            hot = std::move(global_hot).value();
          } else if (st.ok()) {
            st = global_hot.status();
          }
          for (uint32_t w : groups[i]) {
            SendHotKeys(&net, self, NodeId::Hdfs(w), tags.hot_to_jen, hot);
          }
          if (i == 0 && !hot.empty()) report.Mark("hot_set_sent");
        }
      } else if (use_db_bloom) {
        HeavyHitterSketch sketch(ctx->config().skew.sketch_capacity);
        bool used_index = false;
        auto local = ctx->db().worker(i)->BuildLocalBloom(
            query.db.table, query.db.predicate, query.db.join_key,
            prepared.bloom_params, &used_index,
            skew_route ? &sketch : nullptr);
        BloomFilter local_bf = local.ok() ? std::move(local).value()
                                          : BloomFilter(prepared.bloom_params);
        if (!local.ok()) st = local.status();
        auto global = driver::CombineBloomAtDbWorker0(ctx, i, local_bf, tags);
        if (!global.ok() && st.ok()) st = global.status();
        if (global.ok() && i == 0) {
          driver::RecordBloomStats(ctx, global.value());
        }
        // Multicast BF_DB to this worker's JEN group (Figure 5).
        const BloomFilter& to_send =
            global.ok() ? global.value() : local_bf;
        for (uint32_t w : groups[i]) {
          SendBloom(&net, self, NodeId::Hdfs(w), tags.bloom_to_jen, to_send,
                    &ctx->metrics());
        }
        if (i == 0) report.Mark("bf_db_sent");
        if (skew_route) {
          // Even after an error the combine runs (with whatever the sketch
          // holds) and the hot set is forwarded: every JEN worker blocks on
          // exactly one hot-set message from its owner.
          auto global_hot =
              driver::CombineHotKeysAtDbWorker0(ctx, i, sketch, n, tags);
          if (global_hot.ok()) {
            hot = std::move(global_hot).value();
          } else if (st.ok()) {
            st = global_hot.status();
          }
          for (uint32_t w : groups[i]) {
            SendHotKeys(&net, self, NodeId::Hdfs(w), tags.hot_to_jen, hot);
          }
          if (i == 0 && !hot.empty()) report.Mark("hot_set_sent");
        }
      }

      // Apply local predicates & projection; materialize T'.
      std::vector<RecordBatch> t_prime;
      {
        auto scanned = ctx->db().worker(i)->ScanFilterProject(
            query.db.table, query.db.predicate, query.db.projection,
            &ctx->metrics());
        if (scanned.ok()) {
          t_prime = std::move(scanned).value();
        } else if (st.ok()) {
          st = scanned.status();
        }
      }

      // Zigzag step 5: wait for BF_H and prune T' down to T''.
      if (zigzag && !semijoin) {
        auto bf_h = RecvBloom(&net, self, tags.bloom_h_global);
        if (bf_h.ok()) {
          auto pruned = driver::FilterBatchesByBloom(
              t_prime, query.db.join_key, bf_h.value());
          if (pruned.ok()) {
            t_prime = std::move(pruned).value();
          } else if (st.ok()) {
            st = pruned.status();
          }
          if (i == 0) report.Mark("bf_h_applied");
        } else if (st.ok()) {
          st = bf_h.status();
        }
      }

      // Ship T' (or T'') to the JEN workers with the agreed hash function.
      BatchSender sender(&net, self, tags.db_data,
                         ctx->config().jen.send_threads, &ctx->metrics(),
                         metric::kDbTuplesSent);
      if (semijoin) {
        // Exact-semijoin variant of the second filter: ship the T' join
        // keys (partitioned by the agreed hash) to the responsible JEN
        // workers, receive exact membership bitmaps, and send only the
        // surviving rows. The key/bitmap exchange is a protocol
        // obligation, so it runs even after an earlier error (with empty
        // key lists) to keep every JEN worker unblocked.
        if (!st.ok()) t_prime.clear();
        std::vector<RecordBatch> parts;
        parts.reserve(n);
        for (uint32_t p = 0; p < n; ++p) {
          parts.emplace_back(prepared.db_proj_schema);
        }
        for (const RecordBatch& batch : t_prime) {
          const ColumnVector& key = batch.column(prepared.db_key_idx);
          const bool is32 = key.physical_type() == PhysicalType::kInt32;
          for (uint32_t r = 0; r < batch.num_rows(); ++r) {
            const int64_t k = is32 ? key.i32()[r] : key.i64()[r];
            parts[agreed_hash(k)].AppendRowFrom(batch, r);
          }
        }
        for (uint32_t p = 0; p < n; ++p) {
          const ColumnVector& key = parts[p].column(prepared.db_key_idx);
          const bool is32 = key.physical_type() == PhysicalType::kInt32;
          BinaryWriter keys;
          keys.PutVarint(parts[p].num_rows());
          for (uint32_t r = 0; r < parts[p].num_rows(); ++r) {
            keys.PutI64(is32 ? key.i32()[r] : key.i64()[r]);
          }
          ctx->metrics().Add("semijoin.key_bytes_sent",
                             static_cast<int64_t>(keys.size()));
          Status sent = SendWithRetry(&net, self, NodeId::Hdfs(p),
                                      tags.bloom_h_local, keys.Release());
          if (!sent.ok() && st.ok()) st = sent;
        }
        // Collect one bitmap per JEN worker (any arrival order).
        std::vector<std::vector<uint8_t>> bitmaps(n);
        for (uint32_t b = 0; b < n; ++b) {
          auto msg = net.Recv(self, tags.bloom_h_global);
          if (!msg.ok()) {
            if (st.ok()) st = msg.status();
            break;
          }
          if (msg->eos || msg->payload == nullptr) {
            if (st.ok()) st = Status::Internal("expected semijoin bitmap");
            continue;
          }
          bitmaps[msg->from.index] = *msg->payload;
        }
        for (uint32_t p = 0; p < n && st.ok(); ++p) {
          std::vector<uint32_t> keep;
          for (uint32_t r = 0; r < parts[p].num_rows(); ++r) {
            if (r / 8 < bitmaps[p].size() &&
                (bitmaps[p][r / 8] >> (r % 8)) & 1) {
              keep.push_back(r);
            }
          }
          if (!keep.empty()) {
            sender.Send(NodeId::Hdfs(p), parts[p].Gather(keep));
          }
        }
        if (i == 0) report.Mark("semijoin_applied");
      } else if (st.ok()) {
        // Hybrid route: cold T' rows keep the agreed-hash path; rows of a
        // hot key broadcast to every JEN worker (serialize-once SendToAll),
        // where they meet the hot probe rows that stayed local. Exactly-once
        // pairing holds because each hot L row lives on precisely one
        // worker — the one that scanned it.
        SkewRouter router(
            prepared.db_proj_schema, n, prepared.db_key_idx, agreed_hash,
            ctx->config().jen.shuffle_batch_rows,
            [&](uint32_t p, RecordBatch&& batch) {
              sender.Send(NodeId::Hdfs(p), batch);
              return Status::OK();
            },
            skew_route ? &hot : nullptr,
            [&](RecordBatch&& batch) {
              const int64_t rows = static_cast<int64_t>(batch.num_rows());
              const int64_t bytes = static_cast<int64_t>(batch.ByteSize()) *
                                    static_cast<int64_t>(jen_nodes.size());
              sender.SendToAll(jen_nodes, batch);
              ctx->metrics().Add(metric::kShuffleHotRowsBuild, rows);
              ctx->metrics().Add(metric::kShuffleBroadcastBytes, bytes);
              return Status::OK();
            });
        for (const RecordBatch& batch : t_prime) {
          Status append = router.Append(batch, AllRows(batch.num_rows()));
          if (!append.ok()) {
            st = append;
            break;
          }
        }
        Status flush = router.FlushAll();
        if (st.ok()) st = flush;
      }
      const Status fin = sender.Finish(jen_nodes);  // EOS obligation
      errors.Record(st);
      errors.Record(fin);

      if (i == 0) {
        auto rows = driver::DbReceiveResult(ctx, query.agg, tags);
        if (rows.ok()) {
          result_rows = std::move(rows).value();
        } else {
          errors.Record(rows.status());
        }
      }
    });
  }

  // --- JEN workers (Figures 3/4, right column; pipeline of Figure 7). ---
  for (uint32_t w = 0; w < n; ++w) {
    threads.emplace_back([&, w] {
      QueryScope query_scope(report.query_id());
      MemoryGovernor::Scope governor_scope(report.governor());
      const NodeId self = NodeId::Hdfs(w);
      trace::ThreadScope thread_scope(self, "jen_worker");
      driver::NodeProfileScope profile_scope(ctx, self, tags);
      trace::Span driver_span(&ctx->tracer(), trace::span::kDriverJenWorker,
                              trace::span::kCatDriver);
      Status st;

      // Blocking wait for BF_DB before the scan starts (paper §4.4).
      BloomFilter bf_db_storage;
      const BloomFilter* bf_db = nullptr;
      if (use_db_bloom) {
        auto received = RecvBloom(&net, self, tags.bloom_to_jen);
        if (received.ok()) {
          bf_db_storage = std::move(received).value();
          bf_db = &bf_db_storage;
        } else {
          st = received.status();
        }
      }

      // The coordinator's hot-key set arrives right behind the Bloom
      // filter; scanned rows of a hot key will stay on this worker.
      HotKeySet hot;
      if (skew_route) {
        auto received = RecvHotKeys(&net, self, tags.hot_to_jen);
        if (received.ok()) {
          hot = std::move(received).value();
        } else if (st.ok()) {
          st = received.status();
        }
      }

      // Receive threads drain the shuffled L' as it arrives (Figure 7,
      // right side) — into the join hash table by default (the paper's
      // choice: the shuffle completes with the scan, long before any
      // database record can arrive), into a memory-bounded Grace join
      // when a budget is configured (§4.4 future work), or into a plain
      // buffer for the build-on-DB-data ablation.
      const JenConfig& jen_config = ctx->config().jen;
      // The semijoin variant needs an exact-membership table over L', which
      // the partitioned grace build cannot answer; with only a governor
      // budget it runs the plain table and overcommits (never wrong, just
      // unbudgeted), while the static knob keeps its historical hard error
      // above.
      const uint64_t grace_budget =
          jen_config.join_memory_budget_bytes > 0
              ? jen_config.join_memory_budget_bytes
              : report.governor()->budget();
      const bool use_grace =
          !options.build_on_db_data && !semijoin && grace_budget > 0;
      HashAggregator agg(query.agg);
      SpillArea spill(jen_config.spill_write_bps, jen_config.spill_read_bps,
                      &ctx->metrics());
      GraceJoinOptions grace_options;
      grace_options.memory_budget_bytes = grace_budget;
      grace_options.num_partitions = jen_config.grace_partitions;
      GraceHashJoin grace(prepared.hdfs_out_schema, query.hdfs.alias,
                          prepared.hdfs_key_idx, prepared.db_proj_schema,
                          query.db.alias, prepared.db_key_idx,
                          query.post_join_predicate, &agg, &ctx->metrics(),
                          &spill, grace_options);
      JoinHashTable l_table(prepared.hdfs_key_idx,
                            driver::HashTableShards(ctx));
      std::vector<RecordBatch> l_buffer;
      Status receive_status;
      const uint64_t query_id = QueryScope::Current();
      std::thread receiver([&, query_id] {
        QueryScope receiver_query_scope(query_id);
        MemoryGovernor::Scope receiver_governor_scope(report.governor());
        trace::ThreadScope receive_scope(self, "jen_receive");
        trace::Span build_span(&ctx->tracer(), trace::span::kJenBuild,
                               trace::span::kCatJoin);
        if (use_grace) {
          StreamReceiver shuffle_stream(&net, self, tags.shuffle, n);
          while (auto msg = shuffle_stream.Next()) {
            auto batch = RecordBatch::Deserialize(*msg->payload,
                                                  prepared.hdfs_out_schema);
            if (!batch.ok()) {
              receive_status = batch.status();
              continue;
            }
            Status a = grace.AddBuild(std::move(batch).value());
            if (!a.ok() && receive_status.ok()) receive_status = a;
          }
          if (receive_status.ok()) receive_status = shuffle_stream.status();
        } else if (options.build_on_db_data) {
          auto received = ReceiveAllBatches(&net, self, tags.shuffle, n,
                                            prepared.hdfs_out_schema);
          if (received.ok()) {
            l_buffer = std::move(received).value();
          } else {
            receive_status = received.status();
          }
        } else {
          receive_status =
              ReceiveIntoHashTable(&net, self, tags.shuffle, n,
                                   prepared.hdfs_out_schema, &l_table);
        }
      });

      // Scan + filter + BF_DB + projection, shuffling L' with the agreed
      // hash while building the local HDFS Bloom filter (zigzag).
      BloomFilter bf_h_local(prepared.bloom_params);
      BatchSender shuffle_sender(&net, self, tags.shuffle,
                                 ctx->config().jen.send_threads,
                                 &ctx->metrics(),
                                 metric::kHdfsTuplesShuffled);
      // Per-process-thread shuffle state: PartitionedAppender keeps
      // unsynchronized per-partition buffers and the zigzag Bloom filter
      // has no atomic bit-set, so every scan process thread gets its own
      // of both (the shared BatchSender is thread-safe). The per-thread
      // filters are OR-ed into bf_h_local after the scan — union is
      // commutative, so the combined filter does not depend on which
      // thread saw which block.
      const uint32_t exec_threads = ctx->exec_threads();
      std::vector<std::unique_ptr<BloomFilter>> thread_blooms;
      std::vector<std::unique_ptr<SkewRouter>> appenders;
      // Hot probe rows bypass the network entirely: each scan thread parks
      // its hot batches here, and after the receiver drains they fold into
      // the local build. Buffered bytes are charged to the governor (the
      // shuffle's in-flight payloads are charged the same way) and released
      // once the build takes ownership.
      std::vector<std::vector<RecordBatch>> hot_parked(exec_threads);
      std::vector<uint64_t> hot_parked_bytes(exec_threads, 0);
      MemoryGovernor* governor = report.governor();
      for (uint32_t t = 0; t < exec_threads; ++t) {
        thread_blooms.push_back(
            std::make_unique<BloomFilter>(prepared.bloom_params));
        appenders.push_back(std::make_unique<SkewRouter>(
            prepared.hdfs_out_schema, n, prepared.hdfs_key_idx, agreed_hash,
            ctx->config().jen.shuffle_batch_rows,
            [&](uint32_t p, RecordBatch&& batch) {
              trace::Span shuffle_span(&ctx->tracer(),
                                       trace::span::kJenShuffle,
                                       trace::span::kCatExchange);
              shuffle_sender.Send(NodeId::Hdfs(p), batch);
              return Status::OK();
            },
            skew_route ? &hot : nullptr,
            [&, t](RecordBatch&& batch) {
              const uint64_t bytes = batch.ByteSize();
              if (governor != nullptr) governor->Reserve(bytes);
              hot_parked_bytes[t] += bytes;
              hot_parked[t].push_back(std::move(batch));
              return Status::OK();
            }));
      }
      if (st.ok()) {
        const ScanTask task = MakeScanTask(prepared, w, bf_db);
        st = ctx->jen_worker(w)->ScanBlocksParallel(
            task, [&](uint32_t t) -> ScanConsumer {
              SkewRouter* appender = appenders[t].get();
              BloomFilter* bloom = thread_blooms[t].get();
              return [&, appender, bloom](RecordBatch&& batch) {
                if (zigzag && !semijoin) {
                  // BF_H covers every scanned L' key — hot keys included,
                  // routing must not change what the filter admits.
                  AddKeysToBloom(batch, prepared.hdfs_key_idx, bloom);
                }
                return appender->Append(batch, AllRows(batch.num_rows()));
              };
            });
        for (auto& appender : appenders) {
          if (st.ok()) st = appender->FlushAll();
        }
        if (zigzag && !semijoin) {
          for (auto& bloom : thread_blooms) {
            Status u = bf_h_local.UnionWith(*bloom);
            if (!u.ok() && st.ok()) st = u;
          }
        }
      }
      {
        const Status fin = shuffle_sender.Finish(jen_nodes);  // EOS obligation
        if (st.ok()) st = fin;
      }
      if (w == designated) report.Mark("jen_scan_done");

      // Zigzag steps 3b/4: combine BF_H at the designated worker and send
      // it to every DB worker.
      if (zigzag && !semijoin) {
        SendBloom(&net, self, NodeId::Hdfs(designated), tags.bloom_h_local,
                  bf_h_local, &ctx->metrics());
        if (w == designated) {
          BloomFilter bf_h(prepared.bloom_params);
          for (uint32_t j = 0; j < n; ++j) {
            auto local = RecvBloom(&net, self, tags.bloom_h_local);
            if (local.ok()) {
              Status u = bf_h.UnionWith(local.value());
              if (!u.ok() && st.ok()) st = u;
            } else if (st.ok()) {
              st = local.status();
            }
          }
          driver::RecordBloomStats(ctx, bf_h);
          for (uint32_t j = 0; j < m; ++j) {
            SendBloom(&net, self, NodeId::Db(j), tags.bloom_h_global, bf_h,
                      &ctx->metrics());
          }
          report.Mark("bf_h_sent");
        }
      }

      // Drain the shuffle.
      receiver.join();
      if (st.ok()) st = receive_status;

      // Fold the parked hot probe rows into the local build (or the probe
      // buffer for the build-on-DB ablation) now that the receive side is
      // quiet. Every hot L row exists on exactly one worker — this one —
      // while the matching hot T' rows were broadcast everywhere, so each
      // (t, l) pair meets exactly once and no duplicate elimination is
      // needed. The buffered-bytes charge returns here; whatever the build
      // keeps it re-charges itself.
      if (skew_route) {
        int64_t hot_probe_rows = 0;
        uint64_t parked_bytes = 0;
        for (uint64_t b : hot_parked_bytes) parked_bytes += b;
        for (auto& thread_batches : hot_parked) {
          for (RecordBatch& batch : thread_batches) {
            hot_probe_rows += static_cast<int64_t>(batch.num_rows());
            if (!st.ok()) continue;
            if (use_grace) {
              Status a = grace.AddBuild(std::move(batch));
              if (!a.ok()) st = a;
            } else if (options.build_on_db_data) {
              l_buffer.push_back(std::move(batch));
            } else {
              Status a = l_table.AddBatch(std::move(batch));
              if (!a.ok()) st = a;
            }
          }
          thread_batches.clear();
        }
        if (governor != nullptr) governor->Release(parked_bytes);
        if (hot_probe_rows > 0) {
          ctx->metrics().Add(metric::kShuffleHotRowsProbe, hot_probe_rows);
        }
      }

      if (use_grace) {
        // Grace/hybrid hash join: resident partitions were built during
        // the shuffle; spilled ones are joined pairwise at the end.
        if (st.ok()) st = grace.FinishBuild();
        if (w == designated) report.Mark("jen_hash_built");
        // Spill-aware morsel probe: each worker thread owns a
        // GraceHashJoin::ProbeThread (per-partition probers over the shared
        // frozen tables plus thread-local spill buffers) feeding a
        // thread-local partial aggregate. Morsels whose partition spilled
        // divert to the partition's probe spill file instead of probing.
        const uint32_t exec_threads = ctx->exec_threads();
        std::vector<std::unique_ptr<HashAggregator>> grace_partials;
        std::vector<std::unique_ptr<GraceHashJoin::ProbeThread>> grace_probes;
        std::unique_ptr<BatchMorselPipe> pipe;
        if (st.ok()) {
          for (uint32_t t = 0; t < exec_threads; ++t) {
            HashAggregator* sink = &agg;
            if (exec_threads > 1) {
              grace_partials.push_back(
                  std::make_unique<HashAggregator>(query.agg));
              sink = grace_partials.back().get();
            }
            grace_probes.push_back(grace.MakeProbeThread(sink));
          }
          pipe = std::make_unique<BatchMorselPipe>(
              exec_threads,
              [&](uint32_t t, RecordBatch&& batch) -> Status {
                trace::Span probe_span(&ctx->tracer(),
                                       trace::span::kJenProbe,
                                       trace::span::kCatJoin);
                return grace_probes[t]->Probe(batch);
              },
              self, "probe");
        }
        StreamReceiver db_stream(&net, self, tags.db_data, m);
        while (auto msg = db_stream.Next()) {
          if (!st.ok()) continue;  // keep draining to honor the protocol
          auto batch = RecordBatch::Deserialize(*msg->payload,
                                                prepared.db_proj_schema);
          if (batch.ok()) {
            Status p = pipe->Feed(std::move(batch).value());
            if (!p.ok()) st = p;
          } else {
            st = batch.status();
          }
        }
        if (st.ok()) st = db_stream.status();
        if (pipe != nullptr) {
          const Status fin = pipe->Finish();  // joins probe threads
          if (st.ok()) st = fin;
        }
        // Probe threads joined: flush spill buffers + probers, merge the
        // partials, then join the spilled partition pairs.
        for (auto& probe : grace_probes) {
          if (st.ok()) st = probe->Flush();
        }
        for (auto& partial : grace_partials) {
          if (st.ok()) st = agg.Merge(*partial);
        }
        if (st.ok()) st = grace.Finish();
      } else if (!options.build_on_db_data) {
        // Paper's plan: hash table over L', probe with arriving database
        // records (buffered by the network while we were building).
        driver::FinalizeAndRecordHashTable(ctx, self, &l_table,
                                           ctx->exec_pool());
        if (w == designated) report.Mark("jen_hash_built");
        if (semijoin) {
          // Answer each DB worker's key list with an exact membership
          // bitmap over this worker's shuffled L' keys. Replying to all m
          // lists is a protocol obligation, even after an earlier error
          // (an all-zero bitmap then suffices to unblock the sender).
          for (uint32_t j = 0; j < m; ++j) {
            auto msg = net.Recv(self, tags.bloom_h_local);
            if (!msg.ok()) {
              if (st.ok()) st = msg.status();
              break;
            }
            if (msg->eos || msg->payload == nullptr) {
              if (st.ok()) {
                st = Status::Internal("expected semijoin key list");
              }
              continue;
            }
            BinaryReader r(*msg->payload);
            std::vector<uint8_t> bitmap;
            auto count = r.GetVarint();
            if (count.ok()) {
              bitmap.assign((*count + 7) / 8, 0);
              for (uint64_t k = 0; k < *count; ++k) {
                auto key = r.GetI64();
                if (!key.ok()) {
                  if (st.ok()) st = key.status();
                  break;
                }
                if (st.ok() && l_table.Contains(*key)) {
                  bitmap[k / 8] |= static_cast<uint8_t>(1u << (k % 8));
                }
              }
            } else if (st.ok()) {
              st = count.status();
            }
            Status sent = SendWithRetry(&net, self, msg->from,
                                        tags.bloom_h_global,
                                        std::move(bitmap));
            if (!sent.ok() && st.ok()) st = sent;
          }
        }
        driver::ParallelProbe probe(
            ctx, self, &l_table, prepared.hdfs_out_schema, query.hdfs.alias,
            prepared.db_proj_schema, query.db.alias, prepared.db_key_idx,
            query.post_join_predicate, &agg, trace::span::kJenProbe);
        StreamReceiver db_stream(&net, self, tags.db_data, m);
        while (auto msg = db_stream.Next()) {
          if (!st.ok()) continue;  // keep draining to honor the protocol
          auto batch = RecordBatch::Deserialize(*msg->payload,
                                                prepared.db_proj_schema);
          if (batch.ok()) {
            Status p = probe.Feed(std::move(batch).value());
            if (!p.ok()) st = p;
          } else {
            st = batch.status();
          }
        }
        if (st.ok()) st = db_stream.status();
        {
          const Status fin = probe.Finish();  // joins probe threads
          if (st.ok()) st = fin;
        }
      } else {
        // Ablation: build on the database records (which only start to
        // arrive after BF_H — all of L' sits buffered meanwhile).
        JoinHashTable db_table(prepared.db_key_idx,
                               driver::HashTableShards(ctx));
        Status build_status = ReceiveIntoHashTable(
            &net, self, tags.db_data, m, prepared.db_proj_schema, &db_table);
        if (st.ok()) st = build_status;
        driver::FinalizeAndRecordHashTable(ctx, self, &db_table,
                                           ctx->exec_pool());
        if (w == designated) report.Mark("jen_hash_built");
        driver::ParallelProbe probe(
            ctx, self, &db_table, prepared.db_proj_schema, query.db.alias,
            prepared.hdfs_out_schema, query.hdfs.alias,
            prepared.hdfs_key_idx, query.post_join_predicate, &agg,
            trace::span::kJenProbe);
        for (RecordBatch& batch : l_buffer) {
          if (!st.ok()) break;
          Status p = probe.Feed(std::move(batch));
          if (!p.ok()) st = p;
        }
        {
          const Status fin = probe.Finish();  // joins probe threads
          if (st.ok()) st = fin;
        }
      }
      errors.Record(st);
      if (w == designated) report.Mark("jen_probe_done");
      trace::Span agg_span(&ctx->tracer(), trace::span::kJenAggregate,
                           trace::span::kCatJoin);
      errors.Record(driver::JenAggregateAndReturn(ctx, w, &agg, tags));
    });
  }

  for (auto& t : threads) t.join();
  report.CollectProfiles(tags, m + n);
  HJ_RETURN_IF_ERROR(errors.First());

  QueryResult result;
  result.rows = std::move(result_rows);
  // Under a carry the adaptive layer finishes the shared report.
  if (owned_report.has_value()) result.report = report.Finish();
  return result;
}

}  // namespace hybridjoin
