// Single-node reference executor: evaluates a HybridQuery directly over
// in-memory batches, with no clusters, networks or Bloom filters involved.
// Tests compare every distributed algorithm's result against this oracle.

#ifndef HYBRIDJOIN_HYBRID_REFERENCE_H_
#define HYBRIDJOIN_HYBRID_REFERENCE_H_

#include <vector>

#include "hybrid/query.h"

namespace hybridjoin {

/// Runs the query over raw table data: filter/project both sides, hash-join
/// on the keys, apply the post-join predicate, aggregate. Returns rows in
/// the same schema and order ([group asc]) as the distributed drivers.
Result<RecordBatch> RunReferenceJoin(
    const std::vector<RecordBatch>& db_batches,
    const std::vector<RecordBatch>& hdfs_batches, const HybridQuery& query);

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_HYBRID_REFERENCE_H_
