// HybridQuery: the class of queries the paper studies (§2) — an equi-join
// between a database table and an HDFS table, with local predicates and
// projections on both sides, a post-join predicate, and a grouped
// aggregation whose small result returns to the database.

#ifndef HYBRIDJOIN_HYBRID_QUERY_H_
#define HYBRIDJOIN_HYBRID_QUERY_H_

#include <string>
#include <vector>

#include "exec/aggregator.h"
#include "expr/predicate.h"

namespace hybridjoin {

/// One side of the join.
struct TableSide {
  std::string table;                    ///< catalog name
  std::string alias;                    ///< name prefix in the joined schema
  PredicatePtr predicate;               ///< local predicates (nullable)
  std::vector<std::string> projection;  ///< columns carried into the join
  std::string join_key;                 ///< equi-join column (int-typed)
};

/// The full query. The post-join predicate and the aggregation reference
/// joined columns as "<alias>.<column>".
struct HybridQuery {
  TableSide db;    ///< the warehouse table (paper's T)
  TableSide hdfs;  ///< the HDFS table (paper's L)
  PredicatePtr post_join_predicate;  ///< nullable
  AggSpec agg;

  /// Structural validation (projections contain the join key, aliases are
  /// distinct, aggregation references resolvable names, ...). Drivers call
  /// this before running.
  Status Validate() const;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_HYBRID_QUERY_H_
