#include "hybrid/algorithms.h"

#include "exec/join_prober.h"

namespace hybridjoin {

namespace {

Result<std::pair<SchemaPtr, size_t>> ResolveProjection(
    const SchemaPtr& schema, const std::vector<std::string>& projection,
    const std::string& join_key, const std::string& side) {
  std::vector<size_t> indexes;
  for (const std::string& name : projection) {
    auto idx = schema->IndexOf(name);
    if (!idx.ok()) {
      return Status::InvalidArgument(side + " projection column '" + name +
                                     "' not in table schema " +
                                     schema->ToString());
    }
    indexes.push_back(idx.value());
  }
  SchemaPtr projected = schema->Project(indexes);
  HJ_ASSIGN_OR_RETURN(size_t key_idx, projected->IndexOf(join_key));
  const DataType key_type = projected->field(key_idx).type;
  if (PhysicalTypeOf(key_type) != PhysicalType::kInt32 &&
      PhysicalTypeOf(key_type) != PhysicalType::kInt64) {
    return Status::InvalidArgument(side + " join key must be integer-typed");
  }
  return std::make_pair(projected, key_idx);
}

Status ValidatePredicateColumns(const PredicatePtr& predicate,
                                const SchemaPtr& schema,
                                const std::string& side) {
  if (predicate == nullptr) return Status::OK();
  std::vector<std::string> columns;
  predicate->CollectColumns(&columns);
  for (const std::string& name : columns) {
    if (!schema->HasColumn(name)) {
      return Status::InvalidArgument(side + " predicate references '" + name +
                                     "' which is not in the table schema");
    }
  }
  return Status::OK();
}

}  // namespace

Result<PreparedQuery> PrepareQuery(EngineContext* ctx,
                                   const HybridQuery& query) {
  HJ_RETURN_IF_ERROR(query.Validate());
  PreparedQuery prepared;
  prepared.query = query;

  HJ_ASSIGN_OR_RETURN(prepared.db_meta,
                      ctx->db().LookupTable(query.db.table));
  HJ_ASSIGN_OR_RETURN(prepared.scan_plan,
                      ctx->coordinator().PlanScan(query.hdfs.table));

  HJ_RETURN_IF_ERROR(ValidatePredicateColumns(
      query.db.predicate, prepared.db_meta.schema, "db"));
  HJ_RETURN_IF_ERROR(ValidatePredicateColumns(
      query.hdfs.predicate, prepared.scan_plan.meta.schema, "hdfs"));

  HJ_ASSIGN_OR_RETURN(
      auto db_resolved,
      ResolveProjection(prepared.db_meta.schema, query.db.projection,
                        query.db.join_key, "db"));
  prepared.db_proj_schema = db_resolved.first;
  prepared.db_key_idx = db_resolved.second;

  HJ_ASSIGN_OR_RETURN(
      auto hdfs_resolved,
      ResolveProjection(prepared.scan_plan.meta.schema, query.hdfs.projection,
                        query.hdfs.join_key, "hdfs"));
  prepared.hdfs_out_schema = hdfs_resolved.first;
  prepared.hdfs_key_idx = hdfs_resolved.second;

  // Check post-join and aggregate references against the joined schema.
  const SchemaPtr joined =
      MakeJoinedSchema(prepared.hdfs_out_schema, query.hdfs.alias,
                       prepared.db_proj_schema, query.db.alias);
  std::vector<std::string> referenced;
  if (query.post_join_predicate != nullptr) {
    query.post_join_predicate->CollectColumns(&referenced);
  }
  referenced.push_back(query.agg.group_column);
  for (const auto& item : query.agg.items) {
    if (item.op != AggOp::kCountStar) referenced.push_back(item.column);
  }
  for (const std::string& name : referenced) {
    if (!joined->HasColumn(name)) {
      return Status::InvalidArgument("post-join reference '" + name +
                                     "' not found in joined schema " +
                                     joined->ToString());
    }
  }

  prepared.bloom_params = ctx->bloom_params();
  return prepared;
}

Result<QueryResult> RunJoin(EngineContext* ctx, const HybridQuery& query,
                            JoinAlgorithm algorithm,
                            uint64_t memory_budget_bytes) {
  HJ_ASSIGN_OR_RETURN(PreparedQuery prepared, PrepareQuery(ctx, query));
  switch (algorithm) {
    case JoinAlgorithm::kDbSide:
      return RunDbSideJoin(ctx, prepared, /*use_bloom=*/false,
                           memory_budget_bytes);
    case JoinAlgorithm::kDbSideBloom:
      return RunDbSideJoin(ctx, prepared, /*use_bloom=*/true,
                           memory_budget_bytes);
    case JoinAlgorithm::kBroadcast:
      return RunBroadcastJoin(ctx, prepared, memory_budget_bytes);
    case JoinAlgorithm::kRepartition:
      return RunRepartitionFamilyJoin(ctx, prepared, /*use_db_bloom=*/false,
                                      /*zigzag=*/false, {},
                                      memory_budget_bytes);
    case JoinAlgorithm::kRepartitionBloom:
      return RunRepartitionFamilyJoin(ctx, prepared, /*use_db_bloom=*/true,
                                      /*zigzag=*/false, {},
                                      memory_budget_bytes);
    case JoinAlgorithm::kZigzag:
      return RunRepartitionFamilyJoin(ctx, prepared, /*use_db_bloom=*/true,
                                      /*zigzag=*/true, {},
                                      memory_budget_bytes);
  }
  return Status::InvalidArgument("unknown join algorithm");
}

}  // namespace hybridjoin
