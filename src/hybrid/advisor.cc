#include "hybrid/advisor.h"

#include <algorithm>
#include <sstream>

#include "common/hash.h"
#include "hybrid/algorithms.h"

namespace hybridjoin {

namespace {

/// Nominal bandwidths used when the config leaves a resource unthrottled
/// (the advisor still needs relative costs to rank algorithms).
constexpr double kNominalDiskBps = 100.0 * 1024 * 1024;
constexpr double kNominalHdfsNicBps = 120.0 * 1024 * 1024;
constexpr double kNominalDbNicBps = 1200.0 * 1024 * 1024;
constexpr double kNominalCrossBps = 2400.0 * 1024 * 1024;

double Effective(uint64_t configured, double fallback) {
  return configured == 0 ? fallback : static_cast<double>(configured);
}

}  // namespace

std::string Advice::ToString() const {
  std::ostringstream os;
  if (!has_observed) {
    os << "advice: " << JoinAlgorithmName(algorithm)
       << " (est. costs s — broadcast: " << broadcast_cost
       << ", db(BF): " << db_side_cost << ", zigzag: " << zigzag_cost << ")";
    return os.str();
  }
  // Both estimate and observation exist: render all three costs as
  // "estimated -> observed" so a pivot is explainable from this line alone.
  os << "advice: " << JoinAlgorithmName(algorithm) << " -> "
     << JoinAlgorithmName(final_algorithm)
     << (pivoted ? " [pivoted]" : " [stayed]")
     << " (est -> obs costs s — broadcast: " << broadcast_cost << " -> "
     << observed_broadcast_cost << ", db(BF): " << db_side_cost << " -> "
     << observed_db_side_cost << ", zigzag: " << zigzag_cost << " -> "
     << observed_zigzag_cost << ")";
  if (pivoted && !pivot_reason.empty()) os << "; " << pivot_reason;
  return os.str();
}

Advice AdviseAlgorithm(const EngineContext& ctx, const QueryEstimates& est) {
  const SimulationConfig& cfg = ctx.config();
  const double n = cfg.jen_workers;
  const double m = cfg.db.num_workers;
  const double disk =
      Effective(cfg.datanode.disk_read_bps, kNominalDiskBps) *
      cfg.datanode.num_disks;
  const double hdfs_nic = Effective(cfg.net.hdfs_nic_bps, kNominalHdfsNicBps);
  const double db_nic = Effective(cfg.net.db_nic_bps, kNominalDbNicBps);
  const double cross = Effective(cfg.net.cross_switch_bps, kNominalCrossBps);

  // Shared: every HDFS-side algorithm scans L once, in parallel.
  const double scan = static_cast<double>(est.hdfs_scan_bytes) / (n * disk);

  Advice advice;
  // Broadcast (§3.2): T' is copied to all n workers through the switch;
  // no L shuffle at all.
  advice.broadcast_cost =
      scan + static_cast<double>(est.db_filtered_bytes) * n / cross;

  // DB-side with Bloom filter (§3.1): L' (after join-key pruning) crosses
  // the switch and funnels into m database NICs, then an internal join
  // roughly re-shuffles it inside the database.
  const double l_moved = static_cast<double>(est.hdfs_filtered_bytes) *
                         est.hdfs_joinkey_selectivity;
  advice.db_side_cost = scan + l_moved / std::min(cross, m * db_nic) +
                        l_moved / (m * db_nic);

  // Zigzag (§3.4): the L' shuffle overlaps the scan (it is masked unless
  // the NICs are slower than the disks); T'' crosses the switch after
  // two-way pruning.
  const double shuffle = l_moved / (n * hdfs_nic);
  const double t_moved = static_cast<double>(est.db_filtered_bytes) *
                         est.db_joinkey_selectivity;
  advice.zigzag_cost = std::max(scan, shuffle) + t_moved / cross;

  advice.algorithm = JoinAlgorithm::kZigzag;
  double best = advice.zigzag_cost;
  if (advice.db_side_cost < best) {
    best = advice.db_side_cost;
    advice.algorithm = JoinAlgorithm::kDbSideBloom;
  }
  if (advice.broadcast_cost < best) {
    best = advice.broadcast_cost;
    advice.algorithm = JoinAlgorithm::kBroadcast;
  }
  advice.final_algorithm = advice.algorithm;
  return advice;
}

namespace {

/// The cost `advice` assigns to running `algorithm` (the three modeled
/// strategies; the Bloom-less kDbSide maps to the db(BF) cost).
double CostOf(const Advice& advice, JoinAlgorithm algorithm) {
  switch (algorithm) {
    case JoinAlgorithm::kBroadcast:
      return advice.broadcast_cost;
    case JoinAlgorithm::kDbSide:
    case JoinAlgorithm::kDbSideBloom:
      return advice.db_side_cost;
    default:
      return advice.zigzag_cost;
  }
}

}  // namespace

Advice DecidePivot(const EngineContext& ctx, const Advice& initial,
                   const QueryEstimates& observed, double pivot_threshold) {
  const Advice obs = AdviseAlgorithm(ctx, observed);
  Advice advice = initial;
  advice.has_observed = true;
  advice.observed_broadcast_cost = obs.broadcast_cost;
  advice.observed_db_side_cost = obs.db_side_cost;
  advice.observed_zigzag_cost = obs.zigzag_cost;
  advice.final_algorithm = initial.algorithm;
  advice.pivoted = false;
  advice.pivot_reason.clear();
  const double stay = CostOf(obs, initial.algorithm);
  const double best = CostOf(obs, obs.algorithm);
  if (obs.algorithm != initial.algorithm &&
      stay > best * (1.0 + pivot_threshold)) {
    advice.pivoted = true;
    advice.final_algorithm = obs.algorithm;
    std::ostringstream reason;
    reason << "pivot: observed cost of " << JoinAlgorithmName(initial.algorithm)
           << " (" << stay << "s) exceeds " << JoinAlgorithmName(obs.algorithm)
           << " (" << best << "s) by > " << (pivot_threshold * 100.0) << "%";
    advice.pivot_reason = reason.str();
  }
  return advice;
}

Result<QueryEstimates> EstimateQuery(EngineContext* ctx,
                                     const HybridQuery& query) {
  HJ_ASSIGN_OR_RETURN(PreparedQuery prepared, PrepareQuery(ctx, query));
  QueryEstimates est;

  // --- Database side: sample one seeded-random stored batch on worker 0
  // (copied under the catalog read lock, so a concurrent LoadTable cannot
  // move it out from under the estimator). ---
  const uint64_t sample_seed = ctx->config().adaptive.sample_seed;
  HJ_ASSIGN_OR_RETURN(RecordBatch sample,
                      ctx->db().worker(0)->SampleStoredBatch(
                          query.db.table, HashInt64(sample_seed, 0xdb)));
  HJ_ASSIGN_OR_RETURN(uint64_t db_rows, ctx->db().TableRows(query.db.table));
  double db_sel = 1.0;
  double db_row_bytes = 32.0;
  if (sample.num_rows() > 0) {
    std::vector<uint32_t> sel(sample.num_rows());
    for (uint32_t i = 0; i < sel.size(); ++i) sel[i] = i;
    if (query.db.predicate != nullptr) {
      HJ_RETURN_IF_ERROR(query.db.predicate->Filter(sample, &sel));
    }
    db_sel = static_cast<double>(sel.size()) /
             static_cast<double>(sample.num_rows());
    std::vector<size_t> idx;
    for (const auto& name : query.db.projection) {
      HJ_ASSIGN_OR_RETURN(size_t i, sample.schema()->IndexOf(name));
      idx.push_back(i);
    }
    const RecordBatch projected = sample.Project(idx);
    db_row_bytes = static_cast<double>(projected.ByteSize()) /
                   static_cast<double>(projected.num_rows());
  }
  est.db_filtered_bytes = static_cast<uint64_t>(
      db_sel * static_cast<double>(db_rows) * db_row_bytes);

  // --- HDFS side: decode one seeded-random block. ---
  HJ_ASSIGN_OR_RETURN(std::vector<BlockInfo> blocks,
                      ctx->namenode().GetBlocks(prepared.scan_plan.meta.path));
  HJ_ASSIGN_OR_RETURN(uint64_t file_bytes,
                      ctx->namenode().FileSize(prepared.scan_plan.meta.path));
  est.hdfs_scan_bytes = file_bytes;
  double hdfs_sel = 1.0;
  double hdfs_row_bytes = 32.0;
  uint64_t hdfs_rows = prepared.scan_plan.meta.num_rows;
  if (!blocks.empty()) {
    const BlockInfo& b =
        blocks[HashInt64(sample_seed, 0x4df5) % blocks.size()];
    HJ_ASSIGN_OR_RETURN(
        std::shared_ptr<const StoredBlock> stored,
        ctx->datanode(b.replicas.front().node)->Fetch(b.block_id));
    // Materialize predicate + projection columns.
    std::vector<std::string> needed = query.hdfs.projection;
    if (query.hdfs.predicate != nullptr) {
      query.hdfs.predicate->CollectColumns(&needed);
    }
    std::vector<size_t> materialize;
    for (const auto& name : needed) {
      HJ_ASSIGN_OR_RETURN(size_t i,
                          prepared.scan_plan.meta.schema->IndexOf(name));
      materialize.push_back(i);
    }
    std::sort(materialize.begin(), materialize.end());
    materialize.erase(std::unique(materialize.begin(), materialize.end()),
                      materialize.end());
    Result<RecordBatch> decoded =
        stored->format == HdfsFormat::kText
            ? DecodeText(stored->text->data(), stored->text->size(),
                         prepared.scan_plan.meta.schema, materialize)
            : DecodeColumnarBlock(*stored->columnar,
                                  prepared.scan_plan.meta.schema,
                                  materialize);
    HJ_RETURN_IF_ERROR(decoded.status());
    const RecordBatch& sample = decoded.value();
    std::vector<uint32_t> sel(sample.num_rows());
    for (uint32_t i = 0; i < sel.size(); ++i) sel[i] = i;
    if (query.hdfs.predicate != nullptr) {
      HJ_RETURN_IF_ERROR(query.hdfs.predicate->Filter(sample, &sel));
    }
    hdfs_sel = sample.num_rows() == 0
                   ? 1.0
                   : static_cast<double>(sel.size()) /
                         static_cast<double>(sample.num_rows());
    std::vector<size_t> proj_idx;
    for (const auto& name : query.hdfs.projection) {
      HJ_ASSIGN_OR_RETURN(size_t i, sample.schema()->IndexOf(name));
      proj_idx.push_back(i);
    }
    const RecordBatch projected = sample.Project(proj_idx);
    if (projected.num_rows() > 0) {
      hdfs_row_bytes = static_cast<double>(projected.ByteSize()) /
                       static_cast<double>(projected.num_rows());
    }
    // Columnar scans only read the materialized chunks.
    if (stored->format == HdfsFormat::kColumnar) {
      uint64_t chunk_bytes = 0;
      for (size_t idx : materialize) {
        chunk_bytes += stored->columnar->chunks[idx].ByteSize();
      }
      const double fraction = static_cast<double>(chunk_bytes) /
                              static_cast<double>(stored->ByteSize());
      est.hdfs_scan_bytes =
          static_cast<uint64_t>(fraction * static_cast<double>(file_bytes));
    }
  }
  est.hdfs_filtered_bytes = static_cast<uint64_t>(
      hdfs_sel * static_cast<double>(hdfs_rows) * hdfs_row_bytes);
  return est;
}

}  // namespace hybridjoin
