// Shared plumbing for the join drivers: per-query channel tags, cross-thread
// status collection, the Bloom combine patterns of §3 (local filters OR-ed
// into a global one at a designated node), and the report builder.

#ifndef HYBRIDJOIN_HYBRID_DRIVER_COMMON_H_
#define HYBRIDJOIN_HYBRID_DRIVER_COMMON_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/query_scope.h"
#include "common/stopwatch.h"
#include "exec/aggregator.h"
#include "exec/join_prober.h"
#include "exec/memory_governor.h"
#include "exec/morsel.h"
#include "hybrid/context.h"
#include "hybrid/query.h"
#include "hybrid/report.h"
#include "jen/exchange.h"
#include "obs/metric_scope.h"

namespace hybridjoin {
namespace driver {

class ReportBuilder;

/// Channel tags for one query execution, carved out of the network's tag
/// space so concurrent executions can never collide.
struct Tags {
  uint64_t bloom_local;    ///< DB worker -> DB worker 0 (local BF_DB)
  uint64_t bloom_global;   ///< DB worker 0 -> DB workers (global BF_DB)
  uint64_t bloom_to_jen;   ///< DB worker -> its JEN group (global BF_DB)
  uint64_t shuffle;        ///< JEN <-> JEN (L' repartition)
  uint64_t db_data;        ///< DB -> JEN (T' / T'')
  uint64_t bloom_h_local;  ///< JEN worker -> designated (local BF_H)
  uint64_t bloom_h_global; ///< designated JEN -> DB workers (global BF_H)
  uint64_t agg;            ///< partial aggregates -> designated node
  uint64_t result;         ///< final rows -> DB worker 0
  uint64_t l_data;         ///< JEN -> DB (L'' for the DB-side join)
  uint64_t control;        ///< DB -> JEN scan requests
  uint64_t counts;         ///< DB stats -> DB worker 0 (optimizer input)
  uint64_t strategy;       ///< DB worker 0 -> DB workers (plan decision)
  uint64_t db_shuffle_t;   ///< intra-DB exchange of T'
  uint64_t db_shuffle_l;   ///< intra-DB exchange of L''
  uint64_t profile;        ///< worker metric snapshots -> DB worker 0
  uint64_t sketch_local;   ///< DB worker -> DB worker 0 (heavy-hitter sketch)
  uint64_t hot_global;     ///< DB worker 0 -> DB workers (hot-key set)
  uint64_t hot_to_jen;     ///< DB worker -> its JEN group (hot-key set)
  uint64_t adapt_stats;    ///< all workers -> DB worker 0 (observed stats)
  uint64_t adapt_decision; ///< DB worker 0 -> all (stay-or-pivot decision)

  static Tags Allocate(Network* network);
};

/// Prefix state handed from the adaptive layer (hybrid/adaptive_join.cc) to
/// whichever driver the stay-or-pivot decision selects. When `report` is
/// non-null the driver reuses it instead of opening its own execution (no
/// second query id, no Finish — the adaptive layer finishes), and when
/// `global_bloom` is non-null the DB workers skip the Bloom build/combine
/// and start from the carried global filter (`sketches[i]` likewise replaces
/// DB worker i's piggybacked heavy-hitter sketch). The JEN side of every
/// driver is unchanged: carried state is re-sent on the normal data-plane
/// tags, so the cross-cluster Bloom transfer keeps its network charge.
struct AdaptiveCarry {
  ReportBuilder* report = nullptr;
  const BloomFilter* global_bloom = nullptr;
  const std::vector<HeavyHitterSketch>* sketches = nullptr;  // per DB worker
};

/// First-error-wins status aggregation across worker threads.
class StatusCollector {
 public:
  void Record(const Status& status) {
    if (status.ok()) return;
    std::lock_guard<std::mutex> lock(mu_);
    if (first_.ok()) first_ = status;
  }
  Status First() const {
    std::lock_guard<std::mutex> lock(mu_);
    return first_;
  }

 private:
  mutable std::mutex mu_;
  Status first_;
};

/// RAII: construct right after the worker lambda's trace::ThreadScope; the
/// destructor — the lambda's last action — measures the worker's wall time,
/// snapshots the node's scoped metric slice and SendControl()s it to DB
/// worker 0 on tags.profile, where ReportBuilder::CollectProfiles drains it.
/// JEN workers additionally record metric::kJenWorkerWallUs.
class NodeProfileScope {
 public:
  NodeProfileScope(EngineContext* ctx, NodeId node, const Tags& tags)
      : ctx_(ctx), node_(node), tag_(tags.profile) {}
  ~NodeProfileScope();

  NodeProfileScope(const NodeProfileScope&) = delete;
  NodeProfileScope& operator=(const NodeProfileScope&) = delete;

 private:
  EngineContext* ctx_;
  NodeId node_;
  uint64_t tag_;
  Stopwatch stopwatch_;
};

/// Builds the ExecutionReport: snapshots metrics and per-class network
/// bytes at construction, takes deltas at Finish. Mark() records named
/// timestamps from any thread (first caller wins per name).
///
/// Construction allocates this execution's query id, installs a QueryScope
/// for it on the driver thread (worker threads re-install it from
/// query_id()), and registers the execution with the context. When the
/// query runs *alone* it additionally clears the tracer buffer and stale
/// scoped slices, exactly as the historical single-query path did; under
/// concurrency those whole-context facilities are left to their owners and
/// only this query's scoped slices are used (and dropped again at
/// destruction), so concurrent profiles never cross-contaminate. Global
/// counter / network-byte deltas still aggregate whole-context activity —
/// per-query truth under concurrency lives in ExecutionReport::profile.
class ReportBuilder {
 public:
  /// `memory_budget_bytes` seeds this execution's MemoryGovernor; 0 falls
  /// back to SimulationConfig::query_memory_budget_bytes (and 0 there means
  /// unlimited — the governor still tracks the peak).
  ReportBuilder(EngineContext* ctx, JoinAlgorithm algorithm,
                uint64_t memory_budget_bytes = 0);
  ~ReportBuilder();

  ReportBuilder(const ReportBuilder&) = delete;
  ReportBuilder& operator=(const ReportBuilder&) = delete;

  /// This execution's query id; worker threads install QueryScope(query_id())
  /// so their scoped metric writes land in this query's slices.
  uint64_t query_id() const { return query_id_; }

  /// This execution's memory governor; worker threads install
  /// MemoryGovernor::Scope(report.governor()) right after their QueryScope
  /// so per-thread operator state charges the right query.
  MemoryGovernor* governor() const { return governor_.get(); }

  /// True when this execution had the context to itself at construction.
  bool exclusive() const { return exclusive_; }

  /// Thread-safe named timestamp (seconds since start).
  void Mark(const std::string& name);

  /// Re-labels the execution after a mid-query pivot: Finish() reports the
  /// algorithm that actually ran, not the one construction guessed. Call
  /// from the driver thread before dispatching the chosen driver.
  void SetAlgorithm(JoinAlgorithm algorithm) { algorithm_ = algorithm; }

  /// Drains `expected` NodeProfileScope snapshots from tags.profile on DB
  /// worker 0. Call from the driver thread after joining the worker
  /// threads — every snapshot is already queued then, so this never
  /// blocks. Collection is best-effort: undecodable payloads are skipped.
  void CollectProfiles(const Tags& tags, uint32_t expected);

  ExecutionReport Finish();

 private:
  EngineContext* ctx_;
  JoinAlgorithm algorithm_;
  uint64_t query_id_;
  QueryScope scope_;  ///< driver-thread attribution for query_id_
  std::unique_ptr<MemoryGovernor> governor_;
  MemoryGovernor::Scope governor_scope_;  ///< driver-thread installation
  bool exclusive_;
  Stopwatch stopwatch_;
  std::map<std::string, int64_t> counters_before_;
  int64_t net_before_[4];
  std::vector<obs::NodeProfileSnapshot> node_profiles_;
  std::mutex mu_;
  std::vector<std::pair<std::string, double>> marks_;
};

/// The DB side's get_filter/combine_filter pattern: every DB worker calls
/// this with its local filter; worker 0 receives all of them, ORs them and
/// redistributes the global filter; every caller returns with the global
/// filter. (Paper §3.1 / §4.1.1.)
Result<BloomFilter> CombineBloomAtDbWorker0(EngineContext* ctx,
                                            uint32_t worker,
                                            const BloomFilter& local,
                                            const Tags& tags);

/// The skew-aware shuffle's coordinator step, mirroring the Bloom combine:
/// every DB worker ships its local heavy-hitter sketch to worker 0, which
/// merges them, picks the hot set for an exchange over `route_workers`
/// destinations (PickHotKeys with the SkewConfig knobs, recording the
/// shuffle.hot_keys gauge) and redistributes it; every caller returns with
/// the same global hot set. The single coordinator decision is what makes
/// the hybrid route safe: all senders agree on exactly which keys are hot,
/// so every (build, probe) row pair meets on exactly one worker.
Result<HotKeySet> CombineHotKeysAtDbWorker0(EngineContext* ctx,
                                            uint32_t worker,
                                            const HeavyHitterSketch& local,
                                            uint32_t route_workers,
                                            const Tags& tags);

/// Serializes this worker's partial aggregate to the designated JEN worker;
/// the designated worker merges all partials, sends the final rows to DB
/// worker 0, and every JEN caller returns. (Steps "partial aggregation /
/// final aggregation / send result" of Figures 2-4.)
Status JenAggregateAndReturn(EngineContext* ctx, uint32_t jen_worker,
                             HashAggregator* partial, const Tags& tags);

/// DB worker 0 blocks for the final rows sent by the designated JEN worker.
Result<RecordBatch> DbReceiveResult(EngineContext* ctx, const AggSpec& agg,
                                    const Tags& tags);

/// Owner DB worker of each JEN worker under the coordinator's grouping.
std::vector<uint32_t> OwnerOfJenWorkers(EngineContext* ctx);

/// All JEN node ids.
std::vector<NodeId> AllJenNodes(EngineContext* ctx);
/// All DB node ids.
std::vector<NodeId> AllDbNodes(EngineContext* ctx);

/// The identity selection [0, n).
std::vector<uint32_t> AllRows(size_t n);

/// Filters a materialized batch list by a Bloom filter on `column`,
/// returning the surviving rows (used for T'' = BF_H(T') in the zigzag
/// join).
Result<std::vector<RecordBatch>> FilterBatchesByBloom(
    const std::vector<RecordBatch>& batches, const std::string& column,
    const BloomFilter& bloom);

/// Shard count for a morsel-parallel hash-table build: 1 when the context
/// runs single-threaded (the historical layout), else 2x the exec threads so
/// the shard ParallelFor load-balances around key skew. Probe results are
/// byte-identical for any shard count (see exec/join_hash_table.h).
uint32_t HashTableShards(EngineContext* ctx);

/// Finalizes a join hash table inside a join.ht_finalize span and records
/// its build shape (row count, load factor, max chain length) under the
/// join.ht_* counters, plus per-shard row counts under join.build_shard_rows
/// when the table is sharded. With a pool and a multi-shard table the shards
/// finalize concurrently (ParallelFor; lanes traced "build/<s>" with one
/// join.ht_finalize_shard span each); otherwise serially.
void FinalizeAndRecordHashTable(EngineContext* ctx, NodeId node,
                                JoinHashTable* table,
                                ThreadPool* pool = nullptr);

/// Morsel-parallel probe + partial aggregation. ctx->exec_threads() probe
/// threads (traced "probe/<t>") each own a JoinProber feeding a thread-local
/// HashAggregator; Feed() routes probe batches to them through a bounded
/// queue. Finish() flushes every prober and merges the thread-local partials
/// into the target aggregator — every aggregate op is commutative and
/// partials are sorted by group key, so the result is independent of which
/// thread probed which batch. With exec_threads() == 1 there are no extra
/// threads: Feed() probes inline into the target aggregator, reproducing
/// the historical single-threaded pipeline exactly.
class ParallelProbe {
 public:
  /// Mirrors JoinProber's ctor; `agg` receives the merged partials. When
  /// `probe_span` is non-null every ProbeBatch call is wrapped in a span of
  /// that name (e.g. trace::span::kJenProbe) under the kCatJoin category.
  ParallelProbe(EngineContext* ctx, NodeId node, const JoinHashTable* build,
                SchemaPtr build_schema, std::string build_alias,
                SchemaPtr probe_schema, std::string probe_alias,
                size_t probe_key_column, PredicatePtr post_join_predicate,
                HashAggregator* agg, const char* probe_span = nullptr);

  /// Routes one probe batch to a probe thread (inline when exec_threads==1).
  Status Feed(RecordBatch&& batch) { return pipe_->Feed(std::move(batch)); }

  /// Joins the probe threads, flushes every prober, merges thread-local
  /// partials into the target aggregator. Call exactly once.
  Status Finish();

 private:
  EngineContext* ctx_;
  HashAggregator* agg_;
  std::vector<std::unique_ptr<HashAggregator>> partials_;
  std::vector<std::unique_ptr<JoinProber>> probers_;
  std::unique_ptr<BatchMorselPipe> pipe_;
};

/// Records a combined/global Bloom filter's fill fraction and realized-FPR
/// estimate under the bloom.* gauge counters.
void RecordBloomStats(EngineContext* ctx, const BloomFilter& bloom);

}  // namespace driver
}  // namespace hybridjoin

#endif  // HYBRIDJOIN_HYBRID_DRIVER_COMMON_H_
