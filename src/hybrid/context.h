// EngineContext: the assembled hybrid warehouse — both clusters, the
// interconnect, metadata services and metrics. Join drivers operate on a
// context; HybridWarehouse (the public facade) owns one.

#ifndef HYBRIDJOIN_HYBRID_CONTEXT_H_
#define HYBRIDJOIN_HYBRID_CONTEXT_H_

#include <atomic>
#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "edw/db_cluster.h"
#include "hdfs/hcatalog.h"
#include "hdfs/namenode.h"
#include "hybrid/config.h"
#include "jen/coordinator.h"
#include "jen/worker.h"
#include "net/network.h"
#include "trace/tracer.h"

namespace hybridjoin {

/// Owns every component. N queries may run concurrently over one context
/// (src/server/ pushes them through admission control): scoped metric
/// slices are isolated per query id, catalogs take reader-writer locks, and
/// the exec pool fair-shares across query lanes. Whole-context facilities
/// that cannot be attributed per query (global counter deltas, the tracer
/// buffer, per-flow-class network byte counters) are only meaningful when a
/// query runs alone — ReportBuilder detects that via Begin/EndExecution.
class EngineContext {
 public:
  explicit EngineContext(const SimulationConfig& config);

  EngineContext(const EngineContext&) = delete;
  EngineContext& operator=(const EngineContext&) = delete;

  const SimulationConfig& config() const { return config_; }
  Metrics& metrics() { return metrics_; }
  trace::Tracer& tracer() { return tracer_; }
  Network& network() { return network_; }
  NameNode& namenode() { return namenode_; }
  HCatalog& hcatalog() { return hcatalog_; }
  DbCluster& db() { return db_; }
  JenCoordinator& coordinator() { return coordinator_; }
  JenWorker* jen_worker(uint32_t i) { return jen_workers_[i].get(); }
  DataNode* datanode(uint32_t i) { return datanodes_[i].get(); }

  uint32_t num_db_workers() const { return config_.db.num_workers; }
  uint32_t num_jen_workers() const { return config_.jen_workers; }

  /// Resolved intra-node morsel parallelism (>= 1; see
  /// SimulationConfig::exec_threads). config().jen.process_threads is
  /// resolved against this before workers are constructed.
  uint32_t exec_threads() const { return exec_threads_; }

  /// Shared pool for CPU-only morsel work (partitioned hash-table build,
  /// parallel finalize). nullptr when exec_threads() == 1 — callers fall
  /// back to their serial paths. Tasks must never block on queues or the
  /// network; several driver threads ParallelFor on it concurrently.
  ThreadPool* exec_pool() { return exec_pool_.get(); }

  /// Bloom parameters per the configured sizing policy.
  BloomParams bloom_params() const {
    return BloomParams::ForKeys(config_.bloom.expected_keys,
                                config_.bloom.bits_per_key,
                                config_.bloom.num_hashes,
                                config_.bloom.layout);
  }

  /// Drops every DataNode's page cache (for cold-run benchmarking).
  void DropHdfsCaches();

  /// The fault injector installed from config().fault, or nullptr when the
  /// profile is disabled.
  FaultInjector* fault_injector() { return fault_injector_.get(); }

  /// Monotonic *process-global* query id, stamped into each QueryProfile
  /// and used as the key of the live-query registry (obs/query_registry.h).
  /// Process-global rather than per-context so ids never collide across
  /// warehouses in one process — the registry and the per-thread
  /// cancellation caches depend on ids being unique for the process
  /// lifetime.
  uint64_t NextQueryId() { return g_query_seq_.fetch_add(1) + 1; }

  /// In-flight execution accounting (ReportBuilder brackets every driver
  /// run with these). BeginExecution returns the in-flight count *after*
  /// entering — 1 means this query runs alone and may use the
  /// whole-context facilities (tracer clear, global counter deltas).
  uint32_t BeginExecution() { return in_flight_.fetch_add(1) + 1; }
  void EndExecution() { in_flight_.fetch_sub(1); }
  uint32_t InFlightExecutions() const { return in_flight_.load(); }

 private:
  SimulationConfig config_;
  Metrics metrics_;
  trace::Tracer tracer_;
  std::unique_ptr<FaultInjector> fault_injector_;
  Network network_;
  std::vector<std::unique_ptr<DataNode>> datanodes_;
  std::vector<DataNode*> datanode_ptrs_;
  NameNode namenode_;
  HCatalog hcatalog_;
  DbCluster db_;
  JenCoordinator coordinator_;
  std::vector<std::unique_ptr<JenWorker>> jen_workers_;
  uint32_t exec_threads_ = 1;
  std::unique_ptr<ThreadPool> exec_pool_;
  static inline std::atomic<uint64_t> g_query_seq_{0};
  std::atomic<uint32_t> in_flight_{0};
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_HYBRID_CONTEXT_H_
