// JoinAlgorithm / ExecutionReport / QueryResult: what a join run returns —
// the aggregated rows plus everything the paper's evaluation section
// measures (wall time, tuples shuffled and sent, bytes per network class,
// per-phase timings).

#ifndef HYBRIDJOIN_HYBRID_REPORT_H_
#define HYBRIDJOIN_HYBRID_REPORT_H_

#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "obs/profile.h"
#include "types/record_batch.h"

namespace hybridjoin {

/// The five algorithms of §3 (Bloom variants split out, as in the figures).
enum class JoinAlgorithm {
  kDbSide = 0,           ///< §3.1 without Bloom filter ("db")
  kDbSideBloom = 1,      ///< §3.1 with Bloom filter   ("db(BF)")
  kBroadcast = 2,        ///< §3.2                      ("broadcast")
  kRepartition = 3,      ///< §3.3 without Bloom filter ("repartition")
  kRepartitionBloom = 4, ///< §3.3 with Bloom filter    ("repartition(BF)")
  kZigzag = 5,           ///< §3.4                      ("zigzag")
};

const char* JoinAlgorithmName(JoinAlgorithm algorithm);

/// True for the algorithms whose final join runs on the HDFS side.
bool IsHdfsSide(JoinAlgorithm algorithm);

/// Everything measured during one execution.
struct ExecutionReport {
  JoinAlgorithm algorithm = JoinAlgorithm::kDbSide;
  double wall_seconds = 0.0;
  /// Ordered coarse phases with durations (driver-level).
  std::vector<std::pair<std::string, double>> phases;
  /// Engine counters (metric::k* names), as deltas over this execution.
  std::map<std::string, int64_t> counters;
  /// Bytes moved per network flow class, as deltas over this execution.
  std::map<std::string, int64_t> network_bytes;
  /// Latency percentiles per span name (trace::span::k*), built from the
  /// spans recorded during this execution. Empty when tracing is disabled.
  std::map<std::string, HistogramSummary> histograms;
  /// Chrome trace JSON written for this execution ("" when not requested).
  std::string trace_file;
  /// The distributed per-node profile tree assembled from the workers'
  /// end-of-query metric snapshots (obs/profile.h). profile.ToText() is the
  /// EXPLAIN-ANALYZE rendering; profile.WriteJson() the stable export.
  obs::QueryProfile profile;

  int64_t Counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }

  const HistogramSummary* Histogram(const std::string& name) const {
    auto it = histograms.find(name);
    return it == histograms.end() ? nullptr : &it->second;
  }

  std::string ToString() const;
};

/// Final rows ([group, aggregates...], sorted by group) plus the report.
struct QueryResult {
  RecordBatch rows;
  ExecutionReport report;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_HYBRID_REPORT_H_
