// Adaptive join location (ROADMAP item 3; cf. "Runtime Optimization of
// Join Location in Parallel Data Management Systems", PAPERS.md): every
// strategy of §3 starts with the same cheap prefix — the DB predicate scan
// that builds and combines BF_DB — so the commitment to a join location can
// be deferred until after it. This driver runs that prefix once, has every
// worker ship its *observed* statistics (exact qualifying-row counts from
// the Bloom-build scan, fresh seeded block samples from the JEN side) to DB
// worker 0 on a fault-exempt control tag, re-runs the §5.5 cost model there
// with the observed values, and broadcasts a stay-or-pivot decision to all
// nodes. The chosen driver then resumes from the carried prefix state
// (driver::AdaptiveCarry) instead of re-reading it.
//
// Placement of the decision point: after the Bloom combine but before any
// side materializes or moves data. Staying on the initial pick therefore
// costs only the control-plane round trip (a few hundred bytes per node)
// plus the tiny block samples, and a pivot wastes no data-plane work — the
// filter the prefix built is exactly what every candidate driver would have
// built first.

#include <algorithm>
#include <thread>
#include <vector>

#include "common/binary_io.h"
#include "common/hash.h"
#include "hdfs/format.h"
#include "hybrid/algorithms.h"
#include "hybrid/driver_common.h"
#include "jen/exchange.h"
#include "obs/event_log.h"
#include "trace/tracer.h"

namespace hybridjoin {

using driver::ReportBuilder;
using driver::StatusCollector;
using driver::Tags;

namespace {

/// Stats-message kinds on tags.adapt_stats.
constexpr uint8_t kDbStats = 0;
constexpr uint8_t kJenStats = 1;

/// One JEN worker's decision-point sample: `hdfs_sample_blocks` seeded
/// random picks from its own block assignment, decoded and filtered the
/// same way EstimateQuery samples (reads are charged at the datanode, not
/// the interconnect). Collects up to `max_keys` post-predicate join-key
/// values for the coordinator's observed Bloom pass rate.
struct JenSample {
  uint64_t rows_sampled = 0;   ///< decoded rows across the picked blocks
  uint64_t rows_after_pred = 0;
  uint64_t projected_bytes = 0;  ///< ByteSize of post-predicate projection
  std::vector<int64_t> keys;
};

Status SampleWorkerBlocks(EngineContext* ctx, const PreparedQuery& prepared,
                          uint32_t worker, const AdaptiveConfig& acfg,
                          uint32_t max_keys, uint64_t seed, JenSample* out) {
  const HybridQuery& query = prepared.query;
  const auto& assigned = prepared.scan_plan.per_worker[worker];
  // The fraction cap bounds the sampler's decode work relative to the scan
  // it precedes (see AdaptiveConfig::hdfs_sample_max_fraction); a worker
  // capped to zero contributes no sample.
  const uint32_t fraction_cap = static_cast<uint32_t>(
      static_cast<double>(assigned.size()) * acfg.hdfs_sample_max_fraction);
  const uint32_t sample_blocks =
      std::min(acfg.hdfs_sample_blocks, fraction_cap);
  if (assigned.empty() || sample_blocks == 0) return Status::OK();

  // Materialize predicate + projection columns (the estimator's idiom).
  std::vector<std::string> needed = query.hdfs.projection;
  if (query.hdfs.predicate != nullptr) {
    query.hdfs.predicate->CollectColumns(&needed);
  }
  std::vector<size_t> materialize;
  for (const auto& name : needed) {
    HJ_ASSIGN_OR_RETURN(size_t i,
                        prepared.scan_plan.meta.schema->IndexOf(name));
    materialize.push_back(i);
  }
  std::sort(materialize.begin(), materialize.end());
  materialize.erase(std::unique(materialize.begin(), materialize.end()),
                    materialize.end());

  const uint32_t picks =
      std::min<uint32_t>(sample_blocks, static_cast<uint32_t>(assigned.size()));
  uint64_t rng = HashInt64(seed, worker + 1);
  for (uint32_t s = 0; s < picks; ++s) {
    rng = HashInt64(rng, s + 1);
    const auto& assignment = assigned[rng % assigned.size()];
    HJ_ASSIGN_OR_RETURN(std::shared_ptr<const StoredBlock> stored,
                        ctx->datanode(assignment.replica.node)
                            ->Fetch(assignment.info.block_id));
    Result<RecordBatch> decoded =
        stored->format == HdfsFormat::kText
            ? DecodeText(stored->text->data(), stored->text->size(),
                         prepared.scan_plan.meta.schema, materialize)
            : DecodeColumnarBlock(*stored->columnar,
                                  prepared.scan_plan.meta.schema,
                                  materialize);
    HJ_RETURN_IF_ERROR(decoded.status());
    const RecordBatch& sample = decoded.value();
    std::vector<uint32_t> sel(sample.num_rows());
    for (uint32_t i = 0; i < sel.size(); ++i) sel[i] = i;
    if (query.hdfs.predicate != nullptr) {
      HJ_RETURN_IF_ERROR(query.hdfs.predicate->Filter(sample, &sel));
    }
    out->rows_sampled += sample.num_rows();
    out->rows_after_pred += sel.size();
    if (sel.empty()) continue;
    std::vector<size_t> proj_idx;
    for (const auto& name : query.hdfs.projection) {
      HJ_ASSIGN_OR_RETURN(size_t i, sample.schema()->IndexOf(name));
      proj_idx.push_back(i);
    }
    const RecordBatch projected = sample.Project(proj_idx).Gather(sel);
    out->projected_bytes += projected.ByteSize();
    const ColumnVector& key = projected.column(prepared.hdfs_key_idx);
    for (uint32_t r = 0; r < projected.num_rows(); ++r) {
      if (out->keys.size() >= max_keys) break;
      out->keys.push_back(key.physical_type() == PhysicalType::kInt32
                              ? static_cast<int64_t>(key.i32()[r])
                              : key.i64()[r]);
    }
  }
  return Status::OK();
}

}  // namespace

Result<QueryResult> RunAdaptiveJoin(EngineContext* ctx,
                                    const HybridQuery& query,
                                    const QueryEstimates& est, Advice* advice,
                                    uint64_t memory_budget_bytes) {
  HJ_ASSIGN_OR_RETURN(PreparedQuery prepared, PrepareQuery(ctx, query));
  const uint32_t m = ctx->num_db_workers();
  const uint32_t n = ctx->num_jen_workers();
  Network& net = ctx->network();
  const Tags tags = Tags::Allocate(&net);
  const AdaptiveConfig& acfg = ctx->config().adaptive;
  const uint64_t hdfs_total_rows = prepared.scan_plan.meta.num_rows;

  ReportBuilder report(ctx, advice->algorithm, memory_budget_bytes);
  StatusCollector errors;

  // Carried prefix state: written by the prefix threads, handed to the
  // chosen driver. `sketches` is fed whenever the skew shuffle *could*
  // engage in any candidate driver (their own gates decide whether the hot
  // set is actually used — an unused sketch costs one Add per row).
  BloomFilter global_bloom(prepared.bloom_params);
  const bool feed_sketch = ctx->config().skew.enabled && (m > 1 || n > 1);
  std::vector<HeavyHitterSketch> sketches(
      m, HeavyHitterSketch(ctx->config().skew.sketch_capacity));

  // Worker 0's coordinator block fills this in; the join() below publishes
  // it to the driver thread.
  Advice decided = *advice;

  std::vector<std::thread> threads;
  threads.reserve(m + n);

  // --- DB workers: the shared prefix (steps 1-2 of every figure). ---
  for (uint32_t i = 0; i < m; ++i) {
    threads.emplace_back([&, i] {
      QueryScope query_scope(report.query_id());
      MemoryGovernor::Scope governor_scope(report.governor());
      const NodeId self = NodeId::Db(i);
      trace::ThreadScope thread_scope(self, "db_worker");
      driver::NodeProfileScope profile_scope(ctx, self, tags);
      trace::Span driver_span(&ctx->tracer(), trace::span::kDriverDbWorker,
                              trace::span::kCatDriver);
      Status st;

      // Build + combine BF_DB. The build scan visits every qualifying row,
      // so the count below is the *exact* observed build-side cardinality —
      // strictly better input than the estimator's one-batch sample.
      bool used_index = false;
      uint64_t qualifying_rows = 0;
      auto local = ctx->db().worker(i)->BuildLocalBloom(
          query.db.table, query.db.predicate, query.db.join_key,
          prepared.bloom_params, &used_index,
          feed_sketch ? &sketches[i] : nullptr, &qualifying_rows);
      BloomFilter local_bf = local.ok() ? std::move(local).value()
                                        : BloomFilter(prepared.bloom_params);
      if (!local.ok()) st = local.status();
      auto global = driver::CombineBloomAtDbWorker0(ctx, i, local_bf, tags);
      if (global.ok()) {
        if (i == 0) {
          driver::RecordBloomStats(ctx, global.value());
          global_bloom = std::move(global).value();
          report.Mark("bf_db_built");
        }
      } else if (st.ok()) {
        st = global.status();
      }

      // Projected-row-width sample: one seeded random stored batch, for
      // converting the exact row count into bytes.
      uint64_t sample_bytes = 0;
      uint64_t sample_rows = 0;
      {
        auto sampled = ctx->db().worker(i)->SampleStoredBatch(
            query.db.table, HashInt64(acfg.sample_seed, i + 0xdb));
        if (sampled.ok() && sampled->num_rows() > 0) {
          std::vector<size_t> idx;
          bool resolved = true;
          for (const auto& name : query.db.projection) {
            auto col = sampled->schema()->IndexOf(name);
            if (!col.ok()) {
              resolved = false;
              break;
            }
            idx.push_back(col.value());
          }
          if (resolved) {
            const RecordBatch projected = sampled->Project(idx);
            sample_bytes = projected.ByteSize();
            sample_rows = projected.num_rows();
          }
        }
      }

      // Ship the observed stats — unconditionally, zeros included, so the
      // coordinator's m+n receives always complete even after an error.
      {
        BinaryWriter w;
        w.PutU8(kDbStats);
        w.PutU64(qualifying_rows);
        w.PutU64(sample_bytes);
        w.PutU64(sample_rows);
        net.SendControl(self, NodeId::Db(0), tags.adapt_stats, w.Release());
      }

      // --- Coordinator (worker 0): collect, re-optimize, broadcast. ---
      if (i == 0) {
        QueryEstimates observed = est;
        uint64_t db_rows_total = 0;
        double db_sample_bytes = 0;
        double db_sample_rows = 0;
        uint64_t l_sampled = 0;
        uint64_t l_pass = 0;
        uint64_t l_bytes = 0;
        uint64_t keys_total = 0;
        uint64_t keys_pass = 0;
        for (uint32_t j = 0; j < m + n; ++j) {
          auto msg = net.Recv(self, tags.adapt_stats);
          if (!msg.ok()) {
            // Fall through to the broadcast below with whatever arrived —
            // a missing stats message must never deadlock the query.
            if (st.ok()) st = msg.status();
            break;
          }
          if (msg->eos || msg->payload == nullptr) continue;
          BinaryReader r(*msg->payload);
          auto kind = r.GetU8();
          if (!kind.ok()) continue;
          if (kind.value() == kDbStats) {
            auto rows = r.GetU64();
            auto bytes = r.GetU64();
            auto sampled = r.GetU64();
            if (rows.ok() && bytes.ok() && sampled.ok()) {
              db_rows_total += rows.value();
              db_sample_bytes += static_cast<double>(bytes.value());
              db_sample_rows += static_cast<double>(sampled.value());
            }
          } else if (kind.value() == kJenStats) {
            auto rows = r.GetU64();
            auto pass = r.GetU64();
            auto bytes = r.GetU64();
            auto num_keys = r.GetU32();
            if (rows.ok() && pass.ok() && bytes.ok() && num_keys.ok()) {
              l_sampled += rows.value();
              l_pass += pass.value();
              l_bytes += bytes.value();
              for (uint32_t k = 0; k < num_keys.value(); ++k) {
                auto key = r.GetI64();
                if (!key.ok()) break;
                ++keys_total;
                if (global_bloom.MayContain(key.value())) ++keys_pass;
              }
            }
          }
        }

        // Observed T': exact row count x sampled projected row width.
        if (db_sample_rows > 0) {
          observed.db_filtered_bytes = static_cast<uint64_t>(
              static_cast<double>(db_rows_total) *
              (db_sample_bytes / db_sample_rows));
        }
        // Observed L': fresh multi-block selectivity x catalog row count x
        // observed projected row width.
        if (l_sampled > 0) {
          const double sel = static_cast<double>(l_pass) /
                             static_cast<double>(l_sampled);
          const double row_bytes =
              l_pass > 0 ? static_cast<double>(l_bytes) /
                               static_cast<double>(l_pass)
                         : 0.0;
          observed.hdfs_filtered_bytes = static_cast<uint64_t>(
              sel * static_cast<double>(hdfs_total_rows) * row_bytes);
        }
        // Observed join-key pruning: the sampled keys against the filter
        // that will actually do the pruning.
        if (keys_total > 0) {
          observed.hdfs_joinkey_selectivity =
              static_cast<double>(keys_pass) /
              static_cast<double>(keys_total);
        }

        const Advice verdict =
            DecidePivot(*ctx, *advice, observed, acfg.pivot_threshold);
        Metrics& metrics = ctx->metrics();
        metrics.Max(metric::kAdvisorEstimatedDbBytes,
                    static_cast<int64_t>(est.db_filtered_bytes));
        metrics.Max(metric::kAdvisorObservedDbBytes,
                    static_cast<int64_t>(observed.db_filtered_bytes));
        metrics.Max(metric::kAdvisorEstimatedHdfsBytes,
                    static_cast<int64_t>(est.hdfs_filtered_bytes));
        metrics.Max(metric::kAdvisorObservedHdfsBytes,
                    static_cast<int64_t>(observed.hdfs_filtered_bytes));
        report.Mark("adapt_decision");
        if (verdict.pivoted) {
          metrics.Max(metric::kAdvisorPivoted, 1);
          report.Mark(std::string("pivot_to_") +
                      JoinAlgorithmName(verdict.final_algorithm));
        }
        if (obs::EventLog::Global().enabled()) {
          auto fields = obs::JsonValue::Object();
          fields.Set("pivoted", obs::JsonValue::Bool(verdict.pivoted));
          fields.Set("final_algorithm",
                     obs::JsonValue::Str(
                         JoinAlgorithmName(verdict.final_algorithm)));
          fields.Set("estimated_db_bytes",
                     obs::JsonValue::Int(
                         static_cast<int64_t>(est.db_filtered_bytes)));
          fields.Set("observed_db_bytes",
                     obs::JsonValue::Int(static_cast<int64_t>(
                         observed.db_filtered_bytes)));
          fields.Set("estimated_hdfs_bytes",
                     obs::JsonValue::Int(
                         static_cast<int64_t>(est.hdfs_filtered_bytes)));
          fields.Set("observed_hdfs_bytes",
                     obs::JsonValue::Int(static_cast<int64_t>(
                         observed.hdfs_filtered_bytes)));
          obs::EventLog::Global().Emit("pivot_decision", report.query_id(),
                                       std::move(fields));
        }
        decided = verdict;

        BinaryWriter w;
        w.PutU8(static_cast<uint8_t>(verdict.final_algorithm));
        w.PutU8(verdict.pivoted ? 1 : 0);
        auto payload =
            std::make_shared<const std::vector<uint8_t>>(w.Release());
        for (uint32_t j = 0; j < m; ++j) {
          net.SendControl(self, NodeId::Db(j), tags.adapt_decision, payload);
        }
        for (uint32_t w2 = 0; w2 < n; ++w2) {
          net.SendControl(self, NodeId::Hdfs(w2), tags.adapt_decision,
                          payload);
        }
      }

      // Every node blocks for the decision: nobody races ahead of the plan.
      auto decision = net.Recv(self, tags.adapt_decision);
      if (!decision.ok() && st.ok()) st = decision.status();
      errors.Record(st);
    });
  }

  // --- JEN workers: seeded block re-sample, then wait for the verdict. ---
  for (uint32_t w = 0; w < n; ++w) {
    threads.emplace_back([&, w] {
      QueryScope query_scope(report.query_id());
      MemoryGovernor::Scope governor_scope(report.governor());
      const NodeId self = NodeId::Hdfs(w);
      trace::ThreadScope thread_scope(self, "jen_worker");
      driver::NodeProfileScope profile_scope(ctx, self, tags);
      trace::Span driver_span(&ctx->tracer(), trace::span::kDriverJenWorker,
                              trace::span::kCatDriver);
      JenSample sample;
      Status st = SampleWorkerBlocks(ctx, prepared, w, acfg,
                                     acfg.sample_keys, acfg.sample_seed,
                                     &sample);
      BinaryWriter writer;
      writer.PutU8(kJenStats);
      writer.PutU64(sample.rows_sampled);
      writer.PutU64(sample.rows_after_pred);
      writer.PutU64(sample.projected_bytes);
      writer.PutU32(static_cast<uint32_t>(sample.keys.size()));
      for (int64_t key : sample.keys) writer.PutI64(key);
      net.SendControl(self, NodeId::Db(0), tags.adapt_stats,
                      writer.Release());

      auto decision = net.Recv(self, tags.adapt_decision);
      if (!decision.ok() && st.ok()) st = decision.status();
      errors.Record(st);
    });
  }

  for (auto& t : threads) t.join();
  report.CollectProfiles(tags, m + n);
  // The prefix snapshots above captured this query's scoped slices
  // cumulatively; drop them so the chosen driver's end-of-query snapshots
  // are pure deltas and AssembleProfile's per-node sums stay exact (no
  // worker thread is live at this barrier, so the clear races with nobody).
  ctx->metrics().ClearScoped(report.query_id());
  HJ_RETURN_IF_ERROR(errors.First());

  *advice = decided;
  report.SetAlgorithm(decided.final_algorithm);

  driver::AdaptiveCarry carry;
  carry.report = &report;
  carry.global_bloom = &global_bloom;
  carry.sketches = &sketches;

  // The carried state is buffered across the handoff on the query's
  // governor (the Bloom filter dominates; the sketches are a few KiB).
  const uint64_t carried_bytes = global_bloom.ByteSize();
  report.governor()->Reserve(carried_bytes);
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    switch (decided.final_algorithm) {
      case JoinAlgorithm::kBroadcast:
        return RunBroadcastJoin(ctx, prepared, memory_budget_bytes, &carry);
      case JoinAlgorithm::kDbSide:
      case JoinAlgorithm::kDbSideBloom:
        return RunDbSideJoin(ctx, prepared, /*use_bloom=*/true,
                             memory_budget_bytes, &carry);
      default:
        return RunRepartitionFamilyJoin(ctx, prepared, /*use_db_bloom=*/true,
                                        /*zigzag=*/true, JoinDriverOptions{},
                                        memory_budget_bytes, &carry);
    }
  }();
  report.governor()->Release(carried_bytes);
  HJ_RETURN_IF_ERROR(result.status());
  result->report = report.Finish();
  return result;
}

}  // namespace hybridjoin
