// SimulationConfig: every knob of the two-cluster substrate in one options
// struct. The defaults disable all throttling (unit tests run at memory
// speed); benches install bandwidths scaled from the paper's testbed
// (§5: 30 HDFS DataNodes with 4 data disks and 1 GbE each, 30 DB2 workers
// on faster 10 GbE servers, a 20 Gbit inter-cluster switch).

#ifndef HYBRIDJOIN_HYBRID_CONFIG_H_
#define HYBRIDJOIN_HYBRID_CONFIG_H_

#include <string>

#include "bloom/bloom_filter.h"
#include "edw/db_cluster.h"
#include "hdfs/datanode.h"
#include "jen/coordinator.h"
#include "net/fault_injector.h"
#include "net/network.h"

namespace hybridjoin {

struct TraceConfig {
  /// Master switch for span recording (see src/trace/). Off by default:
  /// a disabled tracer costs one branch per span site.
  bool enabled = false;
  /// If non-empty, every Execute() writes a Chrome trace-event JSON here
  /// (chrome://tracing / Perfetto-loadable); the path lands in
  /// ExecutionReport::trace_file. Overwritten per execution.
  std::string chrome_out;
};

struct BloomConfig {
  /// Paper uses 8 bits per distinct key and 2 hash functions (~5% FPR).
  double bits_per_key = 8.0;
  uint32_t num_hashes = 2;
  /// Expected distinct join keys (paper: 16M). Workload loaders overwrite
  /// this with the generated key-domain size.
  uint64_t expected_keys = 1 << 16;
  /// Bit placement (bloom/bloom_filter.h). The engine defaults to the
  /// cache-line-blocked layout: one memory access per key at a slightly
  /// higher FPR than kClassic for the same size.
  BloomLayout layout = BloomLayout::kBlocked;
};

/// Knobs of the skew-aware shuffle (src/exec/heavy_hitters.h,
/// docs/architecture.md "Skew-aware shuffle"). A space-saving sketch rides
/// the DB-side Bloom-build scan; the coordinator merges the per-worker
/// sketches and broadcasts the rows of keys whose estimated per-worker
/// load exceeds `hot_multiplier` x the fair share, while the matching
/// probe-side rows stay on the worker that scanned them. Cold keys keep
/// the agreed-hash route. Only Bloom-assisted repartition joins have the
/// piggyback scan, so only they are affected; the zigzag exact-semijoin
/// variant keeps its membership-bitmap protocol and opts out.
struct SkewConfig {
  /// Master switch. On by default: with no heavy hitters the hot set is
  /// empty and the shuffle is byte-identical to the pure agreed-hash path.
  bool enabled = true;
  /// Entries per space-saving sketch (per DB worker). Error is bounded by
  /// scanned_rows / capacity, so 256 resolves any key above ~0.4% of the
  /// build side — far below every interesting hot threshold.
  uint32_t sketch_capacity = 256;
  /// A key is hot when its estimated rows-per-worker under agreed-hash
  /// routing exceeds this multiple of the fair per-worker share.
  double hot_multiplier = 1.5;
  /// Upper bound on the hot-set size (bounds both the broadcast fan-out
  /// and the per-row membership test on the shuffle hot path).
  uint32_t max_hot_keys = 64;
};

/// Knobs of the adaptive join-location layer (src/hybrid/adaptive_join.cc,
/// docs/architecture.md "Adaptive join location"). ExecuteAuto's initial
/// pick comes from sampled estimates; with adaptivity on, every strategy's
/// shared prefix (DB predicate scan + Bloom build) additionally ships
/// *observed* cardinalities and selectivities to DB worker 0, which re-runs
/// the §5.5 cost model and broadcasts a stay-or-pivot decision before any
/// side commits to moving data. The built Bloom filter (and the heavy-hitter
/// sketches when the skew shuffle is on) carries over into whichever driver
/// wins, so a pivot never re-reads prefix work.
struct AdaptiveConfig {
  /// Master switch. On by default: when the observed costs confirm the
  /// initial pick the only overhead is the prefix's control-plane traffic
  /// (a few hundred bytes, fault-exempt) plus the tiny HDFS block samples.
  bool enabled = true;
  /// Hysteresis: pivot only when the observed cost of staying exceeds the
  /// observed best by this fraction. Near-ties stay put — the estimate was
  /// good enough, and a pivot's carried state is never free.
  double pivot_threshold = 0.2;
  /// HDFS blocks sampled per JEN worker at the decision point (seeded
  /// random picks from the worker's own assignment). 0 disables the HDFS
  /// re-sample and keeps the estimator's numbers for that side.
  uint32_t hdfs_sample_blocks = 2;
  /// Upper bound on the re-sample as a fraction of the worker's assigned
  /// blocks: a worker samples min(hdfs_sample_blocks, floor(assigned *
  /// fraction)) blocks. Block decode costs the same whether the scan or the
  /// sampler does it, so without this cap a worker owning few blocks would
  /// re-decode most of its assignment just to decide where to join — the
  /// cap keeps the decision point's cost a bounded share of the scan (at
  /// realistic block counts the hdfs_sample_blocks count binds first and
  /// the overhead is a few percent). Workers capped to zero ship no sample
  /// and the estimator's HDFS numbers stand. The differential fuzzer's
  /// --adaptive sweep forces 1.0 to keep the observed-stats paths exercised
  /// on its deliberately tiny cases.
  double hdfs_sample_max_fraction = 0.25;
  /// Join-key values (post-predicate) each JEN worker ships with its
  /// sample; DB worker 0 probes them against the just-built global Bloom
  /// filter for an observed join-key selectivity.
  uint32_t sample_keys = 2048;
  /// Seed for the estimator's and the decision point's random sampling
  /// (EstimateQuery batch/block picks are derived from it too, so runs
  /// stay reproducible).
  uint64_t sample_seed = 0x51edd1ceULL;
};

struct SimulationConfig {
  DbConfig db;
  uint32_t jen_workers = 4;  ///< == number of HDFS DataNodes
  DataNodeConfig datanode;
  uint32_t hdfs_replication = 2;
  NetworkConfig net;
  JenConfig jen;
  BloomConfig bloom;
  SkewConfig skew;
  AdaptiveConfig adaptive;
  TraceConfig trace;
  /// Fault injection for the interconnect (see net/fault_injector.h).
  /// Disabled by default; the differential harness installs named profiles.
  FaultProfile fault;
  /// Intra-node execution threads per simulated worker: the morsel
  /// parallelism of every per-node phase (scan process threads, partitioned
  /// hash-table build, probe + partial aggregation). 0 derives a default
  /// from std::thread::hardware_concurrency() (see ResolveExecThreads); 1
  /// reproduces the historical single-threaded per-worker execution
  /// byte-for-byte. JenConfig::process_threads, when 0, inherits the
  /// resolved value.
  uint32_t exec_threads = 0;
  /// Per-query memory budget seeding the execution's MemoryGovernor
  /// (src/exec/memory_governor.h): hash-table builds, aggregation state,
  /// in-flight exchange/morsel batches all charge against it, and the grace
  /// join spills partitions to stay inside it. 0 = unlimited (peak is still
  /// tracked and reported as join.mem_peak_bytes). A per-execution budget —
  /// e.g. a server session's QueryQuotas::memory_bytes — overrides this.
  uint64_t query_memory_budget_bytes = 0;

  /// A scaled-down version of the paper's testbed with real throttling,
  /// used by the benches. `scale` multiplies every bandwidth (1.0 keeps the
  /// defaults below).
  static SimulationConfig PaperTestbed(uint32_t db_workers,
                                       uint32_t jen_workers,
                                       double scale = 1.0);
};

/// Resolves the exec_threads knob: a non-zero value passes through; 0 maps
/// to half the hardware concurrency clamped to [1, 8] (the simulation
/// already runs one driver thread per simulated worker, so per-worker
/// morsel threads multiply — half keeps the thread count near the core
/// count on typical hosts).
uint32_t ResolveExecThreads(uint32_t configured);

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_HYBRID_CONFIG_H_
