#include "hybrid/query.h"

#include <algorithm>

namespace hybridjoin {

namespace {

bool Contains(const std::vector<std::string>& v, const std::string& s) {
  return std::find(v.begin(), v.end(), s) != v.end();
}

}  // namespace

Status HybridQuery::Validate() const {
  if (db.table.empty() || hdfs.table.empty()) {
    return Status::InvalidArgument("both table names must be set");
  }
  if (db.alias.empty() || hdfs.alias.empty() || db.alias == hdfs.alias) {
    return Status::InvalidArgument("aliases must be non-empty and distinct");
  }
  if (db.join_key.empty() || hdfs.join_key.empty()) {
    return Status::InvalidArgument("join keys must be set on both sides");
  }
  if (!Contains(db.projection, db.join_key)) {
    return Status::InvalidArgument(
        "db projection must include the join key '" + db.join_key + "'");
  }
  if (!Contains(hdfs.projection, hdfs.join_key)) {
    return Status::InvalidArgument(
        "hdfs projection must include the join key '" + hdfs.join_key + "'");
  }
  if (agg.items.empty()) {
    return Status::InvalidArgument("query must aggregate (paper workload)");
  }
  // Every aliased column referenced after the join must come from a
  // projected column of the right side.
  std::vector<std::string> joined;
  for (const auto& c : hdfs.projection) joined.push_back(hdfs.alias + "." + c);
  for (const auto& c : db.projection) joined.push_back(db.alias + "." + c);
  std::vector<std::string> referenced;
  if (post_join_predicate != nullptr) {
    post_join_predicate->CollectColumns(&referenced);
  }
  referenced.push_back(agg.group_column);
  for (const auto& item : agg.items) {
    if (item.op != AggOp::kCountStar) referenced.push_back(item.column);
  }
  for (const auto& name : referenced) {
    if (!Contains(joined, name)) {
      return Status::InvalidArgument(
          "post-join reference '" + name +
          "' is not a projected column of either side");
    }
  }
  return Status::OK();
}

}  // namespace hybridjoin
