// Field / Schema: column metadata shared by the EDW catalog, HCatalog, the
// HDFS formats and the wire protocol.

#ifndef HYBRIDJOIN_TYPES_SCHEMA_H_
#define HYBRIDJOIN_TYPES_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"

namespace hybridjoin {

/// One named, typed column.
struct Field {
  std::string name;
  DataType type;

  bool operator==(const Field& other) const {
    return name == other.name && type == other.type;
  }
};

/// An ordered list of fields. Shared (immutable) via shared_ptr.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  static std::shared_ptr<Schema> Make(std::vector<Field> fields) {
    return std::make_shared<Schema>(std::move(fields));
  }

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column with this name, or error.
  Result<size_t> IndexOf(const std::string& name) const {
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (fields_[i].name == name) return i;
    }
    return Status::NotFound("no column named '" + name + "'");
  }

  bool HasColumn(const std::string& name) const {
    return IndexOf(name).ok();
  }

  /// Schema of a projection (columns at `indices`, in that order).
  std::shared_ptr<Schema> Project(const std::vector<size_t>& indices) const {
    std::vector<Field> out;
    out.reserve(indices.size());
    for (size_t i : indices) out.push_back(fields_[i]);
    return Make(std::move(out));
  }

  bool operator==(const Schema& other) const {
    return fields_ == other.fields_;
  }

  std::string ToString() const {
    std::string out = "(";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += fields_[i].name;
      out += " ";
      out += DataTypeName(fields_[i].type);
    }
    out += ")";
    return out;
  }

 private:
  std::vector<Field> fields_;
};

using SchemaPtr = std::shared_ptr<Schema>;

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_TYPES_SCHEMA_H_
