// Logical column types of the engine. Dates are stored as int32 days since
// 1970-01-01 and times as int32 seconds since midnight, matching the schemas
// in the paper's workload (T has DATE and TIME columns).

#ifndef HYBRIDJOIN_TYPES_DATA_TYPE_H_
#define HYBRIDJOIN_TYPES_DATA_TYPE_H_

#include <cstdint>
#include <string>

namespace hybridjoin {

enum class DataType : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kFloat64 = 2,
  kString = 3,
  kDate = 4,  // int32 days since epoch
  kTime = 5,  // int32 seconds since midnight
};

/// Physical storage class of a logical type.
enum class PhysicalType : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kFloat64 = 2,
  kString = 3,
};

const char* DataTypeName(DataType type);

inline PhysicalType PhysicalTypeOf(DataType type) {
  switch (type) {
    case DataType::kInt32:
    case DataType::kDate:
    case DataType::kTime:
      return PhysicalType::kInt32;
    case DataType::kInt64:
      return PhysicalType::kInt64;
    case DataType::kFloat64:
      return PhysicalType::kFloat64;
    case DataType::kString:
      return PhysicalType::kString;
  }
  return PhysicalType::kInt32;
}

/// Fixed wire width of a physical type; 0 for variable-width (string).
inline size_t FixedWidthOf(DataType type) {
  switch (PhysicalTypeOf(type)) {
    case PhysicalType::kInt32:
      return 4;
    case PhysicalType::kInt64:
      return 8;
    case PhysicalType::kFloat64:
      return 8;
    case PhysicalType::kString:
      return 0;
  }
  return 0;
}

/// Parses "int32", "date", ... (as used by HCatalog text schemas).
bool ParseDataType(const std::string& name, DataType* out);

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_TYPES_DATA_TYPE_H_
