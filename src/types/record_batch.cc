#include "types/record_batch.h"

namespace hybridjoin {

void RecordBatch::SerializeTo(BinaryWriter* out) const {
  out->PutVarint(num_rows());
  out->PutVarint(num_columns());
  for (const auto& col : columns_) {
    out->PutU8(static_cast<uint8_t>(col.type()));
    switch (col.physical_type()) {
      case PhysicalType::kInt32:
        out->PutRaw(col.i32().data(), col.i32().size() * sizeof(int32_t));
        break;
      case PhysicalType::kInt64:
        out->PutRaw(col.i64().data(), col.i64().size() * sizeof(int64_t));
        break;
      case PhysicalType::kFloat64:
        out->PutRaw(col.f64().data(), col.f64().size() * sizeof(double));
        break;
      case PhysicalType::kString:
        for (const auto& s : col.str()) out->PutString(s);
        break;
    }
  }
}

Result<RecordBatch> RecordBatch::Deserialize(BinaryReader* in,
                                             const SchemaPtr& schema) {
  HJ_ASSIGN_OR_RETURN(uint64_t num_rows, in->GetVarint());
  HJ_ASSIGN_OR_RETURN(uint64_t num_cols, in->GetVarint());
  if (num_cols != schema->num_fields()) {
    return Status::Internal("batch wire column count " +
                            std::to_string(num_cols) +
                            " != schema fields " +
                            std::to_string(schema->num_fields()));
  }
  std::vector<ColumnVector> cols;
  cols.reserve(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    HJ_ASSIGN_OR_RETURN(uint8_t type_byte, in->GetU8());
    const auto type = static_cast<DataType>(type_byte);
    if (PhysicalTypeOf(type) != PhysicalTypeOf(schema->field(c).type)) {
      return Status::Internal("batch wire type mismatch on column " +
                              std::to_string(c));
    }
    ColumnVector col(schema->field(c).type);
    col.Reserve(num_rows);
    switch (col.physical_type()) {
      case PhysicalType::kInt32: {
        auto& v = col.mutable_i32();
        v.resize(num_rows);
        HJ_RETURN_IF_ERROR(in->GetRaw(v.data(), num_rows * sizeof(int32_t)));
        break;
      }
      case PhysicalType::kInt64: {
        auto& v = col.mutable_i64();
        v.resize(num_rows);
        HJ_RETURN_IF_ERROR(in->GetRaw(v.data(), num_rows * sizeof(int64_t)));
        break;
      }
      case PhysicalType::kFloat64: {
        auto& v = col.mutable_f64();
        v.resize(num_rows);
        HJ_RETURN_IF_ERROR(in->GetRaw(v.data(), num_rows * sizeof(double)));
        break;
      }
      case PhysicalType::kString: {
        auto& v = col.mutable_str();
        for (uint64_t r = 0; r < num_rows; ++r) {
          HJ_ASSIGN_OR_RETURN(std::string s, in->GetString());
          v.push_back(std::move(s));
        }
        break;
      }
    }
    cols.push_back(std::move(col));
  }
  return RecordBatch(schema, std::move(cols));
}

RecordBatch ConcatBatches(const SchemaPtr& schema,
                          const std::vector<RecordBatch>& batches) {
  RecordBatch out(schema);
  size_t total = 0;
  for (const auto& b : batches) total += b.num_rows();
  out.Reserve(total);
  for (const auto& b : batches) {
    for (size_t r = 0; r < b.num_rows(); ++r) out.AppendRowFrom(b, r);
  }
  return out;
}

}  // namespace hybridjoin
