// RecordBatch: a horizontal slice of a table in columnar layout — the unit
// that flows between operators, through the simulated network, and in and
// out of the HDFS formats.

#ifndef HYBRIDJOIN_TYPES_RECORD_BATCH_H_
#define HYBRIDJOIN_TYPES_RECORD_BATCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "types/column_vector.h"
#include "types/schema.h"

namespace hybridjoin {

/// Columns + schema. Invariant: every column has the same length.
class RecordBatch {
 public:
  RecordBatch() : schema_(Schema::Make({})) {}

  /// An empty batch with the given schema.
  explicit RecordBatch(SchemaPtr schema) : schema_(std::move(schema)) {
    columns_.reserve(schema_->num_fields());
    for (const Field& f : schema_->fields()) {
      columns_.emplace_back(f.type);
    }
  }

  RecordBatch(SchemaPtr schema, std::vector<ColumnVector> columns)
      : schema_(std::move(schema)), columns_(std::move(columns)) {
    HJ_CHECK_EQ(schema_->num_fields(), columns_.size());
    CheckRectangular();
  }

  const SchemaPtr& schema() const { return schema_; }
  size_t num_columns() const { return columns_.size(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }
  bool empty() const { return num_rows() == 0; }

  const ColumnVector& column(size_t i) const { return columns_[i]; }
  ColumnVector& mutable_column(size_t i) { return columns_[i]; }

  void Reserve(size_t n) {
    for (auto& c : columns_) c.Reserve(n);
  }

  /// Appends row `row` of `src` (same layout) to this batch.
  void AppendRowFrom(const RecordBatch& src, size_t row) {
    HJ_DCHECK(src.num_columns() == columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].AppendFrom(src.column(c), row);
    }
  }

  /// Appends a full row of scalar values (slow path, for tests).
  void AppendRow(const std::vector<Value>& values) {
    HJ_CHECK_EQ(values.size(), columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      columns_[c].AppendValue(values[c]);
    }
  }

  /// New batch keeping only the rows in `sel`.
  RecordBatch Gather(const std::vector<uint32_t>& sel) const {
    std::vector<ColumnVector> cols;
    cols.reserve(columns_.size());
    for (const auto& c : columns_) cols.push_back(c.Gather(sel));
    return RecordBatch(schema_, std::move(cols));
  }

  /// New batch with only the columns at `indices`, in that order.
  RecordBatch Project(const std::vector<size_t>& indices) const {
    std::vector<ColumnVector> cols;
    cols.reserve(indices.size());
    for (size_t i : indices) cols.push_back(columns_[i]);
    return RecordBatch(schema_->Project(indices), std::move(cols));
  }

  /// Approximate wire footprint.
  size_t ByteSize() const {
    size_t total = 8;
    for (const auto& c : columns_) total += c.ByteSize();
    return total;
  }

  /// Wire encoding: self-describing enough for a receiver that knows the
  /// schema out of band but validates column count/types.
  void SerializeTo(BinaryWriter* out) const;
  std::vector<uint8_t> Serialize() const {
    BinaryWriter w(ByteSize() + 16);
    SerializeTo(&w);
    return w.Release();
  }

  /// Decodes a batch previously produced by SerializeTo. The schema pointer
  /// is attached to the result (its types must match the wire types).
  static Result<RecordBatch> Deserialize(BinaryReader* in,
                                         const SchemaPtr& schema);
  static Result<RecordBatch> Deserialize(const std::vector<uint8_t>& buf,
                                         const SchemaPtr& schema) {
    BinaryReader r(buf);
    return Deserialize(&r, schema);
  }

 private:
  void CheckRectangular() const {
    for (const auto& c : columns_) {
      HJ_CHECK_EQ(c.size(), num_rows());
    }
  }

  SchemaPtr schema_;
  std::vector<ColumnVector> columns_;
};

/// Concatenates same-schema batches into one (used by tests and the final
/// aggregation step).
RecordBatch ConcatBatches(const SchemaPtr& schema,
                          const std::vector<RecordBatch>& batches);

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_TYPES_RECORD_BATCH_H_
