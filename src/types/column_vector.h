// ColumnVector: a typed, densely packed column of values — the unit of
// vectorized execution throughout the engine.

#ifndef HYBRIDJOIN_TYPES_COLUMN_VECTOR_H_
#define HYBRIDJOIN_TYPES_COLUMN_VECTOR_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/check.h"
#include "types/data_type.h"
#include "types/value.h"

namespace hybridjoin {

/// A single column. Physical storage is selected by the logical type
/// (dates/times live in the int32 vector).
class ColumnVector {
 public:
  explicit ColumnVector(DataType type = DataType::kInt32) : type_(type) {
    switch (PhysicalTypeOf(type_)) {
      case PhysicalType::kInt32:
        data_.emplace<std::vector<int32_t>>();
        break;
      case PhysicalType::kInt64:
        data_.emplace<std::vector<int64_t>>();
        break;
      case PhysicalType::kFloat64:
        data_.emplace<std::vector<double>>();
        break;
      case PhysicalType::kString:
        data_.emplace<std::vector<std::string>>();
        break;
    }
  }

  DataType type() const { return type_; }
  PhysicalType physical_type() const { return PhysicalTypeOf(type_); }

  size_t size() const {
    return std::visit([](const auto& v) { return v.size(); }, data_);
  }

  void Reserve(size_t n) {
    std::visit([n](auto& v) { v.reserve(n); }, data_);
  }
  void Clear() {
    std::visit([](auto& v) { v.clear(); }, data_);
  }

  // Typed accessors. HJ_CHECK on physical-type mismatch.
  const std::vector<int32_t>& i32() const {
    return std::get<std::vector<int32_t>>(data_);
  }
  const std::vector<int64_t>& i64() const {
    return std::get<std::vector<int64_t>>(data_);
  }
  const std::vector<double>& f64() const {
    return std::get<std::vector<double>>(data_);
  }
  const std::vector<std::string>& str() const {
    return std::get<std::vector<std::string>>(data_);
  }
  std::vector<int32_t>& mutable_i32() {
    return std::get<std::vector<int32_t>>(data_);
  }
  std::vector<int64_t>& mutable_i64() {
    return std::get<std::vector<int64_t>>(data_);
  }
  std::vector<double>& mutable_f64() {
    return std::get<std::vector<double>>(data_);
  }
  std::vector<std::string>& mutable_str() {
    return std::get<std::vector<std::string>>(data_);
  }

  /// Generic cell read (slow path; for tests and result rendering).
  Value GetValue(size_t row) const {
    switch (physical_type()) {
      case PhysicalType::kInt32:
        return Value(i32()[row]);
      case PhysicalType::kInt64:
        return Value(i64()[row]);
      case PhysicalType::kFloat64:
        return Value(f64()[row]);
      case PhysicalType::kString:
        return Value(str()[row]);
    }
    return Value();
  }

  /// Generic cell append (slow path).
  void AppendValue(const Value& v) {
    switch (physical_type()) {
      case PhysicalType::kInt32:
        mutable_i32().push_back(v.as_int32());
        break;
      case PhysicalType::kInt64:
        mutable_i64().push_back(v.as_int64());
        break;
      case PhysicalType::kFloat64:
        mutable_f64().push_back(v.as_float64());
        break;
      case PhysicalType::kString:
        mutable_str().push_back(v.as_string());
        break;
    }
  }

  /// Appends row `row` of `src` (same physical type) to this column.
  void AppendFrom(const ColumnVector& src, size_t row) {
    HJ_DCHECK(physical_type() == src.physical_type());
    switch (physical_type()) {
      case PhysicalType::kInt32:
        mutable_i32().push_back(src.i32()[row]);
        break;
      case PhysicalType::kInt64:
        mutable_i64().push_back(src.i64()[row]);
        break;
      case PhysicalType::kFloat64:
        mutable_f64().push_back(src.f64()[row]);
        break;
      case PhysicalType::kString:
        mutable_str().push_back(src.str()[row]);
        break;
    }
  }

  /// Appends rows[0..n) of `src` (same physical type) to this column — the
  /// column-at-a-time form of AppendFrom: one type dispatch per column
  /// instead of one per cell.
  void GatherAppendFrom(const ColumnVector& src, const uint32_t* rows,
                        size_t n) {
    HJ_DCHECK(physical_type() == src.physical_type());
    switch (physical_type()) {
      case PhysicalType::kInt32: {
        const auto& in = src.i32();
        auto& o = mutable_i32();
        o.reserve(o.size() + n);
        for (size_t j = 0; j < n; ++j) o.push_back(in[rows[j]]);
        break;
      }
      case PhysicalType::kInt64: {
        const auto& in = src.i64();
        auto& o = mutable_i64();
        o.reserve(o.size() + n);
        for (size_t j = 0; j < n; ++j) o.push_back(in[rows[j]]);
        break;
      }
      case PhysicalType::kFloat64: {
        const auto& in = src.f64();
        auto& o = mutable_f64();
        o.reserve(o.size() + n);
        for (size_t j = 0; j < n; ++j) o.push_back(in[rows[j]]);
        break;
      }
      case PhysicalType::kString: {
        const auto& in = src.str();
        auto& o = mutable_str();
        o.reserve(o.size() + n);
        for (size_t j = 0; j < n; ++j) o.push_back(in[rows[j]]);
        break;
      }
    }
  }

  /// Returns a new column with only the rows whose indexes appear in `sel`.
  ColumnVector Gather(const std::vector<uint32_t>& sel) const {
    ColumnVector out(type_);
    out.Reserve(sel.size());
    switch (physical_type()) {
      case PhysicalType::kInt32: {
        const auto& in = i32();
        auto& o = out.mutable_i32();
        for (uint32_t r : sel) o.push_back(in[r]);
        break;
      }
      case PhysicalType::kInt64: {
        const auto& in = i64();
        auto& o = out.mutable_i64();
        for (uint32_t r : sel) o.push_back(in[r]);
        break;
      }
      case PhysicalType::kFloat64: {
        const auto& in = f64();
        auto& o = out.mutable_f64();
        for (uint32_t r : sel) o.push_back(in[r]);
        break;
      }
      case PhysicalType::kString: {
        const auto& in = str();
        auto& o = out.mutable_str();
        for (uint32_t r : sel) o.push_back(in[r]);
        break;
      }
    }
    return out;
  }

  /// Approximate in-memory / wire footprint in bytes.
  size_t ByteSize() const {
    switch (physical_type()) {
      case PhysicalType::kInt32:
        return i32().size() * 4;
      case PhysicalType::kInt64:
        return i64().size() * 8;
      case PhysicalType::kFloat64:
        return f64().size() * 8;
      case PhysicalType::kString: {
        size_t total = 0;
        for (const auto& s : str()) total += s.size() + 2;
        return total;
      }
    }
    return 0;
  }

 private:
  DataType type_;
  std::variant<std::vector<int32_t>, std::vector<int64_t>,
               std::vector<double>, std::vector<std::string>>
      data_;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_TYPES_COLUMN_VECTOR_H_
