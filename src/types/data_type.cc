#include "types/data_type.h"

namespace hybridjoin {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kInt32:
      return "int32";
    case DataType::kInt64:
      return "int64";
    case DataType::kFloat64:
      return "float64";
    case DataType::kString:
      return "string";
    case DataType::kDate:
      return "date";
    case DataType::kTime:
      return "time";
  }
  return "unknown";
}

bool ParseDataType(const std::string& name, DataType* out) {
  if (name == "int32") {
    *out = DataType::kInt32;
  } else if (name == "int64" || name == "bigint") {
    *out = DataType::kInt64;
  } else if (name == "float64" || name == "double") {
    *out = DataType::kFloat64;
  } else if (name == "string" || name == "varchar") {
    *out = DataType::kString;
  } else if (name == "date") {
    *out = DataType::kDate;
  } else if (name == "time") {
    *out = DataType::kTime;
  } else {
    return false;
  }
  return true;
}

}  // namespace hybridjoin
