// Value: a single scalar cell, used at API boundaries (predicate literals,
// query results). Bulk data always moves as ColumnVector/RecordBatch.

#ifndef HYBRIDJOIN_TYPES_VALUE_H_
#define HYBRIDJOIN_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/check.h"
#include "types/data_type.h"

namespace hybridjoin {

/// A typed scalar. The variant alternative must match the column's
/// PhysicalType (dates/times are int32).
class Value {
 public:
  Value() : v_(int32_t{0}) {}
  Value(int32_t v) : v_(v) {}
  Value(int64_t v) : v_(v) {}
  Value(double v) : v_(v) {}
  Value(std::string v) : v_(std::move(v)) {}
  Value(const char* v) : v_(std::string(v)) {}

  bool is_int32() const { return std::holds_alternative<int32_t>(v_); }
  bool is_int64() const { return std::holds_alternative<int64_t>(v_); }
  bool is_float64() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }

  int32_t as_int32() const { return std::get<int32_t>(v_); }
  int64_t as_int64() const { return std::get<int64_t>(v_); }
  double as_float64() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }

  /// Numeric widening accessor: int32 or int64 as int64.
  int64_t AsInt64Lenient() const {
    if (is_int32()) return as_int32();
    HJ_CHECK(is_int64()) << "Value is not integral";
    return as_int64();
  }

  bool operator==(const Value& other) const { return v_ == other.v_; }
  bool operator<(const Value& other) const { return v_ < other.v_; }

  std::string ToString() const {
    if (is_int32()) return std::to_string(as_int32());
    if (is_int64()) return std::to_string(as_int64());
    if (is_float64()) return std::to_string(as_float64());
    return as_string();
  }

 private:
  std::variant<int32_t, int64_t, double, std::string> v_;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_TYPES_VALUE_H_
