// Synthetic workload generator reproducing the paper's dataset (§5):
//
//   T(uniqKey bigint, joinKey int, corPred int, indPred int,
//     predAfterJoin date, dummy1 varchar(50), dummy2 int, dummy3 time)
//   L(joinKey int, corPred int, indPred int, predAfterJoin date,
//     groupByExtractCol varchar(46), dummy char(8))
//
// corPred is correlated with the join key (each key maps to one corPred
// value), indPred is uniform and independent. A query's local predicate is
// `corPred < a AND indPred < b`: the corPred conjunct selects a *window of
// join keys* (setting the join-key selectivity) and the indPred conjunct
// scales the tuple selectivity without touching the key set — exactly the
// knob the paper turns ("by modifying constants a and c we change the
// number of join keys participating; b and d keep the combined selectivity
// intact").
//
// The key windows of T and L are offset against each other so that all four
// targets (sigma_T, sigma_L, S_T', S_L') are independently settable; the
// solver below computes window widths/offsets and predicate constants.

#ifndef HYBRIDJOIN_WORKLOAD_GENERATOR_H_
#define HYBRIDJOIN_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <functional>

#include "common/result.h"
#include "hybrid/query.h"
#include "types/record_batch.h"

namespace hybridjoin {

/// Dataset shape (defaults are a laptop-scale version of the paper's
/// 1.6 B x 15 B row tables, keeping the L:T row ratio and rows-per-key
/// structure).
struct WorkloadConfig {
  uint64_t num_join_keys = 8192;   ///< paper: 16 M distinct keys
  uint64_t t_rows = 256 * 1024;    ///< paper: 1.6 B
  uint64_t l_rows = 1200 * 1024;   ///< paper: ~15 B
  uint32_t num_groups = 200;       ///< distinct group-by values
  uint32_t pred_domain = 1000000;  ///< resolution of corPred/indPred values
  int32_t date_base_days = 16000;  ///< predAfterJoin window start
  int32_t date_window_days = 30;   ///< both sides draw dates from this window
  uint64_t seed = 7;
  uint32_t batch_rows = 64 * 1024; ///< generation granularity
  /// Zipf exponent for the join-key draw on BOTH tables: P(rank r) ∝
  /// 1/(r+1)^zipf_s. Ranks map to key ids in KeyHash-ascending order, so the
  /// corPred key windows (which anchor at hash 0) always keep a prefix of
  /// the hottest ranks — the post-predicate stream stays Zipf-skewed instead
  /// of losing its head to key-window luck. The hottest key is therefore the
  /// id with the smallest KeyHash, not id 0. The paper's uniform dataset is
  /// zipf_s = 0 (the default), which keeps the historical draw sequence
  /// bit-for-bit. Skewing both sides together models the realistic case — a
  /// popular dimension row is popular in the fact table too — and makes the
  /// T-side heavy-hitter sketch a valid proxy for L-side load.
  double zipf_s = 0;
  /// Misleading-stats layout knobs: store the table's rows sorted by its
  /// corPred column instead of in generation (i.e. random) order. Row SETS
  /// are untouched — only storage order changes — but a clustered layout
  /// makes ANY single stored batch / HDFS block unrepresentative of the
  /// corPred predicate (a batch passes it almost entirely or not at all),
  /// which is exactly the residual sampling bias documented in
  /// hybrid/advisor.h. Used by the adaptive-join ablation and tests to
  /// plant misleading estimates that only the decision point's observed
  /// statistics can correct.
  bool cluster_t_by_pred = false;
  bool cluster_l_by_pred = false;
};

/// The four selectivity targets of the paper's grid.
struct SelectivitySpec {
  double sigma_t = 0.1;  ///< local-predicate selectivity on T
  double sigma_l = 0.1;  ///< local-predicate selectivity on L
  double st = 0.5;       ///< join-key selectivity of T' (S_T')
  double sl = 0.5;       ///< join-key selectivity of L' (S_L')
};

/// Everything the solver derives from a SelectivitySpec.
struct SolvedSpec {
  double wt = 1.0;      ///< T key-window width (corPred selectivity on T)
  double wl = 1.0;      ///< L key-window width
  double offset_l = 0;  ///< L window offset in key-hash space
  double bt = 1.0;      ///< indPred selectivity on T
  double bl = 1.0;      ///< indPred selectivity on L
  int32_t t_cor_lit = 0;  ///< literal for corPred < lit on T
  int32_t t_ind_lit = 0;
  int32_t l_cor_lit = 0;
  int32_t l_ind_lit = 0;
};

/// Solves window widths and predicate literals for the targets; fails when
/// the combination is infeasible (e.g. sigma > join-key window possible).
Result<SolvedSpec> SolveSelectivities(const SelectivitySpec& spec,
                                      const WorkloadConfig& config);

/// A generated workload: the schemas, the data, and a query factory.
class Workload {
 public:
  /// Generates both tables for one (config, spec) cell.
  static Result<Workload> Generate(const WorkloadConfig& config,
                                   const SelectivitySpec& spec);

  static SchemaPtr TSchema();
  static SchemaPtr LSchema();

  const WorkloadConfig& config() const { return config_; }
  const SelectivitySpec& spec() const { return spec_; }
  const SolvedSpec& solved() const { return solved_; }

  /// T as one batch (loaded into the EDW by the caller).
  const RecordBatch& t_rows() const { return t_; }
  /// L as a list of batches (written to HDFS by the caller).
  const std::vector<RecordBatch>& l_batches() const { return l_; }

  /// Replaces L's batches while keeping the query untouched — used by
  /// layout ablations (e.g. clustering L on a predicate column so columnar
  /// chunk skipping has ranges to prune).
  void OverrideLBatches(std::vector<RecordBatch> batches) {
    l_ = std::move(batches);
  }

  /// The paper's example query over this workload: local predicates from
  /// the solved literals, equi-join on joinKey, date predicate after the
  /// join, COUNT(*) grouped by extract_group(groupByExtractCol).
  HybridQuery MakeQuery() const;

 private:
  WorkloadConfig config_;
  SelectivitySpec spec_;
  SolvedSpec solved_;
  RecordBatch t_;
  std::vector<RecordBatch> l_;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_WORKLOAD_GENERATOR_H_
