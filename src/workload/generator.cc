#include "workload/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/hash.h"
#include "common/random.h"
#include "expr/predicate.h"

namespace hybridjoin {

namespace {

constexpr uint64_t kKeyHashSeed = 0xc0ffeeULL;

/// Uniform key-hash in [0,1): the position of a join key in "window space".
double KeyHash(int64_t key) {
  return static_cast<double>(
             HashInt64(static_cast<uint64_t>(key), kKeyHashSeed) >> 11) *
         0x1.0p-53;
}

double Frac(double x) { return x - std::floor(x); }

/// Stable permutation sorting `batch`'s rows by the int32 column `col`
/// ascending (stability keeps the clustered layouts deterministic).
std::vector<uint32_t> SortedByColumn(const RecordBatch& batch, size_t col) {
  std::vector<uint32_t> perm(batch.num_rows());
  std::iota(perm.begin(), perm.end(), 0u);
  const auto& values = batch.column(col).i32();
  std::stable_sort(perm.begin(), perm.end(),
                   [&](uint32_t a, uint32_t b) { return values[a] < values[b]; });
  return perm;
}

}  // namespace

Result<SolvedSpec> SolveSelectivities(const SelectivitySpec& spec,
                                      const WorkloadConfig& config) {
  const double st = spec.st;
  const double sl = spec.sl;
  const double sigma_t = spec.sigma_t;
  const double sigma_l = spec.sigma_l;
  if (sigma_t <= 0 || sigma_t > 1 || sigma_l <= 0 || sigma_l > 1 ||
      st <= 0 || st > 1 || sl <= 0 || sl > 1) {
    return Status::InvalidArgument(
        "selectivities must be in (0, 1]");
  }
  if (sigma_t + sigma_l > 1.0) {
    return Status::InvalidArgument(
        "sigma_t + sigma_l > 1 would force key-window overlap; unsupported");
  }

  // Window widths as a function of the overlap o: the tuple selectivity
  // bound (indPred <= 1) forces w >= sigma; the join-key target forces
  // w = o / s once o is large enough.
  auto wt_of = [&](double o) { return std::max(sigma_t, o / st); };
  auto wl_of = [&](double o) { return std::max(sigma_l, o / sl); };
  // Packing constraint: the two windows must fit in [0,1) with overlap o.
  auto packing = [&](double o) { return wt_of(o) + wl_of(o) - o - 1.0; };

  // The smallest overlap at which both join-key targets are met exactly.
  const double o_exact = std::max(sigma_t * st, sigma_l * sl);
  double o = o_exact;
  if (packing(o) > 0) {
    // Targets are geometrically infeasible (the windows cannot fit); find
    // the largest feasible overlap and report the achieved selectivities.
    double lo = 0.0;
    double hi = o_exact;
    for (int iter = 0; iter < 64; ++iter) {
      const double mid = (lo + hi) / 2;
      if (packing(mid) <= 0) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    o = lo;
  }

  SolvedSpec solved;
  solved.wt = wt_of(o);
  solved.wl = wl_of(o);
  solved.offset_l = solved.wt - o;  // L window = [wt - o, wt - o + wl)
  solved.bt = sigma_t / solved.wt;
  solved.bl = sigma_l / solved.wl;
  const double d = static_cast<double>(config.pred_domain);
  solved.t_cor_lit = static_cast<int32_t>(std::lround(solved.wt * d));
  solved.t_ind_lit = static_cast<int32_t>(std::lround(solved.bt * d));
  solved.l_cor_lit = static_cast<int32_t>(std::lround(solved.wl * d));
  solved.l_ind_lit = static_cast<int32_t>(std::lround(solved.bl * d));
  return solved;
}

SchemaPtr Workload::TSchema() {
  return Schema::Make({{"uniqKey", DataType::kInt64},
                       {"joinKey", DataType::kInt32},
                       {"corPred", DataType::kInt32},
                       {"indPred", DataType::kInt32},
                       {"predAfterJoin", DataType::kDate},
                       {"dummy1", DataType::kString},
                       {"dummy2", DataType::kInt32},
                       {"dummy3", DataType::kTime}});
}

SchemaPtr Workload::LSchema() {
  return Schema::Make({{"joinKey", DataType::kInt32},
                       {"corPred", DataType::kInt32},
                       {"indPred", DataType::kInt32},
                       {"predAfterJoin", DataType::kDate},
                       {"groupByExtractCol", DataType::kString},
                       {"dummy", DataType::kString}});
}

Result<Workload> Workload::Generate(const WorkloadConfig& config,
                                    const SelectivitySpec& spec) {
  if (config.num_join_keys == 0 || config.t_rows == 0 || config.l_rows == 0) {
    return Status::InvalidArgument("workload sizes must be positive");
  }
  if (config.zipf_s < 0 || !std::isfinite(config.zipf_s)) {
    return Status::InvalidArgument("zipf_s must be finite and >= 0");
  }
  HJ_ASSIGN_OR_RETURN(SolvedSpec solved, SolveSelectivities(spec, config));

  Workload w;
  w.config_ = config;
  w.spec_ = spec;
  w.solved_ = solved;

  const double d = static_cast<double>(config.pred_domain);
  const uint64_t keys = config.num_join_keys;

  // Per-key correlated predicate values for both tables.
  std::vector<int32_t> t_cor(keys);
  std::vector<int32_t> l_cor(keys);
  for (uint64_t k = 0; k < keys; ++k) {
    const double h = KeyHash(static_cast<int64_t>(k));
    t_cor[k] = static_cast<int32_t>(h * d);
    l_cor[k] = static_cast<int32_t>(Frac(h - solved.offset_l) * d);
  }

  // Zipf key sampler shared by both tables: cumulative weights once, then
  // one uniform draw + binary search per row. zipf_s == 0 must keep the
  // historical `rng.Uniform(keys)` call so existing seeds stay bit-identical.
  // Ranks map to key ids in KeyHash-ascending order: the corPred key windows
  // are [0, w) intervals in key-hash space, so a hash-ordered ranking keeps
  // the hottest ranks inside every window — the post-predicate stream stays
  // Zipf-skewed instead of losing its head to key-window luck.
  std::vector<double> zipf_cdf;
  std::vector<uint32_t> ranked_keys;  // rank -> key id, hash-ascending
  if (config.zipf_s > 0) {
    zipf_cdf.resize(keys);
    double acc = 0;
    for (uint64_t k = 0; k < keys; ++k) {
      acc += std::pow(static_cast<double>(k + 1), -config.zipf_s);
      zipf_cdf[k] = acc;
    }
    for (double& v : zipf_cdf) v /= acc;
    ranked_keys.resize(keys);
    std::iota(ranked_keys.begin(), ranked_keys.end(), 0u);
    std::sort(ranked_keys.begin(), ranked_keys.end(),
              [](uint32_t a, uint32_t b) {
                const double ha = KeyHash(a);
                const double hb = KeyHash(b);
                if (ha != hb) return ha < hb;
                return a < b;
              });
  }
  auto draw_key = [&](Rng& rng) {
    if (zipf_cdf.empty()) return static_cast<uint32_t>(rng.Uniform(keys));
    const auto it = std::upper_bound(zipf_cdf.begin(), zipf_cdf.end(),
                                     rng.NextDouble());
    const auto rank = std::min<uint64_t>(
        static_cast<uint64_t>(it - zipf_cdf.begin()), keys - 1);
    return ranked_keys[rank];
  };

  // --- T ---
  {
    Rng rng(config.seed * 31 + 1);
    w.t_ = RecordBatch(TSchema());
    w.t_.Reserve(config.t_rows);
    auto& uniq = w.t_.mutable_column(0).mutable_i64();
    auto& jk = w.t_.mutable_column(1).mutable_i32();
    auto& cor = w.t_.mutable_column(2).mutable_i32();
    auto& ind = w.t_.mutable_column(3).mutable_i32();
    auto& date = w.t_.mutable_column(4).mutable_i32();
    auto& d1 = w.t_.mutable_column(5).mutable_str();
    auto& d2 = w.t_.mutable_column(6).mutable_i32();
    auto& d3 = w.t_.mutable_column(7).mutable_i32();
    char buf[64];
    for (uint64_t r = 0; r < config.t_rows; ++r) {
      const uint32_t key = draw_key(rng);
      uniq.push_back(static_cast<int64_t>(r));
      jk.push_back(static_cast<int32_t>(key));
      cor.push_back(t_cor[key]);
      ind.push_back(static_cast<int32_t>(rng.Uniform(config.pred_domain)));
      date.push_back(config.date_base_days +
                     static_cast<int32_t>(rng.Uniform(
                         config.date_window_days)));
      std::snprintf(buf, sizeof(buf), "txn/store%03u/terminal%02u/%08llx",
                    static_cast<unsigned>(rng.Uniform(500)),
                    static_cast<unsigned>(rng.Uniform(20)),
                    static_cast<unsigned long long>(rng.Next() & 0xffffffff));
      d1.emplace_back(buf);
      d2.push_back(static_cast<int32_t>(rng.Uniform(1 << 20)));
      d3.push_back(static_cast<int32_t>(rng.Uniform(86400)));
    }
    if (config.cluster_t_by_pred) {
      // Same rows, corPred-sorted storage order: every stored batch lands
      // entirely inside or entirely outside the corPred window, so a
      // single-batch sample misestimates sigma_T no matter which batch it
      // picks (see WorkloadConfig::cluster_t_by_pred).
      w.t_ = w.t_.Gather(SortedByColumn(w.t_, 2));
    }
  }

  // --- L ---
  {
    Rng rng(config.seed * 131 + 7);
    char buf[64];
    uint64_t remaining = config.l_rows;
    while (remaining > 0) {
      const uint64_t n = std::min<uint64_t>(remaining, config.batch_rows);
      RecordBatch batch(LSchema());
      batch.Reserve(n);
      auto& jk = batch.mutable_column(0).mutable_i32();
      auto& cor = batch.mutable_column(1).mutable_i32();
      auto& ind = batch.mutable_column(2).mutable_i32();
      auto& date = batch.mutable_column(3).mutable_i32();
      auto& grp = batch.mutable_column(4).mutable_str();
      auto& dummy = batch.mutable_column(5).mutable_str();
      for (uint64_t r = 0; r < n; ++r) {
        const uint32_t key = draw_key(rng);
        jk.push_back(static_cast<int32_t>(key));
        cor.push_back(l_cor[key]);
        ind.push_back(static_cast<int32_t>(rng.Uniform(config.pred_domain)));
        date.push_back(config.date_base_days +
                       static_cast<int32_t>(rng.Uniform(
                           config.date_window_days)));
        std::snprintf(buf, sizeof(buf), "g%u/products/item%05u",
                      static_cast<unsigned>(rng.Uniform(config.num_groups)),
                      static_cast<unsigned>(rng.Uniform(100000)));
        grp.emplace_back(buf);
        std::snprintf(buf, sizeof(buf), "%08llx",
                      static_cast<unsigned long long>(rng.Next() &
                                                      0xffffffff));
        dummy.emplace_back(buf);
      }
      w.l_.push_back(std::move(batch));
      remaining -= n;
    }
    if (config.cluster_l_by_pred && !w.l_.empty()) {
      // Concatenate, corPred-sort, re-chunk: the HDFS blocks written from
      // these batches inherit the clustered order, so any single-block
      // sample misestimates sigma_L (see WorkloadConfig::cluster_l_by_pred).
      RecordBatch all(LSchema());
      all.Reserve(config.l_rows);
      std::vector<uint32_t> ident;
      for (const RecordBatch& b : w.l_) {
        ident.resize(b.num_rows());
        std::iota(ident.begin(), ident.end(), 0u);
        for (size_t c = 0; c < all.num_columns(); ++c) {
          all.mutable_column(c).GatherAppendFrom(b.column(c), ident.data(),
                                                 ident.size());
        }
      }
      const std::vector<uint32_t> perm = SortedByColumn(all, 1);
      std::vector<RecordBatch> clustered;
      for (size_t off = 0; off < perm.size(); off += config.batch_rows) {
        const size_t end = std::min<size_t>(off + config.batch_rows,
                                            perm.size());
        clustered.push_back(all.Gather(
            std::vector<uint32_t>(perm.begin() + off, perm.begin() + end)));
      }
      w.l_ = std::move(clustered);
    }
  }
  return w;
}

HybridQuery Workload::MakeQuery() const {
  HybridQuery q;
  q.db.table = "T";
  q.db.alias = "T";
  q.db.predicate = And({Cmp("corPred", CmpOp::kLt, solved_.t_cor_lit),
                        Cmp("indPred", CmpOp::kLt, solved_.t_ind_lit)});
  q.db.projection = {"joinKey", "predAfterJoin"};
  q.db.join_key = "joinKey";

  q.hdfs.table = "L";
  q.hdfs.alias = "L";
  q.hdfs.predicate = And({Cmp("corPred", CmpOp::kLt, solved_.l_cor_lit),
                          Cmp("indPred", CmpOp::kLt, solved_.l_ind_lit)});
  q.hdfs.projection = {"joinKey", "predAfterJoin", "groupByExtractCol"};
  q.hdfs.join_key = "joinKey";

  // days(T.predAfterJoin) - days(L.predAfterJoin) BETWEEN 0 AND 1
  q.post_join_predicate =
      DiffRange("T.predAfterJoin", "L.predAfterJoin", 0, 1);
  q.agg = AggSpec::CountStar("L.groupByExtractCol", /*extract_group=*/true);
  return q;
}

}  // namespace hybridjoin
