// Loads a generated Workload into a HybridWarehouse: T into the EDW
// (distributed on uniqKey, with the paper's two indexes) and L onto HDFS in
// the chosen format.

#ifndef HYBRIDJOIN_WORKLOAD_LOADER_H_
#define HYBRIDJOIN_WORKLOAD_LOADER_H_

#include "hybrid/warehouse.h"
#include "workload/generator.h"

namespace hybridjoin {

struct LoadOptions {
  HdfsWriteOptions hdfs;  ///< format / codec / block size for L
  /// Build the paper's indexes on T: (corPred, indPred) and
  /// (corPred, indPred, joinKey) — the latter enables index-only Bloom
  /// filter computation.
  bool create_indexes = true;
};

/// Loads both tables. The warehouse's SimulationConfig.bloom.expected_keys
/// should be set to workload.config().num_join_keys before construction for
/// paper-faithful Bloom sizing.
Status LoadWorkload(HybridWarehouse* warehouse, const Workload& workload,
                    const LoadOptions& options = {});

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_WORKLOAD_LOADER_H_
