#include "workload/loader.h"

namespace hybridjoin {

Status LoadWorkload(HybridWarehouse* warehouse, const Workload& workload,
                    const LoadOptions& options) {
  // T: hash-distributed on its unique key, exactly as in the paper.
  DbTableMeta meta;
  meta.name = "T";
  meta.schema = Workload::TSchema();
  meta.distribution_column = "uniqKey";
  HJ_RETURN_IF_ERROR(warehouse->CreateDbTable(std::move(meta)));
  HJ_RETURN_IF_ERROR(warehouse->LoadDbTable("T", workload.t_rows()));
  if (options.create_indexes) {
    HJ_RETURN_IF_ERROR(
        warehouse->CreateDbIndex("T", {"corPred", "indPred"}));
    HJ_RETURN_IF_ERROR(
        warehouse->CreateDbIndex("T", {"corPred", "indPred", "joinKey"}));
  }

  // L: one HDFS table in the requested format.
  return warehouse->WriteHdfsTable("L", Workload::LSchema(), options.hdfs,
                                   workload.l_batches());
}

}  // namespace hybridjoin
