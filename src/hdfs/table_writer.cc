#include "hdfs/table_writer.h"

namespace hybridjoin {

HdfsTableWriter::HdfsTableWriter(NameNode* namenode, HCatalog* hcatalog,
                                 std::string name, SchemaPtr schema,
                                 HdfsWriteOptions options)
    : namenode_(namenode),
      hcatalog_(hcatalog),
      name_(std::move(name)),
      path_("/warehouse/" + name_),
      schema_(std::move(schema)),
      options_(options),
      pending_(schema_) {}

Status HdfsTableWriter::Open() {
  if (open_) return Status::Internal("writer already open");
  HJ_RETURN_IF_ERROR(namenode_->CreateFile(path_));
  open_ = true;
  return Status::OK();
}

Status HdfsTableWriter::Append(const RecordBatch& batch) {
  if (!open_ || closed_) return Status::Internal("writer not open");
  if (!(*batch.schema() == *schema_)) {
    return Status::InvalidArgument("batch schema does not match table");
  }
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    pending_.AppendRowFrom(batch, r);
    if (pending_.num_rows() >= options_.rows_per_block) {
      HJ_RETURN_IF_ERROR(FlushBlock());
    }
  }
  return Status::OK();
}

Status HdfsTableWriter::FlushBlock() {
  if (pending_.num_rows() == 0) return Status::OK();
  auto block = std::make_shared<StoredBlock>();
  block->format = options_.format;
  block->num_rows = static_cast<uint32_t>(pending_.num_rows());
  if (options_.format == HdfsFormat::kText) {
    block->text = std::make_shared<const std::vector<uint8_t>>(
        EncodeText(pending_));
  } else {
    block->columnar = std::make_shared<const ColumnarBlock>(
        EncodeColumnarBlock(pending_, options_.columnar));
  }
  rows_written_ += pending_.num_rows();
  pending_ = RecordBatch(schema_);
  return namenode_->AppendBlock(path_, std::move(block));
}

Status HdfsTableWriter::Close() {
  if (!open_ || closed_) return Status::Internal("writer not open");
  HJ_RETURN_IF_ERROR(FlushBlock());
  closed_ = true;
  HdfsTableMeta meta;
  meta.name = name_;
  meta.path = path_;
  meta.schema = schema_;
  meta.format = options_.format;
  meta.num_rows = rows_written_;
  return hcatalog_->RegisterTable(std::move(meta));
}

}  // namespace hybridjoin
