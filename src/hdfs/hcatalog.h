// HCatalog: table metadata for HDFS tables (schema, format, file path),
// mirroring the paper's use of Apache HCatalog — JEN's coordinator resolves
// a table name here, then asks the NameNode for block locations.

#ifndef HYBRIDJOIN_HDFS_HCATALOG_H_
#define HYBRIDJOIN_HDFS_HCATALOG_H_

#include <map>
#include <shared_mutex>
#include <string>

#include "common/result.h"
#include "hdfs/format.h"
#include "types/schema.h"

namespace hybridjoin {

/// Everything the engine needs to scan an HDFS table.
struct HdfsTableMeta {
  std::string name;
  std::string path;  ///< file path in the NameNode namespace
  SchemaPtr schema;
  HdfsFormat format = HdfsFormat::kColumnar;
  uint64_t num_rows = 0;
};

/// The metadata catalog for HDFS-resident tables.
class HCatalog {
 public:
  Status RegisterTable(HdfsTableMeta meta);
  Result<HdfsTableMeta> Lookup(const std::string& name) const;
  Status DropTable(const std::string& name);
  std::vector<std::string> ListTables() const;

 private:
  /// Reader-writer lock: Register/Drop (DDL) take it exclusively, Lookup /
  /// ListTables (the query path) take it shared, so catalog DDL and running
  /// queries interleave safely.
  mutable std::shared_mutex mu_;
  std::map<std::string, HdfsTableMeta> tables_;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_HDFS_HCATALOG_H_
