// DataNode: stores block replicas across several simulated disks and an
// OS-page-cache model. Reads are throttled per disk (cold) or through the
// much faster cache path (warm) — this is what makes the paper's cold-text
// vs warm-columnar asymmetry (240 s vs 38 s scans, §5.4) reproducible.

#ifndef HYBRIDJOIN_HDFS_DATANODE_H_
#define HYBRIDJOIN_HDFS_DATANODE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/token_bucket.h"
#include "hdfs/format.h"

namespace hybridjoin {

/// Disk/cache bandwidths in bytes/sec; 0 = unlimited.
struct DataNodeConfig {
  uint32_t num_disks = 2;
  uint64_t disk_read_bps = 0;       ///< cold read bandwidth per disk
  uint64_t cache_read_bps = 0;      ///< warm (page cache) bandwidth
  uint64_t cache_capacity_bytes = 1ULL << 40;  ///< per-node page cache
};

/// One storage node of the HDFS cluster.
class DataNode {
 public:
  DataNode(uint32_t index, const DataNodeConfig& config);

  uint32_t index() const { return index_; }
  uint32_t num_disks() const {
    return static_cast<uint32_t>(disk_buckets_.size());
  }

  /// Stores a replica on the given disk. Fails on duplicate block id.
  Status StoreBlock(uint64_t block_id, uint32_t disk,
                    std::shared_ptr<const StoredBlock> block);

  /// Returns the block payload without charging I/O (callers decide how many
  /// bytes they actually read, e.g. projected column chunks only).
  Result<std::shared_ptr<const StoredBlock>> Fetch(uint64_t block_id) const;

  /// Charges `bytes` of read I/O against this node: cache-speed if the block
  /// is resident in the page cache, disk-speed otherwise (and the block then
  /// becomes resident, evicting LRU blocks past capacity).
  /// Returns true if the read was served warm.
  bool AccountRead(uint64_t block_id, uint64_t bytes);

  /// Drops the page cache (lets benches model cold runs deterministically).
  void DropCache();

  /// Re-sizes the page cache (drops it first). Benches use this to model a
  /// dataset that does or does not fit in memory, like the paper's 1 TB
  /// text table vs the 421 GB columnar table on 960 GB of cluster RAM.
  void SetCacheCapacity(uint64_t bytes);

  /// Bytes currently resident in the page cache.
  uint64_t CacheUsedBytes() const;

 private:
  struct Replica {
    std::shared_ptr<const StoredBlock> block;
    uint32_t disk = 0;
  };

  const uint32_t index_;
  DataNodeConfig config_;
  std::vector<std::unique_ptr<TokenBucket>> disk_buckets_;
  TokenBucket cache_bucket_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Replica> blocks_;
  // LRU page cache over block ids.
  std::list<uint64_t> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> cache_index_;
  uint64_t cache_used_ = 0;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_HDFS_DATANODE_H_
