// HdfsTableWriter: loads record batches into an HDFS table — chunks rows
// into blocks, encodes them in the chosen format, places replicas through
// the NameNode and registers the table in HCatalog.

#ifndef HYBRIDJOIN_HDFS_TABLE_WRITER_H_
#define HYBRIDJOIN_HDFS_TABLE_WRITER_H_

#include <string>

#include "common/result.h"
#include "hdfs/hcatalog.h"
#include "hdfs/namenode.h"

namespace hybridjoin {

struct HdfsWriteOptions {
  HdfsFormat format = HdfsFormat::kColumnar;
  ColumnarWriteOptions columnar;
  /// Target rows per HDFS block (a block is the scan/assignment unit).
  uint32_t rows_per_block = 64 * 1024;
};

/// Streams batches into one HDFS file. Usage:
///   HdfsTableWriter w(namenode, hcatalog, "L", schema, options);
///   HJ_RETURN_IF_ERROR(w.Open());
///   w.Append(batch); ...; w.Close();
class HdfsTableWriter {
 public:
  HdfsTableWriter(NameNode* namenode, HCatalog* hcatalog, std::string name,
                  SchemaPtr schema, HdfsWriteOptions options);

  /// Creates the file. Fails if the table or file already exists.
  Status Open();

  /// Buffers rows, flushing full blocks to HDFS.
  Status Append(const RecordBatch& batch);

  /// Flushes the tail block and registers the table in HCatalog.
  Status Close();

  uint64_t rows_written() const { return rows_written_; }

 private:
  Status FlushBlock();

  NameNode* namenode_;
  HCatalog* hcatalog_;
  const std::string name_;
  const std::string path_;
  SchemaPtr schema_;
  const HdfsWriteOptions options_;

  RecordBatch pending_;
  uint64_t rows_written_ = 0;
  bool open_ = false;
  bool closed_ = false;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_HDFS_TABLE_WRITER_H_
