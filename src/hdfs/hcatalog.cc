#include "hdfs/hcatalog.h"

#include <mutex>
#include <shared_mutex>

namespace hybridjoin {

Status HCatalog::RegisterTable(HdfsTableMeta meta) {
  if (meta.name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  if (meta.schema == nullptr || meta.schema->num_fields() == 0) {
    return Status::InvalidArgument("table schema must be non-empty");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] = tables_.try_emplace(meta.name, std::move(meta));
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("HDFS table already registered");
  }
  return Status::OK();
}

Result<HdfsTableMeta> HCatalog::Lookup(const std::string& name) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("HDFS table '" + name + "' not in HCatalog");
  }
  return it->second;
}

Status HCatalog::DropTable(const std::string& name) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (tables_.erase(name) == 0) {
    return Status::NotFound("HDFS table '" + name + "' not in HCatalog");
  }
  return Status::OK();
}

std::vector<std::string> HCatalog::ListTables() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, meta] : tables_) names.push_back(name);
  return names;
}

}  // namespace hybridjoin
