// On-HDFS table formats.
//
// The paper stores the log table twice: as delimited text (1 TB) and as
// Parquet+Snappy (421 GB) and shows the format dominates join performance
// (§5.4). We implement both:
//   - kText:     pipe-delimited rows; scanning must parse every byte and
//                projection cannot reduce I/O.
//   - kColumnar: per-block column chunks with dictionary/RLE encodings, an
//                LZ byte codec, min/max stats for chunk skipping, and
//                projection pushdown (only requested chunks are read).

#ifndef HYBRIDJOIN_HDFS_FORMAT_H_
#define HYBRIDJOIN_HDFS_FORMAT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/compress.h"
#include "common/result.h"
#include "types/record_batch.h"

namespace hybridjoin {

enum class HdfsFormat : uint8_t { kText = 0, kColumnar = 1 };

const char* HdfsFormatName(HdfsFormat format);

// ---------------------------------------------------------------------------
// Text format
// ---------------------------------------------------------------------------

/// Renders a batch as '|'-delimited text, one row per line. Dates are
/// rendered ISO (yyyy-mm-dd) and times as hh:mm:ss, like real log files.
std::vector<uint8_t> EncodeText(const RecordBatch& batch);

/// Parses text back into a batch of `schema`. The whole line is always
/// parsed (no projection pushdown — that is the point of the text format);
/// `projection` (indexes into schema) selects which parsed columns are kept.
Result<RecordBatch> DecodeText(const uint8_t* data, size_t size,
                               const SchemaPtr& schema,
                               const std::vector<size_t>& projection);

// ---------------------------------------------------------------------------
// Columnar format
// ---------------------------------------------------------------------------

enum class ColEncoding : uint8_t { kPlain = 0, kRle = 1, kDict = 2 };

const char* ColEncodingName(ColEncoding enc);

/// One column of one block: encoded, optionally compressed, with stats.
struct ColumnChunk {
  DataType type = DataType::kInt32;
  ColEncoding encoding = ColEncoding::kPlain;
  Codec codec = Codec::kNone;
  uint32_t num_rows = 0;
  std::vector<uint8_t> data;
  /// min/max over the chunk for integer-physical columns; drives skipping.
  bool has_stats = false;
  int64_t min_val = 0;
  int64_t max_val = 0;

  /// What reading this chunk costs in I/O bytes (data + footer entry).
  size_t ByteSize() const { return data.size() + 32; }
};

/// One block (row group) of a columnar file.
struct ColumnarBlock {
  uint32_t num_rows = 0;
  std::vector<ColumnChunk> chunks;  // one per schema column, schema order

  size_t ByteSize() const {
    size_t total = 16;
    for (const auto& c : chunks) total += c.ByteSize();
    return total;
  }
};

/// Options controlling the columnar writer.
struct ColumnarWriteOptions {
  Codec codec = Codec::kLz;
  bool enable_dictionary = true;
  bool enable_rle = true;
  bool write_stats = true;
};

/// Encodes one column, choosing the cheapest of the enabled encodings.
ColumnChunk EncodeColumnChunk(const ColumnVector& column,
                              const ColumnarWriteOptions& options);

/// Decodes a chunk back into a column vector of `type`.
Result<ColumnVector> DecodeColumnChunk(const ColumnChunk& chunk,
                                       DataType type);

/// Encodes a batch into a columnar block.
ColumnarBlock EncodeColumnarBlock(const RecordBatch& batch,
                                  const ColumnarWriteOptions& options);

/// Decodes only the chunks in `projection`, producing a batch whose schema
/// is the projected schema.
Result<RecordBatch> DecodeColumnarBlock(const ColumnarBlock& block,
                                        const SchemaPtr& schema,
                                        const std::vector<size_t>& projection);

// ---------------------------------------------------------------------------
// Stored block: what a DataNode holds for either format.
// ---------------------------------------------------------------------------

/// Immutable payload of one HDFS block.
struct StoredBlock {
  HdfsFormat format = HdfsFormat::kText;
  // Exactly one of the two is populated, matching `format`.
  std::shared_ptr<const std::vector<uint8_t>> text;
  std::shared_ptr<const ColumnarBlock> columnar;
  uint32_t num_rows = 0;

  size_t ByteSize() const {
    if (format == HdfsFormat::kText) return text ? text->size() : 0;
    return columnar ? columnar->ByteSize() : 0;
  }
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_HDFS_FORMAT_H_
