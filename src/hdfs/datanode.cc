#include "hdfs/datanode.h"

#include "common/check.h"

namespace hybridjoin {

DataNode::DataNode(uint32_t index, const DataNodeConfig& config)
    : index_(index), config_(config), cache_bucket_(config.cache_read_bps) {
  HJ_CHECK_GT(config.num_disks, 0u);
  disk_buckets_.reserve(config.num_disks);
  for (uint32_t d = 0; d < config.num_disks; ++d) {
    disk_buckets_.push_back(
        std::make_unique<TokenBucket>(config.disk_read_bps));
  }
}

Status DataNode::StoreBlock(uint64_t block_id, uint32_t disk,
                            std::shared_ptr<const StoredBlock> block) {
  if (disk >= disk_buckets_.size()) {
    return Status::InvalidArgument("disk index out of range");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = blocks_.try_emplace(block_id);
  if (!inserted) {
    return Status::AlreadyExists("block " + std::to_string(block_id) +
                                 " already on datanode " +
                                 std::to_string(index_));
  }
  it->second.block = std::move(block);
  it->second.disk = disk;
  return Status::OK();
}

Result<std::shared_ptr<const StoredBlock>> DataNode::Fetch(
    uint64_t block_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = blocks_.find(block_id);
  if (it == blocks_.end()) {
    return Status::NotFound("block " + std::to_string(block_id) +
                            " not on datanode " + std::to_string(index_));
  }
  return it->second.block;
}

bool DataNode::AccountRead(uint64_t block_id, uint64_t bytes) {
  uint32_t disk = 0;
  bool warm = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = blocks_.find(block_id);
    if (it == blocks_.end()) return false;  // unknown block; nothing to charge
    disk = it->second.disk;
    auto cit = cache_index_.find(block_id);
    if (cit != cache_index_.end()) {
      warm = true;
      // Touch.
      lru_.erase(cit->second);
      lru_.push_front(block_id);
      cit->second = lru_.begin();
    } else {
      // Will be resident after this read.
      const uint64_t block_bytes = it->second.block->ByteSize();
      if (block_bytes <= config_.cache_capacity_bytes) {
        while (cache_used_ + block_bytes > config_.cache_capacity_bytes &&
               !lru_.empty()) {
          const uint64_t victim = lru_.back();
          lru_.pop_back();
          cache_index_.erase(victim);
          auto vit = blocks_.find(victim);
          if (vit != blocks_.end()) {
            cache_used_ -= vit->second.block->ByteSize();
          }
        }
        lru_.push_front(block_id);
        cache_index_[block_id] = lru_.begin();
        cache_used_ += block_bytes;
      }
    }
  }
  // Charge outside the lock so concurrent readers overlap their waits only
  // on the shared bucket, not on the metadata mutex.
  if (warm) {
    cache_bucket_.Acquire(bytes);
  } else {
    disk_buckets_[disk]->Acquire(bytes);
  }
  return warm;
}

void DataNode::DropCache() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  cache_index_.clear();
  cache_used_ = 0;
}

void DataNode::SetCacheCapacity(uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  cache_index_.clear();
  cache_used_ = 0;
  config_.cache_capacity_bytes = bytes;
}

uint64_t DataNode::CacheUsedBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_used_;
}

}  // namespace hybridjoin
