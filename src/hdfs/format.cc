#include "hdfs/format.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <unordered_map>

#include "common/binary_io.h"
#include "expr/scalar_functions.h"

namespace hybridjoin {

const char* HdfsFormatName(HdfsFormat format) {
  switch (format) {
    case HdfsFormat::kText:
      return "text";
    case HdfsFormat::kColumnar:
      return "columnar";
  }
  return "unknown";
}

const char* ColEncodingName(ColEncoding enc) {
  switch (enc) {
    case ColEncoding::kPlain:
      return "plain";
    case ColEncoding::kRle:
      return "rle";
    case ColEncoding::kDict:
      return "dict";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// Text format
// ---------------------------------------------------------------------------

namespace {

void AppendInt(std::string* out, int64_t v) {
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  out->append(buf, ptr - buf);
}

void AppendDate(std::string* out, int32_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  out->append(buf);
}

void AppendTime(std::string* out, int32_t seconds) {
  char buf[12];
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d", seconds / 3600,
                (seconds / 60) % 60, seconds % 60);
  out->append(buf);
}

inline Result<int64_t> ParseInt(const char* begin, const char* end) {
  int64_t v = 0;
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || ptr != end) {
    return Status::IOError("text: bad integer field '" +
                           std::string(begin, end) + "'");
  }
  return v;
}

inline Result<double> ParseDouble(const char* begin, const char* end) {
  double v = 0;
  auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc() || ptr != end) {
    return Status::IOError("text: bad float field");
  }
  return v;
}

Result<int32_t> ParseDate(const char* begin, const char* end) {
  // yyyy-mm-dd
  if (end - begin != 10 || begin[4] != '-' || begin[7] != '-') {
    return Status::IOError("text: bad date field '" +
                           std::string(begin, end) + "'");
  }
  auto digits = [](const char* p, int n) {
    int v = 0;
    for (int i = 0; i < n; ++i) v = v * 10 + (p[i] - '0');
    return v;
  };
  for (const char* p = begin; p != end; ++p) {
    if (*p != '-' && (*p < '0' || *p > '9')) {
      return Status::IOError("text: bad date digit");
    }
  }
  return DaysFromCivil(digits(begin, 4), digits(begin + 5, 2),
                       digits(begin + 8, 2));
}

Result<int32_t> ParseTime(const char* begin, const char* end) {
  // hh:mm:ss
  if (end - begin != 8 || begin[2] != ':' || begin[5] != ':') {
    return Status::IOError("text: bad time field");
  }
  auto two = [](const char* p) { return (p[0] - '0') * 10 + (p[1] - '0'); };
  return two(begin) * 3600 + two(begin + 3) * 60 + two(begin + 6);
}

}  // namespace

std::vector<uint8_t> EncodeText(const RecordBatch& batch) {
  std::string out;
  // Rough reserve: 12 bytes per numeric field, strings by size.
  out.reserve(batch.ByteSize() * 2 + batch.num_rows() * 2);
  const size_t cols = batch.num_columns();
  for (size_t r = 0; r < batch.num_rows(); ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (c > 0) out.push_back('|');
      const ColumnVector& col = batch.column(c);
      switch (col.type()) {
        case DataType::kInt32:
          AppendInt(&out, col.i32()[r]);
          break;
        case DataType::kInt64:
          AppendInt(&out, col.i64()[r]);
          break;
        case DataType::kFloat64: {
          char buf[32];
          std::snprintf(buf, sizeof(buf), "%.17g", col.f64()[r]);
          out.append(buf);
          break;
        }
        case DataType::kString:
          out.append(col.str()[r]);
          break;
        case DataType::kDate:
          AppendDate(&out, col.i32()[r]);
          break;
        case DataType::kTime:
          AppendTime(&out, col.i32()[r]);
          break;
      }
    }
    out.push_back('\n');
  }
  return std::vector<uint8_t>(out.begin(), out.end());
}

Result<RecordBatch> DecodeText(const uint8_t* data, size_t size,
                               const SchemaPtr& schema,
                               const std::vector<size_t>& projection) {
  // keep[i] = output position of schema column i, or -1 if dropped.
  std::vector<int> keep(schema->num_fields(), -1);
  for (size_t o = 0; o < projection.size(); ++o) {
    if (projection[o] >= schema->num_fields()) {
      return Status::InvalidArgument("projection index out of range");
    }
    keep[projection[o]] = static_cast<int>(o);
  }
  RecordBatch out(schema->Project(projection));

  const char* p = reinterpret_cast<const char*>(data);
  const char* end = p + size;
  const size_t num_fields = schema->num_fields();
  while (p < end) {
    const char* line_end =
        static_cast<const char*>(memchr(p, '\n', end - p));
    if (line_end == nullptr) line_end = end;
    // Tokenize the full line (every byte is touched, as with real text
    // scans), converting only the projected fields.
    const char* field = p;
    for (size_t c = 0; c < num_fields; ++c) {
      const char* field_end;
      if (c + 1 == num_fields) {
        field_end = line_end;
      } else {
        field_end = static_cast<const char*>(
            memchr(field, '|', line_end - field));
        if (field_end == nullptr) {
          return Status::IOError("text: row with too few fields");
        }
      }
      const int out_pos = keep[c];
      if (out_pos >= 0) {
        ColumnVector& dst = out.mutable_column(out_pos);
        switch (schema->field(c).type) {
          case DataType::kInt32: {
            HJ_ASSIGN_OR_RETURN(int64_t v, ParseInt(field, field_end));
            dst.mutable_i32().push_back(static_cast<int32_t>(v));
            break;
          }
          case DataType::kInt64: {
            HJ_ASSIGN_OR_RETURN(int64_t v, ParseInt(field, field_end));
            dst.mutable_i64().push_back(v);
            break;
          }
          case DataType::kFloat64: {
            HJ_ASSIGN_OR_RETURN(double v, ParseDouble(field, field_end));
            dst.mutable_f64().push_back(v);
            break;
          }
          case DataType::kString:
            dst.mutable_str().emplace_back(field, field_end);
            break;
          case DataType::kDate: {
            HJ_ASSIGN_OR_RETURN(int32_t v, ParseDate(field, field_end));
            dst.mutable_i32().push_back(v);
            break;
          }
          case DataType::kTime: {
            HJ_ASSIGN_OR_RETURN(int32_t v, ParseTime(field, field_end));
            dst.mutable_i32().push_back(v);
            break;
          }
        }
      }
      field = field_end + 1;
    }
    p = line_end + 1;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Columnar format
// ---------------------------------------------------------------------------

namespace {

template <typename T>
std::vector<uint8_t> EncodePlainInts(const std::vector<T>& v) {
  std::vector<uint8_t> out(v.size() * sizeof(T));
  std::memcpy(out.data(), v.data(), out.size());
  return out;
}

template <typename T>
std::vector<uint8_t> EncodeRleInts(const std::vector<T>& v) {
  BinaryWriter w(v.size());
  size_t i = 0;
  while (i < v.size()) {
    size_t j = i + 1;
    while (j < v.size() && v[j] == v[i]) ++j;
    w.PutVarint(j - i);
    w.PutSignedVarint(static_cast<int64_t>(v[i]));
    i = j;
  }
  return w.Release();
}

template <typename T>
Result<std::vector<T>> DecodeRleInts(const std::vector<uint8_t>& data,
                                     uint32_t num_rows) {
  std::vector<T> out;
  out.reserve(num_rows);
  BinaryReader r(data);
  while (out.size() < num_rows) {
    HJ_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
    HJ_ASSIGN_OR_RETURN(int64_t value, r.GetSignedVarint());
    if (count == 0 || count > num_rows - out.size()) {
      return Status::IOError("columnar: bad RLE run");
    }
    out.insert(out.end(), count, static_cast<T>(value));
  }
  if (!r.AtEnd()) return Status::IOError("columnar: RLE trailing bytes");
  return out;
}

std::vector<uint8_t> EncodePlainStrings(const std::vector<std::string>& v) {
  size_t total = 0;
  for (const auto& s : v) total += s.size() + 2;
  BinaryWriter w(total);
  for (const auto& s : v) w.PutString(s);
  return w.Release();
}

/// Dictionary encoding; returns nullopt when the dictionary would not help
/// (too many distinct values).
std::optional<std::vector<uint8_t>> EncodeDictStrings(
    const std::vector<std::string>& v) {
  std::unordered_map<std::string_view, uint32_t> dict;
  std::vector<std::string_view> entries;
  std::vector<uint32_t> codes;
  codes.reserve(v.size());
  for (const auto& s : v) {
    auto [it, inserted] = dict.try_emplace(s, dict.size());
    if (inserted) {
      entries.push_back(s);
      // Bail out early when the column is nearly unique.
      if (entries.size() > v.size() / 2 + 16) return std::nullopt;
    }
    codes.push_back(it->second);
  }
  BinaryWriter w;
  w.PutVarint(entries.size());
  for (auto e : entries) w.PutString(e);
  for (uint32_t c : codes) w.PutVarint(c);
  return w.Release();
}

}  // namespace

ColumnChunk EncodeColumnChunk(const ColumnVector& column,
                              const ColumnarWriteOptions& options) {
  ColumnChunk chunk;
  chunk.type = column.type();
  chunk.num_rows = static_cast<uint32_t>(column.size());

  std::vector<uint8_t> encoded;
  switch (column.physical_type()) {
    case PhysicalType::kInt32: {
      encoded = EncodePlainInts(column.i32());
      chunk.encoding = ColEncoding::kPlain;
      if (options.enable_rle) {
        auto rle = EncodeRleInts(column.i32());
        if (rle.size() < encoded.size()) {
          encoded = std::move(rle);
          chunk.encoding = ColEncoding::kRle;
        }
      }
      if (options.write_stats && !column.i32().empty()) {
        auto [mn, mx] =
            std::minmax_element(column.i32().begin(), column.i32().end());
        chunk.has_stats = true;
        chunk.min_val = *mn;
        chunk.max_val = *mx;
      }
      break;
    }
    case PhysicalType::kInt64: {
      encoded = EncodePlainInts(column.i64());
      chunk.encoding = ColEncoding::kPlain;
      if (options.enable_rle) {
        auto rle = EncodeRleInts(column.i64());
        if (rle.size() < encoded.size()) {
          encoded = std::move(rle);
          chunk.encoding = ColEncoding::kRle;
        }
      }
      if (options.write_stats && !column.i64().empty()) {
        auto [mn, mx] =
            std::minmax_element(column.i64().begin(), column.i64().end());
        chunk.has_stats = true;
        chunk.min_val = *mn;
        chunk.max_val = *mx;
      }
      break;
    }
    case PhysicalType::kFloat64: {
      encoded = EncodePlainInts(column.f64());
      chunk.encoding = ColEncoding::kPlain;
      break;
    }
    case PhysicalType::kString: {
      encoded = EncodePlainStrings(column.str());
      chunk.encoding = ColEncoding::kPlain;
      if (options.enable_dictionary) {
        auto dict = EncodeDictStrings(column.str());
        if (dict.has_value() && dict->size() < encoded.size()) {
          encoded = std::move(*dict);
          chunk.encoding = ColEncoding::kDict;
        }
      }
      break;
    }
  }

  if (options.codec != Codec::kNone) {
    auto compressed = Compress(options.codec, encoded.data(), encoded.size());
    if (compressed.size() < encoded.size()) {
      chunk.codec = options.codec;
      chunk.data = std::move(compressed);
      return chunk;
    }
  }
  chunk.codec = Codec::kNone;
  chunk.data = std::move(encoded);
  return chunk;
}

Result<ColumnVector> DecodeColumnChunk(const ColumnChunk& chunk,
                                       DataType type) {
  if (PhysicalTypeOf(type) != PhysicalTypeOf(chunk.type)) {
    return Status::Internal("columnar: chunk type mismatch");
  }
  HJ_ASSIGN_OR_RETURN(
      std::vector<uint8_t> raw,
      Decompress(chunk.codec, chunk.data.data(), chunk.data.size()));

  ColumnVector out(type);
  switch (PhysicalTypeOf(type)) {
    case PhysicalType::kInt32: {
      if (chunk.encoding == ColEncoding::kRle) {
        HJ_ASSIGN_OR_RETURN(std::vector<int32_t> v,
                            DecodeRleInts<int32_t>(raw, chunk.num_rows));
        out.mutable_i32() = std::move(v);
      } else if (chunk.encoding == ColEncoding::kPlain) {
        if (raw.size() != chunk.num_rows * sizeof(int32_t)) {
          return Status::IOError("columnar: bad plain int32 chunk size");
        }
        out.mutable_i32().resize(chunk.num_rows);
        std::memcpy(out.mutable_i32().data(), raw.data(), raw.size());
      } else {
        return Status::IOError("columnar: bad int32 encoding");
      }
      break;
    }
    case PhysicalType::kInt64: {
      if (chunk.encoding == ColEncoding::kRle) {
        HJ_ASSIGN_OR_RETURN(std::vector<int64_t> v,
                            DecodeRleInts<int64_t>(raw, chunk.num_rows));
        out.mutable_i64() = std::move(v);
      } else if (chunk.encoding == ColEncoding::kPlain) {
        if (raw.size() != chunk.num_rows * sizeof(int64_t)) {
          return Status::IOError("columnar: bad plain int64 chunk size");
        }
        out.mutable_i64().resize(chunk.num_rows);
        std::memcpy(out.mutable_i64().data(), raw.data(), raw.size());
      } else {
        return Status::IOError("columnar: bad int64 encoding");
      }
      break;
    }
    case PhysicalType::kFloat64: {
      if (chunk.encoding != ColEncoding::kPlain ||
          raw.size() != chunk.num_rows * sizeof(double)) {
        return Status::IOError("columnar: bad float64 chunk");
      }
      out.mutable_f64().resize(chunk.num_rows);
      std::memcpy(out.mutable_f64().data(), raw.data(), raw.size());
      break;
    }
    case PhysicalType::kString: {
      BinaryReader r(raw);
      auto& v = out.mutable_str();
      v.reserve(chunk.num_rows);
      if (chunk.encoding == ColEncoding::kDict) {
        HJ_ASSIGN_OR_RETURN(uint64_t dict_size, r.GetVarint());
        if (dict_size > chunk.num_rows) {
          return Status::IOError("columnar: dict larger than chunk");
        }
        std::vector<std::string> dict(dict_size);
        for (auto& e : dict) {
          HJ_ASSIGN_OR_RETURN(e, r.GetString());
        }
        for (uint32_t i = 0; i < chunk.num_rows; ++i) {
          HJ_ASSIGN_OR_RETURN(uint64_t code, r.GetVarint());
          if (code >= dict.size()) {
            return Status::IOError("columnar: dict code out of range");
          }
          v.push_back(dict[code]);
        }
      } else if (chunk.encoding == ColEncoding::kPlain) {
        for (uint32_t i = 0; i < chunk.num_rows; ++i) {
          HJ_ASSIGN_OR_RETURN(std::string s, r.GetString());
          v.push_back(std::move(s));
        }
      } else {
        return Status::IOError("columnar: bad string encoding");
      }
      if (!r.AtEnd()) {
        return Status::IOError("columnar: trailing bytes in string chunk");
      }
      break;
    }
  }
  if (out.size() != chunk.num_rows) {
    return Status::IOError("columnar: decoded row count mismatch");
  }
  return out;
}

ColumnarBlock EncodeColumnarBlock(const RecordBatch& batch,
                                  const ColumnarWriteOptions& options) {
  ColumnarBlock block;
  block.num_rows = static_cast<uint32_t>(batch.num_rows());
  block.chunks.reserve(batch.num_columns());
  for (size_t c = 0; c < batch.num_columns(); ++c) {
    block.chunks.push_back(EncodeColumnChunk(batch.column(c), options));
  }
  return block;
}

Result<RecordBatch> DecodeColumnarBlock(
    const ColumnarBlock& block, const SchemaPtr& schema,
    const std::vector<size_t>& projection) {
  if (block.chunks.size() != schema->num_fields()) {
    return Status::Internal("columnar: chunk count != schema fields");
  }
  std::vector<ColumnVector> cols;
  cols.reserve(projection.size());
  for (size_t idx : projection) {
    if (idx >= block.chunks.size()) {
      return Status::InvalidArgument("projection index out of range");
    }
    HJ_ASSIGN_OR_RETURN(
        ColumnVector col,
        DecodeColumnChunk(block.chunks[idx], schema->field(idx).type));
    cols.push_back(std::move(col));
  }
  return RecordBatch(schema->Project(projection), std::move(cols));
}

}  // namespace hybridjoin
