#include "hdfs/namenode.h"

#include <algorithm>

#include "common/check.h"

namespace hybridjoin {

NameNode::NameNode(std::vector<DataNode*> datanodes,
                   uint32_t replication_factor, uint64_t placement_seed)
    : datanodes_(std::move(datanodes)),
      replication_(std::min<uint32_t>(
          std::max<uint32_t>(replication_factor, 1),
          static_cast<uint32_t>(datanodes_.size()))),
      next_disk_(datanodes_.size(), 0),
      rng_(placement_seed) {
  HJ_CHECK(!datanodes_.empty());
}

Status NameNode::CreateFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = files_.try_emplace(path);
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("file '" + path + "' already exists");
  }
  return Status::OK();
}

bool NameNode::FileExists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

Status NameNode::DeleteFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(path) == 0) {
    return Status::NotFound("file '" + path + "' does not exist");
  }
  // Block payloads stay on the DataNodes; a real HDFS would garbage-collect
  // them asynchronously. Fine for a loader-once substrate.
  return Status::OK();
}

Status NameNode::AppendBlock(const std::string& path,
                             std::shared_ptr<const StoredBlock> block) {
  std::vector<ReplicaLocation> replicas;
  uint64_t block_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = files_.find(path);
    if (it == files_.end()) {
      return Status::NotFound("file '" + path + "' does not exist");
    }
    block_id = next_block_id_++;
    // Primary replica: round robin over nodes for even spread.
    const uint32_t primary = next_primary_;
    next_primary_ = (next_primary_ + 1) % datanodes_.size();
    replicas.push_back(
        {primary, next_disk_[primary]++ %
                      datanodes_[primary]->num_disks()});
    // Remaining replicas: random distinct nodes (HDFS default w/o racks).
    while (replicas.size() < replication_) {
      const uint32_t node = static_cast<uint32_t>(
          rng_.Uniform(datanodes_.size()));
      bool dup = false;
      for (const auto& r : replicas) dup |= (r.node == node);
      if (dup) continue;
      replicas.push_back(
          {node, next_disk_[node]++ % datanodes_[node]->num_disks()});
    }
    BlockInfo info;
    info.block_id = block_id;
    info.num_rows = block->num_rows;
    info.byte_size = block->ByteSize();
    info.replicas = replicas;
    it->second.push_back(std::move(info));
  }
  for (const auto& r : replicas) {
    HJ_RETURN_IF_ERROR(
        datanodes_[r.node]->StoreBlock(block_id, r.disk, block));
  }
  return Status::OK();
}

Result<std::vector<BlockInfo>> NameNode::GetBlocks(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return Status::NotFound("file '" + path + "' does not exist");
  }
  return it->second;
}

Result<uint64_t> NameNode::FileSize(const std::string& path) const {
  HJ_ASSIGN_OR_RETURN(std::vector<BlockInfo> blocks, GetBlocks(path));
  uint64_t total = 0;
  for (const auto& b : blocks) total += b.byte_size;
  return total;
}

}  // namespace hybridjoin
