// NameNode: file -> block metadata, replica placement, and the block
// location service JEN's coordinator queries for locality-aware assignment.

#ifndef HYBRIDJOIN_HDFS_NAMENODE_H_
#define HYBRIDJOIN_HDFS_NAMENODE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "hdfs/datanode.h"

namespace hybridjoin {

/// Where one replica of a block lives.
struct ReplicaLocation {
  uint32_t node = 0;
  uint32_t disk = 0;
};

/// Metadata for one block of a file.
struct BlockInfo {
  uint64_t block_id = 0;
  uint32_t num_rows = 0;
  uint64_t byte_size = 0;
  std::vector<ReplicaLocation> replicas;
};

/// The HDFS metadata server. Owns placement policy; actual bytes live on
/// the DataNodes.
class NameNode {
 public:
  /// `datanodes` are borrowed; they must outlive the NameNode.
  NameNode(std::vector<DataNode*> datanodes, uint32_t replication_factor,
           uint64_t placement_seed = 42);

  uint32_t num_datanodes() const {
    return static_cast<uint32_t>(datanodes_.size());
  }
  uint32_t replication_factor() const { return replication_; }

  Status CreateFile(const std::string& path);
  bool FileExists(const std::string& path) const;
  Status DeleteFile(const std::string& path);

  /// Appends a block to `path`, placing `replication_factor` replicas on
  /// distinct nodes (round-robin primary with a randomized second replica,
  /// like HDFS's default policy without rack awareness).
  Status AppendBlock(const std::string& path,
                     std::shared_ptr<const StoredBlock> block);

  /// All blocks of a file, with replica locations.
  Result<std::vector<BlockInfo>> GetBlocks(const std::string& path) const;

  /// Total logical bytes of a file.
  Result<uint64_t> FileSize(const std::string& path) const;

 private:
  std::vector<DataNode*> datanodes_;
  const uint32_t replication_;

  mutable std::mutex mu_;
  std::map<std::string, std::vector<BlockInfo>> files_;
  uint64_t next_block_id_ = 1;
  uint32_t next_primary_ = 0;
  std::vector<uint32_t> next_disk_;  // per node, round robin
  Rng rng_;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_HDFS_NAMENODE_H_
