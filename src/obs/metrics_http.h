// MetricsHttpServer: a minimal embedded HTTP/1.1 endpoint whose only job
// is serving Prometheus scrapes of the warehouse server (GET /metrics →
// 200 text/plain, anything else → 404). Plain POSIX sockets, loopback
// only, one short-lived connection per request — deliberately not a web
// server.
//
// Lifecycle mirrors MetricsSampler: the accept loop polls with a 100 ms
// slice and re-checks a stop flag, so Stop() (and the destructor) joins
// the listener thread within one slice. Port 0 binds an ephemeral port;
// port() reports the bound one, which tests use to scrape their own
// in-process server.

#ifndef HYBRIDJOIN_OBS_METRICS_HTTP_H_
#define HYBRIDJOIN_OBS_METRICS_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "common/status.h"

namespace hybridjoin {
namespace obs {

class MetricsHttpServer {
 public:
  /// `handler` maps a request path to a response body; an empty optional
  /// is modeled as handler returning false (→ 404). Called from the
  /// listener thread, so it must be thread-safe against the rest of the
  /// server (RenderPrometheus over Metrics is).
  using Handler = std::function<bool(const std::string& path,
                                     std::string* body)>;

  explicit MetricsHttpServer(uint16_t port, Handler handler);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  /// Binds 127.0.0.1:`port` and starts the listener thread.
  Status Start();

  /// Stops the listener and joins (idempotent; also called by the dtor).
  void Stop();

  /// The bound port (resolves port 0 after Start), 0 before Start.
  uint16_t port() const { return bound_port_; }

  uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void ListenLoop();

  const uint16_t requested_port_;
  Handler handler_;
  int listen_fd_ = -1;
  uint16_t bound_port_ = 0;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace obs
}  // namespace hybridjoin

#endif  // HYBRIDJOIN_OBS_METRICS_HTTP_H_
