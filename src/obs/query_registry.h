// QueryRegistry: the process-global table of in-flight query executions —
// the data behind SHOW PROCESSLIST and KILL. Every driver execution
// registers itself at ReportBuilder construction (carrying the submitting
// session/ticket/SQL when the server installed a SubmissionScope) and
// unregisters at destruction; between the two, any thread can snapshot the
// live rows (phase, elapsed wall, rows scanned/produced, governor memory,
// spill bytes) or request cooperative cancellation.
//
// Cancellation contract: Cancel(query_id) flips a per-query atomic flag;
// worker threads check it at their natural yield points — Network::Recv's
// poll slices, BatchMorselPipe::Feed, the exchange send loop — via
// CheckCancelled(), which resolves the calling thread's QueryScope id to
// the flag through a thread-local cache (one atomic load on the fast
// path). A cancelled check returns StatusCode::kCancelled, which rides the
// drivers' existing first-error-wins status propagation: workers bail, EOS
// obligations still run (receivers never hang), and the query surfaces as
// a clean Cancelled result with every governor reservation released.
//
// Registration precedes worker spawn and ids are process-unique
// (EngineContext::NextQueryId is process-global), so the thread-local
// cache never goes stale: a cached flag stays valid for as long as any
// thread still carries that QueryScope.

#ifndef HYBRIDJOIN_OBS_QUERY_REGISTRY_H_
#define HYBRIDJOIN_OBS_QUERY_REGISTRY_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/query_scope.h"
#include "common/status.h"
#include "exec/memory_governor.h"

namespace hybridjoin {
namespace obs {

/// One SHOW PROCESSLIST row: a plain-value snapshot of an in-flight query.
/// Safe to hold after the query finishes (no pointers into the execution).
struct LiveQuery {
  uint64_t query_id = 0;
  uint64_t session_id = 0;  ///< 0 when not submitted through the server
  uint64_t ticket_id = 0;
  std::string sql;          ///< empty when not submitted through the server
  std::string algorithm;
  std::string phase;        ///< most recent ReportBuilder::Mark name
  double elapsed_seconds = 0.0;
  int64_t rows_scanned = 0;   ///< edw.tuples_scanned + jen.tuples_scanned
  int64_t rows_produced = 0;  ///< join.output_tuples
  uint64_t mem_used_bytes = 0;
  uint64_t mem_peak_bytes = 0;
  uint64_t mem_budget_bytes = 0;
  int64_t spill_bytes = 0;
  bool cancel_requested = false;
};

/// RAII: tags the next ReportBuilder constructed on this thread (and its
/// execution) with the submitting session/ticket/SQL. The warehouse server
/// installs one around Execute(); nesting keeps the innermost.
class SubmissionScope {
 public:
  struct Info {
    uint64_t session_id = 0;
    uint64_t ticket_id = 0;
    std::string sql;
  };

  SubmissionScope(uint64_t session_id, uint64_t ticket_id, std::string sql)
      : saved_(tls_info_) {
    info_.session_id = session_id;
    info_.ticket_id = ticket_id;
    info_.sql = std::move(sql);
    tls_info_ = &info_;
  }
  ~SubmissionScope() { tls_info_ = saved_; }

  SubmissionScope(const SubmissionScope&) = delete;
  SubmissionScope& operator=(const SubmissionScope&) = delete;

  /// The calling thread's current submission info (nullptr outside any
  /// scope — direct library callers).
  static const Info* Current() { return tls_info_; }

 private:
  static inline thread_local const Info* tls_info_ = nullptr;
  Info info_;
  const Info* saved_;
};

class QueryRegistry {
 public:
  static QueryRegistry& Global();

  QueryRegistry(const QueryRegistry&) = delete;
  QueryRegistry& operator=(const QueryRegistry&) = delete;

  /// Registers an in-flight execution. `metrics` and `governor` must stay
  /// valid until Unregister (ReportBuilder guarantees both); session /
  /// ticket / SQL attribution is read from the calling thread's
  /// SubmissionScope when one is installed.
  void Register(uint64_t query_id, Metrics* metrics, MemoryGovernor* governor,
                const char* algorithm);

  /// Drops the execution. Returns the governor's still-held bytes at the
  /// moment of removal — non-zero means leaked reservations (recorded by
  /// the caller under server.governor_leaked_bytes).
  uint64_t Unregister(uint64_t query_id);

  /// Updates the query's current phase (ReportBuilder::Mark calls this).
  void SetPhase(uint64_t query_id, const std::string& phase);

  /// Requests cooperative cancellation; kNotFound when the query is not
  /// in flight (already finished, or never existed).
  Status Cancel(uint64_t query_id);

  /// Plain-value rows for every in-flight query, ordered by query id. Live
  /// memory readings are taken under the registry lock, so a concurrent
  /// Unregister can never leave a dangling governor read.
  std::vector<LiveQuery> Snapshot() const;

  size_t size() const;

  /// Fast cooperative-cancellation check for the calling thread's current
  /// QueryScope: OK when no query is installed, the query is unknown, or
  /// no cancel was requested; kCancelled once Cancel() ran. One
  /// thread-local compare + one atomic load on the steady-state path.
  static Status CheckCancelled();

  /// Boolean form of CheckCancelled for hot loops.
  static bool IsCancelled();

 private:
  struct Entry {
    uint64_t session_id = 0;
    uint64_t ticket_id = 0;
    std::string sql;
    std::string algorithm;
    std::string phase;
    std::chrono::steady_clock::time_point start;
    Metrics* metrics = nullptr;
    MemoryGovernor* governor = nullptr;
    std::shared_ptr<std::atomic<bool>> cancel;
  };

  QueryRegistry() = default;

  /// Resolves a query id to its cancel flag (nullptr when not in flight).
  std::shared_ptr<std::atomic<bool>> CancelFlag(uint64_t query_id) const;

  mutable std::mutex mu_;
  std::map<uint64_t, Entry> entries_;
};

/// Fixed-width text rendering of a process-list snapshot (the SHOW
/// PROCESSLIST output of the server API and the SQL shell).
std::string RenderProcessListText(const std::vector<LiveQuery>& rows);

}  // namespace obs
}  // namespace hybridjoin

#endif  // HYBRIDJOIN_OBS_QUERY_REGISTRY_H_
