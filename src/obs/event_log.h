// EventLog: the structured (JSON-lines) lifecycle log of the warehouse.
// One line per event, every line carrying a wall-clock timestamp, the event
// name, and the query id it belongs to, so a whole query's life —
// submit → admit (or queue/shed) → phase transitions → adaptive pivots →
// governor spills → finish — can be reconstructed by grepping its id.
//
// The log is a process-global singleton (event emission sites sit deep in
// the join drivers, far from any server object), disabled until Open() is
// called: the enabled check is one relaxed atomic load, so instrumented
// code paths cost nothing when no server asked for a log. Writes append
// one compact JSON object per line under a mutex and flush immediately, so
// an externally tailing process (or a crashed run's post-mortem) sees
// complete lines.

#ifndef HYBRIDJOIN_OBS_EVENT_LOG_H_
#define HYBRIDJOIN_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>

#include "common/status.h"
#include "obs/json.h"

namespace hybridjoin {
namespace obs {

class EventLog {
 public:
  static EventLog& Global();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Opens (truncating) `path` and starts accepting events. Reopening an
  /// already-open log closes the previous file first.
  Status Open(const std::string& path);

  /// Stops accepting events and closes the file. Safe when not open.
  void Close();

  /// Whether events are currently being persisted (one atomic load).
  bool enabled() const {
    return enabled_.load(std::memory_order_acquire);
  }

  /// Appends `{"ts_us":..., "event":event, "query_id":query_id, ...fields}`
  /// as one line. `fields` must be a JSON object (or null for none);
  /// "ts_us"/"event"/"query_id" members in it are overwritten. No-op when
  /// the log is not open.
  void Emit(const std::string& event, uint64_t query_id,
            JsonValue fields = JsonValue::Object());

  /// Lines written since Open (diagnostic, for tests).
  uint64_t lines_written() const {
    return lines_.load(std::memory_order_relaxed);
  }

 private:
  EventLog() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> lines_{0};
  std::mutex mu_;  ///< guards file_ and serializes line writes
  std::FILE* file_ = nullptr;
};

}  // namespace obs
}  // namespace hybridjoin

#endif  // HYBRIDJOIN_OBS_EVENT_LOG_H_
