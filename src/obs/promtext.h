// Prometheus text exposition (format 0.0.4) of a Metrics registry, plus a
// strict validator used by tests and the CI scrape job. Engine metric
// names ("join.spill_bytes") map to Prometheus names by replacing '.' with
// '_' and prefixing "hj_"; monotonic counters gain the conventional
// "_total" suffix and TYPE counter, known last-value/maximum series render
// as TYPE gauge, and every LatencyHistogram renders as a TYPE histogram
// with cumulative `le` buckets (from LatencyHistogram::CountAtOrBelowMicros
// at fixed bounds), the mandatory +Inf bucket, and _sum/_count in seconds.

#ifndef HYBRIDJOIN_OBS_PROMTEXT_H_
#define HYBRIDJOIN_OBS_PROMTEXT_H_

#include <string>

#include "common/metrics.h"
#include "common/status.h"

namespace hybridjoin {
namespace obs {

/// Whether the engine series renders as a Prometheus gauge (last-value or
/// maximum semantics) rather than a counter. Exposed for tests.
bool IsGaugeMetric(const std::string& engine_name);

/// Prometheus metric name for an engine series (sanitized, "hj_" prefix,
/// no "_total" suffix — the renderer appends that for counters).
std::string PrometheusName(const std::string& engine_name);

/// Renders the full exposition: every counter and histogram currently in
/// `metrics`, with HELP/TYPE headers.
std::string RenderPrometheus(Metrics& metrics);

/// Validates Prometheus text exposition rules: metric-name and label
/// charset, HELP/TYPE preceding their samples, TYPE-consistent suffixes,
/// parseable sample values, histogram bucket monotonicity (cumulative `le`
/// counts never decrease), a +Inf bucket present and equal to _count.
Status ValidatePrometheus(const std::string& text);

}  // namespace obs
}  // namespace hybridjoin

#endif  // HYBRIDJOIN_OBS_PROMTEXT_H_
