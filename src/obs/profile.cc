#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json.h"

namespace hybridjoin {
namespace obs {

namespace {

struct PhaseRule {
  const char* name;
  const char* phase;
};

/// Exact metric/span name -> canonical phase. Names not listed fall through
/// to the prefix rules below.
constexpr PhaseRule kExactRules[] = {
    {"jen.tuples_scanned", "scan"},
    {"jen.tuples_after_filter", "scan"},
    {"edw.tuples_scanned", "scan"},
    {"edw.tuples_after_filter", "scan"},
    {"jen.scan", "scan"},
    {"jen.read_block", "scan"},
    {"jen.queue_wait", "scan"},
    {"edw.scan", "scan"},
    {"jen.tuples_shuffled", "shuffle"},
    {"edw.tuples_shuffled_internal", "shuffle"},
    {"jen.shuffle", "shuffle"},
    {"jen.tuples_sent_to_db", "transfer"},
    {"edw.tuples_sent_to_hdfs", "transfer"},
    {"edw.ingest", "transfer"},
    {"edw.bloom_build", "bloom"},
    {"jen.build", "build"},
    {"join.output_tuples", "probe"},
    {"jen.probe", "probe"},
    {"edw.join", "probe"},
    {"jen.aggregate", "aggregate"},
    {"join.spill_bytes", "spill"},
    {"join.spill_bytes_read", "spill"},
    {"join.spill_partitions", "spill"},
    {"join.repartition_depth", "spill"},
    {"join.mem_peak_bytes", "driver"},
    {"shuffle.hot_keys", "shuffle"},
    {"shuffle.broadcast_bytes", "shuffle"},
    {"shuffle.hot_rows_build", "shuffle"},
    {"shuffle.hot_rows_probe", "shuffle"},
    {"jen.worker_wall_us", "driver"},
};

struct PrefixRule {
  const char* prefix;
  const char* phase;
};

constexpr PrefixRule kPrefixRules[] = {
    {"bloom.", "bloom"},   {"semijoin.", "bloom"}, {"join.ht_", "build"},
    {"join.build_", "build"}, {"hdfs.", "scan"},   {"net.", "transfer"},
    {"driver.", "driver"}, {"advisor.", "driver"},
};

struct GroupStats {
  int64_t min = 0;
  int64_t max = 0;
  double mean = 0.0;
  double median = 0.0;
  double skew = 0.0;
};

GroupStats StatsOver(const std::map<std::string, int64_t>& per_node) {
  GroupStats s;
  if (per_node.empty()) return s;
  std::vector<int64_t> values;
  values.reserve(per_node.size());
  for (const auto& [node, v] : per_node) values.push_back(v);
  std::sort(values.begin(), values.end());
  s.min = values.front();
  s.max = values.back();
  double sum = 0.0;
  for (const int64_t v : values) sum += static_cast<double>(v);
  s.mean = sum / static_cast<double>(values.size());
  const size_t n = values.size();
  s.median = (n % 2 == 1)
                 ? static_cast<double>(values[n / 2])
                 : (static_cast<double>(values[n / 2 - 1]) +
                    static_cast<double>(values[n / 2])) /
                       2.0;
  s.skew = s.mean > 0.0 ? static_cast<double>(s.max) / s.mean : 0.0;
  return s;
}

std::string FormatSeconds(double seconds) {
  char buf[32];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.0fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

std::string FormatSkew(double skew) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%.2fx", skew);
  return buf;
}

JsonValue SummaryToJson(const HistogramSummary& s) {
  JsonValue o = JsonValue::Object();
  o.Set("count", JsonValue::Int(s.count));
  o.Set("total_seconds", JsonValue::Number(s.total_seconds));
  o.Set("min_seconds", JsonValue::Number(s.min_seconds));
  o.Set("max_seconds", JsonValue::Number(s.max_seconds));
  o.Set("p50_seconds", JsonValue::Number(s.p50_seconds));
  o.Set("p95_seconds", JsonValue::Number(s.p95_seconds));
  o.Set("p99_seconds", JsonValue::Number(s.p99_seconds));
  return o;
}

HistogramSummary SummaryFromJson(const JsonValue& o) {
  HistogramSummary s;
  s.count = o.GetInt("count");
  s.total_seconds = o.GetDouble("total_seconds");
  s.min_seconds = o.GetDouble("min_seconds");
  s.max_seconds = o.GetDouble("max_seconds");
  s.p50_seconds = o.GetDouble("p50_seconds");
  s.p95_seconds = o.GetDouble("p95_seconds");
  s.p99_seconds = o.GetDouble("p99_seconds");
  return s;
}

}  // namespace

const std::vector<std::string>& CanonicalPhases() {
  static const std::vector<std::string> kPhases = {
      "bloom", "scan",  "shuffle", "transfer", "build",
      "probe", "aggregate", "spill", "driver",  "other"};
  return kPhases;
}

const char* PhaseForMetric(const std::string& name) {
  for (const PhaseRule& rule : kExactRules) {
    if (name == rule.name) return rule.phase;
  }
  for (const PrefixRule& rule : kPrefixRules) {
    if (name.rfind(rule.prefix, 0) == 0) return rule.phase;
  }
  return "other";
}

const ProfileCounterRow* QueryProfile::FindCounter(
    const std::string& phase, const std::string& name) const {
  for (const ProfilePhase& p : phases) {
    if (p.name != phase) continue;
    for (const ProfileCounterRow& row : p.counters) {
      if (row.name == name) return &row;
    }
  }
  return nullptr;
}

QueryProfile AssembleProfile(uint64_t query_id, const std::string& algorithm,
                             double wall_seconds,
                             const std::vector<NodeProfileSnapshot>& nodes,
                             const std::string& trace_file) {
  QueryProfile profile;
  profile.query_id = query_id;
  profile.algorithm = algorithm;
  profile.wall_seconds = wall_seconds;
  profile.trace_file = trace_file;

  // phase -> name -> row, accumulated across nodes. A node may report the
  // same counter under "" and under an explicit phase that maps to the
  // same canonical name; those merge here (sum, or max for gauges).
  std::map<std::string, std::map<std::string, ProfileCounterRow>> counters;
  std::map<std::string,
           std::map<std::string, std::map<std::string, HistogramSummary>>>
      histograms;

  for (const NodeProfileSnapshot& snap : nodes) {
    // A node may ship more than one snapshot per query (the adaptive driver
    // snapshots the shared prefix and the chosen driver separately, each a
    // delta); its wall is the sum of its phases.
    profile.worker_wall_us[snap.node] += snap.wall_us;
    for (const auto& [key, counter] : snap.metrics.counters) {
      const std::string phase =
          key.first.empty() ? PhaseForMetric(key.second) : key.first;
      ProfileCounterRow& row = counters[phase][key.second];
      row.name = key.second;
      row.gauge = row.gauge || counter.gauge;
      int64_t& cell = row.per_node[snap.node];
      if (counter.gauge) {
        cell = std::max(cell, counter.value);
      } else {
        cell += counter.value;
      }
    }
    for (const auto& [key, summary] : snap.metrics.histograms) {
      const std::string phase =
          key.first.empty() ? PhaseForMetric(key.second) : key.first;
      HistogramSummary& cell = histograms[phase][key.second][snap.node];
      if (cell.count == 0) {
        cell = summary;
      } else if (summary.count > 0) {
        // Merge delta snapshots from the same node: counts and totals are
        // exact; percentiles are count-weighted approximations (the raw
        // buckets never cross the wire).
        const double w_old = static_cast<double>(cell.count);
        const double w_new = static_cast<double>(summary.count);
        const double w = w_old + w_new;
        cell.p50_seconds =
            (cell.p50_seconds * w_old + summary.p50_seconds * w_new) / w;
        cell.p95_seconds =
            (cell.p95_seconds * w_old + summary.p95_seconds * w_new) / w;
        cell.p99_seconds =
            (cell.p99_seconds * w_old + summary.p99_seconds * w_new) / w;
        cell.min_seconds = std::min(cell.min_seconds, summary.min_seconds);
        cell.max_seconds = std::max(cell.max_seconds, summary.max_seconds);
        cell.count += summary.count;
        cell.total_seconds += summary.total_seconds;
      }
    }
  }

  for (auto& [phase, rows] : counters) {
    for (auto& [name, row] : rows) {
      const GroupStats stats = StatsOver(row.per_node);
      row.min = stats.min;
      row.max = stats.max;
      row.mean = stats.mean;
      row.median = stats.median;
      row.skew = stats.skew;
      row.total = 0;
      for (const auto& [node, v] : row.per_node) {
        row.total = row.gauge ? std::max(row.total, v) : row.total + v;
      }
    }
  }

  const GroupStats wall_stats = StatsOver(profile.worker_wall_us);
  profile.worker_wall_skew = wall_stats.skew;

  for (const std::string& phase : CanonicalPhases()) {
    auto counter_it = counters.find(phase);
    auto hist_it = histograms.find(phase);
    if (counter_it == counters.end() && hist_it == histograms.end()) {
      continue;
    }
    ProfilePhase p;
    p.name = phase;
    if (counter_it != counters.end()) {
      for (auto& [name, row] : counter_it->second) {
        p.counters.push_back(std::move(row));
      }
    }
    if (hist_it != histograms.end()) {
      for (auto& [name, per_node] : hist_it->second) {
        ProfileHistogramRow row;
        row.name = name;
        row.per_node = std::move(per_node);
        p.histograms.push_back(std::move(row));
      }
    }
    profile.phases.push_back(std::move(p));
  }
  return profile;
}

std::string QueryProfile::ToText() const {
  std::ostringstream out;
  out << "query profile: id=" << query_id << "  algorithm=" << algorithm
      << "  wall=" << FormatSeconds(wall_seconds) << "  nodes="
      << worker_wall_us.size() << "\n";

  if (!worker_wall_us.empty()) {
    const GroupStats stats = StatsOver(worker_wall_us);
    std::string straggler;
    for (const auto& [node, wall] : worker_wall_us) {
      if (wall == stats.max) straggler = node;
    }
    out << "├─ workers: wall mean=" << FormatSeconds(stats.mean * 1e-6)
        << " max=" << FormatSeconds(static_cast<double>(stats.max) * 1e-6)
        << " (" << straggler << ")  skew=" << FormatSkew(stats.skew) << "\n";
    if (worker_wall_us.size() <= 8) {
      out << "│    per-node:";
      for (const auto& [node, wall] : worker_wall_us) {
        out << " " << node << "="
            << FormatSeconds(static_cast<double>(wall) * 1e-6);
      }
      out << "\n";
    }
  }

  for (size_t i = 0; i < phases.size(); ++i) {
    const ProfilePhase& phase = phases[i];
    const bool last_phase = (i + 1 == phases.size()) && trace_file.empty();
    const char* stem = last_phase ? "└─" : "├─";
    const char* bar = last_phase ? "   " : "│  ";
    out << stem << " phase " << phase.name << "\n";
    const size_t rows = phase.counters.size() + phase.histograms.size();
    size_t r = 0;
    for (const ProfileCounterRow& row : phase.counters) {
      const bool last_row = ++r == rows;
      out << bar << (last_row ? "└─ " : "├─ ") << row.name
          << "  total=" << row.total;
      if (row.per_node.size() > 1) {
        out << "  min=" << row.min << " med=" << row.median
            << " max=" << row.max << "  skew=" << FormatSkew(row.skew);
      }
      if (row.gauge) out << "  (gauge: max over nodes)";
      out << "\n";
      if (row.per_node.size() > 1 && row.per_node.size() <= 8) {
        out << bar << (last_row ? "   " : "│  ") << "  per-node:";
        for (const auto& [node, v] : row.per_node) {
          out << " " << node << "=" << v;
        }
        out << "\n";
      }
    }
    for (const ProfileHistogramRow& row : phase.histograms) {
      const bool last_row = ++r == rows;
      out << bar << (last_row ? "└─ " : "├─ ") << row.name << " (latency)";
      if (row.per_node.size() <= 8) {
        for (const auto& [node, s] : row.per_node) {
          out << "  " << node << ": n=" << s.count
              << " p95=" << FormatSeconds(s.p95_seconds)
              << " total=" << FormatSeconds(s.total_seconds);
        }
      } else {
        int64_t n = 0;
        double total = 0.0;
        for (const auto& [node, s] : row.per_node) {
          n += s.count;
          total += s.total_seconds;
        }
        out << "  " << row.per_node.size() << " nodes, n=" << n
            << " total=" << FormatSeconds(total);
      }
      out << "\n";
    }
  }
  if (!trace_file.empty()) {
    out << "└─ trace: " << trace_file << "\n";
  }
  return out.str();
}

std::string QueryProfile::ToJson() const {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", JsonValue::Int(1));
  doc.Set("query_id", JsonValue::Int(static_cast<int64_t>(query_id)));
  doc.Set("algorithm", JsonValue::Str(algorithm));
  doc.Set("wall_seconds", JsonValue::Number(wall_seconds));
  doc.Set("trace_file", JsonValue::Str(trace_file));

  JsonValue workers = JsonValue::Object();
  JsonValue wall = JsonValue::Object();
  for (const auto& [node, us] : worker_wall_us) {
    wall.Set(node, JsonValue::Int(us));
  }
  workers.Set("wall_us", std::move(wall));
  workers.Set("skew", JsonValue::Number(worker_wall_skew));
  doc.Set("workers", std::move(workers));

  JsonValue phase_arr = JsonValue::Array();
  for (const ProfilePhase& phase : phases) {
    JsonValue p = JsonValue::Object();
    p.Set("name", JsonValue::Str(phase.name));
    JsonValue counter_arr = JsonValue::Array();
    for (const ProfileCounterRow& row : phase.counters) {
      JsonValue c = JsonValue::Object();
      c.Set("name", JsonValue::Str(row.name));
      c.Set("gauge", JsonValue::Bool(row.gauge));
      c.Set("total", JsonValue::Int(row.total));
      c.Set("min", JsonValue::Int(row.min));
      c.Set("max", JsonValue::Int(row.max));
      c.Set("mean", JsonValue::Number(row.mean));
      c.Set("median", JsonValue::Number(row.median));
      c.Set("skew", JsonValue::Number(row.skew));
      JsonValue per_node = JsonValue::Object();
      for (const auto& [node, v] : row.per_node) {
        per_node.Set(node, JsonValue::Int(v));
      }
      c.Set("per_node", std::move(per_node));
      counter_arr.Append(std::move(c));
    }
    p.Set("counters", std::move(counter_arr));
    JsonValue hist_arr = JsonValue::Array();
    for (const ProfileHistogramRow& row : phase.histograms) {
      JsonValue h = JsonValue::Object();
      h.Set("name", JsonValue::Str(row.name));
      JsonValue per_node = JsonValue::Object();
      for (const auto& [node, s] : row.per_node) {
        per_node.Set(node, SummaryToJson(s));
      }
      h.Set("per_node", std::move(per_node));
      hist_arr.Append(std::move(h));
    }
    p.Set("histograms", std::move(hist_arr));
    phase_arr.Append(std::move(p));
  }
  doc.Set("phases", std::move(phase_arr));

  JsonValue totals = JsonValue::Object();
  for (const auto& [name, v] : global_counters) {
    totals.Set(name, JsonValue::Int(v));
  }
  doc.Set("counters_total", std::move(totals));

  JsonValue bytes = JsonValue::Object();
  for (const auto& [name, v] : network_bytes) {
    bytes.Set(name, JsonValue::Int(v));
  }
  doc.Set("network_bytes", std::move(bytes));

  JsonValue spans = JsonValue::Object();
  for (const auto& [name, s] : span_histograms) {
    spans.Set(name, SummaryToJson(s));
  }
  doc.Set("span_histograms", std::move(spans));

  return doc.Dump(2) + "\n";
}

Status QueryProfile::WriteJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IOError("could not open '" + path + "' for writing");
  }
  out << ToJson();
  out.close();
  if (!out.good()) {
    return Status::IOError("failed writing profile to '" + path + "'");
  }
  return Status::OK();
}

Result<QueryProfile> QueryProfile::FromJson(const std::string& text) {
  HJ_ASSIGN_OR_RETURN(JsonValue doc, JsonValue::Parse(text));
  if (!doc.is_object()) {
    return Status::InvalidArgument("profile JSON: not an object");
  }
  const int64_t version = doc.GetInt("schema_version", -1);
  if (version != 1) {
    return Status::InvalidArgument("profile JSON: unsupported schema_version " +
                                   std::to_string(version));
  }
  QueryProfile p;
  p.query_id = static_cast<uint64_t>(doc.GetInt("query_id"));
  p.algorithm = doc.GetString("algorithm");
  p.wall_seconds = doc.GetDouble("wall_seconds");
  p.trace_file = doc.GetString("trace_file");

  if (const JsonValue* workers = doc.Find("workers"); workers != nullptr) {
    if (const JsonValue* wall = workers->Find("wall_us"); wall != nullptr) {
      for (const auto& [node, v] : wall->members()) {
        p.worker_wall_us[node] = v.AsInt();
      }
    }
    p.worker_wall_skew = workers->GetDouble("skew");
  }

  if (const JsonValue* phases = doc.Find("phases");
      phases != nullptr && phases->is_array()) {
    for (const JsonValue& pj : phases->items()) {
      ProfilePhase phase;
      phase.name = pj.GetString("name");
      if (const JsonValue* counters = pj.Find("counters");
          counters != nullptr) {
        for (const JsonValue& cj : counters->items()) {
          ProfileCounterRow row;
          row.name = cj.GetString("name");
          row.gauge = cj.GetBool("gauge");
          row.total = cj.GetInt("total");
          row.min = cj.GetInt("min");
          row.max = cj.GetInt("max");
          row.mean = cj.GetDouble("mean");
          row.median = cj.GetDouble("median");
          row.skew = cj.GetDouble("skew");
          if (const JsonValue* per_node = cj.Find("per_node");
              per_node != nullptr) {
            for (const auto& [node, v] : per_node->members()) {
              row.per_node[node] = v.AsInt();
            }
          }
          phase.counters.push_back(std::move(row));
        }
      }
      if (const JsonValue* hists = pj.Find("histograms"); hists != nullptr) {
        for (const JsonValue& hj : hists->items()) {
          ProfileHistogramRow row;
          row.name = hj.GetString("name");
          if (const JsonValue* per_node = hj.Find("per_node");
              per_node != nullptr) {
            for (const auto& [node, v] : per_node->members()) {
              row.per_node[node] = SummaryFromJson(v);
            }
          }
          phase.histograms.push_back(std::move(row));
        }
      }
      p.phases.push_back(std::move(phase));
    }
  }

  if (const JsonValue* totals = doc.Find("counters_total");
      totals != nullptr) {
    for (const auto& [name, v] : totals->members()) {
      p.global_counters[name] = v.AsInt();
    }
  }
  if (const JsonValue* bytes = doc.Find("network_bytes"); bytes != nullptr) {
    for (const auto& [name, v] : bytes->members()) {
      p.network_bytes[name] = v.AsInt();
    }
  }
  if (const JsonValue* spans = doc.Find("span_histograms");
      spans != nullptr) {
    for (const auto& [name, v] : spans->members()) {
      p.span_histograms[name] = SummaryFromJson(v);
    }
  }
  return p;
}

}  // namespace obs
}  // namespace hybridjoin
