#include "obs/query_registry.h"

#include <algorithm>
#include <cstdio>

#include "exec/spill.h"

namespace hybridjoin {
namespace obs {

namespace {

// Thread-local cancel-flag cache: resolving QueryScope::Current() through
// the registry map on every morsel/recv would serialize all workers on the
// registry mutex. Instead each thread remembers the last (query id → flag)
// pair it resolved; ids are process-unique, so a cached flag can never be
// re-validated against the wrong query.
struct CancelCache {
  uint64_t query_id = 0;
  std::shared_ptr<std::atomic<bool>> flag;
};
thread_local CancelCache tls_cancel_cache;

}  // namespace

QueryRegistry& QueryRegistry::Global() {
  static QueryRegistry* registry = new QueryRegistry();
  return *registry;
}

void QueryRegistry::Register(uint64_t query_id, Metrics* metrics,
                             MemoryGovernor* governor,
                             const char* algorithm) {
  Entry entry;
  if (const SubmissionScope::Info* info = SubmissionScope::Current()) {
    entry.session_id = info->session_id;
    entry.ticket_id = info->ticket_id;
    entry.sql = info->sql;
  }
  entry.algorithm = algorithm != nullptr ? algorithm : "";
  entry.phase = "init";
  entry.start = std::chrono::steady_clock::now();
  entry.metrics = metrics;
  entry.governor = governor;
  entry.cancel = std::make_shared<std::atomic<bool>>(false);
  std::lock_guard<std::mutex> lock(mu_);
  entries_[query_id] = std::move(entry);
}

uint64_t QueryRegistry::Unregister(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(query_id);
  if (it == entries_.end()) return 0;
  const uint64_t leaked =
      it->second.governor != nullptr ? it->second.governor->used() : 0;
  entries_.erase(it);
  return leaked;
}

void QueryRegistry::SetPhase(uint64_t query_id, const std::string& phase) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(query_id);
  if (it != entries_.end()) it->second.phase = phase;
}

Status QueryRegistry::Cancel(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(query_id);
  if (it == entries_.end()) {
    return Status::NotFound("no in-flight query with id " +
                            std::to_string(query_id));
  }
  it->second.cancel->store(true, std::memory_order_relaxed);
  return Status::OK();
}

std::vector<LiveQuery> QueryRegistry::Snapshot() const {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LiveQuery> rows;
  rows.reserve(entries_.size());
  for (const auto& [query_id, entry] : entries_) {
    LiveQuery row;
    row.query_id = query_id;
    row.session_id = entry.session_id;
    row.ticket_id = entry.ticket_id;
    row.sql = entry.sql;
    row.algorithm = entry.algorithm;
    row.phase = entry.phase;
    row.elapsed_seconds =
        std::chrono::duration<double>(now - entry.start).count();
    if (entry.metrics != nullptr) {
      const auto totals = entry.metrics->ScopedQueryTotals(query_id);
      const auto leaf = [&totals](const char* name) -> int64_t {
        auto it = totals.find(name);
        return it != totals.end() ? it->second : 0;
      };
      row.rows_scanned = leaf(metric::kDbTuplesScanned) +
                         leaf(metric::kHdfsTuplesScanned);
      row.rows_produced = leaf(metric::kJoinOutputTuples);
      row.spill_bytes = leaf(metric::kSpillBytesWritten);
    }
    if (entry.governor != nullptr) {
      row.mem_used_bytes = entry.governor->used();
      row.mem_peak_bytes = entry.governor->peak();
      row.mem_budget_bytes = entry.governor->budget();
    }
    row.cancel_requested = entry.cancel->load(std::memory_order_relaxed);
    rows.push_back(std::move(row));
  }
  return rows;
}

size_t QueryRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::shared_ptr<std::atomic<bool>> QueryRegistry::CancelFlag(
    uint64_t query_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(query_id);
  return it != entries_.end() ? it->second.cancel : nullptr;
}

Status QueryRegistry::CheckCancelled() {
  if (!IsCancelled()) return Status::OK();
  return Status::Cancelled("query " +
                           std::to_string(QueryScope::Current()) +
                           " cancelled by KILL");
}

bool QueryRegistry::IsCancelled() {
  const uint64_t query_id = QueryScope::Current();
  if (query_id == 0) return false;
  CancelCache& cache = tls_cancel_cache;
  if (cache.query_id != query_id) {
    cache.query_id = query_id;
    cache.flag = Global().CancelFlag(query_id);
  }
  return cache.flag != nullptr &&
         cache.flag->load(std::memory_order_relaxed);
}

std::string RenderProcessListText(const std::vector<LiveQuery>& rows) {
  std::string out;
  char line[512];
  std::snprintf(line, sizeof(line),
                "%-6s %-8s %-8s %-22s %-14s %9s %12s %12s %10s %10s %-6s "
                "%s\n",
                "QUERY", "SESSION", "TICKET", "ALGORITHM", "PHASE",
                "ELAPSED", "SCANNED", "PRODUCED", "MEM_MB", "SPILL_MB",
                "KILL?", "SQL");
  out += line;
  for (const LiveQuery& q : rows) {
    std::string sql = q.sql;
    std::replace(sql.begin(), sql.end(), '\n', ' ');
    if (sql.size() > 80) sql = sql.substr(0, 77) + "...";
    std::snprintf(
        line, sizeof(line),
        "%-6llu %-8llu %-8llu %-22s %-14s %8.2fs %12lld %12lld %10.1f "
        "%10.1f %-6s %s\n",
        static_cast<unsigned long long>(q.query_id),
        static_cast<unsigned long long>(q.session_id),
        static_cast<unsigned long long>(q.ticket_id), q.algorithm.c_str(),
        q.phase.c_str(), q.elapsed_seconds,
        static_cast<long long>(q.rows_scanned),
        static_cast<long long>(q.rows_produced),
        static_cast<double>(q.mem_used_bytes) / (1024.0 * 1024.0),
        static_cast<double>(q.spill_bytes) / (1024.0 * 1024.0),
        q.cancel_requested ? "yes" : "no", sql.c_str());
    out += line;
  }
  if (rows.empty()) out += "(no queries in flight)\n";
  return out;
}

}  // namespace obs
}  // namespace hybridjoin
