#include "obs/metric_scope.h"

#include "common/binary_io.h"

namespace hybridjoin {
namespace obs {

namespace {

constexpr uint8_t kWireVersion = 1;

void PutSummary(BinaryWriter* w, const HistogramSummary& s) {
  w->PutI64(s.count);
  w->PutF64(s.total_seconds);
  w->PutF64(s.min_seconds);
  w->PutF64(s.max_seconds);
  w->PutF64(s.p50_seconds);
  w->PutF64(s.p95_seconds);
  w->PutF64(s.p99_seconds);
}

Result<HistogramSummary> GetSummary(BinaryReader* r) {
  HistogramSummary s;
  HJ_ASSIGN_OR_RETURN(s.count, r->GetI64());
  HJ_ASSIGN_OR_RETURN(s.total_seconds, r->GetF64());
  HJ_ASSIGN_OR_RETURN(s.min_seconds, r->GetF64());
  HJ_ASSIGN_OR_RETURN(s.max_seconds, r->GetF64());
  HJ_ASSIGN_OR_RETURN(s.p50_seconds, r->GetF64());
  HJ_ASSIGN_OR_RETURN(s.p95_seconds, r->GetF64());
  HJ_ASSIGN_OR_RETURN(s.p99_seconds, r->GetF64());
  return s;
}

}  // namespace

NodeProfileSnapshot SnapshotNodeProfile(Metrics* metrics, NodeId node,
                                        int64_t wall_us) {
  NodeProfileSnapshot snap;
  snap.node = node.ToString();
  snap.wall_us = wall_us;
  snap.metrics = metrics->ScopedSnapshot(MetricNodeKey(node));
  return snap;
}

std::vector<uint8_t> SerializeNodeProfile(
    const NodeProfileSnapshot& snapshot) {
  BinaryWriter w;
  w.PutU8(kWireVersion);
  w.PutString(snapshot.node);
  w.PutI64(snapshot.wall_us);
  w.PutVarint(snapshot.metrics.counters.size());
  for (const auto& [key, counter] : snapshot.metrics.counters) {
    w.PutString(key.first);
    w.PutString(key.second);
    w.PutI64(counter.value);
    w.PutU8(counter.gauge ? 1 : 0);
  }
  w.PutVarint(snapshot.metrics.histograms.size());
  for (const auto& [key, summary] : snapshot.metrics.histograms) {
    w.PutString(key.first);
    w.PutString(key.second);
    PutSummary(&w, summary);
  }
  return w.Release();
}

Result<NodeProfileSnapshot> DeserializeNodeProfile(
    const std::vector<uint8_t>& bytes) {
  BinaryReader r(bytes);
  HJ_ASSIGN_OR_RETURN(uint8_t version, r.GetU8());
  if (version != kWireVersion) {
    return Status::InvalidArgument("node profile: unknown wire version " +
                                   std::to_string(version));
  }
  NodeProfileSnapshot snap;
  HJ_ASSIGN_OR_RETURN(snap.node, r.GetString());
  HJ_ASSIGN_OR_RETURN(snap.wall_us, r.GetI64());
  HJ_ASSIGN_OR_RETURN(uint64_t num_counters, r.GetVarint());
  for (uint64_t i = 0; i < num_counters; ++i) {
    HJ_ASSIGN_OR_RETURN(std::string phase, r.GetString());
    HJ_ASSIGN_OR_RETURN(std::string name, r.GetString());
    ScopedCounter c;
    HJ_ASSIGN_OR_RETURN(c.value, r.GetI64());
    HJ_ASSIGN_OR_RETURN(uint8_t gauge, r.GetU8());
    c.gauge = gauge != 0;
    snap.metrics.counters[{std::move(phase), std::move(name)}] = c;
  }
  HJ_ASSIGN_OR_RETURN(uint64_t num_histograms, r.GetVarint());
  for (uint64_t i = 0; i < num_histograms; ++i) {
    HJ_ASSIGN_OR_RETURN(std::string phase, r.GetString());
    HJ_ASSIGN_OR_RETURN(std::string name, r.GetString());
    HJ_ASSIGN_OR_RETURN(HistogramSummary summary, GetSummary(&r));
    snap.metrics.histograms[{std::move(phase), std::move(name)}] = summary;
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("node profile: trailing bytes");
  }
  return snap;
}

}  // namespace obs
}  // namespace hybridjoin
