#include "obs/timeseries.h"

namespace hybridjoin {
namespace obs {

namespace {
int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

MetricsSampler::MetricsSampler(Metrics* metrics, TimeseriesConfig config)
    : metrics_(metrics), config_(std::move(config)) {}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::Start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (thread_.joinable()) return;
  stop_requested_ = false;
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { ThreadMain(); });
}

void MetricsSampler::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    if (!thread_.joinable()) return;
    stop_requested_ = true;
    stop_cv_.notify_all();
    to_join = std::move(thread_);
  }
  to_join.join();
  running_.store(false, std::memory_order_relaxed);
  // Final sample after the join: the rings (and any on_sample sink, e.g.
  // the server's metrics_out file) reflect the terminal state even when
  // the lifetime was shorter than one sample interval.
  SampleOnce();
  if (on_sample_) on_sample_();
}

void MetricsSampler::ThreadMain() {
  std::unique_lock<std::mutex> lock(thread_mu_);
  while (!stop_requested_) {
    // Sample outside the lifecycle lock so a concurrent Stop() is never
    // blocked behind a registry walk.
    lock.unlock();
    SampleOnce();
    if (on_sample_) on_sample_();
    lock.lock();
    stop_cv_.wait_for(lock, config_.sample_interval,
                      [this] { return stop_requested_; });
  }
}

void MetricsSampler::SampleOnce() {
  const int64_t t_us = NowMicros();
  const auto counters = metrics_->Snapshot();
  const auto histograms = metrics_->HistogramSnapshot();
  std::lock_guard<std::mutex> lock(series_mu_);
  for (const auto& [name, value] : counters) {
    auto& ring = counter_series_[name];
    ring.push_back({t_us, value});
    while (ring.size() > config_.ring_capacity) ring.pop_front();
  }
  for (const auto& [name, summary] : histograms) {
    auto& ring = histogram_series_[name];
    ring.push_back({t_us, summary});
    while (ring.size() > config_.ring_capacity) ring.pop_front();
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<SeriesPoint> MetricsSampler::CounterSeries(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(series_mu_);
  auto it = counter_series_.find(name);
  if (it == counter_series_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

std::vector<HistogramPoint> MetricsSampler::HistogramSeries(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(series_mu_);
  auto it = histogram_series_.find(name);
  if (it == histogram_series_.end()) return {};
  return {it->second.begin(), it->second.end()};
}

double MetricsSampler::RatePerSecond(const std::string& name) const {
  std::lock_guard<std::mutex> lock(series_mu_);
  auto it = counter_series_.find(name);
  if (it == counter_series_.end() || it->second.size() < 2) return 0.0;
  const SeriesPoint& a = it->second[it->second.size() - 2];
  const SeriesPoint& b = it->second.back();
  if (b.t_us <= a.t_us) return 0.0;
  return static_cast<double>(b.value - a.value) /
         (static_cast<double>(b.t_us - a.t_us) * 1e-6);
}

std::map<std::string, int64_t> MetricsSampler::LatestCounters() const {
  std::lock_guard<std::mutex> lock(series_mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, ring] : counter_series_) {
    if (!ring.empty()) out[name] = ring.back().value;
  }
  return out;
}

}  // namespace obs
}  // namespace hybridjoin
