// MetricsSampler: periodic background sampling of a Metrics registry into
// fixed-size in-memory rings — the time-series half of the observability
// plane. Each tick snapshots every counter and every histogram summary;
// counters keep (timestamp, value) points from which read-side rate
// computation derives per-second rates, histograms keep their percentile
// summaries. Rings are bounded (ring_capacity points per series), so a
// server that runs for weeks holds a sliding window, never an unbounded
// log.
//
// The sampling thread is deadline-bound: Stop() (and the destructor) wakes
// it via condition variable and joins — no detached threads, no sleeps
// that outlive the object — so start/stop cycles are TSan-clean and a
// server shutdown never blocks on a sampling interval.

#ifndef HYBRIDJOIN_OBS_TIMESERIES_H_
#define HYBRIDJOIN_OBS_TIMESERIES_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace hybridjoin {
namespace obs {

struct TimeseriesConfig {
  /// Interval between samples.
  std::chrono::milliseconds sample_interval{1000};
  /// Points retained per series (oldest evicted first).
  size_t ring_capacity = 256;
};

/// One retained sample of a counter series.
struct SeriesPoint {
  int64_t t_us = 0;  ///< steady-clock microseconds at sampling time
  int64_t value = 0;
};

/// One retained sample of a histogram series.
struct HistogramPoint {
  int64_t t_us = 0;
  HistogramSummary summary;
};

class MetricsSampler {
 public:
  MetricsSampler(Metrics* metrics, TimeseriesConfig config);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  /// Starts the background sampling thread (idempotent).
  void Start();

  /// Stops and joins the thread, then takes one final sample (firing
  /// on_sample) so short-lived planes still flush terminal state.
  /// Idempotent — a Stop with no running thread does nothing; also called
  /// by the dtor.
  void Stop();

  /// Takes one sample synchronously — the thread calls this each tick, and
  /// tests / the --metrics_out writer can call it directly.
  void SampleOnce();

  /// Invoked after every sample (from the sampling thread) — the server
  /// hooks its --metrics_out periodic file write here. Set before Start().
  void set_on_sample(std::function<void()> fn) {
    on_sample_ = std::move(fn);
  }

  /// The retained window of one counter series (empty when unknown).
  std::vector<SeriesPoint> CounterSeries(const std::string& name) const;

  /// The retained window of one histogram series.
  std::vector<HistogramPoint> HistogramSeries(const std::string& name) const;

  /// Per-second rate of a counter over the last two retained points
  /// (0 with fewer than two points or a non-increasing clock). Gauge-style
  /// series yield meaningless rates; callers pick which names to rate.
  double RatePerSecond(const std::string& name) const;

  /// Latest value of every counter series, for renderers that want the
  /// sampled view instead of a live registry read.
  std::map<std::string, int64_t> LatestCounters() const;

  size_t samples_taken() const {
    return samples_.load(std::memory_order_relaxed);
  }
  bool running() const { return running_.load(std::memory_order_relaxed); }

 private:
  void ThreadMain();

  Metrics* const metrics_;
  const TimeseriesConfig config_;
  std::function<void()> on_sample_;

  mutable std::mutex series_mu_;  ///< guards the rings
  std::map<std::string, std::deque<SeriesPoint>> counter_series_;
  std::map<std::string, std::deque<HistogramPoint>> histogram_series_;

  std::mutex thread_mu_;  ///< guards stop_/thread_ lifecycle
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<size_t> samples_{0};
};

}  // namespace obs
}  // namespace hybridjoin

#endif  // HYBRIDJOIN_OBS_TIMESERIES_H_
