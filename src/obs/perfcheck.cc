#include "obs/perfcheck.h"

#include <algorithm>
#include <cstdio>

namespace hybridjoin {
namespace obs {

namespace {

/// Array elements that are objects get a stable key from one of these
/// members when present, so reordering an array does not shift every path.
const char* const kArrayKeyMembers[] = {"name", "algorithm", "subfigure"};

std::string ElementKey(const JsonValue& element, size_t index) {
  if (element.is_object()) {
    for (const char* member : kArrayKeyMembers) {
      const JsonValue* v = element.Find(member);
      if (v != nullptr && v->is_string()) return v->AsString();
      if (v != nullptr && v->is_number()) {
        return std::string(member) + std::to_string(v->AsInt());
      }
    }
  }
  return std::to_string(index);
}

void FlattenInto(const JsonValue& v, const std::string& prefix,
                 std::map<std::string, double>* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNumber:
      (*out)[prefix] = v.AsDouble();
      return;
    case JsonValue::Kind::kObject:
      for (const auto& [key, member] : v.members()) {
        FlattenInto(member, prefix.empty() ? key : prefix + "." + key, out);
      }
      return;
    case JsonValue::Kind::kArray: {
      const auto& items = v.items();
      for (size_t i = 0; i < items.size(); ++i) {
        const std::string key = ElementKey(items[i], i);
        FlattenInto(items[i], prefix.empty() ? key : prefix + "." + key, out);
      }
      return;
    }
    default:
      return;  // strings / bools / nulls are not gated
  }
}

std::string LastSegment(const std::string& path) {
  const size_t dot = path.rfind('.');
  return dot == std::string::npos ? path : path.substr(dot + 1);
}

bool Contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::string(suffix).size();
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

std::string FormatValue(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

std::map<std::string, double> FlattenNumericLeaves(const JsonValue& doc) {
  std::map<std::string, double> out;
  FlattenInto(doc, "", &out);
  return out;
}

PerfcheckResult ComparePerf(const JsonValue& baseline, const JsonValue& current,
                            const PerfcheckOptions& options) {
  const std::map<std::string, double> base = FlattenNumericLeaves(baseline);
  const std::map<std::string, double> cur = FlattenNumericLeaves(current);

  PerfcheckResult result;
  for (const auto& [path, base_value] : base) {
    const auto it = cur.find(path);
    if (it == cur.end()) continue;
    const double cur_value = it->second;
    const std::string leaf = LastSegment(path);

    // Family classification by leaf-name convention. Skew wins over the
    // timing suffixes; counts and percentiles-of-counts are not gated.
    if (Contains(leaf, "skew")) {
      ++result.leaves_compared;
      const double increase = cur_value - base_value;
      if (increase > options.max_skew_increase) {
        PerfcheckFinding f;
        f.path = path;
        f.family = "skew";
        f.baseline = base_value;
        f.current = cur_value;
        f.message = "skew " + path + ": " + FormatValue(base_value) + " -> " +
                    FormatValue(cur_value) + " (+" + FormatValue(increase) +
                    " > " + FormatValue(options.max_skew_increase) + ")";
        result.regressions.push_back(std::move(f));
      }
      continue;
    }

    // Overhead leaves are gated against an absolute ceiling, not against
    // the baseline: the contract is "the plane costs < N%", and a lucky
    // (negative) baseline measurement must not tighten it.
    if (Contains(leaf, "overhead_pct")) {
      ++result.leaves_compared;
      if (cur_value > options.max_overhead_pct) {
        PerfcheckFinding f;
        f.path = path;
        f.family = "overhead";
        f.baseline = base_value;
        f.current = cur_value;
        f.message = "overhead " + path + ": " + FormatValue(cur_value) +
                    "% > ceiling " + FormatValue(options.max_overhead_pct) +
                    "% (baseline " + FormatValue(base_value) + "%)";
        result.regressions.push_back(std::move(f));
      }
      continue;
    }

    const bool is_bytes = Contains(leaf, "bytes");
    const bool is_wall = !is_bytes && (Contains(leaf, "wall") ||
                                       EndsWith(leaf, "_seconds") ||
                                       EndsWith(leaf, "_us"));
    if (!is_bytes && !is_wall) continue;
    ++result.leaves_compared;
    if (base_value <= 0.0) continue;  // nothing meaningful to gate against

    if (is_wall) {
      // Noise floor: tiny timings regress by large percentages for free.
      const double base_seconds =
          EndsWith(leaf, "_us") ? base_value * 1e-6 : base_value;
      if (base_seconds < options.min_wall_seconds) continue;
    }

    const double limit_pct =
        is_bytes ? options.max_bytes_pct : options.max_wall_pct;
    const double pct = (cur_value - base_value) / base_value * 100.0;
    if (pct > limit_pct) {
      PerfcheckFinding f;
      f.path = path;
      f.family = is_bytes ? "bytes" : "wall";
      f.baseline = base_value;
      f.current = cur_value;
      f.message = f.family + " " + path + ": " + FormatValue(base_value) +
                  " -> " + FormatValue(cur_value) + " (+" + FormatValue(pct) +
                  "% > " + FormatValue(limit_pct) + "%)";
      result.regressions.push_back(std::move(f));
    }
  }
  return result;
}

}  // namespace obs
}  // namespace hybridjoin
