#include "obs/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hybridjoin {
namespace obs {

namespace {
constexpr int kPollSliceMs = 100;
constexpr size_t kMaxRequestBytes = 8192;
}  // namespace

MetricsHttpServer::MetricsHttpServer(uint16_t port, Handler handler)
    : requested_port_(port), handler_(std::move(handler)) {}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

Status MetricsHttpServer::Start() {
  if (thread_.joinable()) return Status::OK();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("metrics http: socket: ") +
                           std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(requested_port_);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("metrics http: bind 127.0.0.1:" +
                           std::to_string(requested_port_) + ": " + err);
  }
  if (::listen(fd, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("metrics http: listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { ListenLoop(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  if (!thread_.joinable()) return;
  stop_.store(true, std::memory_order_release);
  thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  bound_port_ = 0;
}

void MetricsHttpServer::ListenLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollSliceMs);
    if (ready <= 0) continue;  // timeout slice or transient error
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;

    // Read until the end of the request head (we ignore any body); bound
    // the total read so a misbehaving client cannot grow the buffer.
    std::string request;
    char buf[1024];
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < kMaxRequestBytes) {
      pollfd cfd{};
      cfd.fd = client;
      cfd.events = POLLIN;
      if (::poll(&cfd, 1, kPollSliceMs) <= 0) break;
      const ssize_t n = ::read(client, buf, sizeof(buf));
      if (n <= 0) break;
      request.append(buf, static_cast<size_t>(n));
    }

    // Request line: "GET /path HTTP/1.1".
    std::string method, path;
    const size_t sp1 = request.find(' ');
    if (sp1 != std::string::npos) {
      method = request.substr(0, sp1);
      const size_t sp2 = request.find(' ', sp1 + 1);
      if (sp2 != std::string::npos) {
        path = request.substr(sp1 + 1, sp2 - sp1 - 1);
      }
    }

    std::string body;
    std::string response;
    if (method == "GET" && handler_ && handler_(path, &body)) {
      response = "HTTP/1.1 200 OK\r\n"
                 "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                 "Content-Length: " +
                 std::to_string(body.size()) +
                 "\r\n"
                 "Connection: close\r\n\r\n" +
                 body;
    } else {
      body = "not found\n";
      response = "HTTP/1.1 404 Not Found\r\n"
                 "Content-Type: text/plain\r\n"
                 "Content-Length: " +
                 std::to_string(body.size()) +
                 "\r\n"
                 "Connection: close\r\n\r\n" +
                 body;
    }
    size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n =
          ::write(client, response.data() + sent, response.size() - sent);
      if (n <= 0) break;
      sent += static_cast<size_t>(n);
    }
    ::close(client);
    requests_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace obs
}  // namespace hybridjoin
