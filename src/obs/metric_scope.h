// MetricScope: the per-{node, phase} attribution layer over
// common/metrics.h, plus the wire format workers use to ship their scoped
// snapshot to the coordinator node at end-of-query.
//
// How attribution flows end to end:
//   1. Every worker thread installs a trace::ThreadScope, which installs a
//      Metrics::NodeScope — all named metric writes on the thread land in
//      the node's scoped slice. Call sites that know the query phase wrap
//      themselves in a Metrics::PhaseScope (or this file's MetricScope to
//      set both at once); untagged writes are phase-mapped at assembly
//      time by obs::PhaseForMetric.
//   2. As its last action, each worker thread snapshots its node's slice
//      (SnapshotNodeProfile), serializes it (SerializeNodeProfile) and
//      SendControl()s it to DB worker 0 on the query's profile tag — the
//      same unthrottled, fault-exempt control plane the plan decisions use
//      (driver::NodeProfileScope does this automatically).
//   3. After joining the worker threads the driver drains one message per
//      worker and hands the snapshots to obs::AssembleProfile.

#ifndef HYBRIDJOIN_OBS_METRIC_SCOPE_H_
#define HYBRIDJOIN_OBS_METRIC_SCOPE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "net/network.h"

namespace hybridjoin {
namespace obs {

/// RAII: attributes every named Metrics write on this thread to
/// {node, phase} until destruction. trace::ThreadScope already covers the
/// node half for worker threads; MetricScope is for call sites that want
/// both in one statement. `phase` must outlive the scope (string literal).
class MetricScope {
 public:
  MetricScope(NodeId node, const char* phase)
      : node_(MetricNodeKey(node)), phase_(phase) {}

  MetricScope(const MetricScope&) = delete;
  MetricScope& operator=(const MetricScope&) = delete;

 private:
  Metrics::NodeScope node_;
  Metrics::PhaseScope phase_;
};

/// One node's end-of-query profile contribution: its scoped metric slice
/// plus the worker thread's wall time for the query.
struct NodeProfileSnapshot {
  std::string node;      ///< NodeId::ToString() form ("db:0", "hdfs:3")
  int64_t wall_us = 0;   ///< the worker thread's wall time for the query
  ScopedMetricsSnapshot metrics;
};

/// Reads `node`'s scoped slice out of the registry (wall time is measured
/// by the caller — the registry does not know when the worker started).
NodeProfileSnapshot SnapshotNodeProfile(Metrics* metrics, NodeId node,
                                        int64_t wall_us);

/// Version-tagged wire format for shipping a snapshot over the control
/// plane; DeserializeNodeProfile rejects unknown versions and truncated
/// payloads with a non-OK Status.
std::vector<uint8_t> SerializeNodeProfile(const NodeProfileSnapshot& snapshot);
Result<NodeProfileSnapshot> DeserializeNodeProfile(
    const std::vector<uint8_t>& bytes);

}  // namespace obs
}  // namespace hybridjoin

#endif  // HYBRIDJOIN_OBS_METRIC_SCOPE_H_
