#include "obs/promtext.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <map>
#include <set>
#include <vector>

namespace hybridjoin {
namespace obs {

namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Bucket upper bounds (seconds) for histogram exposition. Chosen to
/// bracket the engine's latency spans (µs-scale morsel work up to
/// minute-scale queries); values recorded in non-time units (row
/// magnitudes) still render consistently, just with second-labeled bounds.
constexpr double kBucketBoundsSeconds[] = {
    0.0001, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0, 600.0,
};

std::string FormatNumber(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
        c == ':';
    const bool digit = c >= '0' && c <= '9';
    if (i == 0 ? !alpha : !(alpha || digit)) return false;
  }
  return true;
}

bool ValidLabelName(const std::string& name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    const bool digit = c >= '0' && c <= '9';
    if (i == 0 ? !alpha : !(alpha || digit)) return false;
  }
  return true;
}

bool ParseSampleValue(const std::string& text, double* out) {
  if (text == "+Inf" || text == "Inf") {
    *out = std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "-Inf") {
    *out = -std::numeric_limits<double>::infinity();
    return true;
  }
  if (text == "NaN") {
    *out = std::numeric_limits<double>::quiet_NaN();
    return true;
  }
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  return end != nullptr && *end == '\0' && end != text.c_str();
}

struct ParsedSample {
  std::string name;
  std::vector<std::pair<std::string, std::string>> labels;
  double value = 0.0;
};

Status ParseSampleLine(const std::string& line, size_t line_no,
                       ParsedSample* out) {
  const auto fail = [line_no](const std::string& what) {
    return Status::InvalidArgument("promtext line " +
                                   std::to_string(line_no) + ": " + what);
  };
  size_t i = 0;
  while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
  out->name = line.substr(0, i);
  if (!ValidMetricName(out->name)) {
    return fail("invalid metric name '" + out->name + "'");
  }
  if (i < line.size() && line[i] == '{') {
    ++i;
    while (i < line.size() && line[i] != '}') {
      size_t eq = line.find('=', i);
      if (eq == std::string::npos) return fail("label without '='");
      std::string lname = line.substr(i, eq - i);
      if (!ValidLabelName(lname)) {
        return fail("invalid label name '" + lname + "'");
      }
      i = eq + 1;
      if (i >= line.size() || line[i] != '"') {
        return fail("label value not quoted");
      }
      ++i;
      std::string lvalue;
      while (i < line.size() && line[i] != '"') {
        if (line[i] == '\\') {
          ++i;
          if (i >= line.size()) return fail("dangling escape");
        }
        lvalue += line[i];
        ++i;
      }
      if (i >= line.size()) return fail("unterminated label value");
      ++i;  // closing quote
      out->labels.emplace_back(std::move(lname), std::move(lvalue));
      if (i < line.size() && line[i] == ',') ++i;
    }
    if (i >= line.size() || line[i] != '}') {
      return fail("unterminated label set");
    }
    ++i;
  }
  if (i >= line.size() || line[i] != ' ') {
    return fail("missing sample value");
  }
  ++i;
  // Value, optionally followed by a timestamp (which we don't emit but
  // tolerate).
  size_t sp = line.find(' ', i);
  const std::string value_text =
      sp == std::string::npos ? line.substr(i) : line.substr(i, sp - i);
  if (!ParseSampleValue(value_text, &out->value)) {
    return fail("unparseable value '" + value_text + "'");
  }
  return Status::OK();
}

/// Per-histogram validation state accumulated across its sample lines.
struct HistogramState {
  double last_le = -std::numeric_limits<double>::infinity();
  double last_bucket_value = -1.0;
  bool has_inf = false;
  double inf_value = 0.0;
  bool has_sum = false;
  bool has_count = false;
  double count_value = 0.0;
};

}  // namespace

bool IsGaugeMetric(const std::string& engine_name) {
  if (engine_name == metric::kServerOpenSessions ||
      engine_name == metric::kServerQueriesInFlight ||
      engine_name == metric::kShuffleHotKeys) {
    return true;
  }
  if (engine_name.rfind("advisor.", 0) == 0) return true;
  return EndsWith(engine_name, "_pct") || EndsWith(engine_name, "_max") ||
         EndsWith(engine_name, "_ppm") ||
         engine_name.find("_peak") != std::string::npos;
}

std::string PrometheusName(const std::string& engine_name) {
  std::string out = "hj_";
  out.reserve(engine_name.size() + 3);
  for (const char c : engine_name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string RenderPrometheus(Metrics& metrics) {
  std::string out;
  for (const auto& [name, value] : metrics.Snapshot()) {
    const bool gauge = IsGaugeMetric(name);
    const std::string pname =
        PrometheusName(name) + (gauge ? "" : "_total");
    out += "# HELP " + pname + " Engine series " + name + "\n";
    out += "# TYPE " + pname + (gauge ? " gauge\n" : " counter\n");
    out += pname + " " + FormatNumber(static_cast<double>(value)) + "\n";
  }
  // HistogramSnapshot() lists the non-empty histograms; the bucket counts
  // come from the live LatencyHistogram handles (stable for the registry's
  // lifetime).
  for (const auto& [name, summary] : metrics.HistogramSnapshot()) {
    const LatencyHistogram* hist = metrics.GetHistogram(name);
    const std::string pname = PrometheusName(name);
    out += "# HELP " + pname + " Engine histogram " + name + "\n";
    out += "# TYPE " + pname + " histogram\n";
    for (const double bound : kBucketBoundsSeconds) {
      const int64_t micros = static_cast<int64_t>(bound * 1e6);
      out += pname + "_bucket{le=\"" + FormatNumber(bound) + "\"} " +
             FormatNumber(static_cast<double>(
                 hist->CountAtOrBelowMicros(micros))) +
             "\n";
    }
    out += pname + "_bucket{le=\"+Inf\"} " +
           FormatNumber(static_cast<double>(summary.count)) + "\n";
    out += pname + "_sum " + FormatNumber(summary.total_seconds) + "\n";
    out += pname + "_count " +
           FormatNumber(static_cast<double>(summary.count)) + "\n";
  }
  return out;
}

Status ValidatePrometheus(const std::string& text) {
  std::map<std::string, std::string> types;  // pname -> TYPE
  std::set<std::string> sampled;             // pnames with samples seen
  std::map<std::string, HistogramState> histograms;
  size_t line_no = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    ++line_no;
    const auto fail = [line_no](const std::string& what) {
      return Status::InvalidArgument(
          "promtext line " + std::to_string(line_no) + ": " + what);
    };
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# HELP name text" / "# TYPE name kind" / free-form comment.
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
        const bool is_type = line.rfind("# TYPE ", 0) == 0;
        const std::string rest = line.substr(7);
        const size_t sp = rest.find(' ');
        const std::string name =
            sp == std::string::npos ? rest : rest.substr(0, sp);
        if (!ValidMetricName(name)) {
          return fail("invalid metric name in comment: '" + name + "'");
        }
        if (is_type) {
          const std::string kind =
              sp == std::string::npos ? "" : rest.substr(sp + 1);
          if (kind != "counter" && kind != "gauge" && kind != "histogram" &&
              kind != "summary" && kind != "untyped") {
            return fail("unknown TYPE '" + kind + "'");
          }
          if (types.count(name) != 0) {
            return fail("duplicate TYPE for " + name);
          }
          if (sampled.count(name) != 0) {
            return fail("TYPE for " + name + " after its samples");
          }
          types[name] = kind;
          if (kind == "histogram") histograms[name];  // expect series
        }
      }
      continue;
    }
    ParsedSample sample;
    HJ_RETURN_IF_ERROR(ParseSampleLine(line, line_no, &sample));

    // Resolve which declared family this sample belongs to: histogram
    // children map back to their base name.
    std::string family = sample.name;
    bool is_bucket = false, is_sum = false, is_count = false;
    for (const auto& [base, state] : histograms) {
      (void)state;
      if (sample.name == base + "_bucket") {
        family = base;
        is_bucket = true;
      } else if (sample.name == base + "_sum") {
        family = base;
        is_sum = true;
      } else if (sample.name == base + "_count") {
        family = base;
        is_count = true;
      }
    }
    if (types.count(family) == 0) {
      return fail("sample for " + sample.name + " without a TYPE");
    }
    sampled.insert(family);
    sampled.insert(sample.name);

    if (is_bucket) {
      HistogramState& st = histograms[family];
      double le = 0.0;
      bool found_le = false;
      for (const auto& [lname, lvalue] : sample.labels) {
        if (lname == "le") {
          found_le = true;
          if (!ParseSampleValue(lvalue, &le)) {
            return fail("unparseable le '" + lvalue + "'");
          }
        }
      }
      if (!found_le) return fail("bucket sample without le label");
      if (le <= st.last_le) {
        return fail("histogram " + family + " buckets out of order");
      }
      if (sample.value < st.last_bucket_value) {
        return fail("histogram " + family +
                    " cumulative bucket counts decrease");
      }
      st.last_le = le;
      st.last_bucket_value = sample.value;
      if (std::isinf(le)) {
        st.has_inf = true;
        st.inf_value = sample.value;
      }
    } else if (is_sum) {
      histograms[family].has_sum = true;
    } else if (is_count) {
      HistogramState& st = histograms[family];
      st.has_count = true;
      st.count_value = sample.value;
    } else if (types[family] == "histogram") {
      return fail("bare sample for histogram " + family);
    }
  }
  for (const auto& [base, st] : histograms) {
    if (sampled.count(base) == 0) continue;  // declared but no samples
    if (!st.has_inf) {
      return Status::InvalidArgument("promtext: histogram " + base +
                                     " missing +Inf bucket");
    }
    if (!st.has_sum || !st.has_count) {
      return Status::InvalidArgument("promtext: histogram " + base +
                                     " missing _sum/_count");
    }
    if (st.count_value != st.inf_value) {
      return Status::InvalidArgument("promtext: histogram " + base +
                                     " _count != +Inf bucket");
    }
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace hybridjoin
