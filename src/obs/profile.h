// QueryProfile: the per-algorithm distributed profile tree assembled from
// the per-node metric snapshots the workers ship at end-of-query
// (obs/metric_scope.h). The tree is phase -> metric -> per-node values,
// with min/median/max/mean and a skew factor (max/mean) per node group, so
// "which node made this query slow?" is answered by reading one report.
//
// Two renderings:
//   - ToText(): a human-readable EXPLAIN-ANALYZE-style tree (surfaced as
//     `EXPLAIN ANALYZE <query>` in examples/sql_shell and `--profile` in
//     the drivers);
//   - ToJson()/WriteJson(): a stable schema (schema_version 1) embedding
//     the Chrome-trace file reference and the per-span latency histograms,
//     the input format of tools/perfcheck.
//
// Invariant (asserted in tests/obs_test.cc): for every non-gauge counter,
// the sum of the per-node values equals the global ExecutionReport counter
// delta; for gauges (Metrics::Max) the maximum across nodes equals it.

#ifndef HYBRIDJOIN_OBS_PROFILE_H_
#define HYBRIDJOIN_OBS_PROFILE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/result.h"
#include "obs/metric_scope.h"

namespace hybridjoin {
namespace obs {

/// One counter within one phase: the per-node breakdown plus the node-group
/// statistics computed over the nodes that reported it.
struct ProfileCounterRow {
  std::string name;
  bool gauge = false;  ///< aggregate across nodes by max, not sum
  std::map<std::string, int64_t> per_node;
  int64_t total = 0;   ///< sum across nodes (max for gauges)
  int64_t min = 0;
  int64_t max = 0;
  double mean = 0.0;
  double median = 0.0;
  double skew = 0.0;   ///< max / mean; 1.0 = perfectly balanced
};

/// One latency histogram within one phase, per node.
struct ProfileHistogramRow {
  std::string name;
  std::map<std::string, HistogramSummary> per_node;
};

struct ProfilePhase {
  std::string name;
  std::vector<ProfileCounterRow> counters;      ///< sorted by name
  std::vector<ProfileHistogramRow> histograms;  ///< sorted by name
};

/// The assembled distributed profile of one query execution.
struct QueryProfile {
  uint64_t query_id = 0;
  std::string algorithm;
  double wall_seconds = 0.0;
  /// Phase tree in canonical order (CanonicalPhases); empty phases omitted.
  std::vector<ProfilePhase> phases;
  /// Per-worker wall time (node -> µs) and its straggler factor max/mean.
  std::map<std::string, int64_t> worker_wall_us;
  double worker_wall_skew = 0.0;
  /// Chrome trace JSON written for this execution ("" when not requested).
  std::string trace_file;
  /// Cluster-global cross-checks mirrored from the ExecutionReport.
  std::map<std::string, int64_t> global_counters;
  std::map<std::string, int64_t> network_bytes;
  std::map<std::string, HistogramSummary> span_histograms;

  bool empty() const { return phases.empty() && worker_wall_us.empty(); }

  /// Row lookup; nullptr when the phase or counter is absent.
  const ProfileCounterRow* FindCounter(const std::string& phase,
                                       const std::string& name) const;

  /// EXPLAIN-ANALYZE-style text tree.
  std::string ToText() const;

  /// Stable JSON export (schema_version 1), pretty-printed.
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;
  static Result<QueryProfile> FromJson(const std::string& text);
};

/// Canonical phase order of the tree.
const std::vector<std::string>& CanonicalPhases();

/// Deterministic phase for a metric whose write carried no explicit
/// PhaseScope, keyed off the metric-name conventions ("jen.tuples_scanned"
/// -> "scan", "join.ht_rows" -> "build", ...). Unknown names map to
/// "other". Stable across releases: the profile JSON schema depends on it.
const char* PhaseForMetric(const std::string& name);

/// Builds the phase -> metric -> node tree from the workers' snapshots.
QueryProfile AssembleProfile(uint64_t query_id, const std::string& algorithm,
                             double wall_seconds,
                             const std::vector<NodeProfileSnapshot>& nodes,
                             const std::string& trace_file);

}  // namespace obs
}  // namespace hybridjoin

#endif  // HYBRIDJOIN_OBS_PROFILE_H_
