// Perf-regression gate: diffs two JSON reports (profile JSONs from
// --profile_out, or the BENCH_*.json files the bench binaries write) and
// flags regressions on the wall-time / bytes-moved / skew metric families.
//
// The comparison is schema-agnostic: both documents are flattened to
// dotted-path -> number maps (arrays of objects are keyed by their "name" /
// "algorithm" / "subfigure" member when present, by position otherwise), so
// one tool gates every report shape the repo emits. tools/perfcheck.cc is
// the CLI; CI runs it non-blocking against the committed baselines.

#ifndef HYBRIDJOIN_OBS_PERFCHECK_H_
#define HYBRIDJOIN_OBS_PERFCHECK_H_

#include <map>
#include <string>
#include <vector>

#include "obs/json.h"

namespace hybridjoin {
namespace obs {

struct PerfcheckOptions {
  /// Max allowed wall-time increase, percent of baseline ("wall" /
  /// "*_seconds" / "*_us" leaves).
  double max_wall_pct = 20.0;
  /// Max allowed increase on byte-counter leaves ("*bytes*"), percent.
  double max_bytes_pct = 25.0;
  /// Max allowed absolute increase on skew leaves ("*skew*").
  double max_skew_increase = 0.5;
  /// Absolute ceiling (not relative to baseline) on "*overhead_pct*"
  /// leaves — the observability-overhead cell in BENCH_concurrency.json
  /// must stay under this percentage regardless of what the baseline
  /// measured.
  double max_overhead_pct = 2.0;
  /// Wall leaves whose baseline is below this (seconds) are noise and are
  /// never flagged.
  double min_wall_seconds = 0.005;
};

struct PerfcheckFinding {
  std::string path;      ///< dotted path into the document
  std::string family;    ///< "wall", "bytes", "skew" or "overhead"
  double baseline = 0.0;
  double current = 0.0;
  std::string message;   ///< one-line human rendering
};

struct PerfcheckResult {
  std::vector<PerfcheckFinding> regressions;
  size_t leaves_compared = 0;  ///< gated leaves present in both documents
};

/// Flattens every numeric leaf of `doc` into a dotted-path -> value map.
std::map<std::string, double> FlattenNumericLeaves(const JsonValue& doc);

/// Compares `current` against `baseline`; only leaves present in both
/// documents and belonging to a gated family (wall / bytes / skew /
/// overhead) are checked. Leaves only on one side are ignored (schemas may
/// grow).
PerfcheckResult ComparePerf(const JsonValue& baseline, const JsonValue& current,
                            const PerfcheckOptions& options);

}  // namespace obs
}  // namespace hybridjoin

#endif  // HYBRIDJOIN_OBS_PERFCHECK_H_
