#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hybridjoin {
namespace obs {

namespace {

/// Recursive-descent parser over the raw text; tracks position for error
/// messages and bounds nesting depth so adversarial input cannot blow the
/// stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    HJ_ASSIGN_OR_RETURN(JsonValue v, ParseValue(0));
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 100;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        HJ_ASSIGN_OR_RETURN(std::string s, ParseString());
        return JsonValue::Str(std::move(s));
      }
      case 't':
        return ParseKeyword("true", JsonValue::Bool(true));
      case 'f':
        return ParseKeyword("false", JsonValue::Bool(false));
      case 'n':
        return ParseKeyword("null", JsonValue::Null());
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseKeyword(const char* word, JsonValue value) {
    const size_t n = std::strlen(word);
    if (text_.compare(pos_, n, word) != 0) {
      return Error(std::string("expected '") + word + "'");
    }
    pos_ += n;
    return value;
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
    bool is_int = true;
    if (Consume('.')) {
      is_int = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_int = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") return Error("malformed number");
    char* end = nullptr;
    if (is_int) {
      errno = 0;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (end == token.c_str() + token.size() && errno == 0) {
        return JsonValue::Int(static_cast<int64_t>(v));
      }
      // Out of int64 range: fall through to double.
    }
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || !std::isfinite(d)) {
      return Error("malformed number '" + token + "'");
    }
    return JsonValue::Number(d);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          uint32_t cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              return Error("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are emitted
          // as-is per half — profile output never contains them).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          return Error("unknown escape");
      }
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    Consume('{');
    JsonValue obj = JsonValue::Object();
    SkipWs();
    if (Consume('}')) return obj;
    while (true) {
      SkipWs();
      HJ_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      HJ_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      obj.Set(key, std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Error("expected ',' or '}'");
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    Consume('[');
    JsonValue arr = JsonValue::Array();
    SkipWs();
    if (Consume(']')) return arr;
    while (true) {
      HJ_ASSIGN_OR_RETURN(JsonValue value, ParseValue(depth + 1));
      arr.Append(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Error("expected ',' or ']'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

void AppendNumber(std::string* out, double d, bool is_int, int64_t i) {
  char buf[40];
  if (is_int) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(i));
  } else {
    // Shortest representation that parses back to exactly `d`.
    for (int precision = 12; precision <= 17; ++precision) {
      std::snprintf(buf, sizeof(buf), "%.*g", precision, d);
      if (std::strtod(buf, nullptr) == d) break;
    }
  }
  out->append(buf);
}

void Indent(std::string* out, int indent, int depth) {
  if (indent == 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(indent) * static_cast<size_t>(depth), ' ');
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

JsonValue& JsonValue::Set(const std::string& key, JsonValue v) {
  kind_ = Kind::kObject;
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  }
  members_.emplace_back(key, std::move(v));
  return members_.back().second;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

double JsonValue::GetDouble(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsDouble() : fallback;
}

int64_t JsonValue::GetInt(const std::string& key, int64_t fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->AsInt() : fallback;
}

std::string JsonValue::GetString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->AsString() : fallback;
}

bool JsonValue::GetBool(const std::string& key, bool fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_bool() ? v->AsBool() : fallback;
}

void JsonValue::DumpTo(std::string* out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out->append("null");
      return;
    case Kind::kBool:
      out->append(bool_ ? "true" : "false");
      return;
    case Kind::kNumber:
      AppendNumber(out, num_, is_int_, int_);
      return;
    case Kind::kString:
      out->push_back('"');
      out->append(JsonEscape(str_));
      out->push_back('"');
      return;
    case Kind::kArray: {
      out->push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Indent(out, indent, depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      if (!items_.empty()) Indent(out, indent, depth);
      out->push_back(']');
      return;
    }
    case Kind::kObject: {
      out->push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out->push_back(',');
        Indent(out, indent, depth + 1);
        out->push_back('"');
        out->append(JsonEscape(members_[i].first));
        out->append(indent == 0 ? "\":" : "\": ");
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (!members_.empty()) Indent(out, indent, depth);
      out->push_back('}');
      return;
    }
  }
}

std::string JsonValue::Dump(int indent) const {
  std::string out;
  DumpTo(&out, indent, 0);
  return out;
}

Result<JsonValue> JsonValue::Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace obs
}  // namespace hybridjoin
