#include "obs/event_log.h"

#include <chrono>

namespace hybridjoin {
namespace obs {

EventLog& EventLog::Global() {
  static EventLog* log = new EventLog();
  return *log;
}

Status EventLog::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    enabled_.store(false, std::memory_order_release);
  }
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("event log: cannot open " + path);
  }
  file_ = f;
  lines_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_release);
  return Status::OK();
}

void EventLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_release);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

void EventLog::Emit(const std::string& event, uint64_t query_id,
                    JsonValue fields) {
  if (!enabled()) return;
  const int64_t ts_us =
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  JsonValue line = fields.is_object() ? std::move(fields)
                                      : JsonValue::Object();
  line.Set("ts_us", JsonValue::Int(ts_us));
  line.Set("event", JsonValue::Str(event));
  line.Set("query_id", JsonValue::Int(static_cast<int64_t>(query_id)));
  const std::string text = line.Dump();
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;  // closed between the enabled check and here
  std::fputs(text.c_str(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
  lines_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace obs
}  // namespace hybridjoin
