// Minimal self-contained JSON document model for the observability
// subsystem: the profile exporter (obs/profile.h) emits it and the
// perfcheck regression gate (obs/perfcheck.h) parses it — including the
// BENCH_*.json baselines — without any external dependency.
//
// Full JSON grammar; numbers keep an integer fast path so counter values
// round-trip exactly, objects preserve insertion order on Dump().

#ifndef HYBRIDJOIN_OBS_JSON_H_
#define HYBRIDJOIN_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace hybridjoin {
namespace obs {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  static JsonValue Null() { return JsonValue(); }
  static JsonValue Bool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue Number(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.num_ = d;
    return v;
  }
  static JsonValue Int(int64_t i) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.num_ = static_cast<double>(i);
    v.int_ = i;
    v.is_int_ = true;
    return v;
  }
  static JsonValue Str(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.str_ = std::move(s);
    return v;
  }
  static JsonValue Array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue Object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool() const { return bool_; }
  double AsDouble() const { return num_; }
  int64_t AsInt() const {
    return is_int_ ? int_ : static_cast<int64_t>(num_);
  }
  const std::string& AsString() const { return str_; }

  /// Array elements (empty for non-arrays).
  const std::vector<JsonValue>& items() const { return items_; }
  /// Object members in insertion order (empty for non-objects).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Appends to an array; returns a reference to the stored element.
  JsonValue& Append(JsonValue v) {
    items_.push_back(std::move(v));
    return items_.back();
  }

  /// Adds (or replaces) an object member; returns the stored value.
  JsonValue& Set(const std::string& key, JsonValue v);

  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Convenience lookups with defaults, for tolerant readers.
  double GetDouble(const std::string& key, double fallback = 0.0) const;
  int64_t GetInt(const std::string& key, int64_t fallback = 0) const;
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;
  bool GetBool(const std::string& key, bool fallback = false) const;

  /// Serializes. indent == 0 is compact; > 0 pretty-prints with that many
  /// spaces per level.
  std::string Dump(int indent = 0) const;

  /// Parses a complete JSON document (trailing garbage is an error).
  static Result<JsonValue> Parse(const std::string& text);

 private:
  void DumpTo(std::string* out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  int64_t int_ = 0;
  bool is_int_ = false;
  std::string str_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// JSON string escaping of `s` (without the surrounding quotes).
std::string JsonEscape(const std::string& s);

}  // namespace obs
}  // namespace hybridjoin

#endif  // HYBRIDJOIN_OBS_JSON_H_
