// Structured tracing for the hybrid warehouse: RAII Span scopes record
// (name, category, node, thread, start, duration) events into mutex-sharded
// per-thread buffers. Two sinks consume the events:
//   - trace::WriteChromeTrace (chrome_trace.h) renders them as a Chrome
//     trace-event JSON loadable in chrome://tracing or Perfetto, one
//     "process" per simulated node and one track per worker thread;
//   - the Metrics histogram registry (common/metrics.h) accumulates every
//     span duration into an HDR-style latency histogram keyed by span name,
//     which ReportBuilder rolls into ExecutionReport::histograms.
//
// Span names and categories must be string literals (or otherwise outlive
// the tracer): events store raw pointers so a disabled tracer costs two
// loads and a branch per span.
//
// Worker threads announce which simulated node they act for with a
// trace::ThreadScope; spans on that thread inherit the attribution unless
// they name a node explicitly (the network layer attributes sends to the
// sending node regardless of which thread performs them).

#ifndef HYBRIDJOIN_TRACE_TRACER_H_
#define HYBRIDJOIN_TRACE_TRACER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/metrics.h"
#include "net/network.h"

namespace hybridjoin {
namespace trace {

/// One finished span.
struct TraceEvent {
  const char* name = "";      ///< phase name, e.g. "jen.probe"
  const char* category = "";  ///< coarse grouping, e.g. "exchange"
  NodeId node;                ///< attributed simulated node
  bool has_node = false;      ///< false: engine-level work (pid 0)
  const char* role = nullptr; ///< emitting thread's role (track name)
  uint32_t tid = 0;           ///< process-wide worker-thread id
  int32_t depth = 0;          ///< nesting depth on its thread (0 = top)
  int64_t start_us = 0;       ///< µs since the tracer's epoch
  int64_t dur_us = 0;
  int64_t bytes = 0;          ///< payload bytes for network spans, else 0
};

class Tracer {
 public:
  explicit Tracer(bool enabled = false, Metrics* metrics = nullptr)
      : enabled_(enabled), metrics_(metrics) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Microseconds since this tracer's epoch (construction time).
  int64_t NowMicros() const;

  /// Appends a finished span (called by ~Span) and feeds its duration to
  /// the metrics histogram registry.
  void Record(const TraceEvent& event);

  /// Copy of every recorded event, ordered by start time.
  std::vector<TraceEvent> Snapshot() const;

  /// Drops all recorded events (start of a new query execution).
  void Clear();

  /// Stable small id for the calling thread (assigned on first use,
  /// process-wide so ids stay unique across tracer instances).
  static uint32_t CurrentThreadId();

 private:
  static constexpr int kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
  };

  std::atomic<bool> enabled_;
  Metrics* metrics_;
  const std::chrono::steady_clock::time_point epoch_ =
      std::chrono::steady_clock::now();
  Shard shards_[kShards];
};

/// Returns a stable "<base>/<index>" C string with process lifetime, for
/// ThreadScope roles of dynamically numbered worker threads ("jen_proc/2",
/// "build/0"): TraceEvent stores raw pointers, so role strings must outlive
/// every tracer, which a stack-built std::string cannot. Repeated calls
/// with the same arguments return the same pointer.
const char* InternedRole(const char* base, size_t index);

/// Declares that the calling thread acts for `node` (e.g. "this thread is
/// DB worker 3") until the scope dies; nested scopes restore the previous
/// attribution. `role` becomes the thread's track name in the Chrome trace.
/// Also installs the matching Metrics::NodeScope, so every named metric
/// write on the thread lands in the node's scoped slice (src/obs/).
class ThreadScope {
 public:
  ThreadScope(NodeId node, const char* role);
  ~ThreadScope();

  ThreadScope(const ThreadScope&) = delete;
  ThreadScope& operator=(const ThreadScope&) = delete;

  /// Current thread's attribution; returns false when no scope is active.
  static bool Current(NodeId* node, const char** role);

 private:
  Metrics::NodeScope metrics_scope_;
  NodeId saved_node_;
  const char* saved_role_;
  bool saved_has_;
};

/// RAII span. Construction on a disabled tracer is two loads and a branch.
class Span {
 public:
  Span(Tracer* tracer, const char* name, const char* category = "exec");
  /// Explicit node attribution (overrides the thread's scope).
  Span(Tracer* tracer, const char* name, const char* category, NodeId node);
  ~Span() { End(); }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a byte count (network spans); shown as args.bytes.
  void set_bytes(int64_t bytes) { bytes_ = bytes; }

  /// Ends the span early (idempotent; the destructor is then a no-op).
  void End();

  bool active() const { return tracer_ != nullptr; }

 private:
  void Init(Tracer* tracer, const char* name, const char* category);

  Tracer* tracer_ = nullptr;
  const char* name_ = "";
  const char* category_ = "";
  NodeId node_;
  bool has_node_ = false;
  int64_t start_us_ = 0;
  int64_t bytes_ = 0;
};

// Canonical span names and categories, so drivers, tests and benches agree
// on spelling (mirrors metric::k* in common/metrics.h). Histograms in
// ExecutionReport are keyed by these.
namespace span {
// Network layer (category = flow class name).
inline constexpr char kNetSend[] = "net.send";
inline constexpr char kNetSendControl[] = "net.send_control";
inline constexpr char kNetRecv[] = "net.recv";
inline constexpr char kNetTransfer[] = "net.transfer";
// JEN side.
inline constexpr char kJenScan[] = "jen.scan";
inline constexpr char kJenReadBlock[] = "jen.read_block";
/// Time a process thread spends blocked on the read queue waiting for the
/// next decoded block (Figure 7 backpressure visibility; one span per Pop).
inline constexpr char kJenQueueWait[] = "jen.queue_wait";
inline constexpr char kJenShuffle[] = "jen.shuffle";
inline constexpr char kJenBuild[] = "jen.build";
inline constexpr char kJenProbe[] = "jen.probe";
inline constexpr char kHtFinalize[] = "join.ht_finalize";
/// One shard's bucket-directory build within a parallel finalize.
inline constexpr char kHtFinalizeShard[] = "join.ht_finalize_shard";
inline constexpr char kJenAggregate[] = "jen.aggregate";
// EDW side.
inline constexpr char kDbScan[] = "edw.scan";
inline constexpr char kDbBloomBuild[] = "edw.bloom_build";
inline constexpr char kDbJoin[] = "edw.join";
inline constexpr char kDbIngest[] = "edw.ingest";
// Whole-thread driver spans (the "top-level" coverage spans).
inline constexpr char kDriverDbWorker[] = "driver.db_worker";
inline constexpr char kDriverJenWorker[] = "driver.jen_worker";
// Categories.
inline constexpr char kCatDriver[] = "driver";
inline constexpr char kCatScan[] = "scan";
inline constexpr char kCatJoin[] = "join";
inline constexpr char kCatExchange[] = "exchange";
}  // namespace span

}  // namespace trace
}  // namespace hybridjoin

#endif  // HYBRIDJOIN_TRACE_TRACER_H_
