#include "trace/chrome_trace.h"

#include <cstdio>
#include <map>
#include <set>
#include <sstream>

namespace hybridjoin {
namespace trace {

namespace {

/// JSON string escape (names are engine-controlled, but be safe).
void AppendEscaped(std::ostringstream* os, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        *os << "\\\"";
        break;
      case '\\':
        *os << "\\\\";
        break;
      case '\n':
        *os << "\\n";
        break;
      case '\t':
        *os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *os << buf;
        } else {
          *os << c;
        }
    }
  }
}

void AppendMetadata(std::ostringstream* os, const char* what, uint32_t pid,
                    uint32_t tid, bool with_tid, const std::string& name) {
  *os << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid;
  if (with_tid) *os << ",\"tid\":" << tid;
  *os << ",\"args\":{\"name\":\"";
  AppendEscaped(os, name.c_str());
  *os << "\"}}";
}

std::string PidName(const TraceEvent& event) {
  if (!event.has_node) return "driver";
  return event.node.ToString();
}

}  // namespace

uint32_t ChromePid(const TraceEvent& event) {
  if (!event.has_node) return 0;
  const uint32_t base =
      event.node.cluster == ClusterId::kDb ? 1u : 1001u;
  return base + event.node.index;
}

std::string ChromeTraceJson(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto comma = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  // Process / thread naming metadata, one entry per unique pid and
  // (pid, tid). Sorted maps keep the output deterministic.
  std::map<uint32_t, std::string> pid_names;
  std::map<std::pair<uint32_t, uint32_t>, std::string> tid_names;
  for (const TraceEvent& e : events) {
    const uint32_t pid = ChromePid(e);
    pid_names.emplace(pid, PidName(e));
    std::string track = e.role != nullptr ? e.role : "thread";
    track += " #" + std::to_string(e.tid);
    tid_names.emplace(std::make_pair(pid, e.tid), std::move(track));
  }
  for (const auto& [pid, name] : pid_names) {
    comma();
    AppendMetadata(&os, "process_name", pid, 0, /*with_tid=*/false, name);
    // DB processes first, then HDFS, then the driver pseudo-process.
    comma();
    os << "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"args\":{\"sort_index\":" << (pid == 0 ? 9999 : pid) << "}}";
  }
  for (const auto& [key, name] : tid_names) {
    comma();
    AppendMetadata(&os, "thread_name", key.first, key.second,
                   /*with_tid=*/true, name);
  }

  for (const TraceEvent& e : events) {
    comma();
    os << "{\"name\":\"";
    AppendEscaped(&os, e.name);
    os << "\",\"cat\":\"";
    AppendEscaped(&os, e.category);
    os << "\",\"ph\":\"X\",\"ts\":" << e.start_us
       << ",\"dur\":" << e.dur_us << ",\"pid\":" << ChromePid(e)
       << ",\"tid\":" << e.tid << ",\"args\":{\"depth\":" << e.depth;
    if (e.bytes != 0) os << ",\"bytes\":" << e.bytes;
    os << "}}";
  }
  os << "]}\n";
  return os.str();
}

Status WriteChromeTrace(const std::vector<TraceEvent>& events,
                        const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open trace file '" + path + "'");
  }
  const std::string json = ChromeTraceJson(events);
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  if (std::fclose(f) != 0 || written != json.size()) {
    return Status::IOError("failed writing trace file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace trace
}  // namespace hybridjoin
