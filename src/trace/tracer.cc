#include "trace/tracer.h"

#include <algorithm>
#include <string>
#include <unordered_set>

namespace hybridjoin {
namespace trace {

namespace {

/// Thread-attribution slot (set by ThreadScope, read by Span).
struct ThreadState {
  NodeId node;
  const char* role = nullptr;
  bool has_node = false;
  int32_t depth = 0;
};

thread_local ThreadState tls_state;

std::atomic<uint32_t> next_thread_id{1};
thread_local uint32_t tls_thread_id = 0;

}  // namespace

const char* InternedRole(const char* base, size_t index) {
  static std::mutex mu;
  // Leaked on purpose: role pointers live inside TraceEvents that may be
  // snapshotted after static destruction begins.
  static auto* interned = new std::unordered_set<std::string>();
  std::string role = std::string(base) + "/" + std::to_string(index);
  std::lock_guard<std::mutex> lock(mu);
  return interned->insert(std::move(role)).first->c_str();
}

uint32_t Tracer::CurrentThreadId() {
  if (tls_thread_id == 0) {
    tls_thread_id = next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_thread_id;
}

int64_t Tracer::NowMicros() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::Record(const TraceEvent& event) {
  const uint32_t shard = event.tid % kShards;
  {
    std::lock_guard<std::mutex> lock(shards_[shard].mu);
    shards_[shard].events.push_back(event);
  }
  if (metrics_ != nullptr) {
    // Attribute the span's duration to the span's node (a network span is
    // the sender's work no matter which thread performed it), falling back
    // to no attribution for engine-level spans.
    metrics_->RecordForNode(
        event.name, event.dur_us,
        event.has_node ? MetricNodeKey(event.node) : Metrics::kNoNode);
  }
}

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<TraceEvent> out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.insert(out.end(), shard.events.begin(), shard.events.end());
  }
  // Depth breaks start-time ties so a parent span precedes children opened
  // in the same microsecond.
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.start_us != b.start_us) return a.start_us < b.start_us;
              return a.depth < b.depth;
            });
  return out;
}

void Tracer::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.events.clear();
  }
}

ThreadScope::ThreadScope(NodeId node, const char* role)
    : metrics_scope_(MetricNodeKey(node)),
      saved_node_(tls_state.node),
      saved_role_(tls_state.role),
      saved_has_(tls_state.has_node) {
  tls_state.node = node;
  tls_state.role = role;
  tls_state.has_node = true;
}

ThreadScope::~ThreadScope() {
  tls_state.node = saved_node_;
  tls_state.role = saved_role_;
  tls_state.has_node = saved_has_;
}

bool ThreadScope::Current(NodeId* node, const char** role) {
  if (!tls_state.has_node) return false;
  if (node != nullptr) *node = tls_state.node;
  if (role != nullptr) *role = tls_state.role;
  return true;
}

void Span::Init(Tracer* tracer, const char* name, const char* category) {
  if (tracer == nullptr || !tracer->enabled()) return;
  tracer_ = tracer;
  name_ = name;
  category_ = category;
  start_us_ = tracer->NowMicros();
  ++tls_state.depth;
}

Span::Span(Tracer* tracer, const char* name, const char* category) {
  Init(tracer, name, category);
  if (tracer_ != nullptr && tls_state.has_node) {
    node_ = tls_state.node;
    has_node_ = true;
  }
}

Span::Span(Tracer* tracer, const char* name, const char* category,
           NodeId node) {
  Init(tracer, name, category);
  node_ = node;
  has_node_ = tracer_ != nullptr;
}

void Span::End() {
  if (tracer_ == nullptr) return;
  TraceEvent event;
  event.name = name_;
  event.category = category_;
  event.node = node_;
  event.has_node = has_node_;
  event.role = tls_state.role;
  event.tid = Tracer::CurrentThreadId();
  event.depth = --tls_state.depth;
  event.start_us = start_us_;
  event.dur_us = tracer_->NowMicros() - start_us_;
  event.bytes = bytes_;
  tracer_->Record(event);
  tracer_ = nullptr;
}

}  // namespace trace
}  // namespace hybridjoin
