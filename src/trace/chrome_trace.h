// Chrome trace-event JSON export: renders recorded spans as complete ("X")
// events loadable in chrome://tracing or https://ui.perfetto.dev. Each
// simulated node becomes one "process" (named db:<i> / hdfs:<i> via
// process_name metadata) and each worker thread one track within it, so
// the viewer shows the paper's per-node, per-thread phase breakdown.

#ifndef HYBRIDJOIN_TRACE_CHROME_TRACE_H_
#define HYBRIDJOIN_TRACE_CHROME_TRACE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "trace/tracer.h"

namespace hybridjoin {
namespace trace {

/// Stable pid for a node in the exported trace: 1.. for DB nodes,
/// 1001.. for HDFS nodes; 0 is the engine-level "driver" process.
uint32_t ChromePid(const TraceEvent& event);

/// The full trace JSON document ({"traceEvents": [...], ...}).
std::string ChromeTraceJson(const std::vector<TraceEvent>& events);

/// Writes ChromeTraceJson(events) to `path`.
Status WriteChromeTrace(const std::vector<TraceEvent>& events,
                        const std::string& path);

}  // namespace trace
}  // namespace hybridjoin

#endif  // HYBRIDJOIN_TRACE_CHROME_TRACE_H_
