// The simulated interconnect of the hybrid warehouse: a DB cluster and an
// HDFS cluster, each node with its own NIC bandwidth, joined by a shared
// inter-cluster switch (the paper's 20 Gbit link between the DB2 DPF rack
// and the HDFS rack).
//
// Every worker is a real thread; Send() physically moves bytes through
// in-memory channels and *blocks* on token buckets sized to the configured
// bandwidths, so measured wall-clock reflects the testbed's asymmetries.
// All traffic is metered per flow class for the ExecutionReport.
//
// An optional FaultInjector (see fault_injector.h) makes the interconnect
// misbehave deterministically: Send can fail transiently (callers retry via
// SendWithRetry in jen/exchange.h), deliver duplicates (Recv dedups by
// per-stream sequence number), or stall; Recv honors a configurable timeout
// so a lost message surfaces as Status::TimedOut instead of a hang.

#ifndef HYBRIDJOIN_NET_NETWORK_H_
#define HYBRIDJOIN_NET_NETWORK_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "common/blocking_queue.h"
#include "common/check.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/token_bucket.h"
#include "net/fault_injector.h"

namespace hybridjoin {

namespace trace {
class Tracer;
}  // namespace trace

/// Which cluster a node belongs to.
enum class ClusterId : uint8_t { kDb = 0, kHdfs = 1 };

/// Globally unique node address.
struct NodeId {
  ClusterId cluster = ClusterId::kDb;
  uint32_t index = 0;

  static NodeId Db(uint32_t i) { return {ClusterId::kDb, i}; }
  static NodeId Hdfs(uint32_t i) { return {ClusterId::kHdfs, i}; }

  bool operator==(const NodeId& o) const {
    return cluster == o.cluster && index == o.index;
  }
  bool operator<(const NodeId& o) const {
    if (cluster != o.cluster) return cluster < o.cluster;
    return index < o.index;
  }
  std::string ToString() const {
    return (cluster == ClusterId::kDb ? "db" : "hdfs") +
           std::string(":") + std::to_string(index);
  }
};

/// Stable small-integer key for per-node metric attribution
/// (Metrics::NodeScope): DB worker i -> i, HDFS worker i -> (1 << 20) + i.
/// MetricNodeKeyName inverts it back to the NodeId::ToString() form.
inline int32_t MetricNodeKey(NodeId node) {
  return static_cast<int32_t>(node.index) +
         (node.cluster == ClusterId::kHdfs ? (1 << 20) : 0);
}

inline std::string MetricNodeKeyName(int32_t key) {
  if (key < 0) return "unattributed";
  if (key >= (1 << 20)) return "hdfs:" + std::to_string(key - (1 << 20));
  return "db:" + std::to_string(key);
}

/// Traffic classes, for accounting and for picking which buckets to charge.
enum class FlowClass : uint8_t {
  kLoopback = 0,     ///< same node; free
  kIntraDb = 1,      ///< DB worker <-> DB worker
  kIntraHdfs = 2,    ///< JEN worker <-> JEN worker (shuffle)
  kCrossCluster = 3, ///< through the inter-cluster switch
};

const char* FlowClassName(FlowClass fc);

FlowClass ClassifyFlow(NodeId from, NodeId to);

/// One message on a channel. Payload is shared so broadcasts don't copy.
/// `seq` numbers the data messages of one (from, to, tag) stream starting
/// at 1 and is used to drop duplicated deliveries under fault injection;
/// 0 means "untracked" (EOS, or no injector installed).
struct Message {
  NodeId from;
  std::shared_ptr<const std::vector<uint8_t>> payload;
  bool eos = false;
  uint64_t seq = 0;
};

/// Bandwidths in bytes/sec; 0 disables throttling for that resource.
struct NetworkConfig {
  uint64_t db_nic_bps = 0;
  uint64_t hdfs_nic_bps = 0;
  uint64_t cross_switch_bps = 0;
  /// Fixed framing overhead charged per message (headers etc.).
  uint64_t per_message_overhead_bytes = 64;
  /// Upper bound on any single Recv wait; 0 blocks forever (the default,
  /// for fault-free runs). With faults enabled this is the engine's
  /// no-hang guarantee: a lost peer surfaces as Status::TimedOut.
  uint64_t recv_timeout_ms = 0;
};

/// The interconnect. Channels are identified by (destination, tag); any
/// number of senders may feed one channel, and exactly one logical receiver
/// drains it (multiple receiver threads are allowed — the queue is MPMC).
class Network {
 public:
  Network(const NetworkConfig& config, uint32_t num_db_nodes,
          uint32_t num_hdfs_nodes, Metrics* metrics);

  uint32_t num_db_nodes() const { return num_db_nodes_; }
  uint32_t num_hdfs_nodes() const { return num_hdfs_nodes_; }

  /// Installs the tracer that records per-flow-class byte+latency spans
  /// for Send/SendControl/Recv/Transfer (nullptr disables, the default).
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }
  trace::Tracer* tracer() const { return tracer_; }

  /// Installs the fault injector consulted on every data-plane Send and
  /// Transfer (nullptr disables, the default).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  /// Sends a payload. Blocks while the configured bandwidths admit the
  /// bytes (sender NIC, receiver NIC, and the cross switch if applicable).
  /// Under fault injection an attempt may fail with kUnavailable; callers
  /// that can retry reserve a seq once with ReserveSeq and pass it with an
  /// incremented `attempt` on each try (see SendWithRetry in jen/exchange.h)
  /// so every attempt of one logical message draws the same fault decisions.
  Status Send(NodeId from, NodeId to, uint64_t tag,
              std::shared_ptr<const std::vector<uint8_t>> payload,
              uint32_t attempt = 0, uint64_t seq = 0);

  Status Send(NodeId from, NodeId to, uint64_t tag,
              std::vector<uint8_t> payload, uint32_t attempt = 0,
              uint64_t seq = 0) {
    return Send(from, to, tag,
                std::make_shared<const std::vector<uint8_t>>(
                    std::move(payload)),
                attempt, seq);
  }

  /// Reserves the per-stream sequence number for one logical message, for
  /// callers that retry: all attempts must reuse it. Returns 0 (untracked)
  /// when no fault injector is installed.
  uint64_t ReserveSeq(NodeId from, NodeId to, uint64_t tag) {
    return injector_ == nullptr ? 0 : NextSeq(from, to, tag);
  }

  /// Control-plane send: bytes are accounted but not throttled. Used for
  /// Bloom filters, scan requests, plan decisions and final aggregates —
  /// the paper observes these are "much smaller than the actual data, how
  /// to transfer them has little impact on the overall performance" (§4.3),
  /// and unlike the row-ingest path they move over raw sockets, not through
  /// per-row UDF processing. Exempt from fault injection: control messages
  /// carry protocol obligations (plan decisions, EOS-like handshakes) whose
  /// loss the simulated engine does not model.
  void SendControl(NodeId from, NodeId to, uint64_t tag,
                   std::shared_ptr<const std::vector<uint8_t>> payload);
  void SendControl(NodeId from, NodeId to, uint64_t tag,
                   std::vector<uint8_t> payload) {
    SendControl(from, to, tag, std::make_shared<const std::vector<uint8_t>>(
                                   std::move(payload)));
  }

  /// Marks end-of-stream from `from` on this channel. Receivers count
  /// these. Exempt from fault injection (a transport would piggyback
  /// stream termination on connection teardown, which is reliable).
  void SendEos(NodeId from, NodeId to, uint64_t tag);

  /// Blocking receive of the next message on (to, tag) — data or EOS.
  /// Returns Status::TimedOut once config.recv_timeout_ms (if non-zero)
  /// elapses without a message. Duplicated deliveries injected on the
  /// sender side are dropped here (dedup by per-stream sequence number).
  Result<Message> Recv(NodeId to, uint64_t tag);

  /// Charges a raw byte transfer without enqueuing a message (used for the
  /// pull-style remote HDFS block reads). Fault injection can delay it or
  /// charge extra bytes for a truncated-then-retried read, but the read
  /// itself always completes.
  void Transfer(NodeId from, NodeId to, uint64_t bytes);

  /// Total bytes moved in a flow class since construction.
  int64_t BytesMoved(FlowClass fc) const;

  /// Allocates a fresh tag namespace (monotone); drivers carve per-purpose
  /// tags out of it so concurrent queries never collide.
  uint64_t AllocateTagBlock(uint64_t width = 64);

 private:
  /// A channel plus the receiver-side dedup state for duplicated
  /// deliveries: the set of already-delivered sequence numbers per sender.
  struct ChannelState {
    BlockingQueue<Message> queue;
    std::mutex dedup_mu;
    std::map<NodeId, std::set<uint64_t>> delivered;
  };

  ChannelState* GetChannel(NodeId to, uint64_t tag);
  void Throttle(NodeId from, NodeId to, uint64_t bytes);
  TokenBucket* NicBucket(NodeId node);
  uint64_t NextSeq(NodeId from, NodeId to, uint64_t tag);

  const NetworkConfig config_;
  const uint32_t num_db_nodes_;
  const uint32_t num_hdfs_nodes_;
  Metrics* metrics_;
  trace::Tracer* tracer_ = nullptr;
  FaultInjector* injector_ = nullptr;

  std::vector<std::unique_ptr<TokenBucket>> db_nics_;
  std::vector<std::unique_ptr<TokenBucket>> hdfs_nics_;
  TokenBucket cross_switch_;

  std::mutex mu_;
  std::map<std::pair<NodeId, uint64_t>, std::unique_ptr<ChannelState>>
      channels_;
  std::mutex seq_mu_;
  std::map<std::tuple<NodeId, NodeId, uint64_t>, uint64_t> stream_seq_;
  std::atomic<uint64_t> next_tag_{1};
  std::atomic<int64_t> bytes_by_class_[4] = {0, 0, 0, 0};
};

/// Helper that drains a channel fed by `expected_senders` streams and stops
/// after seeing that many EOS markers. A Recv error (e.g. timeout) also
/// ends the stream: Next() returns nullopt and the error is held in
/// status() — callers must check it after the drain loop.
class StreamReceiver {
 public:
  StreamReceiver(Network* net, NodeId to, uint64_t tag,
                 uint32_t expected_senders)
      : net_(net), to_(to), tag_(tag), remaining_eos_(expected_senders) {}

  /// Next data message, or nullopt once every sender has finished (or an
  /// error occurred — see status()).
  std::optional<Message> Next() {
    while (remaining_eos_ > 0 && status_.ok()) {
      Result<Message> m = net_->Recv(to_, tag_);
      if (!m.ok()) {
        status_ = std::move(m).status();
        return std::nullopt;
      }
      if (m->eos) {
        --remaining_eos_;
        continue;
      }
      return std::move(m).value();
    }
    return std::nullopt;
  }

  /// OK while the stream is healthy; the first Recv error otherwise.
  const Status& status() const { return status_; }

 private:
  Network* net_;
  NodeId to_;
  uint64_t tag_;
  uint32_t remaining_eos_;
  Status status_;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_NET_NETWORK_H_
