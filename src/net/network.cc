#include "net/network.h"

#include "trace/tracer.h"

namespace hybridjoin {

const char* FlowClassName(FlowClass fc) {
  switch (fc) {
    case FlowClass::kLoopback:
      return "loopback";
    case FlowClass::kIntraDb:
      return "intra_db";
    case FlowClass::kIntraHdfs:
      return "intra_hdfs";
    case FlowClass::kCrossCluster:
      return "cross_cluster";
  }
  return "unknown";
}

FlowClass ClassifyFlow(NodeId from, NodeId to) {
  if (from == to) return FlowClass::kLoopback;
  if (from.cluster != to.cluster) return FlowClass::kCrossCluster;
  return from.cluster == ClusterId::kDb ? FlowClass::kIntraDb
                                        : FlowClass::kIntraHdfs;
}

Network::Network(const NetworkConfig& config, uint32_t num_db_nodes,
                 uint32_t num_hdfs_nodes, Metrics* metrics)
    : config_(config),
      num_db_nodes_(num_db_nodes),
      num_hdfs_nodes_(num_hdfs_nodes),
      metrics_(metrics),
      cross_switch_(config.cross_switch_bps) {
  db_nics_.reserve(num_db_nodes);
  for (uint32_t i = 0; i < num_db_nodes; ++i) {
    db_nics_.push_back(std::make_unique<TokenBucket>(config.db_nic_bps));
  }
  hdfs_nics_.reserve(num_hdfs_nodes);
  for (uint32_t i = 0; i < num_hdfs_nodes; ++i) {
    hdfs_nics_.push_back(std::make_unique<TokenBucket>(config.hdfs_nic_bps));
  }
}

Network::Channel* Network::GetChannel(NodeId to, uint64_t tag) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = channels_[{to, tag}];
  if (!slot) slot = std::make_unique<Channel>();
  return slot.get();
}

TokenBucket* Network::NicBucket(NodeId node) {
  if (node.cluster == ClusterId::kDb) {
    HJ_CHECK_LT(node.index, db_nics_.size());
    return db_nics_[node.index].get();
  }
  HJ_CHECK_LT(node.index, hdfs_nics_.size());
  return hdfs_nics_[node.index].get();
}

void Network::Throttle(NodeId from, NodeId to, uint64_t bytes) {
  const FlowClass fc = ClassifyFlow(from, to);
  bytes_by_class_[static_cast<int>(fc)].fetch_add(
      static_cast<int64_t>(bytes), std::memory_order_relaxed);
  if (fc == FlowClass::kLoopback) return;
  NicBucket(from)->Acquire(bytes);
  NicBucket(to)->Acquire(bytes);
  if (fc == FlowClass::kCrossCluster) cross_switch_.Acquire(bytes);
}

void Network::Send(NodeId from, NodeId to, uint64_t tag,
                   std::shared_ptr<const std::vector<uint8_t>> payload) {
  HJ_CHECK(payload != nullptr);
  const uint64_t bytes =
      payload->size() + config_.per_message_overhead_bytes;
  trace::Span span(tracer_, trace::span::kNetSend,
                   FlowClassName(ClassifyFlow(from, to)), from);
  span.set_bytes(static_cast<int64_t>(bytes));
  Throttle(from, to, bytes);
  GetChannel(to, tag)->Push(Message{from, std::move(payload), /*eos=*/false});
}

void Network::SendControl(
    NodeId from, NodeId to, uint64_t tag,
    std::shared_ptr<const std::vector<uint8_t>> payload) {
  HJ_CHECK(payload != nullptr);
  const FlowClass fc = ClassifyFlow(from, to);
  const uint64_t bytes =
      payload->size() + config_.per_message_overhead_bytes;
  trace::Span span(tracer_, trace::span::kNetSendControl, FlowClassName(fc),
                   from);
  span.set_bytes(static_cast<int64_t>(bytes));
  bytes_by_class_[static_cast<int>(fc)].fetch_add(
      static_cast<int64_t>(bytes), std::memory_order_relaxed);
  GetChannel(to, tag)->Push(Message{from, std::move(payload), /*eos=*/false});
}

void Network::SendEos(NodeId from, NodeId to, uint64_t tag) {
  Throttle(from, to, config_.per_message_overhead_bytes);
  GetChannel(to, tag)->Push(Message{from, nullptr, /*eos=*/true});
}

Message Network::Recv(NodeId to, uint64_t tag) {
  trace::Span span(tracer_, trace::span::kNetRecv, "net", to);
  auto m = GetChannel(to, tag)->Pop();
  HJ_CHECK(m.has_value()) << "channel closed while receiving on "
                          << to.ToString() << " tag " << tag;
  if (m->payload != nullptr) {
    span.set_bytes(static_cast<int64_t>(m->payload->size()));
  }
  return std::move(*m);
}

void Network::Transfer(NodeId from, NodeId to, uint64_t bytes) {
  // Attributed to the reader: Transfer models a pull-style remote read.
  trace::Span span(tracer_, trace::span::kNetTransfer,
                   FlowClassName(ClassifyFlow(from, to)), to);
  span.set_bytes(static_cast<int64_t>(bytes));
  Throttle(from, to, bytes);
  if (metrics_ != nullptr && from.cluster == ClusterId::kHdfs &&
      to.cluster == ClusterId::kHdfs && !(from == to)) {
    metrics_->Add(metric::kHdfsBytesReadRemote, static_cast<int64_t>(bytes));
  }
}

int64_t Network::BytesMoved(FlowClass fc) const {
  return bytes_by_class_[static_cast<int>(fc)].load(
      std::memory_order_relaxed);
}

uint64_t Network::AllocateTagBlock(uint64_t width) {
  return next_tag_.fetch_add(width, std::memory_order_relaxed);
}

}  // namespace hybridjoin
