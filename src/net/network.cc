#include "net/network.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <tuple>

#include "common/hash.h"
#include "obs/query_registry.h"
#include "trace/tracer.h"

namespace hybridjoin {

namespace {

/// Pseudo-tag identifying the raw Transfer stream between two nodes, so its
/// fault draws don't collide with any real channel's.
constexpr uint64_t kTransferTag = ~0ULL;

uint64_t HashNode(NodeId n) {
  return (static_cast<uint64_t>(n.cluster) << 32) | n.index;
}

/// Stable identity of one (from, to, tag) stream for fault draws.
uint64_t StreamHash(NodeId from, NodeId to, uint64_t tag) {
  return Mix64(HashNode(from) ^ Mix64(HashNode(to) ^ Mix64(tag)));
}

void SleepUs(uint64_t us) {
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

const char* FlowClassName(FlowClass fc) {
  switch (fc) {
    case FlowClass::kLoopback:
      return "loopback";
    case FlowClass::kIntraDb:
      return "intra_db";
    case FlowClass::kIntraHdfs:
      return "intra_hdfs";
    case FlowClass::kCrossCluster:
      return "cross_cluster";
  }
  return "unknown";
}

FlowClass ClassifyFlow(NodeId from, NodeId to) {
  if (from == to) return FlowClass::kLoopback;
  if (from.cluster != to.cluster) return FlowClass::kCrossCluster;
  return from.cluster == ClusterId::kDb ? FlowClass::kIntraDb
                                        : FlowClass::kIntraHdfs;
}

Network::Network(const NetworkConfig& config, uint32_t num_db_nodes,
                 uint32_t num_hdfs_nodes, Metrics* metrics)
    : config_(config),
      num_db_nodes_(num_db_nodes),
      num_hdfs_nodes_(num_hdfs_nodes),
      metrics_(metrics),
      cross_switch_(config.cross_switch_bps) {
  db_nics_.reserve(num_db_nodes);
  for (uint32_t i = 0; i < num_db_nodes; ++i) {
    db_nics_.push_back(std::make_unique<TokenBucket>(config.db_nic_bps));
  }
  hdfs_nics_.reserve(num_hdfs_nodes);
  for (uint32_t i = 0; i < num_hdfs_nodes; ++i) {
    hdfs_nics_.push_back(std::make_unique<TokenBucket>(config.hdfs_nic_bps));
  }
}

Network::ChannelState* Network::GetChannel(NodeId to, uint64_t tag) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = channels_[{to, tag}];
  if (!slot) slot = std::make_unique<ChannelState>();
  return slot.get();
}

TokenBucket* Network::NicBucket(NodeId node) {
  if (node.cluster == ClusterId::kDb) {
    HJ_CHECK_LT(node.index, db_nics_.size());
    return db_nics_[node.index].get();
  }
  HJ_CHECK_LT(node.index, hdfs_nics_.size());
  return hdfs_nics_[node.index].get();
}

uint64_t Network::NextSeq(NodeId from, NodeId to, uint64_t tag) {
  std::lock_guard<std::mutex> lock(seq_mu_);
  return ++stream_seq_[{from, to, tag}];
}

void Network::Throttle(NodeId from, NodeId to, uint64_t bytes) {
  const FlowClass fc = ClassifyFlow(from, to);
  bytes_by_class_[static_cast<int>(fc)].fetch_add(
      static_cast<int64_t>(bytes), std::memory_order_relaxed);
  if (fc == FlowClass::kLoopback) return;
  NicBucket(from)->Acquire(bytes);
  NicBucket(to)->Acquire(bytes);
  if (fc == FlowClass::kCrossCluster) cross_switch_.Acquire(bytes);
}

Status Network::Send(NodeId from, NodeId to, uint64_t tag,
                     std::shared_ptr<const std::vector<uint8_t>> payload,
                     uint32_t attempt, uint64_t seq) {
  HJ_CHECK(payload != nullptr);
  const FlowClass fc = ClassifyFlow(from, to);
  const uint64_t bytes =
      payload->size() + config_.per_message_overhead_bytes;
  trace::Span span(tracer_, trace::span::kNetSend, FlowClassName(fc), from);
  span.set_bytes(static_cast<int64_t>(bytes));

  bool duplicate = false;
  if (injector_ != nullptr) {
    SleepUs(injector_->TakeStall(from));
    if (seq == 0) seq = NextSeq(from, to, tag);
    const FaultDecision d = injector_->OnSend(
        static_cast<uint8_t>(1u << static_cast<int>(fc)),
        StreamHash(from, to, tag), seq, attempt, bytes);
    SleepUs(d.delay_us);
    if (d.fail) {
      // A truncated attempt still burned wire bytes before failing.
      if (d.charged_bytes > 0) Throttle(from, to, d.charged_bytes);
      return Status::Unavailable(
          "injected send failure " + from.ToString() + " -> " +
          to.ToString() + " tag " + std::to_string(tag) + " attempt " +
          std::to_string(attempt));
    }
    duplicate = d.duplicate;
  }

  Throttle(from, to, bytes);
  ChannelState* ch = GetChannel(to, tag);
  ch->queue.Push(Message{from, payload, /*eos=*/false, seq});
  if (duplicate) {
    // The duplicate is a real second delivery: it costs wire bytes and
    // arrives with the same sequence number for the receiver to drop.
    Throttle(from, to, bytes);
    ch->queue.Push(Message{from, std::move(payload), /*eos=*/false, seq});
  }
  return Status::OK();
}

void Network::SendControl(
    NodeId from, NodeId to, uint64_t tag,
    std::shared_ptr<const std::vector<uint8_t>> payload) {
  HJ_CHECK(payload != nullptr);
  const FlowClass fc = ClassifyFlow(from, to);
  const uint64_t bytes =
      payload->size() + config_.per_message_overhead_bytes;
  trace::Span span(tracer_, trace::span::kNetSendControl, FlowClassName(fc),
                   from);
  span.set_bytes(static_cast<int64_t>(bytes));
  bytes_by_class_[static_cast<int>(fc)].fetch_add(
      static_cast<int64_t>(bytes), std::memory_order_relaxed);
  GetChannel(to, tag)->queue.Push(
      Message{from, std::move(payload), /*eos=*/false, /*seq=*/0});
}

void Network::SendEos(NodeId from, NodeId to, uint64_t tag) {
  Throttle(from, to, config_.per_message_overhead_bytes);
  GetChannel(to, tag)->queue.Push(
      Message{from, nullptr, /*eos=*/true, /*seq=*/0});
}

Result<Message> Network::Recv(NodeId to, uint64_t tag) {
  trace::Span span(tracer_, trace::span::kNetRecv, "net", to);
  ChannelState* ch = GetChannel(to, tag);
  // The wait is sliced so a blocked receiver notices cooperative
  // cancellation (KILL <query_id>) within kCancelSliceMs even when the
  // configured recv timeout is infinite. The overall deadline semantics
  // are unchanged: kTimedOut still fires after recv_timeout_ms.
  constexpr auto kCancelSlice = std::chrono::milliseconds(50);
  const bool bounded = config_.recv_timeout_ms > 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.recv_timeout_ms);
  while (true) {
    HJ_RETURN_IF_ERROR(obs::QueryRegistry::CheckCancelled());
    auto slice = kCancelSlice;
    if (bounded) {
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              deadline - std::chrono::steady_clock::now());
      if (remaining <= std::chrono::milliseconds::zero()) {
        return Status::TimedOut("recv timed out after " +
                                std::to_string(config_.recv_timeout_ms) +
                                " ms on " + to.ToString() + " tag " +
                                std::to_string(tag));
      }
      slice = std::min(slice, std::max(remaining,
                                       std::chrono::milliseconds(1)));
    }
    bool timed_out = false;
    std::optional<Message> m = ch->queue.PopFor(slice, &timed_out);
    if (timed_out) continue;  // slice expired: re-check cancel + deadline
    if (!m.has_value()) {
      return Status::Unavailable("channel closed while receiving on " +
                                 to.ToString() + " tag " +
                                 std::to_string(tag));
    }
    if (m->seq != 0 && !m->eos) {
      // Drop an injected duplicate delivery: the (from, seq) pair has been
      // handed out before on this channel.
      std::lock_guard<std::mutex> lock(ch->dedup_mu);
      if (!ch->delivered[m->from].insert(m->seq).second) continue;
    }
    if (m->payload != nullptr) {
      span.set_bytes(static_cast<int64_t>(m->payload->size()));
    }
    return std::move(*m);
  }
}

void Network::Transfer(NodeId from, NodeId to, uint64_t bytes) {
  // Attributed to the reader: Transfer models a pull-style remote read.
  trace::Span span(tracer_, trace::span::kNetTransfer,
                   FlowClassName(ClassifyFlow(from, to)), to);
  span.set_bytes(static_cast<int64_t>(bytes));
  if (injector_ != nullptr) {
    SleepUs(injector_->TakeStall(to));
    const FlowClass fc = ClassifyFlow(from, to);
    const FaultDecision d = injector_->OnSend(
        static_cast<uint8_t>(1u << static_cast<int>(fc)),
        StreamHash(from, to, kTransferTag),
        NextSeq(from, to, kTransferTag), /*attempt=*/0, bytes);
    SleepUs(d.delay_us);
    // A pull-style read retries transparently inside the reader; a failed
    // first attempt only costs the bytes it burned before breaking off.
    if (d.fail && d.charged_bytes > 0) Throttle(from, to, d.charged_bytes);
  }
  Throttle(from, to, bytes);
  if (metrics_ != nullptr && from.cluster == ClusterId::kHdfs &&
      to.cluster == ClusterId::kHdfs && !(from == to)) {
    metrics_->Add(metric::kHdfsBytesReadRemote, static_cast<int64_t>(bytes));
  }
}

int64_t Network::BytesMoved(FlowClass fc) const {
  return bytes_by_class_[static_cast<int>(fc)].load(
      std::memory_order_relaxed);
}

uint64_t Network::AllocateTagBlock(uint64_t width) {
  return next_tag_.fetch_add(width, std::memory_order_relaxed);
}

}  // namespace hybridjoin
