// Deterministic fault injection for the simulated interconnect.
//
// A FaultInjector is consulted by Network::Send/Recv/Transfer and can, per
// flow class, inject artificial delays, transient send failures (the first
// attempt fails, a retry succeeds), truncated-then-retried transfers (the
// failed attempt still burns wire bytes), duplicated deliveries (the
// receiver must dedup by sequence number), hard message loss (every attempt
// fails — the engine must fail cleanly), and a one-shot stall of a chosen
// worker node.
//
// Decisions are a pure function of (profile seed, stream identity, message
// sequence number, attempt number), NOT of thread scheduling: replaying the
// same seed injects faults at the same points of each message stream no
// matter how the worker threads interleave. That is what makes
// `fuzz_joins --seed=N` reproduce a failure.

#ifndef HYBRIDJOIN_NET_FAULT_INJECTOR_H_
#define HYBRIDJOIN_NET_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace hybridjoin {

enum class ClusterId : uint8_t;
struct NodeId;

/// What a fault profile may do to the interconnect. Probabilities are per
/// message (per attempt for failures); `flow_mask` selects the flow classes
/// the profile applies to (bit i = FlowClass i; loopback is never faulted).
struct FaultProfile {
  std::string name = "none";
  uint64_t seed = 0;
  /// Bitmask over FlowClass values; default: everything but loopback.
  uint8_t flow_mask = 0b1110;

  /// Artificial latency: with probability `delay_prob`, sleep a
  /// deterministic duration in [1, delay_max_us].
  double delay_prob = 0.0;
  uint32_t delay_max_us = 0;

  /// Transient send failure: the first attempt fails with kUnavailable and
  /// moves no bytes; any retry succeeds.
  double fail_first_prob = 0.0;

  /// Truncated transfer: the first attempt fails after burning a
  /// deterministic fraction of the payload's wire bytes; the retry resends
  /// everything (total bytes moved > payload bytes).
  double truncate_prob = 0.0;

  /// Duplicate delivery: the message is delivered twice with the same
  /// sequence number and its bytes are charged twice; Network::Recv must
  /// drop the second copy.
  double duplicate_prob = 0.0;

  /// Hard loss: every attempt of an affected message fails. Retries cannot
  /// recover; the engine must surface a non-OK Status instead of hanging.
  double drop_prob = 0.0;

  /// One-shot worker stall: the first data-plane send of the matching node
  /// sleeps `stall_us` (models a long GC pause / IO hiccup). Disabled when
  /// stall_us == 0.
  uint64_t stall_us = 0;
  ClusterId stall_cluster = static_cast<ClusterId>(1);  // kHdfs
  uint32_t stall_index = 0;

  /// True when the profile can inject anything at all.
  bool enabled() const {
    return delay_prob > 0 || fail_first_prob > 0 || truncate_prob > 0 ||
           duplicate_prob > 0 || drop_prob > 0 || stall_us > 0;
  }

  /// True when every injected fault is recoverable by the engine's retry
  /// and dedup machinery — runs under such a profile must still produce
  /// byte-identical results.
  bool recoverable() const { return drop_prob == 0; }

  // --- The named profiles of the differential harness (docs/testing.md). ---

  /// No faults at all.
  static FaultProfile None();
  /// Delays only: every class, up to 2 ms per message, plus a 50 ms
  /// one-shot stall of JEN worker 0.
  static FaultProfile Delays(uint64_t seed);
  /// The adversarial-but-recoverable mix: delays + transient failures +
  /// truncated retries + duplicate deliveries.
  static FaultProfile Flaky(uint64_t seed);
  /// A single long stall of one JEN worker (picked by seed), nothing else.
  static FaultProfile Stall(uint64_t seed, uint32_t num_jen_workers);
  /// Unrecoverable: a fraction of data-plane messages is lost for good.
  /// The engine must return a non-OK Status within the recv timeout.
  static FaultProfile Lossy(uint64_t seed);

  /// Looks up a profile by name ("none", "delays", "flaky", "stall",
  /// "lossy") and seeds it.
  static Result<FaultProfile> ByName(const std::string& name, uint64_t seed,
                                     uint32_t num_jen_workers);
};

/// The per-message verdict handed to Network::Send.
struct FaultDecision {
  uint64_t delay_us = 0;       ///< sleep this long before doing anything
  bool fail = false;           ///< this attempt fails with kUnavailable
  uint64_t charged_bytes = 0;  ///< wire bytes burned by the failed attempt
  bool duplicate = false;      ///< deliver the message twice
};

/// Thread-safe. One injector serves one Network; the Network calls OnSend
/// once per send attempt and TakeStall once per data-plane send.
class FaultInjector {
 public:
  explicit FaultInjector(FaultProfile profile) : profile_(std::move(profile)) {}

  const FaultProfile& profile() const { return profile_; }

  /// Decision for attempt `attempt` of the `seq`-th message on the stream
  /// identified by `stream_hash` (a hash of from/to/tag). `flow_class_bit`
  /// is 1 << static_cast<int>(FlowClass). Pure function of its arguments
  /// and the profile; also bumps the observability counters.
  FaultDecision OnSend(uint8_t flow_class_bit, uint64_t stream_hash,
                       uint64_t seq, uint32_t attempt, uint64_t wire_bytes);

  /// Returns the stall duration (µs) exactly once for the configured node,
  /// 0 otherwise.
  uint64_t TakeStall(const NodeId& node);

  // Counters (for tests and the fault report).
  int64_t delays_injected() const { return delays_.load(); }
  int64_t failures_injected() const { return failures_.load(); }
  int64_t duplicates_injected() const { return duplicates_.load(); }
  int64_t drops_injected() const { return drops_.load(); }
  int64_t stalls_injected() const { return stalls_.load(); }

 private:
  const FaultProfile profile_;
  std::atomic<bool> stall_taken_{false};
  std::atomic<int64_t> delays_{0};
  std::atomic<int64_t> failures_{0};
  std::atomic<int64_t> duplicates_{0};
  std::atomic<int64_t> drops_{0};
  std::atomic<int64_t> stalls_{0};
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_NET_FAULT_INJECTOR_H_
