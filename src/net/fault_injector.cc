#include "net/fault_injector.h"

#include "common/hash.h"
#include "net/network.h"

namespace hybridjoin {

namespace {

/// One deterministic uniform double in [0,1) per (seed, stream, seq, salt).
double Draw(uint64_t seed, uint64_t stream_hash, uint64_t seq,
            uint64_t salt) {
  uint64_t h = Mix64(seed ^ Mix64(stream_hash + salt));
  h = Mix64(h ^ (seq * 0x9e3779b97f4a7c15ULL));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

uint64_t DrawInt(uint64_t seed, uint64_t stream_hash, uint64_t seq,
                 uint64_t salt, uint64_t bound) {
  return static_cast<uint64_t>(Draw(seed, stream_hash, seq, salt) *
                               static_cast<double>(bound));
}

enum Salt : uint64_t {
  kSaltDelay = 1,
  kSaltDelayAmount = 2,
  kSaltFail = 3,
  kSaltTruncate = 4,
  kSaltTruncateAmount = 5,
  kSaltDuplicate = 6,
  kSaltDrop = 7,
};

}  // namespace

FaultProfile FaultProfile::None() { return FaultProfile{}; }

FaultProfile FaultProfile::Delays(uint64_t seed) {
  FaultProfile p;
  p.name = "delays";
  p.seed = seed;
  p.delay_prob = 0.25;
  p.delay_max_us = 2000;
  p.stall_us = 50 * 1000;
  p.stall_cluster = ClusterId::kHdfs;
  p.stall_index = 0;
  return p;
}

FaultProfile FaultProfile::Flaky(uint64_t seed) {
  FaultProfile p;
  p.name = "flaky";
  p.seed = seed;
  p.delay_prob = 0.1;
  p.delay_max_us = 500;
  p.fail_first_prob = 0.15;
  p.truncate_prob = 0.1;
  p.duplicate_prob = 0.15;
  return p;
}

FaultProfile FaultProfile::Stall(uint64_t seed, uint32_t num_jen_workers) {
  FaultProfile p;
  p.name = "stall";
  p.seed = seed;
  p.stall_us = 100 * 1000;
  p.stall_cluster = ClusterId::kHdfs;
  p.stall_index =
      num_jen_workers == 0
          ? 0
          : static_cast<uint32_t>(Mix64(seed) % num_jen_workers);
  return p;
}

FaultProfile FaultProfile::Lossy(uint64_t seed) {
  FaultProfile p;
  p.name = "lossy";
  p.seed = seed;
  p.drop_prob = 0.2;
  return p;
}

Result<FaultProfile> FaultProfile::ByName(const std::string& name,
                                          uint64_t seed,
                                          uint32_t num_jen_workers) {
  if (name == "none") return None();
  if (name == "delays") return Delays(seed);
  if (name == "flaky") return Flaky(seed);
  if (name == "stall") return Stall(seed, num_jen_workers);
  if (name == "lossy") return Lossy(seed);
  return Status::InvalidArgument("unknown fault profile '" + name +
                                 "' (known: none, delays, flaky, stall, "
                                 "lossy)");
}

FaultDecision FaultInjector::OnSend(uint8_t flow_class_bit,
                                    uint64_t stream_hash, uint64_t seq,
                                    uint32_t attempt, uint64_t wire_bytes) {
  FaultDecision d;
  if ((profile_.flow_mask & flow_class_bit) == 0) return d;

  if (profile_.delay_prob > 0 && attempt == 0 &&
      Draw(profile_.seed, stream_hash, seq, kSaltDelay) <
          profile_.delay_prob) {
    d.delay_us =
        1 + DrawInt(profile_.seed, stream_hash, seq, kSaltDelayAmount,
                    profile_.delay_max_us);
    delays_.fetch_add(1, std::memory_order_relaxed);
  }

  // Hard loss affects every attempt of the chosen message; it wins over the
  // transient faults below.
  if (profile_.drop_prob > 0 &&
      Draw(profile_.seed, stream_hash, seq, kSaltDrop) < profile_.drop_prob) {
    d.fail = true;
    if (attempt == 0) drops_.fetch_add(1, std::memory_order_relaxed);
    return d;
  }

  // Transient faults fail only the first attempt, so a single retry always
  // recovers (bounded, deterministic recovery).
  if (attempt == 0) {
    if (profile_.fail_first_prob > 0 &&
        Draw(profile_.seed, stream_hash, seq, kSaltFail) <
            profile_.fail_first_prob) {
      d.fail = true;
      failures_.fetch_add(1, std::memory_order_relaxed);
      return d;
    }
    if (profile_.truncate_prob > 0 &&
        Draw(profile_.seed, stream_hash, seq, kSaltTruncate) <
            profile_.truncate_prob) {
      d.fail = true;
      // Burn 1..wire_bytes-1 bytes (at least something was on the wire).
      d.charged_bytes =
          wire_bytes <= 1
              ? wire_bytes
              : 1 + DrawInt(profile_.seed, stream_hash, seq,
                            kSaltTruncateAmount, wire_bytes - 1);
      failures_.fetch_add(1, std::memory_order_relaxed);
      return d;
    }
    if (profile_.duplicate_prob > 0 &&
        Draw(profile_.seed, stream_hash, seq, kSaltDuplicate) <
            profile_.duplicate_prob) {
      d.duplicate = true;
      duplicates_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return d;
}

uint64_t FaultInjector::TakeStall(const NodeId& node) {
  if (profile_.stall_us == 0 || node.cluster != profile_.stall_cluster ||
      node.index != profile_.stall_index) {
    return 0;
  }
  bool expected = false;
  if (!stall_taken_.compare_exchange_strong(expected, true)) return 0;
  stalls_.fetch_add(1, std::memory_order_relaxed);
  return profile_.stall_us;
}

}  // namespace hybridjoin
