// Randomized differential testing of the five join algorithms (seven
// variants counting the Bloom ablations and both zigzag second-filter
// kinds) against the single-node reference executor, optionally under a
// named fault-injection profile.
//
// Everything here is a pure function of the case seed: the workload shape,
// the selectivity targets, the cluster sizes, the HDFS format and the fault
// profile seed all derive from it, so any failure is reproduced by
// `fuzz_joins --seed=N --profiles=<name>` (docs/testing.md).

#ifndef HYBRIDJOIN_TESTING_DIFFERENTIAL_H_
#define HYBRIDJOIN_TESTING_DIFFERENTIAL_H_

#include <optional>
#include <string>
#include <vector>

#include "hdfs/table_writer.h"
#include "hybrid/warehouse.h"
#include "net/fault_injector.h"
#include "workload/generator.h"

namespace hybridjoin {
namespace testing_support {

/// The seven algorithm variants a differential case exercises.
/// "zigzag" is the paper's Bloom second filter; "zigzag_semijoin" swaps in
/// the exact-semijoin second filter of §6's related work.
const std::vector<std::string>& DifferentialVariants();

/// Runs one variant by name on an already-loaded warehouse.
Result<QueryResult> RunVariant(HybridWarehouse* warehouse,
                               const HybridQuery& query,
                               const std::string& variant);

/// Byte-for-byte comparison (schema, row order, every cell — no sorting):
/// nullopt when equal, else a description of the first difference.
std::optional<std::string> CompareBatches(const RecordBatch& expected,
                                          const RecordBatch& actual);

/// One seed-derived differential case: workload shape, selectivity targets
/// (re-drawn until the solver accepts them), cluster sizes, HDFS layout.
struct DiffCase {
  WorkloadConfig workload;
  SelectivitySpec spec;
  uint32_t db_workers = 2;
  uint32_t jen_workers = 3;
  HdfsFormat format = HdfsFormat::kColumnar;
  uint32_t rows_per_block = 4096;
  std::string summary;  ///< one line for logs
};

DiffCase MakeRandomCase(uint64_t seed);

/// What happened to one variant of one case.
struct VariantOutcome {
  std::string variant;
  Status status;          ///< the run's Status
  bool matched = false;   ///< equal to the oracle (meaningful when status ok)
  std::string mismatch;   ///< first differing cell, when !matched
};

/// The verdict for one (seed, profile) pair.
struct DiffCaseReport {
  uint64_t seed = 0;
  std::string profile;
  uint32_t exec_threads = 1;
  uint64_t mem_budget_bytes = 0;
  double zipf_s = 0;
  bool adaptive = false;
  bool profile_recoverable = true;
  std::string case_summary;
  Status setup_error;  ///< generation/load/oracle failure (aborts the case)
  std::vector<VariantOutcome> outcomes;

  /// Under a recoverable profile every variant must run OK and match the
  /// oracle; under an unrecoverable one each variant must either match or
  /// fail with a non-OK Status (silent wrong answers are never acceptable).
  bool ok() const;

  /// Human-readable verdict, including the reproduction command when not ok.
  std::string Summary() const;
};

/// Runs all variants of the seed's case under the named fault profile
/// ("none", "delays", "flaky", "stall", "lossy"), comparing against
/// RunReferenceJoin. `recv_timeout_ms` bounds every blocking receive so
/// injected loss surfaces as Status::TimedOut instead of a hang.
/// `exec_threads` sets SimulationConfig::exec_threads for every variant:
/// 1 (the default) pins the historical single-threaded per-worker
/// execution; > 1 asserts that morsel-parallel scan/build/probe/aggregate
/// still match the reference byte-for-byte. A non-empty
/// `profile_out_prefix` writes each successful variant's query-profile
/// JSON to `<prefix>.<variant>.json` (best-effort; CI uploads these).
/// `mem_budget_bytes` sets SimulationConfig::query_memory_budget_bytes for
/// every variant (0 = unlimited): the grace join spills to honor it, and
/// the spilled runs must still match the oracle byte-for-byte — this is
/// the memory-pressure axis of the sweep. The single-node reference oracle
/// is never budgeted. `zipf_s` overrides the case's key-skew exponent
/// (0, the default, keeps the seed's historical uniform workload
/// bit-identical): a skewed sweep exercises the skew-aware hybrid shuffle
/// route, which must also match the oracle byte-for-byte. `adaptive` adds
/// an eighth variant, "adaptive", that executes through ExecuteAuto's
/// adaptive decision point with the pivot hysteresis forced to zero — any
/// disagreement between the sampled estimates and the observed prefix
/// statistics pivots mid-query, so the sweep fuzzes every pivot path (the
/// single-node reference oracle stays static, as do the other variants).
DiffCaseReport RunDifferentialCase(uint64_t seed,
                                   const std::string& profile_name,
                                   uint64_t recv_timeout_ms = 5000,
                                   uint32_t exec_threads = 1,
                                   const std::string& profile_out_prefix = "",
                                   uint64_t mem_budget_bytes = 0,
                                   double zipf_s = 0,
                                   bool adaptive = false);

}  // namespace testing_support
}  // namespace hybridjoin

#endif  // HYBRIDJOIN_TESTING_DIFFERENTIAL_H_
