#include "testing/differential.h"

#include <sstream>

#include "hdfs/format.h"
#include "hybrid/reference.h"
#include "workload/loader.h"

namespace hybridjoin {
namespace testing_support {

namespace {

// SplitMix64: every knob of a case is drawn from this generator seeded with
// the case seed, so a seed fully determines the case on every platform
// (std::mt19937's distributions are not portable across libstdc++ versions).
class SplitMix {
 public:
  explicit SplitMix(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4568bULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [lo, hi], inclusive.
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Next() % (hi - lo + 1);
  }

  /// Uniform in [0, 1).
  double Unit() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform in [lo, hi).
  double RangeF(double lo, double hi) { return lo + Unit() * (hi - lo); }

 private:
  uint64_t state_;
};

std::string CellToString(const ColumnVector& col, size_t row) {
  switch (col.physical_type()) {
    case PhysicalType::kInt32:
      return std::to_string(col.i32()[row]);
    case PhysicalType::kInt64:
      return std::to_string(col.i64()[row]);
    case PhysicalType::kFloat64:
      return std::to_string(col.f64()[row]);
    case PhysicalType::kString:
      return "\"" + col.str()[row] + "\"";
  }
  return "?";
}

bool CellsEqual(const ColumnVector& a, const ColumnVector& b, size_t row) {
  switch (a.physical_type()) {
    case PhysicalType::kInt32:
      return a.i32()[row] == b.i32()[row];
    case PhysicalType::kInt64:
      return a.i64()[row] == b.i64()[row];
    case PhysicalType::kFloat64:
      return a.f64()[row] == b.f64()[row];
    case PhysicalType::kString:
      return a.str()[row] == b.str()[row];
  }
  return false;
}

}  // namespace

const std::vector<std::string>& DifferentialVariants() {
  static const std::vector<std::string> kVariants = {
      "db",     "db_bloom",          "broadcast",      "repartition",
      "repartition_bloom", "zigzag", "zigzag_semijoin"};
  return kVariants;
}

Result<QueryResult> RunVariant(HybridWarehouse* warehouse,
                               const HybridQuery& query,
                               const std::string& variant) {
  if (variant == "db") {
    return warehouse->Execute(query, JoinAlgorithm::kDbSide);
  }
  if (variant == "db_bloom") {
    return warehouse->Execute(query, JoinAlgorithm::kDbSideBloom);
  }
  if (variant == "broadcast") {
    return warehouse->Execute(query, JoinAlgorithm::kBroadcast);
  }
  if (variant == "repartition") {
    return warehouse->Execute(query, JoinAlgorithm::kRepartition);
  }
  if (variant == "repartition_bloom") {
    return warehouse->Execute(query, JoinAlgorithm::kRepartitionBloom);
  }
  if (variant == "zigzag") {
    return warehouse->Execute(query, JoinAlgorithm::kZigzag);
  }
  if (variant == "adaptive") {
    // ExecuteAuto routes through the adaptive decision point when
    // SimulationConfig::adaptive.enabled (the sweep also zeroes the pivot
    // hysteresis so estimate-vs-observation disagreements always pivot).
    return warehouse->ExecuteAuto(query);
  }
  if (variant == "zigzag_semijoin") {
    // Not reachable through the JoinAlgorithm enum: the exact-semijoin
    // second filter is a driver-level ablation, so invoke the driver.
    EngineContext* ctx = &warehouse->context();
    HJ_ASSIGN_OR_RETURN(PreparedQuery prepared, PrepareQuery(ctx, query));
    JoinDriverOptions options;
    options.second_filter = SecondFilterKind::kExactSemijoin;
    return RunRepartitionFamilyJoin(ctx, prepared, /*use_db_bloom=*/true,
                                    /*zigzag=*/true, options);
  }
  return Status::InvalidArgument("unknown variant '" + variant + "'");
}

std::optional<std::string> CompareBatches(const RecordBatch& expected,
                                          const RecordBatch& actual) {
  if (actual.num_columns() != expected.num_columns()) {
    return "column count: expected " + std::to_string(expected.num_columns()) +
           ", got " + std::to_string(actual.num_columns());
  }
  if (actual.num_rows() != expected.num_rows()) {
    return "row count: expected " + std::to_string(expected.num_rows()) +
           ", got " + std::to_string(actual.num_rows());
  }
  for (size_t c = 0; c < expected.num_columns(); ++c) {
    if (actual.column(c).physical_type() !=
        expected.column(c).physical_type()) {
      return "column " + std::to_string(c) + ": physical type mismatch";
    }
    for (size_t r = 0; r < expected.num_rows(); ++r) {
      if (!CellsEqual(expected.column(c), actual.column(c), r)) {
        return "row " + std::to_string(r) + " col " + std::to_string(c) +
               ": expected " + CellToString(expected.column(c), r) + ", got " +
               CellToString(actual.column(c), r);
      }
    }
  }
  return std::nullopt;
}

DiffCase MakeRandomCase(uint64_t seed) {
  SplitMix rng(seed);
  DiffCase c;

  // Small enough that 200 seeds x 7 variants x several profiles finish in
  // minutes, large enough that every worker sees multiple batches/blocks.
  c.workload.num_join_keys = rng.Range(64, 768);
  c.workload.t_rows = rng.Range(1500, 8000);
  c.workload.l_rows = rng.Range(6000, 30000);
  c.workload.num_groups = static_cast<uint32_t>(rng.Range(1, 48));
  c.workload.batch_rows = static_cast<uint32_t>(rng.Range(1024, 8192));
  c.workload.seed = rng.Next();

  // Draw selectivity targets until the solver accepts them (most draws are
  // feasible; the retry keeps the case distribution wide without biasing
  // toward a fixed fallback).
  bool solved = false;
  for (int attempt = 0; attempt < 32 && !solved; ++attempt) {
    SelectivitySpec spec;
    spec.sigma_t = rng.RangeF(0.02, 0.6);
    spec.sigma_l = rng.RangeF(0.02, 0.6);
    spec.st = rng.RangeF(0.05, 1.0);
    spec.sl = rng.RangeF(0.05, 1.0);
    if (SolveSelectivities(spec, c.workload).ok()) {
      c.spec = spec;
      solved = true;
    }
  }
  if (!solved) c.spec = SelectivitySpec{0.1, 0.1, 0.5, 0.5};

  c.db_workers = static_cast<uint32_t>(rng.Range(1, 5));
  c.jen_workers = static_cast<uint32_t>(rng.Range(1, 6));
  c.format = (rng.Next() & 1) ? HdfsFormat::kText : HdfsFormat::kColumnar;
  const uint32_t kBlockRows[] = {512, 1024, 2048, 4096};
  c.rows_per_block = kBlockRows[rng.Range(0, 3)];

  std::ostringstream os;
  os << "keys=" << c.workload.num_join_keys << " t=" << c.workload.t_rows
     << " l=" << c.workload.l_rows << " groups=" << c.workload.num_groups
     << " batch=" << c.workload.batch_rows << " spec={" << c.spec.sigma_t
     << "," << c.spec.sigma_l << "," << c.spec.st << "," << c.spec.sl << "}"
     << " m=" << c.db_workers << " n=" << c.jen_workers
     << " fmt=" << HdfsFormatName(c.format) << " rpb=" << c.rows_per_block;
  c.summary = os.str();
  return c;
}

bool DiffCaseReport::ok() const {
  if (!setup_error.ok()) return false;
  if (outcomes.empty()) return false;
  for (const VariantOutcome& o : outcomes) {
    if (o.status.ok()) {
      // A run that claims success must match the oracle under EVERY
      // profile — a wrong answer is never an acceptable fault outcome.
      if (!o.matched) return false;
    } else if (profile_recoverable) {
      // Recoverable profiles must be absorbed by retry/dedup.
      return false;
    }
    // Unrecoverable profile + non-OK status: clean failure, acceptable.
  }
  return true;
}

std::string DiffCaseReport::Summary() const {
  std::ostringstream os;
  os << "seed=" << seed << " profile=" << profile << " [" << case_summary
     << "]";
  if (!setup_error.ok()) {
    os << "\n  SETUP FAILED: " << setup_error.ToString();
  }
  for (const VariantOutcome& o : outcomes) {
    os << "\n  " << o.variant << ": ";
    if (!o.status.ok()) {
      os << (profile_recoverable ? "FAILED (profile is recoverable): "
                                 : "failed cleanly: ")
         << o.status.ToString();
    } else if (!o.matched) {
      os << "MISMATCH vs reference: " << o.mismatch;
    } else {
      os << "ok";
    }
  }
  if (!ok()) {
    os << "\n  reproduce: fuzz_joins --seed=" << seed
       << " --profiles=" << profile;
    if (exec_threads != 1) os << " --exec_threads=" << exec_threads;
    if (mem_budget_bytes != 0) {
      os << " --mem_budget_bytes=" << mem_budget_bytes;
    }
    if (zipf_s != 0) os << " --zipf_s=" << zipf_s;
    if (adaptive) os << " --adaptive";
  }
  return os.str();
}

DiffCaseReport RunDifferentialCase(uint64_t seed,
                                   const std::string& profile_name,
                                   uint64_t recv_timeout_ms,
                                   uint32_t exec_threads,
                                   const std::string& profile_out_prefix,
                                   uint64_t mem_budget_bytes,
                                   double zipf_s, bool adaptive) {
  DiffCaseReport report;
  report.seed = seed;
  report.profile = profile_name;
  report.exec_threads = exec_threads;
  report.mem_budget_bytes = mem_budget_bytes;
  report.zipf_s = zipf_s;
  report.adaptive = adaptive;

  DiffCase c = MakeRandomCase(seed);
  // The skew axis overrides the generator's key draw only; every other knob
  // of the case stays the seed's, so a skewed sweep covers the same shapes.
  c.workload.zipf_s = zipf_s;
  if (zipf_s != 0) {
    c.summary += " zipf_s=" + std::to_string(zipf_s);
  }
  report.case_summary = c.summary;

  // The profile is seeded with the case seed so the whole run — workload,
  // cluster shape and fault schedule — reproduces from one number.
  auto profile = FaultProfile::ByName(profile_name, seed, c.jen_workers);
  if (!profile.ok()) {
    report.setup_error = profile.status();
    return report;
  }
  report.profile_recoverable = profile->recoverable();

  auto workload = Workload::Generate(c.workload, c.spec);
  if (!workload.ok()) {
    report.setup_error = workload.status();
    return report;
  }
  const HybridQuery query = workload->MakeQuery();

  auto expected =
      RunReferenceJoin({workload->t_rows()}, workload->l_batches(), query);
  if (!expected.ok()) {
    report.setup_error = expected.status();
    return report;
  }

  std::vector<std::string> variants = DifferentialVariants();
  if (adaptive) variants.push_back("adaptive");

  for (const std::string& variant : variants) {
    // A fresh warehouse per variant: the one-shot stall re-arms, and every
    // variant sees the same deterministic fault schedule from seq 0 instead
    // of one schedule smeared across whichever variants ran earlier.
    SimulationConfig config;
    config.db.num_workers = c.db_workers;
    config.jen_workers = c.jen_workers;
    config.bloom.expected_keys = c.workload.num_join_keys;
    // Pin the sweep to the blocked Bloom layout explicitly: the differential
    // comparison must hold with the batched cache-line-blocked kernels on
    // the hot path (a false positive the filter lets through is removed by
    // the join itself, so results are layout-invariant — this asserts it).
    config.bloom.layout = BloomLayout::kBlocked;
    // Pinned (not auto-derived) so a sweep means the same thing on every
    // host; the default of 1 keeps the historical single-threaded engine.
    config.exec_threads = exec_threads;
    // Memory-pressure axis: a nonzero budget seeds every variant's
    // MemoryGovernor, forcing the grace join to spill on the larger cases
    // while the oracle stays unbudgeted — spilling must not change results.
    config.query_memory_budget_bytes = mem_budget_bytes;
    // The adaptive sweep forces every estimate-vs-observation disagreement
    // to pivot (zero hysteresis), so the mid-query handoff paths get fuzzed
    // instead of only engaging on badly wrong estimates. The sample-cost
    // fraction cap is lifted too: the cases here are deliberately tiny
    // (few blocks per worker), and with the default cap no worker would
    // ship a JEN sample, leaving the observed-HDFS paths unexercised.
    if (adaptive) {
      config.adaptive.pivot_threshold = 0.0;
      config.adaptive.hdfs_sample_max_fraction = 1.0;
    }
    config.net.recv_timeout_ms = recv_timeout_ms;
    config.fault = *profile;
    HybridWarehouse hw(config);

    LoadOptions load;
    load.hdfs.format = c.format;
    load.hdfs.rows_per_block = c.rows_per_block;
    if (Status s = LoadWorkload(&hw, *workload, load); !s.ok()) {
      report.setup_error = s;  // loading never touches the faulted network
      return report;
    }

    VariantOutcome out;
    out.variant = variant;
    auto result = RunVariant(&hw, query, variant);
    out.status = result.status();
    if (result.ok()) {
      auto diff = CompareBatches(*expected, result->rows);
      out.matched = !diff.has_value();
      if (diff.has_value()) out.mismatch = *diff;
      if (!profile_out_prefix.empty()) {
        // Best-effort export: a failure to write is not a case failure.
        (void)result->report.profile.WriteJson(profile_out_prefix + "." +
                                               variant + ".json");
      }
    }
    report.outcomes.push_back(std::move(out));
  }
  return report;
}

}  // namespace testing_support
}  // namespace hybridjoin
