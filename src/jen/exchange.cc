#include "jen/exchange.h"

#include <chrono>

#include "common/query_scope.h"
#include "obs/query_registry.h"
#include "trace/tracer.h"

namespace hybridjoin {

Status SendWithRetry(Network* network, NodeId from, NodeId to, uint64_t tag,
                     std::shared_ptr<const std::vector<uint8_t>> payload,
                     uint32_t max_attempts, uint64_t backoff_us) {
  HJ_CHECK_GT(max_attempts, 0u);
  const uint64_t seq = network->ReserveSeq(from, to, tag);
  Status last;
  for (uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0 && backoff_us > 0) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(backoff_us << (attempt - 1)));
    }
    last = network->Send(from, to, tag, payload, attempt, seq);
    if (last.ok() || !last.IsUnavailable()) return last;
  }
  return last;
}

BatchSender::BatchSender(Network* network, NodeId self, uint64_t tag,
                         uint32_t num_threads, Metrics* metrics,
                         const char* tuple_counter)
    : network_(network),
      self_(self),
      tag_(tag),
      metrics_(metrics),
      tuple_counter_(tuple_counter),
      governor_(MemoryGovernor::Current()),
      pool_(BufferPool::Create()) {
  HJ_CHECK_GT(num_threads, 0u);
  threads_.reserve(num_threads);
  const uint64_t query_id = QueryScope::Current();
  for (uint32_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, query_id] {
      QueryScope query_scope(query_id);
      MemoryGovernor::Scope governor_scope(governor_);
      trace::ThreadScope thread_scope(self_, "sender");
      while (auto item = queue_.Pop()) {
        if (governor_ != nullptr) governor_->Release(item->payload->size());
        // After a permanent failure further batches are dropped (not sent):
        // the stream is already broken and the error is sticky, but the
        // queue must keep draining so producers don't block.
        if (failed_.load(std::memory_order_acquire)) continue;
        // Exchange boundaries are cancellation points: a KILLed query
        // stops sending (the error is sticky) while the queue keeps
        // draining, and EOS still goes out in Finish so receivers unblock.
        if (obs::QueryRegistry::IsCancelled()) {
          RecordError(obs::QueryRegistry::CheckCancelled());
          continue;
        }
        Status s = SendWithRetry(network_, self_, item->dest, tag_,
                                 std::move(item->payload));
        if (!s.ok()) RecordError(s);
      }
    });
  }
}

void BatchSender::RecordError(const Status& s) {
  std::lock_guard<std::mutex> lock(error_mu_);
  if (first_error_.ok()) first_error_ = s;
  failed_.store(true, std::memory_order_release);
}

BatchSender::~BatchSender() {
  if (!finished_) {
    queue_.Close();
    for (auto& t : threads_) t.join();
    // Abandoned (never Finished) senders drop queued items without sending;
    // their governor charges still have to come back.
    while (auto item = queue_.TryPop()) {
      if (governor_ != nullptr) governor_->Release(item->payload->size());
    }
  }
}

void BatchSender::Send(NodeId dest, const RecordBatch& batch) {
  const int64_t rows = static_cast<int64_t>(batch.num_rows());
  tuples_sent_.fetch_add(rows, std::memory_order_relaxed);
  if (metrics_ != nullptr && tuple_counter_ != nullptr) {
    metrics_->Add(tuple_counter_, rows);
  }
  BinaryWriter w(pool_->Acquire());
  batch.SerializeTo(&w);
  auto payload = pool_->Share(w.Release());
  if (governor_ != nullptr) governor_->Reserve(payload->size());
  queue_.Push(Item{dest, std::move(payload)});
}

void BatchSender::SendToAll(const std::vector<NodeId>& dests,
                            const RecordBatch& batch) {
  BinaryWriter w(pool_->Acquire());
  batch.SerializeTo(&w);
  SendSerialized(dests, pool_->Share(w.Release()),
                 static_cast<int64_t>(batch.num_rows()));
}

void BatchSender::SendSerialized(
    const std::vector<NodeId>& dests,
    std::shared_ptr<const std::vector<uint8_t>> payload,
    int64_t tuple_count) {
  for (NodeId dest : dests) {
    tuples_sent_.fetch_add(tuple_count, std::memory_order_relaxed);
    if (metrics_ != nullptr && tuple_counter_ != nullptr) {
      metrics_->Add(tuple_counter_, tuple_count);
    }
    if (governor_ != nullptr) governor_->Reserve(payload->size());
    queue_.Push(Item{dest, payload});
  }
}

Status BatchSender::Finish(const std::vector<NodeId>& dests) {
  HJ_CHECK(!finished_) << "BatchSender::Finish called twice";
  finished_ = true;
  queue_.Close();
  for (auto& t : threads_) t.join();
  // Drain anything the closed queue still holds (Close lets Pop continue
  // to drain, but the threads may have exited on the closed signal first).
  while (auto item = queue_.TryPop()) {
    if (governor_ != nullptr) governor_->Release(item->payload->size());
    if (failed_.load(std::memory_order_acquire)) continue;
    Status s = SendWithRetry(network_, self_, item->dest, tag_,
                             std::move(item->payload));
    if (!s.ok()) RecordError(s);
  }
  // EOS is a protocol obligation: it goes out even on a broken stream so
  // receivers unblock and observe the error through their own channels.
  for (NodeId dest : dests) {
    network_->SendEos(self_, dest, tag_);
  }
  return status();
}

Result<std::vector<RecordBatch>> ReceiveAllBatches(Network* network,
                                                   NodeId self, uint64_t tag,
                                                   uint32_t expected_senders,
                                                   const SchemaPtr& schema) {
  std::vector<RecordBatch> out;
  StreamReceiver receiver(network, self, tag, expected_senders);
  while (auto msg = receiver.Next()) {
    HJ_ASSIGN_OR_RETURN(RecordBatch batch,
                        RecordBatch::Deserialize(*msg->payload, schema));
    out.push_back(std::move(batch));
  }
  HJ_RETURN_IF_ERROR(receiver.status());
  return out;
}

Status ReceiveIntoHashTable(Network* network, NodeId self, uint64_t tag,
                            uint32_t expected_senders,
                            const SchemaPtr& schema, JoinHashTable* table) {
  StreamReceiver receiver(network, self, tag, expected_senders);
  while (auto msg = receiver.Next()) {
    HJ_ASSIGN_OR_RETURN(RecordBatch batch,
                        RecordBatch::Deserialize(*msg->payload, schema));
    HJ_RETURN_IF_ERROR(table->AddBatch(std::move(batch)));
  }
  return receiver.status();
}

void SendBloom(Network* network, NodeId from, NodeId to, uint64_t tag,
               const BloomFilter& bloom, Metrics* metrics) {
  auto payload =
      std::make_shared<const std::vector<uint8_t>>(bloom.Serialize());
  if (metrics != nullptr) {
    metrics->Add(metric::kBloomFiltersSent, 1);
    metrics->Add(metric::kBloomBytesSent,
                 static_cast<int64_t>(payload->size()));
  }
  network->SendControl(from, to, tag, std::move(payload));
}

Result<BloomFilter> RecvBloom(Network* network, NodeId self, uint64_t tag) {
  HJ_ASSIGN_OR_RETURN(Message msg, network->Recv(self, tag));
  if (msg.eos || msg.payload == nullptr) {
    return Status::Internal("expected Bloom filter, got EOS");
  }
  return BloomFilter::Deserialize(*msg.payload);
}

void SendHotKeys(Network* network, NodeId from, NodeId to, uint64_t tag,
                 const HotKeySet& hot) {
  network->SendControl(
      from, to, tag,
      std::make_shared<const std::vector<uint8_t>>(hot.Serialize()));
}

Result<HotKeySet> RecvHotKeys(Network* network, NodeId self, uint64_t tag) {
  HJ_ASSIGN_OR_RETURN(Message msg, network->Recv(self, tag));
  if (msg.eos || msg.payload == nullptr) {
    return Status::Internal("expected hot-key set, got EOS");
  }
  return HotKeySet::Deserialize(*msg.payload);
}

void SendSketch(Network* network, NodeId from, NodeId to, uint64_t tag,
                const HeavyHitterSketch& sketch) {
  network->SendControl(
      from, to, tag,
      std::make_shared<const std::vector<uint8_t>>(sketch.Serialize()));
}

Result<HeavyHitterSketch> RecvSketch(Network* network, NodeId self,
                                     uint64_t tag) {
  HJ_ASSIGN_OR_RETURN(Message msg, network->Recv(self, tag));
  if (msg.eos || msg.payload == nullptr) {
    return Status::Internal("expected heavy-hitter sketch, got EOS");
  }
  return HeavyHitterSketch::Deserialize(*msg.payload);
}

Status SkewRouter::Append(const RecordBatch& batch,
                          const std::vector<uint32_t>& sel) {
  if (hot_ == nullptr) return cold_.Append(batch, sel);
  const ColumnVector& key_col = batch.column(key_column_);
  cold_sel_.clear();
  for (uint32_t r : sel) {
    const int64_t key = key_col.physical_type() == PhysicalType::kInt32
                            ? key_col.i32()[r]
                            : key_col.i64()[r];
    if (!hot_->Contains(key)) {
      cold_sel_.push_back(r);
      continue;
    }
    hot_pending_.AppendRowFrom(batch, r);
    ++hot_rows_;
    if (hot_pending_.num_rows() >= flush_rows_) {
      HJ_RETURN_IF_ERROR(hot_sink_(std::move(hot_pending_)));
      hot_pending_ = RecordBatch(schema_);
    }
  }
  return cold_.Append(batch, cold_sel_);
}

Status SkewRouter::FlushAll() {
  if (hot_ != nullptr && hot_pending_.num_rows() > 0) {
    HJ_RETURN_IF_ERROR(hot_sink_(std::move(hot_pending_)));
    hot_pending_ = RecordBatch(schema_);
  }
  return cold_.FlushAll();
}

std::vector<uint8_t> ScanRequest::Serialize() const {
  BinaryWriter w;
  if (predicate != nullptr) {
    w.PutU8(1);
    predicate->SerializeTo(&w);
  } else {
    w.PutU8(0);
  }
  w.PutVarint(projection.size());
  for (const auto& name : projection) w.PutString(name);
  if (bloom.has_value()) {
    w.PutU8(1);
    w.PutString(bloom_column);
    bloom->SerializeTo(&w);
  } else {
    w.PutU8(0);
  }
  return w.Release();
}

Result<ScanRequest> ScanRequest::Deserialize(
    const std::vector<uint8_t>& buf) {
  ScanRequest req;
  BinaryReader r(buf);
  HJ_ASSIGN_OR_RETURN(uint8_t has_pred, r.GetU8());
  if (has_pred != 0) {
    HJ_ASSIGN_OR_RETURN(req.predicate, Predicate::Deserialize(&r));
  }
  HJ_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  if (n > 4096) return Status::IOError("scan request projection too large");
  req.projection.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    HJ_ASSIGN_OR_RETURN(std::string name, r.GetString());
    req.projection.push_back(std::move(name));
  }
  HJ_ASSIGN_OR_RETURN(uint8_t has_bloom, r.GetU8());
  if (has_bloom != 0) {
    HJ_ASSIGN_OR_RETURN(req.bloom_column, r.GetString());
    HJ_ASSIGN_OR_RETURN(BloomFilter bloom, BloomFilter::Deserialize(&r));
    req.bloom = std::move(bloom);
  }
  if (!r.AtEnd()) return Status::IOError("scan request trailing bytes");
  return req;
}

}  // namespace hybridjoin
