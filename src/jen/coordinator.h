// JenCoordinator: the single coordinator of the JEN execution engine
// (paper §4.1). It resolves HDFS tables through HCatalog, asks the NameNode
// for block locations, builds balanced locality-aware block assignments for
// the workers, brokers the connections between DB workers and JEN workers
// (Figure 5), and publishes the agreed shuffle hash function.

#ifndef HYBRIDJOIN_JEN_COORDINATOR_H_
#define HYBRIDJOIN_JEN_COORDINATOR_H_

#include <vector>

#include "common/result.h"
#include "hdfs/hcatalog.h"
#include "hdfs/namenode.h"

namespace hybridjoin {

/// Engine-level tuning knobs for JEN.
struct JenConfig {
  uint32_t send_threads = 2;        ///< per-worker shuffle send pool
  /// Process threads per worker for the Figure-7 scan pipeline (decode,
  /// predicate, Bloom, project, serialize run morsel-parallel off the read
  /// queue). 0 inherits SimulationConfig::exec_threads; 1 reproduces the
  /// historical single-process-thread pipeline exactly. EngineContext
  /// resolves this to >= 1 before constructing workers.
  uint32_t process_threads = 0;
  uint32_t shuffle_batch_rows = 4096;
  size_t read_queue_capacity = 8;   ///< blocks buffered between read/process
  bool locality_aware = true;       ///< block assignment respects replicas
  bool chunk_skipping = true;       ///< columnar min/max pruning
  /// Bytes charged for looking at a block footer when the block is skipped.
  uint64_t footer_read_bytes = 256;
  /// Memory budget for the local join's resident build side, in bytes.
  /// 0 keeps the paper's all-in-memory join; > 0 enables the Grace/hybrid
  /// hash join with spilling (the paper's §4.4 future work).
  uint64_t join_memory_budget_bytes = 0;
  uint32_t grace_partitions = 16;
  /// Spill disk bandwidths (bytes/sec; 0 = unthrottled).
  uint64_t spill_write_bps = 0;
  uint64_t spill_read_bps = 0;
};

/// One block assigned to one worker, with the replica it should read.
struct BlockAssignment {
  BlockInfo info;
  ReplicaLocation replica;
  bool local = false;  ///< replica lives on the worker's own DataNode
};

/// The scan work for the whole cluster: per_worker[w] lists worker w's
/// blocks.
struct ScanPlan {
  HdfsTableMeta meta;
  std::vector<std::vector<BlockAssignment>> per_worker;

  /// Fraction of blocks read from a local replica (diagnostic).
  double LocalityFraction() const;
};

class JenCoordinator {
 public:
  JenCoordinator(HCatalog* hcatalog, NameNode* namenode, uint32_t num_workers,
                 JenConfig config)
      : hcatalog_(hcatalog),
        namenode_(namenode),
        num_workers_(num_workers),
        config_(config) {}

  uint32_t num_workers() const { return num_workers_; }
  const JenConfig& config() const { return config_; }

  /// The worker that performs global Bloom-filter / aggregate combination
  /// and talks to the database for final results.
  uint32_t designated_worker() const { return 0; }

  /// Resolves the table and assigns its blocks to workers, balanced and
  /// (when configured) locality-aware: each block goes to a worker holding
  /// a replica when that does not skew the load beyond +/-1 block.
  Result<ScanPlan> PlanScan(const std::string& table) const;

  /// Connection brokering for DB-side data exchange (Figure 5): splits the
  /// n JEN workers into m groups, one group per DB worker. Worker w talks to
  /// DB worker GroupOf(w).
  std::vector<std::vector<uint32_t>> GroupWorkersForDb(
      uint32_t num_db_workers) const;

 private:
  HCatalog* hcatalog_;
  NameNode* namenode_;
  uint32_t num_workers_;
  JenConfig config_;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_JEN_COORDINATOR_H_
