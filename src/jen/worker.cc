#include "jen/worker.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <numeric>
#include <optional>
#include <thread>

#include "common/blocking_queue.h"
#include "common/query_scope.h"
#include "exec/memory_governor.h"

namespace hybridjoin {

namespace {

/// True when chunk stats prove no row can satisfy `cmp`.
bool StatsRefute(const ConjunctiveIntCmp& cmp, int64_t min_val,
                 int64_t max_val) {
  switch (cmp.op) {
    case CmpOp::kEq:
      return cmp.literal < min_val || cmp.literal > max_val;
    case CmpOp::kNe:
      return min_val == max_val && min_val == cmp.literal;
    case CmpOp::kLt:
      return min_val >= cmp.literal;
    case CmpOp::kLe:
      return min_val > cmp.literal;
    case CmpOp::kGt:
      return max_val <= cmp.literal;
    case CmpOp::kGe:
      return max_val < cmp.literal;
  }
  return false;
}

/// Computes the union of output projection, predicate columns, and the
/// Bloom column — the columns the scan must materialize — as schema indexes
/// in schema order.
Result<std::vector<size_t>> MaterializeSet(const ScanTask& task) {
  std::vector<std::string> needed = task.projection;
  if (task.predicate != nullptr) {
    task.predicate->CollectColumns(&needed);
  }
  if (task.bloom != nullptr) needed.push_back(task.bloom_column);
  std::vector<size_t> indexes;
  for (const std::string& name : needed) {
    HJ_ASSIGN_OR_RETURN(size_t idx, task.meta.schema->IndexOf(name));
    indexes.push_back(idx);
  }
  std::sort(indexes.begin(), indexes.end());
  indexes.erase(std::unique(indexes.begin(), indexes.end()), indexes.end());
  return indexes;
}

struct ReadItem {
  std::shared_ptr<const StoredBlock> block;
};

}  // namespace

Result<SchemaPtr> JenWorker::OutputSchema(const ScanTask& task) {
  std::vector<size_t> indexes;
  for (const std::string& name : task.projection) {
    HJ_ASSIGN_OR_RETURN(size_t idx, task.meta.schema->IndexOf(name));
    indexes.push_back(idx);
  }
  return task.meta.schema->Project(indexes);
}

Status FilterByBloom(const RecordBatch& batch, const std::string& column,
                     const BloomFilter& bloom, std::vector<uint32_t>* sel) {
  HJ_ASSIGN_OR_RETURN(size_t idx, batch.schema()->IndexOf(column));
  const ColumnVector& cv = batch.column(idx);
  switch (cv.physical_type()) {
    case PhysicalType::kInt32:
      bloom.MayContainKeys(std::span<const int32_t>(cv.i32()), sel);
      break;
    case PhysicalType::kInt64:
      bloom.MayContainKeys(std::span<const int64_t>(cv.i64()), sel);
      break;
    default:
      return Status::InvalidArgument("Bloom column must be integer-typed");
  }
  return Status::OK();
}

Status JenWorker::ScanBlocks(const ScanTask& task,
                             const ScanConsumer& consumer, ScanStats* stats) {
  return ScanImpl(
      task, [&consumer](uint32_t) { return consumer; }, stats,
      /*process_threads=*/1);
}

Status JenWorker::ScanBlocksParallel(const ScanTask& task,
                                     const ScanConsumerFactory& factory,
                                     ScanStats* stats) {
  return ScanImpl(task, factory, stats,
                  std::max(1u, config_.process_threads));
}

Status JenWorker::ScanImpl(const ScanTask& task,
                           const ScanConsumerFactory& factory,
                           ScanStats* stats, uint32_t process_threads) {
  trace::Span scan_span(tracer_, trace::span::kJenScan,
                        trace::span::kCatScan, node());
  ScanStats local_stats;
  ScanStats* st = stats != nullptr ? stats : &local_stats;

  HJ_ASSIGN_OR_RETURN(std::vector<size_t> materialize, MaterializeSet(task));

  // Conjunctive comparisons for columnar chunk skipping.
  std::vector<ConjunctiveIntCmp> skip_cmps;
  if (config_.chunk_skipping && task.predicate != nullptr &&
      task.meta.format == HdfsFormat::kColumnar) {
    task.predicate->CollectConjunctiveIntCmps(&skip_cmps);
  }
  // Map predicate columns to schema indexes once.
  std::map<std::string, size_t> col_index;
  for (size_t i = 0; i < task.meta.schema->num_fields(); ++i) {
    col_index[task.meta.schema->field(i).name] = i;
  }

  // Partition assigned blocks into per-read-thread lists: one list per
  // local disk plus one list for remote blocks.
  std::map<uint32_t, std::vector<const BlockAssignment*>> by_disk;
  std::vector<const BlockAssignment*> remote;
  for (const BlockAssignment& a : task.blocks) {
    if (a.local) {
      by_disk[a.replica.disk].push_back(&a);
    } else {
      remote.push_back(&a);
    }
  }

  BlockingQueue<ReadItem> queue(config_.read_queue_capacity);
  std::mutex status_mu;
  Status first_error;
  auto record_error = [&](const Status& s) {
    std::lock_guard<std::mutex> lock(status_mu);
    if (first_error.ok()) first_error = s;
  };
  std::atomic<int64_t> bytes_read{0};
  std::atomic<int64_t> blocks_read{0};
  std::atomic<int64_t> blocks_skipped{0};
  std::atomic<int64_t> blocks_remote{0};

  auto read_loop = [&](const std::vector<const BlockAssignment*>& blocks) {
    trace::ThreadScope thread_scope(node(), "jen_read");
    for (const BlockAssignment* a : blocks) {
      trace::Span read_span(tracer_, trace::span::kJenReadBlock,
                            trace::span::kCatScan, node());
      DataNode* owner = datanodes_[a->replica.node];
      auto fetched = owner->Fetch(a->info.block_id);
      if (!fetched.ok()) {
        record_error(fetched.status());
        return;
      }
      std::shared_ptr<const StoredBlock> block = std::move(fetched).value();

      // Columnar: chunk skipping + projection pushdown decide the I/O.
      uint64_t read_bytes = 0;
      bool skip = false;
      if (block->format == HdfsFormat::kColumnar) {
        for (const ConjunctiveIntCmp& cmp : skip_cmps) {
          auto it = col_index.find(cmp.column);
          if (it == col_index.end()) continue;
          const ColumnChunk& chunk = block->columnar->chunks[it->second];
          if (chunk.has_stats &&
              StatsRefute(cmp, chunk.min_val, chunk.max_val)) {
            skip = true;
            break;
          }
        }
        if (skip) {
          read_bytes = config_.footer_read_bytes;
        } else {
          for (size_t idx : materialize) {
            read_bytes += block->columnar->chunks[idx].ByteSize();
          }
        }
      } else {
        read_bytes = block->ByteSize();
      }

      read_span.set_bytes(static_cast<int64_t>(read_bytes));
      owner->AccountRead(a->info.block_id, read_bytes);
      if (!a->local) {
        network_->Transfer(NodeId::Hdfs(a->replica.node), node(),
                           read_bytes);
        blocks_remote.fetch_add(1, std::memory_order_relaxed);
      }
      bytes_read.fetch_add(static_cast<int64_t>(read_bytes),
                           std::memory_order_relaxed);
      if (skip) {
        blocks_skipped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      blocks_read.fetch_add(1, std::memory_order_relaxed);
      if (!queue.Push(ReadItem{std::move(block)})) return;  // aborted
    }
  };

  // Launch the read threads (Figure 7: one per disk, plus one draining the
  // remote blocks).
  const uint64_t query_id = QueryScope::Current();
  MemoryGovernor* const governor = MemoryGovernor::Current();
  auto scoped_read_loop = [&read_loop, query_id, governor](
                              const std::vector<const BlockAssignment*>&
                                  blocks) {
    QueryScope query_scope(query_id);
    MemoryGovernor::Scope governor_scope(governor);
    read_loop(blocks);
  };
  std::vector<std::thread> readers;
  for (auto& [disk, blocks] : by_disk) {
    readers.emplace_back(scoped_read_loop, std::cref(blocks));
  }
  if (!remote.empty()) {
    readers.emplace_back(scoped_read_loop, std::cref(remote));
  }
  std::thread closer([&readers, &queue] {
    for (auto& t : readers) t.join();
    queue.Close();
  });

  // Process side: parse/decode -> predicate -> Bloom -> projection ->
  // per-thread consumer. The queue is the only work dispenser; the abort
  // flag and the error slot are the only other shared state.
  Status process_status;
  // Indexes of projection columns within the materialized subset.
  SchemaPtr materialized_schema = task.meta.schema->Project(materialize);
  std::vector<size_t> out_indexes;
  for (const std::string& name : task.projection) {
    auto idx = materialized_schema->IndexOf(name);
    if (!idx.ok()) {
      process_status = idx.status();
      break;
    }
    out_indexes.push_back(idx.value());
  }

  std::atomic<bool> aborted{false};
  std::mutex process_mu;
  std::vector<ScanStats> thread_stats(process_threads);
  std::vector<ScanConsumer> consumers;
  consumers.reserve(process_threads);
  if (process_status.ok()) {
    for (uint32_t t = 0; t < process_threads; ++t) {
      consumers.push_back(factory(t));
    }
  }

  // One process thread's loop. `sel` is hoisted scratch: the identity
  // selection is rebuilt per block but its allocation is reused.
  auto process_loop = [&](const ScanConsumer& consume,
                          ScanStats* pst) -> Status {
    std::vector<uint32_t> sel;
    for (;;) {
      if (aborted.load(std::memory_order_relaxed)) return Status::OK();
      std::optional<ReadItem> item;
      {
        trace::Span wait_span(tracer_, trace::span::kJenQueueWait,
                              trace::span::kCatScan, node());
        item = queue.Pop();
      }
      if (!item.has_value()) return Status::OK();
      const StoredBlock& block = *item->block;
      HJ_ASSIGN_OR_RETURN(
          RecordBatch batch,
          block.format == HdfsFormat::kText
              ? DecodeText(block.text->data(), block.text->size(),
                           task.meta.schema, materialize)
              : DecodeColumnarBlock(*block.columnar, task.meta.schema,
                                    materialize));
      pst->rows_scanned += static_cast<int64_t>(batch.num_rows());

      sel.resize(batch.num_rows());
      std::iota(sel.begin(), sel.end(), 0u);
      if (task.predicate != nullptr) {
        HJ_RETURN_IF_ERROR(task.predicate->Filter(batch, &sel));
      }
      const size_t after_pred = sel.size();
      if (task.bloom != nullptr) {
        HJ_RETURN_IF_ERROR(
            FilterByBloom(batch, task.bloom_column, *task.bloom, &sel));
      }
      pst->rows_dropped_by_bloom +=
          static_cast<int64_t>(after_pred - sel.size());
      pst->rows_after_filter += static_cast<int64_t>(sel.size());
      if (sel.empty()) continue;

      RecordBatch out = batch.Gather(sel).Project(out_indexes);
      HJ_RETURN_IF_ERROR(consume(std::move(out)));
    }
  };

  auto run_process = [&](uint32_t t) {
    Status s = process_loop(consumers[t], &thread_stats[t]);
    if (!s.ok()) {
      {
        std::lock_guard<std::mutex> lock(process_mu);
        if (process_status.ok()) process_status = std::move(s);
      }
      aborted.store(true, std::memory_order_relaxed);
      queue.Close();  // unblocks readers and sibling process threads
    }
  };

  if (process_status.ok()) {
    if (process_threads == 1) {
      // Single process thread runs inline on the calling thread — the
      // historical Figure-7 pipeline, byte-for-byte.
      run_process(0);
    } else {
      std::vector<std::thread> procs;
      procs.reserve(process_threads);
      for (uint32_t t = 0; t < process_threads; ++t) {
        procs.emplace_back([&, t, query_id, governor] {
          QueryScope query_scope(query_id);
          MemoryGovernor::Scope governor_scope(governor);
          trace::ThreadScope scope(node(),
                                   trace::InternedRole("jen_proc", t));
          run_process(t);
        });
      }
      for (auto& th : procs) th.join();
    }
  }

  // Tear down readers regardless of processing outcome.
  queue.Close();
  closer.join();

  for (const ScanStats& ts : thread_stats) {
    st->rows_scanned += ts.rows_scanned;
    st->rows_after_filter += ts.rows_after_filter;
    st->rows_dropped_by_bloom += ts.rows_dropped_by_bloom;
  }
  st->blocks_read += blocks_read.load();
  st->blocks_skipped += blocks_skipped.load();
  st->bytes_read += bytes_read.load();
  if (metrics_ != nullptr) {
    // Tag the scan-stat mirror for the query profile's phase tree.
    Metrics::PhaseScope phase_scope("scan");
    metrics_->Add(metric::kHdfsBytesRead, bytes_read.load());
    metrics_->Add(metric::kHdfsTuplesScanned, st->rows_scanned);
    metrics_->Add(metric::kHdfsTuplesAfterFilter, st->rows_after_filter);
    metrics_->Add(metric::kHdfsBlocksLocal,
                  blocks_read.load() + blocks_skipped.load() -
                      blocks_remote.load());
    metrics_->Add(metric::kHdfsBlocksRemote, blocks_remote.load());
  }

  HJ_RETURN_IF_ERROR(process_status);
  {
    std::lock_guard<std::mutex> lock(status_mu);
    HJ_RETURN_IF_ERROR(first_error);
  }
  return Status::OK();
}

}  // namespace hybridjoin
