#include "jen/coordinator.h"

#include <algorithm>

#include "common/hash.h"

namespace hybridjoin {

double ScanPlan::LocalityFraction() const {
  size_t total = 0;
  size_t local = 0;
  for (const auto& worker_blocks : per_worker) {
    for (const auto& a : worker_blocks) {
      ++total;
      if (a.local) ++local;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(local) /
                                static_cast<double>(total);
}

Result<ScanPlan> JenCoordinator::PlanScan(const std::string& table) const {
  ScanPlan plan;
  HJ_ASSIGN_OR_RETURN(plan.meta, hcatalog_->Lookup(table));
  HJ_ASSIGN_OR_RETURN(std::vector<BlockInfo> blocks,
                      namenode_->GetBlocks(plan.meta.path));
  plan.per_worker.resize(num_workers_);

  const size_t ceiling =
      (blocks.size() + num_workers_ - 1) / num_workers_;
  std::vector<size_t> load(num_workers_, 0);

  if (config_.locality_aware) {
    // Pass 1: place each block on its least-loaded replica holder, as long
    // as that holder stays within the balanced ceiling.
    std::vector<const BlockInfo*> overflow;
    for (const BlockInfo& b : blocks) {
      const ReplicaLocation* best = nullptr;
      for (const ReplicaLocation& r : b.replicas) {
        if (r.node >= num_workers_) continue;  // no worker on that node
        if (load[r.node] >= ceiling) continue;
        if (best == nullptr || load[r.node] < load[best->node]) best = &r;
      }
      if (best != nullptr) {
        plan.per_worker[best->node].push_back({b, *best, /*local=*/true});
        ++load[best->node];
      } else {
        overflow.push_back(&b);
      }
    }
    // Pass 2: remaining blocks go to the least-loaded workers as remote
    // reads from their first replica.
    for (const BlockInfo* b : overflow) {
      const uint32_t w = static_cast<uint32_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
      const ReplicaLocation replica = b->replicas.front();
      plan.per_worker[w].push_back(
          {*b, replica, /*local=*/replica.node == w});
      ++load[w];
    }
  } else {
    // Placement-blind assignment: spread blocks by a hash of the block id
    // (what a scheduler that ignores replica locations effectively does;
    // plain round-robin would accidentally align with the NameNode's
    // round-robin primary placement).
    for (const BlockInfo& b : blocks) {
      const uint32_t w = static_cast<uint32_t>(
          HashInt64(b.block_id, /*seed=*/0xb10c) % num_workers_);
      bool local = false;
      ReplicaLocation replica = b.replicas.front();
      for (const ReplicaLocation& r : b.replicas) {
        if (r.node == w) {
          replica = r;
          local = true;
          break;
        }
      }
      plan.per_worker[w].push_back({b, replica, local});
    }
  }
  return plan;
}

std::vector<std::vector<uint32_t>> JenCoordinator::GroupWorkersForDb(
    uint32_t num_db_workers) const {
  std::vector<std::vector<uint32_t>> groups(num_db_workers);
  // Contiguous, near-even split. When there are more DB workers than JEN
  // workers, trailing groups stay empty and those DB workers receive no
  // HDFS data (they still participate in DB-internal phases).
  for (uint32_t w = 0; w < num_workers_; ++w) {
    groups[w % num_db_workers].push_back(w);
  }
  return groups;
}

}  // namespace hybridjoin
