// Exchange helpers shared by the join drivers: a pooled batch sender (the
// paper's send-buffer + send-thread scheme, Figure 7), stream receivers that
// collect batches or feed a hash table, and small wire helpers for Bloom
// filters and the DB->JEN scan-request control message.

#ifndef HYBRIDJOIN_JEN_EXCHANGE_H_
#define HYBRIDJOIN_JEN_EXCHANGE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "bloom/bloom_filter.h"
#include "common/blocking_queue.h"
#include "exec/heavy_hitters.h"
#include "exec/join_hash_table.h"
#include "exec/memory_governor.h"
#include "exec/partitioned_appender.h"
#include "expr/predicate.h"
#include "net/network.h"

namespace hybridjoin {

/// Sends one logical message with bounded retry: a fresh sequence number is
/// reserved once so every attempt draws the same fault decisions, transient
/// kUnavailable failures back off (exponentially from `backoff_us`) and
/// retry up to `max_attempts` times total. Returns the last attempt's error
/// when they are all exhausted — hard (injected) message loss surfaces here.
Status SendWithRetry(Network* network, NodeId from, NodeId to, uint64_t tag,
                     std::shared_ptr<const std::vector<uint8_t>> payload,
                     uint32_t max_attempts = 5, uint64_t backoff_us = 100);

inline Status SendWithRetry(Network* network, NodeId from, NodeId to,
                            uint64_t tag, std::vector<uint8_t> payload,
                            uint32_t max_attempts = 5,
                            uint64_t backoff_us = 100) {
  return SendWithRetry(
      network, from, to, tag,
      std::make_shared<const std::vector<uint8_t>>(std::move(payload)),
      max_attempts, backoff_us);
}

/// Recycles serialization buffers so steady-state batch sends stop paying
/// one heap allocation (and its page faults) per batch. Acquire() hands out
/// an empty vector with whatever capacity its previous life grew; Share()
/// wraps a filled buffer as the shared payload the network queues hold, and
/// its deleter returns the storage here once the last queue drops it. The
/// deleter keeps the pool alive, so payloads may outlive the BatchSender.
class BufferPool : public std::enable_shared_from_this<BufferPool> {
 public:
  static std::shared_ptr<BufferPool> Create(size_t max_buffers = 64) {
    return std::shared_ptr<BufferPool>(new BufferPool(max_buffers));
  }

  /// An empty buffer, reusing a recycled allocation when one is available.
  std::vector<uint8_t> Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return {};
    std::vector<uint8_t> buf = std::move(free_.back());
    free_.pop_back();
    return buf;
  }

  /// Wraps a filled buffer as a shared payload that recycles its storage
  /// into this pool when released.
  std::shared_ptr<const std::vector<uint8_t>> Share(std::vector<uint8_t> buf) {
    auto* heap = new std::vector<uint8_t>(std::move(buf));
    auto self = shared_from_this();
    return std::shared_ptr<const std::vector<uint8_t>>(
        heap, [self](const std::vector<uint8_t>* p) {
          self->Recycle(std::move(*const_cast<std::vector<uint8_t>*>(p)));
          delete p;
        });
  }

  size_t free_buffers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

 private:
  explicit BufferPool(size_t max_buffers) : max_buffers_(max_buffers) {}

  void Recycle(std::vector<uint8_t> buf) {
    buf.clear();
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.size() < max_buffers_) free_.push_back(std::move(buf));
  }

  mutable std::mutex mu_;
  std::vector<std::vector<uint8_t>> free_;
  const size_t max_buffers_;
};

/// Serializes batches on the caller's thread (the "process thread" filling
/// send buffers) and ships them from a small pool of send threads, so
/// network waits overlap with scanning/processing.
///
/// Send/SendToAll/SendSerialized are safe to call from several process
/// threads concurrently (the morsel-parallel scan shares one sender): the
/// buffer pool and the send queue are internally synchronized and the
/// counters are atomic. Finish must be called once, after every producer
/// has stopped.
class BatchSender {
 public:
  BatchSender(Network* network, NodeId self, uint64_t tag,
              uint32_t num_threads, Metrics* metrics = nullptr,
              const char* tuple_counter = nullptr);
  ~BatchSender();

  BatchSender(const BatchSender&) = delete;
  BatchSender& operator=(const BatchSender&) = delete;

  /// Serializes and enqueues a batch for `dest`. The serialization buffer
  /// comes from the sender's BufferPool and is recycled after the send.
  void Send(NodeId dest, const RecordBatch& batch);

  /// Serializes once and enqueues for every destination (broadcast; the
  /// payload is shared, not copied).
  void SendToAll(const std::vector<NodeId>& dests, const RecordBatch& batch);

  /// Enqueues an already-serialized payload for several destinations
  /// (broadcast; the payload is shared, not copied).
  void SendSerialized(const std::vector<NodeId>& dests,
                      std::shared_ptr<const std::vector<uint8_t>> payload,
                      int64_t tuple_count);

  /// Drains the queue, then emits EOS to every node in `dests` (EOS goes
  /// out even after send failures, so receivers never hang waiting for a
  /// stream that died). Returns the first permanent send error, if any; the
  /// sender is unusable afterwards.
  Status Finish(const std::vector<NodeId>& dests);

  int64_t tuples_sent() const { return tuples_sent_; }

  /// First permanent send error across the send threads (OK if none yet).
  Status status() const {
    std::lock_guard<std::mutex> lock(error_mu_);
    return first_error_;
  }

 private:
  struct Item {
    NodeId dest;
    std::shared_ptr<const std::vector<uint8_t>> payload;
  };

  void RecordError(const Status& s);

  Network* network_;
  NodeId self_;
  uint64_t tag_;
  Metrics* metrics_;
  const char* tuple_counter_;
  /// Queued-but-unsent payload bytes are in-flight memory of the query:
  /// charged per enqueued Item (a broadcast charges once per destination —
  /// each Item pins the payload) and released by the send thread that pops
  /// it. Charged through the never-failing Reserve path; the bounded send
  /// queue is the real backpressure. Captured at construction so the send
  /// threads never touch thread-local state. The shared BufferPool is left
  /// uncharged: recycled payloads can outlive the query's governor.
  MemoryGovernor* governor_;
  std::shared_ptr<BufferPool> pool_;
  BlockingQueue<Item> queue_;
  std::vector<std::thread> threads_;
  std::atomic<int64_t> tuples_sent_{0};
  bool finished_ = false;
  mutable std::mutex error_mu_;
  Status first_error_;
  std::atomic<bool> failed_{false};
};

/// Receives every batch from `expected_senders` streams on (self, tag).
Result<std::vector<RecordBatch>> ReceiveAllBatches(Network* network,
                                                   NodeId self, uint64_t tag,
                                                   uint32_t expected_senders,
                                                   const SchemaPtr& schema);

/// Receives batches directly into a hash table (the paper's receive threads
/// that build the join hash table as shuffled data arrives). Does not
/// finalize the table.
Status ReceiveIntoHashTable(Network* network, NodeId self, uint64_t tag,
                            uint32_t expected_senders,
                            const SchemaPtr& schema, JoinHashTable* table);

/// Bloom filter transfer (metered under the bloom.* counters).
void SendBloom(Network* network, NodeId from, NodeId to, uint64_t tag,
               const BloomFilter& bloom, Metrics* metrics);
Result<BloomFilter> RecvBloom(Network* network, NodeId self, uint64_t tag);

/// Hot-key-set transfer for the skew-aware shuffle. Control-plane messages
/// like the Bloom filters: sent on the fault-exempt control channel so a
/// routing decision is never lost (losing it on one worker would break the
/// exactly-once pairing of the hybrid route).
void SendHotKeys(Network* network, NodeId from, NodeId to, uint64_t tag,
                 const HotKeySet& hot);
Result<HotKeySet> RecvHotKeys(Network* network, NodeId self, uint64_t tag);

/// Serialized heavy-hitter sketch transfer (local sketches -> coordinator).
void SendSketch(Network* network, NodeId from, NodeId to, uint64_t tag,
                const HeavyHitterSketch& sketch);
Result<HeavyHitterSketch> RecvSketch(Network* network, NodeId self,
                                     uint64_t tag);

/// The hybrid route of the skew-aware shuffle: cold keys flow through a
/// PartitionedAppender exactly as before, rows whose key is in the hot set
/// are batched separately and handed to `hot_sink` whenever a full batch
/// accumulates (and at FlushAll). The two sinks define the route:
///
///   - DB side (the broadcast/"build" side): hot_sink does
///     BatchSender::SendToAll, replicating each hot batch to every worker
///     with the serialize-once pooled-buffer path;
///   - JEN side (the skewed/"probe" side): hot_sink keeps the batch on the
///     scanning worker — hot probe rows never enter the shuffle.
///
/// With a null/empty hot set every row takes the cold path, byte-identical
/// to the pre-skew shuffle. Not thread-safe; one per producer thread, like
/// PartitionedAppender.
class SkewRouter {
 public:
  using HotSink = std::function<Status(RecordBatch&& batch)>;

  SkewRouter(SchemaPtr schema, uint32_t num_partitions, size_t key_column,
             PartitionedAppender::PartitionFn cold_fn, size_t flush_rows,
             PartitionedAppender::Sink cold_sink, const HotKeySet* hot,
             HotSink hot_sink)
      : cold_(std::move(schema), num_partitions, key_column,
              std::move(cold_fn), flush_rows, std::move(cold_sink)),
        schema_(cold_.schema()),
        key_column_(key_column),
        flush_rows_(flush_rows),
        hot_(hot != nullptr && !hot->empty() ? hot : nullptr),
        hot_sink_(std::move(hot_sink)),
        hot_pending_(schema_) {}

  /// Routes the selected rows of `batch`.
  Status Append(const RecordBatch& batch, const std::vector<uint32_t>& sel);

  /// Flushes the pending cold batches and the pending hot batch.
  Status FlushAll();

  int64_t hot_rows() const { return hot_rows_; }
  int64_t cold_rows() const { return cold_.routed_rows(); }

 private:
  PartitionedAppender cold_;
  SchemaPtr schema_;
  size_t key_column_;
  size_t flush_rows_;
  const HotKeySet* hot_;  ///< null = pure cold routing
  HotSink hot_sink_;
  RecordBatch hot_pending_;
  std::vector<uint32_t> cold_sel_;  ///< scratch, reused across Appends
  int64_t hot_rows_ = 0;
};

/// The DB->JEN scan request of the DB-side join (paper Figure 5): local
/// predicates on the HDFS table, required columns, optional Bloom filter
/// and its key column.
struct ScanRequest {
  PredicatePtr predicate;  // may be null
  std::vector<std::string> projection;
  std::optional<BloomFilter> bloom;
  std::string bloom_column;

  std::vector<uint8_t> Serialize() const;
  static Result<ScanRequest> Deserialize(const std::vector<uint8_t>& buf);
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_JEN_EXCHANGE_H_
