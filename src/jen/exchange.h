// Exchange helpers shared by the join drivers: a pooled batch sender (the
// paper's send-buffer + send-thread scheme, Figure 7), stream receivers that
// collect batches or feed a hash table, and small wire helpers for Bloom
// filters and the DB->JEN scan-request control message.

#ifndef HYBRIDJOIN_JEN_EXCHANGE_H_
#define HYBRIDJOIN_JEN_EXCHANGE_H_

#include <memory>
#include <thread>
#include <vector>

#include "bloom/bloom_filter.h"
#include "common/blocking_queue.h"
#include "exec/join_hash_table.h"
#include "expr/predicate.h"
#include "net/network.h"

namespace hybridjoin {

/// Serializes batches on the caller's thread (the "process thread" filling
/// send buffers) and ships them from a small pool of send threads, so
/// network waits overlap with scanning/processing.
class BatchSender {
 public:
  BatchSender(Network* network, NodeId self, uint64_t tag,
              uint32_t num_threads, Metrics* metrics = nullptr,
              const char* tuple_counter = nullptr);
  ~BatchSender();

  BatchSender(const BatchSender&) = delete;
  BatchSender& operator=(const BatchSender&) = delete;

  /// Serializes and enqueues a batch for `dest`.
  void Send(NodeId dest, const RecordBatch& batch);

  /// Enqueues an already-serialized payload for several destinations
  /// (broadcast; the payload is shared, not copied).
  void SendSerialized(const std::vector<NodeId>& dests,
                      std::shared_ptr<const std::vector<uint8_t>> payload,
                      int64_t tuple_count);

  /// Drains the queue, then emits EOS to every node in `dests`. The sender
  /// is unusable afterwards.
  void Finish(const std::vector<NodeId>& dests);

  int64_t tuples_sent() const { return tuples_sent_; }

 private:
  struct Item {
    NodeId dest;
    std::shared_ptr<const std::vector<uint8_t>> payload;
  };

  Network* network_;
  NodeId self_;
  uint64_t tag_;
  Metrics* metrics_;
  const char* tuple_counter_;
  BlockingQueue<Item> queue_;
  std::vector<std::thread> threads_;
  std::atomic<int64_t> tuples_sent_{0};
  bool finished_ = false;
};

/// Receives every batch from `expected_senders` streams on (self, tag).
Result<std::vector<RecordBatch>> ReceiveAllBatches(Network* network,
                                                   NodeId self, uint64_t tag,
                                                   uint32_t expected_senders,
                                                   const SchemaPtr& schema);

/// Receives batches directly into a hash table (the paper's receive threads
/// that build the join hash table as shuffled data arrives). Does not
/// finalize the table.
Status ReceiveIntoHashTable(Network* network, NodeId self, uint64_t tag,
                            uint32_t expected_senders,
                            const SchemaPtr& schema, JoinHashTable* table);

/// Bloom filter transfer (metered under the bloom.* counters).
void SendBloom(Network* network, NodeId from, NodeId to, uint64_t tag,
               const BloomFilter& bloom, Metrics* metrics);
Result<BloomFilter> RecvBloom(Network* network, NodeId self, uint64_t tag);

/// The DB->JEN scan request of the DB-side join (paper Figure 5): local
/// predicates on the HDFS table, required columns, optional Bloom filter
/// and its key column.
struct ScanRequest {
  PredicatePtr predicate;  // may be null
  std::vector<std::string> projection;
  std::optional<BloomFilter> bloom;
  std::string bloom_column;

  std::vector<uint8_t> Serialize() const;
  static Result<ScanRequest> Deserialize(const std::vector<uint8_t>& buf);
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_JEN_EXCHANGE_H_
