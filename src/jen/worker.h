// JenWorker: one JEN worker process (paper §4.1/§4.4). Implements the
// multi-threaded scan pipeline of Figure 7: one read thread per disk feeds
// raw blocks through a bounded queue to N process threads, which parse /
// decode, apply local predicates, the database Bloom filter and the
// projection, and hand filtered batches to per-thread consumers (shuffle
// sender, probe pipeline, or DB upload) — all overlapped. The queue is the
// morsel dispenser: process threads pull whole decoded blocks, so the work
// split adapts to per-block selectivity without any static assignment.

#ifndef HYBRIDJOIN_JEN_WORKER_H_
#define HYBRIDJOIN_JEN_WORKER_H_

#include <functional>
#include <memory>
#include <vector>

#include "bloom/bloom_filter.h"
#include "common/metrics.h"
#include "expr/predicate.h"
#include "hdfs/datanode.h"
#include "jen/coordinator.h"
#include "net/network.h"
#include "trace/tracer.h"

namespace hybridjoin {

/// Everything a worker needs to scan its share of one table.
struct ScanTask {
  HdfsTableMeta meta;
  std::vector<BlockAssignment> blocks;
  /// Local predicates on the HDFS table (nullable).
  PredicatePtr predicate;
  /// Output columns, in output order.
  std::vector<std::string> projection;
  /// Optional database Bloom filter applied to `bloom_column` (the paper's
  /// BF_DB pruning of non-joinable HDFS records).
  const BloomFilter* bloom = nullptr;
  std::string bloom_column;
};

/// Per-scan statistics (also mirrored into Metrics).
struct ScanStats {
  int64_t blocks_read = 0;
  int64_t blocks_skipped = 0;  ///< pruned by columnar min/max stats
  int64_t bytes_read = 0;
  int64_t rows_scanned = 0;
  int64_t rows_after_filter = 0;
  int64_t rows_dropped_by_bloom = 0;
};

/// Receives filtered, projected batches from the scan. May block (e.g. on
/// network throttles) — that is the intended backpressure.
using ScanConsumer = std::function<Status(RecordBatch&&)>;

/// Builds the consumer for process thread `t` (0 <= t < process_threads).
/// Called serially on the scanning thread before any process thread starts,
/// so the factory itself needs no synchronization. Each returned consumer is
/// invoked only from its own thread; consumers must be mutually thread-safe
/// only where they share state (e.g. a common BatchSender).
using ScanConsumerFactory = std::function<ScanConsumer(uint32_t)>;

class JenWorker {
 public:
  /// `datanodes` indexes every DataNode in the cluster; the worker's own
  /// node is `datanodes[index]` (JEN runs one worker per DataNode).
  JenWorker(uint32_t index, std::vector<DataNode*> datanodes,
            Network* network, Metrics* metrics, JenConfig config,
            trace::Tracer* tracer = nullptr)
      : index_(index),
        datanodes_(std::move(datanodes)),
        network_(network),
        metrics_(metrics),
        config_(config),
        tracer_(tracer) {}

  uint32_t index() const { return index_; }
  NodeId node() const { return NodeId::Hdfs(index_); }
  Network* network() const { return network_; }
  Metrics* metrics() const { return metrics_; }
  const JenConfig& config() const { return config_; }

  /// The schema of the batches the consumer receives (task projection).
  static Result<SchemaPtr> OutputSchema(const ScanTask& task);

  /// Runs the Figure-7 scan pipeline with a single process thread (the
  /// calling thread), regardless of config().process_threads. Kept for
  /// callers whose consumer is not thread-safe; equivalent to
  /// ScanBlocksParallel with process_threads == 1.
  Status ScanBlocks(const ScanTask& task, const ScanConsumer& consumer,
                    ScanStats* stats = nullptr);

  /// Runs the Figure-7 scan pipeline with config().process_threads process
  /// threads pulling decoded blocks off the shared read queue
  /// (morsel-driven). With one process thread the loop runs inline on the
  /// calling thread — identical behavior and trace attribution to
  /// ScanBlocks; with more, worker threads are traced as "jen_proc/<t>".
  /// Returns after all assigned blocks are processed; the first failing
  /// process thread aborts the scan (process errors take priority over
  /// reader errors in the returned Status).
  Status ScanBlocksParallel(const ScanTask& task,
                            const ScanConsumerFactory& factory,
                            ScanStats* stats = nullptr);

 private:
  Status ScanImpl(const ScanTask& task, const ScanConsumerFactory& factory,
                  ScanStats* stats, uint32_t process_threads);

  uint32_t index_;
  std::vector<DataNode*> datanodes_;
  Network* network_;
  Metrics* metrics_;
  JenConfig config_;
  trace::Tracer* tracer_ = nullptr;
};

/// Narrows `sel` to rows of `batch` whose `column` value may be in `bloom`.
Status FilterByBloom(const RecordBatch& batch, const std::string& column,
                     const BloomFilter& bloom, std::vector<uint32_t>* sel);

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_JEN_WORKER_H_
