// JenWorker: one JEN worker process (paper §4.1/§4.4). Implements the
// multi-threaded scan pipeline of Figure 7: one read thread per disk feeds
// raw blocks through a bounded queue to the process thread, which parses /
// decodes, applies local predicates, the database Bloom filter and the
// projection, and hands filtered batches to a consumer (shuffle sender,
// probe pipeline, or DB upload) — all overlapped.

#ifndef HYBRIDJOIN_JEN_WORKER_H_
#define HYBRIDJOIN_JEN_WORKER_H_

#include <functional>
#include <memory>
#include <vector>

#include "bloom/bloom_filter.h"
#include "common/metrics.h"
#include "expr/predicate.h"
#include "hdfs/datanode.h"
#include "jen/coordinator.h"
#include "net/network.h"
#include "trace/tracer.h"

namespace hybridjoin {

/// Everything a worker needs to scan its share of one table.
struct ScanTask {
  HdfsTableMeta meta;
  std::vector<BlockAssignment> blocks;
  /// Local predicates on the HDFS table (nullable).
  PredicatePtr predicate;
  /// Output columns, in output order.
  std::vector<std::string> projection;
  /// Optional database Bloom filter applied to `bloom_column` (the paper's
  /// BF_DB pruning of non-joinable HDFS records).
  const BloomFilter* bloom = nullptr;
  std::string bloom_column;
};

/// Per-scan statistics (also mirrored into Metrics).
struct ScanStats {
  int64_t blocks_read = 0;
  int64_t blocks_skipped = 0;  ///< pruned by columnar min/max stats
  int64_t bytes_read = 0;
  int64_t rows_scanned = 0;
  int64_t rows_after_filter = 0;
  int64_t rows_dropped_by_bloom = 0;
};

class JenWorker {
 public:
  /// `datanodes` indexes every DataNode in the cluster; the worker's own
  /// node is `datanodes[index]` (JEN runs one worker per DataNode).
  JenWorker(uint32_t index, std::vector<DataNode*> datanodes,
            Network* network, Metrics* metrics, JenConfig config,
            trace::Tracer* tracer = nullptr)
      : index_(index),
        datanodes_(std::move(datanodes)),
        network_(network),
        metrics_(metrics),
        config_(config),
        tracer_(tracer) {}

  uint32_t index() const { return index_; }
  NodeId node() const { return NodeId::Hdfs(index_); }
  Network* network() const { return network_; }
  Metrics* metrics() const { return metrics_; }
  const JenConfig& config() const { return config_; }

  /// The schema of the batches the consumer receives (task projection).
  static Result<SchemaPtr> OutputSchema(const ScanTask& task);

  /// Runs the Figure-7 scan pipeline on the calling thread (which acts as
  /// the process thread). `consumer` receives filtered, projected batches
  /// and may block (e.g. on network throttles) — that is the intended
  /// backpressure. Returns after all assigned blocks are processed.
  Status ScanBlocks(const ScanTask& task,
                    const std::function<Status(RecordBatch&&)>& consumer,
                    ScanStats* stats = nullptr);

 private:
  uint32_t index_;
  std::vector<DataNode*> datanodes_;
  Network* network_;
  Metrics* metrics_;
  JenConfig config_;
  trace::Tracer* tracer_ = nullptr;
};

/// Narrows `sel` to rows of `batch` whose `column` value may be in `bloom`.
Status FilterByBloom(const RecordBatch& batch, const std::string& column,
                     const BloomFilter& bloom, std::vector<uint32_t>* sel);

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_JEN_WORKER_H_
