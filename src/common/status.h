// Status: error-handling primitive used across the hybridjoin codebase.
//
// Core code paths never throw; every fallible function returns Status or
// Result<T> (see result.h). This mirrors the convention of production
// database engines (RocksDB, Arrow).

#ifndef HYBRIDJOIN_COMMON_STATUS_H_
#define HYBRIDJOIN_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace hybridjoin {

/// Canonical error categories. Kept intentionally small; detail goes in the
/// message string.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kAborted = 8,
  kResourceExhausted = 9,
  kUnavailable = 10,  ///< transient failure; retrying may succeed
  kTimedOut = 11,     ///< a bounded wait expired (e.g. Network::Recv)
  kCancelled = 12,    ///< cooperatively cancelled (e.g. KILL <query_id>)
};

/// Human-readable name for a StatusCode ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to pass around: the OK state carries no
/// allocation; errors carry a heap string.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_unique<Rep>(code, std::move(message))) {}

  Status(const Status& other)
      : rep_(other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsTimedOut() const { return code() == StatusCode::kTimedOut; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    Rep(StatusCode c, std::string m) : code(c), message(std::move(m)) {}
    StatusCode code;
    std::string message;
  };
  std::unique_ptr<Rep> rep_;  // nullptr means OK.
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller.
#define HJ_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::hybridjoin::Status _hj_st = (expr);        \
    if (!_hj_st.ok()) return _hj_st;             \
  } while (0)

#define HJ_CONCAT_IMPL(a, b) a##b
#define HJ_CONCAT(a, b) HJ_CONCAT_IMPL(a, b)

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise binds the value to `lhs`.
#define HJ_ASSIGN_OR_RETURN(lhs, rexpr)                       \
  HJ_ASSIGN_OR_RETURN_IMPL(HJ_CONCAT(_hj_res_, __LINE__), lhs, rexpr)

#define HJ_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value();

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_COMMON_STATUS_H_
