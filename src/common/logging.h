// Minimal leveled logging. Off by default (benches and tests stay quiet);
// enable with Logger::SetLevel or the HJ_LOG_LEVEL environment variable
// (0=off, 1=error, 2=info, 3=debug).

#ifndef HYBRIDJOIN_COMMON_LOGGING_H_
#define HYBRIDJOIN_COMMON_LOGGING_H_

#include <atomic>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>

#include "common/query_scope.h"

namespace hybridjoin {

enum class LogLevel : int { kOff = 0, kError = 1, kInfo = 2, kDebug = 3 };

/// Process-wide logger state.
class Logger {
 public:
  static void SetLevel(LogLevel level) {
    LevelRef().store(static_cast<int>(level), std::memory_order_relaxed);
  }

  static LogLevel GetLevel() {
    return static_cast<LogLevel>(LevelRef().load(std::memory_order_relaxed));
  }

  static bool Enabled(LogLevel level) {
    return static_cast<int>(level) <=
           LevelRef().load(std::memory_order_relaxed);
  }

  /// Writes one line atomically.
  static void Write(LogLevel level, const std::string& msg);

 private:
  static std::atomic<int>& LevelRef();
};

namespace internal {

/// Builds a log line and emits it on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* tag) : level_(level) {
    stream_ << "[" << tag << "] ";
    // Correlate free-form log lines with the event log / profiles: when the
    // calling thread works on behalf of a query, prefix its id.
    if (const uint64_t query_id = QueryScope::Current(); query_id != 0) {
      stream_ << "[q" << query_id << "] ";
    }
  }
  ~LogLine() { Logger::Write(level_, stream_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define HJ_LOG(level, tag)                                         \
  if (!::hybridjoin::Logger::Enabled(::hybridjoin::LogLevel::level)) \
    ;                                                              \
  else                                                             \
    ::hybridjoin::internal::LogLine(::hybridjoin::LogLevel::level, tag)

#define HJ_LOG_INFO(tag) HJ_LOG(kInfo, tag)
#define HJ_LOG_DEBUG(tag) HJ_LOG(kDebug, tag)
#define HJ_LOG_ERROR(tag) HJ_LOG(kError, tag)

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_COMMON_LOGGING_H_
