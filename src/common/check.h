// HJ_CHECK / HJ_DCHECK: invariant assertions that abort with a message.
// Used for programming errors only; recoverable conditions use Status.

#ifndef HYBRIDJOIN_COMMON_CHECK_H_
#define HYBRIDJOIN_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace hybridjoin {
namespace internal {

/// Accumulates a failure message and aborts the process on destruction.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, const char* expr) {
    stream_ << "CHECK failed at " << file << ":" << line << ": " << expr
            << " ";
  }
  ~CheckFailStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }
  template <typename T>
  CheckFailStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Lets a streamed CheckFailStream appear in the void arm of a ternary
/// (operator& binds looser than operator<<).
struct Voidify {
  void operator&(const CheckFailStream&) {}
};

}  // namespace internal
}  // namespace hybridjoin

#define HJ_CHECK(cond)                                      \
  (cond) ? (void)0                                          \
         : ::hybridjoin::internal::Voidify() &              \
               ::hybridjoin::internal::CheckFailStream(     \
                   __FILE__, __LINE__, #cond)

#define HJ_CHECK_EQ(a, b) HJ_CHECK((a) == (b))
#define HJ_CHECK_NE(a, b) HJ_CHECK((a) != (b))
#define HJ_CHECK_LT(a, b) HJ_CHECK((a) < (b))
#define HJ_CHECK_LE(a, b) HJ_CHECK((a) <= (b))
#define HJ_CHECK_GT(a, b) HJ_CHECK((a) > (b))
#define HJ_CHECK_GE(a, b) HJ_CHECK((a) >= (b))
#define HJ_CHECK_OK(expr)                          \
  do {                                             \
    const ::hybridjoin::Status _hj_ck = (expr);    \
    HJ_CHECK(_hj_ck.ok()) << _hj_ck.ToString();    \
  } while (0)

#ifdef NDEBUG
#define HJ_DCHECK(cond) HJ_CHECK(true || (cond))
#else
#define HJ_DCHECK(cond) HJ_CHECK(cond)
#endif

#endif  // HYBRIDJOIN_COMMON_CHECK_H_
