#include "common/status.h"

namespace hybridjoin {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace hybridjoin
