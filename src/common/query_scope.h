// QueryScope: thread-local query-id attribution, the concurrency analogue of
// Metrics::NodeScope. Every thread doing work on behalf of a query installs
// one (the join drivers do it in their worker lambdas; ThreadPool::Submit and
// the other thread-spawn sites capture the submitter's id and re-install it
// in the spawned thread), so scoped metric writes land in that query's slice
// of the store and concurrent EXPLAIN ANALYZE profiles never cross-contaminate.
//
// Query id 0 means "no query" — the legacy single-query slice. All scoped
// reads/writes without an installed QueryScope keep going there, which keeps
// the one-query-at-a-time callers (tests, benches, the SQL shell) working
// unchanged.

#ifndef HYBRIDJOIN_COMMON_QUERY_SCOPE_H_
#define HYBRIDJOIN_COMMON_QUERY_SCOPE_H_

#include <cstdint>

namespace hybridjoin {

/// RAII: attributes every scoped Metrics write on the calling thread to
/// `query_id` until destruction. Nests; the destructor restores the previous
/// attribution. Id 0 is reserved for "no query".
class QueryScope {
 public:
  explicit QueryScope(uint64_t query_id) : saved_(tls_id_) {
    tls_id_ = query_id;
  }
  ~QueryScope() { tls_id_ = saved_; }

  QueryScope(const QueryScope&) = delete;
  QueryScope& operator=(const QueryScope&) = delete;

  /// The calling thread's current query id (0 outside any scope).
  static uint64_t Current() { return tls_id_; }

 private:
  static inline thread_local uint64_t tls_id_ = 0;
  uint64_t saved_;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_COMMON_QUERY_SCOPE_H_
