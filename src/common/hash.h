// Hash functions used across the engine: a 64-bit finalizer-quality mixer for
// join keys and Bloom filters, FNV-1a for strings, and MurmurHash3-style
// block hashing for byte ranges.
//
// All hashing is seedable so that independent uses (partitioning vs Bloom
// filter vs hash tables) are decorrelated — a classic pitfall when the same
// hash drives both the shuffle and the hash table bucket index.

#ifndef HYBRIDJOIN_COMMON_HASH_H_
#define HYBRIDJOIN_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace hybridjoin {

/// SplitMix64 finalizer: a full-avalanche mix of a 64-bit value.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seeded 64-bit hash of a 64-bit key.
inline uint64_t HashInt64(uint64_t key, uint64_t seed = 0) {
  return Mix64(key ^ Mix64(seed));
}

/// FNV-1a over bytes, seedable.
inline uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 14695981039346656037ULL ^ Mix64(seed);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return Mix64(h);
}

inline uint64_t HashString(std::string_view s, uint64_t seed = 0) {
  return HashBytes(s.data(), s.size(), seed);
}

/// Combines two hashes (boost::hash_combine-style but 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// The "agreed hash function" both the EDW workers and the JEN workers use to
/// route a join key to a JEN worker for repartition-based joins (paper §3.3,
/// §4.3). Keeping it in one place is the substitute for the paper's
/// coordinator-published hash function.
inline uint32_t AgreedPartition(int64_t join_key, uint32_t num_partitions) {
  // Seed chosen distinct from Bloom/hash-table seeds.
  return static_cast<uint32_t>(
      HashInt64(static_cast<uint64_t>(join_key), /*seed=*/0xA93EEDULL) %
      num_partitions);
}

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_COMMON_HASH_H_
