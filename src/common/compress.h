// A from-scratch LZ77-family byte compressor standing in for Snappy in the
// columnar HDFS format (paper stores L in Parquet+Snappy). Greedy hash-table
// match finder, byte-aligned output:
//
//   varint original_size
//   repeat: varint lit_len, <lit_len literal bytes>,
//           [varint match_len >= kMinMatch, varint offset >= 1]
//
// The trailing sequence may omit the match when the input ends in literals.

#ifndef HYBRIDJOIN_COMMON_COMPRESS_H_
#define HYBRIDJOIN_COMMON_COMPRESS_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace hybridjoin {

/// Compression codecs understood by the columnar format.
enum class Codec : uint8_t {
  kNone = 0,
  kLz = 1,
};

const char* CodecName(Codec codec);

/// Compresses `n` bytes. Always succeeds; output may be larger than input
/// for incompressible data (callers may then prefer to store raw).
std::vector<uint8_t> LzCompress(const uint8_t* data, size_t n);

/// Decompresses a buffer produced by LzCompress. Returns an error on
/// malformed input (never reads or writes out of bounds).
Result<std::vector<uint8_t>> LzDecompress(const uint8_t* data, size_t n);

inline std::vector<uint8_t> LzCompress(const std::vector<uint8_t>& in) {
  return LzCompress(in.data(), in.size());
}
inline Result<std::vector<uint8_t>> LzDecompress(
    const std::vector<uint8_t>& in) {
  return LzDecompress(in.data(), in.size());
}

/// Applies `codec` to a buffer (kNone returns a copy).
std::vector<uint8_t> Compress(Codec codec, const uint8_t* data, size_t n);
Result<std::vector<uint8_t>> Decompress(Codec codec, const uint8_t* data,
                                        size_t n);

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_COMMON_COMPRESS_H_
