// Metrics: thread-safe named counters and latency histograms collected
// during a query execution. Every join driver returns a snapshot of these
// in its ExecutionReport, and the Table-1 bench reads the tuple-movement
// counters from here. Histograms are fed by the tracing subsystem
// (src/trace/): every finished span's duration is recorded under the
// span's name.
//
// Besides the global namespace, every write is mirrored into a *scoped*
// per-node store when the calling thread carries node attribution
// (Metrics::NodeScope, installed automatically by trace::ThreadScope) —
// optionally refined with a query phase (Metrics::PhaseScope). Workers
// snapshot their node's scoped slice at end-of-query (ScopedSnapshot) and
// ship it to the coordinator, which assembles the per-node profile tree in
// ExecutionReport::profile (see src/obs/). The global counters are never
// reset between queries (reports take deltas).
//
// The scoped store is additionally keyed by the calling thread's QueryScope
// id, so N concurrent queries write into disjoint slices and their profiles
// never cross-contaminate. Query id 0 ("no query") is the legacy slice used
// by single-query callers; ClearScoped(query_id) drops one query's slices at
// end-of-query, ClearScoped() drops everything.

#ifndef HYBRIDJOIN_COMMON_METRICS_H_
#define HYBRIDJOIN_COMMON_METRICS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/histogram.h"
#include "common/query_scope.h"

namespace hybridjoin {

/// One scoped counter value: gauges (recorded with Metrics::Max) aggregate
/// across nodes by maximum, everything else by sum.
struct ScopedCounter {
  int64_t value = 0;
  bool gauge = false;
};

/// One node's slice of the scoped store: (phase, name) -> value. Phase is
/// "" when the write carried no PhaseScope; the profile assembler maps
/// those names onto canonical phases (obs::PhaseForMetric).
struct ScopedMetricsSnapshot {
  std::map<std::pair<std::string, std::string>, ScopedCounter> counters;
  std::map<std::pair<std::string, std::string>, HistogramSummary> histograms;

  bool empty() const { return counters.empty() && histograms.empty(); }
};

/// A registry of monotonically increasing counters. Counter handles are
/// stable for the lifetime of the registry; Add() on a handle is a single
/// relaxed atomic increment. Writes through the named convenience calls
/// (Add/Max/Record) are additionally attributed to the calling thread's
/// {node, phase} scope; writes through raw handles are global-only.
class Metrics {
 public:
  using Counter = std::atomic<int64_t>;

  /// Node key meaning "no attribution" (see NodeScope / net MetricNodeKey).
  static constexpr int32_t kNoNode = -1;

  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  /// RAII: attributes every named Metrics write on the calling thread to
  /// the node encoded by `node_key` (MetricNodeKey in net/network.h) until
  /// destruction. Nests; the destructor restores the previous attribution.
  /// trace::ThreadScope installs one automatically, so worker threads get
  /// per-node attribution for free.
  class NodeScope {
   public:
    explicit NodeScope(int32_t node_key) : saved_(tls_node_key_) {
      tls_node_key_ = node_key;
    }
    ~NodeScope() { tls_node_key_ = saved_; }
    NodeScope(const NodeScope&) = delete;
    NodeScope& operator=(const NodeScope&) = delete;

   private:
    int32_t saved_;
  };

  /// RAII: tags every named Metrics write on the calling thread with a
  /// query phase ("scan", "build", ...). `phase` must outlive the scope
  /// (string literals in practice — same contract as span names).
  class PhaseScope {
   public:
    explicit PhaseScope(const char* phase) : saved_(tls_phase_) {
      tls_phase_ = phase;
    }
    ~PhaseScope() { tls_phase_ = saved_; }
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

   private:
    const char* saved_;
  };

  /// The calling thread's current attribution (kNoNode / "" outside any
  /// scope).
  static int32_t CurrentNodeKey() { return tls_node_key_; }
  static const char* CurrentPhase() {
    return tls_phase_ == nullptr ? "" : tls_phase_;
  }

  /// Returns (creating if needed) the counter with this name.
  Counter* GetCounter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>(0);
    return slot.get();
  }

  /// Convenience: one-shot add by name (takes the registry lock), mirrored
  /// into the calling thread's node scope.
  void Add(const std::string& name, int64_t delta) {
    GetCounter(name)->fetch_add(delta, std::memory_order_relaxed);
    ScopedWrite(name, delta, /*gauge=*/false);
  }

  /// Raises the counter to `value` if it is below it (gauge-style maximum,
  /// e.g. the worst hash-table chain length across workers). Scoped slices
  /// keep the per-node maximum.
  void Max(const std::string& name, int64_t value) {
    Counter* c = GetCounter(name);
    int64_t cur = c->load(std::memory_order_relaxed);
    while (cur < value &&
           !c->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
    ScopedWrite(name, value, /*gauge=*/true);
  }

  /// Stores an absolute value (last-write-wins gauge, e.g. the number of
  /// open sessions). Global-only: gauges of this kind describe
  /// whole-process state, not one node's contribution, so there is no
  /// scoped mirror.
  void Set(const std::string& name, int64_t value) {
    GetCounter(name)->store(value, std::memory_order_relaxed);
  }

  int64_t Get(const std::string& name) {
    return GetCounter(name)->load(std::memory_order_relaxed);
  }

  /// Point-in-time snapshot of every counter.
  std::map<std::string, int64_t> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, int64_t> out;
    for (const auto& [name, counter] : counters_) {
      out[name] = counter->load(std::memory_order_relaxed);
    }
    return out;
  }

  /// Returns (creating if needed) the latency histogram with this name.
  /// Handles are stable for the registry's lifetime; RecordMicros on a
  /// handle is lock-free (and global-only — see Record for the scoped
  /// path).
  LatencyHistogram* GetHistogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<LatencyHistogram>();
    return slot.get();
  }

  /// Records one observation into the named histogram, globally and into
  /// the calling thread's node scope. Values are microseconds for latency
  /// series and plain magnitudes otherwise (e.g. join.build_shard_rows).
  void Record(const std::string& name, int64_t value) {
    RecordForNode(name, value, tls_node_key_);
  }

  /// Record with an explicit node key: the tracer attributes a span's
  /// duration to the span's node, not the recording thread.
  void RecordForNode(const std::string& name, int64_t value,
                     int32_t node_key) {
    GetHistogram(name)->RecordMicros(value);
    if (node_key == kNoNode) return;
    const std::pair<std::string, std::string> key(CurrentPhase(), name);
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot =
        scoped_[{QueryScope::Current(), node_key}].histograms[key];
    if (!slot) slot = std::make_unique<LatencyHistogram>();
    slot->RecordMicros(value);
  }

  /// Point-in-time percentile summaries of every non-empty histogram.
  std::map<std::string, HistogramSummary> HistogramSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, HistogramSummary> out;
    for (const auto& [name, histogram] : histograms_) {
      HistogramSummary s = histogram->Summarize();
      if (s.count > 0) out[name] = s;
    }
    return out;
  }

  /// One node's scoped counters/histograms for the calling thread's current
  /// query (id 0 outside any QueryScope).
  ScopedMetricsSnapshot ScopedSnapshot(int32_t node_key) const {
    return ScopedSnapshot(QueryScope::Current(), node_key);
  }

  /// One node's scoped slice for an explicit query id.
  ScopedMetricsSnapshot ScopedSnapshot(uint64_t query_id,
                                       int32_t node_key) const {
    std::lock_guard<std::mutex> lock(mu_);
    ScopedMetricsSnapshot out;
    auto it = scoped_.find({query_id, node_key});
    if (it == scoped_.end()) return out;
    out.counters = it->second.counters;
    for (const auto& [key, histogram] : it->second.histograms) {
      HistogramSummary s = histogram->Summarize();
      if (s.count > 0) out.histograms[key] = s;
    }
    return out;
  }

  /// One query's scoped counters summed across all of its node slices, the
  /// (phase, name) keys collapsed to the metric name (gauges aggregate by
  /// maximum, everything else by sum — same rule as profile assembly).
  /// Powers the live process list: rows scanned/produced and spill bytes of
  /// an *in-flight* query come from here without waiting for end-of-query
  /// profile assembly.
  std::map<std::string, int64_t> ScopedQueryTotals(uint64_t query_id) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, int64_t> out;
    auto it =
        scoped_.lower_bound({query_id, std::numeric_limits<int32_t>::min()});
    for (; it != scoped_.end() && it->first.first == query_id; ++it) {
      for (const auto& [key, counter] : it->second.counters) {
        int64_t& slot = out[key.second];
        if (counter.gauge) {
          slot = std::max(slot, counter.value);
        } else {
          slot += counter.value;
        }
      }
    }
    return out;
  }

  /// Drops all per-node scoped data, every query's (legacy single-query
  /// callers; start of a new execution). Globals are left untouched.
  void ClearScoped() {
    std::lock_guard<std::mutex> lock(mu_);
    scoped_.clear();
  }

  /// Drops one query's scoped slices (end-of-query under concurrency);
  /// other in-flight queries' slices and the globals are left untouched.
  void ClearScoped(uint64_t query_id) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it =
        scoped_.lower_bound({query_id, std::numeric_limits<int32_t>::min()});
    while (it != scoped_.end() && it->first.first == query_id) {
      it = scoped_.erase(it);
    }
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, counter] : counters_) {
      counter->store(0, std::memory_order_relaxed);
    }
    for (auto& [name, histogram] : histograms_) {
      histogram->Reset();
    }
    scoped_.clear();
  }

 private:
  struct ScopedSlot {
    std::map<std::pair<std::string, std::string>, ScopedCounter> counters;
    std::map<std::pair<std::string, std::string>,
             std::unique_ptr<LatencyHistogram>>
        histograms;
  };

  void ScopedWrite(const std::string& name, int64_t value, bool gauge) {
    const int32_t node = tls_node_key_;
    if (node == kNoNode) return;
    const std::pair<std::string, std::string> key(CurrentPhase(), name);
    std::lock_guard<std::mutex> lock(mu_);
    ScopedCounter& c = scoped_[{QueryScope::Current(), node}].counters[key];
    if (gauge) {
      c.gauge = true;
      if (value > c.value) c.value = value;
    } else {
      c.value += value;
    }
  }

  static inline thread_local int32_t tls_node_key_ = kNoNode;
  static inline thread_local const char* tls_phase_ = nullptr;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
  /// Keyed by (query id, node key): concurrent queries write disjoint
  /// slices; id 0 is the legacy "no query" slice.
  std::map<std::pair<uint64_t, int32_t>, ScopedSlot> scoped_;
};

// Canonical counter names used by the engine. Kept as constants so benches,
// tests and drivers agree on spelling.
namespace metric {
inline constexpr const char kHdfsTuplesShuffled[] = "jen.tuples_shuffled";
inline constexpr const char kDbTuplesSent[] = "edw.tuples_sent_to_hdfs";
inline constexpr const char kHdfsTuplesSentToDb[] = "jen.tuples_sent_to_db";
inline constexpr const char kHdfsTuplesScanned[] = "jen.tuples_scanned";
inline constexpr const char kHdfsTuplesAfterFilter[] =
    "jen.tuples_after_filter";
inline constexpr const char kDbTuplesScanned[] = "edw.tuples_scanned";
inline constexpr const char kDbTuplesAfterFilter[] = "edw.tuples_after_filter";
inline constexpr const char kDbTuplesShuffledInternal[] =
    "edw.tuples_shuffled_internal";
inline constexpr const char kJoinOutputTuples[] = "join.output_tuples";
inline constexpr const char kBloomFiltersSent[] = "bloom.filters_sent";
inline constexpr const char kBloomBytesSent[] = "bloom.bytes_sent";
inline constexpr const char kHdfsBytesRead[] = "hdfs.bytes_read";
inline constexpr const char kHdfsBytesReadRemote[] = "hdfs.bytes_read_remote";
inline constexpr const char kHdfsBlocksLocal[] = "hdfs.blocks_local";
inline constexpr const char kHdfsBlocksRemote[] = "hdfs.blocks_remote";
// Join hash-table build shape (sums across workers; the *_max/_pct ones are
// gauge-style maxima recorded with Metrics::Max).
inline constexpr const char kJoinHtRows[] = "join.ht_rows";
inline constexpr const char kJoinHtMaxChain[] = "join.ht_max_chain";
inline constexpr const char kJoinHtLoadFactorPct[] = "join.ht_load_factor_pct";
// Shard-skew visibility for the parallel partitioned build: every shard's
// row count goes into the Metrics histogram of this name, and the worst
// shard across the execution is kept as a gauge maximum under the _max
// counter (a max far above rows/shards flags key skew that serializes the
// parallel build on one shard).
inline constexpr const char kJoinBuildShardRows[] = "join.build_shard_rows";
inline constexpr const char kJoinBuildShardRowsMax[] =
    "join.build_shard_rows_max";
// Bloom filter health after build/combine: fill fraction and the
// realized-FPR estimate fill^k, both in parts per the unit noted in the
// name (maxima across the filters of one execution).
inline constexpr const char kBloomFillPct[] = "bloom.fill_pct";
inline constexpr const char kBloomEstFprPpm[] = "bloom.est_fpr_ppm";
// Per-worker straggler visibility: each JEN worker thread records its
// end-of-query wall time (µs) here, so the histogram's max/p50 ratio reads
// directly as the straggler factor of the slowest worker.
inline constexpr const char kJenWorkerWallUs[] = "jen.worker_wall_us";
// Skew-aware shuffle (src/exec/heavy_hitters.h). "Build" is the broadcast
// side of the hybrid route — the DB-scanned T' rows whose key is hot, each
// replicated to every worker of the exchange — and "probe" is the skewed
// side whose hot rows never enter the shuffle (they stay on the worker
// that scanned them). hot_keys is a gauge (the picked hot-set size);
// broadcast_bytes counts the replicated payload bytes across all copies.
inline constexpr const char kShuffleHotKeys[] = "shuffle.hot_keys";
inline constexpr const char kShuffleBroadcastBytes[] =
    "shuffle.broadcast_bytes";
inline constexpr const char kShuffleHotRowsBuild[] = "shuffle.hot_rows_build";
inline constexpr const char kShuffleHotRowsProbe[] = "shuffle.hot_rows_probe";
// Adaptive join location (src/hybrid/adaptive_join.cc). Gauges recorded by
// the decision-point coordinator (DB worker 0): the advisor's estimated
// per-side filtered bytes next to the values observed after the shared
// prefix, and whether the stay-or-pivot decision actually pivoted (1 only
// when it did — absent otherwise, so profiles diff cleanly).
inline constexpr const char kAdvisorEstimatedDbBytes[] =
    "advisor.estimated_db_bytes";
inline constexpr const char kAdvisorObservedDbBytes[] =
    "advisor.observed_db_bytes";
inline constexpr const char kAdvisorEstimatedHdfsBytes[] =
    "advisor.estimated_hdfs_bytes";
inline constexpr const char kAdvisorObservedHdfsBytes[] =
    "advisor.observed_hdfs_bytes";
inline constexpr const char kAdvisorPivoted[] = "advisor.pivoted";
// Warehouse-server lifetime counters (src/server/warehouse_server.cc
// mirrors its ServerStats atomics here, so the scrape endpoint and the
// time-series sampler pick them up automatically; the ServerStats struct
// stays the point-in-time snapshot view). open_sessions and
// queries_in_flight are last-value gauges written with Metrics::Set.
inline constexpr const char kServerQueriesExecuted[] =
    "server.queries_executed";
inline constexpr const char kServerQueriesRateLimited[] =
    "server.queries_rate_limited";
inline constexpr const char kServerQueriesQuotaRejected[] =
    "server.queries_quota_rejected";
inline constexpr const char kServerQueriesShed[] = "server.queries_shed";
inline constexpr const char kServerQueriesKilled[] = "server.queries_killed";
inline constexpr const char kServerOpenSessions[] = "server.open_sessions";
inline constexpr const char kServerQueriesInFlight[] =
    "server.queries_in_flight";
// Raised above zero when a query's memory governor still holds live
// reservations at end-of-query (a leak — KILL paths must release
// everything). Asserted zero in server_test.
inline constexpr const char kServerGovernorLeakedBytes[] =
    "server.governor_leaked_bytes";
}  // namespace metric

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_COMMON_METRICS_H_
