// Metrics: thread-safe named counters and latency histograms collected
// during a query execution. Every join driver returns a snapshot of these
// in its ExecutionReport, and the Table-1 bench reads the tuple-movement
// counters from here. Histograms are fed by the tracing subsystem
// (src/trace/): every finished span's duration is recorded under the
// span's name.

#ifndef HYBRIDJOIN_COMMON_METRICS_H_
#define HYBRIDJOIN_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/histogram.h"

namespace hybridjoin {

/// A registry of monotonically increasing counters. Counter handles are
/// stable for the lifetime of the registry; Add() on a handle is a single
/// relaxed atomic increment.
class Metrics {
 public:
  using Counter = std::atomic<int64_t>;

  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  /// Returns (creating if needed) the counter with this name.
  Counter* GetCounter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = counters_[name];
    if (!slot) slot = std::make_unique<Counter>(0);
    return slot.get();
  }

  /// Convenience: one-shot add by name (takes the registry lock).
  void Add(const std::string& name, int64_t delta) {
    GetCounter(name)->fetch_add(delta, std::memory_order_relaxed);
  }

  /// Raises the counter to `value` if it is below it (gauge-style maximum,
  /// e.g. the worst hash-table chain length across workers).
  void Max(const std::string& name, int64_t value) {
    Counter* c = GetCounter(name);
    int64_t cur = c->load(std::memory_order_relaxed);
    while (cur < value &&
           !c->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    }
  }

  int64_t Get(const std::string& name) {
    return GetCounter(name)->load(std::memory_order_relaxed);
  }

  /// Point-in-time snapshot of every counter.
  std::map<std::string, int64_t> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, int64_t> out;
    for (const auto& [name, counter] : counters_) {
      out[name] = counter->load(std::memory_order_relaxed);
    }
    return out;
  }

  /// Returns (creating if needed) the latency histogram with this name.
  /// Handles are stable for the registry's lifetime; RecordMicros on a
  /// handle is lock-free.
  LatencyHistogram* GetHistogram(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<LatencyHistogram>();
    return slot.get();
  }

  /// Point-in-time percentile summaries of every non-empty histogram.
  std::map<std::string, HistogramSummary> HistogramSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::map<std::string, HistogramSummary> out;
    for (const auto& [name, histogram] : histograms_) {
      HistogramSummary s = histogram->Summarize();
      if (s.count > 0) out[name] = s;
    }
    return out;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, counter] : counters_) {
      counter->store(0, std::memory_order_relaxed);
    }
    for (auto& [name, histogram] : histograms_) {
      histogram->Reset();
    }
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

// Canonical counter names used by the engine. Kept as constants so benches,
// tests and drivers agree on spelling.
namespace metric {
inline constexpr const char kHdfsTuplesShuffled[] = "jen.tuples_shuffled";
inline constexpr const char kDbTuplesSent[] = "edw.tuples_sent_to_hdfs";
inline constexpr const char kHdfsTuplesSentToDb[] = "jen.tuples_sent_to_db";
inline constexpr const char kHdfsTuplesScanned[] = "jen.tuples_scanned";
inline constexpr const char kHdfsTuplesAfterFilter[] =
    "jen.tuples_after_filter";
inline constexpr const char kDbTuplesScanned[] = "edw.tuples_scanned";
inline constexpr const char kDbTuplesAfterFilter[] = "edw.tuples_after_filter";
inline constexpr const char kDbTuplesShuffledInternal[] =
    "edw.tuples_shuffled_internal";
inline constexpr const char kJoinOutputTuples[] = "join.output_tuples";
inline constexpr const char kBloomFiltersSent[] = "bloom.filters_sent";
inline constexpr const char kBloomBytesSent[] = "bloom.bytes_sent";
inline constexpr const char kHdfsBytesRead[] = "hdfs.bytes_read";
inline constexpr const char kHdfsBytesReadRemote[] = "hdfs.bytes_read_remote";
inline constexpr const char kHdfsBlocksLocal[] = "hdfs.blocks_local";
inline constexpr const char kHdfsBlocksRemote[] = "hdfs.blocks_remote";
// Join hash-table build shape (sums across workers; the *_max/_pct ones are
// gauge-style maxima recorded with Metrics::Max).
inline constexpr const char kJoinHtRows[] = "join.ht_rows";
inline constexpr const char kJoinHtMaxChain[] = "join.ht_max_chain";
inline constexpr const char kJoinHtLoadFactorPct[] = "join.ht_load_factor_pct";
// Shard-skew visibility for the parallel partitioned build: every shard's
// row count goes into the Metrics histogram of this name, and the worst
// shard across the execution is kept as a gauge maximum under the _max
// counter (a max far above rows/shards flags key skew that serializes the
// parallel build on one shard).
inline constexpr const char kJoinBuildShardRows[] = "join.build_shard_rows";
inline constexpr const char kJoinBuildShardRowsMax[] =
    "join.build_shard_rows_max";
// Bloom filter health after build/combine: fill fraction and the
// realized-FPR estimate fill^k, both in parts per the unit noted in the
// name (maxima across the filters of one execution).
inline constexpr const char kBloomFillPct[] = "bloom.fill_pct";
inline constexpr const char kBloomEstFprPpm[] = "bloom.est_fpr_ppm";
}  // namespace metric

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_COMMON_METRICS_H_
