#include "common/logging.h"

#include <cstdlib>

namespace hybridjoin {

namespace {

int InitialLevel() {
  const char* env = std::getenv("HJ_LOG_LEVEL");
  if (env == nullptr) return 0;
  return std::atoi(env);
}

std::mutex& WriteMutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

std::atomic<int>& Logger::LevelRef() {
  static std::atomic<int> level{InitialLevel()};
  return level;
}

void Logger::Write(LogLevel level, const std::string& msg) {
  const char* prefix = "";
  switch (level) {
    case LogLevel::kError:
      prefix = "E ";
      break;
    case LogLevel::kInfo:
      prefix = "I ";
      break;
    case LogLevel::kDebug:
      prefix = "D ";
      break;
    case LogLevel::kOff:
      return;
  }
  std::lock_guard<std::mutex> lock(WriteMutex());
  std::cerr << prefix << msg << "\n";
}

}  // namespace hybridjoin
