// BinaryWriter / BinaryReader: little-endian binary serialization with
// varint support, used for record-batch wire format, Bloom filter transfer,
// and the columnar file format.

#ifndef HYBRIDJOIN_COMMON_BINARY_IO_H_
#define HYBRIDJOIN_COMMON_BINARY_IO_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace hybridjoin {

/// Appends primitive values to a byte buffer. Little-endian, unaligned.
class BinaryWriter {
 public:
  BinaryWriter() = default;
  explicit BinaryWriter(size_t reserve) { buf_.reserve(reserve); }
  /// Writes into a recycled buffer: contents are discarded, the allocation
  /// (capacity) is kept. Pair with Release() to get the buffer back out.
  explicit BinaryWriter(std::vector<uint8_t> reuse) : buf_(std::move(reuse)) {
    buf_.clear();
  }

  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof(v)); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof(v)); }
  void PutI32(int32_t v) { PutRaw(&v, sizeof(v)); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof(v)); }
  void PutF64(double v) { PutRaw(&v, sizeof(v)); }

  /// LEB128 unsigned varint.
  void PutVarint(uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<uint8_t>(v));
  }

  /// Zigzag-encoded signed varint.
  void PutSignedVarint(int64_t v) {
    PutVarint((static_cast<uint64_t>(v) << 1) ^
              static_cast<uint64_t>(v >> 63));
  }

  /// Length-prefixed string.
  void PutString(std::string_view s) {
    PutVarint(s.size());
    PutRaw(s.data(), s.size());
  }

  void PutRaw(const void* data, size_t len) {
    const auto* p = static_cast<const uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  size_t size() const { return buf_.size(); }
  const std::vector<uint8_t>& buffer() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Reads primitives back out of a byte range. All getters return Status so
/// malformed/truncated input is reported, never UB.
class BinaryReader {
 public:
  BinaryReader(const void* data, size_t len)
      : data_(static_cast<const uint8_t*>(data)), len_(len) {}
  explicit BinaryReader(const std::vector<uint8_t>& buf)
      : BinaryReader(buf.data(), buf.size()) {}

  size_t remaining() const { return len_ - pos_; }
  size_t position() const { return pos_; }
  bool AtEnd() const { return pos_ == len_; }

  Result<uint8_t> GetU8() {
    HJ_RETURN_IF_ERROR(Need(1));
    return data_[pos_++];
  }
  Result<uint32_t> GetU32() { return GetFixed<uint32_t>(); }
  Result<uint64_t> GetU64() { return GetFixed<uint64_t>(); }
  Result<int32_t> GetI32() { return GetFixed<int32_t>(); }
  Result<int64_t> GetI64() { return GetFixed<int64_t>(); }
  Result<double> GetF64() { return GetFixed<double>(); }

  Result<uint64_t> GetVarint() {
    uint64_t v = 0;
    int shift = 0;
    while (true) {
      if (pos_ >= len_) {
        return Status::OutOfRange("truncated varint");
      }
      const uint8_t b = data_[pos_++];
      if (shift >= 64) return Status::OutOfRange("varint overflow");
      v |= static_cast<uint64_t>(b & 0x7f) << shift;
      if ((b & 0x80) == 0) break;
      shift += 7;
    }
    return v;
  }

  Result<int64_t> GetSignedVarint() {
    HJ_ASSIGN_OR_RETURN(uint64_t z, GetVarint());
    return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  Result<std::string> GetString() {
    HJ_ASSIGN_OR_RETURN(uint64_t n, GetVarint());
    HJ_RETURN_IF_ERROR(Need(n));
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  /// Zero-copy view of the next n bytes.
  Result<std::string_view> GetView(size_t n) {
    HJ_RETURN_IF_ERROR(Need(n));
    std::string_view v(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return v;
  }

  Status GetRaw(void* out, size_t n) {
    HJ_RETURN_IF_ERROR(Need(n));
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

 private:
  Status Need(size_t n) const {
    if (pos_ + n > len_) {
      return Status::OutOfRange("binary read past end of buffer");
    }
    return Status::OK();
  }

  template <typename T>
  Result<T> GetFixed() {
    HJ_RETURN_IF_ERROR(Need(sizeof(T)));
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_COMMON_BINARY_IO_H_
