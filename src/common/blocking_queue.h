// BlockingQueue<T>: a bounded MPMC queue with close semantics, the backbone
// of JEN's pipelined stages (read threads -> process thread -> send threads)
// and of the simulated network channels.

#ifndef HYBRIDJOIN_COMMON_BLOCKING_QUEUE_H_
#define HYBRIDJOIN_COMMON_BLOCKING_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace hybridjoin {

/// Thread-safe bounded queue. Push blocks when full; Pop blocks when empty.
/// Close() wakes all waiters: pending items continue to drain, further Push
/// calls are rejected, and Pop returns nullopt once drained.
template <typename T>
class BlockingQueue {
 public:
  explicit BlockingQueue(size_t capacity = 0) : capacity_(capacity) {}

  /// Returns false iff the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Like Push, but gives up after `timeout` when the queue stays full. On
  /// timeout returns false and sets *timed_out = true; a false return with
  /// *timed_out == false means the queue was closed. A non-positive timeout
  /// degenerates to the unbounded Push.
  bool PushWithDeadline(T item, std::chrono::milliseconds timeout,
                        bool* timed_out) {
    *timed_out = false;
    if (timeout <= std::chrono::milliseconds::zero()) {
      return Push(std::move(item));
    }
    std::unique_lock<std::mutex> lock(mu_);
    const bool ready = not_full_.wait_for(lock, timeout, [&] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (!ready) {
      *timed_out = true;
      return false;
    }
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Like Pop, but gives up after `timeout`. On timeout returns nullopt and
  /// sets *timed_out = true; a nullopt with *timed_out == false means the
  /// queue was closed and drained. A non-positive timeout waits forever.
  std::optional<T> PopFor(std::chrono::milliseconds timeout,
                          bool* timed_out) {
    *timed_out = false;
    if (timeout <= std::chrono::milliseconds::zero()) return Pop();
    std::unique_lock<std::mutex> lock(mu_);
    const bool ready = not_empty_.wait_for(
        lock, timeout, [&] { return closed_ || !items_.empty(); });
    if (!ready) {
      *timed_out = true;
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop; nullopt when empty (even if open).
  std::optional<T> TryPop() {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  const size_t capacity_;  // 0 = unbounded.
  bool closed_ = false;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_COMMON_BLOCKING_QUEUE_H_
