#include "common/compress.h"

#include <cstring>

#include "common/binary_io.h"

namespace hybridjoin {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 1 << 16;
constexpr size_t kHashBits = 14;
constexpr size_t kHashSize = 1 << kHashBits;

inline uint32_t Load32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

inline uint32_t Hash4(const uint8_t* p) {
  return (Load32(p) * 2654435761u) >> (32 - kHashBits);
}

}  // namespace

const char* CodecName(Codec codec) {
  switch (codec) {
    case Codec::kNone:
      return "none";
    case Codec::kLz:
      return "lz";
  }
  return "unknown";
}

std::vector<uint8_t> LzCompress(const uint8_t* data, size_t n) {
  BinaryWriter out(n / 2 + 16);
  out.PutVarint(n);
  if (n == 0) return out.Release();

  // Position of the most recent occurrence of each 4-byte hash.
  std::vector<uint32_t> table(kHashSize, 0);
  // Entry 0 is ambiguous ("empty" vs position 0); offset by one.
  auto get = [&](uint32_t h) -> size_t { return table[h]; };
  auto put = [&](uint32_t h, size_t pos) {
    table[h] = static_cast<uint32_t>(pos + 1);
  };

  size_t lit_start = 0;
  size_t i = 0;
  while (i + kMinMatch <= n) {
    const uint32_t h = Hash4(data + i);
    const size_t cand_plus1 = get(h);
    put(h, i);
    if (cand_plus1 != 0) {
      const size_t cand = cand_plus1 - 1;
      if (i - cand <= kMaxOffset && Load32(data + cand) == Load32(data + i)) {
        // Extend the match.
        size_t len = kMinMatch;
        while (i + len < n && data[cand + len] == data[i + len]) ++len;
        // Emit literals then the match.
        out.PutVarint(i - lit_start);
        out.PutRaw(data + lit_start, i - lit_start);
        out.PutVarint(len);
        out.PutVarint(i - cand);
        // Seed the table through the matched region (sparsely, for speed).
        const size_t end = i + len;
        for (size_t j = i + 1; j + kMinMatch <= end && j + kMinMatch <= n;
             j += 2) {
          put(Hash4(data + j), j);
        }
        i = end;
        lit_start = i;
        continue;
      }
    }
    ++i;
  }
  // Trailing literals (omitted entirely when the input ends on a match).
  if (n - lit_start > 0) {
    out.PutVarint(n - lit_start);
    out.PutRaw(data + lit_start, n - lit_start);
  }
  return out.Release();
}

Result<std::vector<uint8_t>> LzDecompress(const uint8_t* data, size_t n) {
  BinaryReader in(data, n);
  HJ_ASSIGN_OR_RETURN(uint64_t original_size, in.GetVarint());
  std::vector<uint8_t> out;
  out.reserve(original_size);
  while (out.size() < original_size) {
    HJ_ASSIGN_OR_RETURN(uint64_t lit_len, in.GetVarint());
    if (lit_len > original_size - out.size()) {
      return Status::IOError("lz: literal run past declared size");
    }
    HJ_ASSIGN_OR_RETURN(std::string_view lits, in.GetView(lit_len));
    out.insert(out.end(), lits.begin(), lits.end());
    if (out.size() == original_size) break;
    HJ_ASSIGN_OR_RETURN(uint64_t match_len, in.GetVarint());
    HJ_ASSIGN_OR_RETURN(uint64_t offset, in.GetVarint());
    if (match_len < kMinMatch || offset == 0 || offset > out.size()) {
      return Status::IOError("lz: bad match");
    }
    if (match_len > original_size - out.size()) {
      return Status::IOError("lz: match past declared size");
    }
    // Byte-by-byte copy: offsets smaller than the match length replicate
    // (classic LZ overlapping copy).
    size_t src = out.size() - offset;
    for (uint64_t k = 0; k < match_len; ++k) {
      out.push_back(out[src + k]);
    }
  }
  if (!in.AtEnd()) {
    return Status::IOError("lz: trailing garbage after stream");
  }
  return out;
}

std::vector<uint8_t> Compress(Codec codec, const uint8_t* data, size_t n) {
  switch (codec) {
    case Codec::kNone:
      return std::vector<uint8_t>(data, data + n);
    case Codec::kLz:
      return LzCompress(data, n);
  }
  return {};
}

Result<std::vector<uint8_t>> Decompress(Codec codec, const uint8_t* data,
                                        size_t n) {
  switch (codec) {
    case Codec::kNone:
      return std::vector<uint8_t>(data, data + n);
    case Codec::kLz:
      return LzDecompress(data, n);
  }
  return Status::InvalidArgument("unknown codec");
}

}  // namespace hybridjoin
