// Deterministic pseudo-random generator (xoshiro256**) for workload
// generation and tests. std::mt19937 is avoided for speed and for a stable
// cross-platform stream.

#ifndef HYBRIDJOIN_COMMON_RANDOM_H_
#define HYBRIDJOIN_COMMON_RANDOM_H_

#include <cstdint>

#include "common/check.h"
#include "common/hash.h"

namespace hybridjoin {

/// xoshiro256** seeded via SplitMix64. Not thread-safe; use one per thread.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eedULL) {
    uint64_t s = seed;
    for (auto& w : state_) {
      s += 0x9e3779b97f4a7c15ULL;
      w = Mix64(s);
    }
  }

  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    HJ_CHECK_GT(bound, 0u);
    // Lemire's multiply-shift rejection-free approximation is fine here; the
    // bias for our bounds (<< 2^32) is negligible for synthetic data.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    HJ_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t state_[4];
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_COMMON_RANDOM_H_
