// LatencyHistogram: a fixed-bucket HDR-style histogram for microsecond
// latencies. Recording is a single relaxed atomic increment (safe from any
// thread, no locks); percentile queries walk the bucket array. The bucket
// layout follows hdrhistogram: values below kSubBucketCount are exact, then
// each power-of-two range is split into kSubBucketCount/2 sub-buckets, so
// the relative quantization error is bounded by 2/kSubBucketCount (~6%).

#ifndef HYBRIDJOIN_COMMON_HISTOGRAM_H_
#define HYBRIDJOIN_COMMON_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace hybridjoin {

/// Point-in-time percentile summary of one histogram (all times seconds).
struct HistogramSummary {
  int64_t count = 0;
  double total_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
};

class LatencyHistogram {
 public:
  /// 32 exact unit buckets, then 16 sub-buckets per power of two; covers
  /// [0, 2^36) microseconds (~19 hours) before clamping to the top bucket.
  static constexpr int kSubBucketBits = 5;
  static constexpr int kSubBucketCount = 1 << kSubBucketBits;       // 32
  static constexpr int kSubBucketHalfCount = kSubBucketCount / 2;   // 16
  static constexpr int kBucketGroups = 32;
  static constexpr int kNumCounts =
      (kBucketGroups + 1) * kSubBucketHalfCount;

  LatencyHistogram() : counts_(kNumCounts) {}

  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one latency observation. Thread-safe, lock-free.
  void RecordMicros(int64_t micros) {
    if (micros < 0) micros = 0;
    counts_[CountsIndex(micros)].fetch_add(1, std::memory_order_relaxed);
    total_micros_.fetch_add(micros, std::memory_order_relaxed);
    UpdateMin(micros);
    UpdateMax(micros);
  }

  /// Adds every observation of `other` into this histogram.
  void Merge(const LatencyHistogram& other) {
    for (int i = 0; i < kNumCounts; ++i) {
      const int64_t c = other.counts_[i].load(std::memory_order_relaxed);
      if (c != 0) counts_[i].fetch_add(c, std::memory_order_relaxed);
    }
    total_micros_.fetch_add(
        other.total_micros_.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    UpdateMin(other.min_micros_.load(std::memory_order_relaxed));
    UpdateMax(other.max_micros_.load(std::memory_order_relaxed));
  }

  int64_t Count() const {
    int64_t total = 0;
    for (int i = 0; i < kNumCounts; ++i) {
      total += counts_[i].load(std::memory_order_relaxed);
    }
    return total;
  }

  int64_t TotalMicros() const {
    return total_micros_.load(std::memory_order_relaxed);
  }

  /// Value (µs) at or below which `percentile` [0,100] of observations
  /// fall; returns the highest value equivalent to the containing bucket.
  int64_t PercentileMicros(double percentile) const {
    const int64_t total = Count();
    if (total == 0) return 0;
    int64_t target = static_cast<int64_t>(percentile / 100.0 *
                                              static_cast<double>(total) +
                                          0.5);
    if (target < 1) target = 1;
    if (target > total) target = total;
    int64_t seen = 0;
    for (int i = 0; i < kNumCounts; ++i) {
      seen += counts_[i].load(std::memory_order_relaxed);
      if (seen >= target) return HighestEquivalent(i);
    }
    return HighestEquivalent(kNumCounts - 1);
  }

  /// Number of observations with value <= `micros` (cumulative bucket
  /// count; the containing bucket is counted whole, consistent with the
  /// bucket quantization of PercentileMicros). Feeds Prometheus-style
  /// cumulative `le` histogram rendering (obs/promtext.h).
  int64_t CountAtOrBelowMicros(int64_t micros) const {
    if (micros < 0) return 0;
    const int limit = CountsIndex(micros);
    int64_t seen = 0;
    for (int i = 0; i <= limit && i < kNumCounts; ++i) {
      seen += counts_[i].load(std::memory_order_relaxed);
    }
    return seen;
  }

  HistogramSummary Summarize() const {
    HistogramSummary s;
    s.count = Count();
    if (s.count == 0) return s;
    constexpr double kUs = 1e-6;
    s.total_seconds = static_cast<double>(TotalMicros()) * kUs;
    s.min_seconds = static_cast<double>(
                        min_micros_.load(std::memory_order_relaxed)) *
                    kUs;
    s.max_seconds = static_cast<double>(
                        max_micros_.load(std::memory_order_relaxed)) *
                    kUs;
    s.p50_seconds = static_cast<double>(PercentileMicros(50)) * kUs;
    s.p95_seconds = static_cast<double>(PercentileMicros(95)) * kUs;
    s.p99_seconds = static_cast<double>(PercentileMicros(99)) * kUs;
    return s;
  }

  void Reset() {
    for (int i = 0; i < kNumCounts; ++i) {
      counts_[i].store(0, std::memory_order_relaxed);
    }
    total_micros_.store(0, std::memory_order_relaxed);
    min_micros_.store(INT64_MAX, std::memory_order_relaxed);
    max_micros_.store(0, std::memory_order_relaxed);
  }

 private:
  // hdrhistogram indexing with unit magnitude 0: the group is the position
  // of the value's highest bit beyond the linear range, the sub-bucket the
  // top kSubBucketBits bits of the value.
  static int CountsIndex(int64_t value) {
    const uint64_t v = static_cast<uint64_t>(value);
    const int pow2ceiling =
        64 - __builtin_clzll(v | (kSubBucketCount - 1));
    int group = pow2ceiling - kSubBucketBits;  // 0 for the linear range
    if (group > kBucketGroups) group = kBucketGroups;
    const int sub = static_cast<int>(
        group > kBucketGroups - 1 ? kSubBucketCount - 1
                                  : (v >> group) & (kSubBucketCount - 1));
    const int index =
        (group + 1) * kSubBucketHalfCount + (sub - kSubBucketHalfCount);
    return index < kNumCounts ? index : kNumCounts - 1;
  }

  /// Largest value mapping to counts slot `index`.
  static int64_t HighestEquivalent(int index) {
    const int group_base = index / kSubBucketHalfCount;
    int group = group_base - 1;
    int sub = index % kSubBucketHalfCount + kSubBucketHalfCount;
    if (group < 0) {  // linear range: slots 0..kSubBucketCount-1
      group = 0;
      sub = index;
    }
    const int64_t lowest = static_cast<int64_t>(sub) << group;
    return lowest + ((INT64_C(1) << group) - 1);
  }

  void UpdateMin(int64_t v) {
    int64_t cur = min_micros_.load(std::memory_order_relaxed);
    while (v < cur && !min_micros_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  void UpdateMax(int64_t v) {
    int64_t cur = max_micros_.load(std::memory_order_relaxed);
    while (v > cur && !max_micros_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }

  std::vector<std::atomic<int64_t>> counts_;
  std::atomic<int64_t> total_micros_{0};
  std::atomic<int64_t> min_micros_{INT64_MAX};
  std::atomic<int64_t> max_micros_{0};
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_COMMON_HISTOGRAM_H_
