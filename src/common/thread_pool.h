// ThreadPool: fixed-size worker pool with a Wait() barrier, used to run
// per-worker phases of the distributed join drivers and JEN's internal
// thread pools (send/receive/read threads).

#ifndef HYBRIDJOIN_COMMON_THREAD_POOL_H_
#define HYBRIDJOIN_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "common/check.h"
#include "common/status.h"

namespace hybridjoin {

/// A fixed pool of threads consuming a task queue.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    HJ_CHECK_GT(num_threads, 0u);
    threads_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after Shutdown().
  void Submit(std::function<void()> task) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    const bool ok = tasks_.Push(std::move(task));
    HJ_CHECK(ok) << "Submit after Shutdown";
  }

  /// Blocks until every submitted task has finished.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [&] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }

  /// Drains remaining tasks and joins all threads. Idempotent.
  void Shutdown() {
    tasks_.Close();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  size_t num_threads() const { return threads_.size(); }

  /// Runs `fn(i)` for every i in [begin, end), split into queue tasks of
  /// `grain` consecutive indices each, and blocks the caller until all of
  /// them finish. Returns the first non-OK Status; once any index fails,
  /// chunks that have not started yet are skipped (indices already running
  /// complete their current call).
  ///
  /// Completion is tracked per call (not through the pool-wide Wait()), so
  /// several threads may run ParallelFor on one shared pool concurrently.
  /// Must not be called from inside a task running on this same pool: the
  /// caller blocks while holding a worker slot's attention, and a pool
  /// whose every thread waits this way deadlocks.
  Status ParallelFor(size_t begin, size_t end, size_t grain,
                     const std::function<Status(size_t)>& fn) {
    if (begin >= end) return Status::OK();
    if (grain == 0) grain = 1;
    struct Latch {
      std::mutex mu;
      std::condition_variable done;
      size_t remaining;
      Status first;
      std::atomic<bool> failed{false};
    } latch;
    const size_t chunks = (end - begin + grain - 1) / grain;
    latch.remaining = chunks;
    for (size_t c = 0; c < chunks; ++c) {
      const size_t lo = begin + c * grain;
      const size_t hi = std::min(end, lo + grain);
      Submit([&latch, &fn, lo, hi] {
        if (!latch.failed.load(std::memory_order_relaxed)) {
          for (size_t i = lo; i < hi; ++i) {
            Status st = fn(i);
            if (!st.ok()) {
              latch.failed.store(true, std::memory_order_relaxed);
              std::lock_guard<std::mutex> lock(latch.mu);
              if (latch.first.ok()) latch.first = std::move(st);
              break;
            }
          }
        }
        std::lock_guard<std::mutex> lock(latch.mu);
        if (--latch.remaining == 0) latch.done.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(latch.mu);
    latch.done.wait(lock, [&latch] { return latch.remaining == 0; });
    return latch.first;
  }

 private:
  void WorkerLoop() {
    while (auto task = tasks_.Pop()) {
      (*task)();
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mu_);
        idle_.notify_all();
      }
    }
  }

  BlockingQueue<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  std::atomic<int64_t> pending_{0};
  std::mutex mu_;
  std::condition_variable idle_;
};

/// Runs `fn(i)` for i in [0, n) on n dedicated threads and joins them all.
/// The workhorse for "each DB worker does X in parallel" phases.
inline void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads.emplace_back([&fn, i] { fn(i); });
  }
  for (auto& t : threads) t.join();
}

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_COMMON_THREAD_POOL_H_
