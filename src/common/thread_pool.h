// ThreadPool: fixed-size worker pool with a Wait() barrier, used to run
// per-worker phases of the distributed join drivers and JEN's internal
// thread pools (send/receive/read threads).
//
// Tasks are queued into per-query *lanes* keyed by the submitter's
// QueryScope id, and workers round-robin across non-empty lanes, so when N
// concurrent queries share one exec pool each gets a fair share of the
// workers instead of FIFO ordering letting one query's large fan-out starve
// the others. Workers re-install the submitter's QueryScope before running
// a task, so scoped metric writes inside pool tasks stay attributed to the
// right query.

#ifndef HYBRIDJOIN_COMMON_THREAD_POOL_H_
#define HYBRIDJOIN_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/query_scope.h"
#include "common/status.h"

namespace hybridjoin {

/// A fixed pool of threads consuming per-query task lanes.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    HJ_CHECK_GT(num_threads, 0u);
    threads_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task into the calling thread's query lane. Must not be
  /// called after Shutdown().
  void Submit(std::function<void()> task) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      HJ_CHECK(!closed_) << "Submit after Shutdown";
      lanes_[QueryScope::Current()].push_back(std::move(task));
      ++queued_;
    }
    queue_cv_.notify_one();
  }

  /// Blocks until every submitted task has finished.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [&] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }

  /// Drains remaining tasks and joins all threads. Idempotent.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      closed_ = true;
    }
    queue_cv_.notify_all();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  size_t num_threads() const { return threads_.size(); }

  /// Runs `fn(i)` for every i in [begin, end), split into queue tasks of
  /// `grain` consecutive indices each, and blocks the caller until all of
  /// them finish. Returns the first non-OK Status; once any index fails,
  /// chunks that have not started yet are skipped (indices already running
  /// complete their current call).
  ///
  /// Completion is tracked per call (not through the pool-wide Wait()), so
  /// several threads may run ParallelFor on one shared pool concurrently.
  /// Must not be called from inside a task running on this same pool: the
  /// caller blocks while holding a worker slot's attention, and a pool
  /// whose every thread waits this way deadlocks.
  Status ParallelFor(size_t begin, size_t end, size_t grain,
                     const std::function<Status(size_t)>& fn) {
    if (begin >= end) return Status::OK();
    if (grain == 0) grain = 1;
    struct Latch {
      std::mutex mu;
      std::condition_variable done;
      size_t remaining;
      Status first;
      std::atomic<bool> failed{false};
    } latch;
    const size_t chunks = (end - begin + grain - 1) / grain;
    latch.remaining = chunks;
    for (size_t c = 0; c < chunks; ++c) {
      const size_t lo = begin + c * grain;
      const size_t hi = std::min(end, lo + grain);
      Submit([&latch, &fn, lo, hi] {
        if (!latch.failed.load(std::memory_order_relaxed)) {
          for (size_t i = lo; i < hi; ++i) {
            Status st = fn(i);
            if (!st.ok()) {
              latch.failed.store(true, std::memory_order_relaxed);
              std::lock_guard<std::mutex> lock(latch.mu);
              if (latch.first.ok()) latch.first = std::move(st);
              break;
            }
          }
        }
        std::lock_guard<std::mutex> lock(latch.mu);
        if (--latch.remaining == 0) latch.done.notify_all();
      });
    }
    std::unique_lock<std::mutex> lock(latch.mu);
    latch.done.wait(lock, [&latch] { return latch.remaining == 0; });
    return latch.first;
  }

 private:
  void WorkerLoop() {
    while (true) {
      uint64_t lane_id = 0;
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(queue_mu_);
        queue_cv_.wait(lock, [&] { return closed_ || queued_ > 0; });
        if (queued_ == 0) return;  // closed and drained
        // Fair share: resume scanning strictly after the lane served last,
        // wrapping, so every query's lane is visited before any lane is
        // served twice. Empty lanes are erased on pop, so whatever we land
        // on is non-empty.
        auto it = lanes_.upper_bound(last_lane_);
        if (it == lanes_.end()) it = lanes_.begin();
        lane_id = it->first;
        task = std::move(it->second.front());
        it->second.pop_front();
        if (it->second.empty()) lanes_.erase(it);
        --queued_;
        last_lane_ = lane_id;
      }
      {
        QueryScope scope(lane_id);
        task();
      }
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mu_);
        idle_.notify_all();
      }
    }
  }

  std::vector<std::thread> threads_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  /// query id -> FIFO of that query's tasks; never holds an empty deque.
  std::map<uint64_t, std::deque<std::function<void()>>> lanes_;
  size_t queued_ = 0;
  uint64_t last_lane_ = 0;
  bool closed_ = false;

  std::atomic<int64_t> pending_{0};
  std::mutex mu_;
  std::condition_variable idle_;
};

/// Runs `fn(i)` for i in [0, n) on n dedicated threads and joins them all,
/// carrying the caller's QueryScope into each thread. The workhorse for
/// "each DB worker does X in parallel" phases.
inline void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  const uint64_t query_id = QueryScope::Current();
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads.emplace_back([&fn, i, query_id] {
      QueryScope scope(query_id);
      fn(i);
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_COMMON_THREAD_POOL_H_
