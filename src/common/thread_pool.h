// ThreadPool: fixed-size worker pool with a Wait() barrier, used to run
// per-worker phases of the distributed join drivers and JEN's internal
// thread pools (send/receive/read threads).

#ifndef HYBRIDJOIN_COMMON_THREAD_POOL_H_
#define HYBRIDJOIN_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/blocking_queue.h"
#include "common/check.h"

namespace hybridjoin {

/// A fixed pool of threads consuming a task queue.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    HJ_CHECK_GT(num_threads, 0u);
    threads_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Must not be called after Shutdown().
  void Submit(std::function<void()> task) {
    pending_.fetch_add(1, std::memory_order_relaxed);
    const bool ok = tasks_.Push(std::move(task));
    HJ_CHECK(ok) << "Submit after Shutdown";
  }

  /// Blocks until every submitted task has finished.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [&] {
      return pending_.load(std::memory_order_acquire) == 0;
    });
  }

  /// Drains remaining tasks and joins all threads. Idempotent.
  void Shutdown() {
    tasks_.Close();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
    threads_.clear();
  }

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop() {
    while (auto task = tasks_.Pop()) {
      (*task)();
      if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lock(mu_);
        idle_.notify_all();
      }
    }
  }

  BlockingQueue<std::function<void()>> tasks_;
  std::vector<std::thread> threads_;
  std::atomic<int64_t> pending_{0};
  std::mutex mu_;
  std::condition_variable idle_;
};

/// Runs `fn(i)` for i in [0, n) on n dedicated threads and joins them all.
/// The workhorse for "each DB worker does X in parallel" phases.
inline void ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads.emplace_back([&fn, i] { fn(i); });
  }
  for (auto& t : threads) t.join();
}

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_COMMON_THREAD_POOL_H_
