// TokenBucket: byte-rate throttle used to simulate disk and NIC bandwidth in
// the two-cluster substrate. Acquire(bytes) blocks the calling thread until
// the configured rate allows the transfer, so real wall-clock time reflects
// the configured bandwidth asymmetries of the paper's testbed.

#ifndef HYBRIDJOIN_COMMON_TOKEN_BUCKET_H_
#define HYBRIDJOIN_COMMON_TOKEN_BUCKET_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <thread>

namespace hybridjoin {

/// A classic token bucket. Rate 0 means unlimited (no throttling, no mutex
/// contention on the fast path).
class TokenBucket {
 public:
  /// `bytes_per_second` of sustained rate; `burst_bytes` of instantaneous
  /// capacity (defaults to 64 KiB or one tenth of a second of rate,
  /// whichever is larger).
  explicit TokenBucket(uint64_t bytes_per_second = 0, uint64_t burst_bytes = 0)
      : rate_(bytes_per_second),
        burst_(burst_bytes != 0
                   ? burst_bytes
                   : std::max<uint64_t>(64 * 1024, bytes_per_second / 10)),
        tokens_(static_cast<double>(burst_)),
        last_(Clock::now()) {}

  bool unlimited() const { return rate_ == 0; }
  uint64_t rate() const { return rate_; }

  /// Blocks until `bytes` tokens are available, then consumes them.
  /// Requests larger than the burst are split internally.
  void Acquire(uint64_t bytes) {
    if (rate_ == 0 || bytes == 0) return;
    while (bytes > 0) {
      const uint64_t chunk = std::min<uint64_t>(bytes, burst_);
      AcquireChunk(chunk);
      bytes -= chunk;
    }
  }

  /// Like Acquire, but gives up once `timeout` has elapsed without the full
  /// request being granted. Returns true iff all `bytes` were consumed;
  /// tokens consumed by chunks granted before the deadline stay consumed
  /// (the caller sheds the request either way, so the partial spend only
  /// delays its own next attempt). A non-positive timeout means "only what
  /// is available right now" (no sleeping). Used by per-session admission
  /// rate limits, where a queued query would rather be shed than wait
  /// forever on a starved bucket.
  bool TryAcquireFor(uint64_t bytes, std::chrono::milliseconds timeout) {
    if (rate_ == 0 || bytes == 0) return true;
    const auto deadline = Clock::now() + timeout;
    while (bytes > 0) {
      const uint64_t chunk = std::min<uint64_t>(bytes, burst_);
      if (!AcquireChunkUntil(chunk, deadline)) return false;
      bytes -= chunk;
    }
    return true;
  }

 private:
  using Clock = std::chrono::steady_clock;

  void AcquireChunk(uint64_t bytes) {
    while (true) {
      std::chrono::nanoseconds wait{0};
      {
        std::lock_guard<std::mutex> lock(mu_);
        Refill();
        if (tokens_ >= static_cast<double>(bytes)) {
          tokens_ -= static_cast<double>(bytes);
          return;
        }
        const double deficit = static_cast<double>(bytes) - tokens_;
        wait = std::chrono::nanoseconds(
            static_cast<int64_t>(deficit / static_cast<double>(rate_) * 1e9));
      }
      std::this_thread::sleep_for(
          std::max(wait, std::chrono::nanoseconds(1000)));
    }
  }

  bool AcquireChunkUntil(uint64_t bytes, Clock::time_point deadline) {
    while (true) {
      std::chrono::nanoseconds wait{0};
      {
        std::lock_guard<std::mutex> lock(mu_);
        Refill();
        if (tokens_ >= static_cast<double>(bytes)) {
          tokens_ -= static_cast<double>(bytes);
          return true;
        }
        const double deficit = static_cast<double>(bytes) - tokens_;
        wait = std::chrono::nanoseconds(
            static_cast<int64_t>(deficit / static_cast<double>(rate_) * 1e9));
      }
      const auto now = Clock::now();
      if (now >= deadline) return false;
      const auto until_deadline =
          std::chrono::duration_cast<std::chrono::nanoseconds>(deadline - now);
      std::this_thread::sleep_for(std::min(
          until_deadline,
          std::max(wait, std::chrono::nanoseconds(1000))));
    }
  }

  void Refill() {
    const auto now = Clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - last_).count();
    last_ = now;
    tokens_ = std::min(static_cast<double>(burst_),
                       tokens_ + elapsed * static_cast<double>(rate_));
  }

  const uint64_t rate_;   // bytes/sec; 0 = unlimited.
  const uint64_t burst_;  // bucket capacity in bytes.
  std::mutex mu_;
  double tokens_;
  Clock::time_point last_;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_COMMON_TOKEN_BUCKET_H_
