// Result<T>: value-or-Status, the return type of fallible value-producing
// functions (analogous to arrow::Result / absl::StatusOr).

#ifndef HYBRIDJOIN_COMMON_RESULT_H_
#define HYBRIDJOIN_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace hybridjoin {

/// Holds either a T or a non-OK Status. Accessing value() on an error result
/// is a programming error and aborts via HJ_CHECK.
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : value_(std::move(value)) {}
  /// Implicit from error Status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {
    HJ_CHECK(!status_.ok()) << "Result constructed from OK Status";
  }

  bool ok() const { return value_.has_value(); }

  /// The error (or OK if this holds a value).
  const Status& status() const& { return status_; }
  Status status() && { return std::move(status_); }

  const T& value() const& {
    HJ_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    HJ_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    HJ_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_COMMON_RESULT_H_
