#include "sql/lexer.h"

#include <cctype>

namespace hybridjoin {
namespace sql {

bool Token::Is(const char* word) const {
  if (kind != TokenKind::kIdent) return false;
  size_t i = 0;
  for (; word[i] != '\0' && i < text.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(text[i])) !=
        std::toupper(static_cast<unsigned char>(word[i]))) {
      return false;
    }
  }
  return word[i] == '\0' && i == text.size();
}

Result<std::vector<Token>> Tokenize(const std::string& input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      token.kind = TokenKind::kIdent;
      token.text = input.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      int64_t value = 0;
      while (j < n && std::isdigit(static_cast<unsigned char>(input[j]))) {
        value = value * 10 + (input[j] - '0');
        ++j;
      }
      token.kind = TokenKind::kNumber;
      token.number = value;
      token.text = input.substr(i, j - i);
      i = j;
    } else if (c == '\'') {
      std::string text;
      size_t j = i + 1;
      bool closed = false;
      while (j < n) {
        if (input[j] == '\'') {
          if (j + 1 < n && input[j + 1] == '\'') {  // '' escape
            text.push_back('\'');
            j += 2;
            continue;
          }
          closed = true;
          ++j;
          break;
        }
        text.push_back(input[j]);
        ++j;
      }
      if (!closed) {
        return Status::InvalidArgument(
            "sql: unterminated string literal at offset " +
            std::to_string(i));
      }
      token.kind = TokenKind::kString;
      token.text = std::move(text);
      i = j;
    } else {
      token.kind = TokenKind::kSymbol;
      // Two-character operators first.
      if (i + 1 < n) {
        const std::string two = input.substr(i, 2);
        if (two == "<=" || two == ">=" || two == "<>" || two == "!=") {
          token.text = two == "!=" ? "<>" : two;
          tokens.push_back(std::move(token));
          i += 2;
          continue;
        }
      }
      switch (c) {
        case ',':
        case '(':
        case ')':
        case '.':
        case '*':
        case '=':
        case '<':
        case '>':
        case '+':
        case '-':
          token.text = std::string(1, c);
          break;
        default:
          return Status::InvalidArgument(
              std::string("sql: unexpected character '") + c +
              "' at offset " + std::to_string(i));
      }
      ++i;
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace sql
}  // namespace hybridjoin
