#include "sql/parser.h"

#include <algorithm>
#include <map>
#include <set>

#include "expr/scalar_functions.h"
#include "sql/lexer.h"

namespace hybridjoin {
namespace sql {

namespace {

Status ParseError(const Token& at, const std::string& message) {
  return Status::InvalidArgument("sql: " + message + " (near offset " +
                                 std::to_string(at.position) + ")");
}

/// A column bound to one of the two FROM tables.
struct BoundColumn {
  int side = -1;  // index into Parser::sides_
  std::string column;
};

struct SideInfo {
  std::string table;
  std::string alias;
  TableSideKind kind = TableSideKind::kDb;
  SchemaPtr schema;
  std::vector<PredicatePtr> local_predicates;
  std::set<std::string> referenced;
  std::string join_key;
};

struct Aggregate {
  AggOp op = AggOp::kCountStar;
  BoundColumn column;  // unused for COUNT(*)
  std::string result_name;
};

class Parser {
 public:
  Parser(std::vector<Token> tokens, const TableResolver& resolver)
      : tokens_(std::move(tokens)), resolver_(resolver) {}

  Result<HybridQuery> Parse();

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  Token Take() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }
  bool AcceptSymbol(const char* symbol) {
    if (Peek().IsSymbol(symbol)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptKeyword(const char* word) {
    if (Peek().Is(word)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const char* symbol) {
    if (!AcceptSymbol(symbol)) {
      return ParseError(Peek(), std::string("expected '") + symbol + "'");
    }
    return Status::OK();
  }
  Status ExpectKeyword(const char* word) {
    if (!AcceptKeyword(word)) {
      return ParseError(Peek(), std::string("expected ") + word);
    }
    return Status::OK();
  }

  // Grammar pieces.
  Status ParseSelectList();
  Status ParseFrom();
  Status ParseWhere();
  Status ParseGroupBy();

  /// column | alias.column; validated against the FROM schemas.
  Result<BoundColumn> ParseColumnRef();
  /// integer | 'string' | DATE 'yyyy-mm-dd'
  Result<Value> ParseLiteral();
  /// A single-side predicate expression (handles OR / NOT / parens).
  Result<std::pair<PredicatePtr, int>> ParseOrExpr();
  Result<std::pair<PredicatePtr, int>> ParseUnary();
  Result<std::pair<PredicatePtr, int>> ParseSimpleComparison();
  /// One top-level conjunct: local predicate, equi-join, or diff-range.
  Status ParseConjunct();

  /// group expression: column or extract_group(column); returns canonical
  /// text for SELECT/GROUP BY matching.
  Result<std::string> ParseGroupExpr(BoundColumn* column, bool* extract);

  Result<BoundColumn> Resolve(const Token& first);

  std::string Prefixed(const BoundColumn& c) const {
    return sides_[c.side].alias + "." + c.column;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  const TableResolver& resolver_;

  SideInfo sides_[2];
  int num_sides_ = 0;

  bool have_group_ = false;
  BoundColumn group_column_;
  bool group_extract_ = false;
  std::string group_text_;  // canonical, from SELECT
  std::vector<Aggregate> aggregates_;

  bool have_join_ = false;
  std::vector<PredicatePtr> post_join_;  // over prefixed names
  std::set<int> post_join_sides_;
};

Result<BoundColumn> Parser::Resolve(const Token& first) {
  if (first.kind != TokenKind::kIdent) {
    return ParseError(first, "expected a column reference");
  }
  // alias.column?
  if (Peek().IsSymbol(".")) {
    ++pos_;  // consume '.'
    Token col = Take();
    if (col.kind != TokenKind::kIdent) {
      return ParseError(col, "expected column name after '.'");
    }
    for (int s = 0; s < num_sides_; ++s) {
      if (first.Is(sides_[s].alias.c_str())) {
        if (!sides_[s].schema->HasColumn(col.text)) {
          return ParseError(col, "table " + sides_[s].alias +
                                     " has no column '" + col.text + "'");
        }
        sides_[s].referenced.insert(col.text);
        return BoundColumn{s, col.text};
      }
    }
    return ParseError(first, "unknown table alias '" + first.text + "'");
  }
  // Unqualified: must be unambiguous.
  int found = -1;
  for (int s = 0; s < num_sides_; ++s) {
    if (sides_[s].schema->HasColumn(first.text)) {
      if (found >= 0) {
        return ParseError(first,
                          "ambiguous column '" + first.text + "'");
      }
      found = s;
    }
  }
  if (found < 0) {
    return ParseError(first, "unknown column '" + first.text + "'");
  }
  sides_[found].referenced.insert(first.text);
  return BoundColumn{found, first.text};
}

Result<BoundColumn> Parser::ParseColumnRef() {
  Token first = Take();
  return Resolve(first);
}

Result<Value> Parser::ParseLiteral() {
  if (Peek().Is("DATE")) {
    ++pos_;
    Token s = Take();
    if (s.kind != TokenKind::kString || s.text.size() != 10 ||
        s.text[4] != '-' || s.text[7] != '-') {
      return ParseError(s, "expected DATE 'yyyy-mm-dd'");
    }
    const int y = std::atoi(s.text.substr(0, 4).c_str());
    const int m = std::atoi(s.text.substr(5, 2).c_str());
    const int d = std::atoi(s.text.substr(8, 2).c_str());
    return Value(DaysFromCivil(y, m, d));
  }
  bool negative = false;
  if (Peek().IsSymbol("-")) {
    ++pos_;
    negative = true;
  }
  Token t = Take();
  if (t.kind == TokenKind::kNumber) {
    const int64_t v = negative ? -t.number : t.number;
    if (v >= INT32_MIN && v <= INT32_MAX) {
      return Value(static_cast<int32_t>(v));
    }
    return Value(v);
  }
  if (t.kind == TokenKind::kString && !negative) {
    return Value(t.text);
  }
  return ParseError(t, "expected a literal");
}

Result<std::pair<PredicatePtr, int>> Parser::ParseSimpleComparison() {
  HJ_ASSIGN_OR_RETURN(BoundColumn column, ParseColumnRef());

  if (AcceptKeyword("BETWEEN")) {
    HJ_ASSIGN_OR_RETURN(Value lo, ParseLiteral());
    HJ_RETURN_IF_ERROR(ExpectKeyword("AND"));
    HJ_ASSIGN_OR_RETURN(Value hi, ParseLiteral());
    PredicatePtr p = And({Cmp(column.column, CmpOp::kGe, std::move(lo)),
                          Cmp(column.column, CmpOp::kLe, std::move(hi))});
    return std::make_pair(std::move(p), column.side);
  }
  if (AcceptKeyword("LIKE")) {
    Token s = Take();
    if (s.kind != TokenKind::kString || s.text.empty() ||
        s.text.back() != '%' ||
        s.text.find('%') != s.text.size() - 1) {
      return ParseError(s, "only LIKE 'prefix%' is supported");
    }
    PredicatePtr p =
        StrPrefix(column.column, s.text.substr(0, s.text.size() - 1));
    return std::make_pair(std::move(p), column.side);
  }

  Token op = Take();
  CmpOp cmp;
  if (op.IsSymbol("=")) {
    cmp = CmpOp::kEq;
  } else if (op.IsSymbol("<>")) {
    cmp = CmpOp::kNe;
  } else if (op.IsSymbol("<")) {
    cmp = CmpOp::kLt;
  } else if (op.IsSymbol("<=")) {
    cmp = CmpOp::kLe;
  } else if (op.IsSymbol(">")) {
    cmp = CmpOp::kGt;
  } else if (op.IsSymbol(">=")) {
    cmp = CmpOp::kGe;
  } else {
    return ParseError(op, "expected a comparison operator");
  }
  HJ_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
  PredicatePtr p = Cmp(column.column, cmp, std::move(literal));
  return std::make_pair(std::move(p), column.side);
}

Result<std::pair<PredicatePtr, int>> Parser::ParseUnary() {
  if (AcceptKeyword("NOT")) {
    HJ_ASSIGN_OR_RETURN(auto inner, ParseUnary());
    return std::make_pair(Not(std::move(inner.first)), inner.second);
  }
  if (AcceptSymbol("(")) {
    HJ_ASSIGN_OR_RETURN(auto inner, ParseOrExpr());
    HJ_RETURN_IF_ERROR(ExpectSymbol(")"));
    return inner;
  }
  return ParseSimpleComparison();
}

Result<std::pair<PredicatePtr, int>> Parser::ParseOrExpr() {
  HJ_ASSIGN_OR_RETURN(auto first, ParseUnary());
  if (!Peek().Is("OR")) return first;
  std::vector<PredicatePtr> branches;
  branches.push_back(std::move(first.first));
  const int side = first.second;
  while (AcceptKeyword("OR")) {
    HJ_ASSIGN_OR_RETURN(auto next, ParseUnary());
    if (next.second != side) {
      return ParseError(Peek(),
                        "OR must not mix columns of both tables");
    }
    branches.push_back(std::move(next.first));
  }
  return std::make_pair(Or(std::move(branches)), side);
}

Status Parser::ParseConjunct() {
  // Lookahead for the two cross-side forms, which are only legal as
  // top-level conjuncts: `a.x = b.y` and `a.x - b.y BETWEEN lo AND hi`.
  const size_t start = pos_;
  if (Peek().kind == TokenKind::kIdent && !Peek().Is("NOT")) {
    Token first = Take();
    auto lhs = Resolve(first);
    if (lhs.ok()) {
      if (AcceptSymbol("=") && Peek().kind == TokenKind::kIdent) {
        const size_t rhs_start = pos_;
        Token second = Take();
        auto rhs = Resolve(second);
        if (rhs.ok() && rhs->side != lhs->side) {
          if (have_join_) {
            return ParseError(first, "only one equi-join is supported");
          }
          have_join_ = true;
          sides_[lhs->side].join_key = lhs->column;
          sides_[rhs->side].join_key = rhs->column;
          return Status::OK();
        }
        pos_ = rhs_start;  // same-side col = col is unsupported; rewind
        return ParseError(second,
                          "right side of '=' must be the other table's "
                          "column or a literal");
      }
      if (AcceptSymbol("-")) {
        HJ_ASSIGN_OR_RETURN(BoundColumn rhs, ParseColumnRef());
        if (rhs.side == lhs->side) {
          return ParseError(first,
                            "date arithmetic must span both tables");
        }
        HJ_RETURN_IF_ERROR(ExpectKeyword("BETWEEN"));
        HJ_ASSIGN_OR_RETURN(Value lo, ParseLiteral());
        HJ_RETURN_IF_ERROR(ExpectKeyword("AND"));
        HJ_ASSIGN_OR_RETURN(Value hi, ParseLiteral());
        if (!lo.is_int32() && !lo.is_int64()) {
          return ParseError(first, "BETWEEN bounds must be integers");
        }
        post_join_.push_back(DiffRange(Prefixed(*lhs), Prefixed(rhs),
                                       lo.AsInt64Lenient(),
                                       hi.AsInt64Lenient()));
        post_join_sides_.insert(lhs->side);
        post_join_sides_.insert(rhs.side);
        return Status::OK();
      }
    }
    pos_ = start;  // fall through to the general predicate parser
  }
  HJ_ASSIGN_OR_RETURN(auto predicate, ParseOrExpr());
  sides_[predicate.second].local_predicates.push_back(
      std::move(predicate.first));
  return Status::OK();
}

Result<std::string> Parser::ParseGroupExpr(BoundColumn* column,
                                           bool* extract) {
  if (Peek().Is("extract_group")) {
    ++pos_;
    HJ_RETURN_IF_ERROR(ExpectSymbol("("));
    HJ_ASSIGN_OR_RETURN(*column, ParseColumnRef());
    HJ_RETURN_IF_ERROR(ExpectSymbol(")"));
    *extract = true;
    return "extract_group(" + Prefixed(*column) + ")";
  }
  HJ_ASSIGN_OR_RETURN(*column, ParseColumnRef());
  *extract = false;
  return Prefixed(*column);
}

Status Parser::ParseSelectList() {
  while (true) {
    if (AcceptKeyword("COUNT")) {
      HJ_RETURN_IF_ERROR(ExpectSymbol("("));
      HJ_RETURN_IF_ERROR(ExpectSymbol("*"));
      HJ_RETURN_IF_ERROR(ExpectSymbol(")"));
      Aggregate agg;
      agg.op = AggOp::kCountStar;
      agg.result_name = "count";
      if (AcceptKeyword("AS")) {
        Token name = Take();
        if (name.kind != TokenKind::kIdent) {
          return ParseError(name, "expected name after AS");
        }
        agg.result_name = name.text;
      }
      aggregates_.push_back(std::move(agg));
    } else if (Peek().Is("SUM") || Peek().Is("MIN") || Peek().Is("MAX")) {
      Token fn = Take();
      Aggregate agg;
      agg.op = fn.Is("SUM") ? AggOp::kSum
                            : (fn.Is("MIN") ? AggOp::kMin : AggOp::kMax);
      HJ_RETURN_IF_ERROR(ExpectSymbol("("));
      HJ_ASSIGN_OR_RETURN(agg.column, ParseColumnRef());
      HJ_RETURN_IF_ERROR(ExpectSymbol(")"));
      std::string lowered = fn.text;
      for (char& c : lowered) {
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      }
      agg.result_name = lowered + "_" + agg.column.column;
      if (AcceptKeyword("AS")) {
        Token name = Take();
        if (name.kind != TokenKind::kIdent) {
          return ParseError(name, "expected name after AS");
        }
        agg.result_name = name.text;
      }
      aggregates_.push_back(std::move(agg));
    } else {
      if (have_group_) {
        return ParseError(Peek(),
                          "only one group expression is supported");
      }
      HJ_ASSIGN_OR_RETURN(group_text_,
                          ParseGroupExpr(&group_column_, &group_extract_));
      have_group_ = true;
      if (AcceptKeyword("AS")) {
        Token name = Take();
        if (name.kind != TokenKind::kIdent) {
          return ParseError(name, "expected name after AS");
        }
      }
    }
    if (!AcceptSymbol(",")) break;
  }
  if (!have_group_) {
    return ParseError(Peek(), "SELECT must include the group expression");
  }
  if (aggregates_.empty()) {
    return ParseError(Peek(), "SELECT must include an aggregate");
  }
  return Status::OK();
}

Status Parser::ParseFrom() {
  HJ_RETURN_IF_ERROR(ExpectKeyword("FROM"));
  for (int s = 0; s < 2; ++s) {
    Token table = Take();
    if (table.kind != TokenKind::kIdent) {
      return ParseError(table, "expected table name");
    }
    SideInfo& side = sides_[num_sides_];
    side.table = table.text;
    side.alias = table.text;
    if (Peek().kind == TokenKind::kIdent && !Peek().Is("WHERE") &&
        !Peek().Is("GROUP")) {
      side.alias = Take().text;
    }
    HJ_ASSIGN_OR_RETURN(side.kind, resolver_.side(side.table));
    HJ_ASSIGN_OR_RETURN(side.schema, resolver_.schema(side.table));
    ++num_sides_;
    if (s == 0) {
      HJ_RETURN_IF_ERROR(ExpectSymbol(","));
    }
  }
  if (sides_[0].alias == sides_[1].alias) {
    return ParseError(Peek(), "table aliases must be distinct");
  }
  if (sides_[0].kind == sides_[1].kind) {
    return ParseError(Peek(),
                      "one table must be in the database and one on HDFS");
  }
  return Status::OK();
}

Status Parser::ParseWhere() {
  if (!AcceptKeyword("WHERE")) return Status::OK();
  HJ_RETURN_IF_ERROR(ParseConjunct());
  while (AcceptKeyword("AND")) {
    HJ_RETURN_IF_ERROR(ParseConjunct());
  }
  return Status::OK();
}

Status Parser::ParseGroupBy() {
  HJ_RETURN_IF_ERROR(ExpectKeyword("GROUP"));
  HJ_RETURN_IF_ERROR(ExpectKeyword("BY"));
  BoundColumn column;
  bool extract = false;
  HJ_ASSIGN_OR_RETURN(std::string text, ParseGroupExpr(&column, &extract));
  if (text != group_text_) {
    return ParseError(Peek(), "GROUP BY expression '" + text +
                                  "' does not match SELECT's '" +
                                  group_text_ + "'");
  }
  return Status::OK();
}

Result<HybridQuery> Parser::Parse() {
  HJ_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
  // Column references in the SELECT list need the FROM schemas, so locate
  // and parse the FROM clause first, then come back for the select list.
  const size_t select_start = pos_;
  size_t from_pos = pos_;
  int depth = 0;
  while (tokens_[from_pos].kind != TokenKind::kEnd) {
    if (tokens_[from_pos].IsSymbol("(")) ++depth;
    if (tokens_[from_pos].IsSymbol(")")) --depth;
    if (depth == 0 && tokens_[from_pos].Is("FROM")) break;
    ++from_pos;
  }
  if (tokens_[from_pos].kind == TokenKind::kEnd) {
    return ParseError(tokens_[from_pos], "expected FROM clause");
  }
  pos_ = from_pos;
  HJ_RETURN_IF_ERROR(ParseFrom());
  const size_t from_end = pos_;

  pos_ = select_start;
  HJ_RETURN_IF_ERROR(ParseSelectList());
  if (pos_ != from_pos) {
    return ParseError(Peek(), "unexpected token in SELECT list");
  }

  pos_ = from_end;
  HJ_RETURN_IF_ERROR(ParseWhere());
  HJ_RETURN_IF_ERROR(ParseGroupBy());
  if (Peek().kind != TokenKind::kEnd) {
    return ParseError(Peek(), "unexpected trailing input");
  }
  if (!have_join_) {
    return ParseError(Peek(), "an equi-join between the two tables is "
                              "required (T.key = L.key)");
  }

  HybridQuery q;
  for (int s = 0; s < num_sides_; ++s) {
    const SideInfo& side = sides_[s];
    TableSide& out = side.kind == TableSideKind::kDb ? q.db : q.hdfs;
    out.table = side.table;
    out.alias = side.alias;
    out.join_key = side.join_key;
    if (side.join_key.empty()) {
      return Status::InvalidArgument(
          "sql: join key missing for table " + side.table);
    }
    if (!side.local_predicates.empty()) {
      out.predicate = side.local_predicates.size() == 1
                          ? side.local_predicates[0]
                          : And(side.local_predicates);
    }
    // Projection: join key first, then the other referenced columns in
    // schema order (predicate-only columns are evaluated pre-projection
    // and need not travel, but including them is simpler and matches what
    // the reference executor expects; prune to post-join needs only).
    std::set<std::string> needed;
    needed.insert(side.join_key);
    // Post-join and group/aggregate references for this side.
    for (const auto& p : post_join_) {
      std::vector<std::string> cols;
      p->CollectColumns(&cols);
      for (const auto& name : cols) {
        const std::string prefix = side.alias + ".";
        if (name.rfind(prefix, 0) == 0) {
          needed.insert(name.substr(prefix.size()));
        }
      }
    }
    if (group_column_.side == s) needed.insert(group_column_.column);
    for (const auto& agg : aggregates_) {
      if (agg.op != AggOp::kCountStar && agg.column.side == s) {
        needed.insert(agg.column.column);
      }
    }
    for (const Field& f : side.schema->fields()) {
      if (needed.count(f.name)) out.projection.push_back(f.name);
    }
  }

  if (!post_join_.empty()) {
    q.post_join_predicate =
        post_join_.size() == 1 ? post_join_[0] : And(post_join_);
  }

  AggSpec spec;
  spec.group_column = Prefixed(group_column_);
  spec.extract_group = group_extract_;
  for (const auto& agg : aggregates_) {
    AggSpec::Item item;
    item.op = agg.op;
    item.result_name = agg.result_name;
    if (agg.op != AggOp::kCountStar) {
      item.column = Prefixed(agg.column);
    }
    spec.items.push_back(std::move(item));
  }
  q.agg = std::move(spec);

  HJ_RETURN_IF_ERROR(q.Validate());
  return q;
}

}  // namespace

Result<HybridQuery> ParseHybridQuery(const std::string& statement,
                                     const TableResolver& resolver) {
  if (resolver.side == nullptr || resolver.schema == nullptr) {
    return Status::InvalidArgument("sql: resolver callbacks must be set");
  }
  HJ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(statement));
  Parser parser(std::move(tokens), resolver);
  return parser.Parse();
}

Result<Statement> ParseStatement(const std::string& statement) {
  HJ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(statement));
  Statement out;
  if (tokens.empty() || tokens[0].kind == TokenKind::kEnd) {
    return Status::InvalidArgument("sql: empty statement");
  }
  const Token& first = tokens[0];
  if (first.Is("SHOW")) {
    if (tokens.size() < 2 || tokens[1].kind != TokenKind::kIdent) {
      return Status::InvalidArgument(
          "sql: SHOW expects PROCESSLIST, METRICS or SESSIONS");
    }
    if (tokens[1].Is("PROCESSLIST")) {
      out.kind = StatementKind::kShowProcesslist;
    } else if (tokens[1].Is("METRICS")) {
      out.kind = StatementKind::kShowMetrics;
    } else if (tokens[1].Is("SESSIONS")) {
      out.kind = StatementKind::kShowSessions;
    } else {
      return Status::InvalidArgument("sql: unknown SHOW target '" +
                                     tokens[1].text + "'");
    }
    if (tokens.size() > 2 && tokens[2].kind != TokenKind::kEnd) {
      return Status::InvalidArgument("sql: trailing input after SHOW " +
                                     tokens[1].text);
    }
    return out;
  }
  if (first.Is("KILL")) {
    if (tokens.size() < 2 || tokens[1].kind != TokenKind::kNumber ||
        tokens[1].number <= 0) {
      return Status::InvalidArgument("sql: KILL expects a positive query id");
    }
    if (tokens.size() > 2 && tokens[2].kind != TokenKind::kEnd) {
      return Status::InvalidArgument("sql: trailing input after KILL");
    }
    out.kind = StatementKind::kKill;
    out.kill_query_id = static_cast<uint64_t>(tokens[1].number);
    return out;
  }
  out.kind = StatementKind::kSelect;
  return out;
}

}  // namespace sql
}  // namespace hybridjoin
