// SQL lexer for the hybrid-warehouse query dialect (see parser.h). Small,
// hand-rolled, and error-reporting by token position.

#ifndef HYBRIDJOIN_SQL_LEXER_H_
#define HYBRIDJOIN_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace hybridjoin {
namespace sql {

enum class TokenKind : uint8_t {
  kIdent,    ///< bare identifier (keywords are classified by the parser)
  kNumber,   ///< integer literal
  kString,   ///< '...' literal (quotes stripped, '' unescaped)
  kSymbol,   ///< one of , ( ) . * = <> != < <= > >= + -
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     ///< identifier/symbol text; string contents
  int64_t number = 0;   ///< value for kNumber
  size_t position = 0;  ///< byte offset in the input, for error messages

  /// Case-insensitive keyword/identifier comparison.
  bool Is(const char* word) const;
  bool IsSymbol(const char* symbol) const {
    return kind == TokenKind::kSymbol && text == symbol;
  }
};

/// Tokenizes a full statement. Errors carry the offending position.
Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace sql
}  // namespace hybridjoin

#endif  // HYBRIDJOIN_SQL_LEXER_H_
