// SQL front end for hybrid joins. Parses the dialect the paper's example
// query is written in (§2) into a HybridQuery:
//
//   SELECT extract_group(L.groupByExtractCol), COUNT(*)
//   FROM T, L
//   WHERE T.corPred < 100000 AND T.indPred < 500000
//     AND L.corPred < 400000 AND L.indPred < 1000000
//     AND T.joinKey = L.joinKey
//     AND T.predAfterJoin - L.predAfterJoin BETWEEN 0 AND 1
//   GROUP BY extract_group(L.groupByExtractCol)
//
// Supported pieces:
//   - exactly two FROM tables, each optionally aliased ("FROM T, L" or
//     "FROM transactions T, logs L"); one must resolve to the database,
//     one to HDFS
//   - WHERE: a conjunction whose conjuncts are
//       * single-side comparisons  col <op> literal, BETWEEN, LIKE
//         'prefix%', and parenthesized OR / NOT combinations of these
//       * exactly one cross-side equi-join  a.x = b.y
//       * optional cross-side date arithmetic
//         a.x - b.y BETWEEN lo AND hi
//   - literals: integers, 'strings', DATE 'yyyy-mm-dd'
//   - SELECT/GROUP BY: one group expression (a column or
//     extract_group(column)) plus aggregates COUNT(*), SUM/MIN/MAX(col),
//     each with optional AS name
//
// Projections are inferred from the referenced columns. Everything else
// (join order, n-way joins, subqueries) is out of scope, as in the paper.

#ifndef HYBRIDJOIN_SQL_PARSER_H_
#define HYBRIDJOIN_SQL_PARSER_H_

#include <functional>
#include <string>

#include "hybrid/query.h"

namespace hybridjoin {
namespace sql {

/// Which system a FROM table lives in.
enum class TableSideKind { kDb, kHdfs };

/// Resolves a table name to its side and schema. HybridWarehouse provides
/// one backed by its catalogs; tests can stub it.
struct TableResolver {
  std::function<Result<TableSideKind>(const std::string& table)> side;
  std::function<Result<SchemaPtr>(const std::string& table)> schema;
};

/// Parses one SELECT statement into a HybridQuery (validated).
Result<HybridQuery> ParseHybridQuery(const std::string& statement,
                                     const TableResolver& resolver);

/// Statement classification for the shell / server front end: queries go
/// through ParseHybridQuery, everything else is an administrative command
/// answered from the observability plane.
enum class StatementKind {
  kSelect,           ///< a query — parse with ParseHybridQuery
  kShowProcesslist,  ///< SHOW PROCESSLIST
  kShowMetrics,      ///< SHOW METRICS (Prometheus exposition text)
  kShowSessions,     ///< SHOW SESSIONS
  kKill,             ///< KILL <query_id>
};

struct Statement {
  StatementKind kind = StatementKind::kSelect;
  uint64_t kill_query_id = 0;  ///< for kKill
};

/// Classifies one statement without resolving tables: SHOW / KILL forms
/// parse fully here; anything else classifies as kSelect (whose real parse
/// — and error reporting — happens in ParseHybridQuery). Errors are
/// returned only for malformed SHOW/KILL statements.
Result<Statement> ParseStatement(const std::string& statement);

}  // namespace sql
}  // namespace hybridjoin

#endif  // HYBRIDJOIN_SQL_PARSER_H_
