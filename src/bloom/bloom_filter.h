// BloomFilter over join keys — the data-movement reducer at the heart of the
// paper. Each worker builds a local filter over its post-predicate join keys;
// local filters are combined into a global one with bitwise OR (paper §3.1);
// the global filter crosses the cluster boundary and prunes the other side.
//
// The paper uses m = 128M bits and k = 2 hash functions for 16M distinct
// keys (8 bits/key, ~5% false positives). We keep the same bits-per-key and
// k by default, scaled to the workload's key count.

#ifndef HYBRIDJOIN_BLOOM_BLOOM_FILTER_H_
#define HYBRIDJOIN_BLOOM_BLOOM_FILTER_H_

#include <cstdint>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"

namespace hybridjoin {

/// Parameters of a Bloom filter. Both sides of a join must agree on these
/// for OR-combination to be valid, so they are carried on the wire.
struct BloomParams {
  uint64_t num_bits = 0;   ///< m. Rounded up to a multiple of 64 internally.
  uint32_t num_hashes = 2; ///< k.

  /// Paper-style sizing: bits_per_key * expected_keys bits, k hashes.
  static BloomParams ForKeys(uint64_t expected_keys, double bits_per_key = 8.0,
                             uint32_t num_hashes = 2);

  /// Expected false-positive rate after inserting n distinct keys:
  /// (1 - e^{-kn/m})^k. This is the mean of the classic approximation; the
  /// implementation's observed rate is statistically verified to stay
  /// within 2x of this value across filter sizes
  /// (bloom_test.cc: ObservedFprWithinTwiceExpectedAcrossSizes), which is
  /// the bound the advisor's transfer-cost estimates rely on.
  double ExpectedFpr(uint64_t n) const;

  bool operator==(const BloomParams& other) const {
    return num_bits == other.num_bits && num_hashes == other.num_hashes;
  }
};

/// A standard Bloom filter over 64-bit keys. Add/MayContain are not
/// synchronized; each thread populates its own filter and filters are merged
/// with UnionWith (the paper's bitwise-OR aggregation).
class BloomFilter {
 public:
  BloomFilter() : BloomFilter(BloomParams{64, 2}) {}
  explicit BloomFilter(BloomParams params);

  const BloomParams& params() const { return params_; }
  uint64_t num_bits() const { return params_.num_bits; }
  uint32_t num_hashes() const { return params_.num_hashes; }

  void Add(int64_t key);
  bool MayContain(int64_t key) const;

  /// Bitwise OR of another filter into this one. Params must match.
  Status UnionWith(const BloomFilter& other);

  /// Fraction of bits set (diagnostic; drives the measured-FPR estimate).
  double FillRatio() const;

  /// Wire size in bytes (what crossing the network costs).
  size_t ByteSize() const { return words_.size() * 8 + 16; }

  void SerializeTo(BinaryWriter* out) const;
  std::vector<uint8_t> Serialize() const {
    BinaryWriter w(ByteSize());
    SerializeTo(&w);
    return w.Release();
  }
  static Result<BloomFilter> Deserialize(BinaryReader* in);
  static Result<BloomFilter> Deserialize(const std::vector<uint8_t>& buf) {
    BinaryReader r(buf);
    return Deserialize(&r);
  }

 private:
  /// i-th probe position for a key, double-hashing scheme.
  uint64_t Position(uint64_t h1, uint64_t h2, uint32_t i) const {
    return (h1 + i * h2) % params_.num_bits;
  }

  BloomParams params_;
  std::vector<uint64_t> words_;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_BLOOM_BLOOM_FILTER_H_
