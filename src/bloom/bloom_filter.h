// BloomFilter over join keys — the data-movement reducer at the heart of the
// paper. Each worker builds a local filter over its post-predicate join keys;
// local filters are combined into a global one with bitwise OR (paper §3.1);
// the global filter crosses the cluster boundary and prunes the other side.
//
// The paper uses m = 128M bits and k = 2 hash functions for 16M distinct
// keys (8 bits/key, ~5% false positives). We keep the same bits-per-key and
// k by default, scaled to the workload's key count.
//
// Two bit layouts are supported (carried on the wire in BloomParams, since
// both cluster sides must agree for OR-union to be valid):
//   - kClassic: the k probe positions are spread over the whole bit array
//     (k cache lines touched per key).
//   - kBlocked: one 512-bit (64-byte cache line) block per key, all k bits
//     inside it (register-blocked / cache-line-blocked filter; at most two
//     lines touched when the block straddles an allocation boundary). The
//     blocked layout trades a slightly higher false-positive rate — see
//     ExpectedFpr — for one memory access per key, and is what the batched
//     AddKeys/MayContainKeys kernels prefetch against.

#ifndef HYBRIDJOIN_BLOOM_BLOOM_FILTER_H_
#define HYBRIDJOIN_BLOOM_BLOOM_FILTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"

namespace hybridjoin {

/// Bit placement scheme of a Bloom filter (part of the wire format).
enum class BloomLayout : uint8_t {
  kClassic = 0,  ///< k positions over the whole array
  kBlocked = 1,  ///< all k positions inside one 512-bit block
};

/// Parameters of a Bloom filter. Both sides of a join must agree on these
/// for OR-combination to be valid, so they are carried on the wire.
struct BloomParams {
  uint64_t num_bits = 0;   ///< m. Rounded up to a multiple of 64 (classic)
                           ///< or 512 (blocked) internally.
  uint32_t num_hashes = 2; ///< k.
  BloomLayout layout = BloomLayout::kClassic;

  /// Paper-style sizing: bits_per_key * expected_keys bits, k hashes.
  static BloomParams ForKeys(uint64_t expected_keys, double bits_per_key = 8.0,
                             uint32_t num_hashes = 2,
                             BloomLayout layout = BloomLayout::kClassic);

  /// Expected false-positive rate after inserting n distinct keys.
  /// Classic: (1 - e^{-kn/m})^k, the mean of the standard approximation; the
  /// implementation's observed rate is statistically verified to stay
  /// within 2x of this value across filter sizes
  /// (bloom_test.cc: ObservedFprWithinTwiceExpectedAcrossSizes), which is
  /// the bound the advisor's transfer-cost estimates rely on.
  /// Blocked: a Poisson mixture over the per-block key count — each block is
  /// a tiny classic filter of 512 bits holding Poisson(n*512/m) keys — which
  /// is strictly above the classic rate for the same m, n, k.
  double ExpectedFpr(uint64_t n) const;

  bool operator==(const BloomParams& other) const {
    return num_bits == other.num_bits && num_hashes == other.num_hashes &&
           layout == other.layout;
  }
};

/// A Bloom filter over 64-bit keys. Add/MayContain are not synchronized;
/// each thread populates its own filter and filters are merged with
/// UnionWith (the paper's bitwise-OR aggregation).
class BloomFilter {
 public:
  BloomFilter() : BloomFilter(BloomParams{64, 2}) {}
  explicit BloomFilter(BloomParams params);

  const BloomParams& params() const { return params_; }
  uint64_t num_bits() const { return params_.num_bits; }
  uint32_t num_hashes() const { return params_.num_hashes; }
  BloomLayout layout() const { return params_.layout; }

  void Add(int64_t key);
  bool MayContain(int64_t key) const;

  // Batched kernels over a key column. Semantically identical to calling
  // the scalar Add/MayContain per key (kernel_test.cc asserts exact
  // equivalence); the batched forms hash a window of keys up front and
  // software-prefetch the target cache lines before touching them, which is
  // where the throughput comes from once the filter exceeds L2.

  /// Adds every key of the span.
  void AddKeys(std::span<const int64_t> keys);
  void AddKeys(std::span<const int32_t> keys);
  /// Adds keys[r] for every row index r in `sel`.
  void AddKeys(std::span<const int64_t> keys, std::span<const uint32_t> sel);
  void AddKeys(std::span<const int32_t> keys, std::span<const uint32_t> sel);

  /// Compacts `sel` in place to the row indexes r with MayContain(keys[r]),
  /// preserving order (the batched form of the scan-side Bloom apply).
  void MayContainKeys(std::span<const int64_t> keys,
                      std::vector<uint32_t>* sel) const;
  void MayContainKeys(std::span<const int32_t> keys,
                      std::vector<uint32_t>* sel) const;

  /// Bitwise OR of another filter into this one. Params must match
  /// (including layout — the wire-compat rule for OR-union).
  Status UnionWith(const BloomFilter& other);

  /// Fraction of bits set (diagnostic; drives the measured-FPR estimate).
  double FillRatio() const;

  /// Realized false-positive-rate estimate from the observed fill fraction
  /// f: f^k (for the blocked layout this is the average-block estimate).
  double EstimatedFpr() const;

  /// Wire size in bytes (what crossing the network costs).
  size_t ByteSize() const { return words_.size() * 8 + 13; }

  void SerializeTo(BinaryWriter* out) const;
  std::vector<uint8_t> Serialize() const {
    BinaryWriter w(ByteSize());
    SerializeTo(&w);
    return w.Release();
  }
  static Result<BloomFilter> Deserialize(BinaryReader* in);
  static Result<BloomFilter> Deserialize(const std::vector<uint8_t>& buf) {
    BinaryReader r(buf);
    return Deserialize(&r);
  }

 private:
  /// Bits per block in the blocked layout: one 64-byte cache line.
  static constexpr uint64_t kBlockBits = 512;
  static constexpr uint64_t kBlockWords = kBlockBits / 64;

  /// i-th probe position for a key, double-hashing scheme (classic layout).
  uint64_t Position(uint64_t h1, uint64_t h2, uint32_t i) const {
    return (h1 + i * h2) % params_.num_bits;
  }

  /// Word index of the key's block (blocked layout). Multiply-shift range
  /// reduction (no modulo: a 64-bit divide would serialize the probe loop);
  /// the reduction consumes the high bits of the hash.
  uint64_t BlockBase(uint64_t h1) const {
    const uint64_t num_blocks = params_.num_bits / kBlockBits;
    return static_cast<uint64_t>(
               (static_cast<unsigned __int128>(h1) * num_blocks) >> 64) *
           kBlockWords;
  }

  /// i-th probe position inside a block. The blocked layout spends only one
  /// hash per key: the block index comes from the high bits (BlockBase),
  /// the intra-block probe sequence start and its odd stride from the low
  /// bits. An odd stride never revisits a position within k <= 512 probes
  /// of the 512-slot ring, so the k bits are always distinct.
  uint64_t BlockPos(uint64_t h1, uint32_t i) const {
    const uint32_t start = static_cast<uint32_t>(h1);
    const uint32_t stride = (static_cast<uint32_t>(h1 >> 9)) | 1;
    return (start + i * stride) & (kBlockBits - 1);
  }

  template <typename Key>
  void AddKeysImpl(const Key* keys, size_t n);
  template <typename Key>
  void AddKeysSelImpl(const Key* keys, const uint32_t* sel, size_t n);
  template <typename Key>
  void MayContainKeysImpl(const Key* keys, std::vector<uint32_t>* sel) const;

  BloomParams params_;
  std::vector<uint64_t> words_;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_BLOOM_BLOOM_FILTER_H_
