#include "bloom/bloom_filter.h"

#include <cmath>

#include "common/check.h"
#include "common/hash.h"

namespace hybridjoin {

namespace {
constexpr uint64_t kSeed1 = 0xb100f117e51ULL;
constexpr uint64_t kSeed2 = 0x5eedb100f2ULL;
}  // namespace

BloomParams BloomParams::ForKeys(uint64_t expected_keys, double bits_per_key,
                                 uint32_t num_hashes) {
  BloomParams p;
  uint64_t bits =
      static_cast<uint64_t>(bits_per_key * static_cast<double>(expected_keys));
  if (bits < 64) bits = 64;
  p.num_bits = (bits + 63) / 64 * 64;
  p.num_hashes = num_hashes == 0 ? 1 : num_hashes;
  return p;
}

double BloomParams::ExpectedFpr(uint64_t n) const {
  if (num_bits == 0) return 1.0;
  const double exponent = -static_cast<double>(num_hashes) *
                          static_cast<double>(n) /
                          static_cast<double>(num_bits);
  return std::pow(1.0 - std::exp(exponent), num_hashes);
}

BloomFilter::BloomFilter(BloomParams params) : params_(params) {
  HJ_CHECK_GT(params_.num_bits, 0u);
  HJ_CHECK_GT(params_.num_hashes, 0u);
  params_.num_bits = (params_.num_bits + 63) / 64 * 64;
  words_.assign(params_.num_bits / 64, 0);
}

void BloomFilter::Add(int64_t key) {
  const uint64_t h1 = HashInt64(static_cast<uint64_t>(key), kSeed1);
  const uint64_t h2 = HashInt64(static_cast<uint64_t>(key), kSeed2) | 1;
  for (uint32_t i = 0; i < params_.num_hashes; ++i) {
    const uint64_t pos = Position(h1, h2, i);
    words_[pos >> 6] |= (1ULL << (pos & 63));
  }
}

bool BloomFilter::MayContain(int64_t key) const {
  const uint64_t h1 = HashInt64(static_cast<uint64_t>(key), kSeed1);
  const uint64_t h2 = HashInt64(static_cast<uint64_t>(key), kSeed2) | 1;
  for (uint32_t i = 0; i < params_.num_hashes; ++i) {
    const uint64_t pos = Position(h1, h2, i);
    if ((words_[pos >> 6] & (1ULL << (pos & 63))) == 0) return false;
  }
  return true;
}

Status BloomFilter::UnionWith(const BloomFilter& other) {
  if (!(params_ == other.params_)) {
    return Status::InvalidArgument(
        "cannot OR-combine Bloom filters with different parameters");
  }
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
  return Status::OK();
}

double BloomFilter::FillRatio() const {
  uint64_t set = 0;
  for (uint64_t w : words_) set += static_cast<uint64_t>(__builtin_popcountll(w));
  return static_cast<double>(set) / static_cast<double>(params_.num_bits);
}

void BloomFilter::SerializeTo(BinaryWriter* out) const {
  out->PutU64(params_.num_bits);
  out->PutU32(params_.num_hashes);
  out->PutRaw(words_.data(), words_.size() * sizeof(uint64_t));
}

Result<BloomFilter> BloomFilter::Deserialize(BinaryReader* in) {
  HJ_ASSIGN_OR_RETURN(uint64_t num_bits, in->GetU64());
  HJ_ASSIGN_OR_RETURN(uint32_t num_hashes, in->GetU32());
  if (num_bits == 0 || num_bits % 64 != 0 || num_hashes == 0 ||
      num_hashes > 64) {
    return Status::IOError("bad Bloom filter header");
  }
  if (num_bits > (1ULL << 40)) {
    return Status::IOError("Bloom filter implausibly large");
  }
  BloomFilter bf(BloomParams{num_bits, num_hashes});
  HJ_RETURN_IF_ERROR(
      in->GetRaw(bf.words_.data(), bf.words_.size() * sizeof(uint64_t)));
  return bf;
}

}  // namespace hybridjoin
