#include "bloom/bloom_filter.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/hash.h"

namespace hybridjoin {

namespace {
constexpr uint64_t kSeed1 = 0xb100f117e51ULL;
constexpr uint64_t kSeed2 = 0x5eedb100f2ULL;

// How many keys ahead the batched kernels hash + prefetch before touching
// memory. Deep enough to cover a DRAM miss at ~4 bytes of hash work per
// cycle, small enough that the hash windows live on the stack.
constexpr size_t kPrefetchWindow = 32;

inline void PrefetchLineRead(const void* p) { __builtin_prefetch(p, 0, 1); }
inline void PrefetchLineWrite(const void* p) { __builtin_prefetch(p, 1, 1); }
}  // namespace

BloomParams BloomParams::ForKeys(uint64_t expected_keys, double bits_per_key,
                                 uint32_t num_hashes, BloomLayout layout) {
  BloomParams p;
  uint64_t bits =
      static_cast<uint64_t>(bits_per_key * static_cast<double>(expected_keys));
  const uint64_t align = layout == BloomLayout::kBlocked ? 512 : 64;
  if (bits < align) bits = align;
  p.num_bits = (bits + align - 1) / align * align;
  p.num_hashes = num_hashes == 0 ? 1 : num_hashes;
  p.layout = layout;
  return p;
}

double BloomParams::ExpectedFpr(uint64_t n) const {
  if (num_bits == 0) return 1.0;
  const double k = static_cast<double>(num_hashes);
  if (layout == BloomLayout::kClassic) {
    const double exponent =
        -k * static_cast<double>(n) / static_cast<double>(num_bits);
    return std::pow(1.0 - std::exp(exponent), k);
  }
  // Blocked: a lookup hits one 512-bit block; that block behaves as a classic
  // filter of 512 bits containing however many keys hashed into it, which is
  // Poisson-distributed with mean lambda = n * 512 / m. Mix the classic
  // formula over the block load. The tail is truncated once the pmf decays
  // past any contribution (lambda + 40 sigma covers every realistic config).
  const double lambda = static_cast<double>(n) * 512.0 /
                        static_cast<double>(num_bits);
  double pmf = std::exp(-lambda);  // P[j = 0]
  double fpr = 0.0;
  const uint64_t j_max =
      static_cast<uint64_t>(lambda + 40.0 * std::sqrt(lambda + 1.0)) + 8;
  for (uint64_t j = 0; j <= j_max; ++j) {
    if (j > 0) pmf *= lambda / static_cast<double>(j);
    const double inner = 1.0 - std::exp(-k * static_cast<double>(j) / 512.0);
    fpr += pmf * std::pow(inner, k);
  }
  return fpr;
}

BloomFilter::BloomFilter(BloomParams params) : params_(params) {
  HJ_CHECK_GT(params_.num_bits, 0u);
  HJ_CHECK_GT(params_.num_hashes, 0u);
  const uint64_t align =
      params_.layout == BloomLayout::kBlocked ? kBlockBits : 64;
  params_.num_bits = (params_.num_bits + align - 1) / align * align;
  words_.assign(params_.num_bits / 64, 0);
}

void BloomFilter::Add(int64_t key) {
  const uint64_t h1 = HashInt64(static_cast<uint64_t>(key), kSeed1);
  if (params_.layout == BloomLayout::kBlocked) {
    const uint64_t base = BlockBase(h1);
    for (uint32_t i = 0; i < params_.num_hashes; ++i) {
      const uint64_t pos = BlockPos(h1, i);
      words_[base + (pos >> 6)] |= (1ULL << (pos & 63));
    }
    return;
  }
  const uint64_t h2 = HashInt64(static_cast<uint64_t>(key), kSeed2) | 1;
  for (uint32_t i = 0; i < params_.num_hashes; ++i) {
    const uint64_t pos = Position(h1, h2, i);
    words_[pos >> 6] |= (1ULL << (pos & 63));
  }
}

bool BloomFilter::MayContain(int64_t key) const {
  const uint64_t h1 = HashInt64(static_cast<uint64_t>(key), kSeed1);
  if (params_.layout == BloomLayout::kBlocked) {
    const uint64_t base = BlockBase(h1);
    for (uint32_t i = 0; i < params_.num_hashes; ++i) {
      const uint64_t pos = BlockPos(h1, i);
      if ((words_[base + (pos >> 6)] & (1ULL << (pos & 63))) == 0) return false;
    }
    return true;
  }
  const uint64_t h2 = HashInt64(static_cast<uint64_t>(key), kSeed2) | 1;
  for (uint32_t i = 0; i < params_.num_hashes; ++i) {
    const uint64_t pos = Position(h1, h2, i);
    if ((words_[pos >> 6] & (1ULL << (pos & 63))) == 0) return false;
  }
  return true;
}

// The batched kernels run a two-pass pipeline over a window of keys: pass
// one hashes every key and issues a prefetch for the cache line(s) its bits
// live in; pass two re-reads the stashed hashes and does the actual bit
// sets / tests, by which time the lines are (ideally) in flight or resident.
// The bit positions computed here must match Add/MayContain exactly —
// kernel_test.cc holds the two forms to bit-identical results.

template <typename Key>
void BloomFilter::AddKeysImpl(const Key* keys, size_t n) {
  uint64_t h1s[kPrefetchWindow];
  uint64_t h2s[kPrefetchWindow];
  const bool blocked = params_.layout == BloomLayout::kBlocked;
  for (size_t start = 0; start < n; start += kPrefetchWindow) {
    const size_t cnt = std::min(kPrefetchWindow, n - start);
    for (size_t j = 0; j < cnt; ++j) {
      const uint64_t key =
          static_cast<uint64_t>(static_cast<int64_t>(keys[start + j]));
      const uint64_t h1 = HashInt64(key, kSeed1);
      h1s[j] = h1;
      if (blocked) {
        PrefetchLineWrite(&words_[BlockBase(h1)]);
      } else {
        h2s[j] = HashInt64(key, kSeed2) | 1;
        PrefetchLineWrite(&words_[Position(h1, h2s[j], 0) >> 6]);
        if (params_.num_hashes > 1) {
          PrefetchLineWrite(&words_[Position(h1, h2s[j], 1) >> 6]);
        }
      }
    }
    for (size_t j = 0; j < cnt; ++j) {
      const uint64_t h1 = h1s[j];
      if (blocked) {
        const uint64_t base = BlockBase(h1);
        for (uint32_t i = 0; i < params_.num_hashes; ++i) {
          const uint64_t pos = BlockPos(h1, i);
          words_[base + (pos >> 6)] |= (1ULL << (pos & 63));
        }
      } else {
        const uint64_t h2 = h2s[j];
        for (uint32_t i = 0; i < params_.num_hashes; ++i) {
          const uint64_t pos = Position(h1, h2, i);
          words_[pos >> 6] |= (1ULL << (pos & 63));
        }
      }
    }
  }
}

template <typename Key>
void BloomFilter::AddKeysSelImpl(const Key* keys, const uint32_t* sel,
                                 size_t n) {
  uint64_t h1s[kPrefetchWindow];
  uint64_t h2s[kPrefetchWindow];
  const bool blocked = params_.layout == BloomLayout::kBlocked;
  for (size_t start = 0; start < n; start += kPrefetchWindow) {
    const size_t cnt = std::min(kPrefetchWindow, n - start);
    for (size_t j = 0; j < cnt; ++j) {
      const uint64_t key =
          static_cast<uint64_t>(static_cast<int64_t>(keys[sel[start + j]]));
      const uint64_t h1 = HashInt64(key, kSeed1);
      h1s[j] = h1;
      if (blocked) {
        PrefetchLineWrite(&words_[BlockBase(h1)]);
      } else {
        h2s[j] = HashInt64(key, kSeed2) | 1;
        PrefetchLineWrite(&words_[Position(h1, h2s[j], 0) >> 6]);
        if (params_.num_hashes > 1) {
          PrefetchLineWrite(&words_[Position(h1, h2s[j], 1) >> 6]);
        }
      }
    }
    for (size_t j = 0; j < cnt; ++j) {
      const uint64_t h1 = h1s[j];
      if (blocked) {
        const uint64_t base = BlockBase(h1);
        for (uint32_t i = 0; i < params_.num_hashes; ++i) {
          const uint64_t pos = BlockPos(h1, i);
          words_[base + (pos >> 6)] |= (1ULL << (pos & 63));
        }
      } else {
        const uint64_t h2 = h2s[j];
        for (uint32_t i = 0; i < params_.num_hashes; ++i) {
          const uint64_t pos = Position(h1, h2, i);
          words_[pos >> 6] |= (1ULL << (pos & 63));
        }
      }
    }
  }
}

template <typename Key>
void BloomFilter::MayContainKeysImpl(const Key* keys,
                                     std::vector<uint32_t>* sel) const {
  uint64_t h1s[kPrefetchWindow];
  uint64_t h2s[kPrefetchWindow];
  const bool blocked = params_.layout == BloomLayout::kBlocked;
  const size_t n = sel->size();
  uint32_t* rows = sel->data();
  size_t out = 0;
  for (size_t start = 0; start < n; start += kPrefetchWindow) {
    const size_t cnt = std::min(kPrefetchWindow, n - start);
    for (size_t j = 0; j < cnt; ++j) {
      const uint64_t key =
          static_cast<uint64_t>(static_cast<int64_t>(keys[rows[start + j]]));
      const uint64_t h1 = HashInt64(key, kSeed1);
      h1s[j] = h1;
      if (blocked) {
        PrefetchLineRead(&words_[BlockBase(h1)]);
      } else {
        h2s[j] = HashInt64(key, kSeed2) | 1;
        PrefetchLineRead(&words_[Position(h1, h2s[j], 0) >> 6]);
        if (params_.num_hashes > 1) {
          PrefetchLineRead(&words_[Position(h1, h2s[j], 1) >> 6]);
        }
      }
    }
    for (size_t j = 0; j < cnt; ++j) {
      const uint64_t h1 = h1s[j];
      bool hit = true;
      if (blocked) {
        const uint64_t base = BlockBase(h1);
        for (uint32_t i = 0; i < params_.num_hashes; ++i) {
          const uint64_t pos = BlockPos(h1, i);
          if ((words_[base + (pos >> 6)] & (1ULL << (pos & 63))) == 0) {
            hit = false;
            break;
          }
        }
      } else {
        const uint64_t h2 = h2s[j];
        for (uint32_t i = 0; i < params_.num_hashes; ++i) {
          const uint64_t pos = Position(h1, h2, i);
          if ((words_[pos >> 6] & (1ULL << (pos & 63))) == 0) {
            hit = false;
            break;
          }
        }
      }
      if (hit) rows[out++] = rows[start + j];
    }
  }
  sel->resize(out);
}

void BloomFilter::AddKeys(std::span<const int64_t> keys) {
  AddKeysImpl(keys.data(), keys.size());
}
void BloomFilter::AddKeys(std::span<const int32_t> keys) {
  AddKeysImpl(keys.data(), keys.size());
}
void BloomFilter::AddKeys(std::span<const int64_t> keys,
                          std::span<const uint32_t> sel) {
  AddKeysSelImpl(keys.data(), sel.data(), sel.size());
}
void BloomFilter::AddKeys(std::span<const int32_t> keys,
                          std::span<const uint32_t> sel) {
  AddKeysSelImpl(keys.data(), sel.data(), sel.size());
}
void BloomFilter::MayContainKeys(std::span<const int64_t> keys,
                                 std::vector<uint32_t>* sel) const {
  MayContainKeysImpl(keys.data(), sel);
}
void BloomFilter::MayContainKeys(std::span<const int32_t> keys,
                                 std::vector<uint32_t>* sel) const {
  MayContainKeysImpl(keys.data(), sel);
}

Status BloomFilter::UnionWith(const BloomFilter& other) {
  if (!(params_ == other.params_)) {
    return Status::InvalidArgument(
        "cannot OR-combine Bloom filters with different parameters");
  }
  for (size_t i = 0; i < words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
  return Status::OK();
}

double BloomFilter::FillRatio() const {
  uint64_t set = 0;
  for (uint64_t w : words_) set += static_cast<uint64_t>(__builtin_popcountll(w));
  return static_cast<double>(set) / static_cast<double>(params_.num_bits);
}

double BloomFilter::EstimatedFpr() const {
  return std::pow(FillRatio(), static_cast<double>(params_.num_hashes));
}

void BloomFilter::SerializeTo(BinaryWriter* out) const {
  out->PutU64(params_.num_bits);
  out->PutU32(params_.num_hashes);
  out->PutU8(static_cast<uint8_t>(params_.layout));
  out->PutRaw(words_.data(), words_.size() * sizeof(uint64_t));
}

Result<BloomFilter> BloomFilter::Deserialize(BinaryReader* in) {
  HJ_ASSIGN_OR_RETURN(uint64_t num_bits, in->GetU64());
  HJ_ASSIGN_OR_RETURN(uint32_t num_hashes, in->GetU32());
  HJ_ASSIGN_OR_RETURN(uint8_t layout_byte, in->GetU8());
  if (num_bits == 0 || num_bits % 64 != 0 || num_hashes == 0 ||
      num_hashes > 64 || layout_byte > 1) {
    return Status::IOError("bad Bloom filter header");
  }
  const auto layout = static_cast<BloomLayout>(layout_byte);
  if (layout == BloomLayout::kBlocked && num_bits % kBlockBits != 0) {
    return Status::IOError("blocked Bloom filter bits not block-aligned");
  }
  if (num_bits > (1ULL << 40)) {
    return Status::IOError("Bloom filter implausibly large");
  }
  BloomFilter bf(BloomParams{num_bits, num_hashes, layout});
  HJ_RETURN_IF_ERROR(
      in->GetRaw(bf.words_.data(), bf.words_.size() * sizeof(uint64_t)));
  return bf;
}

}  // namespace hybridjoin
