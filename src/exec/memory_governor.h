// MemoryGovernor: the per-query memory-reservation tracker behind the
// engine's "robust under memory pressure" story (ROADMAP item 4; the paper
// defers spilling as §4.4 future work). One governor is created per query
// execution, seeded from the session's QueryQuotas::memory_bytes (falling
// back to the engine-wide SimulationConfig::query_memory_budget_bytes), and
// every sizeable consumer charges it: JoinHashTable batches + entries,
// HashAggregator group state, BatchMorselPipe queue slots, and exchange
// BufferPool buffers.
//
// Two charging disciplines, by consumer kind:
//  - TryReserve(): fails fast with no side effects. GraceHashJoin uses it
//    for its resident build partitions and reacts to failure itself by
//    spilling its largest resident partition and retrying — eviction policy
//    stays with the component that owns the evictable state.
//  - Reserve(): never fails. When the budget is short it first invokes the
//    registered spillers (largest-first by their reported resident bytes)
//    to free memory, then — if still short — accepts the charge anyway and
//    tracks the shortfall as overcommit. Consumers with no spillable
//    representation (aggregation state, in-flight exchange buffers) use
//    this, so correctness never depends on an allocation being refusable.
//
// Like QueryScope / Metrics::NodeScope, the governor travels by thread-local
// scope: the driver installs MemoryGovernor::Scope in every worker lambda,
// and thread-spawn sites (morsel pipes, exchange senders, thread pools)
// capture MemoryGovernor::Current() at construction and re-install it in
// their workers. Components therefore pick the governor up implicitly at
// construction with zero signature churn; a null governor (no scope, or
// budget 0) makes every charge a no-op except peak tracking.

#ifndef HYBRIDJOIN_EXEC_MEMORY_GOVERNOR_H_
#define HYBRIDJOIN_EXEC_MEMORY_GOVERNOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

namespace hybridjoin {

/// A spill callback: asked to free up to `want_bytes`; returns how many
/// bytes it actually released (0 when it has nothing left to evict). Called
/// with the governor's spiller lock held, so implementations must not call
/// back into Reserve()/TryReserve() on the same governor.
using SpillFn = std::function<uint64_t(uint64_t want_bytes)>;

class MemoryGovernor {
 public:
  /// `budget_bytes` 0 means unlimited: charges are tracked (used/peak) but
  /// never fail and never trigger spilling.
  explicit MemoryGovernor(uint64_t budget_bytes) : budget_(budget_bytes) {}

  MemoryGovernor(const MemoryGovernor&) = delete;
  MemoryGovernor& operator=(const MemoryGovernor&) = delete;

  uint64_t budget() const { return budget_; }
  uint64_t used() const { return used_.load(std::memory_order_relaxed); }
  uint64_t peak() const { return peak_.load(std::memory_order_relaxed); }
  /// Bytes accepted beyond the budget because no spiller could free room
  /// (diagnostic; nonzero means the budget was too tight for the
  /// non-spillable state alone).
  uint64_t overcommitted() const {
    return overcommit_.load(std::memory_order_relaxed);
  }

  /// Attempts to reserve `bytes`. Returns false — charging nothing and
  /// invoking no spillers — when the reservation would exceed the budget.
  /// The caller owns the reaction (GraceHashJoin spills and retries).
  bool TryReserve(uint64_t bytes) {
    if (bytes == 0) return true;
    uint64_t cur = used_.load(std::memory_order_relaxed);
    do {
      if (budget_ != 0 && cur + bytes > budget_) return false;
    } while (!used_.compare_exchange_weak(cur, cur + bytes,
                                          std::memory_order_relaxed));
    BumpPeak(cur + bytes);
    return true;
  }

  /// Reserves `bytes` unconditionally. Over budget it first runs the
  /// registered spillers (largest resident first) until the shortfall is
  /// covered or every spiller reports empty; any remaining shortfall is
  /// accepted and accounted as overcommit. Returns the bytes freed by
  /// spillers on this call (0 on the in-budget fast path).
  uint64_t Reserve(uint64_t bytes);

  /// Charges unconditionally without running spillers. For callers that own
  /// their eviction policy (GraceHashJoin): after their own spilling could
  /// not make room, the charge must land anyway, and going through
  /// Reserve() would re-enter their spill callback under their own lock.
  void ForceReserve(uint64_t bytes) {
    if (bytes == 0) return;
    const uint64_t cur = used_.fetch_add(bytes, std::memory_order_relaxed);
    BumpPeak(cur + bytes);
    if (budget_ != 0 && cur + bytes > budget_) {
      const uint64_t over =
          bytes < cur + bytes - budget_ ? bytes : cur + bytes - budget_;
      overcommit_.fetch_add(over, std::memory_order_relaxed);
    }
  }

  void Release(uint64_t bytes) {
    if (bytes == 0) return;
    used_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// Registers a spill callback paired with a resident-bytes probe (how
  /// much the spiller could free right now; used to order largest-first).
  /// Returns a token for UnregisterSpiller. Thread-safe.
  uint64_t RegisterSpiller(std::function<uint64_t()> resident_bytes,
                           SpillFn spill);
  void UnregisterSpiller(uint64_t token);

  /// RAII thread-local governor attribution, mirroring QueryScope: installs
  /// `governor` (may be null) as the calling thread's current governor until
  /// destruction; nests and restores.
  class Scope {
   public:
    explicit Scope(MemoryGovernor* governor) : saved_(tls_governor_) {
      tls_governor_ = governor;
    }
    ~Scope() { tls_governor_ = saved_; }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    MemoryGovernor* saved_;
  };

  /// The calling thread's current governor (null outside any Scope).
  static MemoryGovernor* Current() { return tls_governor_; }

 private:
  void BumpPeak(uint64_t candidate) {
    uint64_t cur = peak_.load(std::memory_order_relaxed);
    while (cur < candidate &&
           !peak_.compare_exchange_weak(cur, candidate,
                                        std::memory_order_relaxed)) {
    }
  }

  struct Spiller {
    uint64_t token;
    std::function<uint64_t()> resident_bytes;
    SpillFn spill;
  };

  static inline thread_local MemoryGovernor* tls_governor_ = nullptr;

  const uint64_t budget_;
  std::atomic<uint64_t> used_{0};
  std::atomic<uint64_t> peak_{0};
  std::atomic<uint64_t> overcommit_{0};

  std::mutex spillers_mu_;  ///< guards spillers_ and serializes spill runs
  std::vector<Spiller> spillers_;
  uint64_t next_token_ = 1;
};

/// RAII charge against the calling thread's (or an explicit) governor via
/// the never-failing Reserve path. Null governor = no-op. Grow() adds to
/// the reservation in place; everything is released on destruction.
class MemoryReservation {
 public:
  MemoryReservation() : governor_(MemoryGovernor::Current()) {}
  explicit MemoryReservation(MemoryGovernor* governor)
      : governor_(governor) {}
  ~MemoryReservation() { Clear(); }

  MemoryReservation(const MemoryReservation&) = delete;
  MemoryReservation& operator=(const MemoryReservation&) = delete;

  void Grow(uint64_t bytes) {
    if (governor_ == nullptr || bytes == 0) return;
    governor_->Reserve(bytes);
    bytes_ += bytes;
  }

  void Shrink(uint64_t bytes) {
    if (governor_ == nullptr) return;
    if (bytes > bytes_) bytes = bytes_;
    governor_->Release(bytes);
    bytes_ -= bytes;
  }

  void Clear() {
    if (governor_ != nullptr && bytes_ > 0) governor_->Release(bytes_);
    bytes_ = 0;
  }

  uint64_t bytes() const { return bytes_; }
  MemoryGovernor* governor() const { return governor_; }

 private:
  MemoryGovernor* governor_;
  uint64_t bytes_ = 0;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_EXEC_MEMORY_GOVERNOR_H_
