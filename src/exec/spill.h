// SpillArea: simulated local spill storage for joins that exceed memory
// (the paper's JEN "requires that all data fit in memory for the local
// hash-based join ... in the future, we plan to support spilling to disk",
// §4.4 — this is that future work). Batches are serialized on write and
// deserialized on read; both directions can be bandwidth-throttled to
// model spill disks.

#ifndef HYBRIDJOIN_EXEC_SPILL_H_
#define HYBRIDJOIN_EXEC_SPILL_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "common/metrics.h"
#include "common/token_bucket.h"
#include "types/record_batch.h"

namespace hybridjoin {

namespace metric {
// Spill counters live under the join.* namespace like the rest of the join
// metrics. (They briefly drifted as jen.spill_*; the legacy names were
// dual-emitted for one release and have since been removed.)
inline constexpr const char kSpillBytesWritten[] = "join.spill_bytes";
inline constexpr const char kSpillBytesRead[] = "join.spill_bytes_read";
inline constexpr const char kSpilledPartitions[] = "join.spill_partitions";
/// Deepest recursive-repartition level reached by any spilled partition
/// (gauge maximum; 0 = no recursion was needed).
inline constexpr const char kJoinRepartitionDepth[] = "join.repartition_depth";
/// Query-wide MemoryGovernor peak reservation (gauge maximum, bytes).
inline constexpr const char kJoinMemPeakBytes[] = "join.mem_peak_bytes";
}  // namespace metric

/// One worker's spill storage. Thread-compatible: each file is written by
/// one thread at a time; the area-level bookkeeping is locked.
class SpillArea {
 public:
  using FileId = size_t;

  /// Rates in bytes/sec; 0 = unthrottled.
  SpillArea(uint64_t write_bps, uint64_t read_bps, Metrics* metrics)
      : write_bucket_(write_bps), read_bucket_(read_bps), metrics_(metrics) {}

  /// Opens a new, empty spill file.
  FileId Create() {
    std::lock_guard<std::mutex> lock(mu_);
    files_.emplace_back();
    return files_.size() - 1;
  }

  /// Appends a batch (serialized through the write throttle).
  Status Append(FileId id, const RecordBatch& batch) {
    std::vector<uint8_t> bytes = batch.Serialize();
    write_bucket_.Acquire(bytes.size());
    if (metrics_ != nullptr) {
      metrics_->Add(metric::kSpillBytesWritten,
                    static_cast<int64_t>(bytes.size()));
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= files_.size()) {
      return Status::InvalidArgument("bad spill file id");
    }
    files_[id].chunks.push_back(std::move(bytes));
    return Status::OK();
  }

  /// Streams every batch of a file back through the read throttle.
  Status ForEach(FileId id, const SchemaPtr& schema,
                 const std::function<Status(RecordBatch&&)>& fn) {
    size_t num_chunks = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (id >= files_.size()) {
        return Status::InvalidArgument("bad spill file id");
      }
      num_chunks = files_[id].chunks.size();
    }
    for (size_t c = 0; c < num_chunks; ++c) {
      const std::vector<uint8_t>* bytes = nullptr;
      {
        std::lock_guard<std::mutex> lock(mu_);
        bytes = &files_[id].chunks[c];
      }
      read_bucket_.Acquire(bytes->size());
      if (metrics_ != nullptr) {
        metrics_->Add(metric::kSpillBytesRead,
                      static_cast<int64_t>(bytes->size()));
      }
      HJ_ASSIGN_OR_RETURN(RecordBatch batch,
                          RecordBatch::Deserialize(*bytes, schema));
      HJ_RETURN_IF_ERROR(fn(std::move(batch)));
    }
    return Status::OK();
  }

  /// Releases a file's storage.
  void Drop(FileId id) {
    std::lock_guard<std::mutex> lock(mu_);
    if (id < files_.size()) files_[id].chunks.clear();
  }

  /// Serialized bytes currently held by one file (the grace join's
  /// recursive-repartition decisions key off this).
  int64_t FileBytes(FileId id) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (id >= files_.size()) return 0;
    int64_t total = 0;
    for (const auto& c : files_[id].chunks) {
      total += static_cast<int64_t>(c.size());
    }
    return total;
  }

  int64_t bytes_on_disk() const {
    std::lock_guard<std::mutex> lock(mu_);
    int64_t total = 0;
    for (const auto& f : files_) {
      for (const auto& c : f.chunks) total += static_cast<int64_t>(c.size());
    }
    return total;
  }

 private:
  struct File {
    std::vector<std::vector<uint8_t>> chunks;
  };

  TokenBucket write_bucket_;
  TokenBucket read_bucket_;
  Metrics* metrics_;
  mutable std::mutex mu_;
  std::vector<File> files_;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_EXEC_SPILL_H_
