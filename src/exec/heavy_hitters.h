// Heavy-hitter detection for the skew-aware shuffle (docs/architecture.md,
// "Skew-aware shuffle"). A space-saving sketch (Metwally et al.) is fed
// during the DB-side Bloom-build scan — the pass every Bloom-assisted join
// already makes over T — so hot-key detection costs no extra scan. Each DB
// worker builds a local sketch over its partition of T'; worker 0 merges
// them and picks the hot set against the fair-share threshold
// (PickHotKeys), which then rides to every worker alongside the Bloom
// filter and splits the shuffle into a broadcast hot route and the
// agreed-hash cold route.
//
// Guarantees used by the callers (asserted in tests/heavy_hitters_test.cc):
//   - count(k) is an upper bound on k's true frequency and
//     count(k) - error(k) a lower bound;
//   - every key with true frequency > N / capacity is present;
//   - error(k) <= N / capacity;
//   - Merge() is associative and exact whenever the combined distinct-key
//     count fits the capacity, so the coordinator's merged view is the
//     serial sketch of the concatenated streams in that regime.

#ifndef HYBRIDJOIN_EXEC_HEAVY_HITTERS_H_
#define HYBRIDJOIN_EXEC_HEAVY_HITTERS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace hybridjoin {

/// Space-saving top-k frequency sketch. Thread-compatible, not thread-safe:
/// scan threads each feed their own sketch and the driver merges, exactly
/// like the per-thread Bloom filters.
class HeavyHitterSketch {
 public:
  struct Entry {
    int64_t key = 0;
    uint64_t count = 0;  ///< frequency upper bound
    uint64_t error = 0;  ///< count - error is the guaranteed lower bound
  };

  explicit HeavyHitterSketch(uint32_t capacity);

  void Add(int64_t key, uint64_t weight = 1);

  /// Folds `other` into this sketch: counts and errors of shared keys add,
  /// then the combined entry set is re-truncated to this capacity (keeping
  /// the largest counts). Associative; exact when all distinct keys fit.
  void Merge(const HeavyHitterSketch& other);

  /// Monitored entries, sorted by count descending (key ascending on ties,
  /// so the order — and everything derived from it — is deterministic).
  std::vector<Entry> Entries() const;

  uint64_t total() const { return total_; }
  uint32_t capacity() const { return capacity_; }
  size_t size() const { return entries_.size(); }

  std::vector<uint8_t> Serialize() const;
  static Result<HeavyHitterSketch> Deserialize(
      const std::vector<uint8_t>& buf);

 private:
  uint32_t capacity_;
  uint64_t total_ = 0;
  std::vector<Entry> entries_;
  std::unordered_map<int64_t, size_t> index_;  ///< key -> entries_ slot
};

/// The hot-key set every worker routes against: a sorted vector with
/// binary-search membership (the set is capped at SkewConfig::max_hot_keys,
/// so Contains is a handful of comparisons on the shuffle hot path).
class HotKeySet {
 public:
  HotKeySet() = default;
  explicit HotKeySet(std::vector<int64_t> keys);  ///< sorts + dedups

  bool Contains(int64_t key) const;
  bool empty() const { return keys_.empty(); }
  size_t size() const { return keys_.size(); }
  const std::vector<int64_t>& keys() const { return keys_; }

  std::vector<uint8_t> Serialize() const;
  static Result<HotKeySet> Deserialize(const std::vector<uint8_t>& buf);

 private:
  std::vector<int64_t> keys_;  ///< sorted ascending
};

/// Picks the hot set from the coordinator's merged sketch. A key is hot
/// when the estimated rows landing on its agreed-hash worker exceed
/// `hot_multiplier` x the fair per-worker share:
///
///   lower(k) + (total - lower(k)) / workers  >  c * total / workers
///
/// with lower(k) = count(k) - error(k), the sketch's guaranteed mass (so
/// sketch noise can only shrink the hot set, never promote a cold key).
/// At most `max_hot_keys` keys are returned, largest counts first. Empty
/// when workers <= 1 (a single worker has nothing to balance) or the
/// stream was empty.
HotKeySet PickHotKeys(const HeavyHitterSketch& sketch, uint32_t workers,
                      double hot_multiplier, uint32_t max_hot_keys);

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_EXEC_HEAVY_HITTERS_H_
