#include "exec/heavy_hitters.h"

#include <algorithm>

#include "common/binary_io.h"
#include "common/check.h"

namespace hybridjoin {

namespace {

// Deterministic entry order: count descending, key ascending on ties.
bool EntryGreater(const HeavyHitterSketch::Entry& a,
                  const HeavyHitterSketch::Entry& b) {
  if (a.count != b.count) return a.count > b.count;
  return a.key < b.key;
}

}  // namespace

HeavyHitterSketch::HeavyHitterSketch(uint32_t capacity)
    : capacity_(capacity) {
  HJ_CHECK_GT(capacity, 0u);
  entries_.reserve(capacity);
  index_.reserve(capacity);
}

void HeavyHitterSketch::Add(int64_t key, uint64_t weight) {
  if (weight == 0) return;
  total_ += weight;
  auto it = index_.find(key);
  if (it != index_.end()) {
    entries_[it->second].count += weight;
    return;
  }
  if (entries_.size() < capacity_) {
    index_.emplace(key, entries_.size());
    entries_.push_back({key, weight, 0});
    return;
  }
  // Space-saving eviction: the minimum-count entry is replaced and its
  // count inherited as this key's error. Capacity is small (a config knob,
  // default 256), so a linear min scan keeps Add allocation-free; ties
  // break on the smallest key for determinism.
  size_t min_slot = 0;
  for (size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].count < entries_[min_slot].count ||
        (entries_[i].count == entries_[min_slot].count &&
         entries_[i].key < entries_[min_slot].key)) {
      min_slot = i;
    }
  }
  Entry& slot = entries_[min_slot];
  index_.erase(slot.key);
  index_.emplace(key, min_slot);
  slot.error = slot.count;
  slot.count += weight;
  slot.key = key;
}

void HeavyHitterSketch::Merge(const HeavyHitterSketch& other) {
  // Counts (upper bounds) and errors of shared keys add; keys monitored on
  // one side only carry over as-is. The union is then re-truncated to this
  // capacity keeping the largest counts, which preserves the upper/lower
  // bound semantics and is exact when all distinct keys fit.
  std::vector<Entry> merged = entries_;
  std::unordered_map<int64_t, size_t> slots = index_;
  for (const Entry& e : other.entries_) {
    auto it = slots.find(e.key);
    if (it != slots.end()) {
      merged[it->second].count += e.count;
      merged[it->second].error += e.error;
    } else {
      slots.emplace(e.key, merged.size());
      merged.push_back(e);
    }
  }
  std::sort(merged.begin(), merged.end(), EntryGreater);
  if (merged.size() > capacity_) merged.resize(capacity_);
  total_ += other.total_;
  entries_ = std::move(merged);
  index_.clear();
  for (size_t i = 0; i < entries_.size(); ++i) {
    index_.emplace(entries_[i].key, i);
  }
}

std::vector<HeavyHitterSketch::Entry> HeavyHitterSketch::Entries() const {
  std::vector<Entry> out = entries_;
  std::sort(out.begin(), out.end(), EntryGreater);
  return out;
}

std::vector<uint8_t> HeavyHitterSketch::Serialize() const {
  BinaryWriter w;
  w.PutU32(capacity_);
  w.PutVarint(total_);
  w.PutVarint(entries_.size());
  for (const Entry& e : Entries()) {
    w.PutI64(e.key);
    w.PutVarint(e.count);
    w.PutVarint(e.error);
  }
  return w.Release();
}

Result<HeavyHitterSketch> HeavyHitterSketch::Deserialize(
    const std::vector<uint8_t>& buf) {
  BinaryReader r(buf);
  HJ_ASSIGN_OR_RETURN(uint32_t capacity, r.GetU32());
  if (capacity == 0 || capacity > (1u << 20)) {
    return Status::IOError("heavy-hitter sketch: bad capacity");
  }
  HeavyHitterSketch sketch(capacity);
  HJ_ASSIGN_OR_RETURN(sketch.total_, r.GetVarint());
  HJ_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  if (n > capacity) {
    return Status::IOError("heavy-hitter sketch: entries exceed capacity");
  }
  for (uint64_t i = 0; i < n; ++i) {
    Entry e;
    HJ_ASSIGN_OR_RETURN(e.key, r.GetI64());
    HJ_ASSIGN_OR_RETURN(e.count, r.GetVarint());
    HJ_ASSIGN_OR_RETURN(e.error, r.GetVarint());
    if (sketch.index_.count(e.key) != 0) {
      return Status::IOError("heavy-hitter sketch: duplicate key");
    }
    sketch.index_.emplace(e.key, sketch.entries_.size());
    sketch.entries_.push_back(e);
  }
  if (!r.AtEnd()) {
    return Status::IOError("heavy-hitter sketch: trailing bytes");
  }
  return sketch;
}

HotKeySet::HotKeySet(std::vector<int64_t> keys) : keys_(std::move(keys)) {
  std::sort(keys_.begin(), keys_.end());
  keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());
}

bool HotKeySet::Contains(int64_t key) const {
  return std::binary_search(keys_.begin(), keys_.end(), key);
}

std::vector<uint8_t> HotKeySet::Serialize() const {
  BinaryWriter w;
  w.PutVarint(keys_.size());
  for (int64_t k : keys_) w.PutI64(k);
  return w.Release();
}

Result<HotKeySet> HotKeySet::Deserialize(const std::vector<uint8_t>& buf) {
  BinaryReader r(buf);
  HJ_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  if (n > (1u << 20)) return Status::IOError("hot-key set: too large");
  std::vector<int64_t> keys;
  keys.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    HJ_ASSIGN_OR_RETURN(int64_t k, r.GetI64());
    keys.push_back(k);
  }
  if (!r.AtEnd()) return Status::IOError("hot-key set: trailing bytes");
  return HotKeySet(std::move(keys));
}

HotKeySet PickHotKeys(const HeavyHitterSketch& sketch, uint32_t workers,
                      double hot_multiplier, uint32_t max_hot_keys) {
  if (workers <= 1 || sketch.total() == 0 || max_hot_keys == 0) {
    return HotKeySet();
  }
  const double total = static_cast<double>(sketch.total());
  const double fair = total / static_cast<double>(workers);
  std::vector<int64_t> hot;
  // Entries() is sorted by count descending, so truncating at max_hot_keys
  // keeps the heaviest keys.
  for (const auto& e : sketch.Entries()) {
    const double lower =
        static_cast<double>(e.count - std::min(e.count, e.error));
    const double est_per_worker =
        lower + (total - lower) / static_cast<double>(workers);
    if (est_per_worker > hot_multiplier * fair) {
      hot.push_back(e.key);
      if (hot.size() >= max_hot_keys) break;
    }
  }
  return HotKeySet(std::move(hot));
}

}  // namespace hybridjoin
