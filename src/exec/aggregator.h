// Hash-based group-by aggregation, the last stage of every join variant.
// Each worker keeps a partial HashAggregator; partials are serialized,
// merged at a designated worker and finalized into the query result
// (the paper's "partial aggregation ... final aggregation" steps).

#ifndef HYBRIDJOIN_EXEC_AGGREGATOR_H_
#define HYBRIDJOIN_EXEC_AGGREGATOR_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "exec/memory_governor.h"
#include "types/record_batch.h"

namespace hybridjoin {

enum class AggOp : uint8_t {
  kCountStar = 0,
  kSum = 1,  ///< over an integer column
  kMin = 2,
  kMax = 3,
};

const char* AggOpName(AggOp op);

/// Grouping + aggregate list of a query.
struct AggSpec {
  /// Group-by column name in the joined schema (e.g. "L.groupByExtractCol").
  std::string group_column;
  /// Apply ExtractGroup() to a string group column (the paper's
  /// extract_group UDF); otherwise the column must be integer-typed.
  bool extract_group = false;

  struct Item {
    AggOp op = AggOp::kCountStar;
    std::string column;       ///< unused for kCountStar
    std::string result_name;  ///< output column name
  };
  std::vector<Item> items;

  /// COUNT(*) grouped by `group_column` — the paper's query shape.
  static AggSpec CountStar(std::string group_column, bool extract_group) {
    AggSpec s;
    s.group_column = std::move(group_column);
    s.extract_group = extract_group;
    s.items.push_back({AggOp::kCountStar, "", "count"});
    return s;
  }

  /// Output schema: [group int64, one int64 per aggregate].
  SchemaPtr ResultSchema() const;
};

/// Accumulates grouped aggregates. Not thread-safe; one per worker thread.
class HashAggregator {
 public:
  explicit HashAggregator(AggSpec spec) : spec_(std::move(spec)) {}

  const AggSpec& spec() const { return spec_; }
  size_t num_groups() const { return groups_.size(); }

  /// Folds the selected rows of a joined batch into the aggregate state.
  Status Update(const RecordBatch& batch, const std::vector<uint32_t>& sel);

  /// Folds a partial-state batch (produced by Partial()) into this one.
  Status Merge(const RecordBatch& partial);

  /// Folds another aggregator's state into this one (thread-local partials
  /// of a morsel-parallel phase). Goes through the same Partial() wire path
  /// the cross-node merge uses; every op is commutative and Partial() sorts
  /// by group key, so merge order never changes the final result.
  Status Merge(const HashAggregator& other) { return Merge(other.Partial()); }

  /// Serializes the current state as a partial-aggregate batch.
  RecordBatch Partial() const;

  /// Final result, sorted by group key.
  RecordBatch Finish() const { return Partial(); }

 private:
  struct State {
    std::vector<int64_t> acc;
    bool initialized = false;
  };

  /// Approximate heap bytes per group (hash-map node + accumulator vector);
  /// charged against the MemoryGovernor in whole-group steps as the state
  /// grows. Aggregation state has no spillable representation, so the
  /// charge goes through the never-failing Reserve path.
  static constexpr uint64_t kApproxGroupBytes = 64;

  void ChargeNewGroups() {
    if (groups_.size() > groups_charged_) {
      reservation_.Grow((groups_.size() - groups_charged_) *
                        kApproxGroupBytes);
      groups_charged_ = groups_.size();
    }
  }

  Status FoldRow(int64_t group, const std::vector<const ColumnVector*>& cols,
                 uint32_t row);

  AggSpec spec_;
  std::unordered_map<int64_t, State> groups_;
  size_t groups_charged_ = 0;
  MemoryReservation reservation_;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_EXEC_AGGREGATOR_H_
