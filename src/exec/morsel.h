// BatchMorselPipe: fans a stream of record batches out to a fixed set of
// per-thread consumers through a bounded queue — the morsel-driven probe /
// partial-aggregation stage of the intra-node parallelism model
// (docs/architecture.md). The feeding thread stays the producer (typically
// a network receive loop), so pipelining with the upstream stage is kept;
// with one thread the pipe degenerates to an inline call on the feeder,
// reproducing single-threaded execution exactly.

#ifndef HYBRIDJOIN_EXEC_MORSEL_H_
#define HYBRIDJOIN_EXEC_MORSEL_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "common/blocking_queue.h"
#include "common/query_scope.h"
#include "common/status.h"
#include "exec/memory_governor.h"
#include "net/network.h"
#include "obs/query_registry.h"
#include "trace/tracer.h"
#include "types/record_batch.h"

namespace hybridjoin {

class BatchMorselPipe {
 public:
  /// `consume(t, batch)` runs for every fed batch with a stable thread
  /// index t in [0, threads) — always on the same worker thread for a given
  /// t, so consumers may keep unsynchronized per-thread state (a JoinProber,
  /// a partial HashAggregator). With threads == 1 no worker is spawned and
  /// consume(0, ...) runs inline on the feeding thread. `trace_node` +
  /// `role_base` name the worker threads' trace lanes ("<role_base>/<t>").
  BatchMorselPipe(uint32_t threads,
                  std::function<Status(uint32_t, RecordBatch&&)> consume,
                  std::optional<NodeId> trace_node = std::nullopt,
                  const char* role_base = "morsel",
                  size_t queue_capacity = 0)
      : consume_(std::move(consume)),
        governor_(MemoryGovernor::Current()),
        queue_(queue_capacity == 0 ? std::max<size_t>(2 * threads, 2)
                                   : queue_capacity) {
    if (threads <= 1) return;
    const uint64_t query_id = QueryScope::Current();
    workers_.reserve(threads);
    for (uint32_t t = 0; t < threads; ++t) {
      workers_.emplace_back([this, t, trace_node, role_base, query_id] {
        QueryScope query_scope(query_id);
        // Re-install the feeder's governor so per-thread consumer state
        // (probers, partial aggregators) created inside consume_ charges
        // the right query.
        MemoryGovernor::Scope governor_scope(governor_);
        std::optional<trace::ThreadScope> scope;
        if (trace_node.has_value()) {
          scope.emplace(*trace_node, trace::InternedRole(role_base, t));
        }
        while (auto batch = queue_.Pop()) {
          if (governor_ != nullptr) governor_->Release(batch->ByteSize());
          // After a failure, keep draining so the feeder never blocks on a
          // full queue, but stop doing work.
          if (failed_.load(std::memory_order_relaxed)) continue;
          Status st = consume_(t, std::move(*batch));
          if (!st.ok()) Fail(st);
        }
      });
    }
  }

  ~BatchMorselPipe() { Finish(); }

  BatchMorselPipe(const BatchMorselPipe&) = delete;
  BatchMorselPipe& operator=(const BatchMorselPipe&) = delete;

  /// Hands one batch to the pipe. Inline mode returns the consumer's
  /// Status; threaded mode returns OK and surfaces consumer errors at
  /// Finish (the feeder may keep feeding — batches are then discarded).
  Status Feed(RecordBatch&& batch) {
    // Morsel boundaries are the cooperative cancellation points of the
    // probe/aggregate stage: a KILLed query stops accepting work here and
    // the cancel status rides the pipe's normal first-error propagation.
    if (obs::QueryRegistry::IsCancelled()) {
      Status st = obs::QueryRegistry::CheckCancelled();
      Fail(st);
      return st;
    }
    if (workers_.empty()) {
      if (failed_.load(std::memory_order_relaxed)) return First();
      Status st = consume_(0, std::move(batch));
      if (!st.ok()) Fail(st);
      return st;
    }
    // Queued batches are in-flight memory: charged here, released by the
    // worker that pops them (never refused — the queue bound is the real
    // backpressure).
    if (governor_ != nullptr) governor_->Reserve(batch.ByteSize());
    queue_.Push(std::move(batch));
    return Status::OK();
  }

  /// Drains the queue, joins the workers and returns the first consumer
  /// error. Idempotent; also run by the destructor.
  Status Finish() {
    queue_.Close();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
    workers_.clear();
    return First();
  }

 private:
  void Fail(const Status& st) {
    failed_.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(mu_);
    if (first_error_.ok()) first_error_ = st;
  }
  Status First() const {
    std::lock_guard<std::mutex> lock(mu_);
    return first_error_;
  }

  std::function<Status(uint32_t, RecordBatch&&)> consume_;
  MemoryGovernor* governor_;
  BlockingQueue<RecordBatch> queue_;
  std::vector<std::thread> workers_;
  std::atomic<bool> failed_{false};
  mutable std::mutex mu_;
  Status first_error_;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_EXEC_MORSEL_H_
