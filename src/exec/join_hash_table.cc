#include "exec/join_hash_table.h"

#include <algorithm>

namespace hybridjoin {

namespace {
// Probe pipeline depth: how many keys are hashed and prefetched before the
// first chain walk. Matches the Bloom kernels' window.
constexpr size_t kProbeWindow = 32;
}  // namespace

Status JoinHashTable::AddBatch(RecordBatch batch) {
  if (finalized_) return Status::Internal("AddBatch after Finalize");
  if (batch.num_rows() == 0) return Status::OK();
  if (key_column_ >= batch.num_columns()) {
    return Status::InvalidArgument("join key column out of range");
  }
  const ColumnVector& key = batch.column(key_column_);
  const uint32_t batch_index = static_cast<uint32_t>(batches_.size());
  const size_t n = batch.num_rows();
  entries_.reserve(entries_.size() + n);
  switch (key.physical_type()) {
    case PhysicalType::kInt32: {
      const auto& keys = key.i32();
      for (uint32_t r = 0; r < n; ++r) {
        entries_.push_back({keys[r], batch_index, r, kNil});
      }
      break;
    }
    case PhysicalType::kInt64: {
      const auto& keys = key.i64();
      for (uint32_t r = 0; r < n; ++r) {
        entries_.push_back({keys[r], batch_index, r, kNil});
      }
      break;
    }
    default:
      return Status::InvalidArgument("join key must be integer-typed");
  }
  batches_.push_back(std::move(batch));
  return Status::OK();
}

void JoinHashTable::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  if (entries_.empty()) {
    buckets_.clear();
    bucket_mask_ = 0;
    max_chain_length_ = 0;
    return;
  }
  size_t num_buckets = 16;
  while (num_buckets < entries_.size() * 2) num_buckets <<= 1;
  buckets_.assign(num_buckets, kNil);
  bucket_mask_ = num_buckets - 1;
  for (uint32_t e = 0; e < entries_.size(); ++e) {
    const uint64_t h =
        HashInt64(static_cast<uint64_t>(entries_[e].key), kProbeSeed);
    uint32_t& head = buckets_[h & bucket_mask_];
    entries_[e].next = head;
    head = e;
  }
  max_chain_length_ = 0;
  std::vector<uint32_t> chain_len(num_buckets, 0);
  for (uint32_t e = 0; e < entries_.size(); ++e) {
    const uint64_t h =
        HashInt64(static_cast<uint64_t>(entries_[e].key), kProbeSeed);
    const uint32_t len = ++chain_len[h & bucket_mask_];
    if (len > max_chain_length_) max_chain_length_ = len;
  }
}

template <typename Key>
void JoinHashTable::ProbeBatchImpl(const Key* keys, size_t n,
                                   std::vector<JoinMatch>* out) const {
  if (buckets_.empty()) return;
  uint64_t buckets_idx[kProbeWindow];
  uint32_t heads[kProbeWindow];
  for (size_t start = 0; start < n; start += kProbeWindow) {
    const size_t cnt = std::min(kProbeWindow, n - start);
    // Pass 1: hash every key in the window, prefetch its bucket-head slot.
    for (size_t j = 0; j < cnt; ++j) {
      const auto key = static_cast<int64_t>(keys[start + j]);
      const uint64_t h = HashInt64(static_cast<uint64_t>(key), kProbeSeed);
      buckets_idx[j] = h & bucket_mask_;
      __builtin_prefetch(&buckets_[buckets_idx[j]], 0, 1);
    }
    // Pass 2: read the heads (now resident), prefetch the first entry of
    // each non-empty chain.
    for (size_t j = 0; j < cnt; ++j) {
      heads[j] = buckets_[buckets_idx[j]];
      if (heads[j] != kNil) __builtin_prefetch(&entries_[heads[j]], 0, 1);
    }
    // Pass 3: walk the chains, emitting matches in scalar order.
    for (size_t j = 0; j < cnt; ++j) {
      const auto key = static_cast<int64_t>(keys[start + j]);
      const uint32_t probe_row = static_cast<uint32_t>(start + j);
      uint32_t e = heads[j];
      while (e != kNil) {
        const Entry& entry = entries_[e];
        if (entry.key == key) out->push_back({probe_row, entry.batch, entry.row});
        e = entry.next;
      }
    }
  }
}

void JoinHashTable::ProbeBatch(std::span<const int64_t> keys,
                               std::vector<JoinMatch>* out) const {
  ProbeBatchImpl(keys.data(), keys.size(), out);
}

void JoinHashTable::ProbeBatch(std::span<const int32_t> keys,
                               std::vector<JoinMatch>* out) const {
  ProbeBatchImpl(keys.data(), keys.size(), out);
}

}  // namespace hybridjoin
