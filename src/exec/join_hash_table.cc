#include "exec/join_hash_table.h"

namespace hybridjoin {

Status JoinHashTable::AddBatch(RecordBatch batch) {
  if (finalized_) return Status::Internal("AddBatch after Finalize");
  if (batch.num_rows() == 0) return Status::OK();
  if (key_column_ >= batch.num_columns()) {
    return Status::InvalidArgument("join key column out of range");
  }
  const ColumnVector& key = batch.column(key_column_);
  const uint32_t batch_index = static_cast<uint32_t>(batches_.size());
  const size_t n = batch.num_rows();
  entries_.reserve(entries_.size() + n);
  switch (key.physical_type()) {
    case PhysicalType::kInt32: {
      const auto& keys = key.i32();
      for (uint32_t r = 0; r < n; ++r) {
        entries_.push_back({keys[r], batch_index, r, kNil});
      }
      break;
    }
    case PhysicalType::kInt64: {
      const auto& keys = key.i64();
      for (uint32_t r = 0; r < n; ++r) {
        entries_.push_back({keys[r], batch_index, r, kNil});
      }
      break;
    }
    default:
      return Status::InvalidArgument("join key must be integer-typed");
  }
  batches_.push_back(std::move(batch));
  return Status::OK();
}

void JoinHashTable::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  if (entries_.empty()) {
    buckets_.clear();
    bucket_mask_ = 0;
    return;
  }
  size_t num_buckets = 16;
  while (num_buckets < entries_.size() * 2) num_buckets <<= 1;
  buckets_.assign(num_buckets, kNil);
  bucket_mask_ = num_buckets - 1;
  for (uint32_t e = 0; e < entries_.size(); ++e) {
    const uint64_t h =
        HashInt64(static_cast<uint64_t>(entries_[e].key), kProbeSeed);
    uint32_t& head = buckets_[h & bucket_mask_];
    entries_[e].next = head;
    head = e;
  }
}

}  // namespace hybridjoin
