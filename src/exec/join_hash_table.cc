#include "exec/join_hash_table.h"

#include <algorithm>

namespace hybridjoin {

namespace {
// Probe pipeline depth: how many keys are hashed and prefetched before the
// first chain walk. Matches the Bloom kernels' window.
constexpr size_t kProbeWindow = 32;
}  // namespace

Status JoinHashTable::ExtractEntries(
    const RecordBatch& batch, uint32_t batch_index,
    std::vector<std::vector<Entry>>* out) const {
  if (key_column_ >= batch.num_columns()) {
    return Status::InvalidArgument("join key column out of range");
  }
  const ColumnVector& key = batch.column(key_column_);
  const size_t n = batch.num_rows();
  switch (key.physical_type()) {
    case PhysicalType::kInt32: {
      const auto& keys = key.i32();
      for (uint32_t r = 0; r < n; ++r) {
        const int64_t k = keys[r];
        const uint64_t h = HashInt64(static_cast<uint64_t>(k), kProbeSeed);
        (*out)[ShardOf(h)].push_back({k, batch_index, r, kNil});
      }
      break;
    }
    case PhysicalType::kInt64: {
      const auto& keys = key.i64();
      for (uint32_t r = 0; r < n; ++r) {
        const int64_t k = keys[r];
        const uint64_t h = HashInt64(static_cast<uint64_t>(k), kProbeSeed);
        (*out)[ShardOf(h)].push_back({k, batch_index, r, kNil});
      }
      break;
    }
    default:
      return Status::InvalidArgument("join key must be integer-typed");
  }
  return Status::OK();
}

Status JoinHashTable::AddBatch(RecordBatch batch) {
  if (finalized_) return Status::Internal("AddBatch after Finalize");
  if (batch.num_rows() == 0) return Status::OK();
  reservation_.Grow(batch.ByteSize() + batch.num_rows() * sizeof(Entry));
  const uint32_t batch_index = static_cast<uint32_t>(batches_.size());
  if (shards_.size() == 1) {
    // Streaming fast path: append straight into the single shard.
    if (key_column_ >= batch.num_columns()) {
      return Status::InvalidArgument("join key column out of range");
    }
    const ColumnVector& key = batch.column(key_column_);
    auto& entries = shards_[0].entries;
    const size_t n = batch.num_rows();
    entries.reserve(entries.size() + n);
    switch (key.physical_type()) {
      case PhysicalType::kInt32: {
        const auto& keys = key.i32();
        for (uint32_t r = 0; r < n; ++r) {
          entries.push_back({keys[r], batch_index, r, kNil});
        }
        break;
      }
      case PhysicalType::kInt64: {
        const auto& keys = key.i64();
        for (uint32_t r = 0; r < n; ++r) {
          entries.push_back({keys[r], batch_index, r, kNil});
        }
        break;
      }
      default:
        return Status::InvalidArgument("join key must be integer-typed");
    }
    batches_.push_back(std::move(batch));
    return Status::OK();
  }
  std::vector<std::vector<Entry>> per_shard(shards_.size());
  HJ_RETURN_IF_ERROR(ExtractEntries(batch, batch_index, &per_shard));
  for (size_t s = 0; s < shards_.size(); ++s) {
    auto& entries = shards_[s].entries;
    entries.insert(entries.end(), per_shard[s].begin(), per_shard[s].end());
  }
  batches_.push_back(std::move(batch));
  return Status::OK();
}

Status JoinHashTable::AddBatchesParallel(std::vector<RecordBatch> batches,
                                         ThreadPool* pool) {
  if (finalized_) return Status::Internal("AddBatch after Finalize");
  const uint32_t base = static_cast<uint32_t>(batches_.size());
  size_t added = 0;
  for (RecordBatch& b : batches) {
    if (b.num_rows() == 0) continue;
    reservation_.Grow(b.ByteSize() + b.num_rows() * sizeof(Entry));
    batches_.push_back(std::move(b));
    ++added;
  }
  if (added == 0) return Status::OK();
  if (pool == nullptr || pool->num_threads() <= 1 || added == 1) {
    std::vector<std::vector<Entry>> per_shard(shards_.size());
    for (uint32_t b = 0; b < added; ++b) {
      for (auto& v : per_shard) v.clear();
      HJ_RETURN_IF_ERROR(
          ExtractEntries(batches_[base + b], base + b, &per_shard));
      for (size_t s = 0; s < shards_.size(); ++s) {
        auto& entries = shards_[s].entries;
        entries.insert(entries.end(), per_shard[s].begin(),
                       per_shard[s].end());
      }
    }
    return Status::OK();
  }

  // Phase 1: contiguous batch ranges extract per-shard entry runs in
  // parallel. Range boundaries — not interleaving — decide which run a row
  // lands in, so the result is deterministic.
  const size_t ranges =
      std::min(added, std::max<size_t>(pool->num_threads() * 2, 1));
  const size_t per_range = (added + ranges - 1) / ranges;
  // runs[r][s]: range r's entries for shard s, in batch order.
  std::vector<std::vector<std::vector<Entry>>> runs(
      ranges, std::vector<std::vector<Entry>>(shards_.size()));
  HJ_RETURN_IF_ERROR(pool->ParallelFor(
      0, ranges, 1, [&](size_t r) -> Status {
        const size_t lo = r * per_range;
        const size_t hi = std::min<size_t>(added, lo + per_range);
        for (size_t b = lo; b < hi; ++b) {
          HJ_RETURN_IF_ERROR(ExtractEntries(
              batches_[base + b], static_cast<uint32_t>(base + b), &runs[r]));
        }
        return Status::OK();
      }));

  // Phase 2: splice every shard's runs in range order, one task per shard,
  // reproducing the serial AddBatch entry order exactly.
  return pool->ParallelFor(0, shards_.size(), 1, [&](size_t s) -> Status {
    size_t total = shards_[s].entries.size();
    for (size_t r = 0; r < ranges; ++r) total += runs[r][s].size();
    shards_[s].entries.reserve(total);
    for (size_t r = 0; r < ranges; ++r) {
      auto& entries = shards_[s].entries;
      entries.insert(entries.end(), runs[r][s].begin(), runs[r][s].end());
    }
    return Status::OK();
  });
}

void JoinHashTable::FinalizeShard(uint32_t shard) {
  Shard& s = shards_[shard];
  if (s.entries.empty()) {
    s.buckets.clear();
    s.bucket_mask = 0;
    s.max_chain_length = 0;
    return;
  }
  size_t num_buckets = 16;
  while (num_buckets < s.entries.size() * 2) num_buckets <<= 1;
  s.buckets.assign(num_buckets, kNil);
  s.bucket_mask = num_buckets - 1;
  for (uint32_t e = 0; e < s.entries.size(); ++e) {
    const uint64_t h =
        HashInt64(static_cast<uint64_t>(s.entries[e].key), kProbeSeed);
    uint32_t& head = s.buckets[h & s.bucket_mask];
    s.entries[e].next = head;
    head = e;
  }
  s.max_chain_length = 0;
  std::vector<uint32_t> chain_len(num_buckets, 0);
  for (uint32_t e = 0; e < s.entries.size(); ++e) {
    const uint64_t h =
        HashInt64(static_cast<uint64_t>(s.entries[e].key), kProbeSeed);
    const uint32_t len = ++chain_len[h & s.bucket_mask];
    if (len > s.max_chain_length) s.max_chain_length = len;
  }
}

void JoinHashTable::MarkFinalized() {
  if (!finalized_) {
    // Bucket directories exist now; charge them from the (single) finalizing
    // thread — FinalizeShard itself runs shard-parallel.
    reservation_.Grow(num_buckets() * sizeof(uint32_t));
  }
  finalized_ = true;
}

void JoinHashTable::Finalize() {
  if (finalized_) return;
  for (uint32_t s = 0; s < shards_.size(); ++s) FinalizeShard(s);
  MarkFinalized();
}

Status JoinHashTable::FinalizeParallel(ThreadPool* pool) {
  if (finalized_) return Status::OK();
  if (pool == nullptr || pool->num_threads() <= 1 || shards_.size() <= 1) {
    Finalize();
    return Status::OK();
  }
  HJ_RETURN_IF_ERROR(pool->ParallelFor(0, shards_.size(), 1, [&](size_t s) {
    FinalizeShard(static_cast<uint32_t>(s));
    return Status::OK();
  }));
  MarkFinalized();
  return Status::OK();
}

template <typename Key>
void JoinHashTable::ProbeBatchImpl(const Key* keys, size_t n,
                                   std::vector<JoinMatch>* out) const {
  const Shard* shard[kProbeWindow];
  uint64_t bucket_idx[kProbeWindow];
  uint32_t heads[kProbeWindow];
  for (size_t start = 0; start < n; start += kProbeWindow) {
    const size_t cnt = std::min(kProbeWindow, n - start);
    // Pass 1: hash every key in the window, prefetch its bucket-head slot.
    for (size_t j = 0; j < cnt; ++j) {
      const auto key = static_cast<int64_t>(keys[start + j]);
      const uint64_t h = HashInt64(static_cast<uint64_t>(key), kProbeSeed);
      const Shard& s = shards_[ShardOf(h)];
      shard[j] = &s;
      if (s.buckets.empty()) {
        heads[j] = kNil;
        continue;
      }
      bucket_idx[j] = h & s.bucket_mask;
      __builtin_prefetch(&s.buckets[bucket_idx[j]], 0, 1);
      heads[j] = 0;  // resolved in pass 2
    }
    // Pass 2: read the heads (now resident), prefetch the first entry of
    // each non-empty chain.
    for (size_t j = 0; j < cnt; ++j) {
      if (heads[j] == kNil) continue;
      heads[j] = shard[j]->buckets[bucket_idx[j]];
      if (heads[j] != kNil) {
        __builtin_prefetch(&shard[j]->entries[heads[j]], 0, 1);
      }
    }
    // Pass 3: walk the chains, emitting matches in scalar order.
    for (size_t j = 0; j < cnt; ++j) {
      const auto key = static_cast<int64_t>(keys[start + j]);
      const uint32_t probe_row = static_cast<uint32_t>(start + j);
      uint32_t e = heads[j];
      while (e != kNil) {
        const Entry& entry = shard[j]->entries[e];
        if (entry.key == key) out->push_back({probe_row, entry.batch, entry.row});
        e = entry.next;
      }
    }
  }
}

void JoinHashTable::ProbeBatch(std::span<const int64_t> keys,
                               std::vector<JoinMatch>* out) const {
  ProbeBatchImpl(keys.data(), keys.size(), out);
}

void JoinHashTable::ProbeBatch(std::span<const int32_t> keys,
                               std::vector<JoinMatch>* out) const {
  ProbeBatchImpl(keys.data(), keys.size(), out);
}

}  // namespace hybridjoin
