// GraceHashJoin: a hybrid (Grace) hash join with a memory budget — the
// paper's future-work extension to JEN's in-memory join (§4.4).
//
// Build rows are hash-partitioned; while the budget allows, partitions stay
// in memory. When it is exceeded, the largest resident partition spills.
// Probe rows against resident partitions join immediately (pipelined, like
// the in-memory path); probe rows of spilled partitions spill too, and the
// spilled pairs are joined partition-by-partition in Finish().
//
// Equivalent output to JoinHashTable + JoinProber; every surviving joined
// row feeds the same HashAggregator.

#ifndef HYBRIDJOIN_EXEC_GRACE_JOIN_H_
#define HYBRIDJOIN_EXEC_GRACE_JOIN_H_

#include <memory>

#include "exec/join_prober.h"
#include "exec/spill.h"

namespace hybridjoin {

struct GraceJoinOptions {
  /// Resident-build budget in bytes; 0 = unlimited (never spills).
  uint64_t memory_budget_bytes = 0;
  uint32_t num_partitions = 16;
};

class GraceHashJoin {
 public:
  /// Same collaborators as JoinProber, plus the spill area.
  GraceHashJoin(SchemaPtr build_schema, std::string build_alias,
                size_t build_key, SchemaPtr probe_schema,
                std::string probe_alias, size_t probe_key,
                PredicatePtr post_join_predicate, HashAggregator* aggregator,
                Metrics* metrics, SpillArea* spill,
                GraceJoinOptions options);

  // Phase 1: add every build batch, then freeze.
  Status AddBuild(RecordBatch&& batch);
  Status FinishBuild();

  // Phase 2: stream probe batches.
  Status AddProbe(const RecordBatch& batch);

  // Phase 3: join the spilled partition pairs and flush.
  Status Finish();

  uint32_t spilled_partitions() const { return spilled_count_; }
  int64_t build_rows() const { return build_rows_; }

 private:
  struct Partition {
    // Resident state.
    std::vector<RecordBatch> build_batches;
    uint64_t resident_bytes = 0;
    // Spilled state.
    bool spilled = false;
    SpillArea::FileId build_file = 0;
    SpillArea::FileId probe_file = 0;
    RecordBatch build_pending;  // buffered rows before flush to spill
    RecordBatch probe_pending;
    // Probe-ready state (resident partitions after FinishBuild).
    std::unique_ptr<JoinHashTable> table;
    std::unique_ptr<JoinProber> prober;
  };

  uint32_t PartitionOf(int64_t key) const;
  Status SpillLargestResident();
  Status FlushPending(Partition* p, bool build_side);
  Status JoinSpilledPartition(Partition* p);

  SchemaPtr build_schema_;
  std::string build_alias_;
  size_t build_key_;
  SchemaPtr probe_schema_;
  std::string probe_alias_;
  size_t probe_key_;
  PredicatePtr post_join_predicate_;
  HashAggregator* aggregator_;
  Metrics* metrics_;
  SpillArea* spill_;
  GraceJoinOptions options_;

  std::vector<Partition> partitions_;
  uint64_t resident_bytes_ = 0;
  uint32_t spilled_count_ = 0;
  int64_t build_rows_ = 0;
  bool build_finished_ = false;
  bool finished_ = false;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_EXEC_GRACE_JOIN_H_
