// GraceHashJoin: a hybrid (Grace) hash join with a memory budget — the
// paper's future-work extension to JEN's in-memory join (§4.4).
//
// Build rows are hash-partitioned; while the budget allows, partitions stay
// in memory. When it is exceeded — either the join's own budget or a failed
// MemoryGovernor reservation — the largest resident partition spills. Probe
// rows against resident partitions join immediately (pipelined, like the
// in-memory path); probe rows of spilled partitions spill too, and the
// spilled pairs are joined partition-by-partition in Finish().
//
// Finish() is robust to skew: a spilled partition whose build side still
// exceeds the budget is recursively repartitioned with a re-salted hash
// (bounded depth), and if re-salting cannot split it (all-duplicate join
// keys), the pair falls back to a sort-free block-nested-loop join — the
// build file is consumed in budget-sized chunks, the probe file streamed
// once per chunk — so correctness never depends on the data distribution.
//
// When a MemoryGovernor scope is installed (or one is passed explicitly),
// the join charges every resident build byte against it and registers a
// spill callback so *other* consumers' reservations can evict this join's
// partitions during the build phase (the callback goes inert at
// FinishBuild, when resident partitions freeze into probe-ready tables).
//
// Equivalent output to JoinHashTable + JoinProber; every surviving joined
// row feeds the same HashAggregator. For morsel-parallel probing use
// MakeProbeThread: each probe thread gets its own prober set over the
// shared frozen tables and its own thread-local aggregator partial, while
// rows of spilled partitions divert to the (thread-safe) spill writer.

#ifndef HYBRIDJOIN_EXEC_GRACE_JOIN_H_
#define HYBRIDJOIN_EXEC_GRACE_JOIN_H_

#include <memory>
#include <mutex>
#include <vector>

#include "exec/join_prober.h"
#include "exec/memory_governor.h"
#include "exec/spill.h"

namespace hybridjoin {

struct GraceJoinOptions {
  /// Resident-build budget in bytes; 0 falls back to the installed
  /// MemoryGovernor's budget, and to unlimited (never spills) without one.
  uint64_t memory_budget_bytes = 0;
  uint32_t num_partitions = 16;
};

class GraceHashJoin {
 public:
  /// Same collaborators as JoinProber, plus the spill area. Captures
  /// MemoryGovernor::Current() (may be null) at construction.
  GraceHashJoin(SchemaPtr build_schema, std::string build_alias,
                size_t build_key, SchemaPtr probe_schema,
                std::string probe_alias, size_t probe_key,
                PredicatePtr post_join_predicate, HashAggregator* aggregator,
                Metrics* metrics, SpillArea* spill,
                GraceJoinOptions options);
  ~GraceHashJoin();

  // Phase 1: add every build batch, then freeze.
  Status AddBuild(RecordBatch&& batch);
  Status FinishBuild();

  // Phase 2: stream probe batches (single-threaded convenience path; the
  // surviving joined rows feed the constructor's aggregator).
  Status AddProbe(const RecordBatch& batch);

  /// One probe thread's view of the frozen join: resident partitions probe
  /// through private JoinProbers into `partial` (a thread-local aggregator
  /// the caller merges later); spilled partitions buffer locally and flush
  /// through the thread-safe spill writer. Not itself thread-safe — one
  /// instance per thread. Flush() must run before GraceHashJoin::Finish().
  class ProbeThread {
   public:
    Status Probe(const RecordBatch& batch);
    Status Flush();

   private:
    friend class GraceHashJoin;
    ProbeThread(GraceHashJoin* parent, HashAggregator* partial);

    GraceHashJoin* parent_;
    std::vector<std::unique_ptr<JoinProber>> probers_;  // per partition
    std::vector<RecordBatch> spill_pending_;            // per partition
  };

  /// Valid only after FinishBuild().
  std::unique_ptr<ProbeThread> MakeProbeThread(HashAggregator* partial);

  // Phase 3: join the spilled partition pairs and flush.
  Status Finish();

  uint32_t spilled_partitions() const { return spilled_count_; }
  int64_t build_rows() const { return build_rows_; }
  /// Total routed build bytes (resident + spilled), the byte measure the
  /// budget is compared against.
  uint64_t build_bytes() const { return build_bytes_; }

 private:
  struct Partition {
    // Resident state.
    std::vector<RecordBatch> build_batches;
    uint64_t resident_bytes = 0;
    // Spilled state.
    bool spilled = false;
    SpillArea::FileId build_file = 0;
    SpillArea::FileId probe_file = 0;
    RecordBatch build_pending;  // buffered rows before flush to spill
    RecordBatch probe_pending;
    // Probe-ready state (resident partitions after FinishBuild).
    std::unique_ptr<JoinHashTable> table;
    std::unique_ptr<JoinProber> prober;
  };

  uint32_t PartitionOf(int64_t key) const;
  /// Requires mu_ held. Returns the bytes freed (0 = nothing evictable).
  uint64_t SpillLargestResidentLocked(Status* status);
  /// The governor spill callback: evicts resident partitions (largest
  /// first) until `want` bytes are freed or nothing evictable remains.
  /// Inert once the build phase is frozen.
  uint64_t SpillForGovernor(uint64_t want);
  Status FlushPending(Partition* p, bool build_side);
  /// Joins one spilled (build, probe) file pair, recursively repartitioning
  /// oversized build sides up to kMaxRepartitionDepth, then falling back to
  /// the block-nested loop. Drops both files.
  Status JoinSpilledPair(SpillArea::FileId build_file,
                         SpillArea::FileId probe_file, uint32_t depth);
  /// Splits `src` into `dst.size()` files by the depth-salted hash; drops
  /// `src`.
  Status Repartition(SpillArea::FileId src, const SchemaPtr& schema,
                     size_t key_column, uint32_t depth,
                     const std::vector<SpillArea::FileId>& dst);
  /// Budget-sized build chunks, one probe-file pass each. Drops both files.
  Status BlockNestedJoin(SpillArea::FileId build_file,
                         SpillArea::FileId probe_file);

  SchemaPtr build_schema_;
  std::string build_alias_;
  size_t build_key_;
  SchemaPtr probe_schema_;
  std::string probe_alias_;
  size_t probe_key_;
  PredicatePtr post_join_predicate_;
  HashAggregator* aggregator_;
  Metrics* metrics_;
  SpillArea* spill_;
  GraceJoinOptions options_;
  MemoryGovernor* governor_;
  uint64_t effective_budget_;
  uint64_t spiller_token_ = 0;

  /// Guards partition state during the build phase: AddBuild and the
  /// governor spill callback (another thread's failed reservation) both
  /// mutate it. Probe-phase state is frozen, read lock-free.
  std::mutex mu_;
  std::vector<Partition> partitions_;
  /// First error hit inside the governor spill callback (which cannot
  /// return a Status); re-raised by FinishBuild.
  Status callback_status_ = Status::OK();
  uint64_t resident_bytes_ = 0;
  uint32_t spilled_count_ = 0;
  int64_t build_rows_ = 0;
  uint64_t build_bytes_ = 0;
  bool build_finished_ = false;
  bool finished_ = false;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_EXEC_GRACE_JOIN_H_
