#include "exec/join_prober.h"

#include <algorithm>

namespace hybridjoin {

SchemaPtr MakeJoinedSchema(const SchemaPtr& build_schema,
                           const std::string& build_alias,
                           const SchemaPtr& probe_schema,
                           const std::string& probe_alias) {
  std::vector<Field> fields;
  fields.reserve(build_schema->num_fields() + probe_schema->num_fields());
  for (const Field& f : build_schema->fields()) {
    fields.push_back({build_alias + "." + f.name, f.type});
  }
  for (const Field& f : probe_schema->fields()) {
    fields.push_back({probe_alias + "." + f.name, f.type});
  }
  return Schema::Make(std::move(fields));
}

JoinProber::JoinProber(const JoinHashTable* build, SchemaPtr build_schema,
                       std::string build_alias, SchemaPtr probe_schema,
                       std::string probe_alias, size_t probe_key_column,
                       PredicatePtr post_join_predicate,
                       HashAggregator* aggregator, Metrics* metrics,
                       JoinProberOptions options)
    : build_(build),
      probe_schema_(std::move(probe_schema)),
      probe_key_column_(probe_key_column),
      post_join_predicate_(std::move(post_join_predicate)),
      aggregator_(aggregator),
      metrics_(metrics),
      options_(options),
      joined_schema_(MakeJoinedSchema(build_schema, build_alias,
                                      probe_schema_, probe_alias)),
      build_width_(build_schema->num_fields()),
      pending_(joined_schema_) {
  HJ_CHECK(build_->finalized()) << "probe against non-finalized hash table";
  // The build side is frozen after Finalize, so the typed data pointers of
  // every build column/batch can be resolved once here.
  const auto& batches = build_->batches();
  build_sources_.resize(build_width_);
  for (size_t c = 0; c < build_width_; ++c) {
    GatherColumn& gc = build_sources_[c];
    gc.type = PhysicalTypeOf(build_schema->field(c).type);
    gc.per_batch.reserve(batches.size());
    for (const RecordBatch& b : batches) {
      const ColumnVector& col = b.column(c);
      switch (gc.type) {
        case PhysicalType::kInt32:
          gc.per_batch.push_back(col.i32().data());
          break;
        case PhysicalType::kInt64:
          gc.per_batch.push_back(col.i64().data());
          break;
        case PhysicalType::kFloat64:
          gc.per_batch.push_back(col.f64().data());
          break;
        case PhysicalType::kString:
          gc.per_batch.push_back(col.str().data());
          break;
      }
    }
  }
}

void JoinProber::MaterializeChunk(const RecordBatch& probe_batch, size_t pos,
                                  size_t take) {
  const JoinMatch* m = matches_.data() + pos;
  for (size_t c = 0; c < build_width_; ++c) {
    const GatherColumn& src = build_sources_[c];
    ColumnVector& dst = pending_.mutable_column(c);
    switch (src.type) {
      case PhysicalType::kInt32: {
        auto& o = dst.mutable_i32();
        o.reserve(o.size() + take);
        for (size_t j = 0; j < take; ++j) {
          o.push_back(
              static_cast<const int32_t*>(src.per_batch[m[j].batch])[m[j].row]);
        }
        break;
      }
      case PhysicalType::kInt64: {
        auto& o = dst.mutable_i64();
        o.reserve(o.size() + take);
        for (size_t j = 0; j < take; ++j) {
          o.push_back(
              static_cast<const int64_t*>(src.per_batch[m[j].batch])[m[j].row]);
        }
        break;
      }
      case PhysicalType::kFloat64: {
        auto& o = dst.mutable_f64();
        o.reserve(o.size() + take);
        for (size_t j = 0; j < take; ++j) {
          o.push_back(
              static_cast<const double*>(src.per_batch[m[j].batch])[m[j].row]);
        }
        break;
      }
      case PhysicalType::kString: {
        auto& o = dst.mutable_str();
        o.reserve(o.size() + take);
        for (size_t j = 0; j < take; ++j) {
          o.push_back(static_cast<const std::string*>(
              src.per_batch[m[j].batch])[m[j].row]);
        }
        break;
      }
    }
  }
  probe_rows_.resize(take);
  for (size_t j = 0; j < take; ++j) probe_rows_[j] = m[j].probe_row;
  for (size_t c = 0; c < probe_batch.num_columns(); ++c) {
    pending_.mutable_column(build_width_ + c)
        .GatherAppendFrom(probe_batch.column(c), probe_rows_.data(), take);
  }
}

Status JoinProber::ProbeBatch(const RecordBatch& batch) {
  if (probe_key_column_ >= batch.num_columns()) {
    return Status::InvalidArgument("probe key column out of range");
  }
  const ColumnVector& key_col = batch.column(probe_key_column_);

  matches_.clear();
  switch (key_col.physical_type()) {
    case PhysicalType::kInt32:
      build_->ProbeBatch(std::span<const int32_t>(key_col.i32()), &matches_);
      break;
    case PhysicalType::kInt64:
      build_->ProbeBatch(std::span<const int64_t>(key_col.i64()), &matches_);
      break;
    default:
      return Status::InvalidArgument("probe key must be integer-typed");
  }
  join_matches_ += static_cast<int64_t>(matches_.size());

  // Materialize the match list in chunks that fill pending_ to exactly
  // output_batch_rows, flushing as each chunk completes.
  size_t pos = 0;
  while (pos < matches_.size()) {
    const size_t room = options_.output_batch_rows - pending_.num_rows();
    const size_t take = std::min(room, matches_.size() - pos);
    MaterializeChunk(batch, pos, take);
    pos += take;
    if (pending_.num_rows() >= options_.output_batch_rows) {
      HJ_RETURN_IF_ERROR(Flush());
    }
  }
  return Status::OK();
}

Status JoinProber::Flush() {
  if (pending_.num_rows() == 0) return Status::OK();
  std::vector<uint32_t> sel(pending_.num_rows());
  for (uint32_t i = 0; i < sel.size(); ++i) sel[i] = i;
  if (post_join_predicate_ != nullptr) {
    HJ_RETURN_IF_ERROR(post_join_predicate_->Filter(pending_, &sel));
  }
  output_rows_ += static_cast<int64_t>(sel.size());
  if (metrics_ != nullptr) {
    metrics_->Add(metric::kJoinOutputTuples,
                  static_cast<int64_t>(sel.size()));
  }
  HJ_RETURN_IF_ERROR(aggregator_->Update(pending_, sel));
  pending_ = RecordBatch(joined_schema_);
  return Status::OK();
}

}  // namespace hybridjoin
