#include "exec/join_prober.h"

namespace hybridjoin {

SchemaPtr MakeJoinedSchema(const SchemaPtr& build_schema,
                           const std::string& build_alias,
                           const SchemaPtr& probe_schema,
                           const std::string& probe_alias) {
  std::vector<Field> fields;
  fields.reserve(build_schema->num_fields() + probe_schema->num_fields());
  for (const Field& f : build_schema->fields()) {
    fields.push_back({build_alias + "." + f.name, f.type});
  }
  for (const Field& f : probe_schema->fields()) {
    fields.push_back({probe_alias + "." + f.name, f.type});
  }
  return Schema::Make(std::move(fields));
}

JoinProber::JoinProber(const JoinHashTable* build, SchemaPtr build_schema,
                       std::string build_alias, SchemaPtr probe_schema,
                       std::string probe_alias, size_t probe_key_column,
                       PredicatePtr post_join_predicate,
                       HashAggregator* aggregator, Metrics* metrics,
                       JoinProberOptions options)
    : build_(build),
      probe_schema_(std::move(probe_schema)),
      probe_key_column_(probe_key_column),
      post_join_predicate_(std::move(post_join_predicate)),
      aggregator_(aggregator),
      metrics_(metrics),
      options_(options),
      joined_schema_(MakeJoinedSchema(build_schema, build_alias,
                                      probe_schema_, probe_alias)),
      build_width_(build_schema->num_fields()),
      pending_(joined_schema_) {
  HJ_CHECK(build_->finalized()) << "probe against non-finalized hash table";
}

Status JoinProber::ProbeBatch(const RecordBatch& batch) {
  if (probe_key_column_ >= batch.num_columns()) {
    return Status::InvalidArgument("probe key column out of range");
  }
  const ColumnVector& key_col = batch.column(probe_key_column_);
  const size_t n = batch.num_rows();
  const auto& build_batches = build_->batches();
  Status status;

  auto emit = [&](int64_t key, uint32_t probe_row) {
    build_->ForEachMatch(key, [&](uint32_t bbatch, uint32_t brow) {
      ++join_matches_;
      const RecordBatch& src = build_batches[bbatch];
      for (size_t c = 0; c < build_width_; ++c) {
        pending_.mutable_column(c).AppendFrom(src.column(c), brow);
      }
      for (size_t c = 0; c < batch.num_columns(); ++c) {
        pending_.mutable_column(build_width_ + c)
            .AppendFrom(batch.column(c), probe_row);
      }
    });
    if (pending_.num_rows() >= options_.output_batch_rows && status.ok()) {
      status = Flush();
    }
  };

  switch (key_col.physical_type()) {
    case PhysicalType::kInt32: {
      const auto& keys = key_col.i32();
      for (uint32_t r = 0; r < n && status.ok(); ++r) emit(keys[r], r);
      break;
    }
    case PhysicalType::kInt64: {
      const auto& keys = key_col.i64();
      for (uint32_t r = 0; r < n && status.ok(); ++r) emit(keys[r], r);
      break;
    }
    default:
      return Status::InvalidArgument("probe key must be integer-typed");
  }
  return status;
}

Status JoinProber::Flush() {
  if (pending_.num_rows() == 0) return Status::OK();
  std::vector<uint32_t> sel(pending_.num_rows());
  for (uint32_t i = 0; i < sel.size(); ++i) sel[i] = i;
  if (post_join_predicate_ != nullptr) {
    HJ_RETURN_IF_ERROR(post_join_predicate_->Filter(pending_, &sel));
  }
  output_rows_ += static_cast<int64_t>(sel.size());
  if (metrics_ != nullptr) {
    metrics_->Add(metric::kJoinOutputTuples,
                  static_cast<int64_t>(sel.size()));
  }
  HJ_RETURN_IF_ERROR(aggregator_->Update(pending_, sel));
  pending_ = RecordBatch(joined_schema_);
  return Status::OK();
}

}  // namespace hybridjoin
