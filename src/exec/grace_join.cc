#include "exec/grace_join.h"

#include "common/hash.h"

namespace hybridjoin {

namespace {
constexpr uint64_t kGraceSeed = 0x9eaceULL;
constexpr size_t kPendingFlushRows = 4096;

/// Splits a batch's rows into per-partition selections.
std::vector<std::vector<uint32_t>> RouteRows(const RecordBatch& batch,
                                             size_t key_column,
                                             uint32_t num_partitions) {
  std::vector<std::vector<uint32_t>> routed(num_partitions);
  const ColumnVector& key = batch.column(key_column);
  const bool is32 = key.physical_type() == PhysicalType::kInt32;
  for (uint32_t r = 0; r < batch.num_rows(); ++r) {
    const int64_t k = is32 ? key.i32()[r] : key.i64()[r];
    const uint32_t p = static_cast<uint32_t>(
        HashInt64(static_cast<uint64_t>(k), kGraceSeed) % num_partitions);
    routed[p].push_back(r);
  }
  return routed;
}

}  // namespace

GraceHashJoin::GraceHashJoin(SchemaPtr build_schema, std::string build_alias,
                             size_t build_key, SchemaPtr probe_schema,
                             std::string probe_alias, size_t probe_key,
                             PredicatePtr post_join_predicate,
                             HashAggregator* aggregator, Metrics* metrics,
                             SpillArea* spill, GraceJoinOptions options)
    : build_schema_(std::move(build_schema)),
      build_alias_(std::move(build_alias)),
      build_key_(build_key),
      probe_schema_(std::move(probe_schema)),
      probe_alias_(std::move(probe_alias)),
      probe_key_(probe_key),
      post_join_predicate_(std::move(post_join_predicate)),
      aggregator_(aggregator),
      metrics_(metrics),
      spill_(spill),
      options_(options) {
  HJ_CHECK_GT(options_.num_partitions, 0u);
  HJ_CHECK(spill_ != nullptr);
  partitions_.resize(options_.num_partitions);
  for (auto& p : partitions_) {
    p.build_pending = RecordBatch(build_schema_);
    p.probe_pending = RecordBatch(probe_schema_);
  }
}

uint32_t GraceHashJoin::PartitionOf(int64_t key) const {
  return static_cast<uint32_t>(HashInt64(static_cast<uint64_t>(key),
                                         kGraceSeed) %
                               options_.num_partitions);
}

Status GraceHashJoin::FlushPending(Partition* p, bool build_side) {
  RecordBatch& pending = build_side ? p->build_pending : p->probe_pending;
  if (pending.num_rows() == 0) return Status::OK();
  const SpillArea::FileId file = build_side ? p->build_file : p->probe_file;
  HJ_RETURN_IF_ERROR(spill_->Append(file, pending));
  pending = RecordBatch(build_side ? build_schema_ : probe_schema_);
  return Status::OK();
}

Status GraceHashJoin::SpillLargestResident() {
  Partition* victim = nullptr;
  for (auto& p : partitions_) {
    if (p.spilled) continue;
    if (victim == nullptr || p.resident_bytes > victim->resident_bytes) {
      victim = &p;
    }
  }
  if (victim == nullptr || victim->resident_bytes == 0) {
    // Nothing left to evict; the budget is simply too small — carry on
    // resident rather than thrash.
    return Status::OK();
  }
  victim->spilled = true;
  victim->build_file = spill_->Create();
  victim->probe_file = spill_->Create();
  ++spilled_count_;
  if (metrics_ != nullptr) metrics_->Add(metric::kSpilledPartitions, 1);
  for (const RecordBatch& batch : victim->build_batches) {
    HJ_RETURN_IF_ERROR(spill_->Append(victim->build_file, batch));
  }
  victim->build_batches.clear();
  resident_bytes_ -= victim->resident_bytes;
  victim->resident_bytes = 0;
  return Status::OK();
}

Status GraceHashJoin::AddBuild(RecordBatch&& batch) {
  if (build_finished_) return Status::Internal("AddBuild after FinishBuild");
  build_rows_ += static_cast<int64_t>(batch.num_rows());
  auto routed = RouteRows(batch, build_key_, options_.num_partitions);
  for (uint32_t pi = 0; pi < options_.num_partitions; ++pi) {
    if (routed[pi].empty()) continue;
    Partition& p = partitions_[pi];
    RecordBatch rows = batch.Gather(routed[pi]);
    if (p.spilled) {
      for (size_t r = 0; r < rows.num_rows(); ++r) {
        p.build_pending.AppendRowFrom(rows, r);
      }
      if (p.build_pending.num_rows() >= kPendingFlushRows) {
        HJ_RETURN_IF_ERROR(FlushPending(&p, /*build_side=*/true));
      }
      continue;
    }
    const uint64_t bytes = rows.ByteSize();
    p.build_batches.push_back(std::move(rows));
    p.resident_bytes += bytes;
    resident_bytes_ += bytes;
    while (options_.memory_budget_bytes != 0 &&
           resident_bytes_ > options_.memory_budget_bytes) {
      const uint64_t before = resident_bytes_;
      HJ_RETURN_IF_ERROR(SpillLargestResident());
      if (resident_bytes_ == before) break;  // nothing evictable
    }
  }
  return Status::OK();
}

Status GraceHashJoin::FinishBuild() {
  if (build_finished_) return Status::OK();
  build_finished_ = true;
  for (auto& p : partitions_) {
    if (p.spilled) {
      HJ_RETURN_IF_ERROR(FlushPending(&p, /*build_side=*/true));
      continue;
    }
    p.table = std::make_unique<JoinHashTable>(build_key_);
    for (RecordBatch& batch : p.build_batches) {
      HJ_RETURN_IF_ERROR(p.table->AddBatch(std::move(batch)));
    }
    p.build_batches.clear();
    p.table->Finalize();
    p.prober = std::make_unique<JoinProber>(
        p.table.get(), build_schema_, build_alias_, probe_schema_,
        probe_alias_, probe_key_, post_join_predicate_, aggregator_,
        metrics_);
  }
  return Status::OK();
}

Status GraceHashJoin::AddProbe(const RecordBatch& batch) {
  if (!build_finished_) {
    return Status::Internal("AddProbe before FinishBuild");
  }
  auto routed = RouteRows(batch, probe_key_, options_.num_partitions);
  for (uint32_t pi = 0; pi < options_.num_partitions; ++pi) {
    if (routed[pi].empty()) continue;
    Partition& p = partitions_[pi];
    RecordBatch rows = batch.Gather(routed[pi]);
    if (!p.spilled) {
      HJ_RETURN_IF_ERROR(p.prober->ProbeBatch(rows));
      continue;
    }
    for (size_t r = 0; r < rows.num_rows(); ++r) {
      p.probe_pending.AppendRowFrom(rows, r);
    }
    if (p.probe_pending.num_rows() >= kPendingFlushRows) {
      HJ_RETURN_IF_ERROR(FlushPending(&p, /*build_side=*/false));
    }
  }
  return Status::OK();
}

Status GraceHashJoin::JoinSpilledPartition(Partition* p) {
  JoinHashTable table(build_key_);
  HJ_RETURN_IF_ERROR(spill_->ForEach(
      p->build_file, build_schema_, [&](RecordBatch&& batch) {
        return table.AddBatch(std::move(batch));
      }));
  table.Finalize();
  JoinProber prober(&table, build_schema_, build_alias_, probe_schema_,
                    probe_alias_, probe_key_, post_join_predicate_,
                    aggregator_, metrics_);
  HJ_RETURN_IF_ERROR(spill_->ForEach(
      p->probe_file, probe_schema_,
      [&](RecordBatch&& batch) { return prober.ProbeBatch(batch); }));
  HJ_RETURN_IF_ERROR(prober.Flush());
  spill_->Drop(p->build_file);
  spill_->Drop(p->probe_file);
  return Status::OK();
}

Status GraceHashJoin::Finish() {
  if (finished_) return Status::OK();
  if (!build_finished_) {
    return Status::Internal("Finish before FinishBuild");
  }
  finished_ = true;
  for (auto& p : partitions_) {
    if (!p.spilled) {
      if (p.prober != nullptr) {
        HJ_RETURN_IF_ERROR(p.prober->Flush());
      }
      continue;
    }
    HJ_RETURN_IF_ERROR(FlushPending(&p, /*build_side=*/false));
    HJ_RETURN_IF_ERROR(JoinSpilledPartition(&p));
  }
  return Status::OK();
}

}  // namespace hybridjoin
