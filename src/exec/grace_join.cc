#include "exec/grace_join.h"

#include "common/hash.h"
#include "common/query_scope.h"
#include "obs/event_log.h"

namespace hybridjoin {

namespace {
constexpr uint64_t kGraceSeed = 0x9eaceULL;
constexpr size_t kPendingFlushRows = 4096;
/// Recursive-repartition bounds: past kMaxRepartitionDepth an oversized
/// partition is joined by block-nested loop instead (all-duplicate keys
/// cannot be split by any re-salting).
constexpr uint32_t kMaxRepartitionDepth = 3;
constexpr uint32_t kRepartitionFanout = 4;

/// Depth-salted partition hash seed: depth 0 is the classic grace seed;
/// every recursion level re-salts so a split that failed at depth d gets an
/// independent chance at depth d+1.
uint64_t SaltedSeed(uint32_t depth) {
  return kGraceSeed + static_cast<uint64_t>(depth) * 0x9e3779b97f4a7c15ULL;
}

/// Splits a batch's rows into per-partition selections.
std::vector<std::vector<uint32_t>> RouteRows(const RecordBatch& batch,
                                             size_t key_column,
                                             uint32_t num_partitions,
                                             uint64_t seed) {
  std::vector<std::vector<uint32_t>> routed(num_partitions);
  const ColumnVector& key = batch.column(key_column);
  const bool is32 = key.physical_type() == PhysicalType::kInt32;
  for (uint32_t r = 0; r < batch.num_rows(); ++r) {
    const int64_t k = is32 ? key.i32()[r] : key.i64()[r];
    const uint32_t p = static_cast<uint32_t>(
        HashInt64(static_cast<uint64_t>(k), seed) % num_partitions);
    routed[p].push_back(r);
  }
  return routed;
}

}  // namespace

GraceHashJoin::GraceHashJoin(SchemaPtr build_schema, std::string build_alias,
                             size_t build_key, SchemaPtr probe_schema,
                             std::string probe_alias, size_t probe_key,
                             PredicatePtr post_join_predicate,
                             HashAggregator* aggregator, Metrics* metrics,
                             SpillArea* spill, GraceJoinOptions options)
    : build_schema_(std::move(build_schema)),
      build_alias_(std::move(build_alias)),
      build_key_(build_key),
      probe_schema_(std::move(probe_schema)),
      probe_alias_(std::move(probe_alias)),
      probe_key_(probe_key),
      post_join_predicate_(std::move(post_join_predicate)),
      aggregator_(aggregator),
      metrics_(metrics),
      spill_(spill),
      options_(options),
      governor_(MemoryGovernor::Current()),
      effective_budget_(options.memory_budget_bytes != 0
                            ? options.memory_budget_bytes
                            : (governor_ != nullptr ? governor_->budget()
                                                    : 0)) {
  HJ_CHECK_GT(options_.num_partitions, 0u);
  HJ_CHECK(spill_ != nullptr);
  partitions_.resize(options_.num_partitions);
  for (auto& p : partitions_) {
    p.build_pending = RecordBatch(build_schema_);
    p.probe_pending = RecordBatch(probe_schema_);
  }
  if (governor_ != nullptr && governor_->budget() != 0) {
    spiller_token_ = governor_->RegisterSpiller(
        [this]() -> uint64_t {
          std::lock_guard<std::mutex> lock(mu_);
          return build_finished_ ? 0 : resident_bytes_;
        },
        [this](uint64_t want) { return SpillForGovernor(want); });
  }
}

GraceHashJoin::~GraceHashJoin() {
  if (governor_ != nullptr && spiller_token_ != 0) {
    governor_->UnregisterSpiller(spiller_token_);
  }
  if (governor_ != nullptr && resident_bytes_ > 0) {
    governor_->Release(resident_bytes_);
  }
}

uint32_t GraceHashJoin::PartitionOf(int64_t key) const {
  return static_cast<uint32_t>(HashInt64(static_cast<uint64_t>(key),
                                         kGraceSeed) %
                               options_.num_partitions);
}

Status GraceHashJoin::FlushPending(Partition* p, bool build_side) {
  RecordBatch& pending = build_side ? p->build_pending : p->probe_pending;
  if (pending.num_rows() == 0) return Status::OK();
  const SpillArea::FileId file = build_side ? p->build_file : p->probe_file;
  HJ_RETURN_IF_ERROR(spill_->Append(file, pending));
  pending = RecordBatch(build_side ? build_schema_ : probe_schema_);
  return Status::OK();
}

uint64_t GraceHashJoin::SpillLargestResidentLocked(Status* status) {
  *status = Status::OK();
  Partition* victim = nullptr;
  for (auto& p : partitions_) {
    if (p.spilled) continue;
    if (victim == nullptr || p.resident_bytes > victim->resident_bytes) {
      victim = &p;
    }
  }
  if (victim == nullptr || victim->resident_bytes == 0) {
    // Nothing left to evict; the budget is simply too small — carry on
    // resident rather than thrash.
    return 0;
  }
  victim->spilled = true;
  victim->build_file = spill_->Create();
  victim->probe_file = spill_->Create();
  ++spilled_count_;
  if (metrics_ != nullptr) {
    metrics_->Add(metric::kSpilledPartitions, 1);
  }
  for (const RecordBatch& batch : victim->build_batches) {
    Status st = spill_->Append(victim->build_file, batch);
    if (!st.ok()) {
      *status = st;
      return 0;
    }
  }
  victim->build_batches.clear();
  const uint64_t freed = victim->resident_bytes;
  resident_bytes_ -= freed;
  victim->resident_bytes = 0;
  if (governor_ != nullptr) governor_->Release(freed);
  if (obs::EventLog::Global().enabled()) {
    auto fields = obs::JsonValue::Object();
    fields.Set("freed_bytes",
               obs::JsonValue::Int(static_cast<int64_t>(freed)));
    fields.Set("spilled_partitions",
               obs::JsonValue::Int(static_cast<int64_t>(spilled_count_)));
    obs::EventLog::Global().Emit("spill", QueryScope::Current(),
                                 std::move(fields));
  }
  return freed;
}

uint64_t GraceHashJoin::SpillForGovernor(uint64_t want) {
  std::lock_guard<std::mutex> lock(mu_);
  if (build_finished_) return 0;
  uint64_t freed = 0;
  while (freed < want) {
    Status st;
    const uint64_t f = SpillLargestResidentLocked(&st);
    if (!st.ok()) {
      if (callback_status_.ok()) callback_status_ = st;
      break;
    }
    if (f == 0) break;
    freed += f;
  }
  return freed;
}

Status GraceHashJoin::AddBuild(RecordBatch&& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  if (build_finished_) return Status::Internal("AddBuild after FinishBuild");
  build_rows_ += static_cast<int64_t>(batch.num_rows());
  auto routed =
      RouteRows(batch, build_key_, options_.num_partitions, kGraceSeed);
  for (uint32_t pi = 0; pi < options_.num_partitions; ++pi) {
    if (routed[pi].empty()) continue;
    Partition& p = partitions_[pi];
    RecordBatch rows = batch.Gather(routed[pi]);
    const uint64_t bytes = rows.ByteSize();
    build_bytes_ += bytes;
    // Reserve before admitting the piece as resident. On refusal, evict the
    // largest resident partition (possibly this one) and retry; when
    // nothing is left to evict, force the charge — correctness never
    // depends on the reservation.
    bool charged = false;
    if (!p.spilled && governor_ != nullptr) {
      while (!governor_->TryReserve(bytes)) {
        Status st;
        const uint64_t freed = SpillLargestResidentLocked(&st);
        HJ_RETURN_IF_ERROR(st);
        if (freed == 0) {
          governor_->ForceReserve(bytes);
          break;
        }
      }
      charged = true;
    }
    if (p.spilled) {
      // The eviction loop above may have just spilled this partition; the
      // piece belongs on its spill file, not in the (released) residency.
      if (charged) governor_->Release(bytes);
      for (size_t r = 0; r < rows.num_rows(); ++r) {
        p.build_pending.AppendRowFrom(rows, r);
      }
      if (p.build_pending.num_rows() >= kPendingFlushRows) {
        HJ_RETURN_IF_ERROR(FlushPending(&p, /*build_side=*/true));
      }
      continue;
    }
    p.build_batches.push_back(std::move(rows));
    p.resident_bytes += bytes;
    resident_bytes_ += bytes;
    while (effective_budget_ != 0 && resident_bytes_ > effective_budget_) {
      Status st;
      const uint64_t freed = SpillLargestResidentLocked(&st);
      HJ_RETURN_IF_ERROR(st);
      if (freed == 0) break;  // nothing evictable
    }
  }
  return Status::OK();
}

Status GraceHashJoin::FinishBuild() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (build_finished_) return Status::OK();
    build_finished_ = true;
  }
  // Unregister outside mu_: a concurrent Reserve holds the governor's
  // spiller lock while waiting on mu_ in our callback, so taking them in
  // the other order here would deadlock.
  if (governor_ != nullptr && spiller_token_ != 0) {
    governor_->UnregisterSpiller(spiller_token_);
    spiller_token_ = 0;
  }
  HJ_RETURN_IF_ERROR(callback_status_);
  // The resident bytes below are already charged to the governor at the
  // grace level; keep the internal tables from double-charging them.
  MemoryGovernor::Scope null_scope(nullptr);
  for (auto& p : partitions_) {
    if (p.spilled) {
      HJ_RETURN_IF_ERROR(FlushPending(&p, /*build_side=*/true));
      continue;
    }
    p.table = std::make_unique<JoinHashTable>(build_key_);
    for (RecordBatch& batch : p.build_batches) {
      HJ_RETURN_IF_ERROR(p.table->AddBatch(std::move(batch)));
    }
    p.build_batches.clear();
    p.table->Finalize();
    p.prober = std::make_unique<JoinProber>(
        p.table.get(), build_schema_, build_alias_, probe_schema_,
        probe_alias_, probe_key_, post_join_predicate_, aggregator_,
        metrics_);
  }
  return Status::OK();
}

Status GraceHashJoin::AddProbe(const RecordBatch& batch) {
  if (!build_finished_) {
    return Status::Internal("AddProbe before FinishBuild");
  }
  auto routed =
      RouteRows(batch, probe_key_, options_.num_partitions, kGraceSeed);
  for (uint32_t pi = 0; pi < options_.num_partitions; ++pi) {
    if (routed[pi].empty()) continue;
    Partition& p = partitions_[pi];
    RecordBatch rows = batch.Gather(routed[pi]);
    if (!p.spilled) {
      HJ_RETURN_IF_ERROR(p.prober->ProbeBatch(rows));
      continue;
    }
    for (size_t r = 0; r < rows.num_rows(); ++r) {
      p.probe_pending.AppendRowFrom(rows, r);
    }
    if (p.probe_pending.num_rows() >= kPendingFlushRows) {
      HJ_RETURN_IF_ERROR(FlushPending(&p, /*build_side=*/false));
    }
  }
  return Status::OK();
}

// ------------------------------ ProbeThread -------------------------------

GraceHashJoin::ProbeThread::ProbeThread(GraceHashJoin* parent,
                                        HashAggregator* partial)
    : parent_(parent) {
  probers_.resize(parent_->partitions_.size());
  spill_pending_.reserve(parent_->partitions_.size());
  for (size_t i = 0; i < parent_->partitions_.size(); ++i) {
    Partition& p = parent_->partitions_[i];
    if (!p.spilled && p.table != nullptr) {
      probers_[i] = std::make_unique<JoinProber>(
          p.table.get(), parent_->build_schema_, parent_->build_alias_,
          parent_->probe_schema_, parent_->probe_alias_, parent_->probe_key_,
          parent_->post_join_predicate_, partial, parent_->metrics_);
    }
    spill_pending_.push_back(RecordBatch(parent_->probe_schema_));
  }
}

Status GraceHashJoin::ProbeThread::Probe(const RecordBatch& batch) {
  auto routed = RouteRows(batch, parent_->probe_key_,
                          parent_->options_.num_partitions, kGraceSeed);
  for (uint32_t pi = 0; pi < parent_->options_.num_partitions; ++pi) {
    if (routed[pi].empty()) continue;
    Partition& p = parent_->partitions_[pi];
    RecordBatch rows = batch.Gather(routed[pi]);
    if (!p.spilled) {
      HJ_RETURN_IF_ERROR(probers_[pi]->ProbeBatch(rows));
      continue;
    }
    for (size_t r = 0; r < rows.num_rows(); ++r) {
      spill_pending_[pi].AppendRowFrom(rows, r);
    }
    if (spill_pending_[pi].num_rows() >= kPendingFlushRows) {
      HJ_RETURN_IF_ERROR(
          parent_->spill_->Append(p.probe_file, spill_pending_[pi]));
      spill_pending_[pi] = RecordBatch(parent_->probe_schema_);
    }
  }
  return Status::OK();
}

Status GraceHashJoin::ProbeThread::Flush() {
  for (uint32_t pi = 0; pi < parent_->options_.num_partitions; ++pi) {
    if (spill_pending_[pi].num_rows() == 0) continue;
    HJ_RETURN_IF_ERROR(parent_->spill_->Append(
        parent_->partitions_[pi].probe_file, spill_pending_[pi]));
    spill_pending_[pi] = RecordBatch(parent_->probe_schema_);
  }
  for (auto& prober : probers_) {
    if (prober != nullptr) HJ_RETURN_IF_ERROR(prober->Flush());
  }
  return Status::OK();
}

std::unique_ptr<GraceHashJoin::ProbeThread> GraceHashJoin::MakeProbeThread(
    HashAggregator* partial) {
  HJ_CHECK(build_finished_);
  return std::unique_ptr<ProbeThread>(new ProbeThread(this, partial));
}

// --------------------------- Spilled-pair joins ---------------------------

Status GraceHashJoin::Repartition(SpillArea::FileId src,
                                  const SchemaPtr& schema, size_t key_column,
                                  uint32_t depth,
                                  const std::vector<SpillArea::FileId>& dst) {
  const uint64_t seed = SaltedSeed(depth);
  std::vector<RecordBatch> pending(dst.size(), RecordBatch(schema));
  HJ_RETURN_IF_ERROR(spill_->ForEach(
      src, schema, [&](RecordBatch&& batch) -> Status {
        auto routed = RouteRows(batch, key_column,
                                static_cast<uint32_t>(dst.size()), seed);
        for (size_t i = 0; i < dst.size(); ++i) {
          if (routed[i].empty()) continue;
          RecordBatch rows = batch.Gather(routed[i]);
          for (size_t r = 0; r < rows.num_rows(); ++r) {
            pending[i].AppendRowFrom(rows, r);
          }
          if (pending[i].num_rows() >= kPendingFlushRows) {
            HJ_RETURN_IF_ERROR(spill_->Append(dst[i], pending[i]));
            pending[i] = RecordBatch(schema);
          }
        }
        return Status::OK();
      }));
  for (size_t i = 0; i < dst.size(); ++i) {
    if (pending[i].num_rows() == 0) continue;
    HJ_RETURN_IF_ERROR(spill_->Append(dst[i], pending[i]));
  }
  spill_->Drop(src);
  return Status::OK();
}

Status GraceHashJoin::BlockNestedJoin(SpillArea::FileId build_file,
                                      SpillArea::FileId probe_file) {
  // Budget-sized chunks of the build file, one full probe pass per chunk.
  // Sort-free and distribution-free: this terminates (and stays within
  // roughly one chunk of the budget) even when every build row carries the
  // same join key. Aggregation commutes, so chunk order does not matter.
  size_t start = 0;
  while (true) {
    JoinHashTable table(build_key_);
    uint64_t chunk_bytes = 0;
    size_t idx = 0;
    size_t next_start = start;
    bool overflow = false;
    HJ_RETURN_IF_ERROR(spill_->ForEach(
        build_file, build_schema_, [&](RecordBatch&& batch) -> Status {
          const size_t i = idx++;
          if (i < start || overflow) return Status::OK();
          const uint64_t bytes = batch.ByteSize();
          if (i > start && effective_budget_ != 0 &&
              chunk_bytes + bytes > effective_budget_) {
            overflow = true;  // chunk full; another pass picks this one up
            return Status::OK();
          }
          chunk_bytes += bytes;
          next_start = i + 1;
          return table.AddBatch(std::move(batch));
        }));
    if (next_start == start) break;  // build file exhausted
    table.Finalize();
    JoinProber prober(&table, build_schema_, build_alias_, probe_schema_,
                      probe_alias_, probe_key_, post_join_predicate_,
                      aggregator_, metrics_);
    HJ_RETURN_IF_ERROR(spill_->ForEach(
        probe_file, probe_schema_,
        [&](RecordBatch&& batch) { return prober.ProbeBatch(batch); }));
    HJ_RETURN_IF_ERROR(prober.Flush());
    start = next_start;
    if (!overflow) break;  // consumed through the end of the file
  }
  spill_->Drop(build_file);
  spill_->Drop(probe_file);
  return Status::OK();
}

Status GraceHashJoin::JoinSpilledPair(SpillArea::FileId build_file,
                                      SpillArea::FileId probe_file,
                                      uint32_t depth) {
  const uint64_t build_file_bytes =
      static_cast<uint64_t>(spill_->FileBytes(build_file));
  if (effective_budget_ != 0 && build_file_bytes > effective_budget_) {
    if (depth >= kMaxRepartitionDepth) {
      return BlockNestedJoin(build_file, probe_file);
    }
    if (metrics_ != nullptr) {
      metrics_->Max(metric::kJoinRepartitionDepth,
                    static_cast<int64_t>(depth) + 1);
    }
    std::vector<SpillArea::FileId> sub_build(kRepartitionFanout);
    std::vector<SpillArea::FileId> sub_probe(kRepartitionFanout);
    for (auto& f : sub_build) f = spill_->Create();
    for (auto& f : sub_probe) f = spill_->Create();
    HJ_RETURN_IF_ERROR(
        Repartition(build_file, build_schema_, build_key_, depth + 1,
                    sub_build));
    HJ_RETURN_IF_ERROR(
        Repartition(probe_file, probe_schema_, probe_key_, depth + 1,
                    sub_probe));
    for (uint32_t i = 0; i < kRepartitionFanout; ++i) {
      HJ_RETURN_IF_ERROR(
          JoinSpilledPair(sub_build[i], sub_probe[i], depth + 1));
    }
    return Status::OK();
  }
  JoinHashTable table(build_key_);
  HJ_RETURN_IF_ERROR(spill_->ForEach(
      build_file, build_schema_, [&](RecordBatch&& batch) {
        return table.AddBatch(std::move(batch));
      }));
  table.Finalize();
  JoinProber prober(&table, build_schema_, build_alias_, probe_schema_,
                    probe_alias_, probe_key_, post_join_predicate_,
                    aggregator_, metrics_);
  HJ_RETURN_IF_ERROR(spill_->ForEach(
      probe_file, probe_schema_,
      [&](RecordBatch&& batch) { return prober.ProbeBatch(batch); }));
  HJ_RETURN_IF_ERROR(prober.Flush());
  spill_->Drop(build_file);
  spill_->Drop(probe_file);
  return Status::OK();
}

Status GraceHashJoin::Finish() {
  if (finished_) return Status::OK();
  if (!build_finished_) {
    return Status::Internal("Finish before FinishBuild");
  }
  finished_ = true;
  for (auto& p : partitions_) {
    if (!p.spilled) {
      if (p.prober != nullptr) {
        HJ_RETURN_IF_ERROR(p.prober->Flush());
      }
      continue;
    }
    HJ_RETURN_IF_ERROR(FlushPending(&p, /*build_side=*/false));
    HJ_RETURN_IF_ERROR(JoinSpilledPair(p.build_file, p.probe_file, 0));
  }
  return Status::OK();
}

}  // namespace hybridjoin
