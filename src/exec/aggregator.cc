#include "exec/aggregator.h"

#include <algorithm>
#include <limits>

#include "expr/scalar_functions.h"

namespace hybridjoin {

const char* AggOpName(AggOp op) {
  switch (op) {
    case AggOp::kCountStar:
      return "count";
    case AggOp::kSum:
      return "sum";
    case AggOp::kMin:
      return "min";
    case AggOp::kMax:
      return "max";
  }
  return "unknown";
}

SchemaPtr AggSpec::ResultSchema() const {
  std::vector<Field> fields;
  fields.push_back({"group", DataType::kInt64});
  for (const auto& item : items) {
    fields.push_back({item.result_name, DataType::kInt64});
  }
  return Schema::Make(std::move(fields));
}

Status HashAggregator::Update(const RecordBatch& batch,
                              const std::vector<uint32_t>& sel) {
  if (sel.empty()) return Status::OK();
  HJ_ASSIGN_OR_RETURN(size_t group_col,
                      batch.schema()->IndexOf(spec_.group_column));
  const ColumnVector& gc = batch.column(group_col);

  // Resolve aggregate input columns once per batch.
  std::vector<const ColumnVector*> agg_cols(spec_.items.size(), nullptr);
  for (size_t i = 0; i < spec_.items.size(); ++i) {
    if (spec_.items[i].op == AggOp::kCountStar) continue;
    HJ_ASSIGN_OR_RETURN(size_t c,
                        batch.schema()->IndexOf(spec_.items[i].column));
    agg_cols[i] = &batch.column(c);
  }

  for (uint32_t r : sel) {
    int64_t group = 0;
    if (spec_.extract_group) {
      if (gc.physical_type() != PhysicalType::kString) {
        return Status::InvalidArgument(
            "extract_group requires a string group column");
      }
      group = ExtractGroup(gc.str()[r]);
    } else {
      switch (gc.physical_type()) {
        case PhysicalType::kInt32:
          group = gc.i32()[r];
          break;
        case PhysicalType::kInt64:
          group = gc.i64()[r];
          break;
        default:
          return Status::InvalidArgument(
              "group column must be integer-typed (or use extract_group)");
      }
    }
    HJ_RETURN_IF_ERROR(FoldRow(group, agg_cols, r));
  }
  ChargeNewGroups();
  return Status::OK();
}

Status HashAggregator::FoldRow(
    int64_t group, const std::vector<const ColumnVector*>& cols,
    uint32_t row) {
  State& st = groups_[group];
  if (!st.initialized) {
    st.initialized = true;
    st.acc.resize(spec_.items.size());
    for (size_t i = 0; i < spec_.items.size(); ++i) {
      switch (spec_.items[i].op) {
        case AggOp::kCountStar:
        case AggOp::kSum:
          st.acc[i] = 0;
          break;
        case AggOp::kMin:
          st.acc[i] = std::numeric_limits<int64_t>::max();
          break;
        case AggOp::kMax:
          st.acc[i] = std::numeric_limits<int64_t>::min();
          break;
      }
    }
  }
  for (size_t i = 0; i < spec_.items.size(); ++i) {
    int64_t v = 0;
    if (spec_.items[i].op != AggOp::kCountStar) {
      const ColumnVector* col = cols[i];
      switch (col->physical_type()) {
        case PhysicalType::kInt32:
          v = col->i32()[row];
          break;
        case PhysicalType::kInt64:
          v = col->i64()[row];
          break;
        default:
          return Status::InvalidArgument("aggregate input must be integer");
      }
    }
    switch (spec_.items[i].op) {
      case AggOp::kCountStar:
        st.acc[i] += 1;
        break;
      case AggOp::kSum:
        st.acc[i] += v;
        break;
      case AggOp::kMin:
        st.acc[i] = std::min(st.acc[i], v);
        break;
      case AggOp::kMax:
        st.acc[i] = std::max(st.acc[i], v);
        break;
    }
  }
  return Status::OK();
}

Status HashAggregator::Merge(const RecordBatch& partial) {
  if (partial.num_columns() != spec_.items.size() + 1) {
    return Status::Internal("partial aggregate arity mismatch");
  }
  const auto& groups = partial.column(0).i64();
  for (size_t r = 0; r < partial.num_rows(); ++r) {
    State& st = groups_[groups[r]];
    if (!st.initialized) {
      st.initialized = true;
      st.acc.resize(spec_.items.size());
      for (size_t i = 0; i < spec_.items.size(); ++i) {
        st.acc[i] = partial.column(i + 1).i64()[r];
      }
      continue;
    }
    for (size_t i = 0; i < spec_.items.size(); ++i) {
      const int64_t v = partial.column(i + 1).i64()[r];
      switch (spec_.items[i].op) {
        case AggOp::kCountStar:
        case AggOp::kSum:
          st.acc[i] += v;
          break;
        case AggOp::kMin:
          st.acc[i] = std::min(st.acc[i], v);
          break;
        case AggOp::kMax:
          st.acc[i] = std::max(st.acc[i], v);
          break;
      }
    }
  }
  ChargeNewGroups();
  return Status::OK();
}

RecordBatch HashAggregator::Partial() const {
  RecordBatch out(spec_.ResultSchema());
  std::vector<int64_t> keys;
  keys.reserve(groups_.size());
  for (const auto& [group, st] : groups_) keys.push_back(group);
  std::sort(keys.begin(), keys.end());
  out.Reserve(keys.size());
  auto& group_col = out.mutable_column(0).mutable_i64();
  for (int64_t k : keys) group_col.push_back(k);
  for (size_t i = 0; i < spec_.items.size(); ++i) {
    auto& col = out.mutable_column(i + 1).mutable_i64();
    for (int64_t k : keys) col.push_back(groups_.at(k).acc[i]);
  }
  return out;
}

}  // namespace hybridjoin
