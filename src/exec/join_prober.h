// JoinProber: probe a JoinHashTable with record batches, materialize the
// matches as joined rows (columns renamed "<alias>.<name>"), apply the
// post-join predicate, and fold survivors into a HashAggregator.
//
// This one component is reused by every join algorithm: in JEN workers for
// the HDFS-side joins, in DB workers for the DB-side join, and in the
// single-node reference executor the tests compare against.
//
// The probe is batched: the whole key column goes through
// JoinHashTable::ProbeBatch, and the resulting match list is materialized
// column-at-a-time (one type dispatch per column per chunk, contiguous
// gathers) instead of cell-at-a-time.

#ifndef HYBRIDJOIN_EXEC_JOIN_PROBER_H_
#define HYBRIDJOIN_EXEC_JOIN_PROBER_H_

#include <memory>
#include <string>

#include "common/metrics.h"
#include "exec/aggregator.h"
#include "exec/join_hash_table.h"
#include "expr/predicate.h"

namespace hybridjoin {

struct JoinProberOptions {
  /// Joined rows are buffered and filtered/aggregated in chunks this large.
  size_t output_batch_rows = 4096;
};

/// One-pass hash-join probe + post-join filter + aggregate pipeline.
class JoinProber {
 public:
  /// `build` must already be finalized. `build_alias`/`probe_alias` prefix
  /// the joined schema's column names ("T", "L"). `probe_key_column` is the
  /// join key's index in probe batches. `post_join_predicate` may be null.
  /// `aggregator` is borrowed and receives the surviving joined rows.
  JoinProber(const JoinHashTable* build, SchemaPtr build_schema,
             std::string build_alias, SchemaPtr probe_schema,
             std::string probe_alias, size_t probe_key_column,
             PredicatePtr post_join_predicate, HashAggregator* aggregator,
             Metrics* metrics, JoinProberOptions options = {});

  /// The joined schema (build columns first, then probe columns).
  const SchemaPtr& joined_schema() const { return joined_schema_; }

  /// Probes every row of `batch`; buffers matches and flushes full chunks
  /// through the post-join predicate into the aggregator.
  Status ProbeBatch(const RecordBatch& batch);

  /// Flushes buffered joined rows. Call once after the last ProbeBatch.
  Status Flush();

  /// Joined rows that matched the equi-join (before the post-join filter).
  int64_t join_matches() const { return join_matches_; }
  /// Rows that survived the post-join predicate.
  int64_t output_rows() const { return output_rows_; }

 private:
  /// Per-build-column gather source: the typed data pointer of that column
  /// in every build batch, so the materialize loop indexes raw arrays
  /// without per-row variant dispatch.
  struct GatherColumn {
    PhysicalType type;
    std::vector<const void*> per_batch;  ///< typed data() per build batch
  };

  /// Appends matches_[pos, pos+take) as joined rows onto pending_.
  void MaterializeChunk(const RecordBatch& probe_batch, size_t pos,
                        size_t take);

  const JoinHashTable* build_;
  SchemaPtr probe_schema_;
  size_t probe_key_column_;
  PredicatePtr post_join_predicate_;
  HashAggregator* aggregator_;
  Metrics* metrics_;
  JoinProberOptions options_;

  SchemaPtr joined_schema_;
  size_t build_width_;
  std::vector<GatherColumn> build_sources_;
  RecordBatch pending_;
  std::vector<JoinMatch> matches_;     ///< scratch, reused across batches
  std::vector<uint32_t> probe_rows_;   ///< scratch, reused across chunks
  int64_t join_matches_ = 0;
  int64_t output_rows_ = 0;
};

/// Builds the prefixed joined schema: build fields as "<build_alias>.<name>"
/// followed by probe fields as "<probe_alias>.<name>".
SchemaPtr MakeJoinedSchema(const SchemaPtr& build_schema,
                           const std::string& build_alias,
                           const SchemaPtr& probe_schema,
                           const std::string& probe_alias);

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_EXEC_JOIN_PROBER_H_
