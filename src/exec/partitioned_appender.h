// PartitionedAppender: routes filtered rows into per-destination pending
// batches by a partition function of the join key and hands full batches to
// a sink — the building block of every repartition/shuffle step (JEN
// workers shuffling L', DB workers shipping T' with the agreed hash).

#ifndef HYBRIDJOIN_EXEC_PARTITIONED_APPENDER_H_
#define HYBRIDJOIN_EXEC_PARTITIONED_APPENDER_H_

#include <functional>
#include <vector>

#include "common/result.h"
#include "types/record_batch.h"

namespace hybridjoin {

/// Not thread-safe; one per producer thread.
class PartitionedAppender {
 public:
  using PartitionFn = std::function<uint32_t(int64_t key)>;
  /// Sink receives (partition, full batch). It may block (e.g. on network
  /// throttles) — producers are paced by it.
  using Sink = std::function<Status(uint32_t partition, RecordBatch&& batch)>;

  PartitionedAppender(SchemaPtr schema, uint32_t num_partitions,
                      size_t key_column, PartitionFn partition_fn,
                      size_t flush_rows, Sink sink)
      : schema_(std::move(schema)),
        key_column_(key_column),
        partition_fn_(std::move(partition_fn)),
        flush_rows_(flush_rows),
        sink_(std::move(sink)) {
    pending_.reserve(num_partitions);
    for (uint32_t p = 0; p < num_partitions; ++p) {
      pending_.emplace_back(schema_);
    }
  }

  /// Routes the selected rows of `batch` (whose layout matches `schema`).
  Status Append(const RecordBatch& batch, const std::vector<uint32_t>& sel) {
    const ColumnVector& key_col = batch.column(key_column_);
    for (uint32_t r : sel) {
      const int64_t key = key_col.physical_type() == PhysicalType::kInt32
                              ? key_col.i32()[r]
                              : key_col.i64()[r];
      const uint32_t p = partition_fn_(key);
      pending_[p].AppendRowFrom(batch, r);
      ++routed_rows_;
      if (pending_[p].num_rows() >= flush_rows_) {
        HJ_RETURN_IF_ERROR(sink_(p, std::move(pending_[p])));
        pending_[p] = RecordBatch(schema_);
      }
    }
    return Status::OK();
  }

  /// Flushes every non-empty pending batch.
  Status FlushAll() {
    for (uint32_t p = 0; p < pending_.size(); ++p) {
      if (pending_[p].num_rows() > 0) {
        HJ_RETURN_IF_ERROR(sink_(p, std::move(pending_[p])));
        pending_[p] = RecordBatch(schema_);
      }
    }
    return Status::OK();
  }

  int64_t routed_rows() const { return routed_rows_; }
  const SchemaPtr& schema() const { return schema_; }

 private:
  SchemaPtr schema_;
  size_t key_column_;
  PartitionFn partition_fn_;
  size_t flush_rows_;
  Sink sink_;
  std::vector<RecordBatch> pending_;
  int64_t routed_rows_ = 0;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_EXEC_PARTITIONED_APPENDER_H_
