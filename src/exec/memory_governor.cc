#include "exec/memory_governor.h"

#include <algorithm>

namespace hybridjoin {

uint64_t MemoryGovernor::Reserve(uint64_t bytes) {
  if (bytes == 0) return 0;
  if (TryReserve(bytes)) return 0;

  // Over budget: run spillers, largest resident first, until the shortfall
  // is covered or nobody has anything left to evict. The lock both guards
  // the registry and serializes concurrent spill runs, so two threads under
  // pressure do not both evict (and double-free the budget headroom).
  uint64_t freed_total = 0;
  bool reserved = false;
  {
    std::lock_guard<std::mutex> lock(spillers_mu_);
    while (!(reserved = TryReserve(bytes))) {
      const uint64_t used_now = used_.load(std::memory_order_relaxed);
      const uint64_t want =
          used_now + bytes > budget_ ? used_now + bytes - budget_ : 0;
      // Snapshot (resident, index) and try the largest first.
      std::vector<std::pair<uint64_t, size_t>> order;
      order.reserve(spillers_.size());
      for (size_t i = 0; i < spillers_.size(); ++i) {
        const uint64_t resident = spillers_[i].resident_bytes();
        if (resident > 0) order.emplace_back(resident, i);
      }
      std::sort(order.begin(), order.end(),
                [](const auto& a, const auto& b) { return a.first > b.first; });
      uint64_t freed_this_round = 0;
      for (const auto& [resident, i] : order) {
        freed_this_round += spillers_[i].spill(want);
        if (freed_this_round >= want) break;
      }
      freed_total += freed_this_round;
      if (freed_this_round == 0) break;  // nothing evictable remains
    }
  }

  // Charge unconditionally; whatever still does not fit is overcommit.
  if (!reserved) ForceReserve(bytes);
  return freed_total;
}

uint64_t MemoryGovernor::RegisterSpiller(
    std::function<uint64_t()> resident_bytes, SpillFn spill) {
  std::lock_guard<std::mutex> lock(spillers_mu_);
  const uint64_t token = next_token_++;
  spillers_.push_back({token, std::move(resident_bytes), std::move(spill)});
  return token;
}

void MemoryGovernor::UnregisterSpiller(uint64_t token) {
  std::lock_guard<std::mutex> lock(spillers_mu_);
  for (auto it = spillers_.begin(); it != spillers_.end(); ++it) {
    if (it->token == token) {
      spillers_.erase(it);
      return;
    }
  }
}

}  // namespace hybridjoin
