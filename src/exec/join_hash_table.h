// JoinHashTable: the chained hash table every join variant builds on one
// side and probes with the other. Single-writer build, then frozen and
// probed concurrently.

#ifndef HYBRIDJOIN_EXEC_JOIN_HASH_TABLE_H_
#define HYBRIDJOIN_EXEC_JOIN_HASH_TABLE_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "types/record_batch.h"

namespace hybridjoin {

/// Hash table over an integer join key. Stores whole record batches and
/// indexes rows, so probe matches can copy any payload column.
class JoinHashTable {
 public:
  /// `key_column` is the index of the join key (int32/int64 physical) in
  /// every added batch.
  explicit JoinHashTable(size_t key_column) : key_column_(key_column) {}

  /// Adds a batch (takes ownership). Must not be called after Finalize.
  Status AddBatch(RecordBatch batch);

  /// Builds the bucket directory. Idempotent.
  void Finalize();

  bool finalized() const { return finalized_; }
  size_t num_rows() const { return entries_.size(); }
  const std::vector<RecordBatch>& batches() const { return batches_; }
  size_t key_column() const { return key_column_; }

  /// Invokes fn(batch_index, row_index) for every row whose key equals
  /// `key`. Must be finalized.
  template <typename Fn>
  void ForEachMatch(int64_t key, Fn&& fn) const {
    if (buckets_.empty()) return;
    const uint64_t h = HashInt64(static_cast<uint64_t>(key), kProbeSeed);
    uint32_t e = buckets_[h & bucket_mask_];
    while (e != kNil) {
      const Entry& entry = entries_[e];
      if (entry.key == key) fn(entry.batch, entry.row);
      e = entry.next;
    }
  }

  /// True if any row has this key (early-out point lookup).
  bool Contains(int64_t key) const {
    bool found = false;
    ForEachMatch(key, [&found](uint32_t, uint32_t) { found = true; });
    return found;
  }

 private:
  static constexpr uint32_t kNil = 0xffffffffu;
  static constexpr uint64_t kProbeSeed = 0x7ab1eULL;

  struct Entry {
    int64_t key;
    uint32_t batch;
    uint32_t row;
    uint32_t next;
  };

  size_t key_column_;
  std::vector<RecordBatch> batches_;
  std::vector<Entry> entries_;
  std::vector<uint32_t> buckets_;
  uint64_t bucket_mask_ = 0;
  bool finalized_ = false;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_EXEC_JOIN_HASH_TABLE_H_
