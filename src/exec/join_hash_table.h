// JoinHashTable: the chained hash table every join variant builds on one
// side and probes with the other. Single-writer build, then frozen and
// probed concurrently.

#ifndef HYBRIDJOIN_EXEC_JOIN_HASH_TABLE_H_
#define HYBRIDJOIN_EXEC_JOIN_HASH_TABLE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "types/record_batch.h"

namespace hybridjoin {

/// One probe hit: probe-side row index within the probed batch plus the
/// (batch, row) coordinates of the matching build-side row.
struct JoinMatch {
  uint32_t probe_row;
  uint32_t batch;
  uint32_t row;
};

/// Hash table over an integer join key. Stores whole record batches and
/// indexes rows, so probe matches can copy any payload column.
class JoinHashTable {
 public:
  /// `key_column` is the index of the join key (int32/int64 physical) in
  /// every added batch.
  explicit JoinHashTable(size_t key_column) : key_column_(key_column) {}

  /// Adds a batch (takes ownership). Must not be called after Finalize.
  Status AddBatch(RecordBatch batch);

  /// Builds the bucket directory. Idempotent.
  void Finalize();

  bool finalized() const { return finalized_; }
  size_t num_rows() const { return entries_.size(); }
  const std::vector<RecordBatch>& batches() const { return batches_; }
  size_t key_column() const { return key_column_; }

  // Build-shape diagnostics, valid after Finalize (surfaced as metrics by
  // the drivers; a max chain far above the ~2x-slack load factor flags key
  // skew that chain walks will pay for on every probe).
  size_t num_buckets() const { return buckets_.size(); }
  double load_factor() const {
    return buckets_.empty() ? 0.0
                            : static_cast<double>(entries_.size()) /
                                  static_cast<double>(buckets_.size());
  }
  size_t max_chain_length() const { return max_chain_length_; }

  /// Invokes fn(batch_index, row_index) for every row whose key equals
  /// `key`. Must be finalized.
  template <typename Fn>
  void ForEachMatch(int64_t key, Fn&& fn) const {
    if (buckets_.empty()) return;
    const uint64_t h = HashInt64(static_cast<uint64_t>(key), kProbeSeed);
    uint32_t e = buckets_[h & bucket_mask_];
    while (e != kNil) {
      const Entry& entry = entries_[e];
      if (entry.key == key) fn(entry.batch, entry.row);
      e = entry.next;
    }
  }

  /// True if any row has this key (early-out point lookup: stops at the
  /// first hit instead of walking the rest of the chain).
  bool Contains(int64_t key) const {
    if (buckets_.empty()) return false;
    const uint64_t h = HashInt64(static_cast<uint64_t>(key), kProbeSeed);
    uint32_t e = buckets_[h & bucket_mask_];
    while (e != kNil) {
      const Entry& entry = entries_[e];
      if (entry.key == key) return true;
      e = entry.next;
    }
    return false;
  }

  /// Batched probe kernel: appends one JoinMatch per hit for every key of
  /// the span (probe_row = index within the span), in exactly the order
  /// the scalar ForEachMatch loop would produce — ascending probe row,
  /// chain order within a row. Hashes the whole window first, prefetches
  /// bucket heads, then entries, then walks the chains, so the dependent
  /// loads overlap instead of serializing on cache misses.
  void ProbeBatch(std::span<const int64_t> keys,
                  std::vector<JoinMatch>* out) const;
  void ProbeBatch(std::span<const int32_t> keys,
                  std::vector<JoinMatch>* out) const;

 private:
  static constexpr uint32_t kNil = 0xffffffffu;
  static constexpr uint64_t kProbeSeed = 0x7ab1eULL;

  struct Entry {
    int64_t key;
    uint32_t batch;
    uint32_t row;
    uint32_t next;
  };

  template <typename Key>
  void ProbeBatchImpl(const Key* keys, size_t n,
                      std::vector<JoinMatch>* out) const;

  size_t key_column_;
  std::vector<RecordBatch> batches_;
  std::vector<Entry> entries_;
  std::vector<uint32_t> buckets_;
  uint64_t bucket_mask_ = 0;
  size_t max_chain_length_ = 0;
  bool finalized_ = false;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_EXEC_JOIN_HASH_TABLE_H_
