// JoinHashTable: the chained hash table every join variant builds on one
// side and probes with the other. Single-writer build, then frozen and
// probed concurrently. The table can be key-space partitioned into shards
// (high hash bits pick the shard, low bits the bucket) so the build and the
// bucket-directory finalize parallelize across threads; a one-shard table
// is bit-compatible with the historical unsharded layout.
//
// Probe determinism under sharding: equal keys hash equally, so they land
// in one shard, and within a shard entries keep global insertion order.
// ForEachMatch/ProbeBatch therefore emit matches for any key in exactly the
// order the unsharded table would — the join output is byte-identical for
// every shard count.

#ifndef HYBRIDJOIN_EXEC_JOIN_HASH_TABLE_H_
#define HYBRIDJOIN_EXEC_JOIN_HASH_TABLE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "exec/memory_governor.h"
#include "types/record_batch.h"

namespace hybridjoin {

/// One probe hit: probe-side row index within the probed batch plus the
/// (batch, row) coordinates of the matching build-side row.
struct JoinMatch {
  uint32_t probe_row;
  uint32_t batch;
  uint32_t row;
};

/// Hash table over an integer join key. Stores whole record batches and
/// indexes rows, so probe matches can copy any payload column.
class JoinHashTable {
 public:
  /// `key_column` is the index of the join key (int32/int64 physical) in
  /// every added batch. `num_shards` key-space partitions the entry and
  /// bucket storage (1 = the classic single-partition table); shard choice
  /// never changes probe results, only which internal arrays hold them.
  explicit JoinHashTable(size_t key_column, uint32_t num_shards = 1)
      : key_column_(key_column),
        shards_(num_shards == 0 ? 1 : num_shards) {}

  /// Adds a batch (takes ownership). Must not be called after Finalize.
  Status AddBatch(RecordBatch batch);

  /// Adds a whole batch list, extracting entries on `pool` (nullptr runs
  /// serially). Contiguous batch ranges go to the workers and their
  /// per-shard entry runs are spliced back in range order, so the entry
  /// order — and with it every probe's match order — is identical to
  /// calling AddBatch in sequence. Must not be called after Finalize or
  /// concurrently with other mutations.
  Status AddBatchesParallel(std::vector<RecordBatch> batches,
                            ThreadPool* pool);

  /// Builds every shard's bucket directory serially. Idempotent.
  void Finalize();

  /// Parallel Finalize: one task per shard on `pool` (nullptr falls back to
  /// the serial path). Idempotent.
  Status FinalizeParallel(ThreadPool* pool);

  /// Parallel-finalize building blocks, for callers that want their own
  /// per-shard attribution (tracing spans) around each shard's build:
  /// FinalizeShard is thread-safe across distinct shards; call it for every
  /// shard exactly once, then MarkFinalized.
  void FinalizeShard(uint32_t shard);
  void MarkFinalized();

  bool finalized() const { return finalized_; }
  size_t num_rows() const {
    size_t n = 0;
    for (const Shard& s : shards_) n += s.entries.size();
    return n;
  }
  const std::vector<RecordBatch>& batches() const { return batches_; }
  size_t key_column() const { return key_column_; }

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  size_t shard_rows(uint32_t shard) const {
    return shards_[shard].entries.size();
  }

  // Build-shape diagnostics, valid after Finalize (surfaced as metrics by
  // the drivers; a max chain far above the ~2x-slack load factor flags key
  // skew that chain walks will pay for on every probe).
  size_t num_buckets() const {
    size_t n = 0;
    for (const Shard& s : shards_) n += s.buckets.size();
    return n;
  }
  double load_factor() const {
    const size_t buckets = num_buckets();
    return buckets == 0 ? 0.0
                        : static_cast<double>(num_rows()) /
                              static_cast<double>(buckets);
  }
  size_t max_chain_length() const {
    size_t n = 0;
    for (const Shard& s : shards_) n = std::max(n, s.max_chain_length);
    return n;
  }

  /// Invokes fn(batch_index, row_index) for every row whose key equals
  /// `key`. Must be finalized.
  template <typename Fn>
  void ForEachMatch(int64_t key, Fn&& fn) const {
    const uint64_t h = HashInt64(static_cast<uint64_t>(key), kProbeSeed);
    const Shard& s = shards_[ShardOf(h)];
    if (s.buckets.empty()) return;
    uint32_t e = s.buckets[h & s.bucket_mask];
    while (e != kNil) {
      const Entry& entry = s.entries[e];
      if (entry.key == key) fn(entry.batch, entry.row);
      e = entry.next;
    }
  }

  /// True if any row has this key (early-out point lookup: stops at the
  /// first hit instead of walking the rest of the chain).
  bool Contains(int64_t key) const {
    const uint64_t h = HashInt64(static_cast<uint64_t>(key), kProbeSeed);
    const Shard& s = shards_[ShardOf(h)];
    if (s.buckets.empty()) return false;
    uint32_t e = s.buckets[h & s.bucket_mask];
    while (e != kNil) {
      const Entry& entry = s.entries[e];
      if (entry.key == key) return true;
      e = entry.next;
    }
    return false;
  }

  /// Batched probe kernel: appends one JoinMatch per hit for every key of
  /// the span (probe_row = index within the span), in exactly the order
  /// the scalar ForEachMatch loop would produce — ascending probe row,
  /// chain order within a row. Hashes the whole window first, prefetches
  /// bucket heads, then entries, then walks the chains, so the dependent
  /// loads overlap instead of serializing on cache misses.
  void ProbeBatch(std::span<const int64_t> keys,
                  std::vector<JoinMatch>* out) const;
  void ProbeBatch(std::span<const int32_t> keys,
                  std::vector<JoinMatch>* out) const;

 private:
  static constexpr uint32_t kNil = 0xffffffffu;
  static constexpr uint64_t kProbeSeed = 0x7ab1eULL;

  struct Entry {
    int64_t key;
    uint32_t batch;
    uint32_t row;
    uint32_t next;
  };

  /// One key-space partition: its entries (global insertion order
  /// restricted to the shard) and its bucket directory.
  struct Shard {
    std::vector<Entry> entries;
    std::vector<uint32_t> buckets;
    uint64_t bucket_mask = 0;
    size_t max_chain_length = 0;
  };

  /// Shard selection from the hash's high 32 bits (the bucket index uses
  /// the low bits, so the two choices stay independent); the multiply-shift
  /// maps [0, 2^32) uniformly onto [0, num_shards) without a division.
  uint32_t ShardOf(uint64_t h) const {
    return static_cast<uint32_t>(((h >> 32) * shards_.size()) >> 32);
  }

  /// Appends one batch's entries to the per-shard vectors of `out` (sized
  /// num_shards); `batch_index` is the batch's index in batches_.
  Status ExtractEntries(const RecordBatch& batch, uint32_t batch_index,
                        std::vector<std::vector<Entry>>* out) const;

  template <typename Key>
  void ProbeBatchImpl(const Key* keys, size_t n,
                      std::vector<JoinMatch>* out) const;

  size_t key_column_;
  std::vector<RecordBatch> batches_;
  std::vector<Shard> shards_;
  bool finalized_ = false;
  /// Charges retained batches + entries (and, at finalize, the bucket
  /// directories) against the thread-local MemoryGovernor captured at
  /// construction; released wholesale on destruction. Grown only from the
  /// single-writer build path, never from shard-parallel workers.
  MemoryReservation reservation_;
};

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_EXEC_JOIN_HASH_TABLE_H_
