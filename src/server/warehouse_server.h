// WarehouseServer: a long-lived multi-query front end over one
// HybridWarehouse. Clients open sessions, submit SQL, and get back a
// QueryTicket + QueryResult; between them and the substrate sit a
// per-session TokenBucket rate limit and the AdmissionController's
// concurrency gate, so N clients can hammer one warehouse without
// oversubscribing it — excess queries queue, then shed, never crash.
//
// Concurrency contract with the substrate: the join drivers isolate scoped
// metrics per query id (QueryScope), the catalogs take reader-writer locks
// (DDL through the HybridWarehouse facade interleaves safely with queries),
// the exec pool fair-shares across query lanes, and network tags are
// allocated per execution — so Execute() is safe to call from any number of
// client threads concurrently.

#ifndef HYBRIDJOIN_SERVER_WAREHOUSE_SERVER_H_
#define HYBRIDJOIN_SERVER_WAREHOUSE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/token_bucket.h"
#include "hybrid/warehouse.h"
#include "obs/json.h"
#include "obs/metrics_http.h"
#include "obs/query_registry.h"
#include "obs/timeseries.h"
#include "server/admission_controller.h"
#include "server/query_context.h"

namespace hybridjoin {
namespace server {

/// The server-lifetime observability plane: what of it to switch on.
/// Everything defaults off — a server with the default config spawns no
/// background threads and writes no files.
struct ObservabilityConfig {
  /// Serve GET /metrics (Prometheus text) on 127.0.0.1:metrics_http_port.
  bool metrics_http = false;
  /// 0 = ephemeral; WarehouseServer::metrics_port() reports the bound one.
  uint16_t metrics_http_port = 0;
  /// Periodically rewrite this file with the Prometheus exposition — the
  /// scrapeless fallback for batch runs. "" disables.
  std::string metrics_out;
  /// Background sampling interval for the time-series rings (and the
  /// metrics_out rewrite cadence).
  std::chrono::milliseconds sample_interval{1000};
  /// JSON-lines lifecycle event log (submit/admit/shed/phase/pivot/spill/
  /// kill/finish). "" disables.
  std::string event_log_path;
  /// Directory for slow-query profiles: queries slower than
  /// slow_query_seconds persist their full EXPLAIN ANALYZE JSON here.
  std::string slow_query_dir;
  /// 0 disables the slow-query log.
  double slow_query_seconds = 0.0;
};

struct ServerConfig {
  AdmissionConfig admission;
  /// Per-session sustained query rate (queries/second); 0 = unlimited.
  uint32_t session_queries_per_second = 0;
  /// Instantaneous burst (queries) per session; 0 = one query.
  uint32_t session_burst_queries = 0;
  /// How long Execute() may wait on the session rate limiter before the
  /// query is shed with kResourceExhausted.
  std::chrono::milliseconds rate_limit_wait{0};
  /// Default quotas stamped into every query's QueryContext; a session can
  /// tighten them per call via Execute()'s quotas argument.
  QueryQuotas default_quotas;
  ObservabilityConfig observability;
};

/// Server-wide counters — a point-in-time snapshot view. The same counts
/// are mirrored into the engine's Metrics registry under server.* (see
/// common/metrics.h), which is what the scrape endpoint and the
/// time-series sampler read; this struct stays the programmatic view.
struct ServerStats {
  AdmissionStats admission;
  int64_t executed = 0;        ///< queries that ran to a result (ok or not)
  int64_t rate_limited = 0;    ///< shed by the session rate limit
  int64_t quota_rejected = 0;  ///< rejected by the memory quota
  int64_t killed = 0;          ///< KILLed while in flight
  size_t open_sessions = 0;
  uint32_t queries_in_flight = 0;  ///< executing right now
};

class WarehouseServer {
 public:
  /// Minimum usable memory quota: below this there is not even room for a
  /// single record batch of operator state, so the query is rejected with
  /// kResourceExhausted before admission instead of thrashing the spiller.
  /// At or above it, any working set completes by spilling.
  static constexpr uint64_t kMinQuotaBytes = 64 * 1024;

  /// The warehouse must outlive the server. The server does not own it:
  /// loading data and DDL keep going through the HybridWarehouse facade
  /// (concurrently with queries — the catalogs take RW locks).
  WarehouseServer(HybridWarehouse* warehouse, const ServerConfig& config);
  ~WarehouseServer();

  WarehouseServer(const WarehouseServer&) = delete;
  WarehouseServer& operator=(const WarehouseServer&) = delete;

  /// Opens a session and returns its id. Each session carries its own
  /// TokenBucket when a per-session rate is configured.
  uint64_t OpenSession();

  /// Closes a session; subsequent Execute() calls on it fail kNotFound.
  Status CloseSession(uint64_t session_id);

  /// Parses and runs one SQL statement on behalf of `session_id`, letting
  /// the advisor pick the algorithm. Blocks through rate limiting and
  /// admission; thread-safe, any number of concurrent callers.
  /// Errors: kNotFound (unknown session), kResourceExhausted (rate-limited,
  /// shed by admission, or over memory quota), kUnavailable (shut down),
  /// plus anything the engine itself returns.
  Result<ServerResult> Execute(uint64_t session_id, const std::string& sql);

  /// Execute with per-call quotas overriding the server defaults.
  Result<ServerResult> Execute(uint64_t session_id, const std::string& sql,
                               const QueryQuotas& quotas);

  /// Front-end entry point that also understands the administrative
  /// statements (SHOW PROCESSLIST / SHOW METRICS / SHOW SESSIONS /
  /// KILL <query_id>): admin statements bypass rate limiting and admission
  /// and return their answer in ServerResult::admin_text; anything else
  /// routes to Execute().
  Result<ServerResult> ExecuteStatement(uint64_t session_id,
                                        const std::string& sql);

  /// Requests cooperative cancellation of an in-flight query. The query
  /// unwinds at its next morsel / exchange / receive boundary and its
  /// Execute() call returns kCancelled. kNotFound when no such query is in
  /// flight.
  Status Kill(uint64_t query_id);

  /// Live rows for every in-flight query (the SHOW PROCESSLIST data).
  std::vector<obs::LiveQuery> ProcessList() const;
  std::string ProcessListText() const;

  /// Prometheus text exposition of the engine's metrics registry — the
  /// same bytes GET /metrics serves.
  std::string MetricsText();

  /// One line per open session (SHOW SESSIONS).
  std::string SessionsText() const;

  /// The bound scrape port when ObservabilityConfig::metrics_http is on
  /// (resolves port 0 to the ephemeral pick), 0 otherwise.
  uint16_t metrics_port() const;

  /// The time-series sampler, nullptr when background sampling is off.
  obs::MetricsSampler* sampler() { return sampler_.get(); }

  /// Sheds all waiting queries and rejects new ones. Running queries
  /// finish. Stops the observability plane (sampler, scrape endpoint,
  /// event log) with bounded joins. Idempotent; the destructor calls it.
  void Shutdown();

  ServerStats stats() const;
  const ServerConfig& config() const { return config_; }
  AdmissionController& admission() { return admission_; }

 private:
  struct Session {
    uint64_t id = 0;
    std::unique_ptr<TokenBucket> rate;  ///< null when unlimited
    std::atomic<int64_t> executed{0};   ///< queries run on this session
  };

  /// nullptr when the session does not exist. The returned pointer stays
  /// valid until CloseSession (map nodes are stable; sessions are only
  /// erased, never mutated after creation).
  std::shared_ptr<Session> FindSession(uint64_t session_id) const;

  /// The engine metrics registry the server.* mirror writes into.
  Metrics& engine_metrics() const;

  /// Emits one lifecycle event when the event log is open.
  void Emit(const char* event, uint64_t query_id,
            obs::JsonValue fields) const;

  HybridWarehouse* warehouse_;
  const ServerConfig config_;
  AdmissionController admission_;

  mutable std::mutex sessions_mu_;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
  std::atomic<uint64_t> session_seq_{0};
  std::atomic<uint64_t> ticket_seq_{0};
  std::atomic<int64_t> executed_{0};
  std::atomic<int64_t> rate_limited_{0};
  std::atomic<int64_t> quota_rejected_{0};
  std::atomic<int64_t> killed_{0};
  std::atomic<uint32_t> in_flight_{0};
  std::atomic<bool> shutdown_{false};

  // Observability plane (all optional; constructed per config, torn down
  // with bounded joins in Shutdown).
  std::unique_ptr<obs::MetricsSampler> sampler_;
  std::unique_ptr<obs::MetricsHttpServer> http_;
  bool owns_event_log_ = false;  ///< this server opened the global log
};

}  // namespace server
}  // namespace hybridjoin

#endif  // HYBRIDJOIN_SERVER_WAREHOUSE_SERVER_H_
