// AdmissionController: bounds how many queries execute concurrently on one
// warehouse substrate. Up to `max_concurrent_queries` run at once; excess
// arrivals wait in a bounded BlockingQueue of waiters with a deadline and
// are shed with kResourceExhausted when either the queue is full past the
// deadline or their turn does not come in time. Admission is FIFO — an
// arrival never barges past queued waiters even when a slot is free.

#ifndef HYBRIDJOIN_SERVER_ADMISSION_CONTROLLER_H_
#define HYBRIDJOIN_SERVER_ADMISSION_CONTROLLER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>

#include "common/blocking_queue.h"
#include "common/result.h"

namespace hybridjoin {
namespace server {

struct AdmissionConfig {
  /// Queries executing at once; arrivals beyond this wait.
  uint32_t max_concurrent_queries = 4;
  /// Bounded wait queue: arrivals beyond running + queued block for the
  /// remaining deadline trying to enter the queue, then are shed.
  size_t max_queued = 16;
  /// Total time an arrival may spend waiting for admission (entering the
  /// queue + waiting for its turn) before it is shed.
  std::chrono::milliseconds queue_timeout{2000};
};

/// Counters for observability and the concurrency bench.
struct AdmissionStats {
  int64_t admitted = 0;        ///< total queries granted a slot
  int64_t admitted_queued = 0; ///< of those, how many had to queue first
  int64_t shed = 0;            ///< timed out waiting (kResourceExhausted)
  int64_t rejected_closed = 0; ///< arrived after Close() (kUnavailable)
  uint32_t running = 0;        ///< slots held right now
  size_t queued_now = 0;       ///< waiters in the queue right now
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);
  ~AdmissionController();

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// RAII execution slot: releasing it (destruction) hands the slot to the
  /// longest-waiting queued query. Move-only.
  class Slot {
   public:
    Slot() = default;
    Slot(Slot&& other) noexcept { *this = std::move(other); }
    Slot& operator=(Slot&& other) noexcept {
      Release();
      controller_ = other.controller_;
      queued_ = other.queued_;
      queue_wait_us_ = other.queue_wait_us_;
      other.controller_ = nullptr;
      return *this;
    }
    ~Slot() { Release(); }

    bool held() const { return controller_ != nullptr; }
    bool queued() const { return queued_; }
    int64_t queue_wait_us() const { return queue_wait_us_; }

    /// Early release (idempotent; destruction does the same).
    void Release();

   private:
    friend class AdmissionController;
    Slot(AdmissionController* controller, bool queued, int64_t wait_us)
        : controller_(controller), queued_(queued), queue_wait_us_(wait_us) {}

    AdmissionController* controller_ = nullptr;
    bool queued_ = false;
    int64_t queue_wait_us_ = 0;
  };

  /// Blocks until a slot is granted or the configured deadline passes.
  /// Errors: kResourceExhausted (shed on deadline — queue full or turn
  /// never came), kUnavailable (controller closed).
  Result<Slot> Admit();

  /// Sheds every waiter with kUnavailable and rejects future Admit calls.
  /// Slots already granted stay valid until released. Idempotent.
  void Close();

  AdmissionStats stats() const;
  const AdmissionConfig& config() const { return config_; }

 private:
  struct Waiter {
    std::mutex mu;
    std::condition_variable cv;
    bool granted = false;
    bool closed = false;
    bool abandoned = false;  ///< waiter gave up; grantor must skip it
  };

  /// Grants free slots to queued waiters (FIFO), skipping abandoned ones.
  void Pump();
  void Release();

  const AdmissionConfig config_;
  BlockingQueue<std::shared_ptr<Waiter>> waiters_;

  mutable std::mutex mu_;
  uint32_t running_ = 0;
  bool closed_ = false;
  int64_t admitted_ = 0;
  int64_t admitted_queued_ = 0;
  int64_t shed_ = 0;
  int64_t rejected_closed_ = 0;
};

}  // namespace server
}  // namespace hybridjoin

#endif  // HYBRIDJOIN_SERVER_ADMISSION_CONTROLLER_H_
