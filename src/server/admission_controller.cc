#include "server/admission_controller.h"

#include <algorithm>

namespace hybridjoin {
namespace server {

namespace {
using Clock = std::chrono::steady_clock;

int64_t ElapsedUs(Clock::time_point since) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               since)
      .count();
}
}  // namespace

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config), waiters_(std::max<size_t>(config.max_queued, 1)) {}

AdmissionController::~AdmissionController() { Close(); }

void AdmissionController::Slot::Release() {
  if (controller_ == nullptr) return;
  AdmissionController* c = controller_;
  controller_ = nullptr;
  c->Release();
}

Result<AdmissionController::Slot> AdmissionController::Admit() {
  const auto start = Clock::now();
  const auto deadline = start + config_.queue_timeout;

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) {
      ++rejected_closed_;
      return Status::Unavailable("warehouse server is shutting down");
    }
    // Fast path only when nobody is queued: FIFO, no barging.
    if (running_ < config_.max_concurrent_queries && waiters_.size() == 0) {
      ++running_;
      ++admitted_;
      return Slot(this, /*queued=*/false, /*wait_us=*/0);
    }
  }

  // Slow path: enter the bounded wait queue (itself deadline-bounded — a
  // full queue that stays full past the deadline sheds the query), then
  // wait for a grant.
  auto waiter = std::make_shared<Waiter>();
  auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (remaining <= std::chrono::milliseconds::zero()) {
    remaining = std::chrono::milliseconds(1);
  }
  bool timed_out = false;
  if (!waiters_.PushWithDeadline(waiter, remaining, &timed_out)) {
    std::lock_guard<std::mutex> lock(mu_);
    if (timed_out) {
      ++shed_;
      return Status::ResourceExhausted(
          "admission queue full past deadline; query shed");
    }
    ++rejected_closed_;
    return Status::Unavailable("warehouse server is shutting down");
  }

  // A slot may already be free (released between our fast-path check and
  // the push); pump so the queue never deadlocks on a quiet server.
  Pump();

  bool granted = false;
  bool closed = false;
  {
    std::unique_lock<std::mutex> wlock(waiter->mu);
    waiter->cv.wait_until(wlock, deadline, [&] {
      return waiter->granted || waiter->closed;
    });
    granted = waiter->granted;
    closed = waiter->closed;
    if (!granted && !closed) waiter->abandoned = true;
  }
  // waiter->mu is released before mu_ is taken: Pump() locks mu_ then
  // waiter->mu, so holding them in the opposite order here would deadlock.
  if (granted) {
    const int64_t wait_us = ElapsedUs(start);
    std::lock_guard<std::mutex> lock(mu_);
    ++admitted_;
    ++admitted_queued_;
    return Slot(this, /*queued=*/true, wait_us);
  }
  if (closed) {
    std::lock_guard<std::mutex> lock(mu_);
    ++rejected_closed_;
    return Status::Unavailable("warehouse server is shutting down");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++shed_;
  }
  return Status::ResourceExhausted(
      "admission deadline exceeded with " +
      std::to_string(config_.max_concurrent_queries) +
      " queries running; query shed");
}

void AdmissionController::Pump() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!closed_ && running_ < config_.max_concurrent_queries) {
    std::optional<std::shared_ptr<Waiter>> w = waiters_.TryPop();
    if (!w.has_value()) break;
    std::lock_guard<std::mutex> wlock((*w)->mu);
    if ((*w)->abandoned) continue;  // gave up; its slot goes to the next
    (*w)->granted = true;
    ++running_;
    (*w)->cv.notify_all();
  }
}

void AdmissionController::Release() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    --running_;
  }
  Pump();
}

void AdmissionController::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
  }
  waiters_.Close();
  // Drain queued waiters and wake them with "closed".
  while (std::optional<std::shared_ptr<Waiter>> w = waiters_.TryPop()) {
    std::lock_guard<std::mutex> wlock((*w)->mu);
    (*w)->closed = true;
    (*w)->cv.notify_all();
  }
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  AdmissionStats s;
  s.admitted = admitted_;
  s.admitted_queued = admitted_queued_;
  s.shed = shed_;
  s.rejected_closed = rejected_closed_;
  s.running = running_;
  s.queued_now = waiters_.size();
  return s;
}

}  // namespace server
}  // namespace hybridjoin
