// QueryContext / QueryTicket: per-query identity and resource contract for
// the multi-query warehouse server. Admission control hands every admitted
// query a context carrying its ids and quotas; the ticket is the caller's
// receipt — what ran, under which session, how long it waited in the
// admission queue, and which plan the advisor picked.

#ifndef HYBRIDJOIN_SERVER_QUERY_CONTEXT_H_
#define HYBRIDJOIN_SERVER_QUERY_CONTEXT_H_

#include <cstdint>
#include <string>

#include "hybrid/report.h"

namespace hybridjoin {
namespace server {

/// Per-query resource quotas, the contract admission control enforces
/// (motivated by the dynamic-hybrid-hash-join literature: a query promises
/// a bounded build-side footprint and the server holds it to that).
struct QueryQuotas {
  /// Per-query memory budget. Seeds the execution's MemoryGovernor
  /// (src/exec/memory_governor.h): operator state charges against it and
  /// the grace hash join spills partitions to stay inside it, so a query
  /// whose working set exceeds the quota completes by spilling rather than
  /// being rejected. Quotas below WarehouseServer::kMinQuotaBytes are
  /// rejected with kResourceExhausted before admission. 0 = unlimited.
  uint64_t memory_bytes = 0;
  /// Advisory exec-pool share (threads) for this query's morsel work. The
  /// shared pool fair-shares across query lanes regardless; 0 = inherit an
  /// equal share.
  uint32_t exec_threads = 0;
};

/// Everything one execution carries through the server: identity (session,
/// ticket, substrate query id) plus its quotas. The substrate query id is
/// allocated by the engine when the join driver starts and copied back here
/// so profile JSONs and tickets can be joined on it.
struct QueryContext {
  uint64_t session_id = 0;
  uint64_t ticket_id = 0;   ///< server-wide monotone, assigned at submit
  uint64_t query_id = 0;    ///< engine id; 0 until the driver has run
  QueryQuotas quotas;
};

/// The caller's receipt for one Execute() call.
struct QueryTicket {
  uint64_t session_id = 0;
  uint64_t ticket_id = 0;
  uint64_t query_id = 0;          ///< engine id stamped into the profile
  bool queued = false;            ///< waited in the admission queue
  int64_t queue_wait_us = 0;      ///< time spent waiting for admission
  JoinAlgorithm algorithm = JoinAlgorithm::kZigzag;  ///< advisor's pick
};

/// One Execute() result: the receipt plus the query's rows and report.
/// Administrative statements (SHOW PROCESSLIST / SHOW METRICS / SHOW
/// SESSIONS / KILL) answered by ExecuteStatement carry their rendered
/// answer in admin_text and leave the query fields defaulted.
struct ServerResult {
  QueryTicket ticket;
  QueryResult result;
  std::string admin_text;
};

}  // namespace server
}  // namespace hybridjoin

#endif  // HYBRIDJOIN_SERVER_QUERY_CONTEXT_H_
