#include "server/warehouse_server.h"

#include <algorithm>
#include <utility>

#include "hybrid/advisor.h"

namespace hybridjoin {
namespace server {

WarehouseServer::WarehouseServer(HybridWarehouse* warehouse,
                                 const ServerConfig& config)
    : warehouse_(warehouse), config_(config), admission_(config.admission) {}

WarehouseServer::~WarehouseServer() { Shutdown(); }

uint64_t WarehouseServer::OpenSession() {
  auto session = std::make_shared<Session>();
  session->id = session_seq_.fetch_add(1) + 1;
  if (config_.session_queries_per_second > 0) {
    // TokenBucket counts "bytes"; here one token is one query, so the burst
    // must be set explicitly (the byte-oriented default of 64 KiB would
    // disable the limit for any realistic stream).
    session->rate = std::make_unique<TokenBucket>(
        config_.session_queries_per_second,
        std::max<uint32_t>(config_.session_burst_queries, 1));
  }
  std::lock_guard<std::mutex> lock(sessions_mu_);
  sessions_[session->id] = session;
  return session->id;
}

Status WarehouseServer::CloseSession(uint64_t session_id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (sessions_.erase(session_id) == 0) {
    return Status::NotFound("session " + std::to_string(session_id) +
                            " does not exist");
  }
  return Status::OK();
}

std::shared_ptr<WarehouseServer::Session> WarehouseServer::FindSession(
    uint64_t session_id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : it->second;
}

Result<ServerResult> WarehouseServer::Execute(uint64_t session_id,
                                              const std::string& sql) {
  return Execute(session_id, sql, config_.default_quotas);
}

Result<ServerResult> WarehouseServer::Execute(uint64_t session_id,
                                              const std::string& sql,
                                              const QueryQuotas& quotas) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::Unavailable("warehouse server is shutting down");
  }
  std::shared_ptr<Session> session = FindSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("session " + std::to_string(session_id) +
                            " does not exist");
  }

  QueryContext qctx;
  qctx.session_id = session_id;
  qctx.ticket_id = ticket_seq_.fetch_add(1) + 1;
  qctx.quotas = quotas;

  // 1. Session rate limit: one token per query, shed when starved past the
  //    configured wait.
  if (session->rate != nullptr &&
      !session->rate->TryAcquireFor(1, config_.rate_limit_wait)) {
    rate_limited_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "session " + std::to_string(session_id) + " over its query rate");
  }

  // 2. Parse + quota check before taking an execution slot. Since the
  //    grace join spills to stay inside any budget the working set fits
  //    in, an over-estimate no longer rejects the query — it runs and
  //    spills. Only quotas below the minimum runway (not enough room for
  //    a single batch of operator state) are rejected outright.
  HJ_ASSIGN_OR_RETURN(HybridQuery query, warehouse_->ParseSql(sql));
  if (qctx.quotas.memory_bytes > 0 &&
      qctx.quotas.memory_bytes < kMinQuotaBytes) {
    quota_rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "query memory quota (" + std::to_string(qctx.quotas.memory_bytes) +
        " bytes) is below the minimum runway (" +
        std::to_string(kMinQuotaBytes) + " bytes)");
  }

  // 3. Admission: bounded concurrency, queue-then-shed.
  HJ_ASSIGN_OR_RETURN(AdmissionController::Slot slot, admission_.Admit());

  // 4. Execute while holding the slot. The engine allocates the substrate
  //    query id inside the driver; copy it into the ticket from the
  //    assembled profile.
  //    The memory quota seeds the execution's MemoryGovernor: joins spill
  //    partitions to honor it instead of failing mid-flight.
  Advice advice;
  Result<QueryResult> result =
      warehouse_->ExecuteAuto(query, &advice, qctx.quotas.memory_bytes);
  executed_.fetch_add(1, std::memory_order_relaxed);
  HJ_RETURN_IF_ERROR(result.status());

  ServerResult out;
  out.ticket.session_id = qctx.session_id;
  out.ticket.ticket_id = qctx.ticket_id;
  out.ticket.query_id = result.value().report.profile.query_id;
  out.ticket.queued = slot.queued();
  out.ticket.queue_wait_us = slot.queue_wait_us();
  out.ticket.algorithm = advice.algorithm;
  out.result = std::move(result).value();
  return out;
}

void WarehouseServer::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  admission_.Close();
}

ServerStats WarehouseServer::stats() const {
  ServerStats s;
  s.admission = admission_.stats();
  s.executed = executed_.load(std::memory_order_relaxed);
  s.rate_limited = rate_limited_.load(std::memory_order_relaxed);
  s.quota_rejected = quota_rejected_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    s.open_sessions = sessions_.size();
  }
  return s;
}

}  // namespace server
}  // namespace hybridjoin
