#include "server/warehouse_server.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "hybrid/advisor.h"
#include "obs/event_log.h"
#include "obs/promtext.h"
#include "sql/parser.h"

namespace hybridjoin {
namespace server {

WarehouseServer::WarehouseServer(HybridWarehouse* warehouse,
                                 const ServerConfig& config)
    : warehouse_(warehouse), config_(config), admission_(config.admission) {
  const ObservabilityConfig& obs_cfg = config_.observability;
  if (!obs_cfg.event_log_path.empty()) {
    const Status opened =
        obs::EventLog::Global().Open(obs_cfg.event_log_path);
    owns_event_log_ = opened.ok();
  }
  if (!obs_cfg.slow_query_dir.empty()) {
    // Best effort: an existing directory (EEXIST) is fine, and a failed
    // create only means profile writes fail later and no slow_query event
    // is emitted.
    ::mkdir(obs_cfg.slow_query_dir.c_str(), 0755);
  }
  if (obs_cfg.metrics_http || !obs_cfg.metrics_out.empty()) {
    obs::TimeseriesConfig ts;
    ts.sample_interval = obs_cfg.sample_interval;
    sampler_ = std::make_unique<obs::MetricsSampler>(&engine_metrics(), ts);
    if (!obs_cfg.metrics_out.empty()) {
      const std::string path = obs_cfg.metrics_out;
      sampler_->set_on_sample([this, path] {
        // Rewrite-in-place each tick: readers of the fallback file always
        // see a recent complete exposition (fopen("w") truncates, and the
        // write is one buffered burst + close).
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) return;
        const std::string text = MetricsText();
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
      });
    }
    sampler_->Start();
  }
  if (obs_cfg.metrics_http) {
    http_ = std::make_unique<obs::MetricsHttpServer>(
        obs_cfg.metrics_http_port,
        [this](const std::string& path, std::string* body) {
          if (path != "/metrics") return false;
          *body = MetricsText();
          return true;
        });
    const Status started = http_->Start();
    if (!started.ok()) http_.reset();
  }
}

WarehouseServer::~WarehouseServer() { Shutdown(); }

Metrics& WarehouseServer::engine_metrics() const {
  return warehouse_->context().metrics();
}

void WarehouseServer::Emit(const char* event, uint64_t query_id,
                           obs::JsonValue fields) const {
  if (!obs::EventLog::Global().enabled()) return;
  obs::EventLog::Global().Emit(event, query_id, std::move(fields));
}

uint64_t WarehouseServer::OpenSession() {
  auto session = std::make_shared<Session>();
  session->id = session_seq_.fetch_add(1) + 1;
  if (config_.session_queries_per_second > 0) {
    // TokenBucket counts "bytes"; here one token is one query, so the burst
    // must be set explicitly (the byte-oriented default of 64 KiB would
    // disable the limit for any realistic stream).
    session->rate = std::make_unique<TokenBucket>(
        config_.session_queries_per_second,
        std::max<uint32_t>(config_.session_burst_queries, 1));
  }
  size_t open = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_[session->id] = session;
    open = sessions_.size();
  }
  engine_metrics().Set(metric::kServerOpenSessions,
                       static_cast<int64_t>(open));
  return session->id;
}

Status WarehouseServer::CloseSession(uint64_t session_id) {
  size_t open = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    if (sessions_.erase(session_id) == 0) {
      return Status::NotFound("session " + std::to_string(session_id) +
                              " does not exist");
    }
    open = sessions_.size();
  }
  engine_metrics().Set(metric::kServerOpenSessions,
                       static_cast<int64_t>(open));
  return Status::OK();
}

std::shared_ptr<WarehouseServer::Session> WarehouseServer::FindSession(
    uint64_t session_id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : it->second;
}

Result<ServerResult> WarehouseServer::Execute(uint64_t session_id,
                                              const std::string& sql) {
  return Execute(session_id, sql, config_.default_quotas);
}

Result<ServerResult> WarehouseServer::Execute(uint64_t session_id,
                                              const std::string& sql,
                                              const QueryQuotas& quotas) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::Unavailable("warehouse server is shutting down");
  }
  std::shared_ptr<Session> session = FindSession(session_id);
  if (session == nullptr) {
    return Status::NotFound("session " + std::to_string(session_id) +
                            " does not exist");
  }

  QueryContext qctx;
  qctx.session_id = session_id;
  qctx.ticket_id = ticket_seq_.fetch_add(1) + 1;
  qctx.quotas = quotas;

  Metrics& metrics = engine_metrics();
  const auto ticket_fields = [&qctx] {
    auto fields = obs::JsonValue::Object();
    fields.Set("session_id", obs::JsonValue::Int(
                                 static_cast<int64_t>(qctx.session_id)));
    fields.Set("ticket_id",
               obs::JsonValue::Int(static_cast<int64_t>(qctx.ticket_id)));
    return fields;
  };
  Emit("submit", 0, ticket_fields());

  // 1. Session rate limit: one token per query, shed when starved past the
  //    configured wait.
  if (session->rate != nullptr &&
      !session->rate->TryAcquireFor(1, config_.rate_limit_wait)) {
    rate_limited_.fetch_add(1, std::memory_order_relaxed);
    metrics.Add(metric::kServerQueriesRateLimited, 1);
    auto fields = ticket_fields();
    fields.Set("reason", obs::JsonValue::Str("rate_limit"));
    Emit("shed", 0, std::move(fields));
    return Status::ResourceExhausted(
        "session " + std::to_string(session_id) + " over its query rate");
  }

  // 2. Parse + quota check before taking an execution slot. Since the
  //    grace join spills to stay inside any budget the working set fits
  //    in, an over-estimate no longer rejects the query — it runs and
  //    spills. Only quotas below the minimum runway (not enough room for
  //    a single batch of operator state) are rejected outright.
  HJ_ASSIGN_OR_RETURN(HybridQuery query, warehouse_->ParseSql(sql));
  if (qctx.quotas.memory_bytes > 0 &&
      qctx.quotas.memory_bytes < kMinQuotaBytes) {
    quota_rejected_.fetch_add(1, std::memory_order_relaxed);
    metrics.Add(metric::kServerQueriesQuotaRejected, 1);
    auto fields = ticket_fields();
    fields.Set("reason", obs::JsonValue::Str("quota"));
    Emit("shed", 0, std::move(fields));
    return Status::ResourceExhausted(
        "query memory quota (" + std::to_string(qctx.quotas.memory_bytes) +
        " bytes) is below the minimum runway (" +
        std::to_string(kMinQuotaBytes) + " bytes)");
  }

  // 3. Admission: bounded concurrency, queue-then-shed.
  Result<AdmissionController::Slot> admitted = admission_.Admit();
  if (!admitted.ok()) {
    metrics.Add(metric::kServerQueriesShed, 1);
    auto fields = ticket_fields();
    fields.Set("reason", obs::JsonValue::Str("admission"));
    Emit("shed", 0, std::move(fields));
    return admitted.status();
  }
  AdmissionController::Slot slot = std::move(admitted).value();
  {
    auto fields = ticket_fields();
    fields.Set("queued", obs::JsonValue::Bool(slot.queued()));
    fields.Set("queue_wait_us", obs::JsonValue::Int(slot.queue_wait_us()));
    Emit("admit", 0, std::move(fields));
  }

  // 4. Execute while holding the slot. The engine allocates the substrate
  //    query id inside the driver; copy it into the ticket from the
  //    assembled profile. SubmissionScope hands the driver this query's
  //    session/ticket/SQL so the live process list can attribute it.
  //    The memory quota seeds the execution's MemoryGovernor: joins spill
  //    partitions to honor it instead of failing mid-flight.
  metrics.Set(metric::kServerQueriesInFlight,
              static_cast<int64_t>(in_flight_.fetch_add(1) + 1));
  Advice advice;
  Result<QueryResult> result = [&] {
    obs::SubmissionScope submission(qctx.session_id, qctx.ticket_id, sql);
    return warehouse_->ExecuteAuto(query, &advice,
                                   qctx.quotas.memory_bytes);
  }();
  metrics.Set(metric::kServerQueriesInFlight,
              static_cast<int64_t>(in_flight_.fetch_sub(1) - 1));
  executed_.fetch_add(1, std::memory_order_relaxed);
  metrics.Add(metric::kServerQueriesExecuted, 1);
  session->executed.fetch_add(1, std::memory_order_relaxed);

  const uint64_t query_id =
      result.ok() ? result.value().report.profile.query_id : 0;
  {
    auto fields = ticket_fields();
    fields.Set("status",
               obs::JsonValue::Str(result.ok()
                                       ? "OK"
                                       : StatusCodeName(
                                             result.status().code())));
    if (result.ok()) {
      fields.Set("wall_seconds", obs::JsonValue::Number(
                                     result.value().report.wall_seconds));
      fields.Set("algorithm",
                 obs::JsonValue::Str(JoinAlgorithmName(advice.algorithm)));
    }
    Emit("finish", query_id, std::move(fields));
  }
  HJ_RETURN_IF_ERROR(result.status());

  // Slow-query log: persist the full EXPLAIN ANALYZE profile of anything
  // past the threshold for post-hoc analysis.
  const ObservabilityConfig& obs_cfg = config_.observability;
  if (!obs_cfg.slow_query_dir.empty() && obs_cfg.slow_query_seconds > 0 &&
      result.value().report.wall_seconds >= obs_cfg.slow_query_seconds) {
    const std::string path = obs_cfg.slow_query_dir + "/slow_query_" +
                             std::to_string(query_id) + ".json";
    const Status written = result.value().report.profile.WriteJson(path);
    if (written.ok()) {
      auto fields = ticket_fields();
      fields.Set("profile", obs::JsonValue::Str(path));
      fields.Set("wall_seconds", obs::JsonValue::Number(
                                     result.value().report.wall_seconds));
      Emit("slow_query", query_id, std::move(fields));
    }
  }

  ServerResult out;
  out.ticket.session_id = qctx.session_id;
  out.ticket.ticket_id = qctx.ticket_id;
  out.ticket.query_id = query_id;
  out.ticket.queued = slot.queued();
  out.ticket.queue_wait_us = slot.queue_wait_us();
  out.ticket.algorithm = advice.algorithm;
  out.result = std::move(result).value();
  return out;
}

Result<ServerResult> WarehouseServer::ExecuteStatement(
    uint64_t session_id, const std::string& sql) {
  HJ_ASSIGN_OR_RETURN(sql::Statement stmt, sql::ParseStatement(sql));
  if (stmt.kind == sql::StatementKind::kSelect) {
    return Execute(session_id, sql);
  }
  // Administrative statements answer from the observability plane without
  // touching rate limits or admission — a second session can always
  // inspect (and kill) a wedged server.
  if (FindSession(session_id) == nullptr) {
    return Status::NotFound("session " + std::to_string(session_id) +
                            " does not exist");
  }
  ServerResult out;
  out.ticket.session_id = session_id;
  switch (stmt.kind) {
    case sql::StatementKind::kShowProcesslist:
      out.admin_text = ProcessListText();
      break;
    case sql::StatementKind::kShowMetrics:
      out.admin_text = MetricsText();
      break;
    case sql::StatementKind::kShowSessions:
      out.admin_text = SessionsText();
      break;
    case sql::StatementKind::kKill:
      HJ_RETURN_IF_ERROR(Kill(stmt.kill_query_id));
      out.admin_text = "killing query " +
                       std::to_string(stmt.kill_query_id) + "\n";
      break;
    case sql::StatementKind::kSelect:
      break;  // unreachable
  }
  return out;
}

Status WarehouseServer::Kill(uint64_t query_id) {
  HJ_RETURN_IF_ERROR(obs::QueryRegistry::Global().Cancel(query_id));
  killed_.fetch_add(1, std::memory_order_relaxed);
  engine_metrics().Add(metric::kServerQueriesKilled, 1);
  Emit("kill", query_id, obs::JsonValue::Object());
  return Status::OK();
}

std::vector<obs::LiveQuery> WarehouseServer::ProcessList() const {
  return obs::QueryRegistry::Global().Snapshot();
}

std::string WarehouseServer::ProcessListText() const {
  return obs::RenderProcessListText(ProcessList());
}

std::string WarehouseServer::MetricsText() {
  return obs::RenderPrometheus(engine_metrics());
}

std::string WarehouseServer::SessionsText() const {
  std::string out = "SESSION  RATE_LIMITED  EXECUTED\n";
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (const auto& [id, session] : sessions_) {
    char line[128];
    std::snprintf(line, sizeof(line), "%-8llu %-13s %lld\n",
                  static_cast<unsigned long long>(id),
                  session->rate != nullptr ? "yes" : "no",
                  static_cast<long long>(
                      session->executed.load(std::memory_order_relaxed)));
    out += line;
  }
  if (sessions_.empty()) out += "(no open sessions)\n";
  return out;
}

uint16_t WarehouseServer::metrics_port() const {
  return http_ != nullptr ? http_->port() : 0;
}

void WarehouseServer::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  admission_.Close();
  if (http_ != nullptr) http_->Stop();
  if (sampler_ != nullptr) {
    // Stop() joins the thread and then takes one final sample, so the
    // metrics_out fallback file reflects the server's terminal state.
    sampler_->Stop();
  }
  if (owns_event_log_) {
    obs::EventLog::Global().Close();
    owns_event_log_ = false;
  }
}

ServerStats WarehouseServer::stats() const {
  ServerStats s;
  s.admission = admission_.stats();
  s.executed = executed_.load(std::memory_order_relaxed);
  s.rate_limited = rate_limited_.load(std::memory_order_relaxed);
  s.quota_rejected = quota_rejected_.load(std::memory_order_relaxed);
  s.killed = killed_.load(std::memory_order_relaxed);
  s.queries_in_flight = in_flight_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    s.open_sessions = sessions_.size();
  }
  return s;
}

}  // namespace server
}  // namespace hybridjoin
