#include "expr/scalar_functions.h"

#include <cstdlib>

#include "common/hash.h"

namespace hybridjoin {

int32_t ExtractGroup(std::string_view s) {
  if (!s.empty() && (s[0] == 'g' || s[0] == 'G')) {
    int32_t v = 0;
    size_t i = 1;
    bool any = false;
    while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
      v = v * 10 + (s[i] - '0');
      any = true;
      ++i;
    }
    if (any && (i == s.size() || s[i] == '/')) return v;
  }
  return static_cast<int32_t>(HashString(s) & 0x7fffffff);
}

std::string UrlPrefix(std::string_view url) {
  // Strip scheme.
  const size_t scheme = url.find("://");
  size_t start = scheme == std::string_view::npos ? 0 : scheme + 3;
  // Host.
  size_t slash = url.find('/', start);
  if (slash == std::string_view::npos) {
    return std::string(url.substr(start));
  }
  // First path segment.
  size_t second = url.find('/', slash + 1);
  size_t end = second == std::string_view::npos ? url.size() : second;
  // Trim query string if it sneaks into the segment.
  const size_t q = url.find('?', slash);
  if (q != std::string_view::npos && q < end) end = q;
  return std::string(url.substr(start, end - start));
}

std::string RegionOfIp(std::string_view ip) {
  int octet = 0;
  size_t i = 0;
  while (i < ip.size() && ip[i] >= '0' && ip[i] <= '9') {
    octet = octet * 10 + (ip[i] - '0');
    ++i;
  }
  switch ((octet / 32) % 4) {
    case 0:
      return "East Coast";
    case 1:
      return "West Coast";
    case 2:
      return "Midwest";
    default:
      return "South";
  }
}

int32_t DaysFromCivil(int year, int month, int day) {
  // Howard Hinnant's days_from_civil algorithm.
  year -= month <= 2;
  const int era = (year >= 0 ? year : year - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(year - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(month + (month > 2 ? -3 : 9)) + 2) / 5 +
      static_cast<unsigned>(day) - 1;
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  return era * 146097 + static_cast<int>(doe) - 719468;
}

void CivilFromDays(int32_t days, int* year, int* month, int* day) {
  int32_t z = days + 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  *day = static_cast<int>(doy - (153 * mp + 2) / 5 + 1);
  *month = static_cast<int>(mp + (mp < 10 ? 3 : -9));
  *year = y + (*month <= 2);
}

}  // namespace hybridjoin
