// Scalar helper functions mirroring the UDFs in the paper's example query:
// extract_group() pulls an integer group id out of a varchar column, and
// UrlPrefix()/RegionOfIp() support the click-log example applications.

#ifndef HYBRIDJOIN_EXPR_SCALAR_FUNCTIONS_H_
#define HYBRIDJOIN_EXPR_SCALAR_FUNCTIONS_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace hybridjoin {

/// Parses the integer group id from a value shaped like "g<digits>/<rest>"
/// (the workload's groupByExtractCol). Falls back to a hash of the full
/// string for values not in that shape, so it is total.
int32_t ExtractGroup(std::string_view s);

/// Returns the prefix of a URL up to and including the first path segment,
/// e.g. "http://shop.example.com/cameras/canon?x=1" -> "shop.example.com/cameras".
std::string UrlPrefix(std::string_view url);

/// Coarse geographic bucket of a dotted-quad IPv4 string; the example query
/// filters on region(L.ip) = 'East Coast'. Deterministic on the first octet.
std::string RegionOfIp(std::string_view ip);

/// Days-since-epoch helpers for building date literals in tests/examples.
/// Proleptic Gregorian; valid for years 1970-2199.
int32_t DaysFromCivil(int year, int month, int day);
void CivilFromDays(int32_t days, int* year, int* month, int* day);

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_EXPR_SCALAR_FUNCTIONS_H_
