// Predicates: the filter expressions the engine evaluates over record
// batches. They are *serializable* because, exactly as in the paper's
// read_hdfs UDF, the database side ships the HDFS-table predicates and the
// projection list to the JEN workers, which evaluate them during the scan.
//
// Supported forms (enough for the paper's workload and examples):
//   col <op> literal            (int32/int64/float64/string/date/time)
//   prefix match on a string column
//   a - b BETWEEN lo AND hi     (two int32 columns, e.g. date arithmetic)
//   AND / OR / NOT / TRUE

#ifndef HYBRIDJOIN_EXPR_PREDICATE_H_
#define HYBRIDJOIN_EXPR_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/binary_io.h"
#include "common/result.h"
#include "types/record_batch.h"

namespace hybridjoin {

enum class CmpOp : uint8_t { kEq = 0, kNe, kLt, kLe, kGt, kGe };

const char* CmpOpName(CmpOp op);

class Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

/// A simple `int_column <op> literal` comparison that is ANDed at the top
/// level of a predicate — the unit of min/max chunk skipping in the columnar
/// HDFS format (Parquet-style predicate pushdown).
struct ConjunctiveIntCmp {
  std::string column;
  CmpOp op;
  int64_t literal;
};

/// Base class. Thread-safe after construction (immutable).
class Predicate {
 public:
  virtual ~Predicate() = default;

  /// Narrows `sel` (indexes into `batch`) to the rows satisfying this
  /// predicate. On entry `sel` holds candidate rows; on exit survivors.
  virtual Status Filter(const RecordBatch& batch,
                        std::vector<uint32_t>* sel) const = 0;

  /// Writes a self-describing wire form.
  virtual void SerializeTo(BinaryWriter* out) const = 0;

  /// Human-readable SQL-ish rendering.
  virtual std::string ToString() const = 0;

  /// Appends the integer comparisons that are guaranteed conjuncts of this
  /// predicate (i.e. must hold for every surviving row). Used for columnar
  /// chunk skipping; the default contributes nothing.
  virtual void CollectConjunctiveIntCmps(
      std::vector<ConjunctiveIntCmp>* out) const {
    (void)out;
  }

  /// Appends the names of every column this predicate reads. Scans use this
  /// to decide which columns must be materialized before filtering.
  virtual void CollectColumns(std::vector<std::string>* out) const = 0;

  /// True when this predicate is exactly a conjunction of integer
  /// comparisons — i.e. CollectConjunctiveIntCmps captures its full
  /// semantics. Such predicates can be answered by a covering sorted index
  /// (the EDW's index-only access plan for Bloom filter builds).
  virtual bool IsConjunctiveIntCmps() const { return false; }

  /// Evaluates against every row of `batch`, returning the selection.
  Result<std::vector<uint32_t>> FilterAll(const RecordBatch& batch) const {
    std::vector<uint32_t> sel(batch.num_rows());
    for (uint32_t i = 0; i < sel.size(); ++i) sel[i] = i;
    HJ_RETURN_IF_ERROR(Filter(batch, &sel));
    return sel;
  }

  std::vector<uint8_t> Serialize() const {
    BinaryWriter w;
    SerializeTo(&w);
    return w.Release();
  }

  /// Parses a predicate previously produced by SerializeTo.
  static Result<PredicatePtr> Deserialize(BinaryReader* in);
  static Result<PredicatePtr> Deserialize(const std::vector<uint8_t>& buf) {
    BinaryReader r(buf);
    return Deserialize(&r);
  }
};

// ---------------------------------------------------------------------------
// Constructors (factory functions keep call sites compact).
// ---------------------------------------------------------------------------

/// `column <op> literal`.
PredicatePtr Cmp(std::string column, CmpOp op, Value literal);

/// String column starts with `prefix`.
PredicatePtr StrPrefix(std::string column, std::string prefix);

/// `lo <= col_a - col_b <= hi` over two int32-physical columns (the paper's
/// post-join date predicate: 0 <= days(T.tdate) - days(L.ldate) <= 1).
PredicatePtr DiffRange(std::string col_a, std::string col_b, int64_t lo,
                       int64_t hi);

PredicatePtr And(std::vector<PredicatePtr> children);
PredicatePtr Or(std::vector<PredicatePtr> children);
PredicatePtr Not(PredicatePtr child);
PredicatePtr True();

}  // namespace hybridjoin

#endif  // HYBRIDJOIN_EXPR_PREDICATE_H_
