#include "expr/predicate.h"

#include <algorithm>

namespace hybridjoin {

namespace {

enum class PredTag : uint8_t {
  kTrue = 0,
  kCmp = 1,
  kStrPrefix = 2,
  kDiffRange = 3,
  kAnd = 4,
  kOr = 5,
  kNot = 6,
};

enum class LitTag : uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kFloat64 = 2,
  kString = 3,
};

void SerializeValue(const Value& v, BinaryWriter* out) {
  if (v.is_int32()) {
    out->PutU8(static_cast<uint8_t>(LitTag::kInt32));
    out->PutI32(v.as_int32());
  } else if (v.is_int64()) {
    out->PutU8(static_cast<uint8_t>(LitTag::kInt64));
    out->PutI64(v.as_int64());
  } else if (v.is_float64()) {
    out->PutU8(static_cast<uint8_t>(LitTag::kFloat64));
    out->PutF64(v.as_float64());
  } else {
    out->PutU8(static_cast<uint8_t>(LitTag::kString));
    out->PutString(v.as_string());
  }
}

Result<Value> DeserializeValue(BinaryReader* in) {
  HJ_ASSIGN_OR_RETURN(uint8_t tag, in->GetU8());
  switch (static_cast<LitTag>(tag)) {
    case LitTag::kInt32: {
      HJ_ASSIGN_OR_RETURN(int32_t v, in->GetI32());
      return Value(v);
    }
    case LitTag::kInt64: {
      HJ_ASSIGN_OR_RETURN(int64_t v, in->GetI64());
      return Value(v);
    }
    case LitTag::kFloat64: {
      HJ_ASSIGN_OR_RETURN(double v, in->GetF64());
      return Value(v);
    }
    case LitTag::kString: {
      HJ_ASSIGN_OR_RETURN(std::string v, in->GetString());
      return Value(std::move(v));
    }
  }
  return Status::IOError("bad literal tag in predicate");
}

template <typename T, typename U>
bool ApplyCmp(CmpOp op, const T& a, const U& b) {
  switch (op) {
    case CmpOp::kEq:
      return a == b;
    case CmpOp::kNe:
      return a != b;
    case CmpOp::kLt:
      return a < b;
    case CmpOp::kLe:
      return a <= b;
    case CmpOp::kGt:
      return a > b;
    case CmpOp::kGe:
      return a >= b;
  }
  return false;
}

class TruePredicate final : public Predicate {
 public:
  Status Filter(const RecordBatch&, std::vector<uint32_t>*) const override {
    return Status::OK();
  }
  void SerializeTo(BinaryWriter* out) const override {
    out->PutU8(static_cast<uint8_t>(PredTag::kTrue));
  }
  std::string ToString() const override { return "TRUE"; }
  void CollectColumns(std::vector<std::string>*) const override {}
  bool IsConjunctiveIntCmps() const override { return true; }
};

class CmpPredicate final : public Predicate {
 public:
  CmpPredicate(std::string column, CmpOp op, Value literal)
      : column_(std::move(column)), op_(op), literal_(std::move(literal)) {}

  Status Filter(const RecordBatch& batch,
                std::vector<uint32_t>* sel) const override {
    HJ_ASSIGN_OR_RETURN(size_t col, batch.schema()->IndexOf(column_));
    const ColumnVector& cv = batch.column(col);
    size_t out = 0;
    switch (cv.physical_type()) {
      case PhysicalType::kInt32: {
        if (!literal_.is_int32() && !literal_.is_int64()) {
          return Status::InvalidArgument("non-integer literal vs int32 col '" +
                                         column_ + "'");
        }
        const int64_t lit = literal_.AsInt64Lenient();
        const auto& data = cv.i32();
        for (uint32_t r : *sel) {
          if (ApplyCmp<int64_t, int64_t>(op_, data[r], lit)) {
            (*sel)[out++] = r;
          }
        }
        break;
      }
      case PhysicalType::kInt64: {
        if (!literal_.is_int32() && !literal_.is_int64()) {
          return Status::InvalidArgument("non-integer literal vs int64 col '" +
                                         column_ + "'");
        }
        const int64_t lit = literal_.AsInt64Lenient();
        const auto& data = cv.i64();
        for (uint32_t r : *sel) {
          if (ApplyCmp<int64_t, int64_t>(op_, data[r], lit)) {
            (*sel)[out++] = r;
          }
        }
        break;
      }
      case PhysicalType::kFloat64: {
        if (!literal_.is_float64()) {
          return Status::InvalidArgument("non-double literal vs float64 col '" +
                                         column_ + "'");
        }
        const double lit = literal_.as_float64();
        const auto& data = cv.f64();
        for (uint32_t r : *sel) {
          if (ApplyCmp<double, double>(op_, data[r], lit)) {
            (*sel)[out++] = r;
          }
        }
        break;
      }
      case PhysicalType::kString: {
        if (!literal_.is_string()) {
          return Status::InvalidArgument("non-string literal vs string col '" +
                                         column_ + "'");
        }
        const std::string& lit = literal_.as_string();
        const auto& data = cv.str();
        for (uint32_t r : *sel) {
          if (ApplyCmp<std::string, std::string>(op_, data[r], lit)) {
            (*sel)[out++] = r;
          }
        }
        break;
      }
    }
    sel->resize(out);
    return Status::OK();
  }

  void SerializeTo(BinaryWriter* out) const override {
    out->PutU8(static_cast<uint8_t>(PredTag::kCmp));
    out->PutString(column_);
    out->PutU8(static_cast<uint8_t>(op_));
    SerializeValue(literal_, out);
  }

  std::string ToString() const override {
    return column_ + " " + CmpOpName(op_) + " " +
           (literal_.is_string() ? "'" + literal_.ToString() + "'"
                                 : literal_.ToString());
  }

  void CollectConjunctiveIntCmps(
      std::vector<ConjunctiveIntCmp>* out) const override {
    if (literal_.is_int32() || literal_.is_int64()) {
      out->push_back({column_, op_, literal_.AsInt64Lenient()});
    }
  }

  void CollectColumns(std::vector<std::string>* out) const override {
    out->push_back(column_);
  }

  bool IsConjunctiveIntCmps() const override {
    return literal_.is_int32() || literal_.is_int64();
  }

 private:
  std::string column_;
  CmpOp op_;
  Value literal_;
};

class StrPrefixPredicate final : public Predicate {
 public:
  StrPrefixPredicate(std::string column, std::string prefix)
      : column_(std::move(column)), prefix_(std::move(prefix)) {}

  Status Filter(const RecordBatch& batch,
                std::vector<uint32_t>* sel) const override {
    HJ_ASSIGN_OR_RETURN(size_t col, batch.schema()->IndexOf(column_));
    const ColumnVector& cv = batch.column(col);
    if (cv.physical_type() != PhysicalType::kString) {
      return Status::InvalidArgument("prefix predicate on non-string column '" +
                                     column_ + "'");
    }
    const auto& data = cv.str();
    size_t out = 0;
    for (uint32_t r : *sel) {
      if (data[r].size() >= prefix_.size() &&
          data[r].compare(0, prefix_.size(), prefix_) == 0) {
        (*sel)[out++] = r;
      }
    }
    sel->resize(out);
    return Status::OK();
  }

  void SerializeTo(BinaryWriter* out) const override {
    out->PutU8(static_cast<uint8_t>(PredTag::kStrPrefix));
    out->PutString(column_);
    out->PutString(prefix_);
  }

  std::string ToString() const override {
    return column_ + " LIKE '" + prefix_ + "%'";
  }

  void CollectColumns(std::vector<std::string>* out) const override {
    out->push_back(column_);
  }

 private:
  std::string column_;
  std::string prefix_;
};

class DiffRangePredicate final : public Predicate {
 public:
  DiffRangePredicate(std::string col_a, std::string col_b, int64_t lo,
                     int64_t hi)
      : col_a_(std::move(col_a)), col_b_(std::move(col_b)), lo_(lo), hi_(hi) {}

  Status Filter(const RecordBatch& batch,
                std::vector<uint32_t>* sel) const override {
    HJ_ASSIGN_OR_RETURN(size_t a, batch.schema()->IndexOf(col_a_));
    HJ_ASSIGN_OR_RETURN(size_t b, batch.schema()->IndexOf(col_b_));
    const ColumnVector& ca = batch.column(a);
    const ColumnVector& cb = batch.column(b);
    if (ca.physical_type() != PhysicalType::kInt32 ||
        cb.physical_type() != PhysicalType::kInt32) {
      return Status::InvalidArgument("DiffRange requires int32 columns");
    }
    const auto& da = ca.i32();
    const auto& db = cb.i32();
    size_t out = 0;
    for (uint32_t r : *sel) {
      const int64_t diff =
          static_cast<int64_t>(da[r]) - static_cast<int64_t>(db[r]);
      if (diff >= lo_ && diff <= hi_) (*sel)[out++] = r;
    }
    sel->resize(out);
    return Status::OK();
  }

  void SerializeTo(BinaryWriter* out) const override {
    out->PutU8(static_cast<uint8_t>(PredTag::kDiffRange));
    out->PutString(col_a_);
    out->PutString(col_b_);
    out->PutSignedVarint(lo_);
    out->PutSignedVarint(hi_);
  }

  std::string ToString() const override {
    return col_a_ + " - " + col_b_ + " BETWEEN " + std::to_string(lo_) +
           " AND " + std::to_string(hi_);
  }

  void CollectColumns(std::vector<std::string>* out) const override {
    out->push_back(col_a_);
    out->push_back(col_b_);
  }

 private:
  std::string col_a_;
  std::string col_b_;
  int64_t lo_;
  int64_t hi_;
};

class CompoundPredicate final : public Predicate {
 public:
  enum class Kind { kAnd, kOr };
  CompoundPredicate(Kind kind, std::vector<PredicatePtr> children)
      : kind_(kind), children_(std::move(children)) {}

  Status Filter(const RecordBatch& batch,
                std::vector<uint32_t>* sel) const override {
    if (kind_ == Kind::kAnd) {
      for (const auto& child : children_) {
        HJ_RETURN_IF_ERROR(child->Filter(batch, sel));
        if (sel->empty()) break;
      }
      return Status::OK();
    }
    // OR: union of children's survivors, preserving input order.
    std::vector<uint32_t> survivors;
    for (const auto& child : children_) {
      std::vector<uint32_t> branch = *sel;
      HJ_RETURN_IF_ERROR(child->Filter(batch, &branch));
      survivors.insert(survivors.end(), branch.begin(), branch.end());
    }
    std::sort(survivors.begin(), survivors.end());
    survivors.erase(std::unique(survivors.begin(), survivors.end()),
                    survivors.end());
    *sel = std::move(survivors);
    return Status::OK();
  }

  void SerializeTo(BinaryWriter* out) const override {
    out->PutU8(static_cast<uint8_t>(kind_ == Kind::kAnd ? PredTag::kAnd
                                                        : PredTag::kOr));
    out->PutVarint(children_.size());
    for (const auto& child : children_) child->SerializeTo(out);
  }

  void CollectConjunctiveIntCmps(
      std::vector<ConjunctiveIntCmp>* out) const override {
    if (kind_ != Kind::kAnd) return;  // OR branches are not conjuncts.
    for (const auto& child : children_) {
      child->CollectConjunctiveIntCmps(out);
    }
  }

  void CollectColumns(std::vector<std::string>* out) const override {
    for (const auto& child : children_) child->CollectColumns(out);
  }

  bool IsConjunctiveIntCmps() const override {
    if (kind_ != Kind::kAnd) return false;
    for (const auto& child : children_) {
      if (!child->IsConjunctiveIntCmps()) return false;
    }
    return true;
  }

  std::string ToString() const override {
    std::string sep = kind_ == Kind::kAnd ? " AND " : " OR ";
    std::string out = "(";
    for (size_t i = 0; i < children_.size(); ++i) {
      if (i > 0) out += sep;
      out += children_[i]->ToString();
    }
    return out + ")";
  }

 private:
  Kind kind_;
  std::vector<PredicatePtr> children_;
};

class NotPredicate final : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr child) : child_(std::move(child)) {}

  Status Filter(const RecordBatch& batch,
                std::vector<uint32_t>* sel) const override {
    std::vector<uint32_t> pass = *sel;
    HJ_RETURN_IF_ERROR(child_->Filter(batch, &pass));
    // Complement of `pass` within `sel` (both ascending subsequences of sel).
    std::vector<uint32_t> out;
    out.reserve(sel->size() - pass.size());
    size_t pi = 0;
    for (uint32_t r : *sel) {
      if (pi < pass.size() && pass[pi] == r) {
        ++pi;
      } else {
        out.push_back(r);
      }
    }
    *sel = std::move(out);
    return Status::OK();
  }

  void SerializeTo(BinaryWriter* out) const override {
    out->PutU8(static_cast<uint8_t>(PredTag::kNot));
    child_->SerializeTo(out);
  }

  std::string ToString() const override {
    return "NOT " + child_->ToString();
  }

  void CollectColumns(std::vector<std::string>* out) const override {
    child_->CollectColumns(out);
  }

 private:
  PredicatePtr child_;
};

}  // namespace

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "<>";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

PredicatePtr Cmp(std::string column, CmpOp op, Value literal) {
  return std::make_shared<CmpPredicate>(std::move(column), op,
                                        std::move(literal));
}

PredicatePtr StrPrefix(std::string column, std::string prefix) {
  return std::make_shared<StrPrefixPredicate>(std::move(column),
                                              std::move(prefix));
}

PredicatePtr DiffRange(std::string col_a, std::string col_b, int64_t lo,
                       int64_t hi) {
  return std::make_shared<DiffRangePredicate>(std::move(col_a),
                                              std::move(col_b), lo, hi);
}

PredicatePtr And(std::vector<PredicatePtr> children) {
  return std::make_shared<CompoundPredicate>(CompoundPredicate::Kind::kAnd,
                                             std::move(children));
}

PredicatePtr Or(std::vector<PredicatePtr> children) {
  return std::make_shared<CompoundPredicate>(CompoundPredicate::Kind::kOr,
                                             std::move(children));
}

PredicatePtr Not(PredicatePtr child) {
  return std::make_shared<NotPredicate>(std::move(child));
}

PredicatePtr True() { return std::make_shared<TruePredicate>(); }

Result<PredicatePtr> Predicate::Deserialize(BinaryReader* in) {
  HJ_ASSIGN_OR_RETURN(uint8_t tag, in->GetU8());
  switch (static_cast<PredTag>(tag)) {
    case PredTag::kTrue:
      return True();
    case PredTag::kCmp: {
      HJ_ASSIGN_OR_RETURN(std::string column, in->GetString());
      HJ_ASSIGN_OR_RETURN(uint8_t op, in->GetU8());
      if (op > static_cast<uint8_t>(CmpOp::kGe)) {
        return Status::IOError("bad CmpOp in predicate wire form");
      }
      HJ_ASSIGN_OR_RETURN(Value lit, DeserializeValue(in));
      return Cmp(std::move(column), static_cast<CmpOp>(op), std::move(lit));
    }
    case PredTag::kStrPrefix: {
      HJ_ASSIGN_OR_RETURN(std::string column, in->GetString());
      HJ_ASSIGN_OR_RETURN(std::string prefix, in->GetString());
      return StrPrefix(std::move(column), std::move(prefix));
    }
    case PredTag::kDiffRange: {
      HJ_ASSIGN_OR_RETURN(std::string a, in->GetString());
      HJ_ASSIGN_OR_RETURN(std::string b, in->GetString());
      HJ_ASSIGN_OR_RETURN(int64_t lo, in->GetSignedVarint());
      HJ_ASSIGN_OR_RETURN(int64_t hi, in->GetSignedVarint());
      return DiffRange(std::move(a), std::move(b), lo, hi);
    }
    case PredTag::kAnd:
    case PredTag::kOr: {
      HJ_ASSIGN_OR_RETURN(uint64_t n, in->GetVarint());
      if (n > 1024) return Status::IOError("predicate fan-in too large");
      std::vector<PredicatePtr> children;
      children.reserve(n);
      for (uint64_t i = 0; i < n; ++i) {
        HJ_ASSIGN_OR_RETURN(PredicatePtr child, Deserialize(in));
        children.push_back(std::move(child));
      }
      return static_cast<PredTag>(tag) == PredTag::kAnd
                 ? And(std::move(children))
                 : Or(std::move(children));
    }
    case PredTag::kNot: {
      HJ_ASSIGN_OR_RETURN(PredicatePtr child, Deserialize(in));
      return Not(std::move(child));
    }
  }
  return Status::IOError("bad predicate tag");
}

}  // namespace hybridjoin
