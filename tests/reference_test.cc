// Validates the reference executor (the oracle all distributed tests
// compare against) with a second, independent oracle: a brute-force
// O(n*m) nested-loop evaluation of the query semantics.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "expr/scalar_functions.h"
#include "hybrid/reference.h"
#include "workload/generator.h"

namespace hybridjoin {
namespace {

/// Straight-line re-implementation of the paper query's semantics:
/// filter both sides, nested-loop equi-join, date predicate, group count.
std::map<int64_t, int64_t> NestedLoopOracle(const RecordBatch& t,
                                            const std::vector<RecordBatch>& l,
                                            const SolvedSpec& s) {
  std::map<int64_t, int64_t> counts;
  std::vector<size_t> t_rows;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    if (t.column(2).i32()[r] < s.t_cor_lit &&
        t.column(3).i32()[r] < s.t_ind_lit) {
      t_rows.push_back(r);
    }
  }
  for (const RecordBatch& batch : l) {
    for (size_t lr = 0; lr < batch.num_rows(); ++lr) {
      if (!(batch.column(1).i32()[lr] < s.l_cor_lit &&
            batch.column(2).i32()[lr] < s.l_ind_lit)) {
        continue;
      }
      const int32_t l_key = batch.column(0).i32()[lr];
      const int32_t l_date = batch.column(3).i32()[lr];
      for (size_t tr : t_rows) {
        if (t.column(1).i32()[tr] != l_key) continue;
        const int32_t diff = t.column(4).i32()[tr] - l_date;
        if (diff < 0 || diff > 1) continue;
        counts[ExtractGroup(batch.column(4).str()[lr])]++;
      }
    }
  }
  return counts;
}

TEST(ReferenceOracleTest, MatchesNestedLoopOnSmallWorkloads) {
  for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    WorkloadConfig wc;
    wc.num_join_keys = 64;
    wc.t_rows = 1500;
    wc.l_rows = 4000;
    wc.num_groups = 11;
    wc.seed = seed;
    auto workload = Workload::Generate(wc, {0.3, 0.3, 0.5, 0.5});
    ASSERT_TRUE(workload.ok());
    const auto oracle = NestedLoopOracle(
        workload->t_rows(), workload->l_batches(), workload->solved());
    auto reference = RunReferenceJoin({workload->t_rows()},
                                      workload->l_batches(),
                                      workload->MakeQuery());
    ASSERT_TRUE(reference.ok()) << reference.status();
    ASSERT_EQ(reference->num_rows(), oracle.size()) << "seed " << seed;
    size_t i = 0;
    for (const auto& [group, count] : oracle) {
      EXPECT_EQ(reference->column(0).i64()[i], group);
      EXPECT_EQ(reference->column(1).i64()[i], count);
      ++i;
    }
  }
}

TEST(ReferenceOracleTest, NonTrivialResult) {
  WorkloadConfig wc;
  wc.num_join_keys = 64;
  wc.t_rows = 1500;
  wc.l_rows = 4000;
  auto workload = Workload::Generate(wc, {0.3, 0.3, 0.5, 0.5});
  ASSERT_TRUE(workload.ok());
  const auto oracle = NestedLoopOracle(
      workload->t_rows(), workload->l_batches(), workload->solved());
  int64_t total = 0;
  for (const auto& [g, c] : oracle) total += c;
  // The fixture must actually join something or the oracle proves nothing.
  EXPECT_GT(total, 100);
}

}  // namespace
}  // namespace hybridjoin
