// Tests for the reporting/driver plumbing: ExecutionReport, algorithm
// names, Tags allocation, ReportBuilder deltas, Bloom combine, and the
// zigzag build-side ablation (both plans must agree exactly).

#include <gtest/gtest.h>

#include <iterator>
#include <set>
#include <thread>

#include "hybrid/driver_common.h"
#include "hybrid/warehouse.h"
#include "workload/loader.h"

namespace hybridjoin {
namespace {

TEST(ReportTest, AlgorithmNamesAndSides) {
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kDbSide), "db");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kDbSideBloom), "db(BF)");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kBroadcast), "broadcast");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kRepartition),
               "repartition");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kRepartitionBloom),
               "repartition(BF)");
  EXPECT_STREQ(JoinAlgorithmName(JoinAlgorithm::kZigzag), "zigzag");
  EXPECT_FALSE(IsHdfsSide(JoinAlgorithm::kDbSide));
  EXPECT_FALSE(IsHdfsSide(JoinAlgorithm::kDbSideBloom));
  EXPECT_TRUE(IsHdfsSide(JoinAlgorithm::kBroadcast));
  EXPECT_TRUE(IsHdfsSide(JoinAlgorithm::kZigzag));
}

TEST(ReportTest, ToStringContainsEverything) {
  ExecutionReport report;
  report.algorithm = JoinAlgorithm::kZigzag;
  report.wall_seconds = 1.5;
  report.phases = {{"scan", 0.5}};
  report.counters["jen.tuples_scanned"] = 42;
  report.network_bytes["cross_cluster"] = 1000;
  const std::string s = report.ToString();
  EXPECT_NE(s.find("zigzag"), std::string::npos);
  EXPECT_NE(s.find("scan"), std::string::npos);
  EXPECT_NE(s.find("jen.tuples_scanned = 42"), std::string::npos);
  EXPECT_NE(s.find("cross_cluster = 1000"), std::string::npos);
  EXPECT_EQ(report.Counter("jen.tuples_scanned"), 42);
  EXPECT_EQ(report.Counter("missing"), 0);
}

TEST(DriverCommonTest, TagsAreDistinct) {
  Metrics metrics;
  Network net(NetworkConfig{}, 2, 2, &metrics);
  const driver::Tags a = driver::Tags::Allocate(&net);
  const driver::Tags b = driver::Tags::Allocate(&net);
  const uint64_t a_tags[] = {a.bloom_local, a.bloom_global, a.bloom_to_jen,
                             a.shuffle,     a.db_data,      a.bloom_h_local,
                             a.bloom_h_global, a.agg,       a.result,
                             a.l_data,      a.control,      a.counts,
                             a.strategy,    a.db_shuffle_t, a.db_shuffle_l};
  std::set<uint64_t> unique(std::begin(a_tags), std::end(a_tags));
  EXPECT_EQ(unique.size(), std::size(a_tags));
  EXPECT_GT(b.bloom_local, a.db_shuffle_l);  // disjoint blocks
}

TEST(DriverCommonTest, CombineBloomProducesGlobalUnionEverywhere) {
  SimulationConfig config;
  config.db.num_workers = 3;
  config.jen_workers = 1;
  EngineContext ctx(config);
  const driver::Tags tags = driver::Tags::Allocate(&ctx.network());
  const BloomParams params = BloomParams::ForKeys(256);

  std::vector<BloomFilter> globals(3, BloomFilter(params));
  std::vector<std::thread> workers;
  for (uint32_t i = 0; i < 3; ++i) {
    workers.emplace_back([&, i] {
      BloomFilter local(params);
      local.Add(1000 + static_cast<int64_t>(i));  // distinct key per worker
      auto global = driver::CombineBloomAtDbWorker0(&ctx, i, local, tags);
      ASSERT_TRUE(global.ok());
      globals[i] = std::move(global).value();
    });
  }
  for (auto& t : workers) t.join();
  for (uint32_t i = 0; i < 3; ++i) {
    for (int64_t k = 1000; k < 1003; ++k) {
      EXPECT_TRUE(globals[i].MayContain(k))
          << "worker " << i << " missing key " << k;
    }
    EXPECT_EQ(globals[i].FillRatio(), globals[0].FillRatio());
  }
}

TEST(DriverCommonTest, FilterBatchesByBloomDropsNonMembers) {
  auto schema = Schema::Make({{"k", DataType::kInt32}});
  RecordBatch batch(schema);
  for (int32_t i = 0; i < 100; ++i) batch.AppendRow({Value(i)});
  BloomFilter bloom(BloomParams::ForKeys(64, 16.0, 4));  // low FPR
  for (int32_t i = 0; i < 10; ++i) bloom.Add(i);
  auto filtered =
      driver::FilterBatchesByBloom({batch}, "k", bloom);
  ASSERT_TRUE(filtered.ok());
  size_t rows = 0;
  for (const auto& b : *filtered) rows += b.num_rows();
  EXPECT_GE(rows, 10u);
  EXPECT_LE(rows, 20u);  // 10 members + few false positives
}

TEST(ConfigTest, PaperTestbedScalesBandwidths) {
  const SimulationConfig base = SimulationConfig::PaperTestbed(4, 8, 1.0);
  const SimulationConfig half = SimulationConfig::PaperTestbed(4, 8, 0.5);
  EXPECT_EQ(base.db.num_workers, 4u);
  EXPECT_EQ(base.jen_workers, 8u);
  EXPECT_GT(base.datanode.disk_read_bps, 0u);
  EXPECT_EQ(half.datanode.disk_read_bps, base.datanode.disk_read_bps / 2);
  EXPECT_EQ(half.net.cross_switch_bps, base.net.cross_switch_bps / 2);
  // Ratios follow the paper: DB NICs faster than HDFS NICs, switch fastest.
  EXPECT_GT(base.net.db_nic_bps, base.net.hdfs_nic_bps);
  EXPECT_GT(base.net.cross_switch_bps, base.net.db_nic_bps);
}

// The build-side ablation must not change the result (§4.4: it only moves
// the hash-build to the other input).
TEST(BuildSideAblationTest, BothPlansProduceIdenticalRows) {
  WorkloadConfig wc;
  wc.num_join_keys = 512;
  wc.t_rows = 8000;
  wc.l_rows = 30000;
  auto workload = Workload::Generate(wc, {0.2, 0.3, 0.3, 0.3});
  ASSERT_TRUE(workload.ok());
  SimulationConfig config;
  config.db.num_workers = 3;
  config.jen_workers = 3;
  config.bloom.expected_keys = wc.num_join_keys;
  HybridWarehouse hw(config);
  ASSERT_TRUE(LoadWorkload(&hw, *workload).ok());

  auto prepared = PrepareQuery(&hw.context(), workload->MakeQuery());
  ASSERT_TRUE(prepared.ok());

  for (bool zigzag : {false, true}) {
    SCOPED_TRACE(zigzag ? "zigzag" : "repartition(BF)");
    JoinDriverOptions hdfs_build;
    JoinDriverOptions db_build;
    db_build.build_on_db_data = true;
    auto on_hdfs = RunRepartitionFamilyJoin(&hw.context(), *prepared,
                                            /*use_db_bloom=*/true, zigzag,
                                            hdfs_build);
    auto on_db = RunRepartitionFamilyJoin(&hw.context(), *prepared,
                                          /*use_db_bloom=*/true, zigzag,
                                          db_build);
    ASSERT_TRUE(on_hdfs.ok()) << on_hdfs.status();
    ASSERT_TRUE(on_db.ok()) << on_db.status();
    ASSERT_EQ(on_hdfs->rows.num_rows(), on_db->rows.num_rows());
    for (size_t r = 0; r < on_hdfs->rows.num_rows(); ++r) {
      EXPECT_EQ(on_hdfs->rows.column(0).i64()[r],
                on_db->rows.column(0).i64()[r]);
      EXPECT_EQ(on_hdfs->rows.column(1).i64()[r],
                on_db->rows.column(1).i64()[r]);
    }
  }
}

// The exact-semijoin second filter must agree with the Bloom variant and,
// having no false positives, never send MORE database tuples.
TEST(SemijoinFilterTest, MatchesBloomZigzagWithFewerOrEqualTuples) {
  WorkloadConfig wc;
  wc.num_join_keys = 1024;
  wc.t_rows = 16000;
  wc.l_rows = 50000;
  auto workload = Workload::Generate(wc, {0.2, 0.4, 0.2, 0.1});
  ASSERT_TRUE(workload.ok());
  SimulationConfig config;
  config.db.num_workers = 3;
  config.jen_workers = 3;
  config.bloom.expected_keys = wc.num_join_keys;
  HybridWarehouse hw(config);
  ASSERT_TRUE(LoadWorkload(&hw, *workload).ok());
  auto prepared = PrepareQuery(&hw.context(), workload->MakeQuery());
  ASSERT_TRUE(prepared.ok());

  JoinDriverOptions bloom_opts;
  JoinDriverOptions semi_opts;
  semi_opts.second_filter = SecondFilterKind::kExactSemijoin;
  auto with_bloom = RunRepartitionFamilyJoin(&hw.context(), *prepared, true,
                                             true, bloom_opts);
  auto with_semi = RunRepartitionFamilyJoin(&hw.context(), *prepared, true,
                                            true, semi_opts);
  ASSERT_TRUE(with_bloom.ok()) << with_bloom.status();
  ASSERT_TRUE(with_semi.ok()) << with_semi.status();

  ASSERT_EQ(with_semi->rows.num_rows(), with_bloom->rows.num_rows());
  for (size_t r = 0; r < with_semi->rows.num_rows(); ++r) {
    EXPECT_EQ(with_semi->rows.column(0).i64()[r],
              with_bloom->rows.column(0).i64()[r]);
    EXPECT_EQ(with_semi->rows.column(1).i64()[r],
              with_bloom->rows.column(1).i64()[r]);
  }
  // Exactness: no Bloom false positives inflate the T'' transfer.
  EXPECT_LE(with_semi->report.Counter(metric::kDbTuplesSent),
            with_bloom->report.Counter(metric::kDbTuplesSent));
  // But the key lists themselves crossed the interconnect.
  EXPECT_GT(with_semi->report.Counter("semijoin.key_bytes_sent"), 0);

  // Invalid combinations are rejected up front.
  JoinDriverOptions bad = semi_opts;
  bad.build_on_db_data = true;
  EXPECT_FALSE(RunRepartitionFamilyJoin(&hw.context(), *prepared, true, true,
                                        bad)
                   .ok());
}

}  // namespace
}  // namespace hybridjoin
