// Tests for the per-query MemoryGovernor (exec/memory_governor.h):
// reservation/release accounting, the spill-callback contract of the
// never-failing Reserve() path, thread-safety of concurrent charging (this
// binary runs under the TSan CI job like every other test), and the
// bounded-recursion guarantee of the grace join's repartitioning on
// pathological all-duplicate-key builds.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "exec/grace_join.h"
#include "exec/memory_governor.h"

namespace hybridjoin {
namespace {

// ----------------------------- Accounting ---------------------------------

TEST(MemoryGovernorTest, TryReserveHonorsBudget) {
  MemoryGovernor governor(1000);
  EXPECT_TRUE(governor.TryReserve(600));
  EXPECT_EQ(governor.used(), 600u);
  EXPECT_FALSE(governor.TryReserve(500));  // would exceed: no side effects
  EXPECT_EQ(governor.used(), 600u);
  EXPECT_TRUE(governor.TryReserve(400));   // exactly to the brim
  EXPECT_EQ(governor.used(), 1000u);
  EXPECT_FALSE(governor.TryReserve(1));
  governor.Release(400);
  EXPECT_EQ(governor.used(), 600u);
  EXPECT_EQ(governor.peak(), 1000u);  // peak is sticky
  EXPECT_EQ(governor.overcommitted(), 0u);
}

TEST(MemoryGovernorTest, ZeroBudgetIsUnlimitedButTracked) {
  MemoryGovernor governor(0);
  EXPECT_TRUE(governor.TryReserve(1ull << 40));
  governor.Reserve(1ull << 40);
  EXPECT_EQ(governor.used(), 2ull << 40);
  EXPECT_EQ(governor.peak(), 2ull << 40);
  EXPECT_EQ(governor.overcommitted(), 0u);  // unlimited never overcommits
}

TEST(MemoryGovernorTest, ForceReserveTracksOvercommit) {
  MemoryGovernor governor(100);
  governor.ForceReserve(80);
  EXPECT_EQ(governor.overcommitted(), 0u);
  governor.ForceReserve(50);  // 130 used: 30 beyond the budget
  EXPECT_EQ(governor.used(), 130u);
  EXPECT_EQ(governor.overcommitted(), 30u);
}

TEST(MemoryGovernorTest, ReservationRaiiReleasesOnDestruction) {
  MemoryGovernor governor(1000);
  {
    MemoryReservation r(&governor);
    r.Grow(300);
    r.Grow(200);
    EXPECT_EQ(r.bytes(), 500u);
    EXPECT_EQ(governor.used(), 500u);
    r.Shrink(100);
    EXPECT_EQ(governor.used(), 400u);
    r.Shrink(10000);  // clamped to the outstanding reservation
    EXPECT_EQ(governor.used(), 0u);
    r.Grow(250);
  }
  EXPECT_EQ(governor.used(), 0u);  // destructor released the rest
  EXPECT_EQ(governor.peak(), 500u);
}

TEST(MemoryGovernorTest, ScopeInstallsAndRestores) {
  EXPECT_EQ(MemoryGovernor::Current(), nullptr);
  MemoryGovernor outer(100);
  MemoryGovernor inner(200);
  {
    MemoryGovernor::Scope outer_scope(&outer);
    EXPECT_EQ(MemoryGovernor::Current(), &outer);
    {
      MemoryGovernor::Scope inner_scope(&inner);
      EXPECT_EQ(MemoryGovernor::Current(), &inner);
      MemoryReservation r;  // picks up the innermost scope
      EXPECT_EQ(r.governor(), &inner);
    }
    EXPECT_EQ(MemoryGovernor::Current(), &outer);
  }
  EXPECT_EQ(MemoryGovernor::Current(), nullptr);
}

// --------------------- Reserve() and spill callbacks -----------------------

TEST(MemoryGovernorTest, ReserveRunsSpillersLargestFirst) {
  MemoryGovernor governor(1000);
  ASSERT_TRUE(governor.TryReserve(900));

  // Two spillers posing as joins with evictable partitions. The governor
  // must consult the one reporting more resident bytes first.
  std::vector<int> call_order;
  uint64_t small_resident = 100;
  uint64_t large_resident = 500;
  governor.RegisterSpiller(
      [&] { return small_resident; },
      [&](uint64_t want) {
        call_order.push_back(1);
        const uint64_t freed = small_resident;
        governor.Release(freed);
        small_resident = 0;
        return freed;
      });
  governor.RegisterSpiller(
      [&] { return large_resident; },
      [&](uint64_t want) {
        call_order.push_back(2);
        const uint64_t freed = large_resident;
        governor.Release(freed);
        large_resident = 0;
        return freed;
      });

  // Over budget by 300: the large spiller alone (500) covers it, so the
  // small one must not be touched.
  const uint64_t freed = governor.Reserve(400);
  EXPECT_EQ(freed, 500u);
  ASSERT_EQ(call_order.size(), 1u);
  EXPECT_EQ(call_order[0], 2);
  EXPECT_EQ(governor.used(), 800u);  // 900 - 500 + 400
  EXPECT_EQ(governor.overcommitted(), 0u);

  // Next shortfall drains the small spiller too, and the remainder is
  // overcommitted once both report empty.
  const uint64_t freed2 = governor.Reserve(600);
  EXPECT_EQ(freed2, 100u);
  ASSERT_EQ(call_order.size(), 2u);
  EXPECT_EQ(call_order[1], 1);
  EXPECT_EQ(governor.used(), 1300u);
  EXPECT_GT(governor.overcommitted(), 0u);
}

TEST(MemoryGovernorTest, UnregisteredSpillerIsNotCalled) {
  MemoryGovernor governor(100);
  ASSERT_TRUE(governor.TryReserve(100));
  std::atomic<int> calls{0};
  const uint64_t token = governor.RegisterSpiller(
      [] { return uint64_t{50}; },
      [&](uint64_t) {
        calls.fetch_add(1);
        return uint64_t{0};
      });
  governor.UnregisterSpiller(token);
  governor.Reserve(50);  // no spillers left: pure overcommit
  EXPECT_EQ(calls.load(), 0);
  EXPECT_EQ(governor.overcommitted(), 50u);
}

// --------------------------- Concurrent charge -----------------------------

TEST(MemoryGovernorTest, ConcurrentChargeAndReleaseBalances) {
  MemoryGovernor governor(0);  // unlimited: exercise the counters only
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&governor] {
      MemoryGovernor::Scope scope(&governor);
      for (int i = 0; i < kIters; ++i) {
        MemoryReservation r;
        r.Grow(64);
        r.Grow(32);
        r.Shrink(16);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(governor.used(), 0u);
  EXPECT_GE(governor.peak(), 80u);
  EXPECT_LE(governor.peak(), uint64_t{kThreads} * 96);
}

TEST(MemoryGovernorTest, ConcurrentTryReserveNeverExceedsBudget) {
  constexpr uint64_t kBudget = 10000;
  MemoryGovernor governor(kBudget);
  constexpr int kThreads = 8;
  std::atomic<uint64_t> granted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        if (governor.TryReserve(7)) granted.fetch_add(7);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(governor.used(), granted.load());
  EXPECT_LE(governor.used(), kBudget);
  EXPECT_LE(governor.peak(), kBudget);
  EXPECT_EQ(governor.overcommitted(), 0u);
}

TEST(MemoryGovernorTest, ConcurrentReserveWithSpillerStaysConsistent) {
  constexpr uint64_t kBudget = 4096;
  MemoryGovernor governor(kBudget);
  // A fake evictable pool: the spiller can always hand back whatever the
  // resident counter holds (releasing it from the governor first, as a real
  // spiller frees memory it had charged).
  std::atomic<uint64_t> resident{0};
  governor.RegisterSpiller(
      [&] { return resident.load(); },
      [&](uint64_t want) {
        const uint64_t freed = resident.exchange(0);
        governor.Release(freed);
        return freed;
      });
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (governor.TryReserve(64)) {
          resident.fetch_add(64);
        } else {
          governor.Reserve(64);  // may evict the pool, may overcommit
          governor.Release(64);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // All that can remain charged is the resident pool.
  EXPECT_EQ(governor.used(), resident.load());
}

// ------------- Recursive repartition terminates on duplicates --------------

// An all-duplicate-key build defeats hash repartitioning at every salt
// depth: the grace join must stop at kMaxRepartitionDepth and fall back to
// the block-nested loop instead of recursing forever, and still produce the
// right answer.
TEST(MemoryGovernorTest, AllDuplicateKeyBuildTerminatesAndMatches) {
  auto build_schema =
      Schema::Make({{"k", DataType::kInt32}, {"grp", DataType::kInt32}});
  auto probe_schema =
      Schema::Make({{"k", DataType::kInt32}, {"v", DataType::kInt32}});
  constexpr size_t kBuildRows = 3000;
  constexpr size_t kProbeRows = 500;
  std::vector<RecordBatch> build;
  RecordBatch b(build_schema);
  for (size_t i = 0; i < kBuildRows; ++i) {
    b.AppendRow({Value(int32_t{7}), Value(static_cast<int32_t>(i % 3))});
    if (b.num_rows() == 512) {
      build.push_back(std::move(b));
      b = RecordBatch(build_schema);
    }
  }
  if (b.num_rows() > 0) build.push_back(std::move(b));
  RecordBatch probe(probe_schema);
  for (size_t i = 0; i < kProbeRows; ++i) {
    probe.AppendRow({Value(int32_t{7}), Value(static_cast<int32_t>(i))});
  }

  Metrics metrics;
  SpillArea spill(0, 0, &metrics);
  auto spec = AggSpec::CountStar("B.grp", false);
  HashAggregator agg(spec);
  GraceJoinOptions options;
  options.memory_budget_bytes = 2048;  // far below one partition's build
  options.num_partitions = 4;
  GraceHashJoin join(build_schema, "B", 0, probe_schema, "P", 0, nullptr,
                     &agg, &metrics, &spill, options);
  for (RecordBatch batch : build) {
    ASSERT_TRUE(join.AddBuild(std::move(batch)).ok());
  }
  ASSERT_TRUE(join.FinishBuild().ok());
  ASSERT_TRUE(join.AddProbe(probe).ok());
  ASSERT_TRUE(join.Finish().ok());  // termination is the test

  EXPECT_GT(join.spilled_partitions(), 0u);
  EXPECT_GT(metrics.Get(metric::kJoinRepartitionDepth), 0);

  // Every probe row matches every build row: 3 groups x (rows/3) matches
  // per probe row.
  const RecordBatch result = agg.Finish();
  ASSERT_EQ(result.num_rows(), 3u);
  int64_t total = 0;
  for (size_t r = 0; r < result.num_rows(); ++r) {
    total += result.column(1).i64()[r];
  }
  EXPECT_EQ(total, static_cast<int64_t>(kBuildRows * kProbeRows));
}

}  // namespace
}  // namespace hybridjoin
