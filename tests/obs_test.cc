// Observability subsystem: JSON model, node-profile wire format, profile
// assembly, the per-node == global invariant over every join algorithm,
// and the perfcheck regression gate.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "exec/spill.h"
#include "hybrid/warehouse.h"
#include "obs/json.h"
#include "obs/metric_scope.h"
#include "obs/perfcheck.h"
#include "obs/profile.h"
#include "workload/loader.h"

namespace hybridjoin {
namespace obs {
namespace {

// ---------------------------------- JSON -----------------------------------

TEST(JsonTest, RoundTripKeepsIntegersExact) {
  JsonValue doc = JsonValue::Object();
  doc.Set("big", JsonValue::Int(9007199254740993LL));  // not double-exact
  doc.Set("neg", JsonValue::Int(-42));
  doc.Set("pi", JsonValue::Number(3.25));
  doc.Set("s", JsonValue::Str("a \"quoted\"\nline"));
  doc.Set("flag", JsonValue::Bool(true));
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Int(1));
  arr.Append(JsonValue::Null());
  doc.Set("arr", std::move(arr));

  for (int indent : {0, 2}) {
    auto parsed = JsonValue::Parse(doc.Dump(indent));
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed->GetInt("big"), 9007199254740993LL);
    EXPECT_EQ(parsed->GetInt("neg"), -42);
    EXPECT_DOUBLE_EQ(parsed->GetDouble("pi"), 3.25);
    EXPECT_EQ(parsed->GetString("s"), "a \"quoted\"\nline");
    EXPECT_TRUE(parsed->GetBool("flag"));
    const JsonValue* a = parsed->Find("arr");
    ASSERT_NE(a, nullptr);
    ASSERT_EQ(a->items().size(), 2u);
    EXPECT_TRUE(a->items()[1].is_null());
  }
}

TEST(JsonTest, ObjectsPreserveInsertionOrderAndSetReplaces) {
  JsonValue doc = JsonValue::Object();
  doc.Set("z", JsonValue::Int(1));
  doc.Set("a", JsonValue::Int(2));
  doc.Set("z", JsonValue::Int(3));  // replace, not append
  ASSERT_EQ(doc.members().size(), 2u);
  EXPECT_EQ(doc.members()[0].first, "z");
  EXPECT_EQ(doc.members()[0].second.AsInt(), 3);
  EXPECT_EQ(doc.Dump(), "{\"z\":3,\"a\":2}");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\": 1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonValue::Parse("[1, 2").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
}

TEST(JsonTest, ParseHandlesEscapesAndUnicode) {
  auto parsed = JsonValue::Parse(R"(["A\t\"\\", "é"])");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->items()[0].AsString(), "A\t\"\\");
  EXPECT_EQ(parsed->items()[1].AsString(), "\xC3\xA9");
}

// ----------------------- node-profile wire format --------------------------

NodeProfileSnapshot MakeSnapshot() {
  NodeProfileSnapshot snap;
  snap.node = "hdfs:3";
  snap.wall_us = 123456;
  snap.metrics.counters[{"scan", "jen.tuples_scanned"}] = {5000, false};
  snap.metrics.counters[{"", "join.ht_max_chain"}] = {7, true};
  HistogramSummary s;
  s.count = 4;
  s.total_seconds = 0.004;
  s.min_seconds = 0.0005;
  s.max_seconds = 0.002;
  s.p50_seconds = 0.001;
  s.p95_seconds = 0.002;
  s.p99_seconds = 0.002;
  snap.metrics.histograms[{"scan", "jen.scan"}] = s;
  return snap;
}

TEST(NodeProfileWireTest, RoundTrip) {
  const NodeProfileSnapshot snap = MakeSnapshot();
  auto decoded = DeserializeNodeProfile(SerializeNodeProfile(snap));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->node, "hdfs:3");
  EXPECT_EQ(decoded->wall_us, 123456);
  ASSERT_EQ(decoded->metrics.counters.size(), 2u);
  const auto& scanned =
      decoded->metrics.counters.at({"scan", "jen.tuples_scanned"});
  EXPECT_EQ(scanned.value, 5000);
  EXPECT_FALSE(scanned.gauge);
  const auto& chain = decoded->metrics.counters.at({"", "join.ht_max_chain"});
  EXPECT_EQ(chain.value, 7);
  EXPECT_TRUE(chain.gauge);
  const auto& hist = decoded->metrics.histograms.at({"scan", "jen.scan"});
  EXPECT_EQ(hist.count, 4);
  EXPECT_DOUBLE_EQ(hist.p95_seconds, 0.002);
}

TEST(NodeProfileWireTest, RejectsBadVersionAndTruncation) {
  std::vector<uint8_t> bytes = SerializeNodeProfile(MakeSnapshot());
  std::vector<uint8_t> bad_version = bytes;
  bad_version[0] = 99;
  EXPECT_FALSE(DeserializeNodeProfile(bad_version).ok());
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DeserializeNodeProfile(bytes).ok());
  bytes = SerializeNodeProfile(MakeSnapshot());
  bytes.push_back(0);  // trailing garbage
  EXPECT_FALSE(DeserializeNodeProfile(bytes).ok());
}

// ------------------------------ phase mapping ------------------------------

TEST(PhaseMappingTest, KnownNamesAreStable) {
  EXPECT_STREQ(PhaseForMetric("jen.tuples_scanned"), "scan");
  EXPECT_STREQ(PhaseForMetric("hdfs.bytes_read"), "scan");
  EXPECT_STREQ(PhaseForMetric("edw.tuples_after_filter"), "scan");
  EXPECT_STREQ(PhaseForMetric("jen.tuples_shuffled"), "shuffle");
  EXPECT_STREQ(PhaseForMetric("edw.tuples_sent_to_hdfs"), "transfer");
  EXPECT_STREQ(PhaseForMetric("jen.tuples_sent_to_db"), "transfer");
  EXPECT_STREQ(PhaseForMetric("net.transfer"), "transfer");
  EXPECT_STREQ(PhaseForMetric("bloom.fill_pct"), "bloom");
  EXPECT_STREQ(PhaseForMetric("semijoin.keys"), "bloom");
  EXPECT_STREQ(PhaseForMetric("join.ht_rows"), "build");
  EXPECT_STREQ(PhaseForMetric("join.build_shard_rows"), "build");
  EXPECT_STREQ(PhaseForMetric("join.output_tuples"), "probe");
  EXPECT_STREQ(PhaseForMetric("jen.aggregate"), "aggregate");
  EXPECT_STREQ(PhaseForMetric("shuffle.hot_keys"), "shuffle");
  EXPECT_STREQ(PhaseForMetric("shuffle.broadcast_bytes"), "shuffle");
  EXPECT_STREQ(PhaseForMetric("shuffle.hot_rows_build"), "shuffle");
  EXPECT_STREQ(PhaseForMetric("shuffle.hot_rows_probe"), "shuffle");
  EXPECT_STREQ(PhaseForMetric("jen.worker_wall_us"), "driver");
  EXPECT_STREQ(PhaseForMetric("driver.db_worker"), "driver");
  EXPECT_STREQ(PhaseForMetric("something.else"), "other");
}

// The canonical join.* spill metric names (exec/spill.h) are the contract
// EXPLAIN ANALYZE consumers key on. Pin both the constants and their phase
// mapping so a rename regression fails here, not in a dashboard. The
// jen.spill_* aliases finished their one-release dual-emit window and are
// gone: they must now fall through to the "other" bucket.
TEST(PhaseMappingTest, CanonicalSpillNamesAreStable) {
  EXPECT_STREQ(metric::kSpillBytesWritten, "join.spill_bytes");
  EXPECT_STREQ(metric::kSpillBytesRead, "join.spill_bytes_read");
  EXPECT_STREQ(metric::kSpilledPartitions, "join.spill_partitions");
  EXPECT_STREQ(metric::kJoinRepartitionDepth, "join.repartition_depth");
  EXPECT_STREQ(metric::kJoinMemPeakBytes, "join.mem_peak_bytes");

  EXPECT_STREQ(PhaseForMetric("join.spill_bytes"), "spill");
  EXPECT_STREQ(PhaseForMetric("join.spill_bytes_read"), "spill");
  EXPECT_STREQ(PhaseForMetric("join.spill_partitions"), "spill");
  EXPECT_STREQ(PhaseForMetric("join.repartition_depth"), "spill");
  EXPECT_STREQ(PhaseForMetric("join.mem_peak_bytes"), "driver");
  EXPECT_STREQ(PhaseForMetric("jen.spill_bytes_written"), "other");
  EXPECT_STREQ(PhaseForMetric("jen.spill_bytes_read"), "other");
  EXPECT_STREQ(PhaseForMetric("jen.spilled_partitions"), "other");
}

// ----------------------------- profile assembly ----------------------------

TEST(AssembleProfileTest, SumsCountersMaxesGaugesComputesSkew) {
  std::vector<NodeProfileSnapshot> nodes(2);
  nodes[0].node = "hdfs:0";
  nodes[0].wall_us = 1000;
  nodes[0].metrics.counters[{"", "jen.tuples_scanned"}] = {100, false};
  nodes[0].metrics.counters[{"", "join.ht_max_chain"}] = {3, true};
  nodes[1].node = "hdfs:1";
  nodes[1].wall_us = 3000;
  nodes[1].metrics.counters[{"", "jen.tuples_scanned"}] = {300, false};
  nodes[1].metrics.counters[{"", "join.ht_max_chain"}] = {5, true};

  const QueryProfile p =
      AssembleProfile(7, "zigzag", 1.5, nodes, "trace.json");
  EXPECT_EQ(p.query_id, 7u);
  EXPECT_EQ(p.algorithm, "zigzag");
  EXPECT_FALSE(p.empty());

  const ProfileCounterRow* scanned =
      p.FindCounter("scan", "jen.tuples_scanned");
  ASSERT_NE(scanned, nullptr);
  EXPECT_EQ(scanned->total, 400);
  EXPECT_EQ(scanned->min, 100);
  EXPECT_EQ(scanned->max, 300);
  EXPECT_DOUBLE_EQ(scanned->mean, 200.0);
  EXPECT_DOUBLE_EQ(scanned->median, 200.0);
  EXPECT_DOUBLE_EQ(scanned->skew, 1.5);
  EXPECT_EQ(scanned->per_node.at("hdfs:0"), 100);

  const ProfileCounterRow* chain = p.FindCounter("build", "join.ht_max_chain");
  ASSERT_NE(chain, nullptr);
  EXPECT_TRUE(chain->gauge);
  EXPECT_EQ(chain->total, 5);  // max, not sum

  EXPECT_EQ(p.worker_wall_us.at("hdfs:1"), 3000);
  EXPECT_DOUBLE_EQ(p.worker_wall_skew, 1.5);
  EXPECT_EQ(p.FindCounter("scan", "missing"), nullptr);
  EXPECT_EQ(p.FindCounter("nophase", "jen.tuples_scanned"), nullptr);

  const std::string text = p.ToText();
  EXPECT_NE(text.find("phase scan"), std::string::npos);
  EXPECT_NE(text.find("jen.tuples_scanned"), std::string::npos);
  EXPECT_NE(text.find("trace.json"), std::string::npos);
}

TEST(AssembleProfileTest, ExplicitAndMappedPhaseWritesMerge) {
  std::vector<NodeProfileSnapshot> nodes(1);
  nodes[0].node = "db:0";
  nodes[0].wall_us = 10;
  nodes[0].metrics.counters[{"", "edw.tuples_scanned"}] = {40, false};
  nodes[0].metrics.counters[{"scan", "edw.tuples_scanned"}] = {60, false};
  const QueryProfile p = AssembleProfile(1, "db", 0.1, nodes, "");
  const ProfileCounterRow* row = p.FindCounter("scan", "edw.tuples_scanned");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->total, 100);
  ASSERT_EQ(p.phases.size(), 1u);  // both keys landed in "scan"
}

TEST(QueryProfileTest, JsonRoundTrip) {
  std::vector<NodeProfileSnapshot> nodes = {MakeSnapshot()};
  nodes.push_back(MakeSnapshot());
  nodes[1].node = "hdfs:4";
  nodes[1].wall_us = 99;
  QueryProfile p = AssembleProfile(42, "broadcast", 2.25, nodes, "t.json");
  p.global_counters["jen.tuples_scanned"] = 10000;
  p.network_bytes["shuffle"] = 4096;
  HistogramSummary s;
  s.count = 2;
  s.p95_seconds = 0.5;
  p.span_histograms["jen.probe"] = s;

  auto parsed = QueryProfile::FromJson(p.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->query_id, 42u);
  EXPECT_EQ(parsed->algorithm, "broadcast");
  EXPECT_DOUBLE_EQ(parsed->wall_seconds, 2.25);
  EXPECT_EQ(parsed->trace_file, "t.json");
  EXPECT_EQ(parsed->worker_wall_us, p.worker_wall_us);
  EXPECT_DOUBLE_EQ(parsed->worker_wall_skew, p.worker_wall_skew);
  ASSERT_EQ(parsed->phases.size(), p.phases.size());
  for (size_t i = 0; i < p.phases.size(); ++i) {
    EXPECT_EQ(parsed->phases[i].name, p.phases[i].name);
    ASSERT_EQ(parsed->phases[i].counters.size(), p.phases[i].counters.size());
    for (size_t c = 0; c < p.phases[i].counters.size(); ++c) {
      const auto& a = parsed->phases[i].counters[c];
      const auto& b = p.phases[i].counters[c];
      EXPECT_EQ(a.name, b.name);
      EXPECT_EQ(a.gauge, b.gauge);
      EXPECT_EQ(a.total, b.total);
      EXPECT_EQ(a.per_node, b.per_node);
      EXPECT_DOUBLE_EQ(a.skew, b.skew);
    }
    ASSERT_EQ(parsed->phases[i].histograms.size(),
              p.phases[i].histograms.size());
  }
  EXPECT_EQ(parsed->global_counters, p.global_counters);
  EXPECT_EQ(parsed->network_bytes, p.network_bytes);
  ASSERT_EQ(parsed->span_histograms.count("jen.probe"), 1u);
  EXPECT_DOUBLE_EQ(parsed->span_histograms["jen.probe"].p95_seconds, 0.5);
}

TEST(QueryProfileTest, FromJsonRejectsWrongSchema) {
  EXPECT_FALSE(QueryProfile::FromJson("not json").ok());
  EXPECT_FALSE(QueryProfile::FromJson("[]").ok());
  EXPECT_FALSE(QueryProfile::FromJson("{\"schema_version\": 2}").ok());
}

TEST(QueryProfileTest, WriteJsonRoundTripsThroughDisk) {
  const QueryProfile p =
      AssembleProfile(3, "repartition", 0.5, {MakeSnapshot()}, "");
  const std::string path =
      testing::TempDir() + "/obs_profile_roundtrip.json";
  ASSERT_TRUE(p.WriteJson(path).ok());
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = QueryProfile::FromJson(buf.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->algorithm, "repartition");
  std::remove(path.c_str());
}

// -------------------- end-to-end: per-node == global -----------------------

class ProfileEndToEnd : public testing::Test {
 protected:
  static WorkloadConfig SmallWorkload() {
    WorkloadConfig wc;
    wc.num_join_keys = 256;
    wc.t_rows = 4000;
    wc.l_rows = 16000;
    wc.num_groups = 7;
    wc.batch_rows = 2048;
    return wc;
  }
};

TEST_F(ProfileEndToEnd, PerNodeCountersMatchGlobalReportForEveryAlgorithm) {
  const WorkloadConfig wc = SmallWorkload();
  SelectivitySpec spec;
  auto workload = Workload::Generate(wc, spec);
  ASSERT_TRUE(workload.ok()) << workload.status();
  const HybridQuery query = workload->MakeQuery();

  for (JoinAlgorithm algorithm :
       {JoinAlgorithm::kDbSide, JoinAlgorithm::kDbSideBloom,
        JoinAlgorithm::kBroadcast, JoinAlgorithm::kRepartition,
        JoinAlgorithm::kRepartitionBloom, JoinAlgorithm::kZigzag}) {
    SCOPED_TRACE(JoinAlgorithmName(algorithm));
    // Fresh warehouse per algorithm: global counters start at zero, so the
    // report deltas equal the absolute values the gauges carry per node.
    SimulationConfig config;
    config.db.num_workers = 2;
    config.jen_workers = 3;
    config.bloom.expected_keys = wc.num_join_keys;
    HybridWarehouse hw(config);
    ASSERT_TRUE(LoadWorkload(&hw, *workload, {}).ok());

    auto result = hw.Execute(query, algorithm);
    ASSERT_TRUE(result.ok()) << result.status();
    const ExecutionReport& report = result->report;
    const QueryProfile& profile = report.profile;

    EXPECT_FALSE(profile.empty());
    EXPECT_EQ(profile.algorithm, JoinAlgorithmName(algorithm));
    EXPECT_EQ(profile.worker_wall_us.size(), 5u);  // 2 DB + 3 JEN workers
    EXPECT_GE(profile.worker_wall_skew, 1.0);
    EXPECT_EQ(profile.global_counters, report.counters);

    // Accumulate each metric across phases: sum for counters, max for
    // gauges, then compare against the cluster-global report delta.
    std::map<std::string, int64_t> per_node_total;
    std::map<std::string, bool> is_gauge;
    for (const ProfilePhase& phase : profile.phases) {
      EXPECT_FALSE(phase.counters.empty() && phase.histograms.empty());
      for (const ProfileCounterRow& row : phase.counters) {
        EXPECT_FALSE(row.per_node.empty());
        int64_t agg = 0;
        for (const auto& [node, v] : row.per_node) {
          agg = row.gauge ? std::max(agg, v) : agg + v;
        }
        EXPECT_EQ(agg, row.total) << row.name;
        int64_t& total = per_node_total[row.name];
        is_gauge[row.name] = row.gauge;
        total = row.gauge ? std::max(total, row.total) : total + row.total;
      }
    }
    for (const auto& [name, global] : report.counters) {
      ASSERT_EQ(per_node_total.count(name), 1u)
          << name << " missing from the profile";
      EXPECT_EQ(per_node_total[name], global)
          << (is_gauge[name] ? "gauge " : "counter ") << name;
    }

    // JEN straggler satellite: every JEN worker feeds jen.worker_wall_us.
    const HistogramSummary* wall =
        report.Histogram(metric::kJenWorkerWallUs);
    if (wall == nullptr) {
      // Tracing off: the report has no span histograms, but the metric
      // registry itself must have the series.
      const auto hists = hw.context().metrics().HistogramSnapshot();
      ASSERT_EQ(hists.count(metric::kJenWorkerWallUs), 1u);
      EXPECT_EQ(hists.at(metric::kJenWorkerWallUs).count, 3);
    } else {
      EXPECT_EQ(wall->count, 3);
    }

    // The JSON export of this profile round-trips.
    auto parsed = QueryProfile::FromJson(profile.ToJson());
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    EXPECT_EQ(parsed->global_counters, report.counters);
    EXPECT_FALSE(profile.ToText().empty());
  }
}

// -------------------------------- perfcheck --------------------------------

JsonValue MustParse(const std::string& text) {
  auto parsed = JsonValue::Parse(text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  return std::move(parsed).value();
}

TEST(PerfcheckTest, FlattenKeysArraysByNameMember) {
  const JsonValue doc = MustParse(
      R"({"wall_seconds": 1.5,
          "phases": [{"name": "scan", "total_seconds": 0.5},
                     {"name": "probe", "total_seconds": 0.25}],
          "plain": [10, 20]})");
  const auto flat = FlattenNumericLeaves(doc);
  EXPECT_DOUBLE_EQ(flat.at("wall_seconds"), 1.5);
  EXPECT_DOUBLE_EQ(flat.at("phases.scan.total_seconds"), 0.5);
  EXPECT_DOUBLE_EQ(flat.at("phases.probe.total_seconds"), 0.25);
  EXPECT_DOUBLE_EQ(flat.at("plain.0"), 10.0);
  EXPECT_DOUBLE_EQ(flat.at("plain.1"), 20.0);
}

TEST(PerfcheckTest, FlagsWallRegressionPastThreshold) {
  const JsonValue base = MustParse(R"({"wall_seconds": 1.0})");
  const JsonValue ok = MustParse(R"({"wall_seconds": 1.15})");
  const JsonValue bad = MustParse(R"({"wall_seconds": 1.25})");
  PerfcheckOptions options;  // 20% wall threshold
  EXPECT_TRUE(ComparePerf(base, ok, options).regressions.empty());
  const PerfcheckResult r = ComparePerf(base, bad, options);
  ASSERT_EQ(r.regressions.size(), 1u);
  EXPECT_EQ(r.regressions[0].family, "wall");
  EXPECT_EQ(r.regressions[0].path, "wall_seconds");
}

TEST(PerfcheckTest, TinyBaselinesAreNoiseNotRegressions) {
  // 1 ms -> 10 ms is +900%, but below the 5 ms noise floor.
  const JsonValue base = MustParse(R"({"wall_seconds": 0.001})");
  const JsonValue cur = MustParse(R"({"wall_seconds": 0.010})");
  EXPECT_TRUE(ComparePerf(base, cur, {}).regressions.empty());
  PerfcheckOptions strict;
  strict.min_wall_seconds = 0.0;
  EXPECT_EQ(ComparePerf(base, cur, strict).regressions.size(), 1u);
}

TEST(PerfcheckTest, GatesBytesAndSkewFamilies) {
  const JsonValue base = MustParse(
      R"({"network_bytes": {"shuffle_bytes": 1000},
          "workers": {"skew": 1.2},
          "join": {"output_tuples": 50}})");
  const JsonValue cur = MustParse(
      R"({"network_bytes": {"shuffle_bytes": 2000},
          "workers": {"skew": 2.5},
          "join": {"output_tuples": 500000}})");
  const PerfcheckResult r = ComparePerf(base, cur, {});
  ASSERT_EQ(r.regressions.size(), 2u);  // tuple counts are not gated
  EXPECT_EQ(r.regressions[0].family, "bytes");   // paths iterate sorted
  EXPECT_EQ(r.regressions[1].family, "skew");
}

TEST(PerfcheckTest, LeavesOnOneSideOnlyAreIgnored) {
  const JsonValue base = MustParse(R"({"old_wall_seconds": 1.0})");
  const JsonValue cur = MustParse(R"({"new_wall_seconds": 9.0})");
  const PerfcheckResult r = ComparePerf(base, cur, {});
  EXPECT_TRUE(r.regressions.empty());
  EXPECT_EQ(r.leaves_compared, 0u);
}

TEST(PerfcheckTest, EndToEndProfileJsonRegressionIsCaught) {
  QueryProfile p = AssembleProfile(1, "zigzag", 1.0, {MakeSnapshot()}, "");
  const std::string baseline = p.ToJson();
  p.wall_seconds = 1.5;  // > 20% wall regression
  const std::string current = p.ToJson();
  const PerfcheckResult r =
      ComparePerf(MustParse(baseline), MustParse(current), {});
  ASSERT_FALSE(r.regressions.empty());
  EXPECT_EQ(r.regressions[0].path, "wall_seconds");
}

}  // namespace
}  // namespace obs
}  // namespace hybridjoin
