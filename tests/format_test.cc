// Unit tests for the HDFS table formats: text round-trips, columnar
// encodings (plain/RLE/dict), compression, stats, and projection pushdown.

#include <gtest/gtest.h>

#include "common/random.h"
#include "hdfs/format.h"

namespace hybridjoin {
namespace {

SchemaPtr FullSchema() {
  return Schema::Make({{"i32", DataType::kInt32},
                       {"i64", DataType::kInt64},
                       {"f", DataType::kFloat64},
                       {"s", DataType::kString},
                       {"d", DataType::kDate},
                       {"t", DataType::kTime}});
}

RecordBatch FullBatch(size_t n) {
  RecordBatch b(FullSchema());
  Rng rng(4);
  for (size_t i = 0; i < n; ++i) {
    b.AppendRow({Value(static_cast<int32_t>(i * 3)),
                 Value(static_cast<int64_t>(i) * -1000003),
                 Value(0.5 + static_cast<double>(i)),
                 Value("name_" + std::to_string(rng.Uniform(50))),
                 Value(static_cast<int32_t>(16000 + (i % 100))),
                 Value(static_cast<int32_t>(i % 86400))});
  }
  return b;
}

std::vector<size_t> AllColumns(const SchemaPtr& s) {
  std::vector<size_t> idx(s->num_fields());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  return idx;
}

// ------------------------------- Text -------------------------------------

TEST(TextFormatTest, RoundTripAllTypes) {
  RecordBatch b = FullBatch(100);
  auto bytes = EncodeText(b);
  auto decoded =
      DecodeText(bytes.data(), bytes.size(), b.schema(), AllColumns(b.schema()));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ(decoded->num_rows(), 100u);
  for (size_t r = 0; r < 100; ++r) {
    EXPECT_EQ(decoded->column(0).i32()[r], b.column(0).i32()[r]);
    EXPECT_EQ(decoded->column(1).i64()[r], b.column(1).i64()[r]);
    EXPECT_DOUBLE_EQ(decoded->column(2).f64()[r], b.column(2).f64()[r]);
    EXPECT_EQ(decoded->column(3).str()[r], b.column(3).str()[r]);
    EXPECT_EQ(decoded->column(4).i32()[r], b.column(4).i32()[r]);
    EXPECT_EQ(decoded->column(5).i32()[r], b.column(5).i32()[r]);
  }
}

TEST(TextFormatTest, ProjectionKeepsRequestedColumnsOnly) {
  RecordBatch b = FullBatch(10);
  auto bytes = EncodeText(b);
  auto decoded = DecodeText(bytes.data(), bytes.size(), b.schema(), {3, 0});
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->num_columns(), 2u);
  EXPECT_EQ(decoded->schema()->field(0).name, "s");
  EXPECT_EQ(decoded->column(1).i32()[4], b.column(0).i32()[4]);
}

TEST(TextFormatTest, DatesRenderedIso) {
  auto schema = Schema::Make({{"d", DataType::kDate}});
  RecordBatch b(schema);
  b.AppendRow({Value(int32_t{0})});  // 1970-01-01
  auto bytes = EncodeText(b);
  EXPECT_EQ(std::string(bytes.begin(), bytes.end()), "1970-01-01\n");
}

TEST(TextFormatTest, MalformedRowsRejected) {
  auto schema =
      Schema::Make({{"a", DataType::kInt32}, {"b", DataType::kInt32}});
  const std::string too_few = "1\n";
  EXPECT_FALSE(
      DecodeText(reinterpret_cast<const uint8_t*>(too_few.data()),
                 too_few.size(), schema, {0, 1})
          .ok());
  const std::string bad_int = "1|x\n";
  EXPECT_FALSE(
      DecodeText(reinterpret_cast<const uint8_t*>(bad_int.data()),
                 bad_int.size(), schema, {0, 1})
          .ok());
  const std::string bad_date = "1|2\n";
  auto date_schema =
      Schema::Make({{"a", DataType::kInt32}, {"d", DataType::kDate}});
  EXPECT_FALSE(
      DecodeText(reinterpret_cast<const uint8_t*>(bad_date.data()),
                 bad_date.size(), date_schema, {0, 1})
          .ok());
}

TEST(TextFormatTest, EmptyInputDecodesToEmptyBatch) {
  auto schema = Schema::Make({{"a", DataType::kInt32}});
  auto decoded = DecodeText(nullptr, 0, schema, {0});
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->num_rows(), 0u);
}

// ------------------------------ Columnar ----------------------------------

TEST(ColumnarTest, RoundTripAllTypes) {
  RecordBatch b = FullBatch(500);
  ColumnarWriteOptions options;
  auto block = EncodeColumnarBlock(b, options);
  ASSERT_EQ(block.chunks.size(), b.num_columns());
  auto decoded =
      DecodeColumnarBlock(block, b.schema(), AllColumns(b.schema()));
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  for (size_t r = 0; r < 500; ++r) {
    EXPECT_EQ(decoded->column(1).i64()[r], b.column(1).i64()[r]);
    EXPECT_EQ(decoded->column(3).str()[r], b.column(3).str()[r]);
  }
}

TEST(ColumnarTest, RleChosenForRunHeavyColumns) {
  ColumnVector c(DataType::kInt32);
  for (int i = 0; i < 10000; ++i) c.mutable_i32().push_back(i / 1000);
  ColumnarWriteOptions options;
  options.codec = Codec::kNone;  // isolate the encoding choice
  auto chunk = EncodeColumnChunk(c, options);
  EXPECT_EQ(chunk.encoding, ColEncoding::kRle);
  EXPECT_LT(chunk.data.size(), 200u);
  auto decoded = DecodeColumnChunk(chunk, DataType::kInt32);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->i32()[9999], 9);
}

TEST(ColumnarTest, DictionaryChosenForLowCardinalityStrings) {
  ColumnVector c(DataType::kString);
  for (int i = 0; i < 5000; ++i) {
    c.mutable_str().push_back("category_" + std::to_string(i % 8));
  }
  ColumnarWriteOptions options;
  options.codec = Codec::kNone;
  auto chunk = EncodeColumnChunk(c, options);
  EXPECT_EQ(chunk.encoding, ColEncoding::kDict);
  auto decoded = DecodeColumnChunk(chunk, DataType::kString);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->str()[4999], "category_" + std::to_string(4999 % 8));
}

TEST(ColumnarTest, UniqueStringsStayPlain) {
  ColumnVector c(DataType::kString);
  for (int i = 0; i < 1000; ++i) {
    c.mutable_str().push_back("unique_value_" + std::to_string(i));
  }
  ColumnarWriteOptions options;
  options.codec = Codec::kNone;
  auto chunk = EncodeColumnChunk(c, options);
  EXPECT_EQ(chunk.encoding, ColEncoding::kPlain);
}

TEST(ColumnarTest, StatsWritten) {
  ColumnVector c(DataType::kInt32);
  for (int32_t v : {5, -3, 100, 42}) c.mutable_i32().push_back(v);
  auto chunk = EncodeColumnChunk(c, ColumnarWriteOptions{});
  ASSERT_TRUE(chunk.has_stats);
  EXPECT_EQ(chunk.min_val, -3);
  EXPECT_EQ(chunk.max_val, 100);
}

TEST(ColumnarTest, StatsCanBeDisabled) {
  ColumnVector c(DataType::kInt32);
  c.mutable_i32().push_back(1);
  ColumnarWriteOptions options;
  options.write_stats = false;
  EXPECT_FALSE(EncodeColumnChunk(c, options).has_stats);
}

TEST(ColumnarTest, CompressionShrinksCompressibleChunks) {
  ColumnVector c(DataType::kString);
  for (int i = 0; i < 2000; ++i) {
    c.mutable_str().push_back("shop.example.com/section/" +
                              std::to_string(i % 100));
  }
  ColumnarWriteOptions with_lz;
  ColumnarWriteOptions without;
  without.codec = Codec::kNone;
  auto compressed = EncodeColumnChunk(c, with_lz);
  auto plain = EncodeColumnChunk(c, without);
  EXPECT_LT(compressed.data.size(), plain.data.size());
  auto decoded = DecodeColumnChunk(compressed, DataType::kString);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->str()[1234], c.str()[1234]);
}

TEST(ColumnarTest, ProjectionDecodesOnlyRequestedChunks) {
  RecordBatch b = FullBatch(50);
  auto block = EncodeColumnarBlock(b, ColumnarWriteOptions{});
  auto decoded = DecodeColumnarBlock(block, b.schema(), {4, 1});
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->num_columns(), 2u);
  EXPECT_EQ(decoded->schema()->field(0).name, "d");
  EXPECT_EQ(decoded->schema()->field(1).name, "i64");
}

TEST(ColumnarTest, ColumnarSmallerThanTextForRealisticData) {
  // A log-like batch: low-cardinality strings, clustered ints.
  auto schema = Schema::Make({{"k", DataType::kInt32},
                              {"grp", DataType::kString},
                              {"d", DataType::kDate}});
  RecordBatch b(schema);
  Rng rng(9);
  for (int i = 0; i < 20000; ++i) {
    b.AppendRow({Value(static_cast<int32_t>(rng.Uniform(1000))),
                 Value("g" + std::to_string(rng.Uniform(50)) +
                       "/products/item" + std::to_string(rng.Uniform(100))),
                 Value(static_cast<int32_t>(16000 + rng.Uniform(30)))});
  }
  const auto text = EncodeText(b);
  const auto block = EncodeColumnarBlock(b, ColumnarWriteOptions{});
  // The paper observes ~2.4x; our synthetic data compresses at least 2x.
  EXPECT_LT(block.ByteSize() * 2, text.size());
}

TEST(ColumnarTest, CorruptChunkRejected) {
  ColumnVector c(DataType::kInt32);
  for (int i = 0; i < 100; ++i) c.mutable_i32().push_back(i);
  auto chunk = EncodeColumnChunk(c, ColumnarWriteOptions{});
  chunk.data.resize(chunk.data.size() / 2);
  EXPECT_FALSE(DecodeColumnChunk(chunk, DataType::kInt32).ok());

  auto chunk2 = EncodeColumnChunk(c, ColumnarWriteOptions{});
  chunk2.num_rows = 9999;  // lies about row count
  EXPECT_FALSE(DecodeColumnChunk(chunk2, DataType::kInt32).ok());
}

TEST(ColumnarTest, TypeMismatchRejected) {
  ColumnVector c(DataType::kInt32);
  c.mutable_i32().push_back(1);
  auto chunk = EncodeColumnChunk(c, ColumnarWriteOptions{});
  EXPECT_FALSE(DecodeColumnChunk(chunk, DataType::kString).ok());
  // Date shares int32 physical type and is accepted.
  EXPECT_TRUE(DecodeColumnChunk(chunk, DataType::kDate).ok());
}

}  // namespace
}  // namespace hybridjoin
