// Unit tests for the shared execution primitives: JoinHashTable,
// HashAggregator, JoinProber and PartitionedAppender.

#include <gtest/gtest.h>

#include <map>

#include "common/hash.h"
#include "exec/join_prober.h"
#include "exec/partitioned_appender.h"

namespace hybridjoin {
namespace {

SchemaPtr BuildSchema() {
  return Schema::Make(
      {{"joinKey", DataType::kInt32}, {"payload", DataType::kString}});
}

SchemaPtr ProbeSchema() {
  return Schema::Make(
      {{"joinKey", DataType::kInt32}, {"v", DataType::kInt32}});
}

RecordBatch BuildBatch(std::vector<std::pair<int32_t, std::string>> rows) {
  RecordBatch b(BuildSchema());
  for (auto& [k, s] : rows) b.AppendRow({Value(k), Value(std::move(s))});
  return b;
}

// ----------------------------- JoinHashTable ------------------------------

TEST(JoinHashTableTest, FindsAllDuplicates) {
  JoinHashTable table(0);
  ASSERT_TRUE(table.AddBatch(BuildBatch({{1, "a"}, {2, "b"}, {1, "c"}})).ok());
  ASSERT_TRUE(table.AddBatch(BuildBatch({{1, "d"}, {3, "e"}})).ok());
  table.Finalize();
  EXPECT_EQ(table.num_rows(), 5u);

  std::multiset<std::string> matches;
  table.ForEachMatch(1, [&](uint32_t b, uint32_t r) {
    matches.insert(table.batches()[b].column(1).str()[r]);
  });
  EXPECT_EQ(matches, (std::multiset<std::string>{"a", "c", "d"}));
  EXPECT_TRUE(table.Contains(3));
  EXPECT_FALSE(table.Contains(42));
}

TEST(JoinHashTableTest, EmptyTableProbesCleanly) {
  JoinHashTable table(0);
  table.Finalize();
  EXPECT_FALSE(table.Contains(1));
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(JoinHashTableTest, EmptyBatchesIgnored) {
  JoinHashTable table(0);
  ASSERT_TRUE(table.AddBatch(RecordBatch(BuildSchema())).ok());
  table.Finalize();
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(JoinHashTableTest, RejectsMisuse) {
  JoinHashTable table(0);
  table.Finalize();
  EXPECT_FALSE(table.AddBatch(BuildBatch({{1, "a"}})).ok());

  JoinHashTable bad_key(5);
  EXPECT_FALSE(bad_key.AddBatch(BuildBatch({{1, "a"}})).ok());

  JoinHashTable string_key(1);  // column 1 is the string payload
  EXPECT_FALSE(string_key.AddBatch(BuildBatch({{1, "a"}})).ok());
}

TEST(JoinHashTableTest, Int64Keys) {
  auto schema = Schema::Make({{"k", DataType::kInt64}});
  RecordBatch b(schema);
  b.AppendRow({Value(int64_t{1} << 40)});
  JoinHashTable table(0);
  ASSERT_TRUE(table.AddBatch(std::move(b)).ok());
  table.Finalize();
  EXPECT_TRUE(table.Contains(int64_t{1} << 40));
}

TEST(JoinHashTableTest, ScalesPastResize) {
  JoinHashTable table(0);
  RecordBatch big(BuildSchema());
  for (int32_t i = 0; i < 50000; ++i) {
    big.AppendRow({Value(i % 1000), Value("p")});
  }
  ASSERT_TRUE(table.AddBatch(std::move(big)).ok());
  table.Finalize();
  int count = 0;
  table.ForEachMatch(7, [&](uint32_t, uint32_t) { ++count; });
  EXPECT_EQ(count, 50);
}

// ------------------------- Sharded JoinHashTable --------------------------

std::vector<RecordBatch> ShardTestBatches() {
  // Heavy duplication across batches so match order (reverse insertion) is
  // actually exercised, plus negative keys and a batch-boundary split.
  std::vector<RecordBatch> batches;
  RecordBatch a(BuildSchema()), b(BuildSchema()), c(BuildSchema());
  for (int32_t i = 0; i < 700; ++i) {
    a.AppendRow({Value(i % 90), Value("a" + std::to_string(i))});
  }
  for (int32_t i = 0; i < 450; ++i) {
    b.AppendRow({Value((i % 90) - 45), Value("b" + std::to_string(i))});
  }
  for (int32_t i = 0; i < 300; ++i) {
    c.AppendRow({Value(i % 7), Value("c" + std::to_string(i))});
  }
  batches.push_back(std::move(a));
  batches.push_back(std::move(b));
  batches.push_back(std::move(c));
  return batches;
}

std::vector<int32_t> ShardTestProbeKeys() {
  std::vector<int32_t> keys;
  for (int32_t i = -60; i < 120; ++i) keys.push_back(i);
  keys.push_back(424242);  // no match
  return keys;
}

void ExpectSameMatches(const JoinHashTable& expected,
                       const JoinHashTable& actual) {
  const std::vector<int32_t> keys = ShardTestProbeKeys();
  std::vector<JoinMatch> want, got;
  expected.ProbeBatch(std::span<const int32_t>(keys), &want);
  actual.ProbeBatch(std::span<const int32_t>(keys), &got);
  ASSERT_EQ(want.size(), got.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i].probe_row, got[i].probe_row) << "match " << i;
    ASSERT_EQ(want[i].batch, got[i].batch) << "match " << i;
    ASSERT_EQ(want[i].row, got[i].row) << "match " << i;
  }
}

TEST(JoinHashTableTest, ShardedProbeOrderMatchesUnsharded) {
  // The determinism contract the parallel build rests on: for any shard
  // count, every probe emits matches in exactly the unsharded order.
  JoinHashTable reference(0);
  for (RecordBatch& b : ShardTestBatches()) {
    ASSERT_TRUE(reference.AddBatch(std::move(b)).ok());
  }
  reference.Finalize();

  for (uint32_t shards : {2u, 3u, 7u, 16u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    JoinHashTable sharded(0, shards);
    for (RecordBatch& b : ShardTestBatches()) {
      ASSERT_TRUE(sharded.AddBatch(std::move(b)).ok());
    }
    sharded.Finalize();
    EXPECT_EQ(sharded.num_shards(), shards);
    EXPECT_EQ(sharded.num_rows(), reference.num_rows());
    size_t shard_sum = 0;
    for (uint32_t s = 0; s < shards; ++s) shard_sum += sharded.shard_rows(s);
    EXPECT_EQ(shard_sum, sharded.num_rows());
    ExpectSameMatches(reference, sharded);
  }
}

TEST(JoinHashTableTest, AddBatchesParallelMatchesSerialAdd) {
  JoinHashTable serial(0, 4);
  for (RecordBatch& b : ShardTestBatches()) {
    ASSERT_TRUE(serial.AddBatch(std::move(b)).ok());
  }
  serial.Finalize();

  // nullptr pool: the serial fallback inside AddBatchesParallel.
  JoinHashTable fallback(0, 4);
  ASSERT_TRUE(fallback.AddBatchesParallel(ShardTestBatches(), nullptr).ok());
  fallback.Finalize();
  ExpectSameMatches(serial, fallback);

  // Real pool: range extraction in parallel, spliced in range order.
  ThreadPool pool(3);
  JoinHashTable parallel(0, 4);
  ASSERT_TRUE(parallel.AddBatchesParallel(ShardTestBatches(), &pool).ok());
  ASSERT_TRUE(parallel.FinalizeParallel(&pool).ok());
  EXPECT_TRUE(parallel.finalized());
  ExpectSameMatches(serial, parallel);
}

TEST(JoinHashTableTest, FinalizeShardPerShardThenMark) {
  // The driver's traced finalize path: FinalizeShard per shard (here from a
  // ParallelFor) followed by MarkFinalized equals the one-call Finalize.
  JoinHashTable reference(0, 3);
  JoinHashTable staged(0, 3);
  for (RecordBatch& b : ShardTestBatches()) {
    ASSERT_TRUE(reference.AddBatch(std::move(b)).ok());
  }
  for (RecordBatch& b : ShardTestBatches()) {
    ASSERT_TRUE(staged.AddBatch(std::move(b)).ok());
  }
  reference.Finalize();
  ThreadPool pool(3);
  ASSERT_TRUE(pool.ParallelFor(0, staged.num_shards(), 1, [&](size_t s) {
                    staged.FinalizeShard(static_cast<uint32_t>(s));
                    return Status::OK();
                  })
                  .ok());
  staged.MarkFinalized();
  EXPECT_TRUE(staged.finalized());
  ExpectSameMatches(reference, staged);
}

TEST(JoinHashTableTest, ShardedEmptyAndSingleRow) {
  JoinHashTable empty(0, 8);
  empty.Finalize();
  EXPECT_FALSE(empty.Contains(1));
  EXPECT_EQ(empty.num_rows(), 0u);

  JoinHashTable one(0, 8);
  ASSERT_TRUE(one.AddBatch(BuildBatch({{5, "only"}})).ok());
  one.Finalize();
  EXPECT_TRUE(one.Contains(5));
  EXPECT_FALSE(one.Contains(6));
  EXPECT_EQ(one.num_rows(), 1u);
}

// ----------------------------- HashAggregator -----------------------------

TEST(HashAggregatorTest, CountStarGroupsCorrectly) {
  auto spec = AggSpec::CountStar("g", /*extract_group=*/false);
  HashAggregator agg(spec);
  auto schema = Schema::Make({{"g", DataType::kInt32}});
  RecordBatch b(schema);
  for (int32_t g : {3, 1, 3, 3, 2, 1}) b.AppendRow({Value(g)});
  std::vector<uint32_t> sel = {0, 1, 2, 3, 4, 5};
  ASSERT_TRUE(agg.Update(b, sel).ok());
  RecordBatch out = agg.Finish();
  ASSERT_EQ(out.num_rows(), 3u);
  EXPECT_EQ(out.column(0).i64(), (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(out.column(1).i64(), (std::vector<int64_t>{2, 1, 3}));
}

TEST(HashAggregatorTest, ExtractGroupFromStrings) {
  auto spec = AggSpec::CountStar("g", /*extract_group=*/true);
  HashAggregator agg(spec);
  auto schema = Schema::Make({{"g", DataType::kString}});
  RecordBatch b(schema);
  b.AppendRow({Value("g7/x")});
  b.AppendRow({Value("g7/y")});
  b.AppendRow({Value("g9/z")});
  ASSERT_TRUE(agg.Update(b, {0, 1, 2}).ok());
  RecordBatch out = agg.Finish();
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.column(0).i64()[0], 7);
  EXPECT_EQ(out.column(1).i64()[0], 2);
}

TEST(HashAggregatorTest, SumMinMax) {
  AggSpec spec;
  spec.group_column = "g";
  spec.items = {{AggOp::kSum, "v", "sum_v"},
                {AggOp::kMin, "v", "min_v"},
                {AggOp::kMax, "v", "max_v"}};
  HashAggregator agg(spec);
  auto schema =
      Schema::Make({{"g", DataType::kInt32}, {"v", DataType::kInt32}});
  RecordBatch b(schema);
  b.AppendRow({Value(int32_t{1}), Value(int32_t{10})});
  b.AppendRow({Value(int32_t{1}), Value(int32_t{-2})});
  b.AppendRow({Value(int32_t{2}), Value(int32_t{5})});
  ASSERT_TRUE(agg.Update(b, {0, 1, 2}).ok());
  RecordBatch out = agg.Finish();
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.column(1).i64()[0], 8);   // sum group 1
  EXPECT_EQ(out.column(2).i64()[0], -2);  // min group 1
  EXPECT_EQ(out.column(3).i64()[0], 10);  // max group 1
  EXPECT_EQ(out.column(1).i64()[1], 5);
}

TEST(HashAggregatorTest, PartialMergeEqualsDirect) {
  auto spec = AggSpec::CountStar("g", false);
  auto schema = Schema::Make({{"g", DataType::kInt32}});
  RecordBatch b1(schema), b2(schema), all(schema);
  for (int32_t g : {1, 2, 1}) {
    b1.AppendRow({Value(g)});
    all.AppendRow({Value(g)});
  }
  for (int32_t g : {2, 3}) {
    b2.AppendRow({Value(g)});
    all.AppendRow({Value(g)});
  }
  HashAggregator w1(spec), w2(spec), merged(spec), direct(spec);
  ASSERT_TRUE(w1.Update(b1, {0, 1, 2}).ok());
  ASSERT_TRUE(w2.Update(b2, {0, 1}).ok());
  ASSERT_TRUE(merged.Merge(w1.Partial()).ok());
  ASSERT_TRUE(merged.Merge(w2.Partial()).ok());
  ASSERT_TRUE(direct.Update(all, {0, 1, 2, 3, 4}).ok());
  RecordBatch a = merged.Finish();
  RecordBatch e = direct.Finish();
  ASSERT_EQ(a.num_rows(), e.num_rows());
  for (size_t r = 0; r < a.num_rows(); ++r) {
    EXPECT_EQ(a.column(0).i64()[r], e.column(0).i64()[r]);
    EXPECT_EQ(a.column(1).i64()[r], e.column(1).i64()[r]);
  }
}

TEST(HashAggregatorTest, MergeMinMaxUsesOpSemantics) {
  AggSpec spec;
  spec.group_column = "g";
  spec.items = {{AggOp::kMin, "v", "min_v"}};
  auto schema =
      Schema::Make({{"g", DataType::kInt32}, {"v", DataType::kInt32}});
  HashAggregator a(spec), b(spec);
  RecordBatch r1(schema), r2(schema);
  r1.AppendRow({Value(int32_t{1}), Value(int32_t{5})});
  r2.AppendRow({Value(int32_t{1}), Value(int32_t{3})});
  ASSERT_TRUE(a.Update(r1, {0}).ok());
  ASSERT_TRUE(b.Update(r2, {0}).ok());
  ASSERT_TRUE(a.Merge(b.Partial()).ok());
  EXPECT_EQ(a.Finish().column(1).i64()[0], 3);
}

TEST(HashAggregatorTest, ErrorsOnBadInputs) {
  auto spec = AggSpec::CountStar("missing", false);
  HashAggregator agg(spec);
  auto schema = Schema::Make({{"g", DataType::kInt32}});
  RecordBatch b(schema);
  b.AppendRow({Value(int32_t{1})});
  EXPECT_FALSE(agg.Update(b, {0}).ok());

  auto str_spec = AggSpec::CountStar("g", /*extract_group=*/false);
  HashAggregator agg2(str_spec);
  auto str_schema = Schema::Make({{"g", DataType::kString}});
  RecordBatch sb(str_schema);
  sb.AppendRow({Value("x")});
  EXPECT_FALSE(agg2.Update(sb, {0}).ok());
}

// ------------------------------- JoinProber -------------------------------

TEST(JoinProberTest, JoinWithPostPredicateAndAggregation) {
  // Build: L'(joinKey, date); Probe: T'(joinKey, date).
  auto l_schema =
      Schema::Make({{"joinKey", DataType::kInt32}, {"ldate", DataType::kDate},
                    {"grp", DataType::kInt32}});
  auto t_schema =
      Schema::Make({{"joinKey", DataType::kInt32}, {"tdate", DataType::kDate}});
  RecordBatch l(l_schema);
  l.AppendRow({Value(int32_t{1}), Value(int32_t{100}), Value(int32_t{7})});
  l.AppendRow({Value(int32_t{1}), Value(int32_t{105}), Value(int32_t{7})});
  l.AppendRow({Value(int32_t{2}), Value(int32_t{100}), Value(int32_t{8})});
  JoinHashTable table(0);
  ASSERT_TRUE(table.AddBatch(std::move(l)).ok());
  table.Finalize();

  auto spec = AggSpec::CountStar("L.grp", false);
  HashAggregator agg(spec);
  JoinProber prober(&table, l_schema, "L", t_schema, "T", 0,
                    DiffRange("T.tdate", "L.ldate", 0, 1), &agg, nullptr);

  RecordBatch t(t_schema);
  t.AppendRow({Value(int32_t{1}), Value(int32_t{101})});  // joins ldate=100
  t.AppendRow({Value(int32_t{2}), Value(int32_t{100})});  // joins ldate=100
  t.AppendRow({Value(int32_t{2}), Value(int32_t{300})});  // date pred fails
  t.AppendRow({Value(int32_t{9}), Value(int32_t{100})});  // no key match
  ASSERT_TRUE(prober.ProbeBatch(t).ok());
  ASSERT_TRUE(prober.Flush().ok());

  EXPECT_EQ(prober.join_matches(), 4);  // key 1 matches 2 rows, key 2 twice
  EXPECT_EQ(prober.output_rows(), 2);
  RecordBatch out = agg.Finish();
  ASSERT_EQ(out.num_rows(), 2u);
  EXPECT_EQ(out.column(0).i64(), (std::vector<int64_t>{7, 8}));
  EXPECT_EQ(out.column(1).i64(), (std::vector<int64_t>{1, 1}));
}

TEST(JoinProberTest, JoinedSchemaUsesAliases) {
  auto a = Schema::Make({{"k", DataType::kInt32}});
  auto b = Schema::Make({{"k", DataType::kInt32}});
  auto joined = MakeJoinedSchema(a, "L", b, "T");
  ASSERT_EQ(joined->num_fields(), 2u);
  EXPECT_EQ(joined->field(0).name, "L.k");
  EXPECT_EQ(joined->field(1).name, "T.k");
}

TEST(JoinProberTest, FlushesAcrossBatchBoundaries) {
  auto schema = Schema::Make({{"k", DataType::kInt32}});
  RecordBatch build(schema);
  for (int32_t i = 0; i < 10; ++i) build.AppendRow({Value(i)});
  JoinHashTable table(0);
  ASSERT_TRUE(table.AddBatch(std::move(build)).ok());
  table.Finalize();

  auto spec = AggSpec::CountStar("T.k", false);
  HashAggregator agg(spec);
  JoinProberOptions options;
  options.output_batch_rows = 3;  // force many internal flushes
  JoinProber prober(&table, schema, "L", schema, "T", 0, nullptr, &agg,
                    nullptr, options);
  RecordBatch probe(schema);
  for (int32_t i = 0; i < 10; ++i) probe.AppendRow({Value(i)});
  ASSERT_TRUE(prober.ProbeBatch(probe).ok());
  ASSERT_TRUE(prober.Flush().ok());
  EXPECT_EQ(prober.output_rows(), 10);
  EXPECT_EQ(agg.Finish().num_rows(), 10u);
}

// --------------------------- PartitionedAppender --------------------------

TEST(PartitionedAppenderTest, RoutesByPartitionFunction) {
  auto schema = Schema::Make({{"k", DataType::kInt32}});
  std::map<uint32_t, std::vector<int32_t>> received;
  PartitionedAppender appender(
      schema, 4, 0, [](int64_t k) { return static_cast<uint32_t>(k % 4); },
      /*flush_rows=*/2,
      [&](uint32_t p, RecordBatch&& b) {
        for (int32_t v : b.column(0).i32()) received[p].push_back(v);
        return Status::OK();
      });
  RecordBatch b(schema);
  for (int32_t i = 0; i < 10; ++i) b.AppendRow({Value(i)});
  std::vector<uint32_t> sel = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  ASSERT_TRUE(appender.Append(b, sel).ok());
  ASSERT_TRUE(appender.FlushAll().ok());
  EXPECT_EQ(appender.routed_rows(), 10);
  for (uint32_t p = 0; p < 4; ++p) {
    for (int32_t v : received[p]) {
      EXPECT_EQ(static_cast<uint32_t>(v % 4), p);
    }
  }
  size_t total = 0;
  for (auto& [p, v] : received) total += v.size();
  EXPECT_EQ(total, 10u);
}

TEST(PartitionedAppenderTest, RespectsSelectionVector) {
  auto schema = Schema::Make({{"k", DataType::kInt32}});
  int64_t received = 0;
  PartitionedAppender appender(
      schema, 2, 0, [](int64_t) { return 0u; }, 100,
      [&](uint32_t, RecordBatch&& b) {
        received += b.num_rows();
        return Status::OK();
      });
  RecordBatch b(schema);
  for (int32_t i = 0; i < 10; ++i) b.AppendRow({Value(i)});
  ASSERT_TRUE(appender.Append(b, {1, 3, 5}).ok());
  ASSERT_TRUE(appender.FlushAll().ok());
  EXPECT_EQ(received, 3);
}

TEST(PartitionedAppenderTest, PropagatesSinkErrors) {
  auto schema = Schema::Make({{"k", DataType::kInt32}});
  PartitionedAppender appender(
      schema, 1, 0, [](int64_t) { return 0u; }, 1,
      [](uint32_t, RecordBatch&&) { return Status::IOError("sink down"); });
  RecordBatch b(schema);
  b.AppendRow({Value(int32_t{1})});
  EXPECT_TRUE(appender.Append(b, {0}).IsIOError());
}

}  // namespace
}  // namespace hybridjoin
