// Unit tests for ThreadPool: Submit/Wait/Shutdown lifecycle and races, and
// the ParallelFor morsel helper the intra-node parallel phases are built on
// (docs/architecture.md, "Intra-node parallelism").

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace hybridjoin {
namespace {

TEST(ThreadPoolTest, SubmitAndWaitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossRounds) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (round + 1) * 100);
  }
}

TEST(ThreadPoolTest, ShutdownDrainsPendingTasksAndIsIdempotent) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.Shutdown();
    EXPECT_EQ(count.load(), 200);  // Close drains, never drops
    pool.Shutdown();               // idempotent
  }  // destructor calls Shutdown a third time
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, ConcurrentSubmittersRace) {
  // Several producer threads hammer Submit while workers drain; every task
  // must run exactly once. (TSan is the real assertion here.)
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&pool, &count] {
      for (int i = 0; i < 500; ++i) {
        pool.Submit(
            [&count] { count.fetch_add(1, std::memory_order_relaxed); });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(count.load(), 2000);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  for (size_t grain : {1u, 3u, 7u, 64u, 1000u}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    Status st = pool.ParallelFor(0, hits.size(), grain, [&](size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    });
    ASSERT_TRUE(st.ok());
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
    }
  }
}

TEST(ThreadPoolTest, ParallelForHonorsBeginOffset) {
  ThreadPool pool(2);
  std::mutex mu;
  std::set<size_t> seen;
  Status st = pool.ParallelFor(10, 25, 4, [&](size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(i);
    return Status::OK();
  });
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(seen.size(), 15u);
  EXPECT_EQ(*seen.begin(), 10u);
  EXPECT_EQ(*seen.rbegin(), 24u);
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  int calls = 0;
  EXPECT_TRUE(pool.ParallelFor(5, 5, 1, [&](size_t) {
                    ++calls;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_TRUE(pool.ParallelFor(9, 3, 1, [&](size_t) {
                    ++calls;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, ParallelForZeroGrainTreatedAsOne) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  ASSERT_TRUE(pool.ParallelFor(0, 12, 0, [&](size_t) {
                    calls.fetch_add(1, std::memory_order_relaxed);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(calls.load(), 12);
}

TEST(ThreadPoolTest, ParallelForReturnsFirstErrorAndStopsNewChunks) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  // Grain 1 over many indices: once index 3 fails, chunks that have not
  // started are skipped, so far fewer than 10000 calls run.
  Status st = pool.ParallelFor(0, 10000, 1, [&](size_t i) {
    calls.fetch_add(1, std::memory_order_relaxed);
    if (i == 3) return Status::Internal("boom at 3");
    return Status::OK();
  });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.ToString().find("boom at 3"), std::string::npos);
  EXPECT_LT(calls.load(), 10000);
}

TEST(ThreadPoolTest, ParallelForConcurrentCallersOnSharedPool) {
  // The exec pool is shared by every simulated worker's driver thread: many
  // concurrent ParallelFor calls with per-call latches must not interfere.
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr size_t kRange = 200;
  std::vector<std::array<std::atomic<int>, kRange>> hits(kCallers);
  std::vector<std::thread> callers;
  for (int c = 0; c < kCallers; ++c) {
    for (auto& h : hits[c]) h.store(0);
    callers.emplace_back([&pool, &hits, c] {
      Status st = pool.ParallelFor(0, kRange, 8, [&hits, c](size_t i) {
        hits[c][i].fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      });
      EXPECT_TRUE(st.ok());
    });
  }
  for (auto& t : callers) t.join();
  for (int c = 0; c < kCallers; ++c) {
    for (size_t i = 0; i < kRange; ++i) {
      ASSERT_EQ(hits[c][i].load(), 1) << "caller " << c << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForSingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::atomic<int> calls{0};
  ASSERT_TRUE(pool.ParallelFor(0, 50, 16, [&](size_t) {
                    calls.fetch_add(1, std::memory_order_relaxed);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(calls.load(), 50);
}

}  // namespace
}  // namespace hybridjoin
